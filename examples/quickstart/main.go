// Quickstart: build a Cascade Lake host, colocate a memory-bound app with a
// storage workload, and watch the blue regime appear — C2M throughput
// degrades while the storage device is untouched, long before memory
// bandwidth saturates.
package main

import (
	"fmt"

	"repro/hostnet"
)

func main() {
	warm, window := 20*hostnet.Microsecond, 100*hostnet.Microsecond

	// Baseline: one sequential-read core, alone.
	iso := hostnet.New(hostnet.CascadeLake())
	iso.AddCore(hostnet.SeqRead(iso.Region(1<<30), 1<<30))
	iso.Run(warm, window)
	isoBW := iso.C2MReadBW()
	isoLat := iso.Cores[0].Stats().LFBLat.AvgNanos()

	// Colocated: the same core next to a bulk storage workload (DMA writes).
	h := hostnet.New(hostnet.CascadeLake())
	h.AddCore(hostnet.SeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(hostnet.BulkStorage(hostnet.DMAWrite, h.Region(1<<30)))
	h.Run(warm, window)

	coBW := h.C2MReadBW()
	coLat := h.Cores[0].Stats().LFBLat.AvgNanos()
	memC2M, memP2M := h.MemBW()

	fmt.Printf("C2M app:  %.2f GB/s alone -> %.2f GB/s colocated (%.2fx degradation)\n",
		isoBW/1e9, coBW/1e9, isoBW/coBW)
	fmt.Printf("C2M-Read domain latency: %.0f ns -> %.0f ns\n", isoLat, coLat)
	fmt.Printf("P2M app:  %.2f GB/s (link-bound, unaffected)\n", h.P2MBW()/1e9)
	fmt.Printf("memory bandwidth: %.1f of %.1f GB/s (%.0f%% — far from saturated)\n",
		(memC2M+memP2M)/1e9, h.Cfg.TheoreticalMemBW/1e9,
		(memC2M+memP2M)/h.Cfg.TheoreticalMemBW*100)
	fmt.Printf("regime: %v\n\n", hostnet.Classify(isoBW/coBW, 1.0))

	// The domain lens (§4): why the asymmetry?
	domains := hostnet.CascadeLakeDomains()
	read := hostnet.Measurement{
		Kind: hostnet.C2MRead, AvgLatencyNanos: coLat,
		AvgCreditsInUse: h.Cores[0].Stats().LFBOcc.Avg(),
		MaxCreditsInUse: h.Cores[0].Stats().LFBOcc.Max(),
		Throughput:      coBW,
	}
	readIso := hostnet.Measurement{Kind: hostnet.C2MRead, AvgLatencyNanos: isoLat}
	fmt.Println(hostnet.Explain(domains[0], read, readIso))

	iioStats := h.IIO.Stats()
	write := hostnet.Measurement{
		Kind: hostnet.P2MWrite, AvgLatencyNanos: iioStats.WriteLat.AvgNanos(),
		AvgCreditsInUse: iioStats.WriteOcc.Avg(),
		MaxCreditsInUse: iioStats.WriteOcc.Max(),
		Throughput:      h.P2MBW(),
	}
	writeIso := hostnet.Measurement{Kind: hostnet.P2MWrite, AvgLatencyNanos: 300}
	fmt.Println(hostnet.Explain(domains[3], write, writeIso))
}
