// Colocation sweeps the four quadrants of §2.2 on the Cascade Lake preset
// and prints the blue/red regime classification per data point — the
// reproduction of Fig 3 through the public API.
package main

import (
	"os"

	"repro/hostnet"
)

func main() {
	opt := hostnet.DefaultOptions()
	hostnet.RenderQuadrants(os.Stdout, hostnet.RunFig3(opt))
	hostnet.RenderDomainEvidence(os.Stdout, hostnet.RunFig6(opt))
	hostnet.RenderFormula(os.Stdout, hostnet.RunFig11(opt))
}
