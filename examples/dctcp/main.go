// DCTCP reproduces the TCP case study (§2.3, Appendix C.2/D.2): with an
// in-kernel transport, the network application generates C2M traffic (the
// socket-to-application data copy) in addition to P2M traffic, so BOTH the
// memory app and the network app degrade — and in the read-write case the
// network app's degradation overtakes the memory app's as the red regime
// bites.
package main

import (
	"fmt"
	"os"

	"repro/hostnet"
)

func main() {
	opt := hostnet.DefaultOptions()
	read, rw := hostnet.RunFig19(opt)
	hostnet.RenderDCTCP(os.Stdout, read, rw)

	last := rw[len(rw)-1]
	fmt.Printf("at %d C2M-ReadWrite cores: memory app %.2fx vs network app %.2fx — ",
		last.C2MCores, last.MemAppDegradation(), last.NetAppDegradation())
	if last.NetAppDegradation() >= last.MemAppDegradation() {
		fmt.Println("the network app has crossed over (red regime reaches the wire)")
	} else {
		fmt.Println("approaching the crossover")
	}
}
