// Mitigation demonstrates the paper's §7 future-work direction made
// concrete: an in-host congestion controller (in the spirit of hostCC,
// SIGCOMM 2023) that watches the host network's own congestion signals —
// IIO write-credit occupancy and the CHA write backlog — and throttles C2M
// cores to protect P2M traffic in the red regime.
package main

import (
	"fmt"

	"repro/hostnet"
)

func main() {
	opt := hostnet.DefaultOptions()

	fmt.Println("Red regime (Q3, 5 C2M-ReadWrite cores + bulk P2M writes):")
	s := hostnet.RunHostCCStudy(hostnet.Q3, 5, hostnet.DefaultHostCCConfig(), opt)
	fmt.Printf("  without controller: C2M %.2fx degraded, P2M %.2fx degraded\n",
		s.C2MDegrOff(), s.P2MDegrOff())
	fmt.Printf("  with controller:    C2M %.2fx degraded, P2M %.2fx degraded\n",
		s.C2MDegrOn(), s.P2MDegrOn())
	fmt.Printf("  controller: congested %.0f%% of the time, average throttle %.0f ns/issue\n\n",
		s.CongestedFrac*100, s.AvgGapNanos)

	fmt.Println("Blue regime (Q1, 3 C2M-Read cores + bulk P2M writes):")
	b := hostnet.RunHostCCStudy(hostnet.Q1, 3, hostnet.DefaultHostCCConfig(), opt)
	fmt.Printf("  without controller: C2M %.2fx, P2M %.2fx\n", b.C2MDegrOff(), b.P2MDegrOff())
	fmt.Printf("  with controller:    C2M %.2fx, P2M %.2fx (signals quiet: %.0f%% congested)\n",
		b.C2MDegrOn(), b.P2MDegrOn(), b.CongestedFrac*100)
}
