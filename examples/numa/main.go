// NUMA explores the paper's §7 "multiple sockets" direction: a two-socket
// host where contention follows the data, not the core. A socket-0 reader
// of socket-1 memory pays the UPI hops (~70 -> ~150 ns unloaded) and then
// degrades when socket-1's own P2M traffic contends at the home memory
// controller — but by a smaller relative factor, because the interconnect
// hops amortize the queueing.
package main

import (
	"fmt"

	"repro/hostnet"
)

func main() {
	warm, win := 20*hostnet.Microsecond, 100*hostnet.Microsecond

	local := hostnet.NewDual(hostnet.CascadeLake(), hostnet.DefaultUPIConfig())
	local.AddCoreOn(0, hostnet.SeqRead(local.RegionOn(0, 1<<30), 1<<30))
	local.Run(warm, win)

	remote := hostnet.NewDual(hostnet.CascadeLake(), hostnet.DefaultUPIConfig())
	remote.AddCoreOn(0, hostnet.SeqRead(remote.RegionOn(1, 1<<30), 1<<30))
	remote.Run(warm, win)

	fmt.Printf("local  read: %.0f ns, %.2f GB/s\n",
		local.Cores[0].Stats().LFBLat.AvgNanos(), local.C2MBW()/1e9)
	fmt.Printf("remote read: %.0f ns, %.2f GB/s (UPI hops; same 12 credits)\n\n",
		remote.Cores[0].Stats().LFBLat.AvgNanos(), remote.C2MBW()/1e9)

	co := hostnet.NewDual(hostnet.CascadeLake(), hostnet.DefaultUPIConfig())
	co.AddCoreOn(0, hostnet.SeqRead(co.RegionOn(1, 1<<30), 1<<30))
	co.AddStorageOn(1, hostnet.BulkStorage(hostnet.DMAWrite, co.RegionOn(1, 1<<30)))
	co.Run(warm, win)
	fmt.Printf("remote read + home-socket P2M writes: %.0f ns, %.2f GB/s (degradation %.2fx)\n",
		co.Cores[0].Stats().LFBLat.AvgNanos(), co.C2MBW()/1e9, remote.C2MBW()/co.C2MBW())
	fmt.Printf("P2M: %.2f GB/s (unaffected — blue regime across sockets)\n", co.P2MBW()/1e9)
	fmt.Printf("UPI remote reads: %d, return-direction busy %.0f%%\n",
		co.UPI.Stats().RemoteReads.Count(), co.UPI.Stats().LinkBusy[1].Frac()*100)
}
