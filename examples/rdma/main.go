// RDMA reproduces the RoCE/PFC case study (§2.3, Appendix C/D): NIC-
// generated P2M traffic shows the same blue and red regimes as local
// storage, and in the red regime PFC pauses appear while the IIO write
// buffer stays near capacity (Fig 23).
package main

import (
	"fmt"
	"os"

	"repro/hostnet"
)

func main() {
	opt := hostnet.DefaultOptions()
	hostnet.RenderRDMA(os.Stdout, hostnet.RunFig18(opt))

	// Microsecond-scale IIO occupancy under red-regime PFC (Fig 23).
	pts := hostnet.RunRDMAQuadrant(hostnet.Q3, []int{4, 5, 6}, opt)
	for _, p := range pts {
		nearFull := 0
		for _, s := range p.IIOOccSamples {
			if s >= 80 {
				nearFull++
			}
		}
		fmt.Printf("Q3 with %d C2M cores: PFC pause %.0f%% of time; IIO write buffer >=80/92 in %d%% of 1us samples\n",
			p.Cores, p.PauseFrac*100, 100*nearFull/len(p.IIOOccSamples))
	}
}
