package repro

import (
	"testing"

	"repro/hostnet"
	"repro/internal/exp"
	"repro/internal/host"
	"repro/internal/hostcc"
	"repro/internal/sim"
)

// Ablation benchmarks: each removes or re-tunes one design mechanism called
// out in DESIGN.md and reports how the headline phenomena move. Together
// they document *which* mechanism produces *which* observation:
//
//   - the XOR bank hash        -> multi-core isolated C2M sanity
//   - the bounded drain batch  -> the red regime's WPQ pinning
//   - the read-dwell duty cap  -> the red regime's P2M squeeze
//   - the FR-FCFS window       -> row-hit batching under conflicts
//   - the DDIO hypotheses      -> the Fig 2 DDIO-on penalty
//   - the hostCC controller    -> the §7 mitigation

func ablationOptions(mutate func(*host.Config)) hostnet.Options {
	opt := hostnet.DefaultOptions()
	opt.Warmup = 10 * sim.Microsecond
	opt.Window = 40 * sim.Microsecond
	base := opt.Preset
	opt.Preset = func() host.Config {
		cfg := base()
		mutate(&cfg)
		return cfg
	}
	return opt
}

// BenchmarkAblationXORHashOff disables the DRAMA-style bank hash: 1 GiB-
// aligned buffers then march through identical bank sequences and isolated
// multi-core C2M collapses (compare c2m-iso-GB/s with the baseline bench).
func BenchmarkAblationXORHashOff(b *testing.B) {
	on := ablationOptions(func(c *host.Config) {})
	off := ablationOptions(func(c *host.Config) { c.Mapper.XORRowIntoBank = false })
	var pOn, pOff exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		pOn = exp.RunQuadrantPoint(exp.Q1, 3, on)
		pOff = exp.RunQuadrantPoint(exp.Q1, 3, off)
	}
	b.ReportMetric(pOn.C2MIso.C2MBW/1e9, "iso-hash-on-GB/s")
	b.ReportMetric(pOff.C2MIso.C2MBW/1e9, "iso-hash-off-GB/s")
}

// BenchmarkAblationDrainBatch sweeps the drain batch: small batches pay
// turnaround per few writes (blue regime overshoots); unbounded duty lets
// writes preempt reads and the red regime's P2M squeeze disappears.
func BenchmarkAblationDrainBatch(b *testing.B) {
	for _, batch := range []int{8, 20, 48} {
		batch := batch
		b.Run("batch="+itoa(batch), func(b *testing.B) {
			opt := ablationOptions(func(c *host.Config) { c.MC.DrainBatch = batch })
			var q1, q3 exp.QuadrantPoint
			for i := 0; i < b.N; i++ {
				q1 = exp.RunQuadrantPoint(exp.Q1, 1, opt)
				q3 = exp.RunQuadrantPoint(exp.Q3, 5, opt)
			}
			b.ReportMetric(q1.C2MDegradation(), "q1-c2m-degr-x")
			b.ReportMetric(q3.P2MDegradation(), "q3-p2m-degr-x")
		})
	}
}

// BenchmarkAblationNoReadDwell removes the read-mode dwell (write duty
// uncapped): the WPQ drains on demand, the CHA backlog never forms, and the
// red regime's P2M degradation collapses.
func BenchmarkAblationNoReadDwell(b *testing.B) {
	opt := ablationOptions(func(c *host.Config) { c.MC.ReadDwellMin = 0 })
	var p exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		p = exp.RunQuadrantPoint(exp.Q3, 5, opt)
	}
	b.ReportMetric(p.P2MDegradation(), "q3-p2m-degr-x")
	b.ReportMetric(p.Co.WPQFullFrac, "wpq-full-frac")
}

// BenchmarkAblationFCFSWindow1 shrinks the FR-FCFS scan to pure FCFS: row
// hits can no longer bypass conflicting requests.
func BenchmarkAblationFCFSWindow1(b *testing.B) {
	opt := ablationOptions(func(c *host.Config) { c.MC.SchedWindow = 1 })
	var p exp.QuadrantPoint
	for i := 0; i < b.N; i++ {
		p = exp.RunQuadrantPoint(exp.Q1, 6, opt)
	}
	b.ReportMetric(p.C2MIso.C2MBW/1e9, "iso-GB/s")
	b.ReportMetric(p.C2MDegradation(), "c2m-degr-x")
}

// BenchmarkAblationDDIOHypotheses toggles the two DDIO-penalty hypotheses
// independently (eviction swizzle; eviction directory reads) against the
// GAPBS + P2M-Write colocation that exhibits the Fig 2 effect.
func BenchmarkAblationDDIOHypotheses(b *testing.B) {
	run := func(scramble bool, readFrac float64) float64 {
		cfg := host.CascadeLake()
		cfg.DDIO.Enabled = true
		cfg.DDIO.ScrambleEvictions = scramble
		cfg.CHA.DDIOEvictionReadFrac = readFrac
		opt := hostnet.DefaultOptions()
		opt.Warmup = 10 * sim.Microsecond
		opt.Window = 30 * sim.Microsecond
		opt.DDIO = true
		opt.Preset = func() host.Config { return cfg }
		pts := exp.RunAppColocation(exp.GAPBSPR, hostnet.DMAWrite, []int{4}, opt)
		return pts[0].AppDegradation()
	}
	var both, swizzleOnly, readsOnly, neither float64
	for i := 0; i < b.N; i++ {
		both = run(true, 0.25)
		swizzleOnly = run(true, 0)
		readsOnly = run(false, 0.25)
		neither = run(false, 0)
	}
	b.ReportMetric(both, "both-degr-x")
	b.ReportMetric(swizzleOnly, "swizzle-only-x")
	b.ReportMetric(readsOnly, "dirreads-only-x")
	b.ReportMetric(neither, "neither-x")
}

// BenchmarkAblationHostCC quantifies the §7 mitigation: red-regime P2M
// degradation with and without the controller.
func BenchmarkAblationHostCC(b *testing.B) {
	opt := hostnet.DefaultOptions()
	opt.Warmup = 10 * sim.Microsecond
	opt.Window = 40 * sim.Microsecond
	var s exp.HostCCStudy
	for i := 0; i < b.N; i++ {
		s = exp.RunHostCCStudy(exp.Q3, 5, hostcc.DefaultConfig(), opt)
	}
	b.ReportMetric(s.P2MDegrOff(), "p2m-degr-off-x")
	b.ReportMetric(s.P2MDegrOn(), "p2m-degr-on-x")
	b.ReportMetric(s.C2MDegrOn(), "c2m-degr-on-x")
}

// BenchmarkAblationPrefetch quantifies the §2.2 prefetching claim.
func BenchmarkAblationPrefetch(b *testing.B) {
	opt := hostnet.DefaultOptions()
	opt.Warmup = 10 * sim.Microsecond
	opt.Window = 40 * sim.Microsecond
	var s exp.PrefetchStudy
	for i := 0; i < b.N; i++ {
		s = exp.RunPrefetchStudy(2, opt)
	}
	b.ReportMetric(s.IsoOn/s.IsoOff, "iso-speedup-x")
	b.ReportMetric(s.DegradationOff(), "degr-off-x")
	b.ReportMetric(s.DegradationOn(), "degr-on-x")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationMCIsolation quantifies the WPQ-reservation alternative
// to hostCC: P2M protection by memory-controller scheduling alone.
func BenchmarkAblationMCIsolation(b *testing.B) {
	opt := hostnet.DefaultOptions()
	opt.Warmup = 10 * sim.Microsecond
	opt.Window = 40 * sim.Microsecond
	var s exp.MCIsolationStudy
	for i := 0; i < b.N; i++ {
		s = exp.RunMCIsolationStudy(5, 16, opt)
	}
	b.ReportMetric(s.P2MDegrOff(), "p2m-degr-off-x")
	b.ReportMetric(s.P2MDegrOn(), "p2m-degr-on-x")
	b.ReportMetric(s.C2MDegrOn(), "c2m-degr-on-x")
}
