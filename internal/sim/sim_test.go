package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d", Nanosecond)
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatalf("unit ladder broken")
	}
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Fatalf("Nanoseconds() = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "0.500ns"},
		{70 * Nanosecond, "70.000ns"},
		{3 * Microsecond, "3.000us"},
		{2 * Millisecond, "2.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(25)
	if !ran[10] || !ran[20] || ran[30] || ran[40] {
		t.Fatalf("ran = %v", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if !ran[30] || !ran[40] || e.Now() != 100 {
		t.Fatalf("second RunUntil: ran=%v now=%v", ran, e.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := New()
	hit := false
	e.At(25, func() { hit = true })
	e.RunUntil(25)
	if !hit {
		t.Fatalf("event at the RunUntil boundary did not fire")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := Time(1); i <= 7; i++ {
		e.At(i, func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed())
	}
}

// Property: any batch of events fires in nondecreasing time order, and
// equal-time events fire in scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		type fired struct {
			at  Time
			idx int
		}
		var got []fired
		for i, r := range raw {
			at := Time(r % 997)
			i := i
			e.At(at, func() { got = append(got, fired{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].at != got[b].at {
				return got[a].at < got[b].at
			}
			return got[a].idx < got[b].idx
		}) {
			return false
		}
		// Already in fired order, so sortedness of the fired slice as-is is
		// what we checked; also verify the engine clock ended at the max.
		var max Time
		for _, g := range got {
			if g.at > max {
				max = g.at
			}
		}
		return e.Now() == max || len(raw) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWakerCoalesces(t *testing.T) {
	e := New()
	calls := 0
	w := NewWaker(e, func() { calls++ })
	e.At(10, func() {
		w.Wake()
		w.Wake()
		w.Wake()
	})
	e.Run()
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (coalesced)", calls)
	}
}

func TestWakerEarlierRequestWins(t *testing.T) {
	e := New()
	var at []Time
	var w *Waker
	w = NewWaker(e, func() { at = append(at, e.Now()) })
	e.At(0, func() {
		w.WakeAt(50)
		w.WakeAt(20) // supersedes the 50
	})
	e.Run()
	if len(at) != 1 || at[0] != 20 {
		t.Fatalf("wake times = %v, want [20]", at)
	}
}

func TestWakerLaterRequestAbsorbed(t *testing.T) {
	e := New()
	var at []Time
	w := NewWaker(e, func() {})
	w2 := NewWaker(e, func() { at = append(at, e.Now()) })
	_ = w
	e.At(0, func() {
		w2.WakeAt(20)
		w2.WakeAt(50) // absorbed: a wake at 20 already covers it
	})
	e.Run()
	if len(at) != 1 || at[0] != 20 {
		t.Fatalf("wake times = %v, want [20]", at)
	}
}

func TestWakerReusableAfterFiring(t *testing.T) {
	e := New()
	var at []Time
	var w *Waker
	w = NewWaker(e, func() {
		at = append(at, e.Now())
		if len(at) == 1 {
			w.WakeAt(e.Now() + 30)
		}
	})
	e.At(10, func() { w.Wake() })
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 40 {
		t.Fatalf("wake times = %v, want [10 40]", at)
	}
}

func TestWakerPastClamps(t *testing.T) {
	e := New()
	fired := Time(-1)
	w := NewWaker(e, func() { fired = e.Now() })
	e.At(100, func() { w.WakeAt(10) }) // in the past: clamps to now
	e.Run()
	if fired != 100 {
		t.Fatalf("fired at %v, want 100", fired)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := RNG(42), RNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := RNG(43)
	same := true
	a2 := RNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestRNGIsUsableRand(t *testing.T) {
	var _ *rand.Rand = RNG(1).Rand
	r := RNG(7)
	n := r.IntN(10)
	if n < 0 || n >= 10 {
		t.Fatalf("IntN out of range: %d", n)
	}
}

func TestWakerSameInstantRearmFiresExactlyOnceMore(t *testing.T) {
	e := New()
	fires := 0
	var w *Waker
	w = NewWaker(e, func() {
		fires++
		if fires == 1 {
			// Re-arm for the very instant we are firing at. The waker
			// must fire exactly once more at this time — and repeated
			// same-instant requests must coalesce into that one wake.
			w.WakeAt(e.Now())
			w.WakeAt(e.Now())
		}
	})
	e.At(10, func() { w.Wake() })
	e.Run()
	if fires != 2 {
		t.Fatalf("fires = %d, want 2 (original + one same-instant re-arm)", fires)
	}
	if e.Now() != 10 {
		t.Fatalf("finished at %v, want 10 (re-arm must not advance time)", e.Now())
	}
}

func TestWakerSameInstantRearmChainProperty(t *testing.T) {
	// Property: a handler that re-arms for e.Now() on each of its first
	// `chain` firings produces exactly chain+1 firings, all at the original
	// wake time. This pins the "fires exactly once more" contract for
	// arbitrary chain depth.
	prop := func(n uint8) bool {
		chain := int(n % 32)
		e := New()
		fires := 0
		var w *Waker
		w = NewWaker(e, func() {
			fires++
			if fires <= chain {
				w.WakeAt(e.Now())
			}
		})
		e.At(5, func() { w.Wake() })
		e.Run()
		return fires == chain+1 && e.Now() == 5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
