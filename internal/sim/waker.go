package sim

import "math/rand/v2"

// Waker coalesces wake-up events for a component that wants to be "kicked"
// whenever its inputs change. Multiple Wake calls for the same instant (or
// while a wake is already pending at an earlier-or-equal time) collapse into
// a single callback invocation, which keeps hot components (the memory
// controller scheduler, the CHA admission stage) from flooding the event heap.
type Waker struct {
	eng       *Engine
	fn        func()
	pendingAt Time
	pending   bool
}

// NewWaker returns a waker that invokes fn on the engine's event loop.
func NewWaker(eng *Engine, fn func()) *Waker {
	return &Waker{eng: eng, fn: fn}
}

// Wake requests a callback now (i.e., as a fresh event at the current time).
func (w *Waker) Wake() { w.WakeAt(w.eng.Now()) }

// wakerFire dispatches a waker's scheduled event. The event's own timestamp
// (the engine clock at dispatch) identifies it: a later WakeAt may have
// superseded this event with an earlier one, in which case pendingAt no
// longer matches and the stale event must not fire. Sharing one
// package-level handler keeps WakeAt allocation-free.
func wakerFire(arg any) {
	w := arg.(*Waker)
	if !w.pending || w.pendingAt != w.eng.now {
		return
	}
	w.pending = false
	w.fn()
}

// WakeAt requests a callback at absolute time t. If a wake-up is already
// pending at or before t, the request is absorbed.
func (w *Waker) WakeAt(t Time) {
	if t < w.eng.Now() {
		t = w.eng.Now()
	}
	if w.pending && w.pendingAt <= t {
		return
	}
	w.pending = true
	w.pendingAt = t
	w.eng.AtFunc(t, wakerFire, w)
}

// RNG returns a deterministic PCG-based random source for the given stream
// seed. Each component takes its own stream so that adding randomness to one
// component never perturbs another's sequence.
func RNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
