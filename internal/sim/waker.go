package sim

import "math/rand/v2"

// Waker coalesces wake-up events for a component that wants to be "kicked"
// whenever its inputs change. Multiple Wake calls for the same instant (or
// while a wake is already pending at an earlier-or-equal time) collapse into
// a single callback invocation, which keeps hot components (the memory
// controller scheduler, the CHA admission stage) from flooding the event heap.
//
// A waker owns at most one live event. An earlier request reschedules that
// event in place (the engine's decrease-key) instead of pushing a
// superseding duplicate, so no stale no-op events ever reach dispatch.
//
// # Stale-slot adoption
//
// The previous implementation left the superseded event in the heap as a
// no-op, and that accident was output-visible: if the waker was later
// re-armed for exactly the stale event's timestamp, the stale event popped
// first within that instant (its sequence number was older) and fired the
// callback at the *older* position — earlier, relative to other events at
// the same instant, than the re-arm's own event. Simulation outputs are
// pinned byte-identical across engine rewrites, so the rework must keep
// that ordering without keeping the dead events. The stale list records the
// (at, seq) of every event the old implementation would still be holding;
// arming at a recorded timestamp adopts the recorded sequence number (and
// the fresh number takes the record's place, exactly mirroring which event
// would have been the no-op). Records die once the clock passes them, so
// the list stays at most a handful of entries.
type Waker struct {
	eng       *Engine
	fn        func()
	pendingAt Time
	pending   bool
	slot      int32
	seq       uint64 // sequence number of the live event
	stale     []staleRec
	// staleMin/staleMax band the record timestamps so the common WakeAt
	// (no record at t, none expired) skips the scan entirely.
	staleMin, staleMax Time
}

// staleRec is one event the pre-decrease-key implementation would still
// hold in its heap: superseded, not yet popped.
type staleRec struct {
	at  Time
	seq uint64
}

// NewWaker returns a waker that invokes fn on the engine's event loop. The
// waker registers with the engine's snapshot set.
func NewWaker(eng *Engine, fn func()) *Waker {
	w := &Waker{eng: eng, fn: fn}
	eng.Register(w)
	return w
}

// Wake requests a callback now (i.e., as a fresh event at the current time).
func (w *Waker) Wake() { w.WakeAt(w.eng.Now()) }

// wakerFire dispatches a waker's scheduled event. Sharing one package-level
// handler keeps WakeAt allocation-free.
func wakerFire(arg any) {
	w := arg.(*Waker)
	w.pending = false
	w.fn()
}

// record remembers a superseded event's (at, seq), keeping the time band
// current.
func (w *Waker) record(at Time, seq uint64) {
	if len(w.stale) == 0 {
		w.staleMin, w.staleMax = at, at
	} else {
		if at < w.staleMin {
			w.staleMin = at
		}
		if at > w.staleMax {
			w.staleMax = at
		}
	}
	w.stale = append(w.stale, staleRec{at: at, seq: seq})
}

// adopt removes and returns the oldest stale record at exactly t, if any.
// A dead record (at < now) can never match — t >= now always — so pruning
// is purely a memory/scan-length concern and rides along with the scan.
// The [staleMin, staleMax] band short-circuits the common cases: a fresh
// arm in the future beyond every record, and a supersede to now while all
// records are still live in the future. The band check lives in this small
// inlinable wrapper so the hot WakeAt path pays no call when it misses.
func (w *Waker) adopt(t Time) (uint64, bool) {
	if len(w.stale) == 0 || t < w.staleMin || t > w.staleMax {
		return 0, false
	}
	return w.adoptScan(t)
}

// adoptScan is the slow path of adopt: scan, prune dead records, and
// re-derive the time band.
func (w *Waker) adoptScan(t Time) (uint64, bool) {
	now := w.eng.Now()
	best := uint64(0)
	found := false
	kept := w.stale[:0]
	min, max := Time(1<<62), Time(-1)
	for _, r := range w.stale {
		if r.at < now {
			continue
		}
		if r.at == t {
			if !found {
				best, found = r.seq, true
				continue
			}
			if r.seq < best {
				// Keep the younger of the two as residue; adopt the older.
				r.seq, best = best, r.seq
			}
		}
		if r.at < min {
			min = r.at
		}
		if r.at > max {
			max = r.at
		}
		kept = append(kept, r)
	}
	w.stale = kept
	w.staleMin, w.staleMax = min, max
	return best, found
}

// WakeAt requests a callback at absolute time t. If a wake-up is already
// pending at or before t, the request is absorbed; if one is pending later,
// it is moved earlier in place.
func (w *Waker) WakeAt(t Time) {
	if t < w.eng.Now() {
		t = w.eng.Now()
	}
	if w.pending {
		if w.pendingAt <= t {
			return
		}
		// pendingAt > t >= now implies the live event sits in the heap (the
		// same-instant FIFO only ever holds events at now), so decrease-key
		// applies. The superseded position becomes a stale record.
		w.record(w.pendingAt, w.seq)
		w.pendingAt = t
		if old, ok := w.adopt(t); ok {
			fresh := w.eng.reschedule(w.slot, t, old)
			w.record(t, fresh)
			w.seq = old
		} else {
			w.seq = w.eng.reschedule(w.slot, t, useFreshSeq)
		}
		return
	}
	w.pending = true
	w.pendingAt = t
	if old, ok := w.adopt(t); ok {
		slot, fresh := w.eng.scheduleSeq(t, old, wakerFire, w)
		w.slot = slot
		w.seq = old
		w.record(t, fresh)
		return
	}
	w.slot = w.eng.schedule(t, wakerFire, w)
	w.seq = w.eng.seq
}

// wakerState is the snapshot of a Waker.
type wakerState struct {
	pendingAt          Time
	pending            bool
	slot               int32
	seq                uint64
	stale              []staleRec
	staleMin, staleMax Time
}

// SaveState implements Stateful.
func (w *Waker) SaveState() any {
	return wakerState{
		pendingAt: w.pendingAt,
		pending:   w.pending,
		slot:      w.slot,
		seq:       w.seq,
		stale:     append([]staleRec(nil), w.stale...),
		staleMin:  w.staleMin,
		staleMax:  w.staleMax,
	}
}

// LoadState implements Stateful.
func (w *Waker) LoadState(state any) {
	st := state.(wakerState)
	w.pendingAt, w.pending, w.slot, w.seq = st.pendingAt, st.pending, st.slot, st.seq
	w.stale = append(w.stale[:0], st.stale...)
	w.staleMin, w.staleMax = st.staleMin, st.staleMax
}

// Rand is a deterministic random stream that can save and load its
// generator state, so snapshots capture it exactly. It embeds *rand.Rand;
// use it wherever a *rand.Rand works.
type Rand struct {
	*rand.Rand
	pcg *rand.PCG
}

// RNG returns a deterministic PCG-based random source for the given stream
// seed. Each component takes its own stream so that adding randomness to one
// component never perturbs another's sequence.
func RNG(seed uint64) *Rand {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Rand{Rand: rand.New(pcg), pcg: pcg}
}

// SaveState implements Stateful: it captures the PCG stream position.
// (rand.Rand holds no buffered state of its own over a PCG source.)
func (r *Rand) SaveState() any {
	b, err := r.pcg.MarshalBinary()
	if err != nil {
		panic("sim: PCG MarshalBinary failed: " + err.Error())
	}
	return b
}

// LoadState implements Stateful.
func (r *Rand) LoadState(state any) {
	if err := r.pcg.UnmarshalBinary(state.([]byte)); err != nil {
		panic("sim: PCG UnmarshalBinary failed: " + err.Error())
	}
}
