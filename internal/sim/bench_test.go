package sim

import "testing"

// The micro-benchmarks below pin the engine's steady-state cost and, with
// -benchmem, its per-event allocation count. CI runs them once
// (-benchtime=1x) and fails if the scheduling benchmarks report nonzero
// allocs/op; BENCH_engine.json at the repo root records the before/after
// trajectory of the container/heap -> flat 4-ary heap rewrite.

// BenchmarkScheduleRun measures one schedule+dispatch round trip: the cost
// every simulated event pays. The callback is hoisted so the benchmark sees
// only the engine's own work (push, pop, dispatch), not closure creation.
func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	n := 0
	fn := func() { n++ }
	e.At(0, fn) // pre-grow the heap so -benchtime=1x is already steady state
	e.Step()
	n = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), fn)
		e.Step()
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineThroughput measures the raw event loop under a pending
// window of 256 events — the cache-resident push/pop regime every component
// of the simulator drives. ns/op here is the engine's per-event floor.
func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	n := 0
	fn := func() { n++ }
	const window = 256
	for i := 0; i < window; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.At(e.Now()+window, fn)
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkWakerChurn measures the supersede/absorb path of a hot Waker:
// one arm, one absorbed duplicate, one dispatch — the pattern the DRAM
// channel scheduler and CHA admission stage generate per request.
func BenchmarkWakerChurn(b *testing.B) {
	e := New()
	n := 0
	w := NewWaker(e, func() { n++ })
	w.WakeAt(0) // pre-grow the heap so -benchtime=1x is already steady state
	e.Step()
	n = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.WakeAt(Time(i))
		w.WakeAt(Time(i + 1)) // absorbed: a wake is already pending earlier
		e.Step()
	}
	if n != b.N {
		b.Fatalf("ran %d wakes, want %d", n, b.N)
	}
}

// benchHeapPattern keeps a fixed number of events pending and replaces the
// popped event each step, so b.N operations all run at the given heap depth
// with the given arrival pattern.
func benchHeapPattern(b *testing.B, depth int, next func(i int) Time) {
	e := New()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.At(next(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		t := next(depth + i)
		if t < e.Now() {
			t = e.Now()
		}
		e.At(t, fn)
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkHeapPushPopAscending: FIFO-ish arrivals (timer wheels, paced
// links) — every push lands at the heap's far end.
func BenchmarkHeapPushPopAscending(b *testing.B) {
	benchHeapPattern(b, 512, func(i int) Time { return Time(i) })
}

// BenchmarkHeapPushPopSameInstant: bursts at one timestamp (a drained
// backlog re-waking its clients) — ordering falls to the seq tiebreak.
func BenchmarkHeapPushPopSameInstant(b *testing.B) {
	benchHeapPattern(b, 512, func(i int) Time { return 0 })
}

// BenchmarkHeapPushPopRandom: uncorrelated arrival times (colliding
// components with unrelated latencies) — the sift-heavy worst case.
func BenchmarkHeapPushPopRandom(b *testing.B) {
	rng := RNG(0xbeac4)
	times := make([]Time, 1<<16)
	for i := range times {
		times[i] = Time(rng.Uint64N(1 << 20))
	}
	benchHeapPattern(b, 512, func(i int) Time { return times[i&(1<<16-1)] })
}
