package sim

import "testing"

// The micro-benchmarks below pin the engine's steady-state cost and, with
// -benchmem, its per-event allocation count. CI runs them once
// (-benchtime=1x) and fails if the scheduling benchmarks report nonzero
// allocs/op; BENCH_engine.json at the repo root records the before/after
// trajectory of the container/heap -> flat 4-ary heap rewrite.

// BenchmarkScheduleRun measures one schedule+dispatch round trip: the cost
// every simulated event pays. The callback is hoisted so the benchmark sees
// only the engine's own work (push, pop, dispatch), not closure creation.
func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	n := 0
	fn := func() { n++ }
	e.At(0, fn) // pre-grow the heap so -benchtime=1x is already steady state
	e.Step()
	n = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), fn)
		e.Step()
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineThroughput measures the raw event loop under a pending
// window of 256 events — the cache-resident push/pop regime every component
// of the simulator drives. ns/op here is the engine's per-event floor.
func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	n := 0
	fn := func() { n++ }
	const window = 256
	for i := 0; i < window; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.At(e.Now()+window, fn)
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkWakerChurn measures the supersede/absorb path of a hot Waker:
// one arm, one absorbed duplicate, one dispatch — the pattern the DRAM
// channel scheduler and CHA admission stage generate per request.
func BenchmarkWakerChurn(b *testing.B) {
	e := New()
	n := 0
	w := NewWaker(e, func() { n++ })
	w.WakeAt(0) // pre-grow the heap so -benchtime=1x is already steady state
	e.Step()
	n = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.WakeAt(Time(i))
		w.WakeAt(Time(i + 1)) // absorbed: a wake is already pending earlier
		e.Step()
	}
	if n != b.N {
		b.Fatalf("ran %d wakes, want %d", n, b.N)
	}
}

// benchHeapPattern keeps a fixed number of events pending and replaces the
// popped event each step, so b.N operations all run at the given heap depth
// with the given arrival pattern.
func benchHeapPattern(b *testing.B, depth int, next func(i int) Time) {
	e := New()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.At(next(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		t := next(depth + i)
		if t < e.Now() {
			t = e.Now()
		}
		e.At(t, fn)
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkHeapPushPopAscending: FIFO-ish arrivals (timer wheels, paced
// links) — every push lands at the heap's far end.
func BenchmarkHeapPushPopAscending(b *testing.B) {
	benchHeapPattern(b, 512, func(i int) Time { return Time(i) })
}

// BenchmarkHeapPushPopSameInstant: bursts at one timestamp (a drained
// backlog re-waking its clients) — ordering falls to the seq tiebreak.
func BenchmarkHeapPushPopSameInstant(b *testing.B) {
	benchHeapPattern(b, 512, func(i int) Time { return 0 })
}

// BenchmarkHeapPushPopRandom: uncorrelated arrival times (colliding
// components with unrelated latencies) — the sift-heavy worst case.
func BenchmarkHeapPushPopRandom(b *testing.B) {
	rng := RNG(0xbeac4)
	times := make([]Time, 1<<16)
	for i := range times {
		times[i] = Time(rng.Uint64N(1 << 20))
	}
	benchHeapPattern(b, 512, func(i int) Time { return times[i&(1<<16-1)] })
}

// benchReg is a registered component for the snapshot benchmarks: SaveState
// boxes a value copy (one allocation per capture), LoadState copies it back
// in place (none).
type benchReg struct{ v [8]uint64 }

func (s *benchReg) SaveState() any      { return s.v }
func (s *benchReg) LoadState(state any) { s.v = state.([8]uint64) }

// benchSnapshotEngine builds a warm engine with 512 pending events and one
// registered component — the shape both snapshot benchmarks measure.
func benchSnapshotEngine() (*Engine, *benchReg) {
	e := New()
	r := &benchReg{}
	e.Register(r)
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.At(Time(i), fn)
	}
	e.RunUntil(100)
	return e, r
}

// BenchmarkSnapshotCapture measures Engine.Snapshot on a warm engine. A
// capture is a deep copy, so it allocates — but a fixed, deterministic
// number of times (the snapshot struct, one copy per scheduler slice, the
// component-state table, and each registered SaveState). CI runs this with
// -benchmem and fails if allocs/op grows past the BENCH_checkpoint.json
// baseline: an accidental per-event or per-slot allocation in the capture
// path would multiply, not add.
func BenchmarkSnapshotCapture(b *testing.B) {
	e, _ := benchSnapshotEngine()
	snap := e.Snapshot() // warm-up so -benchtime=1x sees the steady-state count
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap = e.Snapshot()
	}
	b.StopTimer()
	e.Restore(snap)
}

// BenchmarkSnapshotRestore measures Engine.Restore — the hot half of
// checkpoint forking, paid once per forked continuation. Restore writes into
// the engine's retained slice capacities in place, so after the first call
// it must not allocate at all; CI gates it at 0 allocs/op.
func BenchmarkSnapshotRestore(b *testing.B) {
	e, _ := benchSnapshotEngine()
	snap := e.Snapshot()
	e.Restore(snap) // warm the append capacities
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Restore(snap)
	}
}
