package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapMatchesReferenceModel drives the engine with random interleavings
// of At, After, and Step and checks every dispatch against a reference model
// (the same events ordered by sort.Slice on (time, seq)). This pins the
// 4-ary heap's pop order to the exact (time, seq) contract the rest of the
// simulator's determinism rests on.
func TestHeapMatchesReferenceModel(t *testing.T) {
	type ref struct {
		at  Time
		seq int // scheduling order
	}
	f := func(ops []uint32) bool {
		e := New()
		var model []ref
		var got []ref
		seq := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // At: absolute time in a small range for collisions
				at := Time(op % 509)
				if at < e.Now() {
					at = e.Now()
				}
				r := ref{at: at, seq: seq}
				seq++
				model = append(model, r)
				e.At(at, func() { got = append(got, ref{e.Now(), r.seq}) })
			case 2: // After: relative delay
				at := e.Now() + Time(op%97)
				r := ref{at: at, seq: seq}
				seq++
				model = append(model, r)
				e.After(at-e.Now(), func() { got = append(got, ref{e.Now(), r.seq}) })
			case 3: // Step: interleave dispatch with scheduling
				e.Step()
			}
		}
		e.Run()
		if len(got) != len(model) {
			return false
		}
		// The reference: stable sort by time keeps scheduling order within
		// an instant, which is exactly the (time, seq) contract.
		sort.SliceStable(model, func(i, j int) bool { return model[i].at < model[j].at })
		for i := range model {
			if got[i].at != model[i].at || got[i].seq != model[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAtFuncPassesArg pins the closure-free path's contract: the scheduled
// function receives exactly the argument it was scheduled with.
func TestAtFuncPassesArg(t *testing.T) {
	e := New()
	type payload struct{ n int }
	var got []int
	record := func(arg any) { got = append(got, arg.(*payload).n) }
	e.AtFunc(20, record, &payload{n: 2})
	e.AtFunc(10, record, &payload{n: 1})
	e.AfterFunc(30, record, &payload{n: 3})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

// TestSteadyStateSchedulingZeroAlloc is the allocation gate behind the CI
// bench smoke step, enforced on every plain `go test` run: steady-state
// scheduling through AtFunc, the At/After compatibility wrappers (with a
// reused callback), and Waker arming must not allocate. The heap is
// pre-grown so slice growth (a one-time, amortized cost) is excluded.
func TestSteadyStateSchedulingZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	w := NewWaker(e, fn)
	handler := func(any) {}
	for i := 0; i < 64; i++ { // pre-grow the heap's backing array
		e.At(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		now := e.Now()
		e.AtFunc(now+5, handler, w)
		e.After(10, fn)
		w.WakeAt(now + 7)
		w.WakeAt(now + 2) // supersede
		e.RunUntil(now + 20)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocated %v per run, want 0", allocs)
	}
}

// TestHeapDeepOrdering exercises sift-down through several 4-ary levels
// (hundreds of pending events) against a full reference ordering.
func TestHeapDeepOrdering(t *testing.T) {
	e := New()
	rng := RNG(99)
	const n = 2000
	var want []Time
	var got []Time
	for i := 0; i < n; i++ {
		at := Time(rng.Uint64N(1000)) // heavy collisions: seq must break ties
		want = append(want, at)
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	sort.SliceStable(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != n {
		t.Fatalf("dispatched %d of %d events", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d at %v, want %v", i, got[i], want[i])
		}
	}
}
