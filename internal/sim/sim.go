// Package sim provides the discrete-event simulation engine used by every
// component of the host-network simulator.
//
// Time is an integer count of picoseconds, which keeps all timing algebra
// exact: DRAM burst durations, PCIe serialization delays, and mode-switch
// penalties compose without floating-point drift. Events fire in (time, seq)
// order, so two events scheduled for the same instant run in scheduling
// order, making whole-simulation runs fully deterministic for a given seed.
//
// The engine is allocation-free in steady state and its scheduling structure
// is split in three:
//
//   - a flat, pointer-free 4-ary min-heap of (at, seq, slot) nodes — sifts
//     move 24-byte scalar records and never touch a pointer, so they incur
//     no GC write barriers;
//   - a side slot table carrying each event's (fn, arg) pair, indexed by the
//     node's slot id, with a LIFO free list;
//   - a same-instant FIFO ring for events scheduled at exactly the current
//     time (a large fraction of all pushes: completions that immediately
//     kick a scheduler). Those never need heap ordering — within one
//     instant, seq order is insertion order — so they bypass the heap
//     entirely.
//
// The slot indirection also gives the engine true decrease-key: a Waker that
// wants an earlier callback reschedules its existing event in place instead
// of pushing a superseding duplicate and letting the stale one fire as a
// no-op. The AtFunc/AfterFunc path carries callbacks as a (func(arg any),
// arg) pair so hot components schedule with a long-lived handler plus a
// pooled or already-allocated argument instead of a fresh closure. At/After
// remain as thin wrappers for cold call sites.
//
// # Snapshots
//
// Engine.Snapshot captures the full scheduling state — clock, sequence
// counter, heap, FIFO, slot table — plus the state of every registered
// Stateful component, and Engine.Restore writes it back in place so the same
// object graph resumes from the captured instant. Because restore is
// in-place, event callbacks (bound methods, closures) stay valid: they point
// at the same components, whose state has been rewound. Event arguments that
// themselves carry mutable state (an in-flight request, a pooled completion
// record) implement Stateful and are captured by walking the live slots.
package sim

import "fmt"

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	}
}

// EventFunc is an event callback. The argument is whatever was passed to
// AtFunc/AfterFunc, letting a single long-lived function value serve every
// scheduling of a component's handler (bound method values, package-level
// dispatchers) with the per-event state carried in arg.
type EventFunc func(arg any)

// Stateful is the save/load contract every stateful component implements to
// participate in engine snapshots. SaveState returns an opaque deep copy of
// the component's mutable state; LoadState writes that copy back into the
// same component. Components register at construction via Engine.Register;
// event arguments (requests, pooled completion records) implement Stateful
// without registering — the engine captures them by walking live events.
type Stateful interface {
	SaveState() any
	LoadState(state any)
}

// node is one heap entry: pointer-free so sifts never incur GC write
// barriers. slot indexes the engine's side table holding (fn, arg).
type node struct {
	at   Time
	seq  uint64
	slot int32
}

// eslot carries an event's callback and argument, referenced by slot id.
type eslot struct {
	fn  EventFunc
	arg any
}

// fent is one same-instant FIFO entry; its timestamp is the engine's fifoAt.
type fent struct {
	seq  uint64
	slot int32
}

// pos sentinels for slots not resident in the heap.
const (
	posFIFO int32 = -1 // slot queued in the same-instant FIFO
	posFree int32 = -2 // slot on the free list
)

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engines are not safe for concurrent use;
// the simulator is deliberately single-threaded so that runs are reproducible.
type Engine struct {
	now  Time
	seq  uint64
	nRun uint64

	nodes []node  // flat 4-ary min-heap ordered by (at, seq)
	slots []eslot // slot id -> (fn, arg)
	free  []int32 // LIFO free list of slot ids
	pos   []int32 // slot id -> heap index, posFIFO, or posFree

	// Same-instant FIFO: events scheduled at exactly the current time, in
	// insertion (= seq) order. The FIFO always drains before the clock
	// advances, so every entry shares the timestamp fifoAt == now.
	fifo     []fent // power-of-two ring
	fifoHead int
	fifoLen  int
	fifoAt   Time

	// Event-cadence hook (see SetEventHook). hook == nil is the common case
	// and costs Step a single untaken branch.
	hook      func()
	hookEvery uint64
	hookLeft  uint64

	// regs holds every registered Stateful in registration order; snapshots
	// save and restore them positionally, so construction order (which is
	// deterministic) defines the layout.
	regs []Stateful
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.nodes) + e.fifoLen }

// Register adds a Stateful component to the engine's snapshot set.
// Registration order must be deterministic (it is, when components are
// constructed in program order) because snapshots restore positionally.
func (e *Engine) Register(s Stateful) { e.regs = append(e.regs, s) }

// The heap is 4-ary: children of node i are 4i+1..4i+4, parent (i-1)/4.
// Compared to a binary heap this halves tree depth (fewer cache lines per
// sift) at the cost of up to three extra comparisons per level, a trade
// that wins for the small, hot heaps the simulator sustains. Since (at,
// seq) is a strict total order (seq is unique), every valid min-heap pops
// in the same sequence, so the layout change cannot perturb simulation
// results.

// nodeLess orders nodes by (at, seq). The form is chosen so the compiler
// can lower it to flag arithmetic without a branch: sift loops spend most
// of their cycles on data-dependent comparisons the predictor cannot learn.
func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp moves the node at index i toward the root until its parent is not
// after it, keeping pos in sync.
func (e *Engine) siftUp(i int) {
	h, pos := e.nodes, e.pos
	nd := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if nodeLess(&h[p], &nd) {
			break
		}
		h[i] = h[p]
		pos[h[i].slot] = int32(i)
		i = p
	}
	h[i] = nd
	pos[nd.slot] = int32(i)
}

// siftDown moves the node at index i toward the leaves until no child is
// before it, keeping pos in sync.
func (e *Engine) siftDown(i int) {
	h, pos := e.nodes, e.pos
	n := len(h)
	nd := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the earliest of up to four children. The full-fan case is
		// unrolled as a pairwise-min tree of branchless selects.
		m := c
		if c+3 < n {
			a, b := c, c+1
			if nodeLess(&h[b], &h[a]) {
				a = b
			}
			x, y := c+2, c+3
			if nodeLess(&h[y], &h[x]) {
				x = y
			}
			if nodeLess(&h[x], &h[a]) {
				a = x
			}
			m = a
		} else {
			for cc := c + 1; cc < n; cc++ {
				if nodeLess(&h[cc], &h[m]) {
					m = cc
				}
			}
		}
		if nodeLess(&nd, &h[m]) {
			break
		}
		h[i] = h[m]
		pos[h[i].slot] = int32(i)
		i = m
	}
	h[i] = nd
	pos[nd.slot] = int32(i)
}

// alloc claims a slot for (fn, arg), reusing the free list.
func (e *Engine) alloc(fn EventFunc, arg any) int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		e.slots[s] = eslot{fn: fn, arg: arg}
		return s
	}
	e.slots = append(e.slots, eslot{fn: fn, arg: arg})
	e.pos = append(e.pos, posFree)
	return int32(len(e.slots) - 1)
}

// release returns a slot to the free list, dropping fn/arg for the GC.
func (e *Engine) release(s int32) {
	e.slots[s] = eslot{}
	e.pos[s] = posFree
	e.free = append(e.free, s)
}

// fifoPush appends a slot to the same-instant ring.
func (e *Engine) fifoPush(seq uint64, slot int32) {
	if e.fifoLen == len(e.fifo) {
		e.fifoGrow()
	}
	e.fifo[(e.fifoHead+e.fifoLen)&(len(e.fifo)-1)] = fent{seq: seq, slot: slot}
	e.fifoLen++
	e.pos[slot] = posFIFO
}

// fifoGrow doubles the ring, unwrapping it into the new backing array.
func (e *Engine) fifoGrow() {
	n := len(e.fifo) * 2
	if n == 0 {
		n = 64
	}
	nf := make([]fent, n)
	for i := 0; i < e.fifoLen; i++ {
		nf[i] = e.fifo[(e.fifoHead+i)&(len(e.fifo)-1)]
	}
	e.fifo = nf
	e.fifoHead = 0
}

// schedule places (fn, arg) at absolute time t and returns its slot id.
func (e *Engine) schedule(t Time, fn EventFunc, arg any) int32 {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	s := e.alloc(fn, arg)
	if t == e.now {
		// Same-instant: the FIFO drains before the clock advances, so all
		// live entries share at == now and insertion order is seq order.
		e.fifoAt = t
		e.fifoPush(e.seq, s)
		return s
	}
	e.nodes = append(e.nodes, node{at: t, seq: e.seq, slot: s})
	e.siftUp(len(e.nodes) - 1)
	return s
}

// scheduleSeq places (fn, arg) at time t under an explicit sequence number —
// the Waker's stale-slot adoption path (see waker.go). A fresh sequence
// number is still consumed, exactly as a plain push would, so every other
// event's numbering is unaffected. The node always enters the heap: an
// adopted (old, small) sequence number would violate the FIFO's
// insertion-order invariant, and the pop merge handles an at==now heap node
// correctly.
func (e *Engine) scheduleSeq(t Time, seq uint64, fn EventFunc, arg any) (int32, uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	fresh := e.seq
	s := e.alloc(fn, arg)
	e.nodes = append(e.nodes, node{at: t, seq: seq, slot: s})
	e.siftUp(len(e.nodes) - 1)
	return s, fresh
}

// reschedule moves a live slot to an earlier-or-equal time t — the
// decrease-key behind Waker coalescing. seq is the sequence number the moved
// event assumes; a fresh one is consumed regardless (callers pass either the
// fresh number, via freshSeq semantics, or an adopted stale one). The slot
// must be heap-resident; same-instant FIFO entries are never rescheduled
// (nothing can be earlier than now).
func (e *Engine) reschedule(s int32, t Time, seq uint64) uint64 {
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	i := e.pos[s]
	if i < 0 {
		panic("sim: reschedule of a non-heap event")
	}
	e.seq++
	fresh := e.seq
	if seq == useFreshSeq {
		seq = fresh
	}
	if t == e.now && seq == fresh {
		// Move heap -> FIFO: remove node i, then enqueue at the tail (the
		// fresh seq is the largest live one, so FIFO order is preserved).
		e.heapRemove(int(i))
		e.fifoAt = t
		e.fifoPush(seq, s)
		return fresh
	}
	// The new key is strictly smaller than the old one — t < the node's
	// current time (an equal-or-later request is absorbed by the caller), and
	// the FIFO path above covers the only same-instant case — so the node can
	// only move toward the root.
	e.nodes[i].at = t
	e.nodes[i].seq = seq
	e.siftUp(int(i))
	return fresh
}

// useFreshSeq asks reschedule to use the freshly consumed sequence number.
const useFreshSeq = ^uint64(0)

// heapRemove deletes the node at index i, preserving the heap invariant.
func (e *Engine) heapRemove(i int) {
	h := e.nodes
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		e.pos[h[i].slot] = int32(i)
	}
	e.nodes = h[:n]
	if i < n {
		e.siftUp(i)
		e.siftDown(int(e.pos[h[i].slot]))
	}
}

// popNext removes and returns the earliest event's (at, slot). The FIFO and
// the heap are merged by (at, seq): heap nodes at the FIFO's instant always
// carry smaller sequence numbers (they were scheduled before the clock
// reached it), so the comparison is exact, not heuristic.
func (e *Engine) popNext() (Time, int32, bool) {
	if e.fifoLen > 0 {
		if len(e.nodes) > 0 {
			nd := e.nodes[0]
			f := e.fifo[e.fifoHead]
			if nd.at < e.fifoAt || (nd.at == e.fifoAt && nd.seq < f.seq) {
				e.heapRemove(0)
				return nd.at, nd.slot, true
			}
		}
		f := e.fifo[e.fifoHead]
		e.fifoHead = (e.fifoHead + 1) & (len(e.fifo) - 1)
		e.fifoLen--
		return e.fifoAt, f.slot, true
	}
	if len(e.nodes) == 0 {
		return 0, 0, false
	}
	nd := e.nodes[0]
	e.heapRemove(0)
	return nd.at, nd.slot, true
}

// peekAt reports the earliest pending timestamp.
func (e *Engine) peekAt() (Time, bool) {
	switch {
	case e.fifoLen > 0 && len(e.nodes) > 0:
		if e.nodes[0].at < e.fifoAt {
			return e.nodes[0].at, true
		}
		return e.fifoAt, true
	case e.fifoLen > 0:
		return e.fifoAt, true
	case len(e.nodes) > 0:
		return e.nodes[0].at, true
	}
	return 0, false
}

// AtFunc schedules fn(arg) at absolute time t. This is the allocation-free
// scheduling path: fn is typically a long-lived handler (a bound method
// value created once at component construction, or a package-level
// dispatcher) and arg a pointer the caller already owns, so steady-state
// scheduling performs no heap allocation. Scheduling in the past panics: it
// always indicates a component bug, and silently clamping would hide it.
func (e *Engine) AtFunc(t Time, fn EventFunc, arg any) { e.schedule(t, fn, arg) }

// AfterFunc schedules fn(arg) d picoseconds from now. Negative d panics.
func (e *Engine) AfterFunc(d Time, fn EventFunc, arg any) { e.schedule(e.now+d, fn, arg) }

// callThunk dispatches the compatibility path: arg is the caller's func().
func callThunk(arg any) { arg.(func())() }

// At schedules fn to run at absolute time t. It is a thin wrapper over
// AtFunc for cold call sites (experiment setup, tests); hot paths should
// use AtFunc with a reusable handler instead of allocating a closure per
// event.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, callThunk, fn) }

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, callThunk, fn) }

// SetEventHook installs fn to run after every `every`-th executed event,
// between events (never inside one). The invariant auditor uses this as its
// checking cadence. Passing fn == nil or every == 0 removes the hook. The
// hook must not schedule events; it observes state between them.
func (e *Engine) SetEventHook(every uint64, fn func()) {
	if fn == nil || every == 0 {
		e.hook, e.hookEvery, e.hookLeft = nil, 0, 0
		return
	}
	e.hook, e.hookEvery, e.hookLeft = fn, every, every
}

// Step executes the earliest pending event. It reports false if no events
// remain.
func (e *Engine) Step() bool {
	at, s, ok := e.popNext()
	if !ok {
		return false
	}
	e.now = at
	e.nRun++
	fn, arg := e.slots[s].fn, e.slots[s].arg
	e.release(s)
	fn(arg)
	if e.hook != nil {
		e.hookLeft--
		if e.hookLeft == 0 {
			e.hookLeft = e.hookEvery
			e.hook()
		}
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.peekAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Snapshot is an opaque capture of an engine's full state at one instant:
// scheduler internals, every registered component's state, and the state of
// Stateful event arguments in flight. Restore writes it back in place.
type Snapshot struct {
	now  Time
	seq  uint64
	nRun uint64

	nodes []node
	slots []eslot
	free  []int32
	pos   []int32

	fifo     []fent // unwrapped: head at index 0
	fifoAt   Time
	hookLeft uint64

	regStates []any

	// argSlots/argStates capture Stateful event arguments by slot id. A
	// pointer appearing in several live slots (or also inside a component
	// queue) is saved more than once; the copies are taken at the same
	// instant, so restoring them is idempotent.
	argSlots  []int32
	argStates []any
}

// Snapshot captures the engine and every registered component. The capture
// is a deep copy: continuing to run the engine does not disturb it.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		now:      e.now,
		seq:      e.seq,
		nRun:     e.nRun,
		nodes:    append([]node(nil), e.nodes...),
		slots:    append([]eslot(nil), e.slots...),
		free:     append([]int32(nil), e.free...),
		pos:      append([]int32(nil), e.pos...),
		fifoAt:   e.fifoAt,
		hookLeft: e.hookLeft,
	}
	s.fifo = make([]fent, e.fifoLen)
	for i := 0; i < e.fifoLen; i++ {
		s.fifo[i] = e.fifo[(e.fifoHead+i)&(len(e.fifo)-1)]
	}
	s.regStates = make([]any, len(e.regs))
	for i, r := range e.regs {
		s.regStates[i] = r.SaveState()
	}
	// Capture Stateful arguments of live events (heap + FIFO): in-flight
	// requests and pooled completion records whose contents the continued
	// run will overwrite.
	saveArg := func(slot int32) {
		if st, ok := e.slots[slot].arg.(Stateful); ok {
			s.argSlots = append(s.argSlots, slot)
			s.argStates = append(s.argStates, st.SaveState())
		}
	}
	for _, nd := range e.nodes {
		saveArg(nd.slot)
	}
	for _, f := range s.fifo {
		saveArg(f.slot)
	}
	return s
}

// Restore rewinds the engine and every registered component to the captured
// instant. It must be called on the engine that produced the snapshot (the
// capture holds positional component state). The snapshot survives the
// restore and can be restored again.
func (e *Engine) Restore(s *Snapshot) {
	if len(s.regStates) != len(e.regs) {
		panic(fmt.Sprintf("sim: restore with %d component states onto %d registered components",
			len(s.regStates), len(e.regs)))
	}
	e.now = s.now
	e.seq = s.seq
	e.nRun = s.nRun
	e.nodes = append(e.nodes[:0], s.nodes...)
	e.slots = append(e.slots[:0], s.slots...)
	e.free = append(e.free[:0], s.free...)
	e.pos = append(e.pos[:0], s.pos...)
	e.fifo = append(e.fifo[:0], s.fifo...)
	// The ring must stay power-of-two sized for the mask arithmetic; restore
	// re-rounds it with head at 0.
	n := 64
	for n < len(s.fifo) {
		n *= 2
	}
	if cap(e.fifo) >= n {
		e.fifo = e.fifo[:n]
	} else {
		e.fifo = make([]fent, n)
		copy(e.fifo, s.fifo)
	}
	e.fifoHead = 0
	e.fifoLen = len(s.fifo)
	e.fifoAt = s.fifoAt
	e.hookLeft = s.hookLeft
	for i, r := range e.regs {
		r.LoadState(s.regStates[i])
	}
	for i, slot := range s.argSlots {
		e.slots[slot].arg.(Stateful).LoadState(s.argStates[i])
	}
}
