// Package sim provides the discrete-event simulation engine used by every
// component of the host-network simulator.
//
// Time is an integer count of picoseconds, which keeps all timing algebra
// exact: DRAM burst durations, PCIe serialization delays, and mode-switch
// penalties compose without floating-point drift. Events fire in (time, seq)
// order, so two events scheduled for the same instant run in scheduling
// order, making whole-simulation runs fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1].fn = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engines are not safe for concurrent use;
// the simulator is deliberately single-threaded so that runs are reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nRun   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a component bug, and silently clamping would hide it.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event. It reports false if no events
// remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nRun++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
