// Package sim provides the discrete-event simulation engine used by every
// component of the host-network simulator.
//
// Time is an integer count of picoseconds, which keeps all timing algebra
// exact: DRAM burst durations, PCIe serialization delays, and mode-switch
// penalties compose without floating-point drift. Events fire in (time, seq)
// order, so two events scheduled for the same instant run in scheduling
// order, making whole-simulation runs fully deterministic for a given seed.
//
// The engine is allocation-free in steady state: events live in a flat,
// engine-owned 4-ary min-heap (no container/heap interface boxing), and the
// AtFunc/AfterFunc path carries callbacks as a (func(arg any), arg) pair so
// hot components schedule with a long-lived handler plus a pooled or
// already-allocated argument instead of a fresh closure. At/After remain as
// thin wrappers for cold call sites.
package sim

import "fmt"

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	}
}

// EventFunc is an event callback. The argument is whatever was passed to
// AtFunc/AfterFunc, letting a single long-lived function value serve every
// scheduling of a component's handler (bound method values, package-level
// dispatchers) with the per-event state carried in arg.
type EventFunc func(arg any)

type event struct {
	at  Time
	seq uint64
	fn  EventFunc
	arg any
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engines are not safe for concurrent use;
// the simulator is deliberately single-threaded so that runs are reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events []event // flat 4-ary min-heap ordered by (at, seq)
	nRun   uint64

	// Event-cadence hook (see SetEventHook). hook == nil is the common case
	// and costs Step a single untaken branch.
	hook      func()
	hookEvery uint64
	hookLeft  uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending reports the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// The heap is 4-ary: children of node i are 4i+1..4i+4, parent (i-1)/4.
// Compared to a binary heap this halves tree depth (fewer cache lines per
// sift) at the cost of up to three extra comparisons per level, a trade
// that wins for the small, hot heaps the simulator sustains. Since (at,
// seq) is a strict total order (seq is unique), every valid min-heap pops
// in the same sequence, so the layout change cannot perturb simulation
// results.

// siftUp moves the event at index i toward the root until its parent is
// not after it.
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].seq < ev.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// siftDown moves the event at index i toward the leaves until no child is
// before it.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Find the earliest of up to four children.
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for c++; c < end; c++ {
			if h[c].at < h[m].at || (h[c].at == h[m].at && h[c].seq < h[m].seq) {
				m = c
			}
		}
		if ev.at < h[m].at || (ev.at == h[m].at && ev.seq < h[m].seq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// push adds an event, reusing the backing array across the run.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/arg so the GC can reclaim them
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev
}

// AtFunc schedules fn(arg) at absolute time t. This is the allocation-free
// scheduling path: fn is typically a long-lived handler (a bound method
// value created once at component construction, or a package-level
// dispatcher) and arg a pointer the caller already owns, so steady-state
// scheduling performs no heap allocation. Scheduling in the past panics: it
// always indicates a component bug, and silently clamping would hide it.
func (e *Engine) AtFunc(t Time, fn EventFunc, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn, arg: arg})
}

// AfterFunc schedules fn(arg) d picoseconds from now. Negative d panics.
func (e *Engine) AfterFunc(d Time, fn EventFunc, arg any) { e.AtFunc(e.now+d, fn, arg) }

// callThunk dispatches the compatibility path: arg is the caller's func().
func callThunk(arg any) { arg.(func())() }

// At schedules fn to run at absolute time t. It is a thin wrapper over
// AtFunc for cold call sites (experiment setup, tests); hot paths should
// use AtFunc with a reusable handler instead of allocating a closure per
// event.
func (e *Engine) At(t Time, fn func()) { e.AtFunc(t, callThunk, fn) }

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.AtFunc(e.now+d, callThunk, fn) }

// SetEventHook installs fn to run after every `every`-th executed event,
// between events (never inside one). The invariant auditor uses this as its
// checking cadence. Passing fn == nil or every == 0 removes the hook. The
// hook must not schedule events; it observes state between them.
func (e *Engine) SetEventHook(every uint64, fn func()) {
	if fn == nil || every == 0 {
		e.hook, e.hookEvery, e.hookLeft = nil, 0, 0
		return
	}
	e.hook, e.hookEvery, e.hookLeft = fn, every, every
}

// Step executes the earliest pending event. It reports false if no events
// remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nRun++
	ev.fn(ev.arg)
	if e.hook != nil {
		e.hookLeft--
		if e.hookLeft == 0 {
			e.hookLeft = e.hookEvery
			e.hook()
		}
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
