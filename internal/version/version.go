// Package version derives build identification from the information the Go
// toolchain embeds in every binary (runtime/debug.ReadBuildInfo), so the
// CLI's -version flag and hostnetd's /version endpoint report the module
// version, VCS revision, and toolchain without any linker-flag plumbing.
package version

import (
	"runtime"
	"runtime/debug"
	"strings"
)

// Info is the build identification exposed at hostnetd's /version endpoint
// and printed by the -version flag of both binaries.
type Info struct {
	Version   string `json:"version"`              // module version, or "devel"
	Revision  string `json:"revision,omitempty"`   // vcs.revision, if stamped
	BuildTime string `json:"build_time,omitempty"` // vcs.time, if stamped
	Modified  bool   `json:"modified,omitempty"`   // vcs.modified (dirty tree)
	GoVersion string `json:"go_version"`
}

// Get reads the running binary's build info. It never fails: binaries built
// without VCS stamping (e.g. `go test` binaries) report Version "devel"
// with only the toolchain filled in.
func Get() Info {
	info := Info{Version: "devel", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		info.Version = v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.BuildTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the info on one line, e.g. "devel+1a2b3c4d5e6f (go1.22.0)".
func (i Info) String() string {
	s := i.Version
	if rev := i.Revision; rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// VCS-stamped pseudo-versions already embed the short revision (and
		// a +dirty marker); don't repeat what the version string shows.
		if !strings.Contains(s, rev) {
			s += "+" + rev
		}
	}
	if i.Modified && !strings.Contains(s, "dirty") {
		s += "-dirty"
	}
	return s + " (" + i.GoVersion + ")"
}
