package version

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetNeverEmpty(t *testing.T) {
	i := Get()
	if i.Version == "" {
		t.Error("Version empty; want at least \"devel\"")
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go toolchain version", i.GoVersion)
	}
	if s := i.String(); !strings.Contains(s, i.Version) || !strings.Contains(s, i.GoVersion) {
		t.Errorf("String() = %q, missing version or toolchain", s)
	}
}

func TestInfoJSONShape(t *testing.T) {
	b, err := json.Marshal(Info{Version: "v1.2.3", Revision: "abc", GoVersion: "go1.22.0"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":"v1.2.3","revision":"abc","go_version":"go1.22.0"}`
	if string(b) != want {
		t.Errorf("got %s, want %s", b, want)
	}
}

func TestStringDirtyAndTruncation(t *testing.T) {
	i := Info{Version: "devel", Revision: "0123456789abcdef", Modified: true, GoVersion: "go1.22.0"}
	if got, want := i.String(), "devel+0123456789ab-dirty (go1.22.0)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
