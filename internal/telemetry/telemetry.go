// Package telemetry reimplements the measurement methodology of the paper's
// §4.2 in simulator form: time-weighted queue/buffer occupancy (O), request
// arrival rates (R), and average latency derived through Little's law
// (L = O/R). On real hardware these come from Intel uncore performance
// counters sampled every second; in the simulator they are exact integrals
// over a measurement window.
//
// Every probe supports Reset, which marks the start of the measurement
// window. Experiments warm the system up, Reset all probes, run the measured
// interval, and then read averages.
package telemetry

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Integrator tracks a time-weighted integral of an integer level (queue
// occupancy, buffer fill, credits in use). Avg reports the time-average level
// over the window since the last Reset.
type Integrator struct {
	eng   *sim.Engine
	level int64
	area  int64 // sum of level * duration (picosecond-weighted)
	max   int64
	since sim.Time
	last  sim.Time
}

// NewIntegrator returns an integrator starting at level 0.
func NewIntegrator(eng *sim.Engine) *Integrator {
	g := &Integrator{eng: eng, since: eng.Now(), last: eng.Now()}
	eng.Register(g)
	return g
}

func (g *Integrator) settle() {
	now := g.eng.Now()
	if now > g.last {
		g.area += g.level * int64(now-g.last)
		g.last = now
	}
}

// Add changes the level by delta.
func (g *Integrator) Add(delta int) {
	g.settle()
	g.level += int64(delta)
	if g.level < 0 {
		panic("telemetry: integrator level went negative")
	}
	if g.level > g.max {
		g.max = g.level
	}
}

// Set forces the level to v.
func (g *Integrator) Set(v int) { g.Add(v - int(g.level)) }

// Level reports the instantaneous level.
func (g *Integrator) Level() int { return int(g.level) }

// Max reports the maximum level observed since the last Reset.
func (g *Integrator) Max() int { return int(g.max) }

// Avg reports the time-average level over the measurement window.
func (g *Integrator) Avg() float64 {
	g.settle()
	dur := g.last - g.since
	if dur <= 0 {
		return float64(g.level)
	}
	return float64(g.area) / float64(dur)
}

// Reset starts a new measurement window at the current time, preserving the
// instantaneous level.
func (g *Integrator) Reset() {
	g.settle()
	g.area = 0
	g.max = g.level
	g.since = g.eng.Now()
	g.last = g.eng.Now()
}

// Counter counts events over the measurement window and converts them to
// rates.
type Counter struct {
	eng   *sim.Engine
	n     uint64
	since sim.Time
}

// NewCounter returns a zeroed counter.
func NewCounter(eng *sim.Engine) *Counter {
	c := &Counter{eng: eng, since: eng.Now()}
	eng.Register(c)
	return c
}

// Inc adds one event.
func (c *Counter) Inc() { c.n++ }

// IncN adds n events.
func (c *Counter) IncN(n int) { c.n += uint64(n) }

// Count reports events since the last Reset.
func (c *Counter) Count() uint64 { return c.n }

// RatePerSecond reports events per simulated second over the window.
func (c *Counter) RatePerSecond() float64 {
	dur := c.eng.Now() - c.since
	if dur <= 0 {
		return 0
	}
	return float64(c.n) / dur.Seconds()
}

// BytesPerSecond treats each event as one 64-byte cacheline and reports the
// implied bandwidth in bytes per simulated second.
func (c *Counter) BytesPerSecond() float64 { return c.RatePerSecond() * 64 }

// Reset starts a new window.
func (c *Counter) Reset() { c.n = 0; c.since = c.eng.Now() }

// Latency pairs an occupancy integrator with an arrival counter and reports
// average latency via Little's law, exactly as the paper derives per-domain
// latency from uncore O and R measurements.
type Latency struct {
	Occ *Integrator
	Arr *Counter

	// direct, when non-nil, shadows the probe with per-request timestamp
	// sampling (see EnableDirectSampling). Nil in normal operation, so the
	// Enter/Exit hot path pays only an untaken branch.
	direct *directSampler
}

// directSampler pairs each Enter timestamp with an Exit in FIFO order. The sum
// of (exit - enter) over FIFO-matched pairs equals the sum of true
// per-request latencies whenever every entered request eventually exits
// (the matching is a permutation, and the total is permutation-invariant),
// so out-of-order completion does not bias the average.
type directSampler struct {
	enters []sim.Time
	head   int // consumed prefix of enters
	sumNs  float64
	count  uint64
}

// NewLatency returns a latency probe.
func NewLatency(eng *sim.Engine) *Latency {
	l := &Latency{Occ: NewIntegrator(eng), Arr: NewCounter(eng)}
	eng.Register(l)
	return l
}

// EnableDirectSampling attaches the per-request timestamp shadow used by the
// audit cross-check. Idempotent; call before traffic starts.
func (l *Latency) EnableDirectSampling() {
	if l.direct == nil {
		l.direct = &directSampler{}
	}
}

// Enter records a request entering the measured stage.
func (l *Latency) Enter() {
	l.Occ.Add(1)
	l.Arr.Inc()
	if l.direct != nil {
		l.direct.enters = append(l.direct.enters, l.Occ.eng.Now())
	}
}

// Exit records a request leaving the measured stage.
func (l *Latency) Exit() {
	l.Occ.Add(-1)
	if d := l.direct; d != nil && d.head < len(d.enters) {
		enter := d.enters[d.head]
		d.head++
		d.sumNs += (l.Occ.eng.Now() - enter).Nanoseconds()
		d.count++
	}
}

// AvgNanos reports the Little's-law average latency (O/R) in nanoseconds.
// A degenerate window — nonzero occupancy with zero arrivals, e.g. a window
// that ends with only in-flight requests — has no defined O/R latency and
// reports NaN rather than silently claiming zero.
func (l *Latency) AvgNanos() float64 {
	rate := l.Arr.RatePerSecond() // requests per second
	if rate == 0 {
		if l.Occ.Avg() > 0 {
			return math.NaN()
		}
		return 0
	}
	return l.Occ.Avg() / rate * 1e9
}

// AvgNanosDirect reports the direct-sampling average latency over requests
// completed since the last Reset. It returns 0 before EnableDirectSampling
// or when nothing completed.
func (l *Latency) AvgNanosDirect() float64 {
	if l.direct == nil || l.direct.count == 0 {
		return 0
	}
	return l.direct.sumNs / float64(l.direct.count)
}

// DirectCount reports completed requests observed by the direct sampler
// since the last Reset.
func (l *Latency) DirectCount() uint64 {
	if l.direct == nil {
		return 0
	}
	return l.direct.count
}

// Reset starts a new window. Direct-sampling accumulators restart; pending
// enter timestamps are preserved so requests in flight across the window
// boundary still measure their full latency on exit.
func (l *Latency) Reset() {
	l.Occ.Reset()
	l.Arr.Reset()
	if d := l.direct; d != nil {
		d.sumNs, d.count = 0, 0
		// Compact the consumed prefix so the slice doesn't grow forever.
		if d.head > 0 {
			d.enters = append(d.enters[:0], d.enters[d.head:]...)
			d.head = 0
		}
	}
}

// FracTimer measures the fraction of window time a boolean condition holds
// (e.g. "WPQ is full", "PFC pause asserted").
type FracTimer struct {
	eng     *sim.Engine
	on      bool
	onSince sim.Time
	total   sim.Time
	since   sim.Time
}

// NewFracTimer returns a timer with the condition initially false.
func NewFracTimer(eng *sim.Engine) *FracTimer {
	f := &FracTimer{eng: eng, since: eng.Now()}
	eng.Register(f)
	return f
}

// Set updates the condition.
func (f *FracTimer) Set(on bool) {
	if on == f.on {
		return
	}
	now := f.eng.Now()
	if f.on {
		f.total += now - f.onSince
	} else {
		f.onSince = now
	}
	f.on = on
}

// On reports the instantaneous condition.
func (f *FracTimer) On() bool { return f.on }

// Frac reports the fraction of the window the condition held, in [0, 1].
func (f *FracTimer) Frac() float64 {
	now := f.eng.Now()
	total := f.total
	if f.on {
		total += now - f.onSince
	}
	dur := now - f.since
	if dur <= 0 {
		return 0
	}
	return float64(total) / float64(dur)
}

// Reset starts a new window, preserving the instantaneous condition.
func (f *FracTimer) Reset() {
	f.total = 0
	f.since = f.eng.Now()
	if f.on {
		f.onSince = f.eng.Now()
	}
}

// Samples accumulates scalar observations (e.g. per-window bank deviation)
// and summarizes them as a CDF.
type Samples struct {
	xs []float64
	// sorted memoizes the sorted view so repeated quantile reads (every
	// percentile of a rendered CDF) sort the window once instead of
	// re-copying and re-sorting the full sample slice per call. Add and
	// Reset invalidate it; the backing array is reused across windows.
	sorted []float64
}

// Add records one observation.
func (s *Samples) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = s.sorted[:0]
}

// Len reports the number of observations.
func (s *Samples) Len() int { return len(s.xs) }

// Reset discards all observations.
func (s *Samples) Reset() {
	s.xs = s.xs[:0]
	s.sorted = s.sorted[:0]
}

// Quantile reports the q-quantile (q in [0,1]) of the observations, or 0 if
// none were recorded, using the nearest-rank definition: the smallest
// sample x such that at least a fraction q of the observations are <= x —
// the ceil(q*n)-th smallest. (An earlier version floored int(q*(n-1)),
// which biased small windows low: p99 over 50 samples returned the 49th
// rank instead of the 50th.)
func (s *Samples) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if len(s.sorted) != len(s.xs) {
		s.sorted = append(s.sorted[:0], s.xs...)
		sort.Float64s(s.sorted)
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[len(s.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.sorted[idx]
}

// FracAtLeast reports the fraction of observations >= x.
func (s *Samples) FracAtLeast(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.xs {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(s.xs))
}

// Mean reports the arithmetic mean of the observations.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Histogram accumulates latency observations in exponential buckets and
// reports percentiles — the probe behind tail-latency measurements (the
// paper's production studies report tail inflation; the simulator exposes
// the same view per domain).
type Histogram struct {
	// buckets[0] covers [0, 2) ns — including sub-nanosecond samples, which
	// ObserveNs has always placed there — and bucket i >= 1 covers
	// [2^i, 2^(i+1)) ns.
	buckets []uint64
	count   uint64
	maxNs   float64
}

// NewHistogram returns an empty histogram covering 0 ns .. ~1 s.
func NewHistogram() *Histogram { return &Histogram{buckets: make([]uint64, 30)} }

// ObserveNs records one latency sample in nanoseconds.
func (h *Histogram) ObserveNs(ns float64) {
	if ns < 0 {
		return
	}
	if ns > h.maxNs {
		h.maxNs = ns
	}
	i := 0
	v := ns
	for v >= 2 && i < len(h.buckets)-1 {
		v /= 2
		i++
	}
	h.buckets[i]++
	h.count++
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max reports the largest observed sample.
func (h *Histogram) Max() float64 { return h.maxNs }

// PercentileNs reports an upper bound on the p-quantile (p in [0,1]) using
// bucket upper edges, clamped to the largest observed sample; resolution is
// a factor of two. Since bucket 0 is [0, 2), a histogram of sub-nanosecond
// samples reports their true maximum rather than an invented 1-2 ns floor.
func (h *Histogram) PercentileNs(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target >= h.count {
		return h.maxNs
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			edge := float64(uint64(1) << (i + 1)) // bucket upper edge
			if edge > h.maxNs {
				edge = h.maxNs
			}
			return edge
		}
	}
	return h.maxNs
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.maxNs = 0
}

// --- Snapshot support -------------------------------------------------------
//
// Probes that take an engine register themselves with its snapshot set at
// construction; Samples and Histogram are plain values, so their owners
// register them (or fold them into their own state).

type integratorState struct {
	level, area, max int64
	since, last      sim.Time
}

// SaveState implements sim.Stateful.
func (g *Integrator) SaveState() any {
	return integratorState{level: g.level, area: g.area, max: g.max, since: g.since, last: g.last}
}

// LoadState implements sim.Stateful.
func (g *Integrator) LoadState(state any) {
	st := state.(integratorState)
	g.level, g.area, g.max, g.since, g.last = st.level, st.area, st.max, st.since, st.last
}

type counterState struct {
	n     uint64
	since sim.Time
}

// SaveState implements sim.Stateful.
func (c *Counter) SaveState() any { return counterState{n: c.n, since: c.since} }

// LoadState implements sim.Stateful.
func (c *Counter) LoadState(state any) {
	st := state.(counterState)
	c.n, c.since = st.n, st.since
}

// latencyState captures the direct-sampling shadow; Occ and Arr snapshot
// through their own registrations.
type latencyState struct {
	direct bool
	enters []sim.Time
	head   int
	sumNs  float64
	count  uint64
}

// SaveState implements sim.Stateful.
func (l *Latency) SaveState() any {
	if l.direct == nil {
		return latencyState{}
	}
	return latencyState{
		direct: true,
		enters: append([]sim.Time(nil), l.direct.enters...),
		head:   l.direct.head,
		sumNs:  l.direct.sumNs,
		count:  l.direct.count,
	}
}

// LoadState implements sim.Stateful.
func (l *Latency) LoadState(state any) {
	st := state.(latencyState)
	if !st.direct {
		l.direct = nil
		return
	}
	if l.direct == nil {
		l.direct = &directSampler{}
	}
	l.direct.enters = append(l.direct.enters[:0], st.enters...)
	l.direct.head, l.direct.sumNs, l.direct.count = st.head, st.sumNs, st.count
}

type fracTimerState struct {
	on             bool
	onSince, total sim.Time
	since          sim.Time
}

// SaveState implements sim.Stateful.
func (f *FracTimer) SaveState() any {
	return fracTimerState{on: f.on, onSince: f.onSince, total: f.total, since: f.since}
}

// LoadState implements sim.Stateful.
func (f *FracTimer) LoadState(state any) {
	st := state.(fracTimerState)
	f.on, f.onSince, f.total, f.since = st.on, st.onSince, st.total, st.since
}

// SaveState implements sim.Stateful. The sorted memo is not saved: it is a
// pure function of xs and rebuilds on the next Quantile read.
func (s *Samples) SaveState() any { return append([]float64(nil), s.xs...) }

// LoadState implements sim.Stateful.
func (s *Samples) LoadState(state any) {
	s.xs = append(s.xs[:0], state.([]float64)...)
	s.sorted = s.sorted[:0]
}

type histogramState struct {
	buckets []uint64
	count   uint64
	maxNs   float64
}

// SaveState implements sim.Stateful.
func (h *Histogram) SaveState() any {
	return histogramState{buckets: append([]uint64(nil), h.buckets...), count: h.count, maxNs: h.maxNs}
}

// LoadState implements sim.Stateful.
func (h *Histogram) LoadState(state any) {
	st := state.(histogramState)
	h.buckets = append(h.buckets[:0], st.buckets...)
	h.count, h.maxNs = st.count, st.maxNs
}
