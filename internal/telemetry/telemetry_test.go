package telemetry

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestIntegratorAvg(t *testing.T) {
	eng := sim.New()
	g := NewIntegrator(eng)
	eng.At(0, func() { g.Set(2) })
	eng.At(10, func() { g.Set(4) })
	eng.At(30, func() { g.Set(0) })
	eng.At(40, func() {})
	eng.Run()
	// levels: 2 for [0,10), 4 for [10,30), 0 for [30,40) => (20+80+0)/40 = 2.5
	if got := g.Avg(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Avg = %v, want 2.5", got)
	}
	if g.Max() != 4 {
		t.Fatalf("Max = %d, want 4", g.Max())
	}
}

func TestIntegratorResetPreservesLevel(t *testing.T) {
	eng := sim.New()
	g := NewIntegrator(eng)
	eng.At(0, func() { g.Set(3) })
	eng.At(10, func() { g.Reset() })
	eng.At(20, func() {})
	eng.Run()
	if got := g.Avg(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Avg after reset = %v, want 3", got)
	}
	if g.Level() != 3 {
		t.Fatalf("Level = %d, want 3", g.Level())
	}
}

func TestIntegratorNegativePanics(t *testing.T) {
	eng := sim.New()
	g := NewIntegrator(eng)
	defer func() {
		if recover() == nil {
			t.Fatalf("negative level did not panic")
		}
	}()
	g.Add(-1)
}

func TestCounterRate(t *testing.T) {
	eng := sim.New()
	c := NewCounter(eng)
	eng.At(sim.Microsecond, func() { c.IncN(1000) })
	eng.Run()
	// 1000 events in 1us = 1e9 events/s
	if got := c.RatePerSecond(); math.Abs(got-1e9) > 1 {
		t.Fatalf("rate = %v, want 1e9", got)
	}
	if got := c.BytesPerSecond(); math.Abs(got-64e9) > 64 {
		t.Fatalf("bytes/s = %v, want 64e9", got)
	}
}

func TestCounterReset(t *testing.T) {
	eng := sim.New()
	c := NewCounter(eng)
	eng.At(10, func() { c.Inc(); c.Reset() })
	eng.At(20, func() { c.Inc() })
	eng.Run()
	if c.Count() != 1 {
		t.Fatalf("Count = %d, want 1", c.Count())
	}
}

// Little's law identity: if N requests each spend exactly d in the stage and
// arrivals are spread over the window, measured latency = d.
func TestLatencyLittlesLaw(t *testing.T) {
	eng := sim.New()
	l := NewLatency(eng)
	const d = 70 * sim.Nanosecond
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Nanosecond
		eng.At(at, func() { l.Enter() })
		eng.At(at+d, func() { l.Exit() })
	}
	eng.Run()
	if got := l.AvgNanos(); math.Abs(got-70) > 0.5 {
		t.Fatalf("AvgNanos = %v, want ~70", got)
	}
}

// Property: for random per-request residencies, Little's-law latency equals
// the true mean residency (the window covers all activity exactly).
func TestLatencyMatchesMeanResidencyProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		eng := sim.New()
		l := NewLatency(eng)
		var sum float64
		for i, r := range raw {
			d := sim.Time(int(r)+1) * sim.Nanosecond
			at := sim.Time(i) * 5 * sim.Nanosecond
			sum += d.Nanoseconds()
			eng.At(at, func() { l.Enter() })
			eng.At(at+d, func() { l.Exit() })
		}
		eng.Run()
		want := sum / float64(len(raw))
		got := l.AvgNanos()
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFracTimer(t *testing.T) {
	eng := sim.New()
	f := NewFracTimer(eng)
	eng.At(0, func() { f.Set(true) })
	eng.At(25, func() { f.Set(false) })
	eng.At(50, func() { f.Set(true) })
	eng.At(75, func() { f.Set(false) })
	eng.At(100, func() {})
	eng.Run()
	if got := f.Frac(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Frac = %v, want 0.5", got)
	}
}

func TestFracTimerOpenInterval(t *testing.T) {
	eng := sim.New()
	f := NewFracTimer(eng)
	eng.At(50, func() { f.Set(true) })
	eng.At(100, func() {})
	eng.Run()
	if got := f.Frac(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Frac with condition still on = %v, want 0.5", got)
	}
	if !f.On() {
		t.Fatalf("On = false, want true")
	}
}

func TestFracTimerIdempotentSet(t *testing.T) {
	eng := sim.New()
	f := NewFracTimer(eng)
	eng.At(0, func() { f.Set(true); f.Set(true) })
	eng.At(10, func() { f.Set(false); f.Set(false) })
	eng.At(20, func() {})
	eng.Run()
	if got := f.Frac(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Frac = %v, want 0.5", got)
	}
}

func TestFracTimerResetWhileOn(t *testing.T) {
	eng := sim.New()
	f := NewFracTimer(eng)
	eng.At(0, func() { f.Set(true) })
	eng.At(10, func() { f.Reset() })
	eng.At(20, func() {})
	eng.Run()
	if got := f.Frac(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Frac after reset while on = %v, want 1.0", got)
	}
}

func TestSamplesQuantiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	med := s.Quantile(0.5)
	if med < 49 || med > 52 {
		t.Fatalf("median = %v", med)
	}
	if got := s.FracAtLeast(51); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FracAtLeast(51) = %v, want 0.5", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
}

func TestSamplesEmpty(t *testing.T) {
	var s Samples
	if s.Quantile(0.5) != 0 || s.FracAtLeast(1) != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatalf("empty Samples should report zeros")
	}
}

func TestSamplesReset(t *testing.T) {
	var s Samples
	s.Add(5)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after reset = %d", s.Len())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	// 90 fast samples at ~70ns, 10 slow at ~1000ns.
	for i := 0; i < 90; i++ {
		h.ObserveNs(70)
	}
	for i := 0; i < 10; i++ {
		h.ObserveNs(1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.PercentileNs(0.5)
	if p50 < 70 || p50 > 128 {
		t.Fatalf("p50 = %v, want the ~70ns bucket", p50)
	}
	p99 := h.PercentileNs(0.99)
	if p99 < 512 {
		t.Fatalf("p99 = %v, want the ~1000ns bucket", p99)
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.PercentileNs(0.99) != 0 {
		t.Fatalf("empty histogram percentile nonzero")
	}
	h.ObserveNs(-5) // ignored
	if h.Count() != 0 {
		t.Fatalf("negative sample counted")
	}
	h.ObserveNs(0.5)
	h.ObserveNs(1e12) // clamps to the top bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.PercentileNs(1.0); got != 1e12 {
		t.Fatalf("p100 = %v, want max", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestHistogramMonotonePercentilesProperty(t *testing.T) {
	h := NewHistogram()
	r := sim.RNG(5)
	for i := 0; i < 1000; i++ {
		h.ObserveNs(float64(r.IntN(10000)) + 1)
	}
	prev := 0.0
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		v := h.PercentileNs(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%.2f=%v after %v", p, v, prev)
		}
		prev = v
	}
}

// TestSamplesQuantileMemoInvalidation pins the memoized-sort contract: the
// quantile view must reflect samples added or discarded after a prior
// Quantile call sorted the window.
func TestSamplesQuantileMemoInvalidation(t *testing.T) {
	var s Samples
	s.Add(10)
	s.Add(20)
	if got := s.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) = %v, want 20", got)
	}
	s.Add(5) // must invalidate the memoized sorted view
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("Quantile(0) after Add = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) after Add = %v, want 20", got)
	}
	s.Reset()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile after Reset = %v, want 0", got)
	}
	s.Add(7)
	if got := s.Quantile(0.5); got != 7 {
		t.Fatalf("Quantile after Reset+Add = %v, want 7", got)
	}
}

// TestSamplesQuantileRepeatedReadsAllocFree verifies the memoization goal:
// after the first sort, further quantile reads of an unchanged window do
// not copy or sort.
func TestSamplesQuantileRepeatedReadsAllocFree(t *testing.T) {
	var s Samples
	r := sim.RNG(11)
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64())
	}
	s.Quantile(0.5) // first read sorts and memoizes
	allocs := testing.AllocsPerRun(100, func() {
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			s.Quantile(q)
		}
	})
	if allocs != 0 {
		t.Fatalf("repeated Quantile reads allocated %v per run, want 0", allocs)
	}
}

func TestHistogramBucketZeroRange(t *testing.T) {
	// Bucket 0 covers [0, 2) ns: sub-2ns samples land together and report
	// via the max-clamp rather than a fabricated 1ns bucket boundary.
	h := NewHistogram()
	h.ObserveNs(0)
	h.ObserveNs(0.25)
	h.ObserveNs(1.999)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// All three are in bucket 0; every percentile clamps to the true max.
	for _, p := range []float64{0, 0.5, 0.999, 1} {
		if got := h.PercentileNs(p); got != 1.999 {
			t.Fatalf("PercentileNs(%v) = %v, want 1.999 (true max of bucket 0)", p, got)
		}
	}
}

func TestHistogramPercentileExtremes(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.ObserveNs(70)
	}
	h.ObserveNs(900)
	// p=0 is the smallest observation's bucket; p=1 is the max.
	if p0 := h.PercentileNs(0); p0 < 64 || p0 > 128 {
		t.Fatalf("p0 = %v, want the ~70ns bucket", p0)
	}
	if p1 := h.PercentileNs(1); p1 != 900 {
		t.Fatalf("p1 = %v, want exactly the max (900)", p1)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(333)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.PercentileNs(p); got != 333 {
			t.Fatalf("PercentileNs(%v) = %v, want 333 (single sample clamps to max)", p, got)
		}
	}
}

func TestHistogramAllZeroSamples(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.ObserveNs(0)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.PercentileNs(0.99); got != 0 {
		t.Fatalf("p99 = %v, want 0 for all-zero samples", got)
	}
	if h.Max() != 0 {
		t.Fatalf("max = %v, want 0", h.Max())
	}
}

func TestLatencyAvgNanosDegenerateWindowIsNaN(t *testing.T) {
	// A request enters before the window, the window is Reset while it is in
	// flight, and no new request arrives: occupancy is nonzero but the
	// arrival rate is zero. O/R is undefined — AvgNanos must say so with NaN
	// instead of silently reporting 0 ns.
	eng := sim.New()
	l := NewLatency(eng)
	eng.At(0, l.Enter)
	eng.At(10*sim.Nanosecond, func() { l.Reset() })
	eng.At(20*sim.Nanosecond, func() {})
	eng.Run()
	if got := l.AvgNanos(); !math.IsNaN(got) {
		t.Fatalf("AvgNanos = %v for occupied zero-arrival window, want NaN", got)
	}
	// An idle window (no occupancy, no arrivals) stays a plain 0.
	eng2 := sim.New()
	l2 := NewLatency(eng2)
	eng2.At(20*sim.Nanosecond, func() {})
	eng2.Run()
	if got := l2.AvgNanos(); got != 0 {
		t.Fatalf("AvgNanos = %v for idle window, want 0", got)
	}
}

func TestLatencyDirectSamplingMatchesResidency(t *testing.T) {
	eng := sim.New()
	l := NewLatency(eng)
	l.EnableDirectSampling()
	l.EnableDirectSampling() // idempotent
	if l.DirectCount() != 0 || l.AvgNanosDirect() != 0 {
		t.Fatalf("direct sampler not empty before traffic")
	}
	const d = 42 * sim.Nanosecond
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 100 * sim.Nanosecond
		eng.At(at, l.Enter)
		eng.At(at+d, l.Exit)
	}
	eng.Run()
	if l.DirectCount() != 20 {
		t.Fatalf("DirectCount = %d, want 20", l.DirectCount())
	}
	if got := l.AvgNanosDirect(); math.Abs(got-42) > 1e-9 {
		t.Fatalf("AvgNanosDirect = %v, want 42", got)
	}
}

func TestLatencyDirectSamplingOutOfOrderUnbiased(t *testing.T) {
	// FIFO matching pairs exits with enters in arrival order. When requests
	// complete out of order the individual samples are misattributed, but the
	// sum of latencies — hence the average — is permutation-invariant.
	eng := sim.New()
	l := NewLatency(eng)
	l.EnableDirectSampling()
	// Two overlapping requests completing in reverse order:
	// A enters 0 exits 100, B enters 10 exits 50. True mean (100+40)/2 = 70.
	eng.At(0, l.Enter)
	eng.At(10*sim.Nanosecond, l.Enter)
	eng.At(50*sim.Nanosecond, l.Exit)  // B finishes first
	eng.At(100*sim.Nanosecond, l.Exit) // then A
	eng.Run()
	if got := l.AvgNanosDirect(); math.Abs(got-70) > 1e-9 {
		t.Fatalf("AvgNanosDirect = %v, want 70 (order-invariant mean)", got)
	}
}

func TestLatencyDirectSamplingResetPreservesPending(t *testing.T) {
	// A request in flight across a window boundary must still produce a
	// full-latency sample in the new window.
	eng := sim.New()
	l := NewLatency(eng)
	l.EnableDirectSampling()
	eng.At(0, l.Enter)
	eng.At(30*sim.Nanosecond, func() { l.Reset() })
	eng.At(80*sim.Nanosecond, l.Exit)
	eng.Run()
	if l.DirectCount() != 1 {
		t.Fatalf("DirectCount = %d, want 1", l.DirectCount())
	}
	if got := l.AvgNanosDirect(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("AvgNanosDirect = %v, want 80 (full residency across Reset)", got)
	}
}

// TestSamplesQuantileNearestRank pins the nearest-rank definition on the
// edge cases the old floor-truncating index got wrong: a single sample, two
// samples at the upper quantiles, and q just below 1 over a small window.
func TestSamplesQuantileNearestRank(t *testing.T) {
	one := &Samples{}
	one.Add(7)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("n=1 Quantile(%v) = %v, want 7", q, got)
		}
	}

	two := &Samples{}
	two.Add(10)
	two.Add(20)
	// p50 of two samples is the first rank (ceil(0.5*2) = 1).
	if got := two.Quantile(0.5); got != 10 {
		t.Fatalf("n=2 Quantile(0.5) = %v, want 10", got)
	}
	// Anything above 0.5 needs the second rank; the floored index returned
	// the lower sample for every q < 1.
	for _, q := range []float64{0.51, 0.75, 0.99, 0.999} {
		if got := two.Quantile(q); got != 20 {
			t.Fatalf("n=2 Quantile(%v) = %v, want 20", q, got)
		}
	}

	// q just below 1: p99 over 50 samples must be the maximum (rank
	// ceil(0.99*50) = 50), not the 49th rank.
	fifty := &Samples{}
	for i := 1; i <= 50; i++ {
		fifty.Add(float64(i))
	}
	if got := fifty.Quantile(0.99); got != 50 {
		t.Fatalf("n=50 Quantile(0.99) = %v, want 50", got)
	}
	if got := fifty.Quantile(0.98); got != 49 {
		t.Fatalf("n=50 Quantile(0.98) = %v, want 49", got)
	}
	// The median index is unchanged by the redefinition for every n (ceil
	// of n/2 equals the old floored midpoint): pin one even- and one odd-
	// sized window so golden outputs keyed to medians stay stable.
	if got := fifty.Quantile(0.5); got != 25 {
		t.Fatalf("n=50 Quantile(0.5) = %v, want 25", got)
	}
	odd := &Samples{}
	for i := 1; i <= 5; i++ {
		odd.Add(float64(i))
	}
	if got := odd.Quantile(0.5); got != 3 {
		t.Fatalf("n=5 Quantile(0.5) = %v, want 3", got)
	}
}
