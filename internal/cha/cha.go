// Package cha models the Caching and Home Agent: the node that abstracts the
// LLC and memory from the rest of the host network (§3 of the paper).
//
// The CHA is where the paper's domain asymmetries are enforced:
//
//   - C2M writes replenish their LFB credit at CHA *admission* (the C2M-Write
//     domain spans a single hop), while P2M writes hold their IIO credit
//     until *WPQ admission* (the P2M-Write domain spans the MC).
//   - When the memory controller's write queues fill, writes backlog here
//     (the analytic model's N_waiting input).
//   - When the write-side buffering is exhausted, the ingress stalls and
//     requests block *before* admission — the red regime's second phase, in
//     which latency inflates equitably for C2M and P2M alike (§5.2).
package cha

import (
	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config sets the CHA's buffering and propagation latencies. The propagation
// constants are calibrated so the unloaded domain latencies match §4.2 of
// the paper (~70 ns C2M-Read, ~10 ns C2M-Write, ~300 ns P2M-Write).
type Config struct {
	// ReadEntries bounds in-flight reads holding CHA (TOR-style) entries;
	// it is sized to be non-binding (the read domains are credit-limited at
	// the LFB and IIO instead).
	ReadEntries int
	// WriteEntries bounds writes buffered between admission and WPQ
	// admission. When exhausted, the ingress stalls for everyone.
	WriteEntries int

	ProcDelay     sim.Time // admission -> LLC lookup/route
	ToMC          sim.Time // CHA -> MC propagation
	FromMC        sim.Time // MC data -> CHA propagation
	ToCore        sim.Time // CHA -> core data return
	ToIIO         sim.Time // CHA -> IIO data return
	LLCHitLatency sim.Time // service latency for LLC/DDIO hits

	// C2MHitRatio injects probabilistic LLC hits for compute traffic
	// (default 0: the paper's workloads are non-cache-resident).
	C2MHitRatio float64
	// DDIOEvictionReadFrac is the fraction of DDIO evictions that incur an
	// additional directory/coherence memory read. This is the second half of
	// our modeling hypothesis for the paper's unexplained observation that
	// DDIO worsens C2M degradation (§2.1): eviction handling leaks read
	// traffic into the memory controller.
	DDIOEvictionReadFrac float64
	Seed                 uint64

	// Audit, when non-nil, receives the CHA's entry-pool and probe
	// invariants; AuditDomain overrides the default "cha" domain label
	// (multi-socket hosts disambiguate per socket).
	Audit       *audit.Auditor
	AuditDomain string
}

// DefaultConfig returns the Cascade-Lake-calibrated CHA parameters.
func DefaultConfig() Config {
	return Config{
		ReadEntries:   256,
		WriteEntries:  144,
		ProcDelay:     2 * sim.Nanosecond,
		ToMC:          5 * sim.Nanosecond,
		FromMC:        20 * sim.Nanosecond,
		ToCore:        18 * sim.Nanosecond,
		ToIIO:         18 * sim.Nanosecond,
		LLCHitLatency: 20 * sim.Nanosecond,

		DDIOEvictionReadFrac: 0.25,
		Seed:                 1,
	}
}

// Stats exposes the CHA's uncore-counter analogues.
type Stats struct {
	// AdmitLat measures ingress queueing: Submit -> admission. This is the
	// "CHA admission delay" the paper adds to its formula for quadrant 3.
	AdmitLat *telemetry.Latency
	// ReadEntriesOcc / WriteEntriesOcc track pool usage.
	ReadEntriesOcc  *telemetry.Integrator
	WriteEntriesOcc *telemetry.Integrator
	// WBacklog is the analytic model's N_waiting: admitted writes awaiting
	// WPQ admission.
	WBacklog *telemetry.Integrator
	// ReadMCLat is the paper's "CHA->DRAM read latency" per source
	// (Fig 6a): from CHA dispatch to data return at the CHA.
	ReadMCLat [2]*telemetry.Latency
	// WriteMCLat is the paper's "CHA->MC write latency" per source
	// (Fig 6b/6c): from CHA admission to WPQ admission.
	WriteMCLat [2]*telemetry.Latency
	// P2MReadsInflight tracks in-flight P2M reads holding CHA entries — the
	// paper's lower bound on P2M-Read domain credits (Fig 13d, 14d).
	P2MReadsInflight *telemetry.Integrator
	// RPQBlockLat measures, averaged over all reads, the time spent blocked
	// between the CHA and a full RPQ — queueing the formula's O_RPQ cannot
	// see (the analogue of the paper's CHA-backpressure correction).
	RPQBlockLat *telemetry.Latency
	// DDIO outcomes.
	DDIOHits, DDIOWritebacks *telemetry.Counter
	LLCHitsC2M               *telemetry.Counter
}

// Reset starts a new measurement window.
func (s *Stats) Reset() {
	s.AdmitLat.Reset()
	s.ReadEntriesOcc.Reset()
	s.WriteEntriesOcc.Reset()
	s.WBacklog.Reset()
	for i := range s.ReadMCLat {
		s.ReadMCLat[i].Reset()
		s.WriteMCLat[i].Reset()
	}
	s.P2MReadsInflight.Reset()
	s.RPQBlockLat.Reset()
	s.DDIOHits.Reset()
	s.DDIOWritebacks.Reset()
	s.LLCHitsC2M.Reset()
}

// CHA is the caching/home agent.
type CHA struct {
	eng  *sim.Engine
	cfg  Config
	mc   *dram.Controller
	ddio *cache.DDIO
	rng  *sim.Rand

	readInUse  int
	writeInUse int
	admitQ     []*mem.Request
	readRetry  []*mem.Request // admitted reads waiting for RPQ space
	wBacklog   []*mem.Request // admitted writes waiting for WPQ space
	dirPending []*mem.Request // directory reads waiting for a read entry

	// Bound handlers, created once at construction so the per-request
	// pipeline stages schedule without allocating closures; ddioFree pools
	// the writeback-carrying args of DDIO write-completion events.
	processFn    sim.EventFunc // admission -> process(r)
	llcReadFn    sim.EventFunc // LLC/DDIO read hit service
	dispatchRdFn sim.EventFunc // CHA -> MC read dispatch
	backlogFn    sim.EventFunc // CHA -> MC write backlog entry
	returnFn     sim.EventFunc // data return -> requester Done
	readDoneFn   sim.EventFunc // MC read data -> CHA
	ddioFree     []*ddioWriteArg

	stats *Stats
}

// ddioWriteArg carries a DDIO write completion (and its optional eviction
// writeback) through the event heap.
type ddioWriteArg struct {
	c     *CHA
	r     *mem.Request
	wb    mem.Addr
	hasWB bool
}

// ddioWriteEvent dispatches a pooled DDIO write completion.
func ddioWriteEvent(arg any) {
	a := arg.(*ddioWriteArg)
	c, r, wb, hasWB := a.c, a.r, a.wb, a.hasWB
	a.c, a.r = nil, nil
	c.ddioFree = append(c.ddioFree, a)
	c.finishDDIOWrite(r, wb, hasWB)
}

func (c *CHA) newDDIOWriteArg(r *mem.Request, wb mem.Addr, hasWB bool) *ddioWriteArg {
	if n := len(c.ddioFree); n > 0 {
		a := c.ddioFree[n-1]
		c.ddioFree = c.ddioFree[:n-1]
		a.c, a.r, a.wb, a.hasWB = c, r, wb, hasWB
		return a
	}
	return &ddioWriteArg{c: c, r: r, wb: wb, hasWB: hasWB}
}

// New builds a CHA over the given memory controller and DDIO region (ddio
// may be nil for a host without DDIO). It registers itself as the
// controller's client.
func New(eng *sim.Engine, cfg Config, mc *dram.Controller, ddio *cache.DDIO) *CHA {
	if ddio == nil {
		ddio = cache.NewDDIO(cache.DDIOConfig{})
	}
	c := &CHA{
		eng:  eng,
		cfg:  cfg,
		mc:   mc,
		ddio: ddio,
		rng:  sim.RNG(cfg.Seed ^ 0xc4a),
		stats: &Stats{
			AdmitLat:         telemetry.NewLatency(eng),
			ReadEntriesOcc:   telemetry.NewIntegrator(eng),
			WriteEntriesOcc:  telemetry.NewIntegrator(eng),
			WBacklog:         telemetry.NewIntegrator(eng),
			P2MReadsInflight: telemetry.NewIntegrator(eng),
			RPQBlockLat:      telemetry.NewLatency(eng),
			DDIOHits:         telemetry.NewCounter(eng),
			DDIOWritebacks:   telemetry.NewCounter(eng),
			LLCHitsC2M:       telemetry.NewCounter(eng),
		},
	}
	for i := range c.stats.ReadMCLat {
		c.stats.ReadMCLat[i] = telemetry.NewLatency(eng)
		c.stats.WriteMCLat[i] = telemetry.NewLatency(eng)
	}
	eng.Register(c)
	eng.Register(c.rng)
	eng.Register(ddio)
	c.processFn = c.processEvent
	c.llcReadFn = c.llcReadEvent
	c.dispatchRdFn = c.dispatchReadEvent
	c.backlogFn = c.backlogEvent
	c.returnFn = c.returnEvent
	c.readDoneFn = c.readDoneEvent
	mc.SetClient(c)
	if aud := cfg.Audit; aud.Enabled() {
		domain := cfg.AuditDomain
		if domain == "" {
			domain = "cha"
		}
		aud.Pool(domain, "read_entries", cfg.ReadEntries, func() int { return cfg.ReadEntries - c.readInUse })
		aud.Pool(domain, "write_entries", cfg.WriteEntries, func() int { return cfg.WriteEntries - c.writeInUse })
		aud.Gauge(domain, "read_entries_occ", c.stats.ReadEntriesOcc, func() int { return c.readInUse })
		aud.Gauge(domain, "write_entries_occ", c.stats.WriteEntriesOcc, func() int { return c.writeInUse })
		aud.Gauge(domain, "wbacklog", c.stats.WBacklog, func() int { return len(c.wBacklog) })
		aud.Latency(domain, "admit_lat", c.stats.AdmitLat)
		aud.Latency(domain, "read_mc_lat_c2m", c.stats.ReadMCLat[0])
		aud.Latency(domain, "read_mc_lat_p2m", c.stats.ReadMCLat[1])
		aud.Latency(domain, "write_mc_lat_c2m", c.stats.WriteMCLat[0])
		aud.Latency(domain, "write_mc_lat_p2m", c.stats.WriteMCLat[1])
	}
	return c
}

func (c *CHA) processEvent(arg any) { c.process(arg.(*mem.Request)) }

func (c *CHA) llcReadEvent(arg any) {
	r := arg.(*mem.Request)
	c.freeRead(r)
	c.completeAfterReturn(r)
}

func (c *CHA) backlogEvent(arg any) { c.toBacklog(arg.(*mem.Request)) }

func (c *CHA) returnEvent(arg any) {
	r := arg.(*mem.Request)
	r.TDone = c.eng.Now()
	if r.Done != nil {
		r.Done(r)
	}
}

// Stats returns the CHA probes.
func (c *CHA) Stats() *Stats { return c.stats }

// DDIO returns the DDIO region (for experiment inspection).
func (c *CHA) DDIO() *cache.DDIO { return c.ddio }

// Submit delivers a request to the CHA ingress. The caller has already
// applied its own propagation delay (core->CHA or IIO->CHA).
func (c *CHA) Submit(r *mem.Request) {
	r.TCHAEnter = c.eng.Now()
	c.stats.AdmitLat.Enter()
	c.admitQ = append(c.admitQ, r)
	c.tryAdmit()
}

// hasEntry reports whether the head request's entry class has capacity.
func (c *CHA) hasEntry(r *mem.Request) bool {
	if r.Kind == mem.Read {
		return c.readInUse < c.cfg.ReadEntries
	}
	return c.writeInUse < c.cfg.WriteEntries
}

// tryAdmit admits requests in FIFO order. A blocked head blocks everything
// behind it: the ingress is a single pipeline, which is exactly how write
// backpressure comes to delay reads in the red regime.
func (c *CHA) tryAdmit() {
	for len(c.admitQ) > 0 {
		r := c.admitQ[0]
		if !c.hasEntry(r) {
			return
		}
		c.admitQ = c.admitQ[1:]
		c.stats.AdmitLat.Exit()
		r.TCHAAdmit = c.eng.Now()
		if r.Kind == mem.Read {
			c.readInUse++
			c.stats.ReadEntriesOcc.Add(1)
			if r.Source == mem.P2M {
				c.stats.P2MReadsInflight.Add(1)
			}
		} else {
			c.writeInUse++
			c.stats.WriteEntriesOcc.Add(1)
			c.stats.WriteMCLat[r.Source].Enter()
			if r.Source == mem.C2M && r.Done != nil {
				// C2M-Write domain ends here: the LFB credit is replenished
				// as soon as the request is admitted to the CHA (§4.1).
				r.TDone = c.eng.Now()
				r.Done(r)
			}
		}
		c.eng.AfterFunc(c.cfg.ProcDelay, c.processFn, r)
	}
}

func (c *CHA) freeRead(r *mem.Request) {
	c.readInUse--
	c.stats.ReadEntriesOcc.Add(-1)
	if r.Source == mem.P2M {
		c.stats.P2MReadsInflight.Add(-1)
	}
	c.drainDirectoryReads()
	c.tryAdmit()
}

func (c *CHA) freeWrite() {
	c.writeInUse--
	c.stats.WriteEntriesOcc.Add(-1)
	c.tryAdmit()
}

// process routes an admitted request: LLC/DDIO lookup, then MC dispatch.
func (c *CHA) process(r *mem.Request) {
	if r.Source == mem.P2M && c.ddio.Enabled() {
		c.processDDIO(r)
		return
	}
	if r.Source == mem.C2M && r.Kind == mem.Read && c.cfg.C2MHitRatio > 0 &&
		c.rng.Float64() < c.cfg.C2MHitRatio {
		c.stats.LLCHitsC2M.Inc()
		c.eng.AfterFunc(c.cfg.LLCHitLatency, c.llcReadFn, r)
		return
	}
	c.dispatch(r)
}

// processDDIO handles P2M traffic against the DDIO LLC ways.
func (c *CHA) processDDIO(r *mem.Request) {
	if r.Kind == mem.Read {
		if c.ddio.Read(r.Addr) {
			c.stats.DDIOHits.Inc()
			c.eng.AfterFunc(c.cfg.LLCHitLatency, c.llcReadFn, r)
			return
		}
		c.dispatch(r)
		return
	}
	// DMA write: allocate into the DDIO ways. The P2M write completes at the
	// LLC; a dirty eviction (the steady state for oversized buffers) emits a
	// writeback that takes the memory-write path without holding IIO credits.
	hit, wb, hasWB := c.ddio.Write(r.Addr)
	if hit {
		c.stats.DDIOHits.Inc()
	}
	c.eng.AfterFunc(c.cfg.LLCHitLatency, ddioWriteEvent, c.newDDIOWriteArg(r, wb, hasWB))
}

// finishDDIOWrite completes a DMA write at the LLC and emits its eviction
// writeback, if any.
func (c *CHA) finishDDIOWrite(r *mem.Request, wb mem.Addr, hasWB bool) {
	// Complete the DMA write: IIO credit released at LLC admission.
	r.TDone = c.eng.Now()
	if r.Done != nil {
		r.Done(r)
	}
	if hasWB {
		c.stats.DDIOWritebacks.Inc()
		evict := &mem.Request{
			ID:     r.ID,
			Addr:   wb,
			Kind:   mem.Write,
			Source: mem.P2M,
			Origin: r.Origin,
			TAlloc: c.eng.Now(),
		}
		evict.TCHAEnter = c.eng.Now()
		evict.TCHAAdmit = c.eng.Now()
		// The eviction inherits the original DMA write's CHA entry (and
		// its WriteMCLat sample): the entry frees only when the
		// writeback reaches the WPQ, which is how DDIO converts
		// eviction pressure into ingress backpressure.
		c.toBacklog(evict)
		if c.cfg.DDIOEvictionReadFrac > 0 && c.rng.Float64() < c.cfg.DDIOEvictionReadFrac {
			c.directoryRead(r.Origin, wb)
		}
	} else {
		// The write's CHA->MC journey ends at the LLC: close its WriteMCLat
		// sample. (Evicting writes instead hand the sample to the writeback,
		// which exits in drainWrites at WPQ admission.)
		c.stats.WriteMCLat[r.Source].Exit()
		c.freeWrite()
	}
}

// directoryRead injects the eviction-handling coherence read (the DDIO
// penalty hypothesis). It occupies a CHA read entry and the RPQ like any
// other P2M read but holds no IIO credit; when the read-entry pool is
// exhausted it parks until an entry frees rather than overcommitting the
// pool.
func (c *CHA) directoryRead(origin int, addr mem.Addr) {
	r := &mem.Request{
		Addr:   addr,
		Kind:   mem.Read,
		Source: mem.P2M,
		Origin: origin,
		TAlloc: c.eng.Now(),
	}
	r.TCHAEnter = c.eng.Now()
	r.TCHAAdmit = c.eng.Now()
	c.dirPending = append(c.dirPending, r)
	c.drainDirectoryReads()
}

// drainDirectoryReads dispatches parked directory reads while read entries
// are available.
func (c *CHA) drainDirectoryReads() {
	for len(c.dirPending) > 0 && c.readInUse < c.cfg.ReadEntries {
		r := c.dirPending[0]
		c.dirPending = c.dirPending[1:]
		c.readInUse++
		c.stats.ReadEntriesOcc.Add(1)
		c.stats.P2MReadsInflight.Add(1)
		c.dispatch(r)
	}
}

// dispatch sends a miss to the memory controller.
func (c *CHA) dispatch(r *mem.Request) {
	if r.Kind == mem.Read {
		c.eng.AfterFunc(c.cfg.ToMC, c.dispatchRdFn, r)
		return
	}
	c.eng.AfterFunc(c.cfg.ToMC, c.backlogFn, r)
}

// dispatchReadEvent lands a read at the MC, parking it on the retry list if
// the RPQ is full.
func (c *CHA) dispatchReadEvent(arg any) {
	r := arg.(*mem.Request)
	c.stats.ReadMCLat[r.Source].Enter()
	c.stats.RPQBlockLat.Enter()
	if c.mc.TryEnqueue(r) {
		c.stats.RPQBlockLat.Exit()
		return
	}
	c.readRetry = append(c.readRetry, r)
}

func (c *CHA) toBacklog(r *mem.Request) {
	c.stats.WBacklog.Add(1)
	c.wBacklog = append(c.wBacklog, r)
	c.drainWrites()
}

// drainWrites pushes backlogged writes into WPQs with space. The scan keeps
// FIFO order per channel but lets an open channel bypass a blocked one.
func (c *CHA) drainWrites() {
	kept := c.wBacklog[:0]
	for _, r := range c.wBacklog {
		if c.mc.TryEnqueue(r) {
			c.stats.WBacklog.Add(-1)
			c.stats.WriteMCLat[r.Source].Exit()
			if r.Source == mem.P2M && r.Done != nil && r.TDone == 0 {
				// P2M-Write domain ends at WPQ admission (§4.1): replenish
				// the IIO credit now.
				r.TDone = c.eng.Now()
				r.Done(r)
			}
			c.freeWrite()
			continue
		}
		kept = append(kept, r)
	}
	c.wBacklog = kept
}

// retryReads re-attempts RPQ dispatch for reads blocked on a full queue.
func (c *CHA) retryReads() {
	if len(c.readRetry) == 0 {
		return
	}
	kept := c.readRetry[:0]
	for _, r := range c.readRetry {
		if c.mc.TryEnqueue(r) {
			c.stats.RPQBlockLat.Exit()
			continue
		}
		kept = append(kept, r)
	}
	c.readRetry = kept
}

// completeAfterReturn delivers read data (or an LLC-hit response) to the
// requester with the appropriate return propagation.
func (c *CHA) completeAfterReturn(r *mem.Request) {
	d := c.cfg.ToCore
	if r.Source == mem.P2M {
		d = c.cfg.ToIIO
	}
	c.eng.AfterFunc(d, c.returnFn, r)
}

// readDoneEvent lands read data back at the CHA after FromMC propagation.
func (c *CHA) readDoneEvent(arg any) {
	r := arg.(*mem.Request)
	c.stats.ReadMCLat[r.Source].Exit()
	c.freeRead(r)
	c.completeAfterReturn(r)
}

// ReadComplete implements dram.Client: a read burst finished on the channel.
func (c *CHA) ReadComplete(r *mem.Request) {
	c.retryReads()
	c.eng.AfterFunc(c.cfg.FromMC, c.readDoneFn, r)
}

// WPQSpaceFreed implements dram.Client: drain the write backlog.
func (c *CHA) WPQSpaceFreed(int) { c.drainWrites() }

// SaveState implements sim.Stateful. The carried request is only reachable
// through this arg while the completion event is in flight, so its value
// rides along.
func (a *ddioWriteArg) SaveState() any {
	st := ddioWriteArgState{c: a.c, r: a.r, wb: a.wb, hasWB: a.hasWB}
	if a.r != nil {
		st.rVal = *a.r
	}
	return st
}

// LoadState implements sim.Stateful.
func (a *ddioWriteArg) LoadState(state any) {
	st := state.(ddioWriteArgState)
	a.c, a.r, a.wb, a.hasWB = st.c, st.r, st.wb, st.hasWB
	if a.r != nil {
		*a.r = st.rVal
	}
}

type ddioWriteArgState struct {
	c     *CHA
	r     *mem.Request
	rVal  mem.Request
	wb    mem.Addr
	hasWB bool
}

// chaState is the snapshot of a CHA.
type chaState struct {
	readInUse, writeInUse int
	admitQ                mem.QueueState
	readRetry             mem.QueueState
	wBacklog              mem.QueueState
	dirPending            mem.QueueState
	ddioFree              []*ddioWriteArg
}

// SaveState implements sim.Stateful.
func (c *CHA) SaveState() any {
	return chaState{
		readInUse:  c.readInUse,
		writeInUse: c.writeInUse,
		admitQ:     mem.SaveQueue(c.admitQ),
		readRetry:  mem.SaveQueue(c.readRetry),
		wBacklog:   mem.SaveQueue(c.wBacklog),
		dirPending: mem.SaveQueue(c.dirPending),
		ddioFree:   append([]*ddioWriteArg(nil), c.ddioFree...),
	}
}

// LoadState implements sim.Stateful.
func (c *CHA) LoadState(state any) {
	st := state.(chaState)
	c.readInUse, c.writeInUse = st.readInUse, st.writeInUse
	c.admitQ = st.admitQ.Restore(c.admitQ)
	c.readRetry = st.readRetry.Restore(c.readRetry)
	c.wBacklog = st.wBacklog.Restore(c.wBacklog)
	c.dirPending = st.dirPending.Restore(c.dirPending)
	c.ddioFree = append(c.ddioFree[:0], st.ddioFree...)
}
