package cha

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

func testTiming() dram.Timing {
	return dram.Timing{
		TTrans: 3 * sim.Nanosecond,
		TRCD:   15 * sim.Nanosecond,
		TRP:    15 * sim.Nanosecond,
		TCL:    15 * sim.Nanosecond,
		TWTR:   8 * sim.Nanosecond,
		TRTW:   6 * sim.Nanosecond,
	}
}

type rig struct {
	eng *sim.Engine
	mc  *dram.Controller
	cha *CHA
}

func newRig(mcCfg dram.Config, chaCfg Config, ddio *cache.DDIO) *rig {
	eng := sim.New()
	mapper := mem.MustMapper(mem.MapperConfig{Channels: 1, Banks: 16, RowBytes: 8192})
	mc := dram.New(eng, mcCfg, mapper, nil)
	c := New(eng, chaCfg, mc, ddio)
	return &rig{eng: eng, mc: mc, cha: c}
}

func defaultRig() *rig {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	return newRig(mcCfg, DefaultConfig(), nil)
}

func req(id uint64, addr mem.Addr, k mem.Kind, s mem.Source, at sim.Time) *mem.Request {
	return &mem.Request{ID: id, Addr: addr, Kind: k, Source: s, TAlloc: at}
}

func TestC2MReadEndToEndLatency(t *testing.T) {
	r := defaultRig()
	var done sim.Time = -1
	rd := req(1, 0, mem.Read, mem.C2M, 0)
	rd.Done = func(*mem.Request) { done = r.eng.Now() }
	r.eng.At(0, func() { r.cha.Submit(rd) })
	r.eng.Run()
	// Proc 2 + ToMC 5 + (ACT 15 + CAS 15 + burst 3) + FromMC 20 + ToCore 18 = 78.
	if done != 78*sim.Nanosecond {
		t.Fatalf("read Done at %v, want 78ns", done)
	}
}

func TestC2MWriteDoneAtAdmission(t *testing.T) {
	r := defaultRig()
	var done sim.Time = -1
	wr := req(1, 0, mem.Write, mem.C2M, 0)
	wr.Done = func(*mem.Request) { done = r.eng.Now() }
	r.eng.At(10*sim.Nanosecond, func() { r.cha.Submit(wr) })
	r.eng.Run()
	// Admission is immediate when entries are free: Done at submit time.
	if done != 10*sim.Nanosecond {
		t.Fatalf("C2M write Done at %v, want 10ns (admission)", done)
	}
}

func TestP2MWriteDoneAtWPQAdmission(t *testing.T) {
	r := defaultRig()
	var done sim.Time = -1
	wr := req(1, 0, mem.Write, mem.P2M, 0)
	wr.Done = func(*mem.Request) { done = r.eng.Now() }
	r.eng.At(0, func() { r.cha.Submit(wr) })
	r.eng.Run()
	// Proc 2 + ToMC 5, WPQ has space: Done at 7ns — later than a C2M write
	// but far earlier than the DRAM write itself completes.
	if done != 7*sim.Nanosecond {
		t.Fatalf("P2M write Done at %v, want 7ns", done)
	}
}

func TestP2MWriteBlockedByFullWPQ(t *testing.T) {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	mcCfg.WPQCap = 2
	mcCfg.WPQHigh = 2
	mcCfg.DrainBatch = 2
	r := newRig(mcCfg, DefaultConfig(), nil)
	var doneTimes []sim.Time
	r.eng.At(0, func() {
		for i := 0; i < 6; i++ {
			wr := req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Write, mem.P2M, 0)
			wr.Done = func(*mem.Request) { doneTimes = append(doneTimes, r.eng.Now()) }
			r.cha.Submit(wr)
		}
	})
	r.eng.Run()
	if len(doneTimes) != 6 {
		t.Fatalf("completed %d of 6", len(doneTimes))
	}
	// First two admit at 7ns; the rest must wait for WPQ drains.
	if doneTimes[1] != 7*sim.Nanosecond {
		t.Fatalf("second write done at %v", doneTimes[1])
	}
	if doneTimes[2] <= 7*sim.Nanosecond {
		t.Fatalf("third write not backpressured: done at %v", doneTimes[2])
	}
	for i := 1; i < len(doneTimes); i++ {
		if doneTimes[i] < doneTimes[i-1] {
			t.Fatalf("P2M write completions out of order: %v", doneTimes)
		}
	}
}

func TestWriteEntriesExhaustionStallsIngress(t *testing.T) {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	mcCfg.WPQCap = 2
	mcCfg.WPQHigh = 2
	mcCfg.DrainBatch = 2
	chaCfg := DefaultConfig()
	chaCfg.WriteEntries = 2
	r := newRig(mcCfg, chaCfg, nil)
	var readDone sim.Time = -1
	r.eng.At(0, func() {
		// 2 in WPQ + 2 in CHA write entries, then more writes to clog the
		// ingress, then a read behind them.
		for i := 0; i < 8; i++ {
			r.cha.Submit(req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Write, mem.P2M, 0))
		}
		rd := req(100, 4096, mem.Read, mem.C2M, 0)
		rd.Done = func(*mem.Request) { readDone = r.eng.Now() }
		r.cha.Submit(rd)
	})
	r.eng.Run()
	if readDone < 0 {
		t.Fatalf("read never completed")
	}
	// Unblocked read latency is 78ns; behind a stalled write ingress it must
	// be substantially later.
	if readDone < 100*sim.Nanosecond {
		t.Fatalf("read at %v was not delayed by ingress stall", readDone)
	}
	if r.cha.Stats().AdmitLat.AvgNanos() <= 0 {
		t.Fatalf("admission delay probe did not register")
	}
}

func TestReadRetryOnFullRPQ(t *testing.T) {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	mcCfg.RPQCap = 2
	r := newRig(mcCfg, DefaultConfig(), nil)
	done := 0
	r.eng.At(0, func() {
		for i := 0; i < 20; i++ {
			rd := req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Read, mem.C2M, 0)
			rd.Done = func(*mem.Request) { done++ }
			r.cha.Submit(rd)
		}
	})
	r.eng.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20 with a tiny RPQ", done)
	}
}

func TestDDIOReadHitAvoidsMemory(t *testing.T) {
	ddio := cache.NewDDIO(cache.DDIOConfig{Enabled: true, Sets: 64, Ways: 2})
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	r := newRig(mcCfg, DefaultConfig(), ddio)
	var rdDone sim.Time = -1
	wr := req(1, 0x1000, mem.Write, mem.P2M, 0)
	rd := req(2, 0x1000, mem.Read, mem.P2M, 0)
	rd.Done = func(*mem.Request) { rdDone = r.eng.Now() }
	r.eng.At(0, func() { r.cha.Submit(wr) })
	r.eng.At(100*sim.Nanosecond, func() { r.cha.Submit(rd) })
	r.eng.Run()
	// Proc 2 + LLC hit 20 + ToIIO 18 = 40ns after submit.
	if rdDone != 140*sim.Nanosecond {
		t.Fatalf("DDIO read hit done at %v, want 140ns", rdDone)
	}
	if got := r.mc.Stats().LinesRead(); got != 0 {
		t.Fatalf("DDIO hit still read %d lines from memory", got)
	}
	if r.cha.Stats().DDIOHits.Count() != 1 {
		t.Fatalf("DDIO hit not counted")
	}
}

func TestDDIOWriteCompletesAtLLCAndEvicts(t *testing.T) {
	ddio := cache.NewDDIO(cache.DDIOConfig{Enabled: true, Sets: 4, Ways: 2})
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	r := newRig(mcCfg, DefaultConfig(), ddio)
	completions := 0
	const n = 64
	r.eng.At(0, func() {
		for i := 0; i < n; i++ {
			wr := req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Write, mem.P2M, 0)
			wr.Done = func(*mem.Request) { completions++ }
			r.cha.Submit(wr)
		}
	})
	r.eng.Run()
	if completions != n {
		t.Fatalf("completed %d of %d", completions, n)
	}
	// Thrashing: nearly one eviction writeback per write reaches memory.
	wbs := r.cha.Stats().DDIOWritebacks.Count()
	if wbs < n-8-1 {
		t.Fatalf("writebacks = %d, want close to %d", wbs, n)
	}
	if got := r.mc.Stats().P2MWrite.Lines.Count(); got != wbs {
		t.Fatalf("memory saw %d P2M writes, want %d writebacks", got, wbs)
	}
}

func TestC2MHitRatioBypassesMemory(t *testing.T) {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	chaCfg := DefaultConfig()
	chaCfg.C2MHitRatio = 1.0
	r := newRig(mcCfg, chaCfg, nil)
	var done sim.Time = -1
	rd := req(1, 0, mem.Read, mem.C2M, 0)
	rd.Done = func(*mem.Request) { done = r.eng.Now() }
	r.eng.At(0, func() { r.cha.Submit(rd) })
	r.eng.Run()
	// Proc 2 + LLC 20 + ToCore 18 = 40ns.
	if done != 40*sim.Nanosecond {
		t.Fatalf("LLC-hit read done at %v, want 40ns", done)
	}
	if r.mc.Stats().LinesRead() != 0 {
		t.Fatalf("hit still reached memory")
	}
	if r.cha.Stats().LLCHitsC2M.Count() != 1 {
		t.Fatalf("C2M LLC hit not counted")
	}
}

func TestP2MReadsInflightTracking(t *testing.T) {
	r := defaultRig()
	r.eng.At(0, func() {
		for i := 0; i < 5; i++ {
			r.cha.Submit(req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Read, mem.P2M, 0))
		}
	})
	r.eng.Run()
	st := r.cha.Stats()
	if st.P2MReadsInflight.Max() != 5 {
		t.Fatalf("max P2M reads in flight = %d, want 5", st.P2MReadsInflight.Max())
	}
	if st.P2MReadsInflight.Level() != 0 {
		t.Fatalf("in-flight level did not drain to 0")
	}
}

func TestWBacklogIntegrator(t *testing.T) {
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = testTiming()
	mcCfg.WPQCap = 2
	mcCfg.WPQHigh = 2
	mcCfg.DrainBatch = 2
	r := newRig(mcCfg, DefaultConfig(), nil)
	r.eng.At(0, func() {
		for i := 0; i < 10; i++ {
			r.cha.Submit(req(uint64(i), mem.Addr(i)*mem.LineSize, mem.Write, mem.P2M, 0))
		}
	})
	r.eng.Run()
	st := r.cha.Stats()
	if st.WBacklog.Max() < 4 {
		t.Fatalf("write backlog max = %d, want >= 4", st.WBacklog.Max())
	}
	if st.WBacklog.Level() != 0 {
		t.Fatalf("backlog did not drain")
	}
}

func TestWriteMCLatProbes(t *testing.T) {
	r := defaultRig()
	r.eng.At(0, func() {
		r.cha.Submit(req(1, 0, mem.Write, mem.C2M, 0))
		r.cha.Submit(req(2, 64, mem.Write, mem.P2M, 0))
	})
	r.eng.Run()
	st := r.cha.Stats()
	if st.WriteMCLat[mem.C2M].AvgNanos() <= 0 || st.WriteMCLat[mem.P2M].AvgNanos() <= 0 {
		t.Fatalf("write MC latency probes empty")
	}
}

func TestStatsReset(t *testing.T) {
	r := defaultRig()
	r.eng.At(0, func() { r.cha.Submit(req(1, 0, mem.Read, mem.C2M, 0)) })
	r.eng.Run()
	st := r.cha.Stats()
	st.Reset()
	if st.AdmitLat.Arr.Count() != 0 || st.DDIOHits.Count() != 0 {
		t.Fatalf("reset incomplete")
	}
}
