// Package fault is the deterministic fault-injection layer: transient
// degradation windows — NIC link flaps, sustained PFC pause storms, DRAM
// channel throttling and bank outages, IIO credit starvation, and CXL/UPI
// lane degradation — scheduled through the event engine so faulted runs stay
// bit-identical at any sweep parallelism and byte-identical with the
// invariant auditor on or off.
//
// A fault is a (start, duration, magnitude) window over one credit domain.
// Windows live in the exp.Spec JSON (the `faults` knob), so a fault scenario
// is content-addressable exactly like a healthy one: hostnetd caches and
// deduplicates faulted jobs by the hash of the normalized spec, which
// includes the normalized schedule.
//
// Injection is event-scheduled and component-cooperative: the injector
// schedules an apply event at each window's start and a clear event at its
// end, and the components expose small Fault* hooks that mutate their state
// the same way ordinary traffic would (credits held through the pool, bank
// ready times pushed, link periods stretched). Every hook preserves the
// component's registered audit invariants mid-window — faults degrade the
// modeled hardware, they never corrupt its accounting.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind names a fault mechanism.
type Kind string

// The fault kinds, one per credit domain the paper's §3-§4 model covers.
const (
	// LinkFlap takes the NIC's wire link down: no new lines arrive (RDMA
	// write) or are requested (RDMA read) during the window; buffered lines
	// keep draining. Magnitude is unused.
	LinkFlap Kind = "nic_link_flap"
	// PauseStorm forces PFC XOFF for the whole window, as a congested
	// downstream switch would: the sender pauses after the usual propagation
	// delay and the NIC queue drains. Magnitude is unused.
	PauseStorm Kind = "pfc_pause_storm"
	// DRAMThrottle stretches one channel's timing (thermal throttling /
	// DVFS): every DRAM timing constant on the channel is multiplied by
	// Magnitude (> 1) for the window. Channel selects the channel
	// (wrapped modulo the controller's channel count).
	DRAMThrottle Kind = "dram_throttle"
	// BankOffline takes one DRAM bank out of service until the window ends:
	// its row buffer is lost and accesses queue until it returns. Channel
	// and Bank select the victim (wrapped modulo the controller geometry).
	// Magnitude is unused; the outage length is the duration itself.
	BankOffline Kind = "dram_bank_offline"
	// IIOStarve holds a fraction (Magnitude in (0, 1]) of the IIO's write
	// and read credits for the window, as a leaky or misbehaving peer
	// device would, shrinking the effective P2M credit pools.
	IIOStarve Kind = "iio_credit_starve"
	// LaneDegrade multiplies serial-link per-line serialization time by
	// Magnitude (> 1) for the window — CXL or UPI lanes dropping to a
	// degraded width/speed.
	LaneDegrade Kind = "lane_degrade"
)

// kinds lists every valid Kind (validation and tests range over it).
func Kinds() []Kind {
	return []Kind{LinkFlap, PauseStorm, DRAMThrottle, BankOffline, IIOStarve, LaneDegrade}
}

// Window is one transient fault: a (start, duration, magnitude) interval
// over one fault kind. Start is absolute simulated time from engine start
// (time 0 — i.e. it counts from the beginning of warmup).
type Window struct {
	Kind       Kind  `json:"kind"`
	StartNs    int64 `json:"start_ns"`
	DurationNs int64 `json:"duration_ns"`
	// Magnitude is kind-specific: a timing multiplier (>= 1) for
	// DRAMThrottle and LaneDegrade, a held-credit fraction in (0, 1] for
	// IIOStarve, unused otherwise. 0 means the kind's default.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Channel selects the DRAM channel for DRAMThrottle/BankOffline
	// (wrapped modulo the controller's channel count).
	Channel int `json:"channel,omitempty"`
	// Bank selects the DRAM bank for BankOffline (wrapped modulo banks).
	Bank int `json:"bank,omitempty"`
}

func (w Window) start() sim.Time { return sim.Time(w.StartNs) * sim.Nanosecond }
func (w Window) end() sim.Time   { return sim.Time(w.StartNs+w.DurationNs) * sim.Nanosecond }

// Schedule is a set of fault windows. The zero value (empty) means a healthy
// run and costs nothing: NewInjector returns a nil injector, every component
// hook stays untouched, and the event hot path gains no work.
type Schedule []Window

// defaultMagnitude fills the kind's default strength.
func defaultMagnitude(k Kind) float64 {
	switch k {
	case DRAMThrottle, LaneDegrade:
		return 4
	case IIOStarve:
		return 0.5
	}
	return 0
}

// usesMagnitude reports whether the kind reads Magnitude.
func usesMagnitude(k Kind) bool {
	switch k {
	case DRAMThrottle, LaneDegrade, IIOStarve:
		return true
	}
	return false
}

// usesChannel reports whether the kind reads Channel.
func usesChannel(k Kind) bool { return k == DRAMThrottle || k == BankOffline }

// Normalized returns the canonical form of the schedule: defaults filled in,
// fields the kind does not read cleared, windows sorted by (start, kind,
// channel, bank, duration). Two schedules describing the same fault scenario
// normalize to identical values, which is what keeps hostnetd's
// content-addressing sound for faulted specs. An empty schedule normalizes
// to nil.
func (s Schedule) Normalized() Schedule {
	if len(s) == 0 {
		return nil
	}
	n := make(Schedule, len(s))
	for i, w := range s {
		m := Window{Kind: w.Kind, StartNs: w.StartNs, DurationNs: w.DurationNs}
		if usesMagnitude(w.Kind) {
			m.Magnitude = w.Magnitude
			if m.Magnitude == 0 {
				m.Magnitude = defaultMagnitude(w.Kind)
			}
		}
		if usesChannel(w.Kind) {
			m.Channel = w.Channel
		}
		if w.Kind == BankOffline {
			m.Bank = w.Bank
		}
		n[i] = m
	}
	sort.SliceStable(n, func(i, j int) bool {
		a, b := n[i], n[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		return a.DurationNs < b.DurationNs
	})
	return n
}

// MaxWindows bounds a schedule's length; real scenarios use a handful.
const MaxWindows = 64

// Validate checks the schedule (normalized or not): known kinds, sane
// intervals and magnitudes, and no overlapping windows of the same kind on
// the same target — overlap would make apply/clear order ambiguous, so it
// is rejected rather than resolved.
func (s Schedule) Validate() error {
	if len(s) > MaxWindows {
		return fmt.Errorf("fault: %d windows exceed the limit of %d", len(s), MaxWindows)
	}
	known := make(map[Kind]bool, 6)
	for _, k := range Kinds() {
		known[k] = true
	}
	for i, w := range s {
		if !known[w.Kind] {
			return fmt.Errorf("fault[%d]: unknown kind %q (valid: %v)", i, w.Kind, Kinds())
		}
		if w.StartNs < 0 {
			return fmt.Errorf("fault[%d]: start_ns %d < 0", i, w.StartNs)
		}
		if w.DurationNs <= 0 {
			return fmt.Errorf("fault[%d]: duration_ns %d <= 0", i, w.DurationNs)
		}
		if w.Channel < 0 || w.Bank < 0 {
			return fmt.Errorf("fault[%d]: negative channel/bank (%d, %d)", i, w.Channel, w.Bank)
		}
		if usesMagnitude(w.Kind) && w.Magnitude != 0 {
			switch w.Kind {
			case IIOStarve:
				if w.Magnitude < 0 || w.Magnitude > 1 {
					return fmt.Errorf("fault[%d]: %s magnitude %v outside (0,1]", i, w.Kind, w.Magnitude)
				}
			default:
				if w.Magnitude < 1 {
					return fmt.Errorf("fault[%d]: %s magnitude %v < 1", i, w.Kind, w.Magnitude)
				}
			}
		}
	}
	// Same-target overlap check on the normalized (sorted) form.
	n := s.Normalized()
	for i := 1; i < len(n); i++ {
		for k := 0; k < i; k++ {
			a, b := n[k], n[i]
			if a.Kind != b.Kind || a.Channel != b.Channel || a.Bank != b.Bank {
				continue
			}
			if b.StartNs < a.StartNs+a.DurationNs {
				return fmt.Errorf("fault: overlapping %s windows at %dns and %dns on the same target",
					a.Kind, a.StartNs, b.StartNs)
			}
		}
	}
	return nil
}

// The component hooks the injector drives. Each is implemented by the
// matching simulator package; the interfaces live here so the components
// stay import-free of this package (fault sits above them, like host).

// DRAM is the memory-controller surface (implemented by dram.Controller).
type DRAM interface {
	Channels() int
	// FaultSetChannelSlowdown multiplies the channel's timing constants by
	// factor (>= 1); factor <= 1 restores the configured timing.
	FaultSetChannelSlowdown(channel int, factor float64)
	// FaultBankOffline takes (channel, bank) out of service until the given
	// simulated time: the open row is lost and accesses queue behind it.
	FaultBankOffline(channel, bank int, until sim.Time)
}

// IIO is the IO-controller surface (implemented by iio.IIO).
type IIO interface {
	// FaultHoldCredits pins up to nWrite write credits and nRead read
	// credits as held (acquired through the pools like real traffic, so
	// occupancy gauges stay consistent); (0, 0) releases every held credit
	// and wakes waiters.
	FaultHoldCredits(nWrite, nRead int)
	WriteCreditCapacity() int
	ReadCreditCapacity() int
}

// NIC is the network-device surface (implemented by netsim.RDMAWrite and
// netsim.RDMARead).
type NIC interface {
	// FaultSetLinkDown suspends wire arrivals/requests while down.
	FaultSetLinkDown(down bool)
	// FaultSetPauseStorm forces PFC XOFF while on (no-op for transports
	// without PFC, e.g. the read responder).
	FaultSetPauseStorm(on bool)
}

// Link is a serial-interconnect surface (implemented by cxl.Expander and
// numa.Router).
type Link interface {
	// FaultSetLineMult multiplies per-line serialization time by mult
	// (>= 1); mult <= 1 restores the configured rate.
	FaultSetLineMult(mult float64)
}

// Injector schedules a Schedule's windows through one engine and dispatches
// them to the attached components. A nil *Injector (what NewInjector returns
// for an empty schedule) is valid and inert: every method is a no-op, so
// healthy hosts carry no fault machinery at all.
type Injector struct {
	eng      *sim.Engine
	schedule Schedule

	drams []DRAM
	iios  []IIO
	nics  []NIC
	links []Link

	active  int // windows currently open
	applyFn sim.EventFunc
	clearFn sim.EventFunc
	started bool
}

// NewInjector builds an injector for the schedule, or nil when the schedule
// is empty. The schedule is normalized; callers should have validated it.
func NewInjector(eng *sim.Engine, s Schedule) *Injector {
	n := s.Normalized()
	if len(n) == 0 {
		return nil
	}
	in := &Injector{eng: eng, schedule: n}
	in.applyFn = in.applyEvent
	in.clearFn = in.clearEvent
	eng.Register(in)
	return in
}

// AttachDRAM registers a memory controller as a fault target.
func (in *Injector) AttachDRAM(d DRAM) {
	if in == nil {
		return
	}
	in.drams = append(in.drams, d)
}

// AttachIIO registers an IO controller as a fault target.
func (in *Injector) AttachIIO(i IIO) {
	if in == nil {
		return
	}
	in.iios = append(in.iios, i)
}

// AttachNIC registers a NIC as a fault target. NICs are created by the
// experiment layer after host assembly, so attachment may happen after
// Start; windows dispatch to whatever is attached when they fire.
func (in *Injector) AttachNIC(n NIC) {
	if in == nil {
		return
	}
	in.nics = append(in.nics, n)
}

// AttachLink registers a serial interconnect as a fault target.
func (in *Injector) AttachLink(l Link) {
	if in == nil {
		return
	}
	in.links = append(in.links, l)
}

// Active reports how many fault windows are currently open.
func (in *Injector) Active() int {
	if in == nil {
		return 0
	}
	return in.active
}

// Schedule returns the normalized schedule the injector runs.
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return nil
	}
	return in.schedule
}

// Start schedules every window's apply and clear events. Call once, at
// engine time <= the earliest window start (host assembly calls it at 0).
func (in *Injector) Start() {
	if in == nil || in.started {
		return
	}
	in.started = true
	now := in.eng.Now()
	for i := range in.schedule {
		w := &in.schedule[i]
		at := w.start()
		if at < now {
			at = now
		}
		in.eng.AtFunc(at, in.applyFn, w)
		end := w.end()
		if end < at {
			end = at
		}
		in.eng.AtFunc(end, in.clearFn, w)
	}
}

func (in *Injector) applyEvent(arg any) { in.dispatch(arg.(*Window), true) }
func (in *Injector) clearEvent(arg any) { in.dispatch(arg.(*Window), false) }

// dispatch applies or clears one window on every attached target.
func (in *Injector) dispatch(w *Window, apply bool) {
	if apply {
		in.active++
	} else {
		in.active--
	}
	switch w.Kind {
	case LinkFlap:
		for _, n := range in.nics {
			n.FaultSetLinkDown(apply)
		}
	case PauseStorm:
		for _, n := range in.nics {
			n.FaultSetPauseStorm(apply)
		}
	case DRAMThrottle:
		factor := 1.0
		if apply {
			factor = w.Magnitude
		}
		for _, d := range in.drams {
			d.FaultSetChannelSlowdown(w.Channel, factor)
		}
	case BankOffline:
		if apply {
			for _, d := range in.drams {
				d.FaultBankOffline(w.Channel, w.Bank, w.end())
			}
		}
		// The clear event only closes the window accounting: readiness
		// times already encode the outage end.
	case IIOStarve:
		for _, io := range in.iios {
			var nw, nr int
			if apply {
				nw = int(w.Magnitude*float64(io.WriteCreditCapacity()) + 0.5)
				nr = int(w.Magnitude*float64(io.ReadCreditCapacity()) + 0.5)
			}
			io.FaultHoldCredits(nw, nr)
		}
	case LaneDegrade:
		mult := 1.0
		if apply {
			mult = w.Magnitude
		}
		for _, l := range in.links {
			l.FaultSetLineMult(mult)
		}
	}
}

// injectorState is the snapshot of an Injector. The schedule and target
// lists are construction-time data; only the window accounting moves.
type injectorState struct {
	active  int
	started bool
}

// SaveState implements sim.Stateful.
func (in *Injector) SaveState() any { return injectorState{active: in.active, started: in.started} }

// LoadState implements sim.Stateful.
func (in *Injector) LoadState(state any) {
	st := state.(injectorState)
	in.active, in.started = st.active, st.started
}
