package fault

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// fakeTarget records every hook invocation with its simulated timestamp so
// tests can assert dispatch order and timing exactly.
type fakeTarget struct {
	eng *sim.Engine
	log []string
	ts  []sim.Time
}

func (f *fakeTarget) record(s string) { f.log = append(f.log, s); f.ts = append(f.ts, f.eng.Now()) }

func (f *fakeTarget) Channels() int { return 2 }
func (f *fakeTarget) FaultSetChannelSlowdown(ch int, factor float64) {
	if factor > 1 {
		f.record("throttle-on")
	} else {
		f.record("throttle-off")
	}
}
func (f *fakeTarget) FaultBankOffline(ch, bank int, until sim.Time) { f.record("bank-off") }
func (f *fakeTarget) FaultHoldCredits(nw, nr int) {
	if nw > 0 || nr > 0 {
		f.record("starve-on")
	} else {
		f.record("starve-off")
	}
}
func (f *fakeTarget) WriteCreditCapacity() int { return 92 }
func (f *fakeTarget) ReadCreditCapacity() int  { return 164 }
func (f *fakeTarget) FaultSetLinkDown(down bool) {
	if down {
		f.record("link-down")
	} else {
		f.record("link-up")
	}
}
func (f *fakeTarget) FaultSetPauseStorm(on bool) {
	if on {
		f.record("storm-on")
	} else {
		f.record("storm-off")
	}
}
func (f *fakeTarget) FaultSetLineMult(mult float64) {
	if mult > 1 {
		f.record("lane-slow")
	} else {
		f.record("lane-ok")
	}
}

func TestNormalizedFillsDefaultsAndClearsUnusedFields(t *testing.T) {
	s := Schedule{
		// Magnitude unused by LinkFlap: must be cleared.
		{Kind: LinkFlap, StartNs: 100, DurationNs: 50, Magnitude: 7, Channel: 3, Bank: 9},
		// Magnitude 0 fills the kind default; Bank unused by DRAMThrottle.
		{Kind: DRAMThrottle, StartNs: 10, DurationNs: 5, Channel: 1, Bank: 4},
		{Kind: IIOStarve, StartNs: 10, DurationNs: 5},
	}
	n := s.Normalized()
	want := Schedule{
		{Kind: DRAMThrottle, StartNs: 10, DurationNs: 5, Magnitude: 4, Channel: 1},
		{Kind: IIOStarve, StartNs: 10, DurationNs: 5, Magnitude: 0.5},
		{Kind: LinkFlap, StartNs: 100, DurationNs: 50},
	}
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("Normalized = %+v, want %+v", n, want)
	}
	if !reflect.DeepEqual(n.Normalized(), n) {
		t.Fatal("Normalized is not idempotent")
	}
	if Schedule(nil).Normalized() != nil || (Schedule{}).Normalized() != nil {
		t.Fatal("empty schedule must normalize to nil")
	}
}

func TestNormalizedSortIsCanonical(t *testing.T) {
	a := Schedule{
		{Kind: PauseStorm, StartNs: 50, DurationNs: 10},
		{Kind: BankOffline, StartNs: 50, DurationNs: 10, Channel: 1, Bank: 2},
		{Kind: BankOffline, StartNs: 50, DurationNs: 10, Channel: 0, Bank: 3},
	}
	b := Schedule{a[2], a[0], a[1]}
	if !reflect.DeepEqual(a.Normalized(), b.Normalized()) {
		t.Fatal("permuted schedules must normalize identically")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"unknown kind", Schedule{{Kind: "cosmic_ray", StartNs: 0, DurationNs: 1}}},
		{"negative start", Schedule{{Kind: LinkFlap, StartNs: -1, DurationNs: 1}}},
		{"zero duration", Schedule{{Kind: LinkFlap, StartNs: 0, DurationNs: 0}}},
		{"negative channel", Schedule{{Kind: DRAMThrottle, StartNs: 0, DurationNs: 1, Channel: -1}}},
		{"starve magnitude > 1", Schedule{{Kind: IIOStarve, StartNs: 0, DurationNs: 1, Magnitude: 1.5}}},
		{"throttle magnitude < 1", Schedule{{Kind: DRAMThrottle, StartNs: 0, DurationNs: 1, Magnitude: 0.5}}},
		{"lane magnitude < 1", Schedule{{Kind: LaneDegrade, StartNs: 0, DurationNs: 1, Magnitude: 0.25}}},
		{"same-target overlap", Schedule{
			{Kind: PauseStorm, StartNs: 0, DurationNs: 100},
			{Kind: PauseStorm, StartNs: 99, DurationNs: 100},
		}},
		{"same-channel throttle overlap", Schedule{
			{Kind: DRAMThrottle, StartNs: 0, DurationNs: 100, Channel: 1},
			{Kind: DRAMThrottle, StartNs: 50, DurationNs: 100, Channel: 1},
		}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.s)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	ok := []Schedule{
		nil,
		{},
		// Adjacent windows (end == next start) are not overlap.
		{{Kind: PauseStorm, StartNs: 0, DurationNs: 100}, {Kind: PauseStorm, StartNs: 100, DurationNs: 100}},
		// Same kind, different channel: concurrent is fine.
		{{Kind: DRAMThrottle, StartNs: 0, DurationNs: 100, Channel: 0}, {Kind: DRAMThrottle, StartNs: 0, DurationNs: 100, Channel: 1}},
		// Different kinds overlap freely.
		{{Kind: LinkFlap, StartNs: 0, DurationNs: 100}, {Kind: PauseStorm, StartNs: 0, DurationNs: 100}, {Kind: IIOStarve, StartNs: 0, DurationNs: 100}},
	}
	for _, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", s, err)
		}
	}
}

func TestValidateMaxWindows(t *testing.T) {
	s := make(Schedule, MaxWindows+1)
	for i := range s {
		s[i] = Window{Kind: PauseStorm, StartNs: int64(i) * 10, DurationNs: 5}
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted an oversized schedule")
	}
	if err := s[:MaxWindows].Validate(); err != nil {
		t.Fatalf("Validate rejected a MaxWindows schedule: %v", err)
	}
}

func TestWindowJSONRoundTrip(t *testing.T) {
	in := Schedule{
		{Kind: DRAMThrottle, StartNs: 1000, DurationNs: 500, Magnitude: 8, Channel: 1},
		{Kind: BankOffline, StartNs: 2000, DurationNs: 300, Channel: 0, Bank: 3},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Schedule
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	eng := sim.New()
	if in := NewInjector(eng, nil); in != nil {
		t.Fatal("empty schedule must yield a nil injector")
	}
	var in *Injector
	in.AttachDRAM(nil)
	in.AttachIIO(nil)
	in.AttachNIC(nil)
	in.AttachLink(nil)
	in.Start()
	if in.Active() != 0 || in.Schedule() != nil {
		t.Fatal("nil injector must report nothing")
	}
	if eng.Pending() != 0 {
		t.Fatal("nil injector scheduled events")
	}
}

func TestInjectorDispatchOrderAndTiming(t *testing.T) {
	eng := sim.New()
	f := &fakeTarget{eng: eng}
	in := NewInjector(eng, Schedule{
		{Kind: PauseStorm, StartNs: 10, DurationNs: 20},
		{Kind: LinkFlap, StartNs: 15, DurationNs: 5},
		{Kind: DRAMThrottle, StartNs: 40, DurationNs: 10, Magnitude: 8, Channel: 1},
		{Kind: BankOffline, StartNs: 40, DurationNs: 10, Channel: 0, Bank: 1},
		{Kind: IIOStarve, StartNs: 60, DurationNs: 10, Magnitude: 0.5},
		{Kind: LaneDegrade, StartNs: 80, DurationNs: 10, Magnitude: 2},
	})
	in.AttachDRAM(f)
	in.AttachIIO(f)
	in.AttachNIC(f)
	in.AttachLink(f)
	in.Start()

	eng.RunUntil(25 * sim.Nanosecond)
	if in.Active() != 1 { // storm open; flap opened at 15 and closed at 20
		t.Fatalf("Active = %d at t=25ns, want 1", in.Active())
	}
	eng.RunUntil(200 * sim.Nanosecond)
	if in.Active() != 0 {
		t.Fatalf("Active = %d after all windows, want 0", in.Active())
	}
	want := []string{
		"storm-on", "link-down", "link-up", "storm-off",
		"bank-off", "throttle-on", "throttle-off",
		"starve-on", "starve-off", "lane-slow", "lane-ok",
	}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("dispatch log = %v, want %v", f.log, want)
	}
	// Spot-check timestamps: apply at start, clear at start+duration.
	wantNs := []int64{10, 15, 20, 30, 40, 40, 50, 60, 70, 80, 90}
	for i, ts := range f.ts {
		if got := int64(ts / sim.Nanosecond); got != wantNs[i] {
			t.Fatalf("event %d (%s) at %dns, want %dns", i, f.log[i], got, wantNs[i])
		}
	}
}

func TestInjectorLateStartClamps(t *testing.T) {
	eng := sim.New()
	f := &fakeTarget{eng: eng}
	in := NewInjector(eng, Schedule{{Kind: PauseStorm, StartNs: 10, DurationNs: 20}})
	in.AttachNIC(f)
	eng.RunUntil(50 * sim.Nanosecond) // past the whole window
	in.Start()
	eng.RunUntil(60 * sim.Nanosecond)
	if !reflect.DeepEqual(f.log, []string{"storm-on", "storm-off"}) {
		t.Fatalf("late start log = %v, want apply+clear back to back", f.log)
	}
	for _, ts := range f.ts {
		if int64(ts/sim.Nanosecond) != 50 {
			t.Fatalf("late events must clamp to start time, got %v", f.ts)
		}
	}
	if in.Active() != 0 {
		t.Fatalf("Active = %d after clamped window, want 0", in.Active())
	}
	in.Start() // second Start must be a no-op
	if eng.Pending() != 0 {
		t.Fatal("double Start rescheduled events")
	}
}

func TestInjectorLateNICAttachment(t *testing.T) {
	// The exp layer attaches NICs after host assembly (and after Start);
	// windows must dispatch to whatever is attached when they fire.
	eng := sim.New()
	f := &fakeTarget{eng: eng}
	in := NewInjector(eng, Schedule{{Kind: LinkFlap, StartNs: 100, DurationNs: 50}})
	in.Start()
	eng.RunUntil(10 * sim.Nanosecond)
	in.AttachNIC(f) // late, but before the window opens
	eng.RunUntil(200 * sim.Nanosecond)
	if !reflect.DeepEqual(f.log, []string{"link-down", "link-up"}) {
		t.Fatalf("late-attached NIC log = %v", f.log)
	}
}

func TestStarveCreditMath(t *testing.T) {
	eng := sim.New()
	var gotW, gotR int
	f := &starveProbe{fakeTarget: &fakeTarget{eng: eng}, w: &gotW, r: &gotR}
	in := NewInjector(eng, Schedule{{Kind: IIOStarve, StartNs: 0, DurationNs: 10, Magnitude: 0.5}})
	in.AttachIIO(f)
	in.Start()
	eng.RunUntil(5 * sim.Nanosecond)
	if gotW != 46 || gotR != 82 {
		t.Fatalf("starve 0.5 of (92, 164) held (%d, %d), want (46, 82)", gotW, gotR)
	}
	eng.RunUntil(20 * sim.Nanosecond)
	if gotW != 0 || gotR != 0 {
		t.Fatalf("clear left (%d, %d) held", gotW, gotR)
	}
}

type starveProbe struct {
	*fakeTarget
	w, r *int
}

func (s *starveProbe) FaultHoldCredits(nw, nr int) { *s.w, *s.r = nw, nr }
