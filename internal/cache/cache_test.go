package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func smallDDIO(scramble bool) *DDIO {
	return NewDDIO(DDIOConfig{Enabled: true, Sets: 16, Ways: 2, ScrambleEvictions: scramble})
}

func TestDisabledDDIOAlwaysMisses(t *testing.T) {
	d := NewDDIO(DDIOConfig{Enabled: false})
	if d.Enabled() {
		t.Fatalf("disabled DDIO reports enabled")
	}
	hit, _, hasWB := d.Write(0)
	if hit || hasWB {
		t.Fatalf("disabled DDIO write allocated")
	}
	if d.Read(0) {
		t.Fatalf("disabled DDIO read hit")
	}
}

func TestWriteThenReadHits(t *testing.T) {
	d := smallDDIO(false)
	if hit, _, _ := d.Write(0x1000); hit {
		t.Fatalf("first write hit")
	}
	if !d.Read(0x1000) {
		t.Fatalf("read after write missed")
	}
	if hit, _, _ := d.Write(0x1000); !hit {
		t.Fatalf("rewrite missed")
	}
}

func TestReadDoesNotAllocate(t *testing.T) {
	d := smallDDIO(false)
	d.Read(0x2000)
	if d.Read(0x2000) {
		t.Fatalf("read allocated a line")
	}
}

func TestEvictionEmitsDirtyWriteback(t *testing.T) {
	d := smallDDIO(false)
	// Fill one set beyond capacity. Lines that share a set index: the hash
	// is line ^ line>>11 ^ line>>22 masked; for small line numbers spaced by
	// exactly Sets the fold bits are zero, so line%16 picks the set.
	base := mem.Addr(0)
	var evicted []mem.Addr
	for i := 0; i < 3; i++ {
		a := base + mem.Addr(i*16*mem.LineSize) // same set each time
		_, wb, has := d.Write(a)
		if has {
			evicted = append(evicted, wb)
		}
	}
	if len(evicted) != 1 {
		t.Fatalf("evictions = %d, want 1", len(evicted))
	}
	if evicted[0] != base {
		t.Fatalf("evicted %#x, want LRU line %#x", evicted[0], base)
	}
	if d.Evictions != 1 {
		t.Fatalf("eviction counter = %d", d.Evictions)
	}
}

func TestLRUOrder(t *testing.T) {
	d := smallDDIO(false)
	a0 := mem.Addr(0)
	a1 := mem.Addr(16 * mem.LineSize)
	a2 := mem.Addr(32 * mem.LineSize)
	d.Write(a0)
	d.Write(a1)
	d.Write(a0) // refresh a0: a1 becomes LRU
	_, wb, has := d.Write(a2)
	if !has || wb != a1 {
		t.Fatalf("evicted %#x (has=%v), want %#x", wb, has, a1)
	}
}

func TestSteadyStateThrashing(t *testing.T) {
	// A stream much larger than the region: steady state is one dirty
	// eviction per write, i.e. memory write bandwidth is preserved (the
	// paper's observation that DDIO does not reduce this workload's memory
	// traffic).
	d := smallDDIO(false)
	const n = 4096
	writebacks := 0
	for i := 0; i < n; i++ {
		if _, _, has := d.Write(mem.Addr(i * mem.LineSize)); has {
			writebacks++
		}
	}
	capacity := 16 * 2
	if writebacks < n-capacity {
		t.Fatalf("writebacks = %d, want >= %d", writebacks, n-capacity)
	}
	if d.Hits != 0 {
		t.Fatalf("sequential oversized stream should never hit, got %d hits", d.Hits)
	}
}

func TestSwizzleInvolutive(t *testing.T) {
	d := smallDDIO(true)
	f := func(raw uint32) bool {
		a := mem.Addr(raw) * mem.LineSize
		return d.Swizzle(d.Swizzle(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSwizzlePreservesChannelBit(t *testing.T) {
	d := smallDDIO(true)
	f := func(raw uint32) bool {
		a := mem.Addr(raw) * mem.LineSize
		before := (uint64(a) / mem.LineSize) & 0xf
		after := (uint64(d.Swizzle(a)) / mem.LineSize) & 0xf
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSwizzleBreaksRowLocality(t *testing.T) {
	d := smallDDIO(true)
	// 64 consecutive lines on one channel normally share one row; after the
	// swizzle they scatter into 8-line runs across several distinct rows —
	// locality degrades without becoming a pure row-miss stream.
	rows := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		a := d.Swizzle(mem.Addr(i * 2 * mem.LineSize))
		rows[uint64(a)/8192] = true
	}
	if len(rows) < 4 {
		t.Fatalf("swizzled lines span %d rows, want >= 4", len(rows))
	}
}

func TestSwizzleDisabledIsIdentity(t *testing.T) {
	d := smallDDIO(false)
	for i := 0; i < 100; i++ {
		a := mem.Addr(i * 977 * mem.LineSize)
		if d.Swizzle(a) != a {
			t.Fatalf("swizzle active when disabled")
		}
	}
}

func TestResetStats(t *testing.T) {
	d := smallDDIO(false)
	d.Write(0)
	d.Read(0)
	d.ResetStats()
	if d.Hits != 0 || d.Misses != 0 || d.Evictions != 0 {
		t.Fatalf("stats not cleared")
	}
}
