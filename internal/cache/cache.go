// Package cache models the last-level cache as seen by the host network.
//
// The paper's workloads are deliberately non-cache-resident (~100% LLC miss
// even in isolation), so the LLC matters for exactly two things, and that is
// all this package models:
//
//  1. DDIO (Data Direct I/O): P2M traffic may use a small number of LLC ways.
//     Large sequential DMA buffers thrash those ways, so in steady state
//     every DMA write allocates a line and evicts a dirty one — memory write
//     bandwidth is unchanged (matching §2.1), but eviction-driven writebacks
//     replace the original-address writes.
//  2. A probabilistic hit model for C2M traffic, default 0% (the measured
//     miss ratios in the paper are >95%).
//
// The paper observes but cannot explain that enabling DDIO *worsens* C2M
// degradation for P2M-write workloads (§2.1, Appendix B). We reproduce the
// observation under a documented hypothesis: LLC set-index hashing scrambles
// the eviction order relative to DRAM row order, lowering the row locality
// of the P2M write stream. The swizzle is explicit and configurable so the
// hypothesis can be ablated.
package cache

import (
	"repro/internal/mem"
)

// DDIOConfig sizes the DDIO-usable slice of the LLC.
type DDIOConfig struct {
	Enabled bool
	Sets    int // power of two
	Ways    int // DDIO-usable ways (2 on the testbeds)
	// ScrambleEvictions applies the set-hash swizzle to evicted writeback
	// addresses (the modeling hypothesis for Fig 2's DDIO-on penalty).
	ScrambleEvictions bool
}

// DefaultDDIOConfig models 2 ways of a 24 MB / 11-way LLC: 2048 sets kept
// deliberately small (the region is thrashed regardless; a smaller table is
// cheaper to simulate and behaves identically for streams ≫ region size).
func DefaultDDIOConfig(enabled bool) DDIOConfig {
	return DDIOConfig{Enabled: enabled, Sets: 2048, Ways: 2, ScrambleEvictions: enabled}
}

type way struct {
	line  uint64 // line address + 1; 0 means invalid
	dirty bool
	used  uint64 // LRU stamp
}

// DDIO is the DDIO-usable LLC region.
type DDIO struct {
	cfg   DDIOConfig
	sets  [][]way
	clock uint64

	Hits, Misses, Evictions uint64
}

// NewDDIO builds the region; a disabled config returns a region whose
// Write/Read always miss with no allocation.
func NewDDIO(cfg DDIOConfig) *DDIO {
	d := &DDIO{cfg: cfg}
	if cfg.Enabled {
		d.sets = make([][]way, cfg.Sets)
		for i := range d.sets {
			d.sets[i] = make([]way, cfg.Ways)
		}
	}
	return d
}

// Enabled reports whether DDIO is active.
func (d *DDIO) Enabled() bool { return d.cfg.Enabled }

// setIndex hashes a line address to a set, folding high bits in (a stand-in
// for the LLC slice/complex-addressing hash).
func (d *DDIO) setIndex(line uint64) int {
	h := line ^ (line >> 11) ^ (line >> 22)
	return int(h & uint64(d.cfg.Sets-1))
}

// Swizzle applies the eviction-order scramble hypothesis to a writeback
// address: a bounded bit permutation that preserves the address's channel
// bits (bit 0 of the line index) but relocates it within its neighbourhood,
// destroying DRAM row locality the way hashed set indexing interleaves
// evictions from adjacent sets.
func (d *DDIO) Swizzle(a mem.Addr) mem.Addr {
	if !d.cfg.ScrambleEvictions {
		return a
	}
	// Swap three upper column bits with three row bits (channel bit and low
	// column bits preserved): an involutive bijection that breaks eviction
	// streams into 8-line runs scattered across rows — locality degrades,
	// but the write stream does not become a pure row-miss stream.
	line := uint64(a) / mem.LineSize
	const lowShift, highShift = 4, 14
	const mask = uint64(0x7)
	low := (line >> lowShift) & mask
	high := (line >> highShift) & mask
	line &^= mask << lowShift
	line &^= mask << highShift
	line |= high << lowShift
	line |= low << highShift
	return mem.Addr(line * mem.LineSize)
}

// Write processes a P2M DMA write of one line. It returns whether the line
// hit, and if a dirty line was evicted, its (possibly swizzled) address.
func (d *DDIO) Write(a mem.Addr) (hit bool, wb mem.Addr, hasWB bool) {
	if !d.cfg.Enabled {
		return false, 0, false
	}
	line := uint64(a)/mem.LineSize + 1
	set := d.sets[d.setIndex(line-1)]
	d.clock++
	for i := range set {
		if set[i].line == line {
			set[i].dirty = true
			set[i].used = d.clock
			d.Hits++
			return true, 0, false
		}
	}
	d.Misses++
	victim := 0
	for i := range set {
		if set[i].line == 0 {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].line != 0 && set[victim].dirty {
		d.Evictions++
		wb = d.Swizzle(mem.Addr((set[victim].line - 1) * mem.LineSize))
		hasWB = true
	}
	set[victim] = way{line: line, dirty: true, used: d.clock}
	return false, wb, hasWB
}

// Read processes a P2M DMA read of one line; it reports a hit if the line is
// resident. Reads do not allocate (DDIO allocates only on writes; reads use
// the cache "in place" per the DDIO primer).
func (d *DDIO) Read(a mem.Addr) bool {
	if !d.cfg.Enabled {
		return false
	}
	line := uint64(a)/mem.LineSize + 1
	set := d.sets[d.setIndex(line-1)]
	for i := range set {
		if set[i].line == line {
			d.clock++
			set[i].used = d.clock
			d.Hits++
			return true
		}
	}
	d.Misses++
	return false
}

// ResetStats clears hit/miss/eviction counters.
func (d *DDIO) ResetStats() { d.Hits, d.Misses, d.Evictions = 0, 0, 0 }

// ddioState is the snapshot of a DDIO region.
type ddioState struct {
	sets                    [][]way
	clock                   uint64
	hits, misses, evictions uint64
}

// SaveState implements sim.Stateful.
func (d *DDIO) SaveState() any {
	st := ddioState{clock: d.clock, hits: d.Hits, misses: d.Misses, evictions: d.Evictions}
	if d.sets != nil {
		st.sets = make([][]way, len(d.sets))
		for i, s := range d.sets {
			st.sets[i] = append([]way(nil), s...)
		}
	}
	return st
}

// LoadState implements sim.Stateful.
func (d *DDIO) LoadState(state any) {
	st := state.(ddioState)
	d.clock, d.Hits, d.Misses, d.Evictions = st.clock, st.hits, st.misses, st.evictions
	for i, s := range st.sets {
		copy(d.sets[i], s)
	}
}
