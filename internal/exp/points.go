package exp

import (
	"encoding/json"
	"fmt"
)

// This file is the sharding contract between exp.Spec and the fleet
// coordinator (internal/fleet): Points splits a multi-point sweep spec into
// independently canonical, independently content-addressed per-point
// sub-specs, and MergePointResults reassembles the sub-results into bytes
// identical to a single-node RunSpecJSON of the parent spec.
//
// Splitting is sound exactly when every sweep point is an independent
// simulation whose construction does not depend on its position in the
// sweep. That holds for quadrant, rdma, and faultsweep (points are built
// from (quadrant, core count) alone — the shared isolated baseline each
// sub-run recomputes is the very same deterministic simulation, so the
// recomputed Measure is bit-equal to the shared one) and for incast (each
// degree is its own rack; FabricSpec.Degree pins a single one). It does NOT
// hold for ratio: its workload seeds mix in the point's index within the
// write-fraction sweep (see RunRatioSweep), so a one-point sub-run would
// seed differently and diverge. Fixed figures (fig1..fig29) and the
// single-point studies are likewise not splittable. For all of those,
// Points returns nil and a coordinator dispatches the whole spec to one
// worker.
//
// A useful corollary of per-point content addressing: overlapping sweeps
// share sub-spec hashes. `quadrant cores=[1..6]` and `quadrant cores=[4]`
// meet at the same Cores=[4] sub-spec, so a fleet's persistent store serves
// one sweep's points to another sweep for free.

// Points splits the spec into one sub-spec per sweep point, in sweep
// order. Each sub-spec is normalized, valid, and hashes to its own content
// address. It returns nil when the spec is not splittable — unknown or
// invalid specs, single-point sweeps (nothing to shard), and experiments
// whose structure is not per-point independent (see the package comment
// above; notably ratio, whose seeds depend on the sweep index).
func (s Spec) Points() []Spec {
	n := s.Normalized()
	if n.Validate() != nil {
		return nil
	}
	if n.Fidelity == FidelityAnalytic {
		// Analytic answers are microseconds of arithmetic: sharding one
		// across a fleet costs more than answering it.
		return nil
	}
	switch n.Experiment {
	case "quadrant", "rdma", "faultsweep", "crossval":
		if len(n.Cores) < 2 {
			return nil
		}
		out := make([]Spec, len(n.Cores))
		for i, c := range n.Cores {
			sub := n
			sub.Cores = []int{c}
			out[i] = sub.Normalized()
		}
		return out
	case "incast":
		if n.Fabric == nil || n.Fabric.Degree > 0 {
			return nil // already a sub-spec
		}
		degs := n.Fabric.degrees()
		if len(degs) < 2 {
			return nil
		}
		out := make([]Spec, len(degs))
		for i, d := range degs {
			sub := n
			fab := *n.Fabric
			fab.Incast = 0
			fab.Degree = d
			sub.Fabric = &fab
			out[i] = sub.Normalized()
		}
		return out
	}
	return nil
}

// resultEnvelope is the decoded form of one RunSpecJSON output: the
// normalized spec and the raw payload, kept raw so merge can decode it into
// the experiment's concrete type.
type resultEnvelope struct {
	Spec   Spec            `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// MergePointResults reassembles the per-point Result envelopes produced by
// running each of s.Points() (in order) into the single envelope a
// single-node RunSpecJSON(s) run produces — byte-identical, which is what
// lets a coordinator-sharded sweep share a content-addressed store with
// single-node runs (pinned by TestPointsMergeByteIdentical and the fleet
// e2e test).
//
// Each part is verified against its expected sub-spec before merging, so a
// worker answering with the wrong point (or a stale result) is an error,
// not silent corruption.
func MergePointResults(s Spec, parts [][]byte) ([]byte, error) {
	n := s.Normalized()
	subs := n.Points()
	if subs == nil {
		return nil, fmt.Errorf("merge: spec %q is not splittable", n.Experiment)
	}
	if len(parts) != len(subs) {
		return nil, fmt.Errorf("merge: %d parts for %d points", len(parts), len(subs))
	}
	payloads := make([]json.RawMessage, len(parts))
	for i, part := range parts {
		var env resultEnvelope
		if err := json.Unmarshal(part, &env); err != nil {
			return nil, fmt.Errorf("merge: decoding part %d: %w", i, err)
		}
		wantHash, err := subs[i].Hash()
		if err != nil {
			return nil, fmt.Errorf("merge: hashing sub-spec %d: %w", i, err)
		}
		gotHash, err := env.Spec.Hash()
		if err != nil || gotHash != wantHash {
			return nil, fmt.Errorf("merge: part %d carries spec %q point %d, want sub-spec %s",
				i, env.Spec.Experiment, i, wantHash[:12])
		}
		payloads[i] = env.Result
	}

	var merged any
	var err error
	switch n.Experiment {
	case "quadrant":
		merged, err = mergeSlices[QuadrantPoint](payloads)
	case "rdma":
		merged, err = mergeSlices[RDMAQuadrantPoint](payloads)
	case "faultsweep":
		merged, err = mergeFaultSweep(payloads)
	case "incast":
		merged, err = mergeIncast(payloads)
	case "crossval":
		merged, err = mergeCrossval(payloads)
	default:
		err = fmt.Errorf("merge: experiment %q splits but has no merger", n.Experiment)
	}
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(Result{Spec: n, Result: merged})
	if err != nil {
		return nil, fmt.Errorf("merge: encoding %s result: %w", n.Experiment, err)
	}
	return b, nil
}

// mergeSlices concatenates per-point slice payloads ([]QuadrantPoint,
// []RDMAQuadrantPoint) in point order.
func mergeSlices[T any](payloads []json.RawMessage) ([]T, error) {
	out := make([]T, 0, len(payloads))
	for i, raw := range payloads {
		var pts []T
		if err := json.Unmarshal(raw, &pts); err != nil {
			return nil, fmt.Errorf("merge: decoding point %d payload: %w", i, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

// mergeFaultSweep zips per-core FaultSweep fragments back into one sweep;
// the quadrant and schedule are common to every fragment.
func mergeFaultSweep(payloads []json.RawMessage) (*FaultSweep, error) {
	var out *FaultSweep
	for i, raw := range payloads {
		var fs FaultSweep
		if err := json.Unmarshal(raw, &fs); err != nil {
			return nil, fmt.Errorf("merge: decoding point %d payload: %w", i, err)
		}
		if out == nil {
			head := fs
			head.Points = nil
			out = &head
		}
		out.Points = append(out.Points, fs.Points...)
	}
	return out, nil
}

// mergeCrossval zips per-core CrossvalResult fragments back into one
// sweep; the quadrant is common to every fragment.
func mergeCrossval(payloads []json.RawMessage) (*CrossvalResult, error) {
	var out *CrossvalResult
	for i, raw := range payloads {
		var cv CrossvalResult
		if err := json.Unmarshal(raw, &cv); err != nil {
			return nil, fmt.Errorf("merge: decoding point %d payload: %w", i, err)
		}
		if out == nil {
			head := cv
			head.Points = nil
			out = &head
		}
		out.Points = append(out.Points, cv.Points...)
	}
	return out, nil
}

// mergeIncast concatenates per-degree IncastSweep fragments (healthy and,
// when present, faulted twins) in degree order.
func mergeIncast(payloads []json.RawMessage) (*IncastSweep, error) {
	var out *IncastSweep
	for i, raw := range payloads {
		var is IncastSweep
		if err := json.Unmarshal(raw, &is); err != nil {
			return nil, fmt.Errorf("merge: decoding point %d payload: %w", i, err)
		}
		if out == nil {
			head := is
			head.Healthy, head.Faulted = nil, nil
			out = &head
		}
		out.Healthy = append(out.Healthy, is.Healthy...)
		out.Faulted = append(out.Faulted, is.Faulted...)
	}
	return out, nil
}
