package exp

import (
	"repro/internal/periph"
	"repro/internal/workload"
)

// RatioPoint is one write-fraction sample of the regime-transition sweep.
type RatioPoint struct {
	WriteFrac float64
	Cores     int

	C2MIso, C2MCo float64
	P2MIso, P2MCo float64
	WPQFullFrac   float64
	WBacklog      float64
}

// C2MDegradation and P2MDegradation mirror QuadrantPoint.
func (p RatioPoint) C2MDegradation() float64 { return degradation(p.C2MIso, p.C2MCo) }
func (p RatioPoint) P2MDegradation() float64 { return degradation(p.P2MIso, p.P2MCo) }

// RunRatioSweep sweeps the C2M store fraction at a fixed core count against
// bulk P2M writes: the continuous version of the quadrant-1 -> quadrant-3
// transition. As the write fraction grows, total write load crosses the
// drain capacity, the WPQ pins, and P2M degradation switches on — the red
// regime emerging as a function of a single workload knob.
func RunRatioSweep(cores int, fracs []float64, opt Options) []RatioPoint {
	var p2mIso float64
	pts := make([]RatioPoint, len(fracs))
	tasks := make([]func(), 0, len(fracs)+1)
	tasks = append(tasks, func() {
		p2mIsoHost := opt.newHost()
		addP2MDevice(p2mIsoHost, Q1)
		p2mIsoHost.Run(opt.Warmup, opt.Window)
		p2mIso = p2mIsoHost.P2MBW()
	})
	for i, f := range fracs {
		tasks = append(tasks, func() {
			p := RatioPoint{WriteFrac: f, Cores: cores}

			iso := opt.newHost()
			for c := 0; c < cores; c++ {
				iso.AddCore(workload.NewSeqMix(iso.Region(1<<30), 1<<30, f, uint64(40+i*8+c)))
			}
			iso.Run(opt.Warmup, opt.Window)
			p.C2MIso = iso.C2MBW()

			co := opt.newHost()
			for c := 0; c < cores; c++ {
				co.AddCore(workload.NewSeqMix(co.Region(1<<30), 1<<30, f, uint64(40+i*8+c)))
			}
			co.AddStorage(periph.BulkConfig(periph.DMAWrite, co.Region(1<<30)))
			co.Run(opt.Warmup, opt.Window)
			m := snapshot(co)
			p.C2MCo, p.P2MCo = m.C2MBW, m.P2MBW
			p.WPQFullFrac = m.WPQFullFrac
			p.WBacklog = m.WBacklog
			pts[i] = p
		})
	}
	pdo(opt, tasks...)
	for i := range pts {
		pts[i].P2MIso = p2mIso
	}
	return pts
}
