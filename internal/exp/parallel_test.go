package exp

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// The headline guarantee of the parallel runner: because every sweep point
// builds its own host.Host and sim.Engine, running a sweep on N workers
// must produce results bit-identical to the serial run. These tests pin
// that with reflect.DeepEqual over the full result structures (every
// Measure field, including the analytic inputs), at reduced windows so the
// comparison runs quickly even under -race.

// detOptions returns short-window options at the given parallelism.
func detOptions(parallelism int) Options {
	opt := Defaults()
	opt.Warmup = 5 * sim.Microsecond
	opt.Window = 10 * sim.Microsecond
	opt.Parallelism = parallelism
	return opt
}

func TestParallelDeterminismFig3(t *testing.T) {
	serial := RunFig3(detOptions(1))
	parallel := RunFig3(detOptions(8))
	if !reflect.DeepEqual(serial, parallel) {
		for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
			s, p := serial[q], parallel[q]
			if len(s) != len(p) {
				t.Errorf("%v: %d serial points vs %d parallel", q, len(s), len(p))
				continue
			}
			for i := range s {
				if !reflect.DeepEqual(s[i], p[i]) {
					t.Errorf("%v point %d (cores=%d): serial and parallel results differ\nserial:   %+v\nparallel: %+v",
						q, i, s[i].Cores, s[i], p[i])
				}
			}
		}
		t.Fatal("RunFig3 at Parallelism=8 is not bit-identical to serial")
	}
}

func TestParallelDeterminismRDMAQuadrant(t *testing.T) {
	cores := []int{1, 2}
	serial := RunRDMAQuadrant(Q3, cores, detOptions(1))
	parallel := RunRDMAQuadrant(Q3, cores, detOptions(8))
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if i < len(parallel) && !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("RDMA Q3 point %d (cores=%d) differs\nserial:   %+v\nparallel: %+v",
					i, serial[i].Cores, serial[i], parallel[i])
			}
		}
		t.Fatal("RunRDMAQuadrant at Parallelism=8 is not bit-identical to serial")
	}
}

func TestParallelDeterminismDCTCP(t *testing.T) {
	cores := []int{1, 2}
	serial := RunDCTCP(false, cores, detOptions(1))
	parallel := RunDCTCP(false, cores, detOptions(8))
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if i < len(parallel) && !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("DCTCP point %d (cores=%d) differs\nserial:   %+v\nparallel: %+v",
					i, serial[i].C2MCores, serial[i], parallel[i])
			}
		}
		t.Fatal("RunDCTCP at Parallelism=8 is not bit-identical to serial")
	}
}

// Repeated parallel runs must agree with each other too (no run-to-run
// scheduling sensitivity).
func TestParallelRunToRunStability(t *testing.T) {
	a := RunQuadrant(Q1, []int{1, 2, 3}, detOptions(8))
	b := RunQuadrant(Q1, []int{1, 2, 3}, detOptions(8))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Parallelism=8 runs of the same sweep differ")
	}
}
