package exp

import (
	"repro/internal/core"
	"repro/internal/periph"
	"repro/internal/workload"
)

// DomainEvidencePoint is one core-count sample of the Fig 6 series: the
// domain latency measured at the credit pool alongside the downstream
// segment latency it must (or must not) contain.
type DomainEvidencePoint struct {
	Cores int

	// Fig 6a: C2M-Read workload. LFB latency vs CHA->DRAM read latency; the
	// former must strictly contain the latter, and their inflation from 1 to
	// N cores must track.
	ReadLFBLat    float64
	ReadCHADram   float64
	ReadLFBOccMax int

	// Fig 6b: C2M-ReadWrite workload. LFB latency vs CHA->MC write latency;
	// the C2M-Write domain excludes the MC, so the CHA->MC write latency may
	// exceed the LFB latency under load.
	RWLFBLat   float64
	RWCHAMCWr  float64
	RWWriteLat float64

	// Fig 6c/6d: low-load P2M-Write probe colocated with C2M-ReadWrite.
	// IIO latency vs CHA->MC write latency (P2M): the former contains the
	// latter and their inflations track.
	ProbeIIOLat  float64
	ProbeCHAMCWr float64
}

// DomainEvidence is the full Fig 6 dataset plus the §4.2 credit counts.
type DomainEvidence struct {
	Points []DomainEvidencePoint
	// Credit characterization (§4.2): max observed occupancies.
	LFBCredits      int
	IIOWriteCredits int
	IIOReadCredits  int // lower bound via CHA in-flight P2M reads
	// Unloaded latencies (1-core / probe points).
	UnloadedC2MRead  float64
	UnloadedC2MWrite float64
	UnloadedP2MWrite float64
}

// RunFig6 reproduces the §4.2 domain-evidence measurements.
func RunFig6(opt Options) DomainEvidence {
	var ev DomainEvidence
	for _, n := range DefaultCoreSweep() {
		var p DomainEvidencePoint
		p.Cores = n

		// (a) C2M-Read sweep.
		h := opt.newHost()
		addC2MCores(h, Q1, n)
		h.Run(opt.Warmup, opt.Window)
		m := snapshot(h)
		p.ReadLFBLat = m.C2MReadLat
		p.ReadCHADram = m.CHAReadLatC2M
		p.ReadLFBOccMax = m.LFBOccMax

		// (b) C2M-ReadWrite sweep.
		h = opt.newHost()
		addC2MCores(h, Q3, n)
		h.Run(opt.Warmup, opt.Window)
		m = snapshot(h)
		p.RWLFBLat = m.C2MLat
		p.RWCHAMCWr = m.CHAWriteLatC2M
		p.RWWriteLat = m.C2MWriteLat

		// (c, d) low-load P2M-Write probe + C2M-ReadWrite.
		h = opt.newHost()
		addC2MCores(h, Q3, n)
		h.AddStorage(periph.ProbeConfig(periph.DMAWrite, h.Region(1<<30)))
		h.Run(opt.Warmup, opt.Window)
		m = snapshot(h)
		p.ProbeIIOLat = m.P2MWriteLat
		p.ProbeCHAMCWr = m.CHAWriteLatP2M

		ev.Points = append(ev.Points, p)
		if p.ReadLFBOccMax > ev.LFBCredits {
			ev.LFBCredits = p.ReadLFBOccMax
		}
		if n == 1 {
			ev.UnloadedC2MRead = p.ReadLFBLat
			ev.UnloadedC2MWrite = p.RWWriteLat
			ev.UnloadedP2MWrite = p.ProbeIIOLat
		}
	}

	// Credit saturation probes: bulk P2M under maximal C2M pressure.
	h := opt.newHost()
	addC2MCores(h, Q3, 6)
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(opt.Warmup, opt.Window)
	ev.IIOWriteCredits = snapshot(h).IIOWriteOccMax

	h = opt.newHost()
	addC2MCores(h, Q2, 6)
	h.AddStorage(periph.BulkConfig(periph.DMARead, h.Region(1<<30)))
	h.Run(opt.Warmup, opt.Window)
	ev.IIOReadCredits = snapshot(h).P2MReadsInflightMax
	return ev
}

// Domains reports the static §4.1/§4.2 characterization used by the library
// and checked against measurement by RunFig6.
func Domains() [4]core.Domain { return core.CascadeLakeDomains() }

var _ = workload.SeqRead{} // workload generators are attached via quadrant helpers
