package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple aligned text table, the output format of every
// experiment's "regenerate the figure" path.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// gb formats bytes/s as GB/s.
func gb(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// x formats a degradation factor.
func x(v float64) string { return fmt.Sprintf("%.2fx", v) }

// RenderQuadrants renders Fig 3-style tables, one per quadrant.
func RenderQuadrants(w io.Writer, res map[Quadrant][]QuadrantPoint) {
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		pts, ok := res[q]
		if !ok {
			continue
		}
		t := Table{
			Title: fmt.Sprintf("Fig 3 %s", q),
			Header: []string{"cores", "C2M degr", "P2M degr", "C2M GB/s", "P2M GB/s",
				"memC2M", "memP2M", "regime"},
		}
		for _, p := range pts {
			t.Add(p.Cores, x(p.C2MDegradation()), x(p.P2MDegradation()),
				gb(p.Co.C2MBW), gb(p.Co.P2MBW), gb(p.Co.MemC2M), gb(p.Co.MemP2M),
				p.Regime().String())
		}
		t.Render(w)
	}
}

// RenderQuadrantProbes renders the Fig 7/8/13/14-style root-cause table for
// one quadrant sweep.
func RenderQuadrantProbes(w io.Writer, fig string, pts []QuadrantPoint) {
	t := Table{
		Title: fig,
		Header: []string{"cores", "C2Mlat iso", "C2Mlat co", "RPQ co", "rowmiss iso", "rowmiss co",
			"WPQfull", "wback", "P2Mlat co", "IIOocc", "admit ns", "dev>=1.5x"},
	}
	for _, p := range pts {
		p2mLat := p.Co.P2MWriteLat
		if !p.Quadrant.P2MWrites() {
			p2mLat = p.Co.P2MReadLat
		}
		t.Add(p.Cores,
			fmt.Sprintf("%.0f", p.C2MIso.C2MLat), fmt.Sprintf("%.0f", p.Co.C2MLat),
			fmt.Sprintf("%.1f", p.Co.RPQOcc),
			fmt.Sprintf("%.3f", p.C2MIso.RowMissC2MRead), fmt.Sprintf("%.3f", p.Co.RowMissC2MRead),
			fmt.Sprintf("%.2f", p.Co.WPQFullFrac), fmt.Sprintf("%.1f", p.Co.WBacklog),
			fmt.Sprintf("%.0f", p2mLat), fmt.Sprintf("%.0f", p.Co.IIOWriteOcc+p.Co.IIOReadOcc),
			fmt.Sprintf("%.1f", p.Co.CHAAdmitLat), fmt.Sprintf("%.2f", p.Co.BankDevFracGE15))
	}
	t.Render(w)
}

// RenderDomainEvidence renders the Fig 6 / §4.2 table.
func RenderDomainEvidence(w io.Writer, ev DomainEvidence) {
	t := Table{
		Title: "Fig 6: domain evidence (latencies in ns)",
		Header: []string{"cores", "LFB(read)", "CHA->DRAM", "LFB(rw)", "CHA->MC wr",
			"LFB wr", "IIO(probe)", "CHA->MC wr(P2M)"},
	}
	for _, p := range ev.Points {
		t.Add(p.Cores,
			fmt.Sprintf("%.0f", p.ReadLFBLat), fmt.Sprintf("%.0f", p.ReadCHADram),
			fmt.Sprintf("%.0f", p.RWLFBLat), fmt.Sprintf("%.0f", p.RWCHAMCWr),
			fmt.Sprintf("%.0f", p.RWWriteLat),
			fmt.Sprintf("%.0f", p.ProbeIIOLat), fmt.Sprintf("%.0f", p.ProbeCHAMCWr))
	}
	t.Render(w)
	fmt.Fprintf(w, "domain characterization (measured): LFB credits=%d, IIO write credits~%d, "+
		"IIO read in-flight lower bound=%d\n", ev.LFBCredits, ev.IIOWriteCredits, ev.IIOReadCredits)
	fmt.Fprintf(w, "unloaded latencies: C2M-Read=%.0fns C2M-Write=%.0fns P2M-Write=%.0fns\n\n",
		ev.UnloadedC2MRead, ev.UnloadedC2MWrite, ev.UnloadedP2MWrite)
}

// RenderFormula renders the Fig 11 error table and Fig 12 breakdowns.
func RenderFormula(w io.Writer, res map[Quadrant][]FormulaPoint) {
	t := Table{
		Title:  "Fig 11: analytical formula error (%)",
		Header: []string{"quadrant", "cores", "C2M err", "C2M err(+CHA)", "P2M err"},
	}
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		for _, f := range res[q] {
			t.Add(fmt.Sprintf("Q%d", int(f.Quadrant)), f.Cores,
				fmt.Sprintf("%+.1f", f.C2MErrorPct), fmt.Sprintf("%+.1f", f.C2MErrorCHAPct),
				fmt.Sprintf("%+.1f", f.P2MErrorPct))
		}
	}
	t.Render(w)
	b := Table{
		Title:  "Fig 12: C2M queueing-delay breakdown (ns)",
		Header: []string{"quadrant", "cores", "switching", "writeHoL", "readHoL", "topOfQueue"},
	}
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		for _, f := range res[q] {
			b.Add(fmt.Sprintf("Q%d", int(f.Quadrant)), f.Cores,
				fmt.Sprintf("%.1f", f.C2MBreakdown.Switching), fmt.Sprintf("%.1f", f.C2MBreakdown.WriteHoL),
				fmt.Sprintf("%.1f", f.C2MBreakdown.ReadHoL), fmt.Sprintf("%.1f", f.C2MBreakdown.TopOfQueue))
		}
	}
	b.Render(w)
}

// RenderApps renders Fig 1/2/15/16/17-style app colocation tables. Series
// print in sorted name order so output is reproducible byte-for-byte
// (map iteration order would reshuffle rows run to run).
func RenderApps(w io.Writer, title string, series map[string][]AppPoint) {
	t := Table{
		Title:  title,
		Header: []string{"app", "ddio", "cores", "app degr", "P2M degr", "memC2M", "memP2M"},
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range series[name] {
			t.Add(name, p.DDIO, p.Cores, x(p.AppDegradation()), x(p.P2MDegradation()),
				gb(p.Co.MemC2M), gb(p.Co.MemP2M))
		}
	}
	t.Render(w)
}

// RenderRDMA renders Fig 18-style tables.
func RenderRDMA(w io.Writer, res map[Quadrant][]RDMAQuadrantPoint) {
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		pts, ok := res[q]
		if !ok {
			continue
		}
		t := Table{
			Title:  fmt.Sprintf("Fig 18 RDMA %s", q),
			Header: []string{"cores", "C2M degr", "P2M degr", "NIC GB/s", "PFC pause", "IIOocc"},
		}
		for _, p := range pts {
			t.Add(p.Cores, x(p.C2MDegradation()), x(p.P2MDegradation()),
				gb(p.Co.P2MBW), fmt.Sprintf("%.2f", p.PauseFrac),
				fmt.Sprintf("%.0f", p.Co.IIOWriteOcc+p.Co.IIOReadOcc))
		}
		t.Render(w)
	}
}

// RenderDCTCP renders Fig 19-style tables.
func RenderDCTCP(w io.Writer, read, rw []DCTCPPoint) {
	for _, set := range []struct {
		name string
		pts  []DCTCPPoint
	}{{"C2MRead + TCP Rx", read}, {"C2MReadWrite + TCP Rx", rw}} {
		t := Table{
			Title: fmt.Sprintf("Fig 19: %s", set.name),
			Header: []string{"cores", "mem degr", "net degr", "net GB/s", "P2M GB/s",
				"loss", "WPQfull"},
		}
		for _, p := range set.pts {
			t.Add(p.C2MCores, x(p.MemAppDegradation()), x(p.NetAppDegradation()),
				gb(p.NetCo), gb(p.P2MCo), fmt.Sprintf("%.4f", p.LossRate),
				fmt.Sprintf("%.2f", p.Co.WPQFullFrac))
		}
		t.Render(w)
	}
}

// RenderTable1 renders the hardware configuration table.
func RenderTable1(w io.Writer) {
	t := Table{
		Title:  "Table 1: simulated server configurations",
		Header: []string{"", "IceLake", "CascadeLake"},
	}
	t.Add("Cores", 32, 8)
	t.Add("DRAM", "4x3200MHz DDR4", "2x2933MHz DDR4")
	t.Add("DRAM BW", "102.4 GB/s", "46.9 GB/s")
	t.Add("PCIe BW (theoretical)", "32 GB/s", "16 GB/s")
	t.Add("PCIe BW (achievable)", "28 GB/s", "14 GB/s")
	t.Add("LFB credits/core", 12, 12)
	t.Add("IIO write credits", 184, 92)
	t.Add("IIO read credits", 328, 164)
	t.Render(w)
}
