package exp

import (
	"bytes"
	"strings"
	"testing"
)

func partitionedIncastSpec() Spec {
	return Spec{
		Experiment: "incast",
		Cores:      []int{2},
		WarmupNs:   2000,
		WindowNs:   5000,
		Fabric:     &FabricSpec{Hosts: 3, Partitioned: true},
	}
}

// TestIncastPartitionedWorkerIdentity pins the conservative-parallel-DES
// guarantee end to end: a partitioned incast spec produces byte-identical
// RunSpecJSON whether the rack's partitions advance on 1, 2, or N
// goroutines (and at any sweep parallelism on top). This is what lets
// FabricWorkers stay an execution-only knob outside the spec hash.
func TestIncastPartitionedWorkerIdentity(t *testing.T) {
	spec := partitionedIncastSpec()
	base := fastOpt(1)
	base.FabricWorkers = 1
	want, err := RunSpecJSON(spec, base)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, w := range []int{2, 5} {
		opt := fastOpt(1)
		opt.FabricWorkers = w
		got, err := RunSpecJSON(spec, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("bytes differ between 1 and %d fabric workers:\n%s\nvs\n%s", w, want, got)
		}
	}
	// Sweep-pool parallelism composes with the rack's worker pool.
	opt := fastOpt(4)
	opt.FabricWorkers = 3
	got, err := RunSpecJSON(spec, opt)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bytes differ between serial and parallel sweep over partitioned racks")
	}
}

// TestIncastPartitionedRejectsFaults pins the spec-level guard: a
// partitioned rack has no rack-wide fault observer, so the combination must
// fail validation instead of silently dropping the schedule.
func TestIncastPartitionedRejectsFaults(t *testing.T) {
	spec := partitionedIncastSpec()
	spec.Faults = DefaultFaultSchedule(spec.WarmupNs, spec.WindowNs)
	if _, err := RunSpecJSON(spec, fastOpt(1)); err == nil {
		t.Fatalf("partitioned incast with faults validated")
	} else if !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestIncastPartitionedIsDistinctSpec pins that Partitioned participates in
// the content address: it selects a different discretization, so it must
// produce a different cache key than the shared-engine spec.
func TestIncastPartitionedIsDistinctSpec(t *testing.T) {
	part := partitionedIncastSpec()
	shared := partitionedIncastSpec()
	shared.Fabric.Partitioned = false
	hp, err := part.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := shared.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hp == hs {
		t.Fatalf("partitioned and shared specs hash equal: %s", hp)
	}
}
