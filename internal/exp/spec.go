package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/hostcc"
	"repro/internal/sim"
)

// Spec is the machine-readable description of one experiment job: the
// common currency of `hostnetsim -format json` and the hostnetd daemon.
// Because every sweep is deterministic and bit-identical at any parallelism
// (pinned by the determinism tests in this package), a Spec fully determines
// its result — which is what makes results content-addressable: hostnetd
// caches and deduplicates jobs by Hash of the normalized Spec.
//
// Execution-only knobs (parallelism, audit, progress observation) are
// deliberately NOT part of the Spec: they cannot change the result, so they
// must not change the cache key.
type Spec struct {
	// Experiment names the artifact; Experiments() lists the valid names.
	Experiment string `json:"experiment"`
	// WarmupNs and WindowNs are the simulated warmup and measurement
	// interval in nanoseconds; 0 means the §2.2 defaults (20 000 / 100 000).
	WarmupNs int64 `json:"warmup_ns,omitempty"`
	WindowNs int64 `json:"window_ns,omitempty"`
	// Preset picks the testbed: "cascadelake" (default) or "icelake".
	// Ignored by the app figures, which fix their own testbed.
	Preset string `json:"preset,omitempty"`
	// DDIO enables DDIO where the experiment honors the knob.
	DDIO bool `json:"ddio,omitempty"`
	// Quadrant selects the §2.2 scenario (1-4) for quadrant/rdma/hostcc.
	Quadrant int `json:"quadrant,omitempty"`
	// Cores is the C2M core-count sweep; experiments that take a single
	// count (ratio, hostcc, mcisolation, prefetch) use the first element.
	Cores []int `json:"cores,omitempty"`
	// WriteFracs is the store-fraction sweep of the ratio experiment.
	WriteFracs []float64 `json:"write_fracs,omitempty"`
	// Reserve is the per-channel WPQ reservation of mcisolation.
	Reserve int `json:"reserve,omitempty"`
	// Faults schedules transient degradation windows for experiments that
	// honor them (quadrant, rdma, hostcc, faultsweep, incast). Faults change
	// results, so they are part of the spec — and thus of the cache key —
	// unlike the execution-only knobs. Times are absolute simulated
	// nanoseconds from engine start (warmup begins at 0).
	Faults []fault.Window `json:"faults,omitempty"`
	// Fabric is the rack shape and traffic pattern for multi-host
	// experiments (incast). Nil means the experiment's default rack.
	Fabric *FabricSpec `json:"fabric,omitempty"`
	// Fidelity picks the tier that answers the spec: "sim" (default) runs
	// the full discrete-event simulation; "analytic" answers from the §7
	// predictive model in microseconds, for the specs the model covers
	// (quadrant/rdma/hostcc points on the calibrated testbed). Fidelity
	// changes the result, so it participates in the content address —
	// normalization maps "sim" to the absent field, keeping every
	// pre-fidelity content address unchanged.
	Fidelity string `json:"fidelity,omitempty"`
}

// The fidelity tiers.
const (
	FidelitySim      = "sim"
	FidelityAnalytic = "analytic"
)

// Default simulated intervals (§2.2: 20 us warmup, 100 us window).
const (
	DefaultWarmupNs = 20_000
	DefaultWindowNs = 100_000
)

// specShape declares which Spec knobs an experiment reads, plus its
// defaults; normalization clears unread knobs so equivalent specs hash
// equal.
type specShape struct {
	preset   bool // honors Preset
	ddio     bool // honors DDIO
	quadrant bool // honors Quadrant
	cores    bool // honors Cores
	fracs    bool // honors WriteFracs
	reserve  bool // honors Reserve
	faults   bool // honors Faults
	fabric   bool // honors Fabric

	defQuadrant int
	defCores    []int
	defFaults   bool // empty Faults means the default demo schedule
}

var sweepShape = specShape{preset: true, ddio: true, quadrant: true, cores: true, faults: true, defQuadrant: 1}

var specShapes = map[string]specShape{
	// Full figures: every knob beyond interval/ddio is fixed by the figure.
	"fig3":  {preset: true, ddio: true},
	"fig6":  {preset: true, ddio: true},
	"fig11": {preset: true, ddio: true},
	"fig18": {preset: true, ddio: true},
	"fig19": {preset: true, ddio: true},
	"fig27": {preset: true, ddio: true},
	"fig29": {preset: true, ddio: true},
	// App figures fix preset and DDIO pairing themselves.
	"fig1":  {},
	"fig2":  {},
	"fig15": {},
	"fig16": {},
	"fig17": {},
	// Parameterized sweeps and studies.
	"quadrant":    sweepShape,
	"rdma":        sweepShape,
	"ratio":       {preset: true, ddio: true, cores: true, fracs: true, defCores: []int{5}},
	"hostcc":      {preset: true, ddio: true, quadrant: true, cores: true, faults: true, defQuadrant: 3, defCores: []int{5}},
	"mcisolation": {preset: true, ddio: true, cores: true, reserve: true, defCores: []int{5}},
	"prefetch":    {preset: true, ddio: true, cores: true, defCores: []int{2}},
	// faultsweep pairs a healthy and a faulted RDMA quadrant sweep (a
	// Fig-3-style quadrant under degradation); an empty fault list gets the
	// default storm/throttle/starvation demo schedule.
	"faultsweep": {preset: true, ddio: true, quadrant: true, cores: true, faults: true,
		defQuadrant: 3, defCores: []int{2, 4, 6}, defFaults: true},
	// incast is the rack-scale experiment: M senders converge on a receiver
	// whose host network is the bottleneck. Cores[0] is the receiver's
	// colocated C2M core count; the fabric section shapes the rack.
	"incast": {preset: true, ddio: true, cores: true, faults: true, fabric: true, defCores: []int{4}},
	// crossval runs both fidelity tiers on the same quadrant points and
	// reports the analytic-vs-sim error per point. The analytic side fixes
	// its own testbed (Cascade Lake, DDIO off, no faults), so only the
	// quadrant and core sweep are honored.
	"crossval": {quadrant: true, cores: true, defQuadrant: 1},
}

// Experiments lists the valid Spec.Experiment names, sorted.
func Experiments() []string {
	names := make([]string, 0, len(specShapes))
	for name := range specShapes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// defaultWriteFracs is the ratio experiment's store-fraction sweep.
func defaultWriteFracs() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// Normalized returns the canonical form of the spec: defaults filled in and
// knobs the experiment does not read cleared, so that every spec describing
// the same computation normalizes to the same value. Hash and Canonical
// operate on this form.
func (s Spec) Normalized() Spec {
	n := Spec{Experiment: s.Experiment, WarmupNs: s.WarmupNs, WindowNs: s.WindowNs}
	if n.WarmupNs <= 0 {
		n.WarmupNs = DefaultWarmupNs
	}
	if n.WindowNs <= 0 {
		n.WindowNs = DefaultWindowNs
	}
	// "sim" is the default tier: normalize it to the absent field so specs
	// submitted before fidelity existed keep their content addresses
	// byte-for-byte (pinned by TestFidelityHashInvariance). Any other
	// value — including unknown ones Validate rejects — is kept and hashes
	// distinctly.
	if s.Fidelity != "" && s.Fidelity != FidelitySim {
		n.Fidelity = s.Fidelity
	}
	if n.Fidelity == FidelityAnalytic {
		// The closed-form model has no simulated clock: the interval knobs
		// are unread, so clear them like any other unread knob and let
		// every (warmup, window) variant collapse onto one address.
		n.WarmupNs, n.WindowNs = 0, 0
	}
	shape, ok := specShapes[s.Experiment]
	if !ok {
		return n // validation rejects it; keep the rest untouched
	}
	if shape.preset && s.Preset != "" && s.Preset != "cascadelake" {
		n.Preset = s.Preset
	}
	if shape.ddio {
		n.DDIO = s.DDIO
	}
	if shape.quadrant {
		n.Quadrant = s.Quadrant
		if n.Quadrant == 0 {
			n.Quadrant = shape.defQuadrant
		}
	}
	if shape.cores {
		n.Cores = append([]int(nil), s.Cores...)
		if len(n.Cores) == 0 {
			if shape.defCores != nil {
				n.Cores = append([]int(nil), shape.defCores...)
			} else {
				n.Cores = DefaultCoreSweep()
			}
		}
	}
	if shape.fracs {
		n.WriteFracs = append([]float64(nil), s.WriteFracs...)
		if len(n.WriteFracs) == 0 {
			n.WriteFracs = defaultWriteFracs()
		}
	}
	if shape.reserve {
		n.Reserve = s.Reserve
		if n.Reserve == 0 {
			n.Reserve = 16
		}
	}
	if shape.faults {
		n.Faults = fault.Schedule(s.Faults).Normalized()
		if n.Faults == nil && shape.defFaults {
			n.Faults = DefaultFaultSchedule(n.WarmupNs, n.WindowNs)
		}
	}
	if shape.fabric {
		fs := FabricSpec{}
		if s.Fabric != nil {
			fs = *s.Fabric
		}
		nf := fs.Normalized()
		n.Fabric = &nf
	}
	return n
}

// DefaultFaultSchedule is the faultsweep demo: a PFC pause storm, a DRAM
// channel throttle, and an IIO credit starvation staggered across the
// measurement window so each domain's degradation and recovery is visible.
func DefaultFaultSchedule(warmupNs, windowNs int64) fault.Schedule {
	q := windowNs / 4
	if q <= 0 {
		q = 1
	}
	return fault.Schedule{
		{Kind: fault.PauseStorm, StartNs: warmupNs + q/2, DurationNs: q},
		{Kind: fault.DRAMThrottle, StartNs: warmupNs + 2*q, DurationNs: q, Channel: 0},
		{Kind: fault.IIOStarve, StartNs: warmupNs + 3*q, DurationNs: q},
	}.Normalized()
}

// Validate checks a spec without normalizing it; RunSpec validates the
// normalized form, so callers usually go through Canonical or RunSpec.
func (s Spec) Validate() error {
	shape, ok := specShapes[s.Experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (valid: %v)", s.Experiment, Experiments())
	}
	if s.WarmupNs < 0 || s.WindowNs < 0 {
		return fmt.Errorf("negative interval: warmup_ns=%d window_ns=%d", s.WarmupNs, s.WindowNs)
	}
	switch s.Fidelity {
	case "", FidelitySim, FidelityAnalytic:
	default:
		return fmt.Errorf("unknown fidelity %q (valid: %q, %q)", s.Fidelity, FidelitySim, FidelityAnalytic)
	}
	if s.Fidelity == FidelityAnalytic && s.Experiment == "crossval" {
		return fmt.Errorf("crossval is inherently cross-fidelity; submit it without fidelity=analytic")
	}
	if shape.preset {
		switch s.Preset {
		case "", "cascadelake", "icelake":
		default:
			return fmt.Errorf("unknown preset %q (valid: cascadelake, icelake)", s.Preset)
		}
	}
	if shape.quadrant && s.Quadrant != 0 && (s.Quadrant < 1 || s.Quadrant > 4) {
		return fmt.Errorf("quadrant %d out of range 1-4", s.Quadrant)
	}
	for _, c := range s.Cores {
		if c < 1 {
			return fmt.Errorf("core count %d < 1", c)
		}
	}
	for _, f := range s.WriteFracs {
		if f < 0 || f > 1 {
			return fmt.Errorf("write fraction %v outside [0,1]", f)
		}
	}
	if s.Reserve < 0 {
		return fmt.Errorf("reserve %d < 0", s.Reserve)
	}
	if shape.faults {
		if err := fault.Schedule(s.Faults).Validate(); err != nil {
			return err
		}
	}
	if shape.fabric && s.Fabric != nil {
		if err := s.Fabric.Validate(); err != nil {
			return err
		}
		if s.Fabric.Partitioned && len(s.Faults) > 0 {
			return fmt.Errorf("fabric: partitioned racks do not support fault injection (drop faults or partitioned)")
		}
	}
	return nil
}

// Canonical returns the canonical JSON encoding of the normalized spec:
// fixed field order (struct order), defaults made explicit, unread knobs
// dropped. Two specs describing the same computation produce identical
// bytes — the soundness basis of hostnetd's content-addressed cache.
func (s Spec) Canonical() ([]byte, error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the content address of the spec: hex SHA-256 of Canonical.
func (s Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// options applies the spec's result-affecting knobs onto the caller's
// execution options (parallelism, audit, ctx, progress pass through).
func (n Spec) options(opt Options) Options {
	opt.Warmup = sim.Time(n.WarmupNs) * sim.Nanosecond
	opt.Window = sim.Time(n.WindowNs) * sim.Nanosecond
	opt.DDIO = n.DDIO
	if n.Preset == "icelake" {
		opt.Preset = host.IceLake
	} else {
		opt.Preset = host.CascadeLake
	}
	opt.Faults = fault.Schedule(n.Faults)
	return opt
}

// Fig19Result pairs the two TCP case studies of Fig 19/25/26.
type Fig19Result struct {
	Read      []DCTCPPoint
	ReadWrite []DCTCPPoint
}

// Fig29Result pairs the two formula-validation series of Fig 29/30.
type Fig29Result struct {
	Read      []DCTCPFormulaPoint
	ReadWrite []DCTCPFormulaPoint
}

// RunSpec normalizes, validates, and executes a spec, returning the
// experiment's structured result (the same value the Run* entry points
// return). Execution-only behavior — worker-pool size, auditing,
// cancellation, progress — comes from opt; the result depends only on the
// spec. Cancellation through Options.BaseCtx comes back as a wrapped
// context error; panics inside the simulation (genuine bugs, audit
// violations) propagate so callers wanting isolation can wrap RunSpec in
// runner.Do, as hostnetd does.
func RunSpec(s Spec, opt Options) (v any, err error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.Fidelity == FidelityAnalytic {
		// The analytic tier is pure arithmetic: no engine, no options, no
		// cancellation window. Specs outside the model's domain come back
		// as a wrapped *analytic.UnsupportedError (HTTP 422 in hostnetd).
		return runSpecAnalytic(n)
	}
	opt = n.options(opt)
	// The sweep helpers (pdo/pmap) re-raise pool errors as panics because
	// the typed Run* entry points have no error returns; at this boundary a
	// cancellation is an expected outcome, not a bug, so translate it back.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok && (errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded)) {
			v, err = nil, fmt.Errorf("experiment %s interrupted: %w", n.Experiment, e)
			return
		}
		panic(r)
	}()
	switch n.Experiment {
	case "fig3":
		return RunFig3(opt), nil
	case "fig6":
		return RunFig6(opt), nil
	case "fig11":
		return RunFig11(opt), nil
	case "fig18":
		return RunFig18(opt), nil
	case "fig19":
		read, rw := RunFig19(opt)
		return Fig19Result{Read: read, ReadWrite: rw}, nil
	case "fig27":
		return RunFig27(opt), nil
	case "fig29":
		read, rw := RunFig29(opt)
		return Fig29Result{Read: read, ReadWrite: rw}, nil
	case "fig1":
		return RunFig1(opt), nil
	case "fig2":
		return RunFig2(opt), nil
	case "fig15":
		return RunFig15(opt), nil
	case "fig16":
		return RunFig16(opt), nil
	case "fig17":
		return RunFig17(opt), nil
	case "quadrant":
		return RunQuadrant(Quadrant(n.Quadrant), n.Cores, opt), nil
	case "rdma":
		return RunRDMAQuadrant(Quadrant(n.Quadrant), n.Cores, opt), nil
	case "ratio":
		return RunRatioSweep(n.Cores[0], n.WriteFracs, opt), nil
	case "hostcc":
		return RunHostCCStudy(Quadrant(n.Quadrant), n.Cores[0], hostcc.DefaultConfig(), opt), nil
	case "mcisolation":
		return RunMCIsolationStudy(n.Cores[0], n.Reserve, opt), nil
	case "prefetch":
		return RunPrefetchStudy(n.Cores[0], opt), nil
	case "faultsweep":
		return RunFaultSweep(Quadrant(n.Quadrant), n.Cores, fault.Schedule(n.Faults), opt), nil
	case "incast":
		return RunIncast(*n.Fabric, n.Cores[0], fault.Schedule(n.Faults), opt), nil
	case "crossval":
		return RunCrossval(Quadrant(n.Quadrant), n.Cores, opt)
	}
	return nil, fmt.Errorf("experiment %q validated but not dispatchable", n.Experiment)
}

// NewResultValue returns a pointer to the zero value of the experiment's
// concrete result type, for decoding a Result envelope's payload back into
// typed form. Nil for unknown experiments.
func NewResultValue(experiment string) any {
	switch experiment {
	case "fig3":
		return &map[Quadrant][]QuadrantPoint{}
	case "fig6":
		return &DomainEvidence{}
	case "fig11", "fig27":
		return &map[Quadrant][]FormulaPoint{}
	case "fig18":
		return &map[Quadrant][]RDMAQuadrantPoint{}
	case "fig19":
		return &Fig19Result{}
	case "fig29":
		return &Fig29Result{}
	case "fig1":
		return &Fig1Result{}
	case "fig2":
		return &Fig2Result{}
	case "fig15", "fig16", "fig17":
		return &AppGridResult{}
	case "quadrant":
		return &[]QuadrantPoint{}
	case "rdma":
		return &[]RDMAQuadrantPoint{}
	case "ratio":
		return &[]RatioPoint{}
	case "hostcc":
		return &HostCCStudy{}
	case "mcisolation":
		return &MCIsolationStudy{}
	case "prefetch":
		return &PrefetchStudy{}
	case "faultsweep":
		return &FaultSweep{}
	case "incast":
		return &IncastSweep{}
	case "crossval":
		return &CrossvalResult{}
	}
	return nil
}

// NewSpecResultValue is the fidelity-aware variant of NewResultValue: an
// analytic-fidelity spec's payload decodes into []AnalyticPoint regardless
// of experiment, a sim spec's into the experiment's sim result type.
func NewSpecResultValue(s Spec) any {
	if s.Normalized().Fidelity == FidelityAnalytic {
		return &[]AnalyticPoint{}
	}
	return NewResultValue(s.Experiment)
}

// Result is the JSON envelope emitted for a completed spec: the normalized
// spec that produced the payload, then the payload itself. Both
// `hostnetsim -format json` and hostnetd's result endpoint emit exactly
// these bytes (compact encoding/json, stable struct field order), so the
// two surfaces are byte-identical for the same spec — pinned by the
// end-to-end test in internal/serve.
type Result struct {
	Spec   Spec `json:"spec"`
	Result any  `json:"result"`
}

// RunSpecJSON executes a spec and returns the canonical JSON Result bytes.
// Determinism makes these bytes a pure function of the spec: the JSON from
// any parallelism, any surface (CLI or daemon), any repeat run is
// byte-identical (pinned by TestRunSpecJSONDeterministic).
func RunSpecJSON(s Spec, opt Options) ([]byte, error) {
	n := s.Normalized()
	v, err := RunSpec(n, opt)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(Result{Spec: n, Result: v})
	if err != nil {
		return nil, fmt.Errorf("encoding %s result: %w", n.Experiment, err)
	}
	return b, nil
}

// SpecTasks estimates the number of sweep tasks a spec fans out (the number
// of Options.Progress callbacks a run will make), so streaming clients can
// show completion against a known denominator. 0 means unknown.
func SpecTasks(s Spec) int {
	n := s.Normalized()
	if n.Fidelity == FidelityAnalytic {
		return 0 // answered inline; no sweep tasks, no progress stream
	}
	// A quadrant-style sweep runs one task per core count plus one baseline;
	// pdo/pmap also count the enclosing fan-out tasks.
	sweep := func(counts int) int { return counts + 1 }
	switch n.Experiment {
	case "fig3":
		// RunFig3 dedups the 4x13 logical runs to the unique-key set: two
		// C2M iso baselines per core count, two device baselines, and the
		// four quadrants' colocated runs.
		return 2*len(DefaultCoreSweep()) + 2 + 4*len(DefaultCoreSweep())
	case "fig18":
		return 4 + 4*sweep(len(DefaultCoreSweep()))
	case "fig11", "fig27":
		return 4 + 4*sweep(len(DefaultCoreSweep()))
	case "fig19":
		return 2 + 2*sweep(4)
	case "fig29":
		return 2 + 2*sweep(4)
	case "fig1":
		return 2 + 2*sweep(6)
	case "fig2":
		return 4 + 4*sweep(6)
	case "fig15", "fig16", "fig17":
		return 4 + 4*sweep(4)
	case "quadrant", "rdma", "crossval":
		return sweep(len(n.Cores))
	case "ratio":
		return sweep(len(n.WriteFracs))
	case "faultsweep":
		return 2 + 2*sweep(len(n.Cores))
	case "incast":
		d := len(n.Fabric.degrees())
		if len(n.Faults) == 0 {
			return d
		}
		return 2 + 2*d
	}
	return 0
}
