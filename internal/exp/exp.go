// Package exp is the experiment harness: one entry point per table and
// figure in the paper's evaluation, each returning the same rows/series the
// paper reports (throughput degradation factors, memory-bandwidth breakdown,
// per-domain latency, formula error, component breakdowns).
package exp

import (
	"context"
	"os"

	"repro/internal/analytic"
	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options configure an experiment run.
type Options struct {
	// Preset builds the base host config (host.CascadeLake or host.IceLake).
	Preset func() host.Config
	// DDIO overrides the preset's DDIO enable.
	DDIO bool
	// Warmup and Window set the simulated measurement interval.
	Warmup, Window sim.Time
	// P2MCores is informational parity with the paper's core partitioning
	// (the device model needs no host cores).
	P2MCores int
	// Parallelism bounds the worker pool every multi-point sweep runs on:
	// N >= 1 uses N workers (1 = serial), and 0 (the default) uses one
	// worker per available CPU (GOMAXPROCS). Each sweep point builds its
	// own host and engine, so results are bit-identical at any setting —
	// pinned by TestParallelDeterminism*.
	Parallelism int
	// FabricWorkers bounds the goroutines stepping a partitioned rack's
	// host partitions (FabricSpec.Partitioned): <= 1 advances the lookahead
	// rounds serially. Execution-only like Parallelism: the conservative
	// synchronizer makes partitioned results byte-identical at any worker
	// count (pinned by TestIncastPartitionedWorkerIdentity), so this knob
	// is not part of the spec. Ignored by shared-engine racks.
	FabricWorkers int
	// Audit enables the invariant auditor on every host the experiment
	// builds, in fail-fast mode: any conservation violation panics with the
	// domain, counter, and simulated timestamp. Auditing is observational —
	// it never schedules events — so results are identical with it on or
	// off. Defaults() also turns it on when HOSTNET_AUDIT is set, which is
	// how CI audits every figure smoke test.
	Audit bool
	// Faults schedules deterministic degradation windows on every host the
	// experiment builds (each sweep point re-runs the same schedule on its
	// own engine, so results stay bit-identical at any parallelism). Faults
	// change results, so specs carry them; empty means healthy.
	Faults fault.Schedule
	// BaseCtx, when non-nil, bounds every multi-point sweep: once the
	// context is done no further points start, and the sweep surfaces the
	// cancellation (hostnetd uses this for per-job timeout and shutdown).
	// Cancellation takes effect between sweep points — an individual
	// simulation is never interrupted mid-run, so partial results are never
	// observed. Nil means run to completion.
	BaseCtx context.Context
	// Progress, if non-nil, is invoked once after each completed sweep task
	// (one isolated+colocated point, or one baseline run). It is called
	// concurrently from pool workers and must be safe for concurrent use.
	// Purely observational: it cannot change results.
	Progress func()
}

// Defaults returns the options used throughout §2.2/§5/§6: Cascade Lake,
// DDIO and prefetching off, 20 us warmup and 100 us measured window.
func Defaults() Options {
	return Options{
		Preset:   host.CascadeLake,
		DDIO:     false,
		Warmup:   20 * sim.Microsecond,
		Window:   100 * sim.Microsecond,
		P2MCores: 2,
		Audit:    os.Getenv("HOSTNET_AUDIT") != "",
	}
}

// auditConfig is the experiment-harness audit policy: fail fast, so a
// violation surfaces as a panic (and a test failure) at the offending event.
func (o Options) auditConfig() audit.Config {
	return audit.Config{Enabled: o.Audit, FailFast: true}
}

func (o Options) newHost() *host.Host {
	cfg := o.Preset()
	cfg.DDIO.Enabled = o.DDIO
	cfg.DDIO.ScrambleEvictions = o.DDIO
	cfg.Audit = o.auditConfig()
	cfg.Faults = o.Faults
	return host.New(cfg)
}

// hostFromConfig builds a host from an explicit (already adjusted) config.
func hostFromConfig(cfg host.Config) *host.Host { return host.New(cfg) }

// iceLakePreset adapts the Ice Lake config for quadrant experiments (DDIO
// is overridden by Options as usual).
func iceLakePreset() host.Config { return host.IceLake() }

// Measure is a full probe snapshot of one run's measurement window.
type Measure struct {
	// Application-level throughput (bytes/s).
	C2MBW, P2MBW float64
	// Memory bandwidth at the DRAM, split by source (bytes/s).
	MemC2M, MemP2M float64

	// Domain latencies (ns).
	C2MLat      float64 // LFB latency (reads+writes)
	C2MReadLat  float64
	C2MWriteLat float64
	P2MWriteLat float64 // IIO write-credit latency
	P2MReadLat  float64 // IIO read-credit latency

	// CHA-level latencies (ns): the Fig 6 evidence series.
	CHAReadLatC2M  float64 // CHA->DRAM read latency, C2M requests
	CHAReadLatP2M  float64
	CHAWriteLatC2M float64 // CHA->MC write latency, C2M requests
	CHAWriteLatP2M float64
	CHAAdmitLat    float64 // admission delay
	RPQBlockLat    float64 // CHA->RPQ blocking (reads), avg over all reads

	// Queue/buffer occupancies.
	RPQOcc, WPQOcc      float64
	WPQFullFrac         float64
	IIOWriteOcc         float64
	IIOWriteOccMax      int
	IIOReadOcc          float64
	IIOReadOccMax       int
	WBacklog            float64
	P2MReadsInflight    float64
	P2MReadsInflightMax int
	LFBOccMax           int
	Switches            uint64
	RowMissC2MRead      float64
	RowMissC2MWrite     float64
	RowMissP2MRead      float64
	RowMissP2MWrite     float64
	BankDevMedian       float64
	BankDevFracGE15     float64 // fraction of samples with deviation >= 1.5x
	BankDevFracGE2      float64
	DDIOWritebacks      uint64
	Inputs              analytic.Inputs
}

// snapshot captures every probe from a finished run window.
func snapshot(h *host.Host) Measure {
	// Anchor the end-of-window audit here too: the RDMA/DCTCP experiments
	// drive Eng.RunUntil directly and never pass through host.Run. Running
	// CheckEnd twice is harmless (invariant checks are idempotent and
	// latency cross-checks see the same window).
	h.Auditor.CheckEnd()
	var m Measure
	mc := h.MC.Stats()
	cs := h.CHA.Stats()
	is := h.IIO.Stats()
	m.C2MBW = h.C2MBW()
	m.P2MBW = h.P2MBW()
	m.MemC2M, m.MemP2M = h.MemBW()
	if len(h.Cores) > 0 {
		var lfb, rd, wr float64
		for _, c := range h.Cores {
			st := c.Stats()
			lfb += st.LFBLat.AvgNanos()
			rd += st.ReadLat.AvgNanos()
			wr += st.WriteLat.AvgNanos()
			if st.LFBOcc.Max() > m.LFBOccMax {
				m.LFBOccMax = st.LFBOcc.Max()
			}
		}
		n := float64(len(h.Cores))
		m.C2MLat, m.C2MReadLat, m.C2MWriteLat = lfb/n, rd/n, wr/n
	}
	m.P2MWriteLat = is.WriteLat.AvgNanos()
	m.P2MReadLat = is.ReadLat.AvgNanos()
	m.CHAReadLatC2M = cs.ReadMCLat[0].AvgNanos()
	m.CHAReadLatP2M = cs.ReadMCLat[1].AvgNanos()
	m.CHAWriteLatC2M = cs.WriteMCLat[0].AvgNanos()
	m.CHAWriteLatP2M = cs.WriteMCLat[1].AvgNanos()
	m.CHAAdmitLat = cs.AdmitLat.AvgNanos()
	m.RPQBlockLat = cs.RPQBlockLat.AvgNanos()
	m.RPQOcc = mc.RPQOcc.Avg()
	m.WPQOcc = mc.WPQOcc.Avg()
	m.WPQFullFrac = mc.WPQFull.Frac()
	m.IIOWriteOcc = is.WriteOcc.Avg()
	m.IIOWriteOccMax = is.WriteOcc.Max()
	m.IIOReadOcc = is.ReadOcc.Avg()
	m.IIOReadOccMax = is.ReadOcc.Max()
	m.WBacklog = cs.WBacklog.Avg()
	m.P2MReadsInflight = cs.P2MReadsInflight.Avg()
	m.P2MReadsInflightMax = cs.P2MReadsInflight.Max()
	m.Switches = mc.Switches.Count()
	m.RowMissC2MRead = mc.C2MRead.RowMissRatio()
	m.RowMissC2MWrite = mc.C2MWrite.RowMissRatio()
	m.RowMissP2MRead = mc.P2MRead.RowMissRatio()
	m.RowMissP2MWrite = mc.P2MWrite.RowMissRatio()
	m.BankDevMedian = mc.BankDeviation.Quantile(0.5)
	m.BankDevFracGE15 = mc.BankDeviation.FracAtLeast(1.5)
	m.BankDevFracGE2 = mc.BankDeviation.FracAtLeast(2.0)
	m.DDIOWritebacks = cs.DDIOWritebacks.Count()
	m.Inputs = analytic.FromStats(mc, cs, h.MC.Timing(), h.MC.Channels())
	return m
}

// degradation reports iso/colocated (>= 1 means degradation), guarding
// against empty denominators.
func degradation(iso, co float64) float64 {
	if co <= 0 {
		return 0
	}
	return iso / co
}

var _ = telemetry.Samples{} // telemetry types appear via host probes
