package exp

import (
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// addRDMADevice attaches the quadrant's RDMA load to the host and returns
// the NIC throughput/pause accessors.
func addRDMADevice(h *host.Host, q Quadrant) (bw func() float64, pause func() float64, reset func()) {
	cfg := netsim.DefaultRDMAWriteConfig(h.Region(1 << 30))
	cfg.Audit = h.Auditor
	if q.P2MWrites() {
		nic := netsim.NewRDMAWrite(h.Eng, cfg, h.IIO)
		h.Faults.AttachNIC(nic)
		nic.Start(0)
		return nic.BytesPerSec, func() float64 { return nic.PauseFrac.Frac() }, nic.ResetStats
	}
	nic := netsim.NewRDMARead(h.Eng, cfg, h.IIO)
	h.Faults.AttachNIC(nic)
	nic.Start(0)
	return nic.BytesPerSec, func() float64 { return 0 }, nic.ResetStats
}

// RDMAQuadrantPoint extends a quadrant point with RoCE/PFC observables.
type RDMAQuadrantPoint struct {
	QuadrantPoint
	PauseFrac float64 // fraction of time PFC pause asserted (colocated)
	// IIOOccSamples are per-microsecond IIO write-buffer occupancy samples
	// from the colocated run (Fig 23).
	IIOOccSamples []int
}

// RunRDMAQuadrant mirrors RunQuadrant with NIC-generated P2M traffic
// (Fig 18, with the probes of Figs 20-22/24 in the Measure snapshots). The
// NIC-only baseline and the per-count points run on the options' pool.
func RunRDMAQuadrant(q Quadrant, coreCounts []int, opt Options) []RDMAQuadrantPoint {
	// NIC-only baseline.
	var p2mIso Measure
	pts := make([]RDMAQuadrantPoint, len(coreCounts))
	tasks := make([]func(), 0, len(coreCounts)+1)
	tasks = append(tasks, func() {
		p2m := opt.newHost()
		nicBW, _, nicReset := addRDMADevice(p2m, q)
		p2m.Eng.RunUntil(opt.Warmup)
		p2m.ResetStats()
		nicReset()
		p2m.Eng.RunUntil(opt.Warmup + opt.Window)
		p2mIso = snapshot(p2m)
		p2mIso.P2MBW = nicBW()
	})
	for idx, n := range coreCounts {
		tasks = append(tasks, func() {
			var p RDMAQuadrantPoint
			p.Quadrant, p.Cores = q, n

			iso := opt.newHost()
			addC2MCores(iso, q, n)
			iso.Run(opt.Warmup, opt.Window)
			p.C2MIso = snapshot(iso)

			co := opt.newHost()
			addC2MCores(co, q, n)
			coBW, coPause, coReset := addRDMADevice(co, q)
			co.Eng.RunUntil(opt.Warmup)
			co.ResetStats()
			coReset()
			// Microsecond-scale IIO occupancy sampling (Fig 23).
			stop := co.Eng.Now() + opt.Window
			var sample func()
			sample = func() {
				p.IIOOccSamples = append(p.IIOOccSamples, co.IIO.Stats().WriteOcc.Level())
				if co.Eng.Now()+sim.Microsecond <= stop {
					co.Eng.After(sim.Microsecond, sample)
				}
			}
			co.Eng.After(sim.Microsecond, sample)
			co.Eng.RunUntil(stop)
			p.Co = snapshot(co)
			p.Co.P2MBW = coBW()
			p.PauseFrac = coPause()
			pts[idx] = p
		})
	}
	pdo(opt, tasks...)
	for i := range pts {
		pts[i].P2MIso = p2mIso
	}
	return pts
}

// RunFig18 runs all four RDMA quadrants in parallel.
func RunFig18(opt Options) map[Quadrant][]RDMAQuadrantPoint {
	quads := []Quadrant{Q1, Q2, Q3, Q4}
	series := pmap(opt, len(quads), func(i int) []RDMAQuadrantPoint {
		return RunRDMAQuadrant(quads[i], DefaultCoreSweep(), opt)
	})
	out := make(map[Quadrant][]RDMAQuadrantPoint, len(quads))
	for i, q := range quads {
		out[q] = series[i]
	}
	return out
}

// DCTCPPoint is one data point of the TCP case study (Fig 19/25/26).
type DCTCPPoint struct {
	C2MCores  int
	ReadWrite bool // memory app kind: C2M-Read vs C2M-ReadWrite

	// Memory app (iso/colocated aggregate bandwidth).
	MemAppIso, MemAppCo float64
	// Network app goodput (iso/colocated).
	NetIso, NetCo float64
	// P2M (NIC DMA) bandwidth colocated.
	P2MCo float64
	// LossRate is dropped/sent packets colocated.
	LossRate float64
	Co       Measure
	// MemIso is the memory app's isolated snapshot (formula constants).
	MemIso Measure
	// CopierLFBOcc and CopierC2MBW are the network app cores' average LFB
	// occupancy and aggregate C2M bandwidth in the colocated run (Appendix
	// E.2's inputs).
	CopierLFBOcc float64
	CopierC2MBW  float64
	// NetIsoP2MLat is the isolated run's P2M-Write domain latency (ns).
	NetIsoP2MLat float64
}

// MemAppDegradation reports the memory app's slowdown.
func (p DCTCPPoint) MemAppDegradation() float64 { return degradation(p.MemAppIso, p.MemAppCo) }

// NetAppDegradation reports the network app's slowdown.
func (p DCTCPPoint) NetAppDegradation() float64 { return degradation(p.NetIso, p.NetCo) }

// dctcpHost builds a receiver host: 4 copier cores + n memory-app cores.
func dctcpHost(opt Options, memCores int, readWrite bool) (*host.Host, *netsim.DCTCPReceiver) {
	h := opt.newHost()
	cfg := netsim.DefaultDCTCPConfig(h.Region(1 << 30))
	cfg.Audit = h.Auditor
	rx := netsim.NewDCTCPReceiver(h.Eng, cfg, h.IIO)
	for i := 0; i < cfg.Flows; i++ {
		c := h.AddCore(rx.Copier(i))
		rx.AttachCopier(i, c)
	}
	for i := 0; i < memCores; i++ {
		base := h.Region(1 << 30)
		if readWrite {
			h.AddCore(workload.NewSeqReadWrite(base, 1<<30))
		} else {
			h.AddCore(workload.NewSeqRead(base, 1<<30))
		}
	}
	rx.Start(0)
	return h, rx
}

// memAppBW sums bandwidth over the memory-app cores (indices >= flows).
func memAppBW(h *host.Host, flows int) float64 {
	var bw float64
	for i, c := range h.Cores {
		if i >= flows {
			bw += c.Stats().ReadBytesPerSec() + c.Stats().WriteBytesPerSec()
		}
	}
	return bw
}

// RunDCTCP sweeps memory-app core counts against the 4-flow DCTCP receiver
// (Fig 19; probes for Figs 25/26 ride along in Co).
func RunDCTCP(readWrite bool, coreCounts []int, opt Options) []DCTCPPoint {
	// Network-only baseline.
	var netIso, netIsoP2MLat float64
	pts := make([]DCTCPPoint, len(coreCounts))
	tasks := make([]func(), 0, len(coreCounts)+1)
	tasks = append(tasks, func() {
		nIso, rxIso := dctcpHost(opt, 0, readWrite)
		nIso.Eng.RunUntil(opt.Warmup * 4) // DCTCP needs RTTs to converge
		nIso.ResetStats()
		rxIso.ResetStats()
		nIso.Eng.RunUntil(nIso.Eng.Now() + opt.Window)
		netIso = rxIso.GoodputBytesPerSec()
		netIsoP2MLat = snapshot(nIso).P2MWriteLat
	})
	for idx, n := range coreCounts {
		tasks = append(tasks, func() {
			p := DCTCPPoint{C2MCores: n, ReadWrite: readWrite}

			iso := opt.newHost()
			for i := 0; i < n; i++ {
				base := iso.Region(1 << 30)
				if readWrite {
					iso.AddCore(workload.NewSeqReadWrite(base, 1<<30))
				} else {
					iso.AddCore(workload.NewSeqRead(base, 1<<30))
				}
			}
			iso.Run(opt.Warmup, opt.Window)
			p.MemAppIso = iso.C2MBW()
			p.MemIso = snapshot(iso)

			co, rx := dctcpHost(opt, n, readWrite)
			co.Eng.RunUntil(opt.Warmup * 4)
			co.ResetStats()
			rx.ResetStats()
			co.Eng.RunUntil(co.Eng.Now() + opt.Window)
			flows := netsim.DefaultDCTCPConfig(0).Flows
			p.MemAppCo = memAppBW(co, flows)
			for i := 0; i < flows && i < len(co.Cores); i++ {
				st := co.Cores[i].Stats()
				p.CopierLFBOcc += st.LFBOcc.Avg()
				p.CopierC2MBW += st.ReadBytesPerSec() + st.WriteBytesPerSec()
			}
			p.NetCo = rx.GoodputBytesPerSec()
			p.P2MCo = rx.P2MBytesPerSec()
			p.LossRate = rx.LossRate()
			p.Co = snapshot(co)
			p.Co.P2MBW = p.P2MCo
			pts[idx] = p
		})
	}
	pdo(opt, tasks...)
	for i := range pts {
		pts[i].NetIso = netIso
		pts[i].NetIsoP2MLat = netIsoP2MLat
	}
	return pts
}

// RunFig19 runs both TCP case studies in parallel: C2M-Read + TCP Rx and
// C2M-ReadWrite + TCP Rx, sweeping 1-4 memory-app cores (4 cores are
// dedicated to iperf).
func RunFig19(opt Options) (read, readWrite []DCTCPPoint) {
	cores := []int{1, 2, 3, 4}
	pdo(opt,
		func() { read = RunDCTCP(false, cores, opt) },
		func() { readWrite = RunDCTCP(true, cores, opt) },
	)
	return read, readWrite
}
