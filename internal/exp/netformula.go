package exp

import (
	"repro/internal/analytic"
	"repro/internal/mem"
)

// RunFig27 applies the §6 formula to the RDMA case study (Fig 27, with the
// Fig 28 breakdowns inside each point): the same methodology as Fig 11,
// with NIC-generated P2M traffic. The four quadrant sweeps run in parallel.
func RunFig27(opt Options) map[Quadrant][]FormulaPoint {
	quads := []Quadrant{Q1, Q2, Q3, Q4}
	series := pmap(opt, len(quads), func(i int) []FormulaPoint {
		pts := RunRDMAQuadrant(quads[i], DefaultCoreSweep(), opt)
		fps := make([]FormulaPoint, 0, len(pts))
		for _, p := range pts {
			fps = append(fps, ValidateFormula(p.QuadrantPoint, opt))
		}
		return fps
	})
	out := make(map[Quadrant][]FormulaPoint, len(quads))
	for i, q := range quads {
		out[q] = series[i]
	}
	return out
}

// DCTCPFormulaPoint is one Fig 29/30 entry: formula-vs-measured throughput
// for the memory app and for the network app's C2M (copy) and P2M (DMA)
// halves, following Appendix E.2's methodology.
type DCTCPFormulaPoint struct {
	C2MCores  int
	ReadWrite bool

	MemMeasured, MemEstimated       float64
	MemErrPct                       float64
	NetC2MMeasured, NetC2MEstimated float64
	NetC2MErrPct                    float64
	NetP2MMeasured, NetP2MEstimated float64
	NetP2MErrPct                    float64
	Breakdown                       analytic.Components
}

// ValidateDCTCPFormula estimates throughputs from the formula and the
// measured occupancies, per Appendix E.2: the network app's C2M throughput
// is its measured LFB occupancy divided by the formula's C2M latency, and
// its P2M throughput is the measured IIO occupancy divided by the formula's
// P2M-Write latency.
func ValidateDCTCPFormula(p DCTCPPoint, opt Options) DCTCPFormulaPoint {
	f := DCTCPFormulaPoint{C2MCores: p.C2MCores, ReadWrite: p.ReadWrite}
	credits := lfbCredits(opt)
	coQD := p.Co.Inputs.ReadQueueingDelay()
	isoQD := p.MemIso.Inputs.ReadQueueingDelay()
	f.Breakdown = coQD
	corr := p.Co.CHAAdmitLat + p.Co.RPQBlockLat

	// Memory app: identical to the quadrant methodology.
	constRead := p.MemIso.C2MReadLat - isoQD.Total()
	lr := constRead + coQD.Total() + corr
	f.MemMeasured = p.MemAppCo
	if p.ReadWrite {
		lw := p.MemIso.C2MWriteLat + p.Co.CHAAdmitLat
		f.MemEstimated = float64(p.C2MCores) * analytic.PairThroughput(credits, lr, lw)
	} else {
		f.MemEstimated = float64(p.C2MCores) * analytic.Throughput(credits, lr)
	}
	f.MemErrPct = analytic.ErrorPct(f.MemEstimated, f.MemMeasured)

	// Network app C2M half: measured copier LFB occupancy over the formula's
	// C2M read latency. The occupancy is read-dominated (writebacks hold
	// entries only ~10 ns), while the copy moves two lines per read (socket
	// read + app-buffer writeback), hence the factor of two.
	f.NetC2MMeasured = p.CopierC2MBW
	if lr > 0 {
		f.NetC2MEstimated = 2 * p.CopierLFBOcc * mem.LineSize / (lr * 1e-9)
	}
	f.NetC2MErrPct = analytic.ErrorPct(f.NetC2MEstimated, f.NetC2MMeasured)

	// Network app P2M half: measured IIO occupancy over the formula's
	// P2M-Write latency.
	ad := p.Co.Inputs.WriteAdmissionDelay()
	lwP2M := p.NetIsoP2MLat + ad.Total() + p.Co.CHAAdmitLat
	f.NetP2MMeasured = p.P2MCo
	if lwP2M > 0 {
		f.NetP2MEstimated = p.Co.IIOWriteOcc * mem.LineSize / (lwP2M * 1e-9)
	}
	f.NetP2MErrPct = analytic.ErrorPct(f.NetP2MEstimated, f.NetP2MMeasured)
	return f
}

// RunFig29 validates the formula on both TCP case studies (Fig 29; the
// Fig 30 breakdowns ride along).
func RunFig29(opt Options) (read, readWrite []DCTCPFormulaPoint) {
	rd, rw := RunFig19(opt)
	for _, p := range rd {
		read = append(read, ValidateDCTCPFormula(p, opt))
	}
	for _, p := range rw {
		readWrite = append(readWrite, ValidateDCTCPFormula(p, opt))
	}
	return read, readWrite
}
