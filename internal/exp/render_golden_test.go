package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analytic"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// The golden tests pin the renderers' exact byte output — row order,
// alignment, formatting — over fixed synthetic fixtures, so a change to the
// sweep machinery (e.g. the parallel runner) cannot silently reorder or
// reformat experiment output. Regenerate deliberately with:
//
//	go test ./internal/exp -run Golden -update

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// fixedMeasure builds a Measure with deterministic synthetic values spread
// over the fields the renderers read.
func fixedMeasure(scale float64) Measure {
	return Measure{
		C2MBW: 10e9 * scale, P2MBW: 14e9,
		MemC2M: 10.5e9 * scale, MemP2M: 14.2e9,
		C2MLat: 90 * scale, C2MReadLat: 88 * scale, C2MWriteLat: 12,
		P2MWriteLat: 310, P2MReadLat: 240,
		CHAAdmitLat: 4.5 * scale, RPQBlockLat: 2.25,
		RPQOcc: 11.5, WPQOcc: 20.25, WPQFullFrac: 0.55,
		IIOWriteOcc: 45.5, IIOReadOcc: 1.25, WBacklog: 7.5,
		RowMissC2MRead: 0.125, RowMissC2MWrite: 0.25,
		BankDevFracGE15: 0.375,
	}
}

func fixedQuadrantPoints(q Quadrant) []QuadrantPoint {
	var pts []QuadrantPoint
	for i, cores := range []int{1, 2, 4} {
		s := 1 + 0.25*float64(i)
		p := QuadrantPoint{Quadrant: q, Cores: cores}
		p.C2MIso = fixedMeasure(s)
		p.C2MIso.C2MBW = 12e9 * s
		p.P2MIso = fixedMeasure(1)
		p.Co = fixedMeasure(s)
		if q == Q3 && cores == 4 {
			p.Co.P2MBW = 9e9 // a red-regime row
		}
		pts = append(pts, p)
	}
	return pts
}

func TestGoldenRenderQuadrants(t *testing.T) {
	res := map[Quadrant][]QuadrantPoint{}
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		res[q] = fixedQuadrantPoints(q)
	}
	var buf bytes.Buffer
	RenderQuadrants(&buf, res)
	checkGolden(t, "render_quadrants.golden", buf.Bytes())
}

func TestGoldenRenderQuadrantProbes(t *testing.T) {
	var buf bytes.Buffer
	RenderQuadrantProbes(&buf, "Fig 7: quadrant 1 root causes", fixedQuadrantPoints(Q1))
	checkGolden(t, "render_quadrant_probes.golden", buf.Bytes())
}

func TestGoldenRenderApps(t *testing.T) {
	mk := func(n int, degr float64) []AppPoint {
		var pts []AppPoint
		for i := 0; i < n; i++ {
			p := AppPoint{App: RedisRead, Cores: 1 + i, DDIO: i%2 == 0,
				AppIso: 1e6 * degr, AppCo: 1e6, P2MIso: 14e9, P2MCo: 14e9}
			p.Co = fixedMeasure(1 + float64(i)/4)
			pts = append(pts, p)
		}
		return pts
	}
	// Intentionally unsorted insertion order: rendering must sort by name.
	series := map[string][]AppPoint{
		"Redis(on)":  mk(2, 1.3),
		"GAPBS(off)": mk(2, 1.8),
		"Redis(off)": mk(2, 1.2),
		"GAPBS(on)":  mk(2, 1.9),
	}
	var buf bytes.Buffer
	RenderApps(&buf, "Fig 2: DDIO on/off on Cascade Lake", series)
	checkGolden(t, "render_apps.golden", buf.Bytes())
}

func TestGoldenRenderFormula(t *testing.T) {
	res := map[Quadrant][]FormulaPoint{}
	for qi, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		for i, cores := range []int{1, 4} {
			f := FormulaPoint{
				Quadrant: q, Cores: cores,
				C2MErrorPct: 2.5 * float64(qi+i), C2MErrorCHAPct: -1.25 * float64(qi),
				P2MErrorPct: 0.5 * float64(i),
				C2MBreakdown: analytic.Components{
					Switching: 1.5, WriteHoL: 20.25 * float64(qi+1), ReadHoL: 5.125, TopOfQueue: 8,
				},
			}
			res[q] = append(res[q], f)
		}
	}
	var buf bytes.Buffer
	RenderFormula(&buf, res)
	checkGolden(t, "render_formula.golden", buf.Bytes())
}

func TestGoldenRenderRDMA(t *testing.T) {
	res := map[Quadrant][]RDMAQuadrantPoint{}
	for _, q := range []Quadrant{Q1, Q3} {
		for i, cores := range []int{1, 4} {
			var p RDMAQuadrantPoint
			p.QuadrantPoint = fixedQuadrantPoints(q)[0]
			p.Cores = cores
			p.PauseFrac = 0.25 * float64(i)
			res[q] = append(res[q], p)
		}
	}
	var buf bytes.Buffer
	RenderRDMA(&buf, res)
	checkGolden(t, "render_rdma.golden", buf.Bytes())
}

func TestGoldenRenderDCTCP(t *testing.T) {
	mk := func(rw bool) []DCTCPPoint {
		var pts []DCTCPPoint
		for i, cores := range []int{1, 2} {
			p := DCTCPPoint{
				C2MCores: cores, ReadWrite: rw,
				MemAppIso: 20e9, MemAppCo: 15e9 - float64(i)*1e9,
				NetIso: 4.7e9, NetCo: 4.7e9 - float64(i)*0.5e9,
				P2MCo: 5e9, LossRate: 0.0025 * float64(i),
			}
			p.Co = fixedMeasure(1)
			pts = append(pts, p)
		}
		return pts
	}
	var buf bytes.Buffer
	RenderDCTCP(&buf, mk(false), mk(true))
	checkGolden(t, "render_dctcp.golden", buf.Bytes())
}

func TestGoldenRenderDomainEvidence(t *testing.T) {
	ev := DomainEvidence{
		LFBCredits: 12, IIOWriteCredits: 92, IIOReadCredits: 164,
		UnloadedC2MRead: 71, UnloadedC2MWrite: 10, UnloadedP2MWrite: 300,
	}
	for i, cores := range []int{1, 4, 6} {
		s := float64(i + 1)
		ev.Points = append(ev.Points, DomainEvidencePoint{
			Cores: cores, ReadLFBLat: 70 * s, ReadCHADram: 60 * s,
			RWLFBLat: 80 * s, RWCHAMCWr: 30 * s, RWWriteLat: 11 * s,
			ProbeIIOLat: 300 + 5*s, ProbeCHAMCWr: 35 * s,
		})
	}
	var buf bytes.Buffer
	RenderDomainEvidence(&buf, ev)
	checkGolden(t, "render_domains.golden", buf.Bytes())
}

func TestGoldenRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	checkGolden(t, "render_table1.golden", buf.Bytes())
}

func TestGoldenQuadrantCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := QuadrantCSV(fixedQuadrantPoints(Q3)).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quadrant_csv.golden", buf.Bytes())
}

func TestGoldenTableCSVEscaping(t *testing.T) {
	tab := &Table{
		Title:  "escaping",
		Header: []string{"name", "note"},
	}
	tab.Add("a,b", "quote \" and\nnewline")
	tab.Add(1.5, "plain")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table_csv_escaping.golden", buf.Bytes())
}
