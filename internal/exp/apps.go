package exp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/host"
	"repro/internal/periph"
)

// App identifies one of the paper's C2M applications.
type App int

// The C2M applications of §2.1 and Appendix B.
const (
	RedisRead  App = iota // YCSB-C, 100% GET
	RedisWrite            // 100% SET (Appendix B)
	GAPBSPR               // PageRank on a random graph
	GAPBSBC               // Betweenness Centrality (write-heavy variant)
)

// String names the app like the paper.
func (a App) String() string {
	switch a {
	case RedisRead:
		return "Redis-Read"
	case RedisWrite:
		return "Redis-Write"
	case GAPBSPR:
		return "GAPBS-PR"
	default:
		return "GAPBS-BC"
	}
}

// appHost builds a host running `cores` instances of the app and returns a
// metric function (QPS for Redis, aggregate line rate for GAPBS — the
// inverse of execution time for fixed work).
func appHost(a App, cores int, opt Options) (*host.Host, func() float64) {
	h := opt.newHost()
	switch a {
	case RedisRead, RedisWrite:
		var instances []*apps.Redis
		for i := 0; i < cores; i++ {
			cfg := apps.DefaultRedisConfig()
			cfg.WriteQueries = a == RedisWrite
			cfg.Seed = uint64(100 + i)
			r := apps.NewRedis(h.Eng, cfg, h.Region(cfg.BufBytes))
			instances = append(instances, r)
			h.AddCore(r)
		}
		return h, func() float64 {
			var qps float64
			for _, r := range instances {
				qps += r.Queries().RatePerSecond()
			}
			return qps
		}
	case GAPBSPR:
		// A single graph instance shared across cores.
		base := h.Region(5 << 30)
		for i := 0; i < cores; i++ {
			h.AddCore(apps.NewGAPBSPageRank(base, uint64(200+i)))
		}
	default:
		base := h.Region(5 << 30)
		for i := 0; i < cores; i++ {
			h.AddCore(apps.NewGAPBSBC(base, uint64(300+i)))
		}
	}
	return h, h.C2MBW
}

// AppPoint is one (app, cores, DDIO) colocation data point.
type AppPoint struct {
	App   App
	Cores int
	DDIO  bool

	AppIso, AppCo float64 // app metric (QPS or aggregate line rate)
	P2MIso, P2MCo float64 // device throughput
	Iso, Co       Measure
}

// AppDegradation reports isolated/colocated app performance; for GAPBS this
// equals the paper's slowdown (colocated/isolated execution time).
func (p AppPoint) AppDegradation() float64 { return degradation(p.AppIso, p.AppCo) }

// P2MDegradation reports isolated/colocated device throughput.
func (p AppPoint) P2MDegradation() float64 { return degradation(p.P2MIso, p.P2MCo) }

// String renders one row.
func (p AppPoint) String() string {
	return fmt.Sprintf("%s cores=%d ddio=%v: app %.2fx, p2m %.2fx", p.App, p.Cores, p.DDIO,
		p.AppDegradation(), p.P2MDegradation())
}

// RunAppColocation sweeps core counts for one app against one FIO direction;
// the device baseline and the per-count points run on the options' pool.
func RunAppColocation(a App, dir periph.Direction, coreCounts []int, opt Options) []AppPoint {
	// Device baseline, independent of the app core count.
	var p2mIso float64
	pts := make([]AppPoint, len(coreCounts))
	tasks := make([]func(), 0, len(coreCounts)+1)
	tasks = append(tasks, func() {
		devIso := opt.newHost()
		devIso.AddStorage(periph.BulkConfig(dir, devIso.Region(1<<30)))
		devIso.Run(opt.Warmup, opt.Window)
		p2mIso = devIso.P2MBW()
	})
	for idx, n := range coreCounts {
		tasks = append(tasks, func() {
			p := AppPoint{App: a, Cores: n, DDIO: opt.DDIO}
			iso, metric := appHost(a, n, opt)
			iso.Run(opt.Warmup, opt.Window)
			p.AppIso = metric()
			p.Iso = snapshot(iso)

			co, coMetric := appHost(a, n, opt)
			co.AddStorage(periph.BulkConfig(dir, co.Region(1<<30)))
			co.Run(opt.Warmup, opt.Window)
			p.AppCo = coMetric()
			p.P2MCo = co.P2MBW()
			p.Co = snapshot(co)
			pts[idx] = p
		})
	}
	pdo(opt, tasks...)
	for i := range pts {
		pts[i].P2MIso = p2mIso
	}
	return pts
}

// Fig1Result holds the Ice Lake colocation study (Fig 1 a-d).
type Fig1Result struct {
	Redis []AppPoint
	GAPBS []AppPoint
}

// RunFig1 reproduces Fig 1: Redis and GAPBS-PR colocated with bulk FIO reads
// (P2M writes) on the Ice Lake preset, DDIO on, 4 cores dedicated to FIO.
// The preset and DDIO setting are fixed by the figure; window, warmup,
// parallelism, audit, and cancellation come from opt.
func RunFig1(opt Options) Fig1Result {
	opt.Preset = host.IceLake
	opt.DDIO = true
	cores := []int{2, 4, 8, 16, 24, 28}
	var res Fig1Result
	pdo(opt,
		func() { res.Redis = RunAppColocation(RedisRead, periph.DMAWrite, cores, opt) },
		func() { res.GAPBS = RunAppColocation(GAPBSPR, periph.DMAWrite, cores, opt) },
	)
	return res
}

// Fig2Result pairs DDIO-on and DDIO-off sweeps (Fig 2 a-d, Cascade Lake).
type Fig2Result struct {
	RedisOn, RedisOff []AppPoint
	GAPBSOn, GAPBSOff []AppPoint
}

// RunFig2 reproduces Fig 2: the DDIO on/off comparison on Cascade Lake with
// the P2M-Write FIO workload (2 cores dedicated to FIO). The preset and the
// DDIO pairing are fixed by the figure; everything else comes from opt.
func RunFig2(opt Options) Fig2Result {
	on := opt
	on.Preset = host.CascadeLake
	on.DDIO = true
	off := on
	off.DDIO = false
	cores := []int{1, 2, 3, 4, 5, 6}
	var res Fig2Result
	pdo(on,
		func() { res.RedisOn = RunAppColocation(RedisRead, periph.DMAWrite, cores, on) },
		func() { res.RedisOff = RunAppColocation(RedisRead, periph.DMAWrite, cores, off) },
		func() { res.GAPBSOn = RunAppColocation(GAPBSPR, periph.DMAWrite, cores, on) },
		func() { res.GAPBSOff = RunAppColocation(GAPBSPR, periph.DMAWrite, cores, off) },
	)
	return res
}

// AppGridResult is one Appendix B figure: two apps x DDIO on/off against a
// fixed P2M direction.
type AppGridResult struct {
	Fig               string
	RedisOn, RedisOff []AppPoint
	GAPBSOn, GAPBSOff []AppPoint
}

func runAppGrid(fig string, redis, gapbs App, dir periph.Direction, opt Options) AppGridResult {
	on := opt
	on.Preset = host.CascadeLake
	on.DDIO = true
	off := on
	off.DDIO = false
	cores := []int{1, 2, 4, 6}
	res := AppGridResult{Fig: fig}
	pdo(on,
		func() { res.RedisOn = RunAppColocation(redis, dir, cores, on) },
		func() { res.RedisOff = RunAppColocation(redis, dir, cores, off) },
		func() { res.GAPBSOn = RunAppColocation(gapbs, dir, cores, on) },
		func() { res.GAPBSOff = RunAppColocation(gapbs, dir, cores, off) },
	)
	return res
}

// RunFig15 reproduces Appendix B Fig 15: Redis-Write and GAPBS-BC colocated
// with P2M-Write.
func RunFig15(opt Options) AppGridResult {
	return runAppGrid("fig15", RedisWrite, GAPBSBC, periph.DMAWrite, opt)
}

// RunFig16 reproduces Appendix B Fig 16: Redis-Read and GAPBS-PR colocated
// with P2M-Read.
func RunFig16(opt Options) AppGridResult {
	return runAppGrid("fig16", RedisRead, GAPBSPR, periph.DMARead, opt)
}

// RunFig17 reproduces Appendix B Fig 17: Redis-Write and GAPBS-BC colocated
// with P2M-Read.
func RunFig17(opt Options) AppGridResult {
	return runAppGrid("fig17", RedisWrite, GAPBSBC, periph.DMARead, opt)
}
