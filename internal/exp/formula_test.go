package exp

import (
	"math"
	"testing"
)

// Fig 11: the formula captures C2M throughput within ~10-15% for the blue
// quadrants. (The paper reports <10% on hardware; we allow modest slack for
// the simulated substrate.)
func TestFormulaAccuracyBlueQuadrants(t *testing.T) {
	opt := figOptions(t)
	for _, q := range []Quadrant{Q1, Q2, Q4} {
		pts := RunQuadrant(q, []int{1, 2, 4, 6}, opt)
		for _, p := range pts {
			f := ValidateFormula(p, opt)
			t.Logf("%v cores=%d: C2M est=%.1f meas=%.1f err=%.1f%% | breakdown sw=%.1f wHoL=%.1f rHoL=%.1f top=%.1f",
				q, p.Cores, f.C2MEstimated/1e9, f.C2MMeasured/1e9, f.C2MErrorPct,
				f.C2MBreakdown.Switching, f.C2MBreakdown.WriteHoL, f.C2MBreakdown.ReadHoL, f.C2MBreakdown.TopOfQueue)
			err := math.Abs(f.C2MErrorPct)
			if c := math.Abs(f.C2MErrorCHAPct); c < err {
				err = c
			}
			if err > 16 {
				t.Errorf("%v cores=%d: C2M formula error %.1f%% (corrected %.1f%%), want within 16%%",
					q, p.Cores, f.C2MErrorPct, f.C2MErrorCHAPct)
			}
		}
	}
}

// Fig 11 (bottom): quadrant 3 error is within bounds at low load; at high
// load the CHA admission correction must tighten the estimate.
func TestFormulaQuadrant3WithCHACorrection(t *testing.T) {
	opt := figOptions(t)
	pts := RunQuadrant(Q3, DefaultCoreSweep(), opt)
	for _, p := range pts {
		f := ValidateFormula(p, opt)
		t.Logf("Q3 cores=%d: C2M err=%.1f%% errCHA=%.1f%% | P2M est=%.1f meas=%.1f err=%.1f%% errCHA=%.1f%%",
			p.Cores, f.C2MErrorPct, f.C2MErrorCHAPct,
			f.P2MEstimated/1e9, f.P2MMeasured/1e9, f.P2MErrorPct, f.P2MErrorCHAPct)
		if p.Cores <= 3 {
			if math.Abs(f.C2MErrorPct) > 20 {
				t.Errorf("Q3 cores=%d: C2M error %.1f%% too large at low load", p.Cores, f.C2MErrorPct)
			}
		} else {
			// High load: corrected estimate must not be worse than the raw
			// one, and must land within ~25%.
			if math.Abs(f.C2MErrorCHAPct) > math.Abs(f.C2MErrorPct)+1 {
				t.Errorf("Q3 cores=%d: CHA correction worsened C2M error (%.1f%% -> %.1f%%)",
					p.Cores, f.C2MErrorPct, f.C2MErrorCHAPct)
			}
			if math.Abs(f.C2MErrorCHAPct) > 25 {
				t.Errorf("Q3 cores=%d: corrected C2M error %.1f%%", p.Cores, f.C2MErrorCHAPct)
			}
		}
		// The published formula overestimates admission delay on this
		// substrate (see EXPERIMENTS.md); the shape still holds.
		if math.Abs(f.P2MErrorPct) > 30 {
			t.Errorf("Q3 cores=%d: P2M error %.1f%%", p.Cores, f.P2MErrorPct)
		}
	}
}

// Fig 12: component shapes. In quadrant 1 WriteHoL dominates at 1 core; in
// quadrant 2 there is no WriteHoL (no writes at all).
func TestFormulaBreakdownShapes(t *testing.T) {
	opt := figOptions(t)
	p1 := RunQuadrantPoint(Q1, 1, opt)
	f1 := ValidateFormula(p1, opt)
	b := f1.C2MBreakdown
	if b.WriteHoL < b.ReadHoL || b.WriteHoL < b.Switching {
		t.Errorf("Q1 1-core: WriteHoL (%.1f) should dominate (read %.1f, sw %.1f)",
			b.WriteHoL, b.ReadHoL, b.Switching)
	}
	p2 := RunQuadrantPoint(Q2, 4, opt)
	f2 := ValidateFormula(p2, opt)
	if f2.C2MBreakdown.WriteHoL != 0 {
		t.Errorf("Q2 has no writes; WriteHoL = %.1f", f2.C2MBreakdown.WriteHoL)
	}
	if f2.C2MBreakdown.ReadHoL <= 0 {
		t.Errorf("Q2 should have a ReadHoL component")
	}
}
