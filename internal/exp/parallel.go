package exp

import (
	"context"

	"repro/internal/runner"
)

// Every multi-point sweep in this package fans its points out on a
// runner pool sized by Options.Parallelism. A point never shares mutable
// state with another point — each builds its own host.Host and sim.Engine —
// so the parallel schedule cannot change results; the determinism tests
// compare serial and parallel runs bit-for-bit.

// pmap evaluates fn(i) for every i in [0, n) on the options' worker pool
// and returns the results in index order. A panic inside a point resurfaces
// on the caller's goroutine as a *runner.PanicError naming the point.
func pmap[T any](opt Options, n int, fn func(int) T) []T {
	out, err := runner.Map(context.Background(), opt.Parallelism, n, fn)
	if err != nil {
		panic(err)
	}
	return out
}

// pdo runs a fixed set of heterogeneous tasks (e.g. a baseline run plus the
// sweep points) on the options' worker pool, with the same panic semantics
// as pmap.
func pdo(opt Options, tasks ...func()) {
	if err := runner.Do(context.Background(), opt.Parallelism, tasks...); err != nil {
		panic(err)
	}
}
