package exp

import (
	"context"

	"repro/internal/runner"
)

// Every multi-point sweep in this package fans its points out on a
// runner pool sized by Options.Parallelism. A point never shares mutable
// state with another point — each builds its own host.Host and sim.Engine —
// so the parallel schedule cannot change results; the determinism tests
// compare serial and parallel runs bit-for-bit.
//
// Options.BaseCtx bounds the sweeps (no new point starts once it is done)
// and Options.Progress observes them (one call per completed task); neither
// can perturb results.

// sweepCtx returns the context bounding a sweep: Options.BaseCtx, or
// context.Background() when unset.
func (o Options) sweepCtx() context.Context {
	if o.BaseCtx != nil {
		return o.BaseCtx
	}
	return context.Background()
}

// noteProgress reports one completed sweep task to the observer, if any.
func (o Options) noteProgress() {
	if o.Progress != nil {
		o.Progress()
	}
}

// pmap evaluates fn(i) for every i in [0, n) on the options' worker pool
// and returns the results in index order. A panic inside a point resurfaces
// on the caller's goroutine as a *runner.PanicError naming the point; a
// cancelled BaseCtx resurfaces as a panic carrying ctx.Err() (hostnetd
// recovers it into a job state).
func pmap[T any](opt Options, n int, fn func(int) T) []T {
	out, err := runner.Map(opt.sweepCtx(), opt.Parallelism, n, func(i int) T {
		v := fn(i)
		opt.noteProgress()
		return v
	})
	if err != nil {
		panic(err)
	}
	return out
}

// pdo runs a fixed set of heterogeneous tasks (e.g. a baseline run plus the
// sweep points) on the options' worker pool, with the same panic semantics
// as pmap.
func pdo(opt Options, tasks ...func()) {
	if err := runner.ForEach(opt.sweepCtx(), opt.Parallelism, len(tasks), func(i int) {
		tasks[i]()
		opt.noteProgress()
	}); err != nil {
		panic(err)
	}
}
