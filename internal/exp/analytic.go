package exp

// The analytic fidelity tier: answering a Spec from the §7 predictive
// model (internal/analytic) instead of the discrete-event simulator. A
// quadrant point maps onto an analytic.Workload — N sequential C2M cores,
// optionally storing (Q3/Q4), colocated with a device stream offered at
// the link rate in the quadrant's DMA direction — on the calibrated
// Cascade Lake HWConfig. The model covers exactly the point sweeps the
// paper characterizes: everything else (fixed figures, fabric topologies,
// fault schedules, trace-driven apps, uncalibrated testbeds) is rejected
// with a typed *analytic.UnsupportedError that hostnetd maps to HTTP 422,
// telling clients to fall back to the sim tier.

import (
	"encoding/json"
	"fmt"

	"repro/internal/analytic"
)

// AnalyticPoint is one (quadrant, cores) answer from the predictive model:
// the analytic tier's counterpart of QuadrantPoint.
type AnalyticPoint struct {
	Quadrant Quadrant
	Cores    int

	Iso analytic.Prediction // N C2M cores alone
	Co  analytic.Prediction // colocated with the quadrant's device stream
}

// C2MDegradation reports predicted isolated/colocated C2M throughput,
// mirroring QuadrantPoint.C2MDegradation.
func (p AnalyticPoint) C2MDegradation() float64 {
	return degradation(p.Iso.C2MBytesPerSec, p.Co.C2MBytesPerSec)
}

// analyticExperiments are the experiments the predictive model can answer:
// the parameterized point sweeps. hostcc is answered as its unmitigated
// colocation point (the mitigation study itself needs the simulator).
var analyticExperiments = map[string]bool{"quadrant": true, "rdma": true, "hostcc": true}

// unsupported wraps an UnsupportedError reason into the error RunSpec
// returns for specs outside the model's domain.
func unsupported(format string, args ...any) error {
	return fmt.Errorf("analytic fidelity: %w", &analytic.UnsupportedError{Reason: fmt.Sprintf(format, args...)})
}

// runSpecAnalytic answers a normalized, validated analytic-fidelity spec.
// The result is []AnalyticPoint in sweep order for every supported
// experiment (hostcc contributes its single point).
func runSpecAnalytic(n Spec) (any, error) {
	if !analyticExperiments[n.Experiment] {
		return nil, unsupported("experiment %q has no predictive-model mapping (supported: hostcc, quadrant, rdma)", n.Experiment)
	}
	if n.Preset != "" && n.Preset != "cascadelake" {
		return nil, unsupported("preset %q has no calibration (only cascadelake)", n.Preset)
	}
	if n.DDIO {
		return nil, unsupported("the model has no DDIO term; submit as sim")
	}
	if len(n.Faults) > 0 {
		return nil, unsupported("fault schedules need the simulator's transient state")
	}
	hw := analytic.CascadeLakeHW()
	cores := n.Cores
	if n.Experiment == "hostcc" {
		cores = cores[:1] // the study takes a single core count
	}
	pts := make([]AnalyticPoint, len(cores))
	for i, c := range cores {
		p, err := analyticQuadrantPoint(hw, Quadrant(n.Quadrant), c)
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// analyticQuadrantPoint answers one quadrant point from the predictive
// model: the isolated baseline (N cores alone) and the colocated
// prediction with the quadrant's device stream offered at the link rate.
func analyticQuadrantPoint(hw analytic.HWConfig, q Quadrant, cores int) (AnalyticPoint, error) {
	iso := analytic.Workload{C2MCores: cores, C2MWrites: q.C2MWrites()}
	co := iso
	if q.P2MWrites() {
		co.P2MWriteBytesPerSec = hw.PCIeBytesPerSec
	} else {
		co.P2MReadBytesPerSec = hw.PCIeBytesPerSec
	}
	isoP, err := analytic.Predict(hw, iso)
	if err != nil {
		return AnalyticPoint{}, fmt.Errorf("analytic iso point %v cores=%d: %w", q, cores, err)
	}
	coP, err := analytic.Predict(hw, co)
	if err != nil {
		return AnalyticPoint{}, fmt.Errorf("analytic co point %v cores=%d: %w", q, cores, err)
	}
	return AnalyticPoint{Quadrant: q, Cores: cores, Iso: isoP, Co: coP}, nil
}

// CrossvalEnvelopePct pins the analytic tier's accepted error envelope on
// the colocated C2M bandwidth: the same ±25% the predictor's accuracy test
// (exp/predict_test.go) holds against the simulator.
const CrossvalEnvelopePct = 25

// CrossvalPoint compares the two fidelity tiers at one (quadrant, cores)
// configuration. Errors use analytic.ErrorPct (signed; estimated vs the
// sim measurement).
type CrossvalPoint struct {
	Quadrant Quadrant
	Cores    int

	SimC2MBytesPerSec  float64
	PredC2MBytesPerSec float64
	BWErrPct           float64

	SimC2MReadLatencyNs  float64
	PredC2MReadLatencyNs float64
	LatErrPct            float64
}

// CrossvalResult is the crossval experiment's payload: the per-point
// analytic-vs-sim comparison across the core sweep of one quadrant.
type CrossvalResult struct {
	Quadrant Quadrant
	Points   []CrossvalPoint
}

// RunCrossval runs the quadrant sweep on both fidelity tiers and reports
// the analytic error per point: the experiment behind hostnetd's
// GET /crossval section and the CI envelope tier.
func RunCrossval(q Quadrant, coreCounts []int, opt Options) (*CrossvalResult, error) {
	hw := analytic.CascadeLakeHW()
	sim := RunQuadrant(q, coreCounts, opt)
	out := &CrossvalResult{Quadrant: q, Points: make([]CrossvalPoint, len(sim))}
	for i, sp := range sim {
		ap, err := analyticQuadrantPoint(hw, q, sp.Cores)
		if err != nil {
			return nil, err
		}
		out.Points[i] = crossvalPoint(sp, ap)
	}
	return out, nil
}

func crossvalPoint(sp QuadrantPoint, ap AnalyticPoint) CrossvalPoint {
	return CrossvalPoint{
		Quadrant:             sp.Quadrant,
		Cores:                sp.Cores,
		SimC2MBytesPerSec:    sp.Co.C2MBW,
		PredC2MBytesPerSec:   ap.Co.C2MBytesPerSec,
		BWErrPct:             analytic.ErrorPct(ap.Co.C2MBytesPerSec, sp.Co.C2MBW),
		SimC2MReadLatencyNs:  sp.Co.C2MReadLat,
		PredC2MReadLatencyNs: ap.Co.C2MReadLatencyNs,
		LatErrPct:            analytic.ErrorPct(ap.Co.C2MReadLatencyNs, sp.Co.C2MReadLat),
	}
}

// DecodeCrossval extracts the CrossvalResult payload from a crossval
// Result envelope.
func DecodeCrossval(env []byte) (*CrossvalResult, error) {
	var e struct {
		Spec   Spec           `json:"spec"`
		Result CrossvalResult `json:"result"`
	}
	if err := json.Unmarshal(env, &e); err != nil {
		return nil, fmt.Errorf("crossval: decoding envelope: %w", err)
	}
	if e.Spec.Experiment != "crossval" {
		return nil, fmt.Errorf("crossval: envelope carries experiment %q", e.Spec.Experiment)
	}
	return &e.Result, nil
}

// CrossvalFromEnvelopes compares an analytic Result envelope with the sim
// twin's envelope (same experiment, fidelity cleared) and returns the
// experiment name and per-point errors — hostnetd's background-refinement
// mode feeds its crossval tracker with these. Only the per-point sweep
// experiments compare structurally (quadrant, rdma); for anything else it
// returns nil points and no error.
func CrossvalFromEnvelopes(analyticEnv, simEnv []byte) (experiment string, pts []CrossvalPoint, err error) {
	var aEnv struct {
		Spec   Spec            `json:"spec"`
		Result []AnalyticPoint `json:"result"`
	}
	if err := json.Unmarshal(analyticEnv, &aEnv); err != nil {
		return "", nil, fmt.Errorf("crossval: decoding analytic envelope: %w", err)
	}
	if aEnv.Spec.Fidelity != FidelityAnalytic {
		return "", nil, fmt.Errorf("crossval: envelope is %q fidelity, want analytic", aEnv.Spec.Fidelity)
	}
	var sEnv resultEnvelope
	if err := json.Unmarshal(simEnv, &sEnv); err != nil {
		return "", nil, fmt.Errorf("crossval: decoding sim envelope: %w", err)
	}
	experiment = sEnv.Spec.Experiment
	var simPts []QuadrantPoint
	switch experiment {
	case "quadrant":
		if err := json.Unmarshal(sEnv.Result, &simPts); err != nil {
			return "", nil, fmt.Errorf("crossval: decoding sim quadrant payload: %w", err)
		}
	case "rdma":
		var rPts []RDMAQuadrantPoint
		if err := json.Unmarshal(sEnv.Result, &rPts); err != nil {
			return "", nil, fmt.Errorf("crossval: decoding sim rdma payload: %w", err)
		}
		for _, rp := range rPts {
			simPts = append(simPts, rp.QuadrantPoint)
		}
	default:
		return experiment, nil, nil // hostcc etc.: no per-point structural comparison
	}
	if len(simPts) != len(aEnv.Result) {
		return "", nil, fmt.Errorf("crossval: %d sim points vs %d analytic points", len(simPts), len(aEnv.Result))
	}
	pts = make([]CrossvalPoint, len(simPts))
	for i, sp := range simPts {
		ap := aEnv.Result[i]
		if sp.Cores != ap.Cores || sp.Quadrant != ap.Quadrant {
			return "", nil, fmt.Errorf("crossval: point %d mismatch: sim (q%d, %d cores) vs analytic (q%d, %d cores)",
				i, sp.Quadrant, sp.Cores, ap.Quadrant, ap.Cores)
		}
		pts[i] = crossvalPoint(sp, ap)
	}
	return experiment, pts, nil
}
