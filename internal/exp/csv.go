package exp

import (
	"encoding/csv"
	"io"
)

// WriteCSV emits a Table as CSV (header row first), so experiment output
// feeds straight into plotting pipelines.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// QuadrantCSV renders one quadrant sweep as a CSV table.
func QuadrantCSV(pts []QuadrantPoint) *Table {
	t := &Table{
		Title: "quadrant",
		Header: []string{"quadrant", "cores", "c2m_degr", "p2m_degr", "c2m_gbps", "p2m_gbps",
			"mem_c2m_gbps", "mem_p2m_gbps", "c2m_lat_iso_ns", "c2m_lat_co_ns",
			"p2m_wlat_co_ns", "wpq_full_frac", "wbacklog", "cha_admit_ns", "regime"},
	}
	for _, p := range pts {
		t.Add(int(p.Quadrant), p.Cores, p.C2MDegradation(), p.P2MDegradation(),
			p.Co.C2MBW/1e9, p.Co.P2MBW/1e9, p.Co.MemC2M/1e9, p.Co.MemP2M/1e9,
			p.C2MIso.C2MLat, p.Co.C2MLat, p.Co.P2MWriteLat,
			p.Co.WPQFullFrac, p.Co.WBacklog, p.Co.CHAAdmitLat, p.Regime().String())
	}
	return t
}
