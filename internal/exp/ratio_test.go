package exp

import "testing"

// The continuous quadrant transition: at 5 cores, raising the C2M store
// fraction moves the colocation from the blue regime (P2M intact) into the
// red regime (WPQ pinned, P2M degraded).
func TestRatioSweepRegimeTransition(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunRatioSweep(5, []float64{0, 0.25, 0.5, 0.75, 1.0}, Defaults())
	for _, p := range pts {
		t.Logf("frac=%.2f: C2M %.2fx P2M %.2fx wpqFull=%.2f wback=%.1f",
			p.WriteFrac, p.C2MDegradation(), p.P2MDegradation(), p.WPQFullFrac, p.WBacklog)
	}
	first, last := pts[0], pts[len(pts)-1]
	if d := first.P2MDegradation(); d > 1.1 {
		t.Errorf("read-only C2M should leave P2M intact, got %.2fx", d)
	}
	if d := last.P2MDegradation(); d < 1.3 {
		t.Errorf("store-heavy C2M should push the red regime, got %.2fx", d)
	}
	// P2M degradation is (weakly) monotone in the write fraction.
	for i := 1; i < len(pts); i++ {
		if pts[i].P2MDegradation() < pts[i-1].P2MDegradation()-0.08 {
			t.Errorf("P2M degradation regressed at frac=%.2f: %.2fx after %.2fx",
				pts[i].WriteFrac, pts[i].P2MDegradation(), pts[i-1].P2MDegradation())
		}
	}
	// The WPQ pinning tracks the transition.
	if first.WPQFullFrac > 0.3 || last.WPQFullFrac < 0.8 {
		t.Errorf("WPQ fill did not track the transition: %.2f -> %.2f",
			first.WPQFullFrac, last.WPQFullFrac)
	}
}

// Cross-generation check (§2.1's "observations apply across different
// processor generations and resource ratios"): the blue and red regimes
// reproduce on the Ice Lake preset too.
func TestRegimesOnIceLake(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	opt.Preset = iceLakePreset
	// Blue: C2M-Read + P2M-Write with 8 cores.
	blue := RunQuadrant(Q1, []int{8}, opt)[0]
	t.Logf("IceLake Q1/8: C2M %.2fx P2M %.2fx", blue.C2MDegradation(), blue.P2MDegradation())
	if d := blue.C2MDegradation(); d < 1.05 {
		t.Errorf("IceLake blue regime missing: %.2fx", d)
	}
	if d := blue.P2MDegradation(); d > 1.1 {
		t.Errorf("IceLake Q1 P2M degraded %.2fx", d)
	}
	// Red: C2M-ReadWrite + P2M-Write with enough cores to exceed the drain.
	red := RunQuadrant(Q3, []int{24}, opt)[0]
	t.Logf("IceLake Q3/24: C2M %.2fx P2M %.2fx wpqFull=%.2f",
		red.C2MDegradation(), red.P2MDegradation(), red.Co.WPQFullFrac)
	if d := red.P2MDegradation(); d < 1.15 {
		t.Errorf("IceLake red regime missing: P2M %.2fx", d)
	}
}
