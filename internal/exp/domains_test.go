package exp

import (
	"testing"
)

// §4.2 / Fig 6: evidence for the domain characterization.
func TestFig6DomainEvidence(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	ev := RunFig6(Defaults())
	for _, p := range ev.Points {
		t.Logf("cores=%d: LFB=%.0f chaDram=%.0f | rwLFB=%.0f chaMCwr=%.0f wLat=%.0f | probeIIO=%.0f probeChaMC=%.0f",
			p.Cores, p.ReadLFBLat, p.ReadCHADram, p.RWLFBLat, p.RWCHAMCWr, p.RWWriteLat,
			p.ProbeIIOLat, p.ProbeCHAMCWr)
	}

	// (a) The LFB latency strictly contains the CHA->DRAM read latency, and
	// both inflate together from 1 to 6 cores.
	for _, p := range ev.Points {
		if p.ReadLFBLat <= p.ReadCHADram {
			t.Errorf("cores=%d: LFB latency (%.0f) must exceed CHA->DRAM (%.0f): the C2M-Read domain includes DRAM",
				p.Cores, p.ReadLFBLat, p.ReadCHADram)
		}
	}
	first, last := ev.Points[0], ev.Points[len(ev.Points)-1]
	lfbInfl := last.ReadLFBLat - first.ReadLFBLat
	chaInfl := last.ReadCHADram - first.ReadCHADram
	if lfbInfl <= 0 || chaInfl <= 0 {
		t.Errorf("latencies should inflate with load: lfb %+.0f cha %+.0f", lfbInfl, chaInfl)
	}
	if ratio := lfbInfl / chaInfl; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("LFB inflation (%.0f) should track CHA->DRAM inflation (%.0f)", lfbInfl, chaInfl)
	}

	// (b) The C2M-Write domain excludes the MC: under load the CHA->MC write
	// latency may exceed the LFB write latency, which stays ~constant.
	if last.RWWriteLat > 3*first.RWWriteLat {
		t.Errorf("C2M-Write LFB latency inflated %0.f->%.0f; the domain ends at the CHA",
			first.RWWriteLat, last.RWWriteLat)
	}

	// (c) The P2M-Write domain includes the MC: IIO latency contains the
	// CHA->MC write latency and inflates with it.
	for _, p := range ev.Points {
		if p.ProbeIIOLat <= p.ProbeCHAMCWr {
			t.Errorf("cores=%d: IIO latency (%.0f) must exceed CHA->MC write (%.0f)",
				p.Cores, p.ProbeIIOLat, p.ProbeCHAMCWr)
		}
	}

	// Credit characterization (§4.2): LFB 10-12, IIO write ~92, IIO read
	// lower bound well above the write credits.
	if ev.LFBCredits != 12 {
		t.Errorf("LFB credits = %d, want 12", ev.LFBCredits)
	}
	if ev.IIOWriteCredits < 85 || ev.IIOWriteCredits > 92 {
		t.Errorf("IIO write credits = %d, want ~92", ev.IIOWriteCredits)
	}
	// The P2M-Read measurement is a lower bound (the paper could not read
	// the IIO read buffer either); it must be substantial, and the
	// configured pool is larger than the write pool.
	if ev.IIOReadCredits < 40 {
		t.Errorf("P2M-Read in-flight lower bound %d implausibly small", ev.IIOReadCredits)
	}
	if cfg := Defaults().Preset().IIO; cfg.ReadCredits <= cfg.WriteCredits {
		t.Errorf("configured P2M-Read credits (%d) should exceed P2M-Write credits (%d)",
			cfg.ReadCredits, cfg.WriteCredits)
	}

	// Unloaded latencies (§4.2): ~70ns, ~10ns, ~300ns.
	if ev.UnloadedC2MRead < 60 || ev.UnloadedC2MRead > 80 {
		t.Errorf("unloaded C2M-Read = %.0f, want ~70", ev.UnloadedC2MRead)
	}
	if ev.UnloadedC2MWrite < 5 || ev.UnloadedC2MWrite > 15 {
		t.Errorf("unloaded C2M-Write = %.0f, want ~10", ev.UnloadedC2MWrite)
	}
	if ev.UnloadedP2MWrite < 260 || ev.UnloadedP2MWrite > 340 {
		t.Errorf("unloaded P2M-Write = %.0f, want ~300", ev.UnloadedP2MWrite)
	}
}

// Fig 7 root causes for quadrant 1: latency inflation from MC queueing, row
// miss increase, bank imbalance, un-filled WPQ, spare IIO credits.
func TestFig7Quadrant1RootCauses(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunQuadrant(Q1, []int{1, 3, 6}, Defaults())
	for _, p := range pts {
		t.Logf("cores=%d: lfb %.0f->%.0f rpq %.1f->%.1f rowmiss %.3f->%.3f wpqFill=%.2f iio=%.0f dev[p50=%.2f >=1.5x:%.2f >=2x:%.2f]",
			p.Cores, p.C2MIso.C2MLat, p.Co.C2MLat, p.C2MIso.RPQOcc, p.Co.RPQOcc,
			p.C2MIso.RowMissC2MRead, p.Co.RowMissC2MRead, p.Co.WPQFullFrac, p.Co.IIOWriteOcc,
			p.Co.BankDevMedian, p.Co.BankDevFracGE15, p.Co.BankDevFracGE2)
	}
	for _, p := range pts {
		// (a) C2M-Read domain latency inflates.
		if p.Co.C2MLat <= p.C2MIso.C2MLat*1.1 {
			t.Errorf("cores=%d: domain latency %.0f -> %.0f; want >= 1.1x inflation",
				p.Cores, p.C2MIso.C2MLat, p.Co.C2MLat)
		}
		// (b) RPQ occupancy grows (queueing at the MC).
		if p.Co.RPQOcc <= p.C2MIso.RPQOcc {
			t.Errorf("cores=%d: RPQ occupancy did not grow (%.2f -> %.2f)",
				p.Cores, p.C2MIso.RPQOcc, p.Co.RPQOcc)
		}
		// (c) Row miss ratio for C2M reads increases when P2M is colocated.
		if p.Co.RowMissC2MRead <= p.C2MIso.RowMissC2MRead {
			t.Errorf("cores=%d: row miss ratio did not increase (%.3f -> %.3f)",
				p.Cores, p.C2MIso.RowMissC2MRead, p.Co.RowMissC2MRead)
		}
		// (f) WPQ rarely fills in the blue regime.
		if p.Co.WPQFullFrac > 0.30 {
			t.Errorf("cores=%d: WPQ full %.0f%% of the time; blue regime expects < 30%%",
				p.Cores, p.Co.WPQFullFrac*100)
		}
		// (g) IIO write credits stay below the 92 limit (spare credits).
		if p.Co.IIOWriteOcc > 85 {
			t.Errorf("cores=%d: IIO occupancy %.0f leaves no spare credits", p.Cores, p.Co.IIOWriteOcc)
		}
	}
	// (d) Bank load imbalance: deviation >= 1.5x in a sizable fraction of
	// windows (the paper reports 50-70%; shapes vary with the hash).
	if p := pts[0]; p.Co.BankDevFracGE15 < 0.2 {
		t.Errorf("bank deviation >= 1.5x in only %.0f%% of samples", p.Co.BankDevFracGE15*100)
	}
}

// Fig 8 root causes for quadrant 3 (red regime).
func TestFig8Quadrant3RootCauses(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunQuadrant(Q3, []int{2, 4, 6}, Defaults())
	for _, p := range pts {
		t.Logf("cores=%d: wpqFill=%.2f wback=%.1f p2mWlat %.0f->%.0f admit=%.1f iio=%.0f",
			p.Cores, p.Co.WPQFullFrac, p.Co.WBacklog, p.P2MIso.P2MWriteLat, p.Co.P2MWriteLat,
			p.Co.CHAAdmitLat, p.Co.IIOWriteOcc)
	}
	low, high := pts[0], pts[len(pts)-1]
	// (e) WPQ fills persistently once saturated.
	if low.Co.WPQFullFrac > 0.3 {
		t.Errorf("2 cores: WPQ full %.0f%%; saturation should not have started", low.Co.WPQFullFrac*100)
	}
	if high.Co.WPQFullFrac < 0.9 {
		t.Errorf("6 cores: WPQ full only %.0f%%; want persistent", high.Co.WPQFullFrac*100)
	}
	// (d) P2M-Write domain latency inflates substantially (backpressure from
	// the MC spans the P2M-Write domain).
	if high.Co.P2MWriteLat < 1.4*high.P2MIso.P2MWriteLat {
		t.Errorf("6 cores: P2M write latency %.0f -> %.0f; want >= 1.4x", high.P2MIso.P2MWriteLat, high.Co.P2MWriteLat)
	}
	// (f) IIO write credits exhaust.
	if high.Co.IIOWriteOccMax < 90 {
		t.Errorf("6 cores: IIO write occupancy max %d; credits should exhaust", high.Co.IIOWriteOccMax)
	}
	// Phase 2: CHA admission delay appears at high load only.
	if high.Co.CHAAdmitLat < 5 {
		t.Errorf("6 cores: CHA admission delay %.1f ns; phase 2 missing", high.Co.CHAAdmitLat)
	}
	if low.Co.CHAAdmitLat > 5 {
		t.Errorf("2 cores: spurious CHA admission delay %.1f ns", low.Co.CHAAdmitLat)
	}
}

// Figs 13/14: quadrants 2 and 4 — P2M reads tolerate the same MC queueing
// through spare credits (in-flight P2M reads stay below the credit limit).
func TestFig13And14P2MReadSpareCredits(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	for _, q := range []Quadrant{Q2, Q4} {
		pts := RunQuadrant(q, []int{6}, Defaults())
		p := pts[0]
		t.Logf("%v: p2mReadsInflight avg=%.1f max=%d", q, p.Co.P2MReadsInflight, p.Co.P2MReadsInflightMax)
		if p.Co.P2MReadsInflightMax >= 164 {
			t.Errorf("%v: in-flight P2M reads hit the credit limit (%d); the blue regime needs spare credits",
				q, p.Co.P2MReadsInflightMax)
		}
		if p.Co.P2MReadsInflight < 10 {
			t.Errorf("%v: implausibly few in-flight P2M reads (%.1f)", q, p.Co.P2MReadsInflight)
		}
	}
}
