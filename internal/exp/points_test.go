package exp

import (
	"bytes"
	"testing"
)

// TestPointsShape pins which specs split and into what.
func TestPointsShape(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want int // sub-spec count; 0 = not splittable
	}{
		{"quadrant sweep", Spec{Experiment: "quadrant", Quadrant: 2, Cores: []int{1, 3, 5}}, 3},
		{"rdma sweep", Spec{Experiment: "rdma", Cores: []int{2, 4}}, 2},
		{"faultsweep", Spec{Experiment: "faultsweep", Cores: []int{2, 4, 6}}, 3},
		{"crossval sweep", Spec{Experiment: "crossval", Cores: []int{1, 2, 4}}, 3},
		{"single-point crossval", Spec{Experiment: "crossval", Cores: []int{2}}, 0},
		// Analytic answers are microseconds of arithmetic: never sharded.
		{"analytic quadrant", Spec{Experiment: "quadrant", Cores: []int{1, 3, 5}, Fidelity: FidelityAnalytic}, 0},
		{"incast default rack", Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 4}}, 3}, // degrees 1..3
		{"incast pinned degree", Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 4, Degree: 2}}, 0},
		{"incast flow matrix", Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 3, Flows: []FlowSpec{{Src: 1, Dst: 0}}}}, 0},
		{"single-point quadrant", Spec{Experiment: "quadrant", Cores: []int{4}}, 0},
		// ratio's workload seeds depend on the point's index in the sweep
		// (RunRatioSweep), so per-point sub-runs would diverge: must not split.
		{"ratio", Spec{Experiment: "ratio", WriteFracs: []float64{0, 0.5, 1}}, 0},
		{"fig3", Spec{Experiment: "fig3"}, 0},
		{"hostcc", Spec{Experiment: "hostcc"}, 0},
		{"invalid", Spec{Experiment: "nope"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			subs := c.spec.Points()
			if len(subs) != c.want {
				t.Fatalf("Points() = %d sub-specs, want %d", len(subs), c.want)
			}
			for i, sub := range subs {
				if err := sub.Validate(); err != nil {
					t.Fatalf("sub-spec %d invalid: %v", i, err)
				}
				if got := sub.Points(); got != nil {
					t.Fatalf("sub-spec %d is itself splittable (%d points); sharding must terminate", i, len(got))
				}
			}
		})
	}
}

// TestPointsHashStability pins the content-addressing properties the fleet
// depends on: sub-spec canonical bytes are deterministic, every sub-spec
// hashes differently from the parent and from its siblings, and sub-specs
// shared between overlapping parent sweeps hash identically (so a fleet
// store serves one sweep's points to another).
func TestPointsHashStability(t *testing.T) {
	parent := Spec{Experiment: "quadrant", Quadrant: 3, Cores: []int{1, 2, 4}}
	subs := parent.Points()
	if len(subs) != 3 {
		t.Fatalf("Points() = %d sub-specs, want 3", len(subs))
	}
	parentHash, err := parent.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{parentHash: true}
	for i, sub := range subs {
		c1, err1 := sub.Canonical()
		c2, err2 := sub.Canonical()
		if err1 != nil || err2 != nil || !bytes.Equal(c1, c2) {
			t.Fatalf("sub-spec %d canonical not stable: %v %v", i, err1, err2)
		}
		h, err := sub.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Fatalf("sub-spec %d hash collides with parent or sibling", i)
		}
		seen[h] = true
	}

	// Overlapping sweeps meet at the shared point's hash.
	other := Spec{Experiment: "quadrant", Quadrant: 3, Cores: []int{4, 6}}
	otherSubs := other.Points()
	h1, _ := subs[2].Hash()      // Cores=[4] from {1,2,4}
	h2, _ := otherSubs[0].Hash() // Cores=[4] from {4,6}
	if h1 != h2 {
		t.Fatalf("shared point hashes differ across parents: %s vs %s", h1[:12], h2[:12])
	}

	// Splitting a spec must not depend on whether it was pre-normalized.
	rawSubs := Spec{Experiment: "quadrant", Quadrant: 3, Cores: []int{1, 2, 4}}.Points()
	for i := range subs {
		a, _ := subs[i].Canonical()
		b, _ := rawSubs[i].Canonical()
		if !bytes.Equal(a, b) {
			t.Fatalf("sub-spec %d differs between raw and normalized parent", i)
		}
	}
}

// TestPointsMergeByteIdentical is the sharding soundness test: running each
// sub-spec independently and merging reproduces the single-node RunSpecJSON
// bytes exactly, for every splittable experiment.
func TestPointsMergeByteIdentical(t *testing.T) {
	specs := []Spec{
		{Experiment: "quadrant", Quadrant: 2, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "rdma", Quadrant: 1, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "faultsweep", Quadrant: 3, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 3000},
		{Experiment: "incast", Cores: []int{2}, Fabric: &FabricSpec{Hosts: 3}, WarmupNs: 1000, WindowNs: 2000},
	}
	for _, spec := range specs {
		t.Run(spec.Experiment, func(t *testing.T) {
			t.Parallel()
			opt := Defaults()
			single, err := RunSpecJSON(spec, opt)
			if err != nil {
				t.Fatalf("single-node run: %v", err)
			}
			subs := spec.Points()
			if subs == nil {
				t.Fatal("spec did not split")
			}
			parts := make([][]byte, len(subs))
			for i, sub := range subs {
				parts[i], err = RunSpecJSON(sub, opt)
				if err != nil {
					t.Fatalf("sub-spec %d run: %v", i, err)
				}
			}
			merged, err := MergePointResults(spec, parts)
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			if !bytes.Equal(merged, single) {
				t.Fatalf("merged result differs from single-node run:\nsingle: %.300s\nmerged: %.300s", single, merged)
			}
		})
	}
}

// TestMergeRejectsMismatchedParts pins that merge verifies each part
// against its expected sub-spec instead of trusting worker responses.
func TestMergeRejectsMismatchedParts(t *testing.T) {
	spec := Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000}
	subs := spec.Points()
	opt := Defaults()
	parts := make([][]byte, len(subs))
	var err error
	for i, sub := range subs {
		if parts[i], err = RunSpecJSON(sub, opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergePointResults(spec, parts[:1]); err == nil {
		t.Fatal("merge accepted a short part list")
	}
	swapped := [][]byte{parts[1], parts[0]}
	if _, err := MergePointResults(spec, swapped); err == nil {
		t.Fatal("merge accepted out-of-order parts (wrong sub-spec per slot)")
	}
	if _, err := MergePointResults(spec, [][]byte{parts[0], []byte("{not json")}); err == nil {
		t.Fatal("merge accepted a corrupt part")
	}
	if _, err := MergePointResults(Spec{Experiment: "ratio"}, parts); err == nil {
		t.Fatal("merge accepted an unsplittable spec")
	}
}

// TestIncastDegreeSubSpec pins the FabricSpec.Degree sub-spec semantics:
// degree pins a single point, normalization clears Incast, and a pinned
// degree clamps to the host count.
func TestIncastDegreeSubSpec(t *testing.T) {
	fs := FabricSpec{Hosts: 4, Incast: 3, Degree: 2}.Normalized()
	if fs.Incast != 0 || fs.Degree != 2 {
		t.Fatalf("normalized = %+v; want Incast cleared, Degree kept", fs)
	}
	if d := fs.degrees(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("degrees() = %v, want [2]", d)
	}
	if fs := (FabricSpec{Hosts: 4, Degree: 9}).Normalized(); fs.Degree != 3 {
		t.Fatalf("degree not clamped to hosts-1: %+v", fs)
	}
	bad := FabricSpec{Hosts: 3, Degree: 1, Flows: []FlowSpec{{Src: 1, Dst: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("degree+flows accepted")
	}
	if err := (FabricSpec{Hosts: 3, Degree: -1}).Validate(); err == nil {
		t.Fatal("negative degree accepted")
	}
}
