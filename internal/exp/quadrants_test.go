package exp

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// figOptions returns the full 100 us window by default; under -short (the
// race-detector CI tier) it shrinks the measurement window so the figure
// shape tests finish in minutes instead of tens of minutes. The regime
// shapes are already stable at 30 us; EXPERIMENTS.md numbers come from the
// full window.
func figOptions(t *testing.T) Options {
	t.Helper()
	opt := Defaults()
	if testing.Short() {
		opt.Warmup = 10 * sim.Microsecond
		opt.Window = 30 * sim.Microsecond
	}
	return opt
}

func logPoints(t *testing.T, pts []QuadrantPoint) {
	for _, p := range pts {
		t.Logf("%v cores=%d: C2Mdeg=%.2fx P2Mdeg=%.2fx | C2M=%.1f P2M=%.1f GB/s | memC2M=%.1f memP2M=%.1f | C2Mlat=%.0f->%.0f P2Mlat(w)=%.0f->%.0f | wpqFull=%.2f wback=%.1f admit=%.1f iioW=%.0f regime=%v",
			p.Quadrant, p.Cores, p.C2MDegradation(), p.P2MDegradation(),
			p.Co.C2MBW/1e9, p.Co.P2MBW/1e9, p.Co.MemC2M/1e9, p.Co.MemP2M/1e9,
			p.C2MIso.C2MLat, p.Co.C2MLat, p.P2MIso.P2MWriteLat, p.Co.P2MWriteLat,
			p.Co.WPQFullFrac, p.Co.WBacklog, p.Co.CHAAdmitLat, p.Co.IIOWriteOcc, p.Regime())
	}
}

// Fig 3 quadrant 1: blue regime — C2M degrades (1.2-1.7x), P2M unaffected,
// memory bandwidth unsaturated at low core counts.
func TestQuadrant1BlueRegime(t *testing.T) {
	pts := RunQuadrant(Q1, DefaultCoreSweep(), figOptions(t))
	logPoints(t, pts)
	for _, p := range pts {
		if d := p.C2MDegradation(); d < 1.1 {
			t.Errorf("Q1 cores=%d: C2M degradation %.2fx, want >= 1.1", p.Cores, d)
		}
		if d := p.P2MDegradation(); d > 1.1 {
			t.Errorf("Q1 cores=%d: P2M degraded %.2fx; blue regime must leave P2M intact", p.Cores, d)
		}
		if p.Regime() != core.Blue {
			t.Errorf("Q1 cores=%d: regime %v, want blue", p.Cores, p.Regime())
		}
	}
	// Degradation appears below saturation at 1 core.
	p0 := pts[0]
	util := (p0.Co.MemC2M + p0.Co.MemP2M) / 46.9e9
	if util > 0.75 {
		t.Errorf("Q1 1-core utilization %.0f%%: degradation must appear before saturation", util*100)
	}
}

// Fig 3 quadrant 3: red regime — with enough C2M-ReadWrite cores, P2M
// degrades too (C2M antagonizes P2M), and shares stabilize at high load.
func TestQuadrant3RedRegime(t *testing.T) {
	pts := RunQuadrant(Q3, DefaultCoreSweep(), figOptions(t))
	logPoints(t, pts)
	// Low core counts: blue-like (P2M intact).
	if d := pts[0].P2MDegradation(); d > 1.15 {
		t.Errorf("Q3 1 core: P2M degraded %.2fx too early", d)
	}
	// High core counts: P2M must degrade appreciably.
	last := pts[len(pts)-1]
	if d := last.P2MDegradation(); d < 1.3 {
		t.Errorf("Q3 %d cores: P2M degradation %.2fx, want >= 1.3 (red regime)", last.Cores, d)
	}
	if last.Regime() != core.Red {
		t.Errorf("Q3 high load regime %v, want red", last.Regime())
	}
	// WPQ persistently full at high load.
	if last.Co.WPQFullFrac < 0.5 {
		t.Errorf("Q3 %d cores: WPQ full only %.0f%% of time", last.Cores, last.Co.WPQFullFrac*100)
	}
}

// Fig 3 quadrants 2 and 4: blue regime with P2M reads.
func TestQuadrants2And4Blue(t *testing.T) {
	for _, q := range []Quadrant{Q2, Q4} {
		pts := RunQuadrant(q, []int{1, 3, 6}, figOptions(t))
		logPoints(t, pts)
		for _, p := range pts {
			if d := p.C2MDegradation(); d < 1.03 {
				t.Errorf("%v cores=%d: C2M degradation %.2fx, want >= 1.03", q, p.Cores, d)
			}
			if d := p.P2MDegradation(); d > 1.1 {
				t.Errorf("%v cores=%d: P2M degraded %.2fx; want intact", q, p.Cores, d)
			}
		}
	}
}

// TestRunFig3MatchesQuadrants pins the runKey dedup claim on RunFig3: the
// deduped figure — each unique simulation run once and shared across the
// points that need it — is byte-identical to assembling every quadrant
// independently via RunQuadrant, which runs each point from scratch.
func TestRunFig3MatchesQuadrants(t *testing.T) {
	opt := Defaults()
	opt.Warmup = 1 * sim.Microsecond
	opt.Window = 3 * sim.Microsecond
	fig := RunFig3(opt)
	for _, q := range []Quadrant{Q1, Q2, Q3, Q4} {
		want := RunQuadrant(q, DefaultCoreSweep(), opt)
		if !reflect.DeepEqual(fig[q], want) {
			t.Errorf("%v: RunFig3 points differ from RunQuadrant:\nfig3 %+v\nquad %+v", q, fig[q], want)
		}
	}
}
