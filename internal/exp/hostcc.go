package exp

import (
	"repro/internal/host"
	"repro/internal/hostcc"
	"repro/internal/periph"
)

// hostConfig aliases host.Config for preset mutation.
type hostConfig = host.Config

// HostCCStudy compares a red-regime colocation with and without the hostCC-
// style controller — the §7 future-work direction made concrete.
type HostCCStudy struct {
	Quadrant Quadrant
	Cores    int

	// Baselines.
	C2MIso, P2MIso float64
	// Without the controller.
	C2MOff, P2MOff float64
	// With the controller.
	C2MOn, P2MOn float64
	// Controller telemetry (with-controller run).
	CongestedFrac float64
	AvgGapNanos   float64
}

// P2MDegrOff/On report the P2M degradation without/with the controller.
func (s HostCCStudy) P2MDegrOff() float64 { return degradation(s.P2MIso, s.P2MOff) }
func (s HostCCStudy) P2MDegrOn() float64  { return degradation(s.P2MIso, s.P2MOn) }

// C2MDegrOff/On report the C2M degradation without/with the controller.
func (s HostCCStudy) C2MDegrOff() float64 { return degradation(s.C2MIso, s.C2MOff) }
func (s HostCCStudy) C2MDegrOn() float64  { return degradation(s.C2MIso, s.C2MOn) }

// RunHostCCStudy runs one quadrant point three ways: isolated, colocated
// uncontrolled, and colocated with the controller managing the C2M cores.
func RunHostCCStudy(q Quadrant, cores int, cfg hostcc.Config, opt Options) HostCCStudy {
	s := HostCCStudy{Quadrant: q, Cores: cores}

	iso := opt.newHost()
	addC2MCores(iso, q, cores)
	iso.Run(opt.Warmup, opt.Window)
	s.C2MIso = iso.C2MBW()

	p2m := opt.newHost()
	addP2MDevice(p2m, q)
	p2m.Run(opt.Warmup, opt.Window)
	s.P2MIso = p2m.P2MBW()

	off := opt.newHost()
	addC2MCores(off, q, cores)
	addP2MDevice(off, q)
	off.Run(opt.Warmup, opt.Window)
	s.C2MOff, s.P2MOff = off.C2MBW(), off.P2MBW()

	on := opt.newHost()
	addC2MCores(on, q, cores)
	addP2MDevice(on, q)
	cfg.Audit = on.Auditor
	ctl := hostcc.New(on.Eng, cfg, on.IIO, on.CHA, on.Cores)
	ctl.Start(0)
	on.Run(opt.Warmup, opt.Window)
	s.C2MOn, s.P2MOn = on.C2MBW(), on.P2MBW()
	s.CongestedFrac = ctl.Congested.Frac()
	s.AvgGapNanos = ctl.Throttle.Avg()
	return s
}

var _ = periph.DMAWrite // quadrant helpers pick the device direction

// MCIsolationStudy compares the red regime with and without WPQ slot
// reservation for P2M writes — the §7 "memory controller scheduling"
// direction, an alternative to throttling-based control.
type MCIsolationStudy struct {
	Cores          int
	C2MIso, P2MIso float64
	C2MOff, P2MOff float64 // no reservation
	C2MOn, P2MOn   float64 // with reservation
}

// P2MDegrOff/On and C2MDegrOff/On mirror HostCCStudy.
func (s MCIsolationStudy) P2MDegrOff() float64 { return degradation(s.P2MIso, s.P2MOff) }
func (s MCIsolationStudy) P2MDegrOn() float64  { return degradation(s.P2MIso, s.P2MOn) }
func (s MCIsolationStudy) C2MDegrOff() float64 { return degradation(s.C2MIso, s.C2MOff) }
func (s MCIsolationStudy) C2MDegrOn() float64  { return degradation(s.C2MIso, s.C2MOn) }

// RunMCIsolationStudy runs quadrant 3 with `reserve` WPQ slots per channel
// set aside for P2M writes.
func RunMCIsolationStudy(cores, reserve int, opt Options) MCIsolationStudy {
	s := MCIsolationStudy{Cores: cores}

	iso := opt.newHost()
	addC2MCores(iso, Q3, cores)
	iso.Run(opt.Warmup, opt.Window)
	s.C2MIso = iso.C2MBW()

	p2m := opt.newHost()
	addP2MDevice(p2m, Q3)
	p2m.Run(opt.Warmup, opt.Window)
	s.P2MIso = p2m.P2MBW()

	off := opt.newHost()
	addC2MCores(off, Q3, cores)
	addP2MDevice(off, Q3)
	off.Run(opt.Warmup, opt.Window)
	s.C2MOff, s.P2MOff = off.C2MBW(), off.P2MBW()

	resOpt := opt
	base := opt.Preset
	resOpt.Preset = func() hostConfig {
		cfg := base()
		cfg.MC.WPQReserveP2M = reserve
		return cfg
	}
	on := resOpt.newHost()
	addC2MCores(on, Q3, cores)
	addP2MDevice(on, Q3)
	on.Run(opt.Warmup, opt.Window)
	s.C2MOn, s.P2MOn = on.C2MBW(), on.P2MBW()
	return s
}
