package exp

import "repro/internal/fault"

// FaultSweepPoint pairs one core count's healthy and faulted measurements.
type FaultSweepPoint struct {
	Cores   int
	Healthy RDMAQuadrantPoint
	Faulted RDMAQuadrantPoint
}

// C2MExtraDegradation reports how much more the C2M side degrades under
// faults than on healthy hardware (>= 1 means the faults made it worse).
func (p FaultSweepPoint) C2MExtraDegradation() float64 {
	return degradation(p.Faulted.C2MDegradation(), p.Healthy.C2MDegradation())
}

// P2MExtraDegradation is the P2M-side analogue.
func (p FaultSweepPoint) P2MExtraDegradation() float64 {
	return degradation(p.Faulted.P2MDegradation(), p.Healthy.P2MDegradation())
}

// FaultSweep is a Fig-3-style quadrant sweep run twice — once healthy, once
// with the fault schedule — so the marginal cost of transient degradation is
// read directly off the paired points.
type FaultSweep struct {
	Quadrant Quadrant
	Schedule fault.Schedule
	Points   []FaultSweepPoint
}

// RunFaultSweep runs the RDMA quadrant sweep healthy and faulted over the
// same core counts (the faulted sweep applies sched to every host it
// builds, isolated and colocated alike) and zips the results. Both sweeps
// run concurrently on the options' pool; each is itself a pdo fan-out, and
// every point builds its own engine, so the pairing is deterministic.
func RunFaultSweep(q Quadrant, coreCounts []int, sched fault.Schedule, opt Options) *FaultSweep {
	sched = sched.Normalized()
	var healthy, faulted []RDMAQuadrantPoint
	healthyOpt, faultedOpt := opt, opt
	healthyOpt.Faults = nil
	faultedOpt.Faults = sched
	pdo(opt,
		func() { healthy = RunRDMAQuadrant(q, coreCounts, healthyOpt) },
		func() { faulted = RunRDMAQuadrant(q, coreCounts, faultedOpt) },
	)
	out := &FaultSweep{Quadrant: q, Schedule: sched, Points: make([]FaultSweepPoint, len(coreCounts))}
	for i, n := range coreCounts {
		out.Points[i] = FaultSweepPoint{Cores: n, Healthy: healthy[i], Faulted: faulted[i]}
	}
	return out
}
