package exp

import (
	"repro/internal/analytic"
)

// FormulaPoint is one (quadrant, cores) entry of the Fig 11/12 validation:
// the formula's throughput estimates against the simulator's measurement,
// and the component breakdown of the estimated queueing delay.
type FormulaPoint struct {
	Quadrant Quadrant
	Cores    int

	// C2M estimates.
	C2MMeasured     float64 // bytes/s, colocated
	C2MEstimated    float64
	C2MErrorPct     float64
	C2MEstimatedCHA float64 // with the CHA admission-delay correction
	C2MErrorCHAPct  float64
	C2MBreakdown    analytic.Components

	// P2M estimates (meaningful where P2M degrades, i.e. quadrant 3).
	P2MMeasured     float64
	P2MEstimated    float64
	P2MErrorPct     float64
	P2MEstimatedCHA float64
	P2MErrorCHAPct  float64
	P2MBreakdown    analytic.Components
}

// lfbCredits is the per-core LFB credit count of the preset.
func lfbCredits(opt Options) int { return opt.Preset().Core.LFBEntries }

// ValidateFormula applies the §6 methodology to a measured quadrant point:
//
//   - Constant_read is set from the isolated run: the measured isolated
//     domain latency minus the formula's queueing delay on the isolated
//     inputs (the paper sets constants "based on unloaded latencies").
//   - The colocated latency estimate is Constant + QD(colocated inputs),
//     converted back to throughput through the credit bound.
//   - The CHA-corrected variant adds the measured CHA admission delay, which
//     is what the paper does to recover <10% error in quadrant 3.
func ValidateFormula(p QuadrantPoint, opt Options) FormulaPoint {
	f := FormulaPoint{Quadrant: p.Quadrant, Cores: p.Cores}
	credits := lfbCredits(opt)
	coQD := p.Co.Inputs.ReadQueueingDelay()
	isoQD := p.C2MIso.Inputs.ReadQueueingDelay()
	f.C2MBreakdown = coQD

	// C2M estimate. The corrected variant adds the measured backpressure
	// delays the formula cannot see: CHA admission delay (the paper's own
	// quadrant-3 correction) and CHA->RPQ blocking.
	f.C2MMeasured = p.Co.C2MBW
	corr := p.Co.CHAAdmitLat + p.Co.RPQBlockLat
	if p.Quadrant.C2MWrites() {
		constRead := p.C2MIso.C2MReadLat - isoQD.Total()
		constWrite := p.C2MIso.C2MWriteLat
		lr := constRead + coQD.Total()
		lw := constWrite
		f.C2MEstimated = float64(p.Cores) * analytic.PairThroughput(credits, lr, lw)
		f.C2MEstimatedCHA = float64(p.Cores) * analytic.PairThroughput(credits, lr+corr, lw+p.Co.CHAAdmitLat)
	} else {
		constRead := p.C2MIso.C2MReadLat - isoQD.Total()
		lr := constRead + coQD.Total()
		f.C2MEstimated = float64(p.Cores) * analytic.Throughput(credits, lr)
		f.C2MEstimatedCHA = float64(p.Cores) * analytic.Throughput(credits, lr+corr)
	}
	f.C2MErrorPct = analytic.ErrorPct(f.C2MEstimated, f.C2MMeasured)
	f.C2MErrorCHAPct = analytic.ErrorPct(f.C2MEstimatedCHA, f.C2MMeasured)

	// P2M estimate.
	f.P2MMeasured = p.Co.P2MBW
	if p.Quadrant.P2MWrites() {
		wrCredits := opt.Preset().IIO.WriteCredits
		ad := p.Co.Inputs.WriteAdmissionDelay()
		f.P2MBreakdown = ad
		constW := p.P2MIso.P2MWriteLat - p.P2MIso.Inputs.WriteAdmissionDelay().Total()
		lw := constW + ad.Total()
		f.P2MEstimated = capAt(analytic.Throughput(wrCredits, lw), p.P2MIso.P2MBW)
		f.P2MEstimatedCHA = capAt(analytic.Throughput(wrCredits, lw+p.Co.CHAAdmitLat), p.P2MIso.P2MBW)
	} else {
		rdCredits := opt.Preset().IIO.ReadCredits
		constR := p.P2MIso.P2MReadLat - p.P2MIso.Inputs.ReadQueueingDelay().Total()
		lr := constR + coQD.Total()
		f.P2MBreakdown = coQD
		f.P2MEstimated = capAt(analytic.Throughput(rdCredits, lr), p.P2MIso.P2MBW)
		f.P2MEstimatedCHA = capAt(analytic.Throughput(rdCredits, lr+p.Co.CHAAdmitLat), p.P2MIso.P2MBW)
	}
	f.P2MErrorPct = analytic.ErrorPct(f.P2MEstimated, f.P2MMeasured)
	f.P2MErrorCHAPct = analytic.ErrorPct(f.P2MEstimatedCHA, f.P2MMeasured)
	return f
}

// capAt bounds a credit-derived estimate by the isolated (link-limited)
// throughput: spare credits mean the domain runs at the link rate, not at
// the credit bound.
func capAt(est, cap float64) float64 {
	if est > cap {
		return cap
	}
	return est
}

// RunFig11 validates the formula on every quadrant point (Fig 11), returning
// points grouped per quadrant. The same points carry the Fig 12 breakdowns.
// The four quadrant sweeps run in parallel.
func RunFig11(opt Options) map[Quadrant][]FormulaPoint {
	quads := []Quadrant{Q1, Q2, Q3, Q4}
	series := pmap(opt, len(quads), func(i int) []FormulaPoint {
		pts := RunQuadrant(quads[i], DefaultCoreSweep(), opt)
		fps := make([]FormulaPoint, 0, len(pts))
		for _, p := range pts {
			fps = append(fps, ValidateFormula(p, opt))
		}
		return fps
	})
	out := make(map[Quadrant][]FormulaPoint, len(quads))
	for i, q := range quads {
		out[q] = series[i]
	}
	return out
}
