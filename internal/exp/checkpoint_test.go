package exp

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/cpu"
	"repro/internal/cxl"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/hostcc"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The checkpoint property: running to any instant T, snapshotting, finishing
// the run, restoring, and finishing again must produce outputs byte-identical
// to a straight run that never snapshotted. Every divergence is a hidden-
// shared-state bug (a field outside the snapshot set, a closure capturing
// pre-snapshot state, a memo surviving restore).
//
// Each scenario builds its simulation from scratch and returns a finish
// function driving the absolute measurement schedule — finish is written
// against absolute times so it can resume from any mid-warmup instant.

type ckptRun struct {
	eng    *sim.Engine
	warmup sim.Time // snapshot instants are drawn from [0, warmup)
	finish func() any
}

type ckptScenario struct {
	name  string
	build func() ckptRun
}

const (
	ckptWarm   = 10 * sim.Microsecond
	ckptWindow = 20 * sim.Microsecond
)

// ckptOptions returns small, test-sized experiment options.
func ckptOptions(audit bool) Options {
	opt := Defaults()
	opt.Warmup = ckptWarm
	opt.Window = ckptWindow
	opt.Audit = audit
	return opt
}

// hostFinish drives a host through ResetStats-at-warmup measurement with
// absolute times and captures the full probe snapshot.
func hostFinish(h *host.Host, warmup, window sim.Time, extra func(m *Measure)) func() any {
	return func() any {
		h.Eng.RunUntil(warmup)
		h.ResetStats()
		h.Eng.RunUntil(warmup + window)
		h.Auditor.CheckEnd()
		m := snapshot(h)
		if extra != nil {
			extra(&m)
		}
		return m
	}
}

// ckptFaultSchedule exercises every fault kind with windows straddling the
// snapshot band, the warmup boundary, and the measurement window.
func ckptFaultSchedule() fault.Schedule {
	return fault.Schedule{
		{Kind: fault.DRAMThrottle, StartNs: 4_000, DurationNs: 9_000, Magnitude: 2},
		{Kind: fault.IIOStarve, StartNs: 12_000, DurationNs: 6_000, Magnitude: 0.5},
		{Kind: fault.BankOffline, StartNs: 2_000, DurationNs: 20_000},
		{Kind: fault.LaneDegrade, StartNs: 15_000, DurationNs: 8_000, Magnitude: 1.5},
	}.Normalized()
}

// ckptFabricFaults adds the NIC-level kinds only a fabric can express.
func ckptFabricFaults() fault.Schedule {
	return fault.Schedule{
		{Kind: fault.PauseStorm, StartNs: 6_000, DurationNs: 5_000},
		{Kind: fault.LinkFlap, StartNs: 14_000, DurationNs: 3_000},
		{Kind: fault.DRAMThrottle, StartNs: 9_000, DurationNs: 12_000, Magnitude: 2},
	}.Normalized()
}

func ckptScenarios() []ckptScenario {
	return []ckptScenario{
		{name: "q3co", build: func() ckptRun {
			opt := ckptOptions(false)
			h := opt.newHost()
			addC2MCores(h, Q3, 3)
			addP2MDevice(h, Q3)
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: hostFinish(h, ckptWarm, ckptWindow, nil)}
		}},
		{name: "q1co-ddio-audit", build: func() ckptRun {
			opt := ckptOptions(true)
			opt.DDIO = true
			h := opt.newHost()
			addC2MCores(h, Q1, 2)
			addP2MDevice(h, Q1)
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: hostFinish(h, ckptWarm, ckptWindow, nil)}
		}},
		{name: "q3co-audit-strict", build: func() ckptRun {
			// Strict cadence: invariants after every 64th event, fail-fast.
			opt := ckptOptions(true)
			opt.Warmup, opt.Window = 3*sim.Microsecond, 6*sim.Microsecond
			cfg := opt.Preset()
			cfg.DDIO.Enabled = false
			cfg.Audit = opt.auditConfig()
			cfg.Audit.Every = 64
			h := host.New(cfg)
			addC2MCores(h, Q3, 2)
			addP2MDevice(h, Q3)
			return ckptRun{eng: h.Eng, warmup: opt.Warmup, finish: hostFinish(h, opt.Warmup, opt.Window, nil)}
		}},
		{name: "prefetch-co", build: func() ckptRun {
			opt := ckptOptions(false)
			cfg := opt.Preset()
			cfg.Core.Prefetch = cpu.DefaultPrefetcher()
			cfg.Audit = opt.auditConfig()
			h := hostFromConfig(cfg)
			for i := 0; i < 2; i++ {
				h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
			}
			h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: hostFinish(h, ckptWarm, ckptWindow, nil)}
		}},
		{name: "faulted", build: func() ckptRun {
			opt := ckptOptions(true)
			opt.Faults = ckptFaultSchedule()
			h := opt.newHost()
			addC2MCores(h, Q3, 2)
			addP2MDevice(h, Q3)
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: hostFinish(h, ckptWarm, ckptWindow, nil)}
		}},
		{name: "rdma-q3co", build: func() ckptRun {
			opt := ckptOptions(false)
			h := opt.newHost()
			addC2MCores(h, Q3, 2)
			nicBW, nicPause, nicReset := addRDMADevice(h, Q3)
			finish := func() any {
				h.Eng.RunUntil(ckptWarm)
				h.ResetStats()
				nicReset()
				// Fig-23-style microsecond occupancy sampling rides along so
				// the self-rescheduling sample closure is part of the test.
				var samples []int
				stop := ckptWarm + ckptWindow
				var sample func()
				sample = func() {
					samples = append(samples, h.IIO.Stats().WriteOcc.Level())
					if h.Eng.Now()+sim.Microsecond <= stop {
						h.Eng.After(sim.Microsecond, sample)
					}
				}
				h.Eng.After(sim.Microsecond, sample)
				h.Eng.RunUntil(stop)
				m := snapshot(h)
				m.P2MBW = nicBW()
				return struct {
					M       Measure
					Pause   float64
					Samples []int
				}{m, nicPause(), samples}
			}
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: finish}
		}},
		{name: "dctcp", build: func() ckptRun {
			opt := ckptOptions(false)
			h, rx := dctcpHost(opt, 2, true)
			warm := 4 * opt.Warmup // DCTCP needs RTTs to converge
			finish := func() any {
				h.Eng.RunUntil(warm)
				h.ResetStats()
				rx.ResetStats()
				h.Eng.RunUntil(warm + ckptWindow)
				return struct {
					M       Measure
					Goodput float64
				}{snapshot(h), rx.GoodputBytesPerSec()}
			}
			return ckptRun{eng: h.Eng, warmup: warm, finish: finish}
		}},
		{name: "redis", build: func() ckptRun {
			opt := ckptOptions(false)
			h := opt.newHost()
			var rs []*apps.Redis
			for i := 0; i < 2; i++ {
				cfg := apps.DefaultRedisConfig()
				cfg.Seed = uint64(100 + i)
				r := apps.NewRedis(h.Eng, cfg, h.Region(cfg.BufBytes))
				rs = append(rs, r)
				h.AddCore(r)
			}
			addP2MDevice(h, Q1)
			finish := hostFinish(h, ckptWarm, ckptWindow, func(m *Measure) {
				var qps float64
				for _, r := range rs {
					qps += r.Queries().RatePerSecond()
				}
				m.C2MBW = qps // reuse the field to fold QPS into the fingerprint
			})
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: finish}
		}},
		{name: "hostcc", build: func() ckptRun {
			opt := ckptOptions(false)
			h := opt.newHost()
			addC2MCores(h, Q3, 3)
			addP2MDevice(h, Q3)
			ctl := hostcc.New(h.Eng, hostcc.DefaultConfig(), h.IIO, h.CHA, h.Cores)
			ctl.Start(0)
			finish := hostFinish(h, ckptWarm, ckptWindow, func(m *Measure) {
				m.CHAAdmitLat += ctl.Congested.Frac() + ctl.Throttle.Avg()
			})
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: finish}
		}},
		{name: "cxl", build: func() ckptRun {
			opt := ckptOptions(false)
			cfg := opt.Preset()
			cfg.Audit = opt.auditConfig()
			h := host.NewWithCXL(cfg, cxl.DefaultConfig())
			h.AddCore(workload.NewSeqReadWrite(h.CXLRegion(1<<30), 1<<30))
			h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
			h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
			return ckptRun{eng: h.Eng, warmup: ckptWarm, finish: hostFinish(h, ckptWarm, ckptWindow, nil)}
		}},
		{name: "incast", build: func() ckptRun {
			opt := ckptOptions(false)
			return buildIncastCkpt(opt, nil)
		}},
		{name: "incast-faulted-audit", build: func() ckptRun {
			opt := ckptOptions(true)
			return buildIncastCkpt(opt, ckptFabricFaults())
		}},
	}
}

// buildIncastCkpt assembles a 3-host incast rack mirroring runIncastPoint.
func buildIncastCkpt(opt Options, sched fault.Schedule) ckptRun {
	cfg := fabric.DefaultConfig(3)
	hostCfg := opt.Preset()
	hostCfg.DDIO.Enabled = opt.DDIO
	cfg.Host = hostCfg
	cfg.Audit = opt.auditConfig()
	cfg.Faults = sched
	cfg.FaultHost = 1
	f := fabric.New(cfg)
	f.AddIncast(0, 2)
	for i := 0; i < 2; i++ {
		base := f.Hosts[0].Region(1 << 30)
		f.Hosts[0].AddCore(workload.NewSeqReadWrite(base, 1<<30))
	}
	finish := func() any {
		f.Eng.RunUntil(ckptWarm)
		f.ResetStats()
		f.Eng.RunUntil(ckptWarm + ckptWindow)
		f.Auditor.CheckEnd()
		p := IncastPoint{
			Senders:     2,
			RxQueueOcc:  f.NICs[0].RxQueueOcc.Avg(),
			SwEgressOcc: f.Switch.PortOutOccAvg(0),
		}
		for _, n := range f.NICs {
			p.TxBW = append(p.TxBW, n.TxBytesPerSec())
			p.TxPause = append(p.TxPause, n.TxPauseFrac.Frac())
			p.RxBW = append(p.RxBW, n.RxBytesPerSec())
			p.RxPause = append(p.RxPause, n.RxPauseFrac.Frac())
		}
		p.Recv = snapshot(f.Hosts[0])
		ok, detail := f.Conservation()
		if !ok {
			p.Recv.C2MLat = -1
			_ = detail
		}
		return p
	}
	return ckptRun{eng: f.Eng, warmup: ckptWarm, finish: finish}
}

// TestCheckpointRestoreBitIdentity is the snapshot/restore property test:
// for random snapshot instants T (via testing/quick), run-to-T → snapshot →
// finish must equal a straight run, and restore → finish must equal it
// again — for every experiment shape, fabric and fault injection included.
func TestCheckpointRestoreBitIdentity(t *testing.T) {
	for _, sc := range ckptScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			straight := sc.build()
			want := straight.finish()

			f := func(tick uint64) bool {
				at := sim.Time(tick % uint64(sc.warmupFor()))
				r := sc.build()
				r.eng.RunUntil(at)
				s := r.eng.Snapshot()
				if got := r.finish(); !reflect.DeepEqual(want, got) {
					t.Logf("%s: snapshot at %d perturbed the run", sc.name, at)
					return false
				}
				r.eng.Restore(s)
				if got := r.finish(); !reflect.DeepEqual(want, got) {
					t.Logf("%s: restore from %d diverged", sc.name, at)
					return false
				}
				// The snapshot survives a restore: fork it a second time.
				r.eng.Restore(s)
				if got := r.finish(); !reflect.DeepEqual(want, got) {
					t.Logf("%s: second restore from %d diverged", sc.name, at)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// warmupFor reports the scenario's snapshot band (built once, cheaply).
func (sc ckptScenario) warmupFor() sim.Time { return sc.build().warmup }

// TestCheckpointMidWindowRestore snapshots inside the measurement window —
// after ResetStats — so telemetry window state (reset anchors, memoized
// quantile views, partial integrator areas) is part of the restored set.
// The warmup-band property above cannot see those bugs: ResetStats at the
// warmup boundary wipes any mis-restored window state before measurement.
func TestCheckpointMidWindowRestore(t *testing.T) {
	type midScenario struct {
		name  string
		build func() *host.Host
	}
	opt := ckptOptions(true)
	faultedOpt := ckptOptions(true)
	faultedOpt.Faults = ckptFaultSchedule()
	pfOpt := ckptOptions(false)
	scenarios := []midScenario{
		{name: "q3co", build: func() *host.Host {
			h := opt.newHost()
			addC2MCores(h, Q3, 3)
			addP2MDevice(h, Q3)
			return h
		}},
		{name: "faulted", build: func() *host.Host {
			h := faultedOpt.newHost()
			addC2MCores(h, Q3, 2)
			addP2MDevice(h, Q3)
			return h
		}},
		{name: "prefetch", build: func() *host.Host {
			cfg := pfOpt.Preset()
			cfg.Core.Prefetch = cpu.DefaultPrefetcher()
			cfg.Audit = pfOpt.auditConfig()
			h := hostFromConfig(cfg)
			h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
			h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
			return h
		}},
		{name: "redis", build: func() *host.Host {
			h := opt.newHost()
			cfg := apps.DefaultRedisConfig()
			r := apps.NewRedis(h.Eng, cfg, h.Region(cfg.BufBytes))
			h.AddCore(r)
			addP2MDevice(h, Q1)
			return h
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			measure := func(h *host.Host) Measure {
				h.Eng.RunUntil(ckptWarm + ckptWindow)
				h.Auditor.CheckEnd()
				return snapshot(h)
			}

			straight := sc.build()
			straight.Eng.RunUntil(ckptWarm)
			straight.ResetStats()
			want := measure(straight)

			for _, frac := range []sim.Time{3, 7} {
				h := sc.build()
				h.Eng.RunUntil(ckptWarm)
				h.ResetStats()
				h.Eng.RunUntil(ckptWarm + ckptWindow/frac)
				s := h.Snapshot()
				if got := measure(h); !reflect.DeepEqual(want, got) {
					t.Fatalf("mid-window snapshot at window/%d perturbed the run:\nwant %+v\ngot  %+v", frac, want, got)
				}
				h.Restore(s)
				if got := measure(h); !reflect.DeepEqual(want, got) {
					t.Fatalf("mid-window restore at window/%d diverged:\nwant %+v\ngot  %+v", frac, want, got)
				}
			}
		})
	}
}

// TestCheckpointMidWindowFabric is the fabric analogue: snapshot a rack
// mid-measurement and check restore-continue bit-identity on the full
// incast observable set.
func TestCheckpointMidWindowFabric(t *testing.T) {
	opt := ckptOptions(true)
	capture := func(f *fabric.Fabric) IncastPoint {
		f.Eng.RunUntil(ckptWarm + ckptWindow)
		f.Auditor.CheckEnd()
		p := IncastPoint{RxQueueOcc: f.NICs[0].RxQueueOcc.Avg(), SwEgressOcc: f.Switch.PortOutOccAvg(0)}
		for _, n := range f.NICs {
			p.TxBW = append(p.TxBW, n.TxBytesPerSec())
			p.TxPause = append(p.TxPause, n.TxPauseFrac.Frac())
			p.RxBW = append(p.RxBW, n.RxBytesPerSec())
			p.RxPause = append(p.RxPause, n.RxPauseFrac.Frac())
		}
		p.Recv = snapshot(f.Hosts[0])
		return p
	}
	build := func() *fabric.Fabric {
		cfg := fabric.DefaultConfig(3)
		cfg.Host = opt.Preset()
		cfg.Audit = opt.auditConfig()
		cfg.Faults = ckptFabricFaults()
		cfg.FaultHost = 1
		f := fabric.New(cfg)
		f.AddIncast(0, 2)
		for i := 0; i < 2; i++ {
			f.Hosts[0].AddCore(workload.NewSeqReadWrite(f.Hosts[0].Region(1<<30), 1<<30))
		}
		return f
	}

	straight := build()
	straight.Eng.RunUntil(ckptWarm)
	straight.ResetStats()
	want := capture(straight)

	f := build()
	f.Eng.RunUntil(ckptWarm)
	f.ResetStats()
	f.Eng.RunUntil(ckptWarm + ckptWindow/4)
	s := f.Snapshot()
	if got := capture(f); !reflect.DeepEqual(want, got) {
		t.Fatalf("fabric mid-window snapshot perturbed the run:\nwant %+v\ngot  %+v", want, got)
	}
	f.Restore(s)
	if got := capture(f); !reflect.DeepEqual(want, got) {
		t.Fatalf("fabric mid-window restore diverged:\nwant %+v\ngot  %+v", want, got)
	}
}
