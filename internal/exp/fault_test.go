package exp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultDetOptions are fault-test options kept deliberately tiny: the
// property tests below run several full sweeps per generated schedule.
func faultDetOptions(parallelism int) Options {
	opt := Defaults()
	opt.Warmup = 2 * sim.Microsecond
	opt.Window = 5 * sim.Microsecond
	opt.Parallelism = parallelism
	return opt
}

// genSchedule draws a bounded random fault schedule that always validates:
// kinds cycle through the full set, windows are laid out back to back per
// kind so same-target overlap cannot occur.
func genSchedule(r *rand.Rand) fault.Schedule {
	n := 1 + r.Intn(4)
	kinds := fault.Kinds()
	s := make(fault.Schedule, 0, n)
	for i := 0; i < n; i++ {
		k := kinds[r.Intn(len(kinds))]
		w := fault.Window{
			Kind: k,
			// Inside warmup+window (2000+5000 ns); per-index lanes avoid
			// same-target overlap without constraining cross-kind overlap.
			StartNs:    int64(i)*1500 + int64(r.Intn(500)),
			DurationNs: 200 + int64(r.Intn(1200)),
		}
		switch k {
		case fault.IIOStarve:
			w.Magnitude = 0.25 + 0.75*r.Float64()
		case fault.DRAMThrottle, fault.LaneDegrade:
			w.Magnitude = 1 + 7*r.Float64()
		}
		if k == fault.DRAMThrottle || k == fault.BankOffline {
			w.Channel = r.Intn(4)
		}
		if k == fault.BankOffline {
			w.Bank = r.Intn(20)
		}
		s = append(s, w)
	}
	return s
}

// TestFaultScheduleDeterminismProperty is the tentpole's determinism
// guarantee as a property: for ANY valid fault schedule, the faulted sweep
// is bit-identical serial vs parallel, byte for byte through the full JSON
// result path.
func TestFaultScheduleDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs several full sweeps per case")
	}
	prop := func(seed int64) bool {
		sched := genSchedule(rand.New(rand.NewSource(seed)))
		if err := sched.Validate(); err != nil {
			t.Fatalf("generator produced an invalid schedule: %v", err)
		}
		spec := Spec{
			Experiment: "rdma", Quadrant: 3, Cores: []int{2},
			WarmupNs: 2000, WindowNs: 5000, Faults: sched,
		}
		serial, err := RunSpecJSON(spec, faultDetOptions(1))
		if err != nil {
			t.Fatalf("serial run: %v", err)
		}
		parallel, err := RunSpecJSON(spec, faultDetOptions(4))
		if err != nil {
			t.Fatalf("parallel run: %v", err)
		}
		if !bytes.Equal(serial, parallel) {
			t.Logf("schedule %+v diverged serial vs parallel", sched)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultAuditByteIdentity pins the auditor's observational contract on a
// faulted run: the invariant machinery inspects every fault window but must
// not change a byte of the result.
func TestFaultAuditByteIdentity(t *testing.T) {
	spec := Spec{
		Experiment: "faultsweep", Cores: []int{2},
		WarmupNs: 2000, WindowNs: 5000,
	}
	plain := faultDetOptions(0)
	plain.Audit = false
	audited := faultDetOptions(0)
	audited.Audit = true
	a, err := RunSpecJSON(spec, plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpecJSON(spec, audited)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("faultsweep results differ with audit on vs off")
	}
}

// TestEmptyFaultsMatchesNoFaults pins the healthy-path contract end to end:
// a spec with `faults: []` normalizes, hashes, and runs identically to one
// with the field absent.
func TestEmptyFaultsMatchesNoFaults(t *testing.T) {
	absent := Spec{Experiment: "rdma", Quadrant: 3, Cores: []int{1}, WarmupNs: 2000, WindowNs: 5000}
	empty := absent
	empty.Faults = []fault.Window{}
	if !reflect.DeepEqual(absent.Normalized(), empty.Normalized()) {
		t.Fatal("empty fault list must normalize away")
	}
	ha, err := absent.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := empty.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != he {
		t.Fatal("empty fault list changed the spec hash")
	}
	a, err := RunSpecJSON(absent, faultDetOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpecJSON(empty, faultDetOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("empty fault list changed result bytes")
	}
}

// TestFaultsClearedOnNonFaultExperiments: experiments that do not honor the
// knob normalize it away (the unread-knob convention), so a stray fault
// list cannot fragment the result cache.
func TestFaultsClearedOnNonFaultExperiments(t *testing.T) {
	s := Spec{Experiment: "ratio", Faults: []fault.Window{
		{Kind: fault.PauseStorm, StartNs: 0, DurationNs: 100},
	}}
	if n := s.Normalized(); n.Faults != nil {
		t.Fatalf("ratio spec kept faults after normalization: %+v", n.Faults)
	}
}

// TestFaultSweepPairsHealthyAndFaulted sanity-checks the new experiment:
// the faulted half must actually degrade relative to its healthy twin (the
// default schedule includes a PFC pause storm, so colocated pause time
// must rise), and the healthy half must match a plain RDMA sweep.
func TestFaultSweepPairsHealthyAndFaulted(t *testing.T) {
	opt := faultDetOptions(0)
	sched := DefaultFaultSchedule(2000, 5000)
	fs := RunFaultSweep(Q3, []int{2}, sched, opt)
	if len(fs.Points) != 1 {
		t.Fatalf("want 1 point, got %d", len(fs.Points))
	}
	p := fs.Points[0]
	if !reflect.DeepEqual(fs.Schedule, sched.Normalized()) {
		t.Fatal("FaultSweep.Schedule is not the normalized input schedule")
	}
	plain := RunRDMAQuadrant(Q3, []int{2}, opt)
	if !reflect.DeepEqual(p.Healthy, plain[0]) {
		t.Fatal("healthy half of the fault sweep differs from a plain RDMA sweep")
	}
	if p.Faulted.PauseFrac <= p.Healthy.PauseFrac {
		t.Fatalf("pause storm did not raise pause time: healthy=%v faulted=%v",
			p.Healthy.PauseFrac, p.Faulted.PauseFrac)
	}
}

// TestFaultSpecValidation: invalid fault windows must be rejected at spec
// validation (the hostnetd submit path), not at run time.
func TestFaultSpecValidation(t *testing.T) {
	bad := Spec{Experiment: "rdma", Faults: []fault.Window{
		{Kind: "meteor_strike", StartNs: 0, DurationNs: 100},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("spec validation accepted an unknown fault kind")
	}
	if _, err := RunSpec(bad, faultDetOptions(0)); err == nil {
		t.Fatal("RunSpec accepted an unknown fault kind")
	}
}
