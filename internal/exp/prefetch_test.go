package exp

import "testing"

// §2.2: prefetching improves sequential C2M throughput in both isolated and
// colocated cases while the degradation ratio stays roughly the same.
func TestPrefetchStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	s := RunPrefetchStudy(2, Defaults())
	t.Logf("isoOff=%.1f isoOn=%.1f coOff=%.1f coOn=%.1f | degrOff=%.2fx degrOn=%.2fx",
		s.IsoOff/1e9, s.IsoOn/1e9, s.CoOff/1e9, s.CoOn/1e9, s.DegradationOff(), s.DegradationOn())
	if s.IsoOn <= s.IsoOff*1.1 {
		t.Errorf("prefetching should improve isolated throughput (%.1f -> %.1f GB/s)",
			s.IsoOff/1e9, s.IsoOn/1e9)
	}
	if s.CoOn <= s.CoOff {
		t.Errorf("prefetching should improve colocated throughput (%.1f -> %.1f GB/s)",
			s.CoOff/1e9, s.CoOn/1e9)
	}
	dOff, dOn := s.DegradationOff(), s.DegradationOn()
	if dOn < dOff*0.7 || dOn > dOff*1.45 {
		t.Errorf("degradation ratio should stay roughly the same: off %.2fx vs on %.2fx", dOff, dOn)
	}
}
