package exp

import (
	"testing"
)

// Fig 18: the RDMA case study shows the same blue/red regimes as the SSD
// experiments, with slightly lower magnitudes (the NIC generates ~12.25 GB/s
// vs the SSDs' 14).
func TestRDMAQuadrant1Blue(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunRDMAQuadrant(Q1, []int{1, 3, 6}, Defaults())
	for _, p := range pts {
		t.Logf("RDMA %v cores=%d: C2M %.2fx P2M %.2fx (nic %.1f GB/s) pause=%.2f",
			p.Quadrant, p.Cores, p.C2MDegradation(), p.P2MDegradation(), p.Co.P2MBW/1e9, p.PauseFrac)
		if d := p.C2MDegradation(); d < 1.1 {
			t.Errorf("cores=%d: C2M degradation %.2fx", p.Cores, d)
		}
		if d := p.P2MDegradation(); d > 1.1 {
			t.Errorf("cores=%d: RoCE degraded %.2fx in the blue regime", p.Cores, d)
		}
	}
}

// Fig 18/22/23: RDMA quadrant 3 — at high C2M load, RoCE throughput degrades
// and PFC pauses appear, while the IIO write buffer stays near full (PFC
// keeps enough in-flight data to feed it).
func TestRDMAQuadrant3RedWithPFC(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts := RunRDMAQuadrant(Q3, []int{1, 4, 6}, Defaults())
	for _, p := range pts {
		t.Logf("RDMA %v cores=%d: C2M %.2fx P2M %.2fx pause=%.2f iioOcc=%.0f samples=%d",
			p.Quadrant, p.Cores, p.C2MDegradation(), p.P2MDegradation(), p.PauseFrac,
			p.Co.IIOWriteOcc, len(p.IIOOccSamples))
	}
	low, high := pts[0], pts[len(pts)-1]
	if d := low.P2MDegradation(); d > 1.15 {
		t.Errorf("1 core: RoCE degraded %.2fx too early", d)
	}
	if d := high.P2MDegradation(); d < 1.2 {
		t.Errorf("6 cores: RoCE degradation %.2fx, want red regime", d)
	}
	if high.PauseFrac < 0.05 {
		t.Errorf("6 cores: PFC pause fraction %.2f, want pauses", high.PauseFrac)
	}
	if low.PauseFrac > 0.05 {
		t.Errorf("1 core: spurious PFC pauses (%.2f)", low.PauseFrac)
	}
	// Fig 23: microsecond-scale IIO occupancy stays near capacity under PFC.
	if len(high.IIOOccSamples) < 50 {
		t.Fatalf("too few occupancy samples: %d", len(high.IIOOccSamples))
	}
	near := 0
	for _, s := range high.IIOOccSamples {
		if s >= 80 {
			near++
		}
	}
	if frac := float64(near) / float64(len(high.IIOOccSamples)); frac < 0.7 {
		t.Errorf("IIO occupancy near-full only %.0f%% of samples; PFC should keep the buffer fed", frac*100)
	}
}

// Fig 19: with DCTCP, BOTH the memory app and the network app degrade, in
// both the read and read-write cases.
func TestDCTCPBothDegrade(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	read, rw := RunFig19(opt)
	for _, pts := range [][]DCTCPPoint{read, rw} {
		for _, p := range pts {
			t.Logf("DCTCP rw=%v cores=%d: mem %.2fx net %.2fx | net %.1f->%.1f GB/s p2m=%.1f loss=%.4f wpqFull=%.2f",
				p.ReadWrite, p.C2MCores, p.MemAppDegradation(), p.NetAppDegradation(),
				p.NetIso/1e9, p.NetCo/1e9, p.P2MCo/1e9, p.LossRate, p.Co.WPQFullFrac)
		}
	}
	// Memory app degrades everywhere.
	for _, p := range append(append([]DCTCPPoint{}, read...), rw...) {
		if d := p.MemAppDegradation(); d < 1.05 {
			t.Errorf("rw=%v cores=%d: memory app degradation %.2fx", p.ReadWrite, p.C2MCores, d)
		}
	}
	// Network app degrades at high load in both cases.
	if d := read[len(read)-1].NetAppDegradation(); d < 1.15 {
		t.Errorf("C2MRead: network app degradation %.2fx at 4 cores", d)
	}
	if d := rw[len(rw)-1].NetAppDegradation(); d < 1.6 {
		t.Errorf("C2MReadWrite: network app degradation %.2fx at 4 cores, want red-regime impact", d)
	}
	// In the read case the memory app degrades more than the network app
	// throughout (it is fully memory-bound; the network app spends CPU time
	// on non-copy work).
	for _, p := range read {
		if p.MemAppDegradation() < p.NetAppDegradation() {
			t.Errorf("C2MRead cores=%d: memory app (%.2fx) should exceed network app (%.2fx)",
				p.C2MCores, p.MemAppDegradation(), p.NetAppDegradation())
		}
	}
	// In the read-write case the gap closes with load: the network app
	// catches up to (or crosses) the memory app as the red regime bites.
	first, last := rw[0], rw[len(rw)-1]
	gap0 := first.MemAppDegradation() - first.NetAppDegradation()
	gapN := last.MemAppDegradation() - last.NetAppDegradation()
	if gapN >= gap0 {
		t.Errorf("C2MReadWrite: degradation gap should close with load (%.2f -> %.2f)", gap0, gapN)
	}
	// The paper additionally reports small packet-loss rates (0.02-0.36%) at
	// high load; our DCTCP model's ECN + flow control absorb the overload
	// before the NIC queue overflows, so loss stays ~0 (see EXPERIMENTS.md).
	t.Logf("loss rates: read[last]=%.5f rw[last]=%.5f", read[len(read)-1].LossRate, rw[len(rw)-1].LossRate)
}

// DCTCP in isolation approaches the wire rate.
func TestDCTCPIsolatedGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	pts := RunDCTCP(false, []int{1}, opt)
	if pts[0].NetIso < 8e9 {
		t.Errorf("isolated DCTCP goodput %.2f GB/s, want near the ~12.5 GB/s wire rate", pts[0].NetIso/1e9)
	}
}
