package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/host"
	"repro/internal/periph"
	"repro/internal/workload"
)

// Quadrant identifies one of the §2.2 colocation scenarios.
type Quadrant int

// The four quadrants of Fig 3.
const (
	Q1 Quadrant = 1 + iota // C2M-Read   + P2M-Write (blue)
	Q2                     // C2M-Read   + P2M-Read  (blue)
	Q3                     // C2M-ReadWrite + P2M-Write (red)
	Q4                     // C2M-ReadWrite + P2M-Read  (blue)
)

// C2MWrites reports whether the quadrant's compute workload stores.
func (q Quadrant) C2MWrites() bool { return q == Q3 || q == Q4 }

// P2MWrites reports whether the quadrant's peripheral workload DMA-writes.
func (q Quadrant) P2MWrites() bool { return q == Q1 || q == Q3 }

// String names the quadrant like the paper's captions.
func (q Quadrant) String() string {
	c2m, p2m := "C2M-Read", "P2M-Read"
	if q.C2MWrites() {
		c2m = "C2M-ReadWrite"
	}
	if q.P2MWrites() {
		p2m = "P2M-Write"
	}
	return fmt.Sprintf("Q%d (%s, %s)", int(q), c2m, p2m)
}

// addC2MCores attaches n cores running the quadrant's compute workload.
func addC2MCores(h *host.Host, q Quadrant, n int) {
	for i := 0; i < n; i++ {
		base := h.Region(1 << 30)
		var gen cpu.Generator
		if q.C2MWrites() {
			gen = workload.NewSeqReadWrite(base, 1<<30)
		} else {
			gen = workload.NewSeqRead(base, 1<<30)
		}
		h.AddCore(gen)
	}
}

// addP2MDevice attaches the quadrant's bulk FIO device.
func addP2MDevice(h *host.Host, q Quadrant) {
	dir := periph.DMARead
	if q.P2MWrites() {
		dir = periph.DMAWrite
	}
	h.AddStorage(periph.BulkConfig(dir, h.Region(1<<30)))
}

// runKey fingerprints one fig-3-style simulation run. Within a single sweep
// invocation (one Options value), two runs with equal keys are the same
// simulation from t=0: the host build sequence is a pure function of the
// key, and the engine is deterministic. Quadrants overlap heavily — Q1/Q2
// share every C2M-Read isolated baseline, Q3/Q4 every C2M-ReadWrite one,
// and quadrant pairs share the two device baselines — so RunFig3 runs each
// unique key once and reuses the measured result, cutting the 4x13 logical
// runs to 38 simulations without changing a byte of output.
type runKey struct {
	cores     int  // number of C2M cores (0 = device-only baseline)
	c2mWrites bool // C2M cores run SeqReadWrite instead of SeqRead
	hasP2M    bool // a bulk FIO device is attached
	p2mWrites bool // the device DMA-writes instead of DMA-reads
}

func isoRunKey(q Quadrant, cores int) runKey {
	return runKey{cores: cores, c2mWrites: q.C2MWrites()}
}

func p2mRunKey(q Quadrant) runKey {
	return runKey{hasP2M: true, p2mWrites: q.P2MWrites()}
}

func coRunKey(q Quadrant, cores int) runKey {
	return runKey{cores: cores, c2mWrites: q.C2MWrites(), hasP2M: true, p2mWrites: q.P2MWrites()}
}

// run executes the keyed simulation from scratch and measures its window.
func (k runKey) run(opt Options) Measure {
	h := opt.newHost()
	for i := 0; i < k.cores; i++ {
		base := h.Region(1 << 30)
		var gen cpu.Generator
		if k.c2mWrites {
			gen = workload.NewSeqReadWrite(base, 1<<30)
		} else {
			gen = workload.NewSeqRead(base, 1<<30)
		}
		h.AddCore(gen)
	}
	if k.hasP2M {
		dir := periph.DMARead
		if k.p2mWrites {
			dir = periph.DMAWrite
		}
		h.AddStorage(periph.BulkConfig(dir, h.Region(1<<30)))
	}
	h.Run(opt.Warmup, opt.Window)
	return snapshot(h)
}

// QuadrantPoint is one (quadrant, C2M core count) data point: the isolated
// baselines, the colocated measurement, and derived degradations.
type QuadrantPoint struct {
	Quadrant Quadrant
	Cores    int

	C2MIso Measure // N C2M cores alone
	P2MIso Measure // device alone
	Co     Measure // colocated
}

// C2MDegradation reports isolated/colocated C2M throughput (Fig 3 left bars).
func (p QuadrantPoint) C2MDegradation() float64 { return degradation(p.C2MIso.C2MBW, p.Co.C2MBW) }

// P2MDegradation reports isolated/colocated P2M throughput.
func (p QuadrantPoint) P2MDegradation() float64 { return degradation(p.P2MIso.P2MBW, p.Co.P2MBW) }

// Regime classifies the point.
func (p QuadrantPoint) Regime() core.Regime {
	return core.Classify(p.C2MDegradation(), p.P2MDegradation())
}

// RunQuadrantPoint measures one data point (three runs).
func RunQuadrantPoint(q Quadrant, cores int, opt Options) QuadrantPoint {
	p := QuadrantPoint{Quadrant: q, Cores: cores}

	iso := opt.newHost()
	addC2MCores(iso, q, cores)
	iso.Run(opt.Warmup, opt.Window)
	p.C2MIso = snapshot(iso)

	p2m := opt.newHost()
	addP2MDevice(p2m, q)
	p2m.Run(opt.Warmup, opt.Window)
	p.P2MIso = snapshot(p2m)

	co := opt.newHost()
	addC2MCores(co, q, cores)
	addP2MDevice(co, q)
	co.Run(opt.Warmup, opt.Window)
	p.Co = snapshot(co)
	return p
}

// RunQuadrant sweeps C2M core counts for one quadrant — the Fig 3 series,
// which the deep-dive figures (7, 8, 13, 14) then read probes from. The
// per-count points and the shared P2M baseline all run on the options'
// worker pool.
func RunQuadrant(q Quadrant, coreCounts []int, opt Options) []QuadrantPoint {
	// The P2M isolated baseline is independent of the C2M core count.
	var p2mIso Measure
	pts := make([]QuadrantPoint, len(coreCounts))
	tasks := make([]func(), 0, len(coreCounts)+1)
	tasks = append(tasks, func() {
		p2m := opt.newHost()
		addP2MDevice(p2m, q)
		p2m.Run(opt.Warmup, opt.Window)
		p2mIso = snapshot(p2m)
	})
	for idx, n := range coreCounts {
		tasks = append(tasks, func() {
			p := QuadrantPoint{Quadrant: q, Cores: n}
			iso := opt.newHost()
			addC2MCores(iso, q, n)
			iso.Run(opt.Warmup, opt.Window)
			p.C2MIso = snapshot(iso)

			co := opt.newHost()
			addC2MCores(co, q, n)
			addP2MDevice(co, q)
			co.Run(opt.Warmup, opt.Window)
			p.Co = snapshot(co)
			pts[idx] = p
		})
	}
	pdo(opt, tasks...)
	for i := range pts {
		pts[i].P2MIso = p2mIso
	}
	return pts
}

// DefaultCoreSweep matches the paper's Cascade Lake sweep: the C2M app gets
// the cores not dedicated to the P2M app.
func DefaultCoreSweep() []int { return []int{1, 2, 3, 4, 5, 6} }

// RunFig3 runs all four quadrants (Fig 3). The quadrants' runs are deduped
// by runKey — each unique simulation runs once on the options' worker pool
// and every point that needs it shares the measured result — which is
// byte-identical to running all 52 (pinned by TestRunFig3MatchesQuadrants)
// and about 27% cheaper.
func RunFig3(opt Options) map[Quadrant][]QuadrantPoint {
	quads := []Quadrant{Q1, Q2, Q3, Q4}
	counts := DefaultCoreSweep()
	var keys []runKey
	index := make(map[runKey]int)
	need := func(k runKey) {
		if _, ok := index[k]; !ok {
			index[k] = len(keys)
			keys = append(keys, k)
		}
	}
	for _, q := range quads {
		need(p2mRunKey(q))
		for _, n := range counts {
			need(isoRunKey(q, n))
			need(coRunKey(q, n))
		}
	}
	measures := pmap(opt, len(keys), func(i int) Measure { return keys[i].run(opt) })
	get := func(k runKey) Measure { return measures[index[k]] }
	out := make(map[Quadrant][]QuadrantPoint, len(quads))
	for _, q := range quads {
		pts := make([]QuadrantPoint, len(counts))
		for i, n := range counts {
			pts[i] = QuadrantPoint{
				Quadrant: q,
				Cores:    n,
				C2MIso:   get(isoRunKey(q, n)),
				P2MIso:   get(p2mRunKey(q)),
				Co:       get(coRunKey(q, n)),
			}
		}
		out[q] = pts
	}
	return out
}
