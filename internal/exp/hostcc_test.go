package exp

import (
	"testing"

	"repro/internal/hostcc"
)

// The §7 direction made concrete: in the red regime, an in-host congestion
// controller recovers most of the P2M degradation at a bounded C2M cost.
func TestHostCCMitigatesRedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	s := RunHostCCStudy(Q3, 5, hostcc.DefaultConfig(), Defaults())
	t.Logf("Q3/5: P2M degr %.2fx -> %.2fx | C2M degr %.2fx -> %.2fx | congested %.0f%% gap %.0fns",
		s.P2MDegrOff(), s.P2MDegrOn(), s.C2MDegrOff(), s.C2MDegrOn(),
		s.CongestedFrac*100, s.AvgGapNanos)
	if s.P2MDegrOff() < 1.4 {
		t.Fatalf("baseline not in the red regime: P2M degr %.2fx", s.P2MDegrOff())
	}
	if s.P2MDegrOn() > s.P2MDegrOff()*0.8 {
		t.Errorf("controller did not recover P2M throughput: %.2fx -> %.2fx",
			s.P2MDegrOff(), s.P2MDegrOn())
	}
	if s.CongestedFrac < 0.2 {
		t.Errorf("congestion signal fired only %.0f%% of the time", s.CongestedFrac*100)
	}
	// The C2M cost must be bounded (not starvation).
	if s.C2MOn < s.C2MOff*0.5 {
		t.Errorf("controller over-throttled C2M: %.1f -> %.1f GB/s", s.C2MOff/1e9, s.C2MOn/1e9)
	}
}

// In the blue regime the congestion signals stay quiet and the controller
// must not hurt C2M.
func TestHostCCIdleInBlueRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	s := RunHostCCStudy(Q1, 3, hostcc.DefaultConfig(), Defaults())
	t.Logf("Q1/3: C2M degr %.2fx -> %.2fx congested %.0f%% gap %.1fns",
		s.C2MDegrOff(), s.C2MDegrOn(), s.CongestedFrac*100, s.AvgGapNanos)
	if s.CongestedFrac > 0.05 {
		t.Errorf("spurious congestion signal in the blue regime: %.0f%%", s.CongestedFrac*100)
	}
	if s.C2MOn < s.C2MOff*0.95 {
		t.Errorf("controller hurt blue-regime C2M: %.1f -> %.1f GB/s", s.C2MOff/1e9, s.C2MOn/1e9)
	}
}

// The §7 MC-scheduling direction: reserving WPQ slots for P2M writes
// protects the P2M-Write domain from C2M writeback backlog without any
// runtime controller.
func TestMCIsolationProtectsP2M(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	s := RunMCIsolationStudy(5, 16, Defaults())
	t.Logf("Q3/5 reserve=16: P2M %.2fx -> %.2fx | C2M %.2fx -> %.2fx",
		s.P2MDegrOff(), s.P2MDegrOn(), s.C2MDegrOff(), s.C2MDegrOn())
	if s.P2MDegrOff() < 1.4 {
		t.Fatalf("baseline not red: %.2fx", s.P2MDegrOff())
	}
	if s.P2MDegrOn() > s.P2MDegrOff()*0.85 {
		t.Errorf("reservation did not protect P2M: %.2fx -> %.2fx", s.P2MDegrOff(), s.P2MDegrOn())
	}
	if s.C2MOn < s.C2MOff*0.5 {
		t.Errorf("reservation starved C2M: %.1f -> %.1f GB/s", s.C2MOff/1e9, s.C2MOn/1e9)
	}
}
