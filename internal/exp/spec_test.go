package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// fastOpt keeps spec tests cheap; result-affecting knobs live in the spec.
func fastOpt(parallelism int) Options {
	o := Defaults()
	o.Parallelism = parallelism
	return o
}

// fastSpecs is a cross-section of experiment shapes at tiny windows.
func fastSpecs() []Spec {
	return []Spec{
		{Experiment: "quadrant", Quadrant: 2, Cores: []int{1, 3}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "rdma", Quadrant: 1, Cores: []int{2}, WarmupNs: 1000, WindowNs: 2000, DDIO: true},
		{Experiment: "ratio", Cores: []int{2}, WriteFracs: []float64{0, 1}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "mcisolation", Cores: []int{2}, Reserve: 8, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "prefetch", Cores: []int{1}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "hostcc", Quadrant: 3, Cores: []int{2}, WarmupNs: 1000, WindowNs: 2000},
	}
}

// The canonical JSON bytes are a pure function of the spec: any sweep
// parallelism produces identical bytes. This is the guarantee hostnetd's
// content-addressed cache and the CLI/daemon byte-identity rest on.
func TestRunSpecJSONDeterministic(t *testing.T) {
	for _, spec := range fastSpecs() {
		spec := spec
		t.Run(spec.Experiment, func(t *testing.T) {
			t.Parallel()
			serial, err := RunSpecJSON(spec, fastOpt(1))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			wide, err := RunSpecJSON(spec, fastOpt(8))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !bytes.Equal(serial, wide) {
				t.Fatalf("bytes differ between parallelism 1 and 8:\n%s\nvs\n%s", serial, wide)
			}
		})
	}
}

// Every result type survives a JSON round trip byte-for-byte: decode the
// envelope into the experiment's concrete type via NewResultValue,
// re-marshal, and get the original bytes back. This pins both the stable
// field order and that no result type loses information in JSON.
func TestResultRoundTrip(t *testing.T) {
	for _, spec := range fastSpecs() {
		spec := spec
		t.Run(spec.Experiment, func(t *testing.T) {
			t.Parallel()
			orig, err := RunSpecJSON(spec, fastOpt(4))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var envelope struct {
				Spec   Spec            `json:"spec"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(orig, &envelope); err != nil {
				t.Fatalf("decode envelope: %v", err)
			}
			if !specEqual(envelope.Spec, spec.Normalized()) {
				t.Fatalf("envelope spec %+v != normalized %+v", envelope.Spec, spec.Normalized())
			}
			typed := NewResultValue(spec.Experiment)
			if typed == nil {
				t.Fatalf("NewResultValue(%q) = nil", spec.Experiment)
			}
			if err := json.Unmarshal(envelope.Result, typed); err != nil {
				t.Fatalf("decode result into %T: %v", typed, err)
			}
			again, err := json.Marshal(Result{Spec: envelope.Spec, Result: typed})
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(orig, again) {
				t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", orig, again)
			}
		})
	}
}

func specEqual(a, b Spec) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return bytes.Equal(aj, bj)
}

// Equivalent spellings normalize to one canonical form and one hash;
// result-affecting differences change the hash.
func TestCanonicalHashing(t *testing.T) {
	base := Spec{Experiment: "quadrant", Cores: []int{1}}
	explicit := Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{1},
		WarmupNs: DefaultWarmupNs, WindowNs: DefaultWindowNs, Preset: "cascadelake"}
	h1, err := base.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	if h1 != h2 {
		t.Errorf("equivalent specs hash differently: %s vs %s", h1, h2)
	}
	// Knobs the experiment ignores do not perturb the hash.
	noisy := base
	noisy.Reserve = 99 // quadrant has no reserve knob
	if h3, _ := noisy.Hash(); h3 != h1 {
		t.Errorf("ignored knob changed the hash")
	}
	// Result-affecting knobs do.
	for name, mut := range map[string]Spec{
		"ddio":     {Experiment: "quadrant", Cores: []int{1}, DDIO: true},
		"quadrant": {Experiment: "quadrant", Quadrant: 2, Cores: []int{1}},
		"preset":   {Experiment: "quadrant", Cores: []int{1}, Preset: "icelake"},
		"window":   {Experiment: "quadrant", Cores: []int{1}, WindowNs: 12345},
		"cores":    {Experiment: "quadrant", Cores: []int{2}},
	} {
		if hm, _ := mut.Hash(); hm == h1 {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

func TestCanonicalStableBytes(t *testing.T) {
	b, err := Spec{Experiment: "ratio"}.Canonical()
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	want := `{"experiment":"ratio","warmup_ns":20000,"window_ns":100000,"cores":[5],"write_fracs":[0,0.25,0.5,0.75,1]}`
	if string(b) != want {
		t.Fatalf("canonical ratio spec:\n got %s\nwant %s", b, want)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Spec{
		{Experiment: "nope"},
		{Experiment: "quadrant", Quadrant: 7},
		{Experiment: "quadrant", Cores: []int{0}},
		{Experiment: "ratio", WriteFracs: []float64{1.5}},
		{Experiment: "fig3", WarmupNs: -1},
		{Experiment: "fig3", Preset: "skylake"},
		{Experiment: "mcisolation", Reserve: -2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
	if _, err := (Spec{Experiment: "nope"}).Canonical(); err == nil {
		t.Errorf("Canonical of invalid spec should fail")
	}
}

func TestExperimentsCatalog(t *testing.T) {
	names := Experiments()
	if len(names) != len(specShapes) {
		t.Fatalf("Experiments() returned %d names, want %d", len(names), len(specShapes))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Experiments() not sorted: %v", names)
		}
	}
	for _, name := range names {
		if NewResultValue(name) == nil {
			t.Errorf("NewResultValue(%q) = nil", name)
		}
		if err := (Spec{Experiment: name}).Validate(); err != nil {
			t.Errorf("default spec for %q invalid: %v", name, err)
		}
	}
	if NewResultValue("bogus") != nil {
		t.Errorf("NewResultValue for unknown experiment should be nil")
	}
}

// SpecTasks matches the number of Progress callbacks an actual run makes,
// for the sweep experiments where it claims to know.
func TestSpecTasksMatchesProgress(t *testing.T) {
	for _, spec := range []Spec{
		{Experiment: "quadrant", Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000},
		{Experiment: "ratio", Cores: []int{1}, WriteFracs: []float64{0, 1}, WarmupNs: 1000, WindowNs: 2000},
	} {
		want := SpecTasks(spec)
		if want == 0 {
			t.Fatalf("SpecTasks(%s) = 0", spec.Experiment)
		}
		var calls int64
		opt := fastOpt(2)
		var mu = make(chan struct{}, 1)
		opt.Progress = func() {
			mu <- struct{}{}
			calls++
			<-mu
		}
		if _, err := RunSpec(spec, opt); err != nil {
			t.Fatalf("run: %v", err)
		}
		if calls != int64(want) {
			t.Errorf("%s: %d progress calls, SpecTasks says %d", spec.Experiment, calls, want)
		}
	}
}

// Cancellation through Options.BaseCtx comes back from RunSpec as a
// wrapped context error, not a panic (the sweep helpers re-raise pool
// errors as panics; RunSpec is the boundary that translates expected
// cancellation back for API callers).
func TestRunSpecCancellationIsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := fastOpt(2)
	opt.BaseCtx = ctx
	spec := Spec{Experiment: "quadrant", Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000}
	if _, err := RunSpec(spec, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSpec under canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := RunSpecJSON(spec, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSpecJSON under canceled ctx: err = %v, want context.Canceled", err)
	}
}

// The error from an unknown experiment names the valid ones, so API users
// can self-correct.
func TestValidateErrorListsExperiments(t *testing.T) {
	err := (Spec{Experiment: "zzz"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "quadrant") {
		t.Fatalf("error %v should list valid experiments", err)
	}
}
