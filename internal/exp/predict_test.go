package exp

import (
	"math"
	"testing"

	"repro/internal/analytic"
)

// The §7 predictive model (configuration in, throughput out — no measured
// inputs) tracks the simulator across the quadrant-1 sweep.
func TestPredictorTracksSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	hw := analytic.CascadeLakeHW()
	opt := Defaults()
	for _, cores := range []int{1, 2, 4} {
		p := RunQuadrantPoint(Q1, cores, opt)
		pred, perr := analytic.Predict(hw, analytic.Workload{C2MCores: cores, P2MWriteBytesPerSec: 14e9})
		if perr != nil {
			t.Fatalf("cores=%d: %v", cores, perr)
		}
		simBW := p.Co.C2MBW
		err := (pred.C2MBytesPerSec - simBW) / simBW * 100
		t.Logf("cores=%d: sim %.1f GB/s, predicted %.1f GB/s (%.1f%%), L sim %.0f pred %.0f",
			cores, simBW/1e9, pred.C2MBytesPerSec/1e9, err, p.Co.C2MLat, pred.C2MReadLatencyNs)
		if math.Abs(err) > 25 {
			t.Errorf("cores=%d: prediction error %.1f%%, want within 25%%", cores, err)
		}
	}
}
