package exp

import (
	"testing"

	"repro/internal/hostcc"
)

// Audited figure smokes: the same experiment paths CI exercises, with the
// invariant auditor forced on regardless of HOSTNET_AUDIT. Audited
// experiment hosts fail fast, so any conservation or Little's-law violation
// panics the test with the domain, counter, and timestamp.

func TestAuditedQuadrantSmoke(t *testing.T) {
	opt := figOptions(t)
	opt.Audit = true
	pts := RunQuadrant(Q3, []int{2}, opt)
	if len(pts) != 1 || pts[0].Co.C2MBW <= 0 {
		t.Fatalf("audited quadrant run degenerate: %+v", pts)
	}
}

func TestAuditedRDMASmoke(t *testing.T) {
	opt := figOptions(t)
	opt.Audit = true
	pts := RunRDMAQuadrant(Q1, []int{1}, opt)
	if len(pts) != 1 {
		t.Fatalf("audited RDMA run degenerate: %+v", pts)
	}
}

func TestAuditedDCTCPSmoke(t *testing.T) {
	opt := figOptions(t)
	opt.Audit = true
	pts := RunDCTCP(false, []int{1}, opt)
	if len(pts) != 1 {
		t.Fatalf("audited DCTCP run degenerate: %+v", pts)
	}
}

func TestAuditedHostCCSmoke(t *testing.T) {
	opt := figOptions(t)
	opt.Audit = true
	s := RunHostCCStudy(Q3, 2, hostcc.DefaultConfig(), opt)
	if s.C2MIso <= 0 || s.P2MOn <= 0 {
		t.Fatalf("audited hostCC run degenerate: %+v", s)
	}
}
