package exp

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"x,y", "3"}}}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "a,b\n1,2\n") {
		t.Fatalf("csv = %q", got)
	}
	if !strings.Contains(got, `"x,y",3`) {
		t.Fatalf("comma not quoted: %q", got)
	}
}

func TestQuadrantCSVRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	pts := RunQuadrant(Q1, []int{1}, opt)
	tab := QuadrantCSV(pts)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row", len(lines))
	}
	if !strings.Contains(lines[1], "blue") {
		t.Fatalf("row missing regime: %q", lines[1])
	}
}
