package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// --- Spec integration: normalization, hashing, validation ---------------

func TestIncastSpecNormalizeDefaults(t *testing.T) {
	n := Spec{Experiment: "incast"}.Normalized()
	if n.Fabric == nil {
		t.Fatal("normalized incast spec has no fabric section")
	}
	if n.Fabric.Hosts != 4 || n.Fabric.Incast != 3 {
		t.Errorf("fabric defaults = %+v, want hosts=4 incast=3", *n.Fabric)
	}
	if len(n.Cores) != 1 || n.Cores[0] != 4 {
		t.Errorf("cores default = %v, want [4]", n.Cores)
	}
}

// Equivalent fabric specs must hash equal — that is what keeps fabric
// scenarios content-addressable in hostnetd's result cache.
func TestIncastSpecHashInvariance(t *testing.T) {
	hash := func(s Spec) string {
		h, err := s.Normalized().Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	base := hash(Spec{Experiment: "incast"})
	if got := hash(Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 4}}); got != base {
		t.Error("explicit default host count changed the hash")
	}
	if got := hash(Spec{Experiment: "incast", Fabric: &FabricSpec{Incast: 3}}); got != base {
		t.Error("explicit default incast degree changed the hash")
	}

	flows := []FlowSpec{{Src: 2, Dst: 0}, {Src: 1, Dst: 0, Rate: 0.5}}
	reversed := []FlowSpec{{Src: 1, Dst: 0, Rate: 0.5}, {Src: 2, Dst: 0, Rate: 1}}
	a := hash(Spec{Experiment: "incast", Fabric: &FabricSpec{Flows: flows}})
	b := hash(Spec{Experiment: "incast", Fabric: &FabricSpec{Flows: reversed}})
	if a != b {
		t.Error("flow order (and explicit default rate) changed the hash")
	}
	// Incast is ignored — and must be cleared — when a flow matrix is given.
	c := hash(Spec{Experiment: "incast", Fabric: &FabricSpec{Incast: 2, Flows: flows}})
	if a != c {
		t.Error("ignored incast knob leaked into the flow-matrix hash")
	}
	if a == base {
		t.Error("flow matrix and incast pattern hash identically")
	}
}

func TestIncastSpecValidation(t *testing.T) {
	bad := []FabricSpec{
		{Hosts: 1},
		{Hosts: MaxFabricHosts + 1},
		{Incast: -1},
		{FaultHost: 4},
		{Flows: []FlowSpec{{Src: 0, Dst: 0}}},
		{Flows: []FlowSpec{{Src: 0, Dst: 9}}},
		{Flows: []FlowSpec{{Src: 0, Dst: 1, Rate: 1.5}}},
	}
	for _, fs := range bad {
		fs := fs
		if err := (Spec{Experiment: "incast", Fabric: &fs}).Validate(); err == nil {
			t.Errorf("Validate accepted bad fabric %+v", fs)
		}
	}
	if err := (Spec{Experiment: "incast"}).Validate(); err != nil {
		t.Errorf("Validate rejected the default incast spec: %v", err)
	}
}

func TestSpecTasksIncast(t *testing.T) {
	if got := SpecTasks(Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 3}}); got != 2 {
		t.Errorf("SpecTasks(healthy, hosts=3) = %d, want 2", got)
	}
	withFaults := Spec{Experiment: "incast", Fabric: &FabricSpec{Hosts: 3},
		Faults: []fault.Window{{Kind: fault.PauseStorm, StartNs: 1000, DurationNs: 1000}}}
	if got := SpecTasks(withFaults); got != 6 {
		t.Errorf("SpecTasks(faulted, hosts=3) = %d, want 6", got)
	}
}

// --- Determinism (the fabric inherits the sweep guarantees) -------------

func incastDetSpec() Spec {
	return Spec{Experiment: "incast", WarmupNs: 2_000, WindowNs: 6_000,
		Fabric: &FabricSpec{Hosts: 4, Incast: 2}}
}

// The canonical JSON envelope of a fabric run must be byte-identical serial
// vs parallel — the same guarantee every single-host sweep carries.
func TestIncastRunSpecJSONSerialParallel(t *testing.T) {
	serial, err := RunSpecJSON(incastDetSpec(), detOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSpecJSON(incastDetSpec(), detOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("incast at Parallelism=8 is not byte-identical to serial\nserial:   %s\nparallel: %s",
			serial, parallel)
	}
}

// Auditing observes without perturbing: byte-identical output on or off.
func TestIncastRunSpecJSONAuditOnOff(t *testing.T) {
	on := detOptions(2)
	on.Audit = true
	off := detOptions(2)
	off.Audit = false
	a, err := RunSpecJSON(incastDetSpec(), on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpecJSON(incastDetSpec(), off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("audit changed incast output\non:  %s\noff: %s", a, b)
	}
}

// A non-empty schedule adds a faulted twin per degree, faultsweep-style.
func TestIncastFaultedTwinShape(t *testing.T) {
	opt := detOptions(4)
	opt.Warmup = 1 * sim.Microsecond
	opt.Window = 4 * sim.Microsecond
	sched := fault.Schedule{{Kind: fault.PauseStorm, StartNs: 2_000, DurationNs: 1_500}}
	s := RunIncast(FabricSpec{Hosts: 3}, 1, sched, opt)
	if len(s.Healthy) != 2 || len(s.Faulted) != 2 {
		t.Fatalf("healthy/faulted = %d/%d points, want 2/2", len(s.Healthy), len(s.Faulted))
	}
	for i := range s.Healthy {
		if s.Healthy[i].Senders != i+1 || s.Faulted[i].Senders != i+1 {
			t.Errorf("point %d: senders healthy=%d faulted=%d, want %d",
				i, s.Healthy[i].Senders, s.Faulted[i].Senders, i+1)
		}
	}
}

// --- Short tier: a sub-second audited fabric run ------------------------

func TestIncastShortTier(t *testing.T) {
	opt := detOptions(1)
	opt.Audit = true
	opt.Warmup = 1 * sim.Microsecond
	opt.Window = 3 * sim.Microsecond
	s := RunIncast(FabricSpec{Hosts: 2}, 1, nil, opt)
	if len(s.Healthy) != 1 {
		t.Fatalf("got %d points, want 1", len(s.Healthy))
	}
	p := s.Healthy[0]
	if p.ReceiverBW() <= 0 {
		t.Errorf("receiver delivered nothing (%.2f GB/s)", p.ReceiverBW()/1e9)
	}
	if p.AggTxBW() <= 0 {
		t.Errorf("senders emitted nothing (%.2f GB/s)", p.AggTxBW()/1e9)
	}
}

// --- Golden render/CSV output -------------------------------------------

// fixedIncastSweep is a synthetic two-degree sweep with a faulted twin,
// spreading distinct values over every column the renderers read.
func fixedIncastSweep() *IncastSweep {
	mk := func(m int, scale float64) IncastPoint {
		p := IncastPoint{
			Senders:     m,
			TxBW:        []float64{0, 12.26e9 * scale, 6.1e9, 0},
			TxPause:     []float64{0, 0.25 * scale, 0.5, 0},
			RxBW:        []float64{9.5e9 * scale, 0, 0, 0},
			RxPause:     []float64{0.125 * scale, 0, 0, 0},
			RxQueueOcc:  590.5 * scale,
			SwEgressOcc: 450.25,
		}
		p.Recv = fixedMeasure(scale)
		return p
	}
	return &IncastSweep{
		Hosts: 4, RecvCores: 4, FaultHost: 1,
		Healthy: []IncastPoint{mk(1, 1), mk(2, 1.25)},
		Faulted: []IncastPoint{mk(1, 0.75), mk(2, 1)},
	}
}

func TestGoldenRenderIncast(t *testing.T) {
	var buf bytes.Buffer
	RenderIncast(&buf, fixedIncastSweep())
	checkGolden(t, "render_incast.golden", buf.Bytes())
}

func TestGoldenIncastCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := IncastCSV(fixedIncastSweep()).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "healthy,1,") || !strings.Contains(got, "faulted,2,") {
		t.Fatalf("CSV missing variant rows:\n%s", got)
	}
	checkGolden(t, "incast_csv.golden", buf.Bytes())
}
