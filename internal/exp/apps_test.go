package exp

import (
	"testing"

	"repro/internal/periph"
	"repro/internal/sim"
)

const appWin = 60 * sim.Microsecond

// appOpt returns the defaults at the shortened app-figure window.
func appOpt() Options {
	opt := Defaults()
	opt.Window = appWin
	return opt
}

// Fig 1 shape: on Ice Lake with DDIO on, Redis and GAPBS degrade while FIO
// is unaffected and memory bandwidth is far from saturated.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res := RunFig1(appOpt())
	for _, p := range append(append([]AppPoint{}, res.Redis...), res.GAPBS...) {
		t.Logf("%v | appIso=%.2e appCo=%.2e p2m=%.1fGB/s memC2M=%.1f memP2M=%.1f",
			p, p.AppIso, p.AppCo, p.P2MCo/1e9, p.Co.MemC2M/1e9, p.Co.MemP2M/1e9)
		if d := p.AppDegradation(); d < 1.03 {
			t.Errorf("%v: app degradation %.2fx, want visible degradation", p, d)
		}
		if d := p.P2MDegradation(); d > 1.1 {
			t.Errorf("%v: P2M degraded %.2fx; Fig 1 leaves FIO intact", p, d)
		}
	}
	// Memory bandwidth far from saturation at low core counts (Fig 1c/1d).
	low := res.Redis[0]
	util := (low.Co.MemC2M + low.Co.MemP2M) / 102.4e9
	if util > 0.75 {
		t.Errorf("Fig1 low-core utilization %.0f%%, want below saturation", util*100)
	}
	// GAPBS (more memory-bound) degrades more than Redis at matched cores.
	if res.GAPBS[1].AppDegradation() < res.Redis[1].AppDegradation() {
		t.Errorf("GAPBS (%.2fx) should degrade at least as much as Redis (%.2fx)",
			res.GAPBS[1].AppDegradation(), res.Redis[1].AppDegradation())
	}
}

// Fig 2 shape: DDIO on worsens C2M degradation for the P2M-Write workload.
func TestFig2DDIOWorsensDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res := RunFig2(appOpt())
	for i := range res.GAPBSOn {
		on, off := res.GAPBSOn[i], res.GAPBSOff[i]
		t.Logf("GAPBS cores=%d: ddio-on %.2fx ddio-off %.2fx", on.Cores, on.AppDegradation(), off.AppDegradation())
		if on.AppDegradation() < off.AppDegradation()-0.03 {
			t.Errorf("cores=%d: DDIO on (%.2fx) should not be better than off (%.2fx)",
				on.Cores, on.AppDegradation(), off.AppDegradation())
		}
	}
	// At least one point must show a clear DDIO penalty.
	worse := false
	for i := range res.GAPBSOn {
		if res.GAPBSOn[i].AppDegradation() > res.GAPBSOff[i].AppDegradation()+0.05 {
			worse = true
		}
	}
	if !worse {
		t.Errorf("DDIO on never measurably worse; Fig 2's effect missing")
	}
}

// Appendix B: P2M-Read colocations show identical degradation with DDIO
// on/off (reads do not allocate, so no eviction pressure).
func TestFig16DDIONeutralForP2MReads(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res := RunFig16(appOpt())
	for i := range res.GAPBSOn {
		on, off := res.GAPBSOn[i], res.GAPBSOff[i]
		t.Logf("GAPBS+P2MRead cores=%d: on=%.2fx off=%.2fx", on.Cores, on.AppDegradation(), off.AppDegradation())
		diff := on.AppDegradation() - off.AppDegradation()
		if diff > 0.08 || diff < -0.08 {
			t.Errorf("cores=%d: DDIO should be neutral for P2M reads (on %.2fx vs off %.2fx)",
				on.Cores, on.AppDegradation(), off.AppDegradation())
		}
	}
}

// Redis-Write is more memory-intensive than Redis-Read: for a fixed P2M
// workload it degrades at least as much (Appendix B trend).
func TestRedisWriteDegradesMore(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	opt.Window = appWin
	rd := RunAppColocation(RedisRead, periph.DMAWrite, []int{4}, opt)
	wr := RunAppColocation(RedisWrite, periph.DMAWrite, []int{4}, opt)
	t.Logf("read %.3fx write %.3fx", rd[0].AppDegradation(), wr[0].AppDegradation())
	if wr[0].AppDegradation() < rd[0].AppDegradation()-0.02 {
		t.Errorf("Redis-Write (%.2fx) should degrade at least as much as Redis-Read (%.2fx)",
			wr[0].AppDegradation(), rd[0].AppDegradation())
	}
}

func TestAppStrings(t *testing.T) {
	if RedisRead.String() != "Redis-Read" || GAPBSBC.String() != "GAPBS-BC" {
		t.Fatalf("app names wrong")
	}
}
