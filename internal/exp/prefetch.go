package exp

import (
	"repro/internal/cpu"
	"repro/internal/periph"
	"repro/internal/workload"
)

// PrefetchStudy reproduces the paper's prefetching claim (§2.2): when memory
// bandwidth is not saturated, prefetching improves sequential C2M throughput
// in both the isolated and colocated cases, but the degradation *ratio*
// stays roughly the same.
type PrefetchStudy struct {
	Cores int
	// Isolated and colocated C2M bandwidth, prefetch off/on (bytes/s).
	IsoOff, IsoOn float64
	CoOff, CoOn   float64
}

// DegradationOff reports iso/colocated with prefetching off.
func (s PrefetchStudy) DegradationOff() float64 { return degradation(s.IsoOff, s.CoOff) }

// DegradationOn reports iso/colocated with prefetching on.
func (s PrefetchStudy) DegradationOn() float64 { return degradation(s.IsoOn, s.CoOn) }

// RunPrefetchStudy measures quadrant-1 style colocation with the hardware
// prefetcher off and on.
func RunPrefetchStudy(cores int, opt Options) PrefetchStudy {
	s := PrefetchStudy{Cores: cores}
	run := func(pf *cpu.Prefetcher, colocated bool) float64 {
		cfg := opt.Preset()
		cfg.DDIO.Enabled = opt.DDIO
		cfg.Core.Prefetch = pf
		cfg.Audit = opt.auditConfig()
		h := hostFromConfig(cfg)
		for i := 0; i < cores; i++ {
			h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		}
		if colocated {
			h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
		}
		h.Run(opt.Warmup, opt.Window)
		return h.C2MBW()
	}
	s.IsoOff = run(nil, false)
	s.CoOff = run(nil, true)
	s.IsoOn = run(cpu.DefaultPrefetcher(), false)
	s.CoOn = run(cpu.DefaultPrefetcher(), true)
	return s
}
