package exp

import (
	"math"
	"testing"
)

// Fig 29: the formula captures the memory app and the network app's C2M/P2M
// halves within the paper's error envelope (the paper reports <10% except
// one high-loss point; we allow a simulated-substrate margin).
func TestFig29DCTCPFormula(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	read, rw := RunFig29(Defaults())
	for _, pts := range [][]DCTCPFormulaPoint{read, rw} {
		for _, f := range pts {
			t.Logf("rw=%v cores=%d: mem err=%.1f%% netC2M err=%.1f%% netP2M err=%.1f%%",
				f.ReadWrite, f.C2MCores, f.MemErrPct, f.NetC2MErrPct, f.NetP2MErrPct)
			if math.Abs(f.MemErrPct) > 25 {
				t.Errorf("rw=%v cores=%d: memory app error %.1f%%", f.ReadWrite, f.C2MCores, f.MemErrPct)
			}
			if math.Abs(f.NetC2MErrPct) > 30 {
				t.Errorf("rw=%v cores=%d: network C2M error %.1f%%", f.ReadWrite, f.C2MCores, f.NetC2MErrPct)
			}
			if math.Abs(f.NetP2MErrPct) > 40 {
				t.Errorf("rw=%v cores=%d: network P2M error %.1f%%", f.ReadWrite, f.C2MCores, f.NetP2MErrPct)
			}
		}
	}
}

// Fig 27: the formula on the RDMA case study.
func TestFig27RDMAFormula(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	opt := Defaults()
	for _, q := range []Quadrant{Q1, Q3} {
		pts := RunRDMAQuadrant(q, []int{1, 4, 6}, opt)
		for _, p := range pts {
			f := ValidateFormula(p.QuadrantPoint, opt)
			t.Logf("RDMA %v cores=%d: C2M err=%.1f%% (corr %.1f%%) P2M err=%.1f%%",
				q, p.Cores, f.C2MErrorPct, f.C2MErrorCHAPct, f.P2MErrorPct)
			err := math.Abs(f.C2MErrorPct)
			if c := math.Abs(f.C2MErrorCHAPct); c < err {
				err = c
			}
			if err > 20 {
				t.Errorf("RDMA %v cores=%d: C2M error %.1f%%", q, p.Cores, err)
			}
			if math.Abs(f.P2MErrorPct) > 30 {
				t.Errorf("RDMA %v cores=%d: P2M error %.1f%%", q, p.Cores, f.P2MErrorPct)
			}
		}
	}
}
