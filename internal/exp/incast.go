package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/audit"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FlowSpec is one entry of a fabric flow matrix: a unidirectional stream
// from host Src to host Dst at Rate (fraction of NIC line rate in (0, 1];
// 0 means full rate).
type FlowSpec struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Rate float64 `json:"rate,omitempty"`
}

// FabricSpec is the Spec's fabric section: rack shape and traffic pattern
// for multi-host experiments. Like every other spec knob it normalizes to a
// canonical form so fabric scenarios stay content-addressable.
type FabricSpec struct {
	// Hosts is the number of hosts on the ToR (default 4).
	Hosts int `json:"hosts,omitempty"`
	// Incast is the maximum incast degree: the experiment sweeps 1..Incast
	// senders converging on host 0. Default (and cap) is Hosts-1. Ignored —
	// and cleared — when Flows is set.
	Incast int `json:"incast,omitempty"`
	// Degree, when nonzero, restricts the run to the single given incast
	// degree instead of sweeping 1..Incast. This is the sub-spec form
	// Spec.Points emits so a fleet coordinator can shard an incast sweep
	// point-by-point; each degree is an independent simulation, so the
	// single-degree run is bit-identical to the matching point of the full
	// sweep. Mutually exclusive with Flows; clears Incast when set.
	Degree int `json:"degree,omitempty"`
	// FaultHost selects which host the spec's fault schedule targets.
	FaultHost int `json:"fault_host,omitempty"`
	// Flows, when non-empty, replaces the incast pattern with an explicit
	// flow matrix, run as a single point.
	Flows []FlowSpec `json:"flows,omitempty"`
	// Partitioned selects the conservative-parallel rack (fabric.NewParallel):
	// every host on its own engine, advanced in ToR-lookahead rounds. It is a
	// different — deterministic, but not bit-equal — discretization than the
	// shared-engine rack, so it is a spec knob (part of the cache key), while
	// the goroutine count driving it (Options.FabricWorkers) is execution-only:
	// partitioned results are byte-identical at any worker count. Partitioned
	// racks do not support fault injection; Validate rejects the combination.
	Partitioned bool `json:"partitioned,omitempty"`
}

// MaxFabricHosts bounds rack size; a ToR has finitely many ports.
const MaxFabricHosts = 64

// Normalized returns the canonical fabric section: defaults filled, the
// incast degree clamped to the host count, flows sorted with explicit
// rates. Ignored knobs are cleared so equivalent specs hash equal.
func (fs FabricSpec) Normalized() FabricSpec {
	n := FabricSpec{Hosts: fs.Hosts, FaultHost: fs.FaultHost, Partitioned: fs.Partitioned}
	if n.Hosts == 0 {
		n.Hosts = 4
	}
	if len(fs.Flows) > 0 {
		n.Flows = make([]FlowSpec, len(fs.Flows))
		for i, fl := range fs.Flows {
			if fl.Rate == 0 {
				fl.Rate = 1
			}
			n.Flows[i] = fl
		}
		sort.SliceStable(n.Flows, func(i, j int) bool {
			a, b := n.Flows[i], n.Flows[j]
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			if a.Dst != b.Dst {
				return a.Dst < b.Dst
			}
			return a.Rate < b.Rate
		})
		return n
	}
	if fs.Degree > 0 {
		n.Degree = fs.Degree
		if n.Degree > n.Hosts-1 {
			n.Degree = n.Hosts - 1
		}
		return n
	}
	n.Incast = fs.Incast
	if n.Incast == 0 || n.Incast > n.Hosts-1 {
		n.Incast = n.Hosts - 1
	}
	return n
}

// Validate checks the fabric section (normalized or not).
func (fs FabricSpec) Validate() error {
	hosts := fs.Hosts
	if hosts == 0 {
		hosts = 4
	}
	if hosts < 2 || hosts > MaxFabricHosts {
		return fmt.Errorf("fabric: hosts %d outside [2, %d]", hosts, MaxFabricHosts)
	}
	if fs.Incast < 0 {
		return fmt.Errorf("fabric: incast %d < 0", fs.Incast)
	}
	if fs.Degree < 0 {
		return fmt.Errorf("fabric: degree %d < 0", fs.Degree)
	}
	if fs.Degree > 0 && len(fs.Flows) > 0 {
		return fmt.Errorf("fabric: degree and flows are mutually exclusive")
	}
	if fs.FaultHost < 0 || fs.FaultHost >= hosts {
		return fmt.Errorf("fabric: fault_host %d outside [0, %d)", fs.FaultHost, hosts)
	}
	if len(fs.Flows) > MaxFabricHosts*MaxFabricHosts {
		return fmt.Errorf("fabric: %d flows exceed the limit of %d", len(fs.Flows), MaxFabricHosts*MaxFabricHosts)
	}
	for i, fl := range fs.Flows {
		if fl.Src < 0 || fl.Src >= hosts || fl.Dst < 0 || fl.Dst >= hosts {
			return fmt.Errorf("fabric: flow[%d] endpoints (%d -> %d) outside [0, %d)", i, fl.Src, fl.Dst, hosts)
		}
		if fl.Src == fl.Dst {
			return fmt.Errorf("fabric: flow[%d] source equals destination (%d)", i, fl.Src)
		}
		if fl.Rate < 0 || fl.Rate > 1 {
			return fmt.Errorf("fabric: flow[%d] rate %v outside (0, 1]", i, fl.Rate)
		}
	}
	return nil
}

// degrees lists the sweep points: incast degrees 1..Incast, or a single
// point when Degree pins one or an explicit flow matrix is given.
func (fs FabricSpec) degrees() []int {
	if fs.Degree > 0 {
		return []int{fs.Degree}
	}
	if len(fs.Flows) > 0 {
		srcs := map[int]bool{}
		for _, fl := range fs.Flows {
			srcs[fl.Src] = true
		}
		return []int{len(srcs)}
	}
	out := make([]int, fs.Incast)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// IncastPoint is one fabric run: M senders (or a flow matrix) against a
// receiver (host 0) running recvCores of colocated C2M read+write traffic so
// that its host network — not the ToR — is the narrowest element.
type IncastPoint struct {
	// Senders is the incast degree (distinct sources for a flow matrix).
	Senders int
	// Per-host NIC measurements, indexed by host.
	TxBW    []float64 // emitted wire bandwidth (bytes/s)
	TxPause []float64 // fraction of the window the ToR held the host's TX paused
	RxBW    []float64 // delivered DMA bandwidth (bytes/s)
	RxPause []float64 // fraction the host's NIC held the ToR egress paused
	// RxQueueOcc is the receiver NIC's average RX buffer occupancy (lines).
	RxQueueOcc float64
	// SwEgressOcc is the average egress-queue occupancy at the receiver's
	// switch port (lines) — the congestion the receiver's backpressure
	// pushes into the fabric.
	SwEgressOcc float64
	// Recv is the receiver host's full probe snapshot.
	Recv Measure
}

// ReceiverBW reports the receiver's delivered fabric bandwidth (bytes/s).
func (p IncastPoint) ReceiverBW() float64 { return p.RxBW[0] }

// ReceiverPauseFrac reports the fraction of the window the receiver's NIC
// held PFC pause asserted toward the switch.
func (p IncastPoint) ReceiverPauseFrac() float64 { return p.RxPause[0] }

// AggTxBW sums sender wire bandwidth (bytes/s).
func (p IncastPoint) AggTxBW() float64 {
	var sum float64
	for _, v := range p.TxBW {
		sum += v
	}
	return sum
}

// MaxSenderPause reports the largest per-sender TX pause fraction.
func (p IncastPoint) MaxSenderPause() float64 {
	var max float64
	for _, v := range p.TxPause {
		if v > max {
			max = v
		}
	}
	return max
}

// IncastSweep is the incast experiment result: one point per incast degree,
// healthy, plus a faulted twin of every point when a schedule is given.
type IncastSweep struct {
	Hosts     int
	RecvCores int
	FaultHost int
	Schedule  fault.Schedule
	Healthy   []IncastPoint
	Faulted   []IncastPoint
}

// rack is the common surface of the two fabric execution modes: the
// shared-engine Fabric and the conservative-parallel Parallel.
type rack interface {
	AddFlow(src, dst int, rate float64)
	AddIncast(recv, senders int)
	Run(warmup, window sim.Time)
}

// runIncastPoint builds one rack on its own engine(s) and measures it.
func runIncastPoint(fs FabricSpec, senders, recvCores int, sched fault.Schedule, opt Options) IncastPoint {
	cfg := fabric.DefaultConfig(fs.Hosts)
	hostCfg := opt.Preset()
	hostCfg.DDIO.Enabled = opt.DDIO
	hostCfg.DDIO.ScrambleEvictions = opt.DDIO
	cfg.Host = hostCfg
	cfg.Audit = opt.auditConfig()
	cfg.Faults = sched
	cfg.FaultHost = fs.FaultHost
	var (
		f     rack
		hosts []*host.Host
		nics  []*fabric.NIC
		sw    *fabric.Switch
	)
	if fs.Partitioned {
		// The partitioned rack has no rack-wide observer, so it supports
		// neither fault injection (NewParallel panics; Spec.Validate rejects
		// the combination upstream) nor auditing (dropped here: auditing is
		// execution-only, so ignoring it cannot change results).
		cfg.Audit = audit.Config{}
		pf := fabric.NewParallel(cfg, opt.FabricWorkers)
		f, hosts, nics, sw = pf, pf.Hosts, pf.NICs, pf.Switch
	} else {
		sf := fabric.New(cfg)
		f, hosts, nics, sw = sf, sf.Hosts, sf.NICs, sf.Switch
	}
	if len(fs.Flows) > 0 {
		for _, fl := range fs.Flows {
			f.AddFlow(fl.Src, fl.Dst, fl.Rate)
		}
	} else {
		f.AddIncast(0, senders)
	}
	// The colocated C2M read+write load is what pushes the receiver's DRAM
	// into the red regime (§2.2): with enough cores the WPQ backpressure
	// chain degrades P2M writes below wire rate, and the receiver — not the
	// ToR — becomes the incast bottleneck.
	for i := 0; i < recvCores; i++ {
		base := hosts[0].Region(1 << 30)
		hosts[0].AddCore(workload.NewSeqReadWrite(base, 1<<30))
	}
	f.Run(opt.Warmup, opt.Window)
	p := IncastPoint{
		Senders:     senders,
		RxQueueOcc:  nics[0].RxQueueOcc.Avg(),
		SwEgressOcc: sw.PortOutOccAvg(0),
	}
	for _, n := range nics {
		p.TxBW = append(p.TxBW, n.TxBytesPerSec())
		p.TxPause = append(p.TxPause, n.TxPauseFrac.Frac())
		p.RxBW = append(p.RxBW, n.RxBytesPerSec())
		p.RxPause = append(p.RxPause, n.RxPauseFrac.Frac())
	}
	p.Recv = snapshot(hosts[0])
	return p
}

// RunIncast runs the rack-scale incast sweep: for each degree m in
// 1..fab.Incast, m senders stream at line rate into host 0, which runs
// recvCores of colocated C2M traffic. A non-empty schedule adds a faulted
// twin of every point (the schedule applied to host fab.FaultHost and its
// NIC), following the faultsweep pairing. Every point builds its own fabric
// and engine on the options' pool, so results are bit-identical at any
// parallelism.
func RunIncast(fab FabricSpec, recvCores int, sched fault.Schedule, opt Options) *IncastSweep {
	fab = fab.Normalized()
	sched = sched.Normalized()
	degrees := fab.degrees()
	out := &IncastSweep{Hosts: fab.Hosts, RecvCores: recvCores, FaultHost: fab.FaultHost, Schedule: sched}
	if len(sched) == 0 {
		out.Healthy = pmap(opt, len(degrees), func(i int) IncastPoint {
			return runIncastPoint(fab, degrees[i], recvCores, nil, opt)
		})
		return out
	}
	pdo(opt,
		func() {
			out.Healthy = pmap(opt, len(degrees), func(i int) IncastPoint {
				return runIncastPoint(fab, degrees[i], recvCores, nil, opt)
			})
		},
		func() {
			out.Faulted = pmap(opt, len(degrees), func(i int) IncastPoint {
				return runIncastPoint(fab, degrees[i], recvCores, sched, opt)
			})
		},
	)
	return out
}

// incastTable renders one side of the sweep.
func incastTable(title string, pts []IncastPoint) *Table {
	t := &Table{
		Title: title,
		Header: []string{"senders", "rx GB/s", "rx pause", "rxQ occ", "sw egr occ",
			"agg tx GB/s", "max snd pause", "C2M GB/s", "WPQ full"},
	}
	for _, p := range pts {
		t.Add(p.Senders, gb(p.ReceiverBW()), p.ReceiverPauseFrac(), p.RxQueueOcc,
			p.SwEgressOcc, gb(p.AggTxBW()), p.MaxSenderPause(),
			gb(p.Recv.C2MBW), p.Recv.WPQFullFrac)
	}
	return t
}

// RenderIncast renders the incast sweep, healthy then (if present) faulted.
func RenderIncast(w io.Writer, s *IncastSweep) {
	base := fmt.Sprintf("Rack incast (%d hosts, %d rx cores)", s.Hosts, s.RecvCores)
	incastTable(base, s.Healthy).Render(w)
	if len(s.Faulted) > 0 {
		incastTable(base+fmt.Sprintf(" faulted (host %d)", s.FaultHost), s.Faulted).Render(w)
	}
}

// IncastCSV renders the sweep as one CSV table with a variant column.
func IncastCSV(s *IncastSweep) *Table {
	t := &Table{
		Title: "incast",
		Header: []string{"variant", "senders", "rx_gbps", "rx_pause_frac", "rxq_occ",
			"sw_egress_occ", "agg_tx_gbps", "max_sender_pause", "c2m_gbps", "wpq_full_frac"},
	}
	add := func(variant string, pts []IncastPoint) {
		for _, p := range pts {
			t.Add(variant, p.Senders, p.ReceiverBW()/1e9, p.ReceiverPauseFrac(), p.RxQueueOcc,
				p.SwEgressOcc, p.AggTxBW()/1e9, p.MaxSenderPause(),
				p.Recv.C2MBW/1e9, p.Recv.WPQFullFrac)
		}
	}
	add("healthy", s.Healthy)
	add("faulted", s.Faulted)
	return t
}
