package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/fault"
)

// Fidelity participates in content addressing exactly as specified: absent
// and "sim" are the same address (no existing store entry moves), analytic
// is a distinct address, and — because the model reads no clock — every
// (warmup, window) variant of an analytic spec collapses onto one address.
func TestFidelityHashInvariance(t *testing.T) {
	base := Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{2}, WarmupNs: 1000, WindowNs: 2000}
	hash := func(s Spec) string {
		t.Helper()
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("hash %+v: %v", s, err)
		}
		return h
	}

	absent := hash(base)
	sim := base
	sim.Fidelity = FidelitySim
	if got := hash(sim); got != absent {
		t.Fatalf("fidelity \"sim\" hash %s != absent-fidelity hash %s: legacy addresses moved", got, absent)
	}
	cb, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sim.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, cs) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", cb, cs)
	}
	if bytes.Contains(cb, []byte("fidelity")) {
		t.Fatalf("canonical sim spec leaks the fidelity field: %s", cb)
	}

	an := base
	an.Fidelity = FidelityAnalytic
	anHash := hash(an)
	if anHash == absent {
		t.Fatal("analytic spec hashes like the sim spec: the tiers would collide in the store")
	}
	anOtherWindow := an
	anOtherWindow.WarmupNs, anOtherWindow.WindowNs = 77777, 999999
	if got := hash(anOtherWindow); got != anHash {
		t.Fatalf("analytic hash varies with the unread window knobs: %s != %s", got, anHash)
	}

	bad := base
	bad.Fidelity = "psychic"
	if err := bad.Normalized().Validate(); err == nil {
		t.Fatal("unknown fidelity value validated")
	}
}

// The analytic tier answers exactly the experiments with a model mapping
// and rejects the rest with a typed UnsupportedError (hostnetd's 422).
func TestRunSpecAnalyticSupportMatrix(t *testing.T) {
	supported := []Spec{
		{Experiment: "quadrant", Quadrant: 2, Cores: []int{1, 3}, Fidelity: FidelityAnalytic},
		{Experiment: "rdma", Quadrant: 4, Cores: []int{2}, Fidelity: FidelityAnalytic},
		{Experiment: "hostcc", Fidelity: FidelityAnalytic},
	}
	wantPoints := []int{2, 1, 1}
	for i, spec := range supported {
		out, err := RunSpec(spec, Defaults())
		if err != nil {
			t.Fatalf("%s: %v", spec.Experiment, err)
		}
		pts, ok := out.([]AnalyticPoint)
		if !ok {
			t.Fatalf("%s: result is %T, want []AnalyticPoint", spec.Experiment, out)
		}
		if len(pts) != wantPoints[i] {
			t.Fatalf("%s: %d points, want %d", spec.Experiment, len(pts), wantPoints[i])
		}
		for _, p := range pts {
			if p.Co.C2MBytesPerSec <= 0 || math.IsNaN(p.C2MDegradation()) {
				t.Fatalf("%s: degenerate point %+v", spec.Experiment, p)
			}
		}
	}

	unsupported := []Spec{
		{Experiment: "fig3", Fidelity: FidelityAnalytic},
		{Experiment: "incast", Fidelity: FidelityAnalytic},
		{Experiment: "faultsweep", Fidelity: FidelityAnalytic},
		{Experiment: "quadrant", DDIO: true, Fidelity: FidelityAnalytic},
		{Experiment: "quadrant", Preset: "icelake", Fidelity: FidelityAnalytic},
		{Experiment: "quadrant", Fidelity: FidelityAnalytic,
			Faults: []fault.Window{{Kind: fault.PauseStorm, StartNs: 1000, DurationNs: 1000}}},
	}
	for _, spec := range unsupported {
		_, err := RunSpec(spec, Defaults())
		var unsup *analytic.UnsupportedError
		if !errors.As(err, &unsup) {
			t.Fatalf("%s (ddio=%v preset=%q faults=%d): err %v, want *analytic.UnsupportedError",
				spec.Experiment, spec.DDIO, spec.Preset, len(spec.Faults), err)
		}
	}

	// crossval inherently needs the simulator half; analytic fidelity on it
	// is a validation error, not a 422 (the spec is self-contradictory).
	cv := Spec{Experiment: "crossval", Fidelity: FidelityAnalytic}
	if err := cv.Normalized().Validate(); err == nil {
		t.Fatal("crossval with analytic fidelity validated")
	}
}

// The crossval experiment rides the standard envelope machinery: its
// result round-trips through RunSpecJSON, decodes via NewResultValue, and
// its per-core shards merge back byte-identically (the fleet contract).
func TestCrossvalRoundTripAndMerge(t *testing.T) {
	spec := Spec{Experiment: "crossval", Quadrant: 1, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000}
	parent, err := RunSpecJSON(spec, Defaults())
	if err != nil {
		t.Fatalf("crossval run: %v", err)
	}

	var env struct {
		Spec   Spec            `json:"spec"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(parent, &env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	out := NewResultValue("crossval")
	cv, ok := out.(*CrossvalResult)
	if !ok {
		t.Fatalf("NewResultValue(crossval) = %T, want *CrossvalResult", out)
	}
	if err := json.Unmarshal(env.Result, cv); err != nil {
		t.Fatalf("decoding payload: %v", err)
	}
	if len(cv.Points) != 2 || cv.Points[0].Cores != 1 || cv.Points[1].Cores != 2 {
		t.Fatalf("payload points: %+v", cv.Points)
	}
	dec, err := DecodeCrossval(parent)
	if err != nil || len(dec.Points) != 2 {
		t.Fatalf("DecodeCrossval: %v (%+v)", err, dec)
	}

	subs := spec.Points()
	if len(subs) != 2 {
		t.Fatalf("crossval Points() = %d sub-specs, want 2", len(subs))
	}
	parts := make([][]byte, len(subs))
	for i, sub := range subs {
		if parts[i], err = RunSpecJSON(sub, Defaults()); err != nil {
			t.Fatalf("sub %d: %v", i, err)
		}
	}
	merged, err := MergePointResults(spec, parts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(merged, parent) {
		t.Fatalf("merged crossval differs from single-node run:\n got %s\nwant %s", merged, parent)
	}
}

// Analytic specs never shard: the answer is microseconds of arithmetic.
func TestAnalyticSpecDoesNotSplit(t *testing.T) {
	spec := Spec{Experiment: "quadrant", Cores: []int{1, 2, 3}, Fidelity: FidelityAnalytic}
	if pts := spec.Points(); pts != nil {
		t.Fatalf("analytic spec split into %d sub-specs, want none", len(pts))
	}
	if got := SpecTasks(spec.Normalized()); got != 0 {
		t.Fatalf("SpecTasks(analytic) = %d, want 0 (no sweep-progress accounting)", got)
	}
}

// The CI crossval tier: on the quadrant-1 sweep at the paper's default
// windows, the analytic tier's colocated-C2M-bandwidth error stays inside
// the pinned envelope. Kept -short-friendly (three points, ~a second) so
// it runs under -race in CI.
func TestCrossvalEnvelopeQ1(t *testing.T) {
	cv, err := RunCrossval(Q1, []int{1, 2, 4}, Defaults())
	if err != nil {
		t.Fatalf("crossval: %v", err)
	}
	if len(cv.Points) != 3 {
		t.Fatalf("%d points, want 3", len(cv.Points))
	}
	for _, p := range cv.Points {
		t.Logf("cores=%d: sim %.1f GB/s, pred %.1f GB/s, err %+.1f%% (envelope ±%d%%)",
			p.Cores, p.SimC2MBytesPerSec/1e9, p.PredC2MBytesPerSec/1e9, p.BWErrPct, CrossvalEnvelopePct)
		if math.Abs(p.BWErrPct) > CrossvalEnvelopePct {
			t.Errorf("cores=%d: error %.1f%% outside the ±%d%% envelope", p.Cores, p.BWErrPct, CrossvalEnvelopePct)
		}
	}
}
