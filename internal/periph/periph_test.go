package periph

import (
	"testing"

	"repro/internal/cha"
	"repro/internal/dram"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
)

func testRig() (*sim.Engine, *iio.IIO) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mc := dram.New(eng, dram.DefaultConfig(), mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	return eng, iio.New(eng, iio.DefaultConfig(), ch)
}

func TestProbeRequestCompletes(t *testing.T) {
	eng, io := testRig()
	cfg := ProbeConfig(DMAWrite, 0)
	cfg.DeviceDelay = 1 * sim.Microsecond
	s := New(eng, cfg, io, 0)
	s.Start(0)
	eng.RunUntil(100 * sim.Microsecond)
	if s.Stats().Requests.Count() == 0 {
		t.Fatalf("no probe requests completed")
	}
	// 4KB requests: 64 lines each.
	reqs := s.Stats().Requests.Count()
	lines := s.Stats().Lines.Count()
	if lines < reqs*64 {
		t.Fatalf("lines %d < 64 * requests %d", lines, reqs)
	}
}

func TestQueueDepth1IsSerial(t *testing.T) {
	eng, io := testRig()
	cfg := ProbeConfig(DMAWrite, 0)
	cfg.DeviceDelay = 10 * sim.Microsecond
	s := New(eng, cfg, io, 0)
	s.Start(0)
	eng.RunUntil(105 * sim.Microsecond)
	// Each request takes >= 10us device delay: at most ~10 complete in 105us.
	if n := s.Stats().Requests.Count(); n > 11 {
		t.Fatalf("QD1 completed %d requests in 105us; serialization broken", n)
	}
}

func TestBulkWriteSaturatesLink(t *testing.T) {
	eng, io := testRig()
	s := New(eng, BulkConfig(DMAWrite, 0), io, 0)
	s.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	s.Stats().Reset()
	io.Stats().Reset()
	eng.RunUntil(120 * sim.Microsecond)
	bw := s.Stats().BytesPerSec()
	if bw < 13e9 || bw > 14.5e9 {
		t.Fatalf("bulk DMA-write bw %.2f GB/s, want ~14", bw/1e9)
	}
}

func TestBulkReadSaturatesLink(t *testing.T) {
	eng, io := testRig()
	s := New(eng, BulkConfig(DMARead, 0), io, 0)
	s.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	s.Stats().Reset()
	eng.RunUntil(120 * sim.Microsecond)
	bw := s.Stats().BytesPerSec()
	if bw < 13e9 || bw > 14.5e9 {
		t.Fatalf("bulk DMA-read bw %.2f GB/s, want ~14", bw/1e9)
	}
}

func TestSequentialAddressesWrap(t *testing.T) {
	eng, io := testRig()
	cfg := Config{
		Dir: DMAWrite, RequestBytes: 4096, QueueDepth: 1,
		DeviceDelay: 100 * sim.Nanosecond, BufBase: 1 << 30, BufBytes: 8192,
	}
	s := New(eng, cfg, io, 0)
	s.Start(0)
	eng.RunUntil(50 * sim.Microsecond)
	// The 8KB buffer wraps; the device must keep issuing past it.
	if s.Stats().Lines.Count() < 256 {
		t.Fatalf("only %d lines with a wrapping buffer", s.Stats().Lines.Count())
	}
}

func TestTwoDevicesShareLink(t *testing.T) {
	eng, io := testRig()
	a := New(eng, BulkConfig(DMAWrite, 0), io, 0)
	b := New(eng, BulkConfig(DMAWrite, 4<<30), io, 1)
	a.Start(0)
	b.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	a.Stats().Reset()
	b.Stats().Reset()
	eng.RunUntil(120 * sim.Microsecond)
	total := a.Stats().BytesPerSec() + b.Stats().BytesPerSec()
	if total < 13e9 || total > 14.5e9 {
		t.Fatalf("two devices total %.2f GB/s, want link-bound ~14", total/1e9)
	}
	ratio := a.Stats().BytesPerSec() / total
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("unfair link share: %.2f", ratio)
	}
}

func TestIOPSAccounting(t *testing.T) {
	eng, io := testRig()
	cfg := ProbeConfig(DMAWrite, 0)
	cfg.DeviceDelay = 1 * sim.Microsecond
	s := New(eng, cfg, io, 0)
	s.Start(0)
	eng.RunUntil(sim.Millisecond)
	iops := s.Stats().IOPS()
	// ~1 request per (1us delay + ~transfer): several hundred thousand/s.
	if iops < 1e5 || iops > 1.5e6 {
		t.Fatalf("IOPS = %.0f out of plausible range", iops)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	eng, io := testRig()
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid config did not panic")
		}
	}()
	New(eng, Config{RequestBytes: 1, QueueDepth: 1}, io, 0)
}
