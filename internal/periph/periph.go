// Package periph models peripheral devices that generate P2M traffic
// through the IIO — in the paper's local setup, NVMe SSDs driven by FIO.
//
// A "storage read" workload makes the device DMA-write data into host memory
// (P2M-Write traffic); a "storage write" workload makes it DMA-read host
// memory (P2M-Read traffic). Requests are issued at cacheline granularity
// against the IIO credit pools, so device throughput emerges from credits,
// link rate, and domain latency exactly as in §4.
package periph

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Direction selects the storage workload's DMA direction.
type Direction uint8

const (
	// DMAWrite: storage reads -> device writes host memory (P2M-Write).
	DMAWrite Direction = iota
	// DMARead: storage writes -> device reads host memory (P2M-Read).
	DMARead
)

// Config describes one storage device workload (FIO semantics).
type Config struct {
	Dir          Direction
	RequestBytes int      // I/O request size (the paper uses 8 MB bulk, 4 KB probe)
	QueueDepth   int      // concurrent requests
	DeviceDelay  sim.Time // device-internal latency per request before DMA starts
	BufBase      mem.Addr // DMA target region base
	BufBytes     int64    // region size; requests walk it sequentially and wrap

	// Audit, when non-nil, receives the device's request-conservation
	// invariant.
	Audit *audit.Auditor
}

// BulkConfig returns the paper's bulk FIO workload: sequential 8 MB requests
// at a queue depth deep enough to saturate the PCIe link.
func BulkConfig(dir Direction, base mem.Addr) Config {
	return Config{
		Dir:          dir,
		RequestBytes: 8 << 20,
		QueueDepth:   4,
		DeviceDelay:  2 * sim.Microsecond,
		BufBase:      base,
		BufBytes:     1 << 30,
	}
}

// ProbeConfig returns the paper's low-load probe: 4 KB requests at queue
// depth 1 (§4.2's P2M-Write domain characterization).
func ProbeConfig(dir Direction, base mem.Addr) Config {
	return Config{
		Dir:          dir,
		RequestBytes: 4096,
		QueueDepth:   1,
		DeviceDelay:  10 * sim.Microsecond,
		BufBase:      base,
		BufBytes:     1 << 30,
	}
}

// Stats exposes device-level throughput probes.
type Stats struct {
	Requests *telemetry.Counter // completed I/O requests (IOPS)
	Lines    *telemetry.Counter // completed cachelines (bandwidth)
}

// Reset starts a new measurement window.
func (s *Stats) Reset() { s.Requests.Reset(); s.Lines.Reset() }

// IOPS reports completed requests per simulated second.
func (s *Stats) IOPS() float64 { return s.Requests.RatePerSecond() }

// BytesPerSec reports completed DMA bandwidth.
func (s *Stats) BytesPerSec() float64 { return s.Lines.BytesPerSecond() }

type request struct {
	toIssue    int    // lines not yet accepted by the IIO
	toComplete int    // lines whose credits have not yet returned
	done       func() // bound lineDone(self), created once per pooled request
}

// Storage is one device workload instance.
type Storage struct {
	eng    *sim.Engine
	cfg    Config
	io     *iio.IIO
	origin int

	nextLine int64
	active   []*request
	free     []*request // retired requests, recycled with their done closures
	arming   int        // requests waiting out DeviceDelay
	waiting  bool
	started  bool   // any request ever armed (read by the audit invariant)
	wake     func() // bound credit-wait callback, created once
	stats    *Stats
}

// New builds a storage workload; call Start to begin I/O.
func New(eng *sim.Engine, cfg Config, io *iio.IIO, origin int) *Storage {
	if cfg.RequestBytes < mem.LineSize || cfg.QueueDepth <= 0 {
		panic("periph: invalid storage config")
	}
	s := &Storage{
		eng:    eng,
		cfg:    cfg,
		io:     io,
		origin: origin,
		stats: &Stats{
			Requests: telemetry.NewCounter(eng),
			Lines:    telemetry.NewCounter(eng),
		},
	}
	eng.Register(s)
	s.wake = func() { s.waiting = false; s.pump() }
	if aud := cfg.Audit; aud.Enabled() {
		domain := fmt.Sprintf("periph/dev%d", origin)
		aud.Check(domain, "queue_depth", func() (bool, string) {
			// Before Start fires, no requests exist yet; afterwards every
			// queue-depth slot is either arming or active (conservation).
			// The started flag lives on the Storage (not in this closure) so
			// snapshot restore rewinds it with the rest of the device state.
			n := s.arming + len(s.active)
			if n == 0 && !s.started {
				return true, ""
			}
			s.started = true
			if n != cfg.QueueDepth {
				return false, fmt.Sprintf("arming=%d active=%d != QueueDepth=%d", s.arming, len(s.active), cfg.QueueDepth)
			}
			return true, ""
		})
	}
	return s
}

// Stats returns the device's probes.
func (s *Storage) Stats() *Stats { return s.stats }

// Start arms the initial queue-depth worth of requests at time t.
func (s *Storage) Start(t sim.Time) {
	s.eng.At(t, func() {
		for q := 0; q < s.cfg.QueueDepth; q++ {
			s.armRequest()
		}
	})
}

// armedEvent makes a request issuable once its device-internal latency ends.
func armedEvent(arg any) {
	s := arg.(*Storage)
	s.arming--
	lines := s.cfg.RequestBytes / mem.LineSize
	var req *request
	if n := len(s.free); n > 0 {
		req = s.free[n-1]
		s.free = s.free[:n-1]
		req.toIssue, req.toComplete = lines, lines
	} else {
		req = &request{toIssue: lines, toComplete: lines}
		req.done = func() { s.lineDone(req) }
	}
	s.active = append(s.active, req)
	s.pump()
}

// armRequest starts the device-internal latency for one request, then makes
// it issuable.
func (s *Storage) armRequest() {
	s.started = true
	s.arming++
	s.eng.AfterFunc(s.cfg.DeviceDelay, armedEvent, s)
}

// pump issues lines for active requests in order until credits run out.
func (s *Storage) pump() {
	for len(s.active) > 0 {
		req := s.active[0]
		if req.toIssue == 0 {
			// Fully issued but not complete: later requests may still issue.
			advanced := false
			for _, r := range s.active[1:] {
				if r.toIssue > 0 {
					req = r
					advanced = true
					break
				}
			}
			if !advanced {
				return
			}
		}
		addr := s.cfg.BufBase + mem.Addr((s.nextLine*mem.LineSize)%s.cfg.BufBytes)
		var ok bool
		if s.cfg.Dir == DMAWrite {
			ok = s.io.TryWrite(addr, s.origin, req.done)
		} else {
			ok = s.io.TryRead(addr, s.origin, req.done)
		}
		if !ok {
			if !s.waiting {
				s.waiting = true
				if s.cfg.Dir == DMAWrite {
					s.io.NotifyWrite(s.wake)
				} else {
					s.io.NotifyRead(s.wake)
				}
			}
			return
		}
		s.nextLine++
		req.toIssue--
	}
}

func (s *Storage) lineDone(req *request) {
	s.stats.Lines.Inc()
	req.toComplete--
	if req.toComplete == 0 {
		s.stats.Requests.Inc()
		// Retire: requests complete roughly in order; remove this one.
		for i, r := range s.active {
			if r == req {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
		s.free = append(s.free, req)
		s.armRequest()
	}
	s.pump()
}

// requestState rewinds one pooled request in place.
type requestState struct {
	toIssue, toComplete int
}

// storageState is the snapshot of a Storage device.
type storageState struct {
	nextLine   int64
	active     []*request
	activeVals []requestState
	free       []*request
	arming     int
	waiting    bool
	started    bool
}

// SaveState implements sim.Stateful.
func (s *Storage) SaveState() any {
	st := storageState{
		nextLine: s.nextLine,
		active:   append([]*request(nil), s.active...),
		free:     append([]*request(nil), s.free...),
		arming:   s.arming,
		waiting:  s.waiting,
		started:  s.started,
	}
	for _, r := range s.active {
		st.activeVals = append(st.activeVals, requestState{toIssue: r.toIssue, toComplete: r.toComplete})
	}
	return st
}

// LoadState implements sim.Stateful.
func (s *Storage) LoadState(state any) {
	st := state.(storageState)
	s.nextLine, s.arming, s.waiting, s.started = st.nextLine, st.arming, st.waiting, st.started
	s.active = append(s.active[:0], st.active...)
	for i, r := range s.active {
		r.toIssue, r.toComplete = st.activeVals[i].toIssue, st.activeVals[i].toComplete
	}
	s.free = append(s.free[:0], st.free...)
}
