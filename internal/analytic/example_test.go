package analytic_test

import (
	"fmt"

	"repro/internal/analytic"
)

// The Fig 9 read formula decomposes queueing delay into four terms; here a
// worked example with round numbers.
func ExampleInputs_ReadQueueingDelay() {
	in := analytic.Inputs{
		Switches:     200,
		LinesRead:    1000,
		LinesWritten: 500,
		ORPQ:         4,
		ACTRead:      100,
		PREConfRead:  60,
		TWTR:         12, TTrans: 3, TACT: 15, TPRE: 15,
	}
	c := in.ReadQueueingDelay()
	fmt.Printf("switching %.1f + writeHoL %.1f + readHoL %.1f + top %.1f = %.1f ns\n",
		c.Switching, c.WriteHoL, c.ReadHoL, c.TopOfQueue, c.Total())
	// Output:
	// switching 4.8 + writeHoL 6.0 + readHoL 9.0 + top 2.4 = 22.2 ns
}

// Predict needs no measured inputs at all: hardware configuration and
// offered load in, the blue regime out.
func ExamplePredict() {
	hw := analytic.CascadeLakeHW()
	iso, _ := analytic.Predict(hw, analytic.Workload{C2MCores: 1})
	co, _ := analytic.Predict(hw, analytic.Workload{C2MCores: 1, P2MWriteBytesPerSec: 14e9})
	fmt.Printf("isolated %.1f GB/s, colocated %.1f GB/s, P2M %.1f GB/s\n",
		iso.C2MBytesPerSec/1e9, co.C2MBytesPerSec/1e9, co.P2MBytesPerSec/1e9)
	// Output:
	// isolated 10.5 GB/s, colocated 8.4 GB/s, P2M 14.0 GB/s
}
