// Package analytic implements the paper's §6 analytical formulas for read
// and write domain latency, the quantitative validation that connects
// host-network measurements to end-to-end throughput.
//
// The read formula (Fig 9) decomposes average read queueing delay at the MC
// into switching delay, write head-of-line blocking, read head-of-line
// blocking, and top-of-queue (ACT/PRE) delay. The write formula (Fig 10) is
// the dual, gated by the probability that the WPQ is full. All inputs
// (Table 2) are captured from the simulator's uncore-counter analogues
// exactly as the paper captures them from Intel PMUs.
package analytic

import (
	"repro/internal/cha"
	"repro/internal/dram"
	"repro/internal/mem"
)

// Inputs are the Table 2 measurement inputs plus the DRAM timing constants,
// all in nanoseconds where dimensional.
type Inputs struct {
	PFillWPQ     float64 // probability the WPQ is full
	NWaiting     float64 // writes awaiting WPQ admission (measured at the CHA)
	Switches     float64 // read<->write mode switches
	LinesRead    float64 // cachelines read
	LinesWritten float64 // cachelines written
	ORPQ         float64 // average per-channel RPQ occupancy
	ACTRead      float64 // activations serving reads
	ACTWrite     float64 // activations serving writes
	PREConfRead  float64 // conflict precharges serving reads
	PREConfWrite float64 // conflict precharges serving writes

	TWTR, TRTW, TTrans, TACT, TPRE float64 // timing constants (ns)
}

// FromStats captures formula inputs from a run's MC and CHA probes.
func FromStats(mc *dram.Stats, ch *cha.Stats, t dram.Timing, channels int) Inputs {
	if channels < 1 {
		channels = 1
	}
	return Inputs{
		PFillWPQ:     mc.WPQFull.Frac(),
		NWaiting:     ch.WBacklog.Avg(),
		Switches:     float64(mc.Switches.Count()),
		LinesRead:    float64(mc.LinesRead()),
		LinesWritten: float64(mc.LinesWritten()),
		ORPQ:         mc.RPQOcc.Avg() / float64(channels),
		ACTRead:      float64(mc.C2MRead.ACTs.Count() + mc.P2MRead.ACTs.Count()),
		ACTWrite:     float64(mc.C2MWrite.ACTs.Count() + mc.P2MWrite.ACTs.Count()),
		PREConfRead:  float64(mc.C2MRead.PREConflict.Count() + mc.P2MRead.PREConflict.Count()),
		PREConfWrite: float64(mc.C2MWrite.PREConflict.Count() + mc.P2MWrite.PREConflict.Count()),
		TWTR:         t.TWTR.Nanoseconds(),
		TRTW:         t.TRTW.Nanoseconds(),
		TTrans:       t.TTrans.Nanoseconds(),
		TACT:         t.TRCD.Nanoseconds(),
		TPRE:         t.TRP.Nanoseconds(),
	}
}

// Components is the per-term breakdown of a queueing/admission delay, in
// nanoseconds (Fig 12's stacked bars).
type Components struct {
	Switching  float64
	WriteHoL   float64
	ReadHoL    float64
	TopOfQueue float64
}

// Total sums the components.
func (c Components) Total() float64 {
	return c.Switching + c.WriteHoL + c.ReadHoL + c.TopOfQueue
}

// ReadQueueingDelay evaluates the Fig 9 formula: QD_read.
func (in Inputs) ReadQueueingDelay() Components {
	if in.LinesRead == 0 {
		return Components{}
	}
	var c Components
	c.Switching = in.ORPQ * (in.Switches / 2 / in.LinesRead) * in.TWTR
	c.WriteHoL = in.ORPQ * (in.LinesWritten / in.LinesRead) * in.TTrans
	if in.ORPQ > 1 {
		c.ReadHoL = (in.ORPQ - 1) * in.TTrans
	}
	c.TopOfQueue = (in.ACTRead/in.LinesRead)*in.TACT + (in.PREConfRead/in.LinesRead)*in.TPRE
	return c
}

// WriteAdmissionDelay evaluates the Fig 10 formula: AD_write = P(WPQ full) *
// X_write, with the component terms scaled by that probability so the
// breakdown still sums to the delay.
func (in Inputs) WriteAdmissionDelay() Components {
	if in.LinesWritten == 0 || in.PFillWPQ == 0 {
		return Components{}
	}
	var c Components
	c.Switching = in.NWaiting * (in.Switches / 2 / in.LinesWritten) * in.TRTW
	c.ReadHoL = in.NWaiting * (in.LinesRead / in.LinesWritten) * in.TTrans
	if in.NWaiting > 1 {
		c.WriteHoL = (in.NWaiting - 1) * in.TTrans
	}
	c.TopOfQueue = (in.ACTWrite/in.LinesWritten)*in.TACT + (in.PREConfWrite/in.LinesWritten)*in.TPRE
	c.Switching *= in.PFillWPQ
	c.WriteHoL *= in.PFillWPQ
	c.ReadHoL *= in.PFillWPQ
	c.TopOfQueue *= in.PFillWPQ
	return c
}

// ReadLatency reports the estimated average read domain latency (ns):
// Constant_read + QD_read.
func (in Inputs) ReadLatency(constNanos float64) float64 {
	return constNanos + in.ReadQueueingDelay().Total()
}

// WriteLatency reports the estimated average write domain latency (ns):
// Constant_write + AD_write.
func (in Inputs) WriteLatency(constNanos float64) float64 {
	return constNanos + in.WriteAdmissionDelay().Total()
}

// Throughput converts a latency estimate back to the credit bound: C*64/L
// in bytes/s.
func Throughput(credits int, latencyNanos float64) float64 {
	if latencyNanos <= 0 {
		return 0
	}
	return float64(credits) * mem.LineSize / (latencyNanos * 1e-9)
}

// PairThroughput models a C2M-ReadWrite core where each LFB credit
// alternates between an RFO read (latency Lr) and a writeback (latency Lw):
// a credit cycle moves two cachelines.
func PairThroughput(credits int, readLatNanos, writeLatNanos float64) float64 {
	cycle := readLatNanos + writeLatNanos
	if cycle <= 0 {
		return 0
	}
	return float64(credits) * 2 * mem.LineSize / (cycle * 1e-9)
}

// ErrorPct reports (estimated-measured)/measured in percent: positive means
// the formula overestimates throughput (underestimates latency), matching
// the sign convention of Fig 11.
func ErrorPct(estimated, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return (estimated - measured) / measured * 100
}
