package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// handInputs builds a worked example with round numbers so each formula term
// can be checked by hand.
func handInputs() Inputs {
	return Inputs{
		PFillWPQ:     0.5,
		NWaiting:     10,
		Switches:     200, // 100 drain round trips
		LinesRead:    1000,
		LinesWritten: 500,
		ORPQ:         4,
		ACTRead:      100,
		ACTWrite:     50,
		PREConfRead:  60,
		PREConfWrite: 30,
		TWTR:         12, TRTW: 8, TTrans: 3, TACT: 15, TPRE: 15,
	}
}

func TestReadQueueingDelayByHand(t *testing.T) {
	c := handInputs().ReadQueueingDelay()
	// Switching: ORPQ * (#sw/2 / linesRead) * tWTR = 4 * (100/1000) * 12 = 4.8
	if math.Abs(c.Switching-4.8) > 1e-9 {
		t.Fatalf("switching = %v, want 4.8", c.Switching)
	}
	// WriteHoL: ORPQ * (linesW/linesR) * tTrans = 4 * 0.5 * 3 = 6
	if math.Abs(c.WriteHoL-6) > 1e-9 {
		t.Fatalf("writeHoL = %v, want 6", c.WriteHoL)
	}
	// ReadHoL: (ORPQ-1)*tTrans = 9
	if math.Abs(c.ReadHoL-9) > 1e-9 {
		t.Fatalf("readHoL = %v, want 9", c.ReadHoL)
	}
	// TopOfQueue: (100/1000)*15 + (60/1000)*15 = 1.5 + 0.9 = 2.4
	if math.Abs(c.TopOfQueue-2.4) > 1e-9 {
		t.Fatalf("topOfQueue = %v, want 2.4", c.TopOfQueue)
	}
	if math.Abs(c.Total()-22.2) > 1e-9 {
		t.Fatalf("total = %v, want 22.2", c.Total())
	}
}

func TestWriteAdmissionDelayByHand(t *testing.T) {
	c := handInputs().WriteAdmissionDelay()
	// Before the P(fill) scaling of 0.5:
	// Switching: N * (#sw/2/linesW) * tRTW = 10 * (100/500) * 8 = 16 -> 8
	if math.Abs(c.Switching-8) > 1e-9 {
		t.Fatalf("switching = %v, want 8", c.Switching)
	}
	// ReadHoL: N * (linesR/linesW) * tTrans = 10 * 2 * 3 = 60 -> 30
	if math.Abs(c.ReadHoL-30) > 1e-9 {
		t.Fatalf("readHoL = %v, want 30", c.ReadHoL)
	}
	// WriteHoL: (N-1)*tTrans = 27 -> 13.5
	if math.Abs(c.WriteHoL-13.5) > 1e-9 {
		t.Fatalf("writeHoL = %v, want 13.5", c.WriteHoL)
	}
	// TopOfQueue: (50/500)*15 + (30/500)*15 = 1.5+0.9 = 2.4 -> 1.2
	if math.Abs(c.TopOfQueue-1.2) > 1e-9 {
		t.Fatalf("topOfQueue = %v, want 1.2", c.TopOfQueue)
	}
}

func TestEmptyWindowIsZero(t *testing.T) {
	var in Inputs
	if in.ReadQueueingDelay().Total() != 0 || in.WriteAdmissionDelay().Total() != 0 {
		t.Fatalf("empty inputs must produce zero delay")
	}
}

func TestWPQNeverFullMeansNoAdmissionDelay(t *testing.T) {
	in := handInputs()
	in.PFillWPQ = 0
	if got := in.WriteAdmissionDelay().Total(); got != 0 {
		t.Fatalf("AD_write = %v with P(fill)=0, want 0", got)
	}
}

func TestLatencyComposition(t *testing.T) {
	in := handInputs()
	if got := in.ReadLatency(70); math.Abs(got-92.2) > 1e-9 {
		t.Fatalf("ReadLatency = %v, want 92.2", got)
	}
	wantAD := in.WriteAdmissionDelay().Total()
	if got := in.WriteLatency(300); math.Abs(got-(300+wantAD)) > 1e-9 {
		t.Fatalf("WriteLatency = %v", got)
	}
}

func TestThroughputInversion(t *testing.T) {
	// 12 credits at 70ns: 10.97 GB/s.
	if got := Throughput(12, 70); math.Abs(got-10.97e9) > 0.05e9 {
		t.Fatalf("Throughput = %.2f GB/s", got/1e9)
	}
	if Throughput(12, 0) != 0 {
		t.Fatalf("zero latency must not divide")
	}
}

func TestPairThroughput(t *testing.T) {
	// 12 credits, read 70ns + write 10ns: 12*128/80ns = 19.2 GB/s.
	if got := PairThroughput(12, 70, 10); math.Abs(got-19.2e9) > 0.05e9 {
		t.Fatalf("PairThroughput = %.2f GB/s", got/1e9)
	}
}

func TestErrorPctSignConvention(t *testing.T) {
	if got := ErrorPct(110, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("overestimate should be positive: %v", got)
	}
	if got := ErrorPct(90, 100); math.Abs(got+10) > 1e-9 {
		t.Fatalf("underestimate should be negative: %v", got)
	}
	if ErrorPct(1, 0) != 0 {
		t.Fatalf("zero measured guards division")
	}
}

// Property: queueing delay is nonnegative and monotone in ORPQ and in the
// write load.
func TestReadDelayMonotoneProperty(t *testing.T) {
	f := func(orpq, writes uint8) bool {
		in := handInputs()
		in.ORPQ = float64(orpq%50) + 1
		in.LinesWritten = float64(writes) * 10
		base := in.ReadQueueingDelay().Total()
		if base < 0 {
			return false
		}
		in2 := in
		in2.ORPQ++
		in3 := in
		in3.LinesWritten += 100
		return in2.ReadQueueingDelay().Total() > base &&
			in3.ReadQueueingDelay().Total() >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: admission delay scales linearly with P(WPQ full).
func TestWriteDelayScalesWithFillProperty(t *testing.T) {
	f := func(p uint8) bool {
		frac := float64(p) / 255
		in := handInputs()
		in.PFillWPQ = 1
		full := in.WriteAdmissionDelay().Total()
		in.PFillWPQ = frac
		got := in.WriteAdmissionDelay().Total()
		return math.Abs(got-frac*full) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}
