package analytic

// Predictive mode: the paper's §6 formula consumes *measured* inputs; §7
// asks for "an analytical model that can predict performance given a
// particular host network hardware configuration". This file is that
// extension for the workloads the paper characterizes: it models the
// formula's inputs (queue occupancy, read/write mix, switch rate, row-miss
// ratio) from the hardware configuration and offered load, then solves the
// resulting latency fixed point
//
//	L = Constant + QD_read(inputs(L))
//
// by iteration. It deliberately inherits the published formula's
// simplifications; accuracy is validated against the simulator in
// predict_test.go (within ~20% across the quadrant-1 sweep — cruder than
// the measured-input mode, as expected of a pure predictor).

import "math"

// HWConfig is the hardware half of the prediction input.
type HWConfig struct {
	Channels   int
	TTransNs   float64 // per-line burst time
	TActNs     float64 // activate
	TPreNs     float64 // precharge
	TWTRNs     float64 // write-to-read switch
	TRTWNs     float64 // read-to-write switch
	DrainBatch int     // writes served per drain

	LFBCredits      int
	UnloadedReadNs  float64 // unloaded C2M-Read domain latency
	UnloadedWriteNs float64 // unloaded C2M-Write domain latency
	IIOWriteCredits int
	UnloadedP2MWrNs float64 // unloaded P2M-Write domain latency
	PCIeBytesPerSec float64 // achievable link rate
	RowLines        int     // cachelines per DRAM row
	BanksPerChannel int
}

// CascadeLakeHW returns the Table 1 / §4.2 parameters used throughout.
func CascadeLakeHW() HWConfig {
	return HWConfig{
		Channels:        2,
		TTransNs:        2.73,
		TActNs:          15,
		TPreNs:          15,
		TWTRNs:          12,
		TRTWNs:          8,
		DrainBatch:      20,
		LFBCredits:      12,
		UnloadedReadNs:  70,
		UnloadedWriteNs: 10,
		IIOWriteCredits: 92,
		UnloadedP2MWrNs: 300,
		PCIeBytesPerSec: 14e9,
		RowLines:        64, // per channel: an 8 KB row interleaved over 2 channels
		BanksPerChannel: 32,
	}
}

// Workload is the offered-load half: a quadrant-1-style colocation.
type Workload struct {
	C2MCores int
	// C2MWrites adds the RFO+writeback expansion (quadrant 3 style).
	C2MWrites bool
	// P2MWriteBytesPerSec is the device's offered DMA-write load (0 for
	// none; capped at the link rate).
	P2MWriteBytesPerSec float64
}

// Prediction is the model output.
type Prediction struct {
	C2MReadLatencyNs float64
	C2MBytesPerSec   float64
	P2MBytesPerSec   float64
	// Iterations taken to converge.
	Iterations int
	// Components of the predicted queueing delay.
	Breakdown Components
}

// Predict solves the latency fixed point for the given hardware and load.
func Predict(hw HWConfig, w Workload) Prediction {
	p2m := math.Min(w.P2MWriteBytesPerSec, hw.PCIeBytesPerSec)
	n := float64(w.C2MCores)
	credits := float64(hw.LFBCredits)

	// Row-miss model: a sequential stream alone misses once per row;
	// interleaving s independent streams on a channel multiplies conflict
	// opportunities. Empirically (and in the paper's Fig 7c) the colocated
	// row-miss ratio stays low for sequential streams; model it as the
	// stream-count-scaled row boundary rate.
	streams := n
	if p2m > 0 {
		streams++
	}
	rowMiss := math.Min(0.5, streams/float64(hw.RowLines)*2)

	L := hw.UnloadedReadNs
	var qd Components
	var iter int
	for iter = 0; iter < 100; iter++ {
		// Per-channel line rates implied by the current latency estimate.
		readRate := n * credits / L / float64(hw.Channels) // lines per ns per channel
		if w.C2MWrites {
			// Credits alternate read/write; reads get the L_r share.
			readRate = n * credits / (L + hw.UnloadedWriteNs) / float64(hw.Channels)
		}
		writeRate := p2m / 64 / 1e9 / float64(hw.Channels) // lines per ns
		if w.C2MWrites {
			writeRate += readRate // one writeback per RFO
		}

		// Formula inputs, modeled rather than measured.
		linesRatio := 0.0
		if readRate > 0 {
			linesRatio = writeRate / readRate
		}
		// In-flight reads at the MC per channel: the fraction of the domain
		// latency spent at/behind the controller.
		mcResident := (L - hw.UnloadedReadNs) + 20 // queueing + baseline MC time
		orpq := math.Max(1, readRate*mcResident)
		// Switches: one drain round trip per DrainBatch writes.
		switchesPerRead := 0.0
		if readRate > 0 {
			switchesPerRead = writeRate / float64(hw.DrainBatch) / readRate
		}

		var c Components
		c.Switching = orpq * switchesPerRead * hw.TWTRNs
		c.WriteHoL = orpq * linesRatio * hw.TTransNs
		if orpq > 1 {
			c.ReadHoL = (orpq - 1) * hw.TTransNs
		}
		c.TopOfQueue = rowMiss * (hw.TActNs + hw.TPreNs/2)

		next := hw.UnloadedReadNs + c.Total()
		qd = c
		if math.Abs(next-L) < 0.01 {
			L = next
			break
		}
		// Damped update for stability.
		L = 0.5*L + 0.5*next
	}

	pred := Prediction{C2MReadLatencyNs: L, Iterations: iter + 1, Breakdown: qd}
	if w.C2MWrites {
		pred.C2MBytesPerSec = n * PairThroughput(hw.LFBCredits, L, hw.UnloadedWriteNs)
	} else {
		pred.C2MBytesPerSec = n * Throughput(hw.LFBCredits, L)
	}
	// Channel capacity bound: reads+writes cannot exceed the wire.
	cap := float64(hw.Channels) * 64 / hw.TTransNs * 1e9 * 0.82 // efficiency margin
	total := pred.C2MBytesPerSec
	if w.C2MWrites {
		// C2M bytes already counts reads+writes.
	}
	if total+p2m > cap {
		scale := math.Max(0, cap-p2m) / total
		pred.C2MBytesPerSec *= scale
	}

	// P2M: link-bound while spare credits cover the latency.
	neededCredits := p2m * (hw.UnloadedP2MWrNs * 1e-9) / 64
	if neededCredits < float64(hw.IIOWriteCredits) {
		pred.P2MBytesPerSec = p2m
	} else {
		pred.P2MBytesPerSec = float64(hw.IIOWriteCredits) * 64 / (hw.UnloadedP2MWrNs * 1e-9)
	}
	return pred
}
