package analytic

// Predictive mode: the paper's §6 formula consumes *measured* inputs; §7
// asks for "an analytical model that can predict performance given a
// particular host network hardware configuration". This file is that
// extension for the workloads the paper characterizes: it models the
// formula's inputs (queue occupancy, read/write mix, switch rate, row-miss
// ratio) from the hardware configuration and offered load, then solves the
// resulting latency fixed point
//
//	L = Constant + QD_read(inputs(L))
//
// by damped iteration. It deliberately inherits the published formula's
// simplifications; accuracy is validated against the simulator in
// predict_test.go (within ~20% across the quadrant-1 sweep — cruder than
// the measured-input mode, as expected of a pure predictor).

import (
	"fmt"
	"math"
)

// HWConfig is the hardware half of the prediction input.
type HWConfig struct {
	Channels   int
	TTransNs   float64 // per-line burst time
	TActNs     float64 // activate
	TPreNs     float64 // precharge
	TWTRNs     float64 // write-to-read switch
	TRTWNs     float64 // read-to-write switch
	DrainBatch int     // writes served per drain

	LFBCredits      int
	UnloadedReadNs  float64 // unloaded C2M-Read domain latency
	UnloadedWriteNs float64 // unloaded C2M-Write domain latency
	IIOWriteCredits int
	UnloadedP2MWrNs float64 // unloaded P2M-Write domain latency
	PCIeBytesPerSec float64 // achievable link rate
	RowLines        int     // cachelines per DRAM row
	BanksPerChannel int
}

// CascadeLakeHW returns the Table 1 / §4.2 parameters used throughout.
func CascadeLakeHW() HWConfig {
	return HWConfig{
		Channels:        2,
		TTransNs:        2.73,
		TActNs:          15,
		TPreNs:          15,
		TWTRNs:          12,
		TRTWNs:          8,
		DrainBatch:      20,
		LFBCredits:      12,
		UnloadedReadNs:  70,
		UnloadedWriteNs: 10,
		IIOWriteCredits: 92,
		UnloadedP2MWrNs: 300,
		PCIeBytesPerSec: 14e9,
		RowLines:        64, // per channel: an 8 KB row interleaved over 2 channels
		BanksPerChannel: 32,
	}
}

// validate rejects hardware configurations outside the model's domain
// before the solver can turn them into NaN/Inf arithmetic.
func (hw HWConfig) validate() error {
	for _, c := range []struct {
		name      string
		v         float64
		strictPos bool
	}{
		{"TTransNs", hw.TTransNs, true},
		{"UnloadedReadNs", hw.UnloadedReadNs, true},
		{"UnloadedP2MWrNs", hw.UnloadedP2MWrNs, true},
		{"TActNs", hw.TActNs, false},
		{"TPreNs", hw.TPreNs, false},
		{"TWTRNs", hw.TWTRNs, false},
		{"TRTWNs", hw.TRTWNs, false},
		{"UnloadedWriteNs", hw.UnloadedWriteNs, false},
		{"PCIeBytesPerSec", hw.PCIeBytesPerSec, false},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 || (c.strictPos && c.v == 0) {
			return fmt.Errorf("analytic: HWConfig.%s = %v outside the model's domain", c.name, c.v)
		}
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"Channels", hw.Channels},
		{"DrainBatch", hw.DrainBatch},
		{"LFBCredits", hw.LFBCredits},
		{"RowLines", hw.RowLines},
		{"BanksPerChannel", hw.BanksPerChannel},
	} {
		if c.v < 1 {
			return fmt.Errorf("analytic: HWConfig.%s = %d < 1", c.name, c.v)
		}
	}
	if hw.IIOWriteCredits < 0 {
		return fmt.Errorf("analytic: HWConfig.IIOWriteCredits = %d < 0", hw.IIOWriteCredits)
	}
	return nil
}

// Workload is the offered-load half: a quadrant-style colocation.
type Workload struct {
	C2MCores int
	// C2MWrites adds the RFO+writeback expansion (quadrant 3 style).
	C2MWrites bool
	// P2MWriteBytesPerSec is the device's offered DMA-write load (0 for
	// none; capped at the link rate).
	P2MWriteBytesPerSec float64
	// P2MReadBytesPerSec is the device's offered DMA-read load (quadrant
	// 2/4 style: the NIC transmits from host memory). DMA reads share the
	// read path — RPQ occupancy and channel capacity — but never touch the
	// WPQ, which is why these quadrants sit in the paper's blue regime.
	P2MReadBytesPerSec float64
}

func (w Workload) validate() error {
	if w.C2MCores < 0 {
		return fmt.Errorf("analytic: Workload.C2MCores = %d < 0", w.C2MCores)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"P2MWriteBytesPerSec", w.P2MWriteBytesPerSec},
		{"P2MReadBytesPerSec", w.P2MReadBytesPerSec},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return fmt.Errorf("analytic: Workload.%s = %v outside the model's domain", c.name, c.v)
		}
	}
	return nil
}

// Prediction is the model output.
type Prediction struct {
	C2MReadLatencyNs float64
	C2MBytesPerSec   float64
	P2MBytesPerSec   float64
	// Iterations taken to converge.
	Iterations int
	// Components of the predicted queueing delay.
	Breakdown Components
}

// Solver bounds: the fixed point either settles within convergenceNs in
// maxIterations damped steps or the solver reports NonConvergenceError.
const (
	maxIterations = 100
	convergenceNs = 0.01
)

// NonConvergenceError reports that the latency fixed point failed to
// settle: the iterate diverged, oscillated past the iteration cap, or left
// the real line. The prediction is unavailable — earlier versions silently
// returned the last iterate, which Throughput's latency<=0 clamp then
// masked as a zero-bandwidth "answer" downstream.
type NonConvergenceError struct {
	Iterations int
	Last       float64 // last latency iterate, ns
	Delta      float64 // last step magnitude, ns
}

func (e *NonConvergenceError) Error() string {
	return fmt.Sprintf("analytic: latency fixed point did not converge after %d iterations (last iterate %.4g ns, step %.4g ns)",
		e.Iterations, e.Last, e.Delta)
}

// UnsupportedError reports a request outside the model's domain: specs the
// §7 predictor has no terms for (fabric topologies, fault schedules,
// trace-driven apps, uncalibrated testbeds). hostnetd maps it to HTTP 422
// so clients can fall back to the sim fidelity tier.
type UnsupportedError struct{ Reason string }

func (e *UnsupportedError) Error() string {
	return "analytic tier cannot answer this spec: " + e.Reason
}

// Predict solves the latency fixed point for the given hardware and load.
// It returns an error for inputs outside the model's domain and a
// *NonConvergenceError when the fixed point fails to settle; it never
// returns NaN/Inf predictions.
func Predict(hw HWConfig, w Workload) (Prediction, error) {
	if err := hw.validate(); err != nil {
		return Prediction{}, err
	}
	if err := w.validate(); err != nil {
		return Prediction{}, err
	}
	p2mW := math.Min(w.P2MWriteBytesPerSec, hw.PCIeBytesPerSec)
	p2mR := math.Min(w.P2MReadBytesPerSec, hw.PCIeBytesPerSec)
	n := float64(w.C2MCores)
	credits := float64(hw.LFBCredits)

	// Row-miss model: a sequential stream alone misses once per row;
	// interleaving s independent streams on a channel multiplies conflict
	// opportunities. Empirically (and in the paper's Fig 7c) the colocated
	// row-miss ratio stays low for sequential streams; model it as the
	// stream-count-scaled row boundary rate.
	streams := n
	if p2mW > 0 || p2mR > 0 {
		streams++
	}
	rowMiss := math.Min(0.5, streams/float64(hw.RowLines)*2)

	// Device DMA reads occupy the RPQ at the line rate implied by the
	// offered load; they are latency-insensitive (posted, deeply credited)
	// so their rate does not depend on L.
	devReadRate := p2mR / 64 / 1e9 / float64(hw.Channels) // lines per ns per channel

	L := hw.UnloadedReadNs
	var qd Components
	converged := false
	var iter int
	var delta float64
	for iter = 0; iter < maxIterations; iter++ {
		// Per-channel line rates implied by the current latency estimate.
		readRate := n * credits / L / float64(hw.Channels) // lines per ns per channel
		if w.C2MWrites {
			// Credits alternate read/write; reads get the L_r share.
			readRate = n * credits / (L + hw.UnloadedWriteNs) / float64(hw.Channels)
		}
		totalReadRate := readRate + devReadRate
		writeRate := p2mW / 64 / 1e9 / float64(hw.Channels) // lines per ns
		if w.C2MWrites {
			writeRate += readRate // one writeback per RFO
		}

		// Formula inputs, modeled rather than measured.
		linesRatio := 0.0
		if totalReadRate > 0 {
			linesRatio = writeRate / totalReadRate
		}
		// In-flight reads at the MC per channel: the fraction of the domain
		// latency spent at/behind the controller.
		mcResident := (L - hw.UnloadedReadNs) + 20 // queueing + baseline MC time
		orpq := math.Max(1, totalReadRate*mcResident)
		// Switches: one drain round trip per DrainBatch writes.
		switchesPerRead := 0.0
		if totalReadRate > 0 {
			switchesPerRead = writeRate / float64(hw.DrainBatch) / totalReadRate
		}

		var c Components
		c.Switching = orpq * switchesPerRead * hw.TWTRNs
		c.WriteHoL = orpq * linesRatio * hw.TTransNs
		if orpq > 1 {
			c.ReadHoL = (orpq - 1) * hw.TTransNs
		}
		c.TopOfQueue = rowMiss * (hw.TActNs + hw.TPreNs/2)

		next := hw.UnloadedReadNs + c.Total()
		qd = c
		delta = math.Abs(next - L)
		if math.IsNaN(next) || math.IsInf(next, 0) || next <= 0 {
			return Prediction{}, &NonConvergenceError{Iterations: iter + 1, Last: L, Delta: delta}
		}
		if delta < convergenceNs {
			L = next
			converged = true
			break
		}
		// Damped update for stability.
		L = 0.5*L + 0.5*next
	}
	if !converged {
		return Prediction{}, &NonConvergenceError{Iterations: maxIterations, Last: L, Delta: delta}
	}

	pred := Prediction{C2MReadLatencyNs: L, Iterations: iter + 1, Breakdown: qd}
	if w.C2MWrites {
		pred.C2MBytesPerSec = n * PairThroughput(hw.LFBCredits, L, hw.UnloadedWriteNs)
	} else {
		pred.C2MBytesPerSec = n * Throughput(hw.LFBCredits, L)
	}
	// Channel capacity bound: reads+writes cannot exceed the wire. C2M
	// bytes already counts reads+writes in the C2MWrites case; device DMA
	// in either direction consumes the same wire.
	cap := float64(hw.Channels) * 64 / hw.TTransNs * 1e9 * 0.82 // efficiency margin
	total := pred.C2MBytesPerSec
	dev := p2mW + p2mR
	if total > 0 && total+dev > cap {
		scale := math.Max(0, cap-dev) / total
		pred.C2MBytesPerSec *= scale
	}

	// P2M-Write: link-bound while spare IIO credits cover the latency.
	// P2M-Read never consumes write credits (blue regime: link-bound).
	pred.P2MBytesPerSec = p2mR
	neededCredits := p2mW * (hw.UnloadedP2MWrNs * 1e-9) / 64
	if neededCredits < float64(hw.IIOWriteCredits) {
		pred.P2MBytesPerSec += p2mW
	} else {
		pred.P2MBytesPerSec += float64(hw.IIOWriteCredits) * 64 / (hw.UnloadedP2MWrNs * 1e-9)
	}
	return pred, nil
}
