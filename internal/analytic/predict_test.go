package analytic

import (
	"math"
	"testing"
)

func TestPredictUnloadedMatchesCalibration(t *testing.T) {
	p := Predict(CascadeLakeHW(), Workload{C2MCores: 1})
	// One core alone: latency near the unloaded 70 ns, throughput near
	// 12*64/70ns = 11 GB/s.
	if p.C2MReadLatencyNs < 70 || p.C2MReadLatencyNs > 85 {
		t.Fatalf("unloaded prediction %.1f ns, want ~70-85", p.C2MReadLatencyNs)
	}
	if p.C2MBytesPerSec < 9e9 || p.C2MBytesPerSec > 11.5e9 {
		t.Fatalf("unloaded throughput %.2f GB/s", p.C2MBytesPerSec/1e9)
	}
}

func TestPredictBlueRegimeShape(t *testing.T) {
	hw := CascadeLakeHW()
	iso := Predict(hw, Workload{C2MCores: 1})
	co := Predict(hw, Workload{C2MCores: 1, P2MWriteBytesPerSec: 14e9})
	degr := iso.C2MBytesPerSec / co.C2MBytesPerSec
	t.Logf("predicted 1-core Q1: L %.0f->%.0f ns, degradation %.2fx", iso.C2MReadLatencyNs, co.C2MReadLatencyNs, degr)
	if degr < 1.1 || degr > 1.8 {
		t.Fatalf("predicted degradation %.2fx outside the paper's blue band", degr)
	}
	// P2M unaffected: spare credits at 14 GB/s.
	if co.P2MBytesPerSec < 13.9e9 {
		t.Fatalf("P2M predicted to degrade (%.2f GB/s) in the blue regime", co.P2MBytesPerSec/1e9)
	}
}

func TestPredictMonotoneInLoad(t *testing.T) {
	hw := CascadeLakeHW()
	prev := math.Inf(1)
	for _, p2m := range []float64{0, 7e9, 14e9} {
		p := Predict(hw, Workload{C2MCores: 2, P2MWriteBytesPerSec: p2m})
		perCore := p.C2MBytesPerSec
		if perCore > prev*1.001 {
			t.Fatalf("C2M throughput increased with P2M load (%.2f after %.2f GB/s)",
				perCore/1e9, prev/1e9)
		}
		prev = perCore
	}
}

func TestPredictConverges(t *testing.T) {
	for cores := 1; cores <= 6; cores++ {
		p := Predict(CascadeLakeHW(), Workload{C2MCores: cores, P2MWriteBytesPerSec: 14e9})
		if p.Iterations >= 100 {
			t.Fatalf("fixed point did not converge at %d cores", cores)
		}
		if p.C2MReadLatencyNs <= 0 || math.IsNaN(p.C2MReadLatencyNs) {
			t.Fatalf("degenerate latency at %d cores: %v", cores, p.C2MReadLatencyNs)
		}
	}
}

func TestPredictCapacityBound(t *testing.T) {
	// 6 cores alone demand ~65 GB/s; the 2-channel wire allows ~47 * 0.82.
	p := Predict(CascadeLakeHW(), Workload{C2MCores: 6})
	if p.C2MBytesPerSec > 40e9 {
		t.Fatalf("prediction %.1f GB/s exceeds channel capacity", p.C2MBytesPerSec/1e9)
	}
}

func TestPredictReadWriteExpansion(t *testing.T) {
	ro := Predict(CascadeLakeHW(), Workload{C2MCores: 2})
	rw := Predict(CascadeLakeHW(), Workload{C2MCores: 2, C2MWrites: true})
	// ReadWrite moves two lines per credit cycle: higher total bytes at
	// similar latency.
	if rw.C2MBytesPerSec < ro.C2MBytesPerSec {
		t.Fatalf("rw prediction %.1f below read-only %.1f GB/s",
			rw.C2MBytesPerSec/1e9, ro.C2MBytesPerSec/1e9)
	}
}
