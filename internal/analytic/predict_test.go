package analytic

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// mustPredict fails the test on any solver error; the calibrated Cascade
// Lake configuration must always converge.
func mustPredict(t *testing.T, hw HWConfig, w Workload) Prediction {
	t.Helper()
	p, err := Predict(hw, w)
	if err != nil {
		t.Fatalf("Predict(%+v): %v", w, err)
	}
	return p
}

func TestPredictUnloadedMatchesCalibration(t *testing.T) {
	p := mustPredict(t, CascadeLakeHW(), Workload{C2MCores: 1})
	// One core alone: latency near the unloaded 70 ns, throughput near
	// 12*64/70ns = 11 GB/s.
	if p.C2MReadLatencyNs < 70 || p.C2MReadLatencyNs > 85 {
		t.Fatalf("unloaded prediction %.1f ns, want ~70-85", p.C2MReadLatencyNs)
	}
	if p.C2MBytesPerSec < 9e9 || p.C2MBytesPerSec > 11.5e9 {
		t.Fatalf("unloaded throughput %.2f GB/s", p.C2MBytesPerSec/1e9)
	}
}

func TestPredictBlueRegimeShape(t *testing.T) {
	hw := CascadeLakeHW()
	iso := mustPredict(t, hw, Workload{C2MCores: 1})
	co := mustPredict(t, hw, Workload{C2MCores: 1, P2MWriteBytesPerSec: 14e9})
	degr := iso.C2MBytesPerSec / co.C2MBytesPerSec
	t.Logf("predicted 1-core Q1: L %.0f->%.0f ns, degradation %.2fx", iso.C2MReadLatencyNs, co.C2MReadLatencyNs, degr)
	if degr < 1.1 || degr > 1.8 {
		t.Fatalf("predicted degradation %.2fx outside the paper's blue band", degr)
	}
	// P2M unaffected: spare credits at 14 GB/s.
	if co.P2MBytesPerSec < 13.9e9 {
		t.Fatalf("P2M predicted to degrade (%.2f GB/s) in the blue regime", co.P2MBytesPerSec/1e9)
	}
}

func TestPredictDMAReadQuadrantIsBlue(t *testing.T) {
	// Quadrant 2/4 style: the device reads host memory. DMA reads bypass
	// the WPQ entirely, so the degradation must stay mild (the paper's blue
	// regime) and the device must get its link rate.
	hw := CascadeLakeHW()
	iso := mustPredict(t, hw, Workload{C2MCores: 1})
	co := mustPredict(t, hw, Workload{C2MCores: 1, P2MReadBytesPerSec: 14e9})
	degr := iso.C2MBytesPerSec / co.C2MBytesPerSec
	t.Logf("predicted 1-core Q2: L %.0f->%.0f ns, degradation %.2fx", iso.C2MReadLatencyNs, co.C2MReadLatencyNs, degr)
	if degr < 1.0 || degr > 1.8 {
		t.Fatalf("predicted DMA-read degradation %.2fx outside the blue band", degr)
	}
	if co.P2MBytesPerSec < 13.9e9 {
		t.Fatalf("P2M reads predicted to degrade (%.2f GB/s) in the blue regime", co.P2MBytesPerSec/1e9)
	}
	// And a DMA-read stream must hurt no more than the same load as DMA
	// writes (which contend for the WPQ and force drain switches).
	wr := mustPredict(t, hw, Workload{C2MCores: 1, P2MWriteBytesPerSec: 14e9})
	if co.C2MReadLatencyNs > wr.C2MReadLatencyNs {
		t.Fatalf("DMA reads predicted worse than DMA writes: %.1f vs %.1f ns",
			co.C2MReadLatencyNs, wr.C2MReadLatencyNs)
	}
}

func TestPredictMonotoneInLoad(t *testing.T) {
	hw := CascadeLakeHW()
	prev := math.Inf(1)
	for _, p2m := range []float64{0, 7e9, 14e9} {
		p := mustPredict(t, hw, Workload{C2MCores: 2, P2MWriteBytesPerSec: p2m})
		perCore := p.C2MBytesPerSec
		if perCore > prev*1.001 {
			t.Fatalf("C2M throughput increased with P2M load (%.2f after %.2f GB/s)",
				perCore/1e9, prev/1e9)
		}
		prev = perCore
	}
}

func TestPredictConverges(t *testing.T) {
	for cores := 1; cores <= 6; cores++ {
		p := mustPredict(t, CascadeLakeHW(), Workload{C2MCores: cores, P2MWriteBytesPerSec: 14e9})
		if p.Iterations >= 100 {
			t.Fatalf("fixed point did not converge at %d cores", cores)
		}
		if p.C2MReadLatencyNs <= 0 || math.IsNaN(p.C2MReadLatencyNs) {
			t.Fatalf("degenerate latency at %d cores: %v", cores, p.C2MReadLatencyNs)
		}
	}
}

func TestPredictCapacityBound(t *testing.T) {
	// 6 cores alone demand ~65 GB/s; the 2-channel wire allows ~47 * 0.82.
	p := mustPredict(t, CascadeLakeHW(), Workload{C2MCores: 6})
	if p.C2MBytesPerSec > 40e9 {
		t.Fatalf("prediction %.1f GB/s exceeds channel capacity", p.C2MBytesPerSec/1e9)
	}
}

func TestPredictReadWriteExpansion(t *testing.T) {
	ro := mustPredict(t, CascadeLakeHW(), Workload{C2MCores: 2})
	rw := mustPredict(t, CascadeLakeHW(), Workload{C2MCores: 2, C2MWrites: true})
	// ReadWrite moves two lines per credit cycle: higher total bytes at
	// similar latency.
	if rw.C2MBytesPerSec < ro.C2MBytesPerSec {
		t.Fatalf("rw prediction %.1f below read-only %.1f GB/s",
			rw.C2MBytesPerSec/1e9, ro.C2MBytesPerSec/1e9)
	}
}

func TestPredictRejectsDegenerateConfigs(t *testing.T) {
	good := CascadeLakeHW()
	bad := []func(*HWConfig){
		func(hw *HWConfig) { hw.Channels = 0 },
		func(hw *HWConfig) { hw.TTransNs = 0 },
		func(hw *HWConfig) { hw.TTransNs = math.NaN() },
		func(hw *HWConfig) { hw.UnloadedReadNs = -1 },
		func(hw *HWConfig) { hw.UnloadedP2MWrNs = 0 },
		func(hw *HWConfig) { hw.DrainBatch = 0 },
		func(hw *HWConfig) { hw.LFBCredits = 0 },
		func(hw *HWConfig) { hw.RowLines = 0 },
		func(hw *HWConfig) { hw.PCIeBytesPerSec = math.Inf(1) },
		func(hw *HWConfig) { hw.IIOWriteCredits = -1 },
	}
	for i, mutate := range bad {
		hw := good
		mutate(&hw)
		if _, err := Predict(hw, Workload{C2MCores: 1}); err == nil {
			t.Errorf("mutation %d: degenerate config accepted", i)
		}
	}
	if _, err := Predict(good, Workload{C2MCores: -1}); err == nil {
		t.Errorf("negative core count accepted")
	}
	if _, err := Predict(good, Workload{C2MCores: 1, P2MWriteBytesPerSec: math.NaN()}); err == nil {
		t.Errorf("NaN offered load accepted")
	}
}

// TestPredictNeverNaN is the solver's safety property: over random
// hardware configurations and loads, Predict either returns a fully finite
// prediction or a typed error — never NaN/Inf, never a silently bogus last
// iterate (which Throughput's latency<=0 clamp used to mask as 0 GB/s).
func TestPredictNeverNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Occasionally degenerate draws: zeros, NaN, Inf, negatives, huge
	// magnitudes — validation must catch what the solver cannot survive.
	rf := func(scale float64) float64 {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return math.NaN()
		case 2:
			return math.Inf(1)
		case 3:
			return -scale * rng.Float64()
		case 4:
			return scale * 1e12 * rng.Float64()
		default:
			return scale * rng.Float64()
		}
	}
	ri := func(n int) int { return rng.Intn(n+4) - 2 }
	for i := 0; i < 20000; i++ {
		hw := HWConfig{
			Channels:        ri(8),
			TTransNs:        rf(10),
			TActNs:          rf(30),
			TPreNs:          rf(30),
			TWTRNs:          rf(30),
			TRTWNs:          rf(30),
			DrainBatch:      ri(64),
			LFBCredits:      ri(64),
			UnloadedReadNs:  rf(200),
			UnloadedWriteNs: rf(50),
			IIOWriteCredits: ri(256),
			UnloadedP2MWrNs: rf(600),
			PCIeBytesPerSec: rf(30e9),
			RowLines:        ri(256),
			BanksPerChannel: ri(64),
		}
		w := Workload{
			C2MCores:            ri(12),
			C2MWrites:           rng.Intn(2) == 1,
			P2MWriteBytesPerSec: rf(30e9),
			P2MReadBytesPerSec:  rf(30e9),
		}
		p, err := Predict(hw, w)
		if err != nil {
			var nc *NonConvergenceError
			if errors.As(err, &nc) && (math.IsNaN(nc.Last) || math.IsInf(nc.Last, 0)) {
				t.Fatalf("case %d: non-convergence error carries non-finite iterate: %v", i, err)
			}
			continue
		}
		for name, v := range map[string]float64{
			"C2MReadLatencyNs": p.C2MReadLatencyNs,
			"C2MBytesPerSec":   p.C2MBytesPerSec,
			"P2MBytesPerSec":   p.P2MBytesPerSec,
			"Switching":        p.Breakdown.Switching,
			"WriteHoL":         p.Breakdown.WriteHoL,
			"ReadHoL":          p.Breakdown.ReadHoL,
			"TopOfQueue":       p.Breakdown.TopOfQueue,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("case %d: hw=%+v w=%+v: %s = %v", i, hw, w, name, v)
			}
		}
		if p.C2MReadLatencyNs <= 0 {
			t.Fatalf("case %d: non-positive converged latency %v (hw=%+v w=%+v)", i, p.C2MReadLatencyNs, hw, w)
		}
	}
}

func TestPredictNonConvergenceIsTyped(t *testing.T) {
	// Extreme switch/burst times make the write-HoL term grow faster than
	// damping can settle it. Whatever the failure mode, it must surface as
	// the typed error, not as a garbage prediction.
	hw := CascadeLakeHW()
	hw.TWTRNs = 1e9
	hw.TTransNs = 1e9
	_, err := Predict(hw, Workload{C2MCores: 6, C2MWrites: true, P2MWriteBytesPerSec: 14e9})
	if err == nil {
		t.Skip("configuration converged; divergence not reachable here")
	}
	var nc *NonConvergenceError
	if !errors.As(err, &nc) {
		t.Fatalf("error is not *NonConvergenceError: %v", err)
	}
	if nc.Iterations < 1 {
		t.Fatalf("NonConvergenceError has no iteration count: %+v", nc)
	}
}
