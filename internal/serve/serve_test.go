package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
)

// smallSpec is a fast job: one quadrant point at a tiny simulated window.
// Vary core to get distinct content addresses.
func smallSpec(core int) exp.Spec {
	return exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{core}, WarmupNs: 1000, WindowNs: 2000}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func postSpec(t *testing.T, h http.Handler, spec exp.Spec) (*httptest.ResponseRecorder, JobStatus) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", bytes.NewReader(b)))
	var st JobStatus
	if rec.Code == http.StatusOK || rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("submit response not a JobStatus: %v\n%s", err, rec.Body.Bytes())
		}
	}
	return rec, st
}

func get(h http.Handler, url string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %v, want %v", j.ID, j.State(), want)
}

// The result endpoint with ?wait=true serves exactly the canonical bytes
// plus a newline, and a repeat submission is a cache hit served without
// re-running.
func TestResultBytesAndCacheHit(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	spec := smallSpec(1)

	rec, st := postSpec(t, h, spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	if st.Outcome != "accepted" || st.ID == "" {
		t.Fatalf("submit status: %+v", st)
	}

	res := get(h, "/jobs/"+st.ID+"/result?wait=true")
	if res.Code != http.StatusOK {
		t.Fatalf("result: code %d body %s", res.Code, res.Body.Bytes())
	}
	want, err := exp.RunSpecJSON(spec, exp.Defaults())
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if !bytes.Equal(res.Body.Bytes(), append(want, '\n')) {
		t.Fatalf("result bytes differ from direct RunSpecJSON:\n got %s\nwant %s", res.Body.Bytes(), want)
	}

	rec2, st2 := postSpec(t, h, spec)
	if rec2.Code != http.StatusOK || st2.Outcome != "cache_hit" {
		t.Fatalf("resubmit: code %d outcome %q, want 200 cache_hit", rec2.Code, st2.Outcome)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit id %s != %s: content addressing broken", st2.ID, st.ID)
	}
	if got := s.met.cacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := s.met.finished[StateDone].Load(); got != 1 {
		t.Fatalf("jobs finished done = %d, want exactly 1 execution", got)
	}
}

// A full queue sheds load with 429 + Retry-After instead of buffering.
func TestQueueFullReturns429(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()

	_, stA := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(stA.ID), StateRunning) // worker occupied
	recB, _ := postSpec(t, h, smallSpec(2))       // fills the queue
	if recB.Code != http.StatusAccepted {
		t.Fatalf("second submit: code %d", recB.Code)
	}
	recC, _ := postSpec(t, h, smallSpec(3))
	if recC.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: code %d, want 429; body %s", recC.Code, recC.Body.Bytes())
	}
	if ra := recC.Result().Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After header")
	}
	if got := s.met.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	close(block)
}

// Duplicate submissions while the first is still in flight attach to it
// rather than enqueueing more work.
func TestInflightDeduplication(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()

	_, st1 := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(st1.ID), StateRunning)
	rec2, st2 := postSpec(t, h, smallSpec(1))
	if rec2.Code != http.StatusAccepted || st2.Outcome != "deduplicated" {
		t.Fatalf("dup submit: code %d outcome %q, want 202 deduplicated", rec2.Code, st2.Outcome)
	}
	if st2.ID != st1.ID {
		t.Fatalf("dedup got id %s, want %s", st2.ID, st1.ID)
	}
	if got := s.met.dedupInflight.Load(); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
	close(block)
}

// Graceful shutdown drains accepted jobs to completion and then refuses
// new work with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	h := s.Handler()
	var ids []string
	for core := 1; core <= 3; core++ {
		rec, st := postSpec(t, h, smallSpec(core))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", core, rec.Code)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, id := range ids {
		if st := s.mgr.Get(id).State(); st != StateDone {
			t.Fatalf("job %s ended %v after drain, want done", id, st)
		}
	}
	rec, _ := postSpec(t, h, smallSpec(9))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: code %d, want 503", rec.Code)
	}
}

// When the drain deadline passes, in-flight jobs are canceled rather than
// held forever, and every accepted job still reaches a terminal state.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) { <-ctx.Done() } // wedge until canceled
	h := s.Handler()
	_, st := postSpec(t, h, smallSpec(1))
	j := s.mgr.Get(st.ID)
	waitState(t, j, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatalf("Shutdown returned nil despite wedged job; want drain-deadline error")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("wedged job ended %v, want canceled", got)
	}
}

// A job that exceeds its wall-clock timeout ends canceled with a message
// naming the timeout.
func TestJobTimeout(t *testing.T) {
	s := testServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
	h := s.Handler()
	_, st := postSpec(t, h, smallSpec(1))
	j := s.mgr.Get(st.ID)
	waitState(t, j, StateCanceled)
	_, msg, _ := j.Result()
	if !strings.Contains(msg, "job timeout") {
		t.Fatalf("timeout message %q does not name the job timeout", msg)
	}
	res := get(h, "/jobs/"+st.ID+"/result")
	if res.Code != http.StatusConflict {
		t.Fatalf("result of canceled job: code %d, want 409", res.Code)
	}
}

// DELETE cancels a queued job on the spot, and its spec can then be
// resubmitted fresh.
func TestCancelQueuedAndResubmit(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	_, stA := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(stA.ID), StateRunning)
	_, stB := postSpec(t, h, smallSpec(2)) // parked in the queue

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+stB.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: code %d", rec.Code)
	}
	if got := s.mgr.Get(stB.ID).State(); got != StateCanceled {
		t.Fatalf("canceled queued job in state %v", got)
	}

	rec2, st2 := postSpec(t, h, smallSpec(2))
	if rec2.Code != http.StatusAccepted || st2.Outcome != "accepted" {
		t.Fatalf("resubmit after cancel: code %d outcome %q, want fresh accept", rec2.Code, st2.Outcome)
	}
	close(block)
}

// The LRU evicts by byte budget, oldest first, never the newest entry.
func TestCacheEviction(t *testing.T) {
	s := testServer(t, Config{Workers: 1, CacheBytes: 1}) // every insert exceeds the cap
	h := s.Handler()
	var ids []string
	for core := 1; core <= 3; core++ {
		_, st := postSpec(t, h, smallSpec(core))
		res := get(h, "/jobs/"+st.ID+"/result?wait=true")
		if res.Code != http.StatusOK {
			t.Fatalf("job %d: %d %s", core, res.Code, res.Body.Bytes())
		}
		ids = append(ids, st.ID)
	}
	entries, _ := s.mgr.CacheStats()
	if entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (cap forces single-entry cache)", entries)
	}
	if s.mgr.Get(ids[0]) != nil || s.mgr.Get(ids[1]) != nil {
		t.Fatalf("evicted jobs still reachable")
	}
	if s.mgr.Get(ids[2]) == nil {
		t.Fatalf("newest job evicted; insertion must keep the newest entry")
	}
	if got := s.met.evictions.Load(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
}

// Spec validation failures are 400s with a JSON error body.
func TestSubmitValidation(t *testing.T) {
	s := testServer(t, Config{Workers: 1, MaxWindowNs: 10_000})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"garbage", "{nope"},
		{"unknown field", `{"experiment":"fig3","bogus":1}`},
		{"unknown experiment", `{"experiment":"fig999"}`},
		{"bad quadrant", `{"experiment":"quadrant","quadrant":9}`},
		{"window over cap", `{"experiment":"quadrant","window_ns":20000}`},
		{"bad write frac", `{"experiment":"ratio","write_fracs":[2]}`},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", strings.NewReader(tc.body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (body %s)", tc.name, rec.Code, rec.Body.Bytes())
			continue
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not an apiError", tc.name, rec.Body.Bytes())
		}
	}
}

// Equivalent spellings of a spec normalize to one content address: the
// second submission is served from cache, not re-run.
func TestEquivalentSpecsShareOneJob(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	explicit := exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{1},
		WarmupNs: 1000, WindowNs: 2000, Preset: "cascadelake"}
	_, st1 := postSpec(t, h, explicit)
	if res := get(h, "/jobs/"+st1.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("first run: %d", res.Code)
	}
	defaulted := smallSpec(1) // same computation, knobs left to defaults
	rec2, st2 := postSpec(t, h, defaulted)
	if st2.ID != st1.ID || st2.Outcome != "cache_hit" {
		t.Fatalf("equivalent spec: id %s outcome %q (code %d), want cache hit on %s",
			st2.ID, st2.Outcome, rec2.Code, st1.ID)
	}
}

// Status, list, healthz, experiments, version, and metrics endpoints all
// answer sensibly.
func TestIntrospectionEndpoints(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	_, st := postSpec(t, h, smallSpec(1))
	if res := get(h, "/jobs/"+st.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("run: %d", res.Code)
	}

	if rec := get(h, "/jobs/"+st.ID); rec.Code != http.StatusOK {
		t.Errorf("status: %d", rec.Code)
	}
	if rec := get(h, "/jobs/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", rec.Code)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	rec := get(h, "/jobs")
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list.Jobs) != 1 {
		t.Errorf("list: %v / %s", err, rec.Body.Bytes())
	}
	var hz struct {
		Status, State string
	}
	rec = get(h, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || hz.Status != "ok" || hz.State != "serving" {
		t.Errorf("healthz: %v / %s", err, rec.Body.Bytes())
	}
	var exps struct {
		Experiments []string `json:"experiments"`
	}
	rec = get(h, "/experiments")
	if err := json.Unmarshal(rec.Body.Bytes(), &exps); err != nil || len(exps.Experiments) == 0 {
		t.Errorf("experiments: %v / %s", err, rec.Body.Bytes())
	}
	var ver struct {
		Version string `json:"version"`
	}
	rec = get(h, "/version")
	if err := json.Unmarshal(rec.Body.Bytes(), &ver); err != nil || ver.Version == "" {
		t.Errorf("version: %v / %s", err, rec.Body.Bytes())
	}
	body := get(h, "/metrics").Body.String()
	for _, want := range []string{
		"hostnetd_queue_depth", "hostnetd_queue_capacity",
		"hostnetd_jobs{state=\"done\"} 1",
		"hostnetd_cache_misses_total 1",
		"hostnetd_jobs_finished_total{state=\"done\"} 1",
		"hostnetd_cache_entries 1",
		"hostnetd_job_seconds_total{state=\"done\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// A panicking job is isolated: the daemon survives and reports the job
// failed. A bogus core count slips past spec validation (it is positive)
// but makes the host topology panic inside the simulation.
func TestPanicIsolation(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	spec := exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{100000}, WarmupNs: 1000, WindowNs: 2000}
	rec, st := postSpec(t, h, spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	j := s.mgr.Get(st.ID)
	select {
	case <-j.Done():
	case <-time.After(15 * time.Second):
		t.Fatalf("panicking job never finished")
	}
	_, msg, state := j.Result()
	if state != StateFailed {
		t.Fatalf("panicking job ended %v (%q), want failed", state, msg)
	}
	if res := get(h, "/jobs/"+st.ID+"/result"); res.Code != http.StatusInternalServerError {
		t.Fatalf("result of failed job: %d, want 500", res.Code)
	}
	// The daemon still serves fresh work afterwards.
	_, st2 := postSpec(t, h, smallSpec(1))
	if res := get(h, "/jobs/"+st2.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("daemon wedged after panic: %d", res.Code)
	}
}

func TestStateAndOutcomeStrings(t *testing.T) {
	if fmt.Sprint(StateQueued, StateRunning, StateDone, StateFailed, StateCanceled) !=
		"queued running done failed canceled" {
		t.Fatalf("state names wrong")
	}
	if OutcomeAccepted.String() != "accepted" || OutcomeCacheHit.String() != "cache_hit" ||
		OutcomeDeduplicated.String() != "deduplicated" {
		t.Fatalf("outcome names wrong")
	}
}
