package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters. Everything is atomic so the hot
// paths (submit, job completion) never serialize on a metrics lock; gauges
// that describe current state (queue depth, jobs by state, cache size) are
// computed from the manager at scrape time instead of being tracked here.
type metrics struct {
	cacheHits     atomic.Int64 // submissions served from the result cache
	cacheMisses   atomic.Int64 // submissions that enqueued a new job
	dedupInflight atomic.Int64 // submissions attached to a queued/running job
	rejected      atomic.Int64 // submissions shed with 429 (queue full)
	evictions     atomic.Int64 // cache entries dropped to stay under the byte cap

	finished      [numStates]atomic.Int64 // terminal jobs by final state
	finishedNanos [numStates]atomic.Int64 // total wall-clock by final state
}

// observe records one terminal job.
func (m *metrics) observe(st State, wall time.Duration) {
	m.finished[st].Add(1)
	m.finishedNanos[st].Add(wall.Nanoseconds())
}

// writeProm emits the Prometheus text exposition format (0.0.4). Hand
// rolled: the repo is stdlib-only, and the format is just typed lines.
func (m *metrics) writeProm(w io.Writer, mgr *manager) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("hostnetd_queue_depth", "Jobs waiting for a worker.", mgr.QueueDepth())
	gauge("hostnetd_queue_capacity", "Bounded queue size; beyond this submissions get 429.", cap(mgr.queue))

	var byState [numStates]int
	for _, j := range mgr.Jobs() {
		byState[j.State()]++
	}
	fmt.Fprintf(w, "# HELP hostnetd_jobs Jobs currently tracked (live and cached), by state.\n# TYPE hostnetd_jobs gauge\n")
	for st := StateQueued; st < numStates; st++ {
		fmt.Fprintf(w, "hostnetd_jobs{state=%q} %d\n", st.String(), byState[st])
	}

	entries, bytes := mgr.CacheStats()
	counter("hostnetd_cache_hits_total", "Submissions served from the result cache.", m.cacheHits.Load())
	counter("hostnetd_cache_misses_total", "Submissions that started a new simulation.", m.cacheMisses.Load())
	counter("hostnetd_inflight_dedup_total", "Submissions deduplicated onto an in-flight identical job.", m.dedupInflight.Load())
	counter("hostnetd_jobs_rejected_total", "Submissions shed with 429 because the queue was full.", m.rejected.Load())
	counter("hostnetd_cache_evictions_total", "Cached results evicted to stay under the byte cap.", m.evictions.Load())
	gauge("hostnetd_cache_entries", "Terminal jobs held in the result cache.", entries)
	gauge("hostnetd_cache_bytes", "Approximate bytes held by the result cache.", bytes)

	fmt.Fprintf(w, "# HELP hostnetd_jobs_finished_total Jobs that reached a terminal state.\n# TYPE hostnetd_jobs_finished_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "hostnetd_jobs_finished_total{state=%q} %d\n", st.String(), m.finished[st].Load())
	}
	fmt.Fprintf(w, "# HELP hostnetd_job_seconds_total Wall-clock seconds spent executing jobs, by terminal state.\n# TYPE hostnetd_job_seconds_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "hostnetd_job_seconds_total{state=%q} %g\n",
			st.String(), float64(m.finishedNanos[st].Load())/1e9)
	}
	gauge("hostnetd_draining", "1 once shutdown has begun, else 0.", boolToInt(mgr.Draining()))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
