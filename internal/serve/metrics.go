package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters. Everything is atomic so the hot
// paths (submit, job completion) never serialize on a metrics lock; gauges
// that describe current state (queue depth, jobs by state, cache size) are
// computed from the manager at scrape time instead of being tracked here.
type metrics struct {
	cacheHits      atomic.Int64 // submissions served from the result cache
	cacheMisses    atomic.Int64 // submissions that enqueued a new job
	dedupInflight  atomic.Int64 // submissions attached to a queued/running job
	rejected       atomic.Int64 // submissions shed with 429 (queue full)
	evictions      atomic.Int64 // cache entries dropped to stay under the byte cap
	storeHits      atomic.Int64 // submissions served from the persistent store
	storeWriteErrs atomic.Int64 // write-through Puts that failed (best effort)
	tenantRejected atomic.Int64 // submissions shed with 429 (tenant over quota)
	analyticServed atomic.Int64 // submissions answered inline by the analytic tier
	analyticNanos  atomic.Int64 // total wall-clock spent in analytic answers
	refineEnqueued atomic.Int64 // sim twins enqueued behind analytic answers
	refineSkipped  atomic.Int64 // refinements skipped (queue pressure or window cost)

	finished      [numStates]atomic.Int64 // terminal jobs by final state
	finishedNanos [numStates]atomic.Int64 // total wall-clock by final state

	// Recent sim-job wall-clock durations, for the Retry-After estimate.
	// Analytic answers never pass through here: they are answered inline in
	// microseconds and would drag the mean toward zero.
	durMu   sync.Mutex
	durRing [durRingSize]time.Duration
	durN    int64
}

const durRingSize = 32

// observe records one terminal job.
func (m *metrics) observe(st State, wall time.Duration) {
	m.finished[st].Add(1)
	m.finishedNanos[st].Add(wall.Nanoseconds())
}

// noteJobDuration folds one completed sim job's wall-clock time into the
// recent-duration ring that backs the Retry-After estimate.
func (m *metrics) noteJobDuration(wall time.Duration) {
	m.durMu.Lock()
	m.durRing[m.durN%durRingSize] = wall
	m.durN++
	m.durMu.Unlock()
}

// recentMeanJobDur returns the mean of the last recorded sim-job durations,
// or 0 when no job has completed yet.
func (m *metrics) recentMeanJobDur() time.Duration {
	m.durMu.Lock()
	defer m.durMu.Unlock()
	n := m.durN
	if n == 0 {
		return 0
	}
	if n > durRingSize {
		n = durRingSize
	}
	var sum time.Duration
	for i := int64(0); i < n; i++ {
		sum += m.durRing[i]
	}
	return sum / time.Duration(n)
}

// writeProm emits the Prometheus text exposition format (0.0.4). Hand
// rolled: the repo is stdlib-only, and the format is just typed lines.
func (m *metrics) writeProm(w io.Writer, mgr *manager) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("hostnetd_queue_depth", "Jobs waiting for a worker.", mgr.QueueDepth())
	gauge("hostnetd_queue_capacity", "Bounded queue size; beyond this submissions get 429.", cap(mgr.queue))

	var byState [numStates]int
	for _, j := range mgr.Jobs() {
		byState[j.State()]++
	}
	fmt.Fprintf(w, "# HELP hostnetd_jobs Jobs currently tracked (live and cached), by state.\n# TYPE hostnetd_jobs gauge\n")
	for st := StateQueued; st < numStates; st++ {
		fmt.Fprintf(w, "hostnetd_jobs{state=%q} %d\n", st.String(), byState[st])
	}

	entries, bytes := mgr.CacheStats()
	counter("hostnetd_cache_hits_total", "Submissions served from the result cache.", m.cacheHits.Load())
	counter("hostnetd_cache_misses_total", "Submissions that started a new simulation.", m.cacheMisses.Load())
	counter("hostnetd_inflight_dedup_total", "Submissions deduplicated onto an in-flight identical job.", m.dedupInflight.Load())
	counter("hostnetd_jobs_rejected_total", "Submissions shed with 429 because the queue was full.", m.rejected.Load())
	counter("hostnetd_cache_evictions_total", "Cached results evicted to stay under the byte cap.", m.evictions.Load())
	gauge("hostnetd_cache_entries", "Terminal jobs held in the result cache.", entries)
	gauge("hostnetd_cache_bytes", "Approximate bytes held by the result cache.", bytes)
	counter("hostnetd_tenants_rejected_total", "Submissions shed with 429 because the tenant was over quota.", m.tenantRejected.Load())
	counter("hostnetd_analytic_served_total", "Submissions answered inline by the analytic fidelity tier.", m.analyticServed.Load())
	fmt.Fprintf(w, "# HELP hostnetd_analytic_seconds_total Wall-clock seconds spent computing analytic answers.\n# TYPE hostnetd_analytic_seconds_total counter\nhostnetd_analytic_seconds_total %g\n",
		float64(m.analyticNanos.Load())/1e9)
	counter("hostnetd_refine_enqueued_total", "Sim twins enqueued behind analytic answers for cross-validation.", m.refineEnqueued.Load())
	counter("hostnetd_refine_skipped_total", "Refinements skipped under queue pressure or window cost.", m.refineSkipped.Load())

	if cv := mgr.cv; cv != nil {
		regions := cv.snapshot()
		gauge("hostnetd_crossval_regions", "Config-space regions with analytic-vs-sim error observations.", len(regions))
		counter("hostnetd_crossval_samples_total", "Analytic-vs-sim comparison points folded into the crossval report.", cv.samples())
		fmt.Fprintf(w, "# HELP hostnetd_crossval_max_abs_err_pct Largest absolute colocated-C2M bandwidth error observed, per region.\n# TYPE hostnetd_crossval_max_abs_err_pct gauge\n")
		for _, r := range regions {
			fmt.Fprintf(w, "hostnetd_crossval_max_abs_err_pct{experiment=%q,quadrant=\"%d\",cores=\"%d\"} %g\n",
				r.Experiment, r.Quadrant, r.Cores, r.MaxAbsErrPct)
		}
	}

	if st := mgr.cfg.Store; st != nil {
		ss := st.Stats()
		counter("hostnetd_store_hits_total", "Submissions served from the persistent store.", m.storeHits.Load())
		counter("hostnetd_store_misses_total", "Store lookups that found nothing (or only damage).", ss.Misses)
		counter("hostnetd_store_puts_total", "Results written to the persistent store.", ss.Puts)
		counter("hostnetd_store_put_noops_total", "Write-throughs skipped because the entry already existed.", ss.PutNoops)
		counter("hostnetd_store_evictions_total", "Store entries removed by GC.", ss.Evictions)
		counter("hostnetd_store_gc_bytes_total", "Payload bytes reclaimed by store GC.", ss.GCBytes)
		counter("hostnetd_store_quarantined_total", "Damaged store entries moved aside.", ss.Quarantined)
		counter("hostnetd_store_write_errors_total", "Write-through failures (result kept in memory only).", m.storeWriteErrs.Load())
		counter("hostnetd_store_atime_errors_total", "Access-time bumps that failed; GC recency order may be stale.", ss.AtimeErrors)
		gauge("hostnetd_store_entries", "Entries held by the persistent store.", ss.Entries)
		gauge("hostnetd_store_bytes", "Payload bytes held by the persistent store.", ss.Bytes)
	}

	if fl := mgr.cfg.Fleet; fl != nil {
		fmt.Fprintf(w, "# HELP hostnetd_fleet_dispatch_total Point dispatches started, per worker (includes retries and steals).\n# TYPE hostnetd_fleet_dispatch_total counter\n")
		stats := fl.Stats()
		for _, ws := range stats {
			fmt.Fprintf(w, "hostnetd_fleet_dispatch_total{worker=%q} %d\n", ws.URL, ws.Dispatched)
		}
		fmt.Fprintf(w, "# HELP hostnetd_fleet_done_total Winning point results returned, per worker.\n# TYPE hostnetd_fleet_done_total counter\n")
		for _, ws := range stats {
			fmt.Fprintf(w, "hostnetd_fleet_done_total{worker=%q} %d\n", ws.URL, ws.Done)
		}
		fmt.Fprintf(w, "# HELP hostnetd_fleet_retries_total Failed dispatches that re-queued their point, per worker.\n# TYPE hostnetd_fleet_retries_total counter\n")
		for _, ws := range stats {
			fmt.Fprintf(w, "hostnetd_fleet_retries_total{worker=%q} %d\n", ws.URL, ws.Retries)
		}
		fmt.Fprintf(w, "# HELP hostnetd_fleet_steals_total Duplicate dispatches of slow in-flight points, per worker.\n# TYPE hostnetd_fleet_steals_total counter\n")
		for _, ws := range stats {
			fmt.Fprintf(w, "hostnetd_fleet_steals_total{worker=%q} %d\n", ws.URL, ws.Steals)
		}
		fmt.Fprintf(w, "# HELP hostnetd_fleet_inflight Points currently dispatched, per worker.\n# TYPE hostnetd_fleet_inflight gauge\n")
		for _, ws := range stats {
			fmt.Fprintf(w, "hostnetd_fleet_inflight{worker=%q} %d\n", ws.URL, ws.InFlight)
		}
	}

	fmt.Fprintf(w, "# HELP hostnetd_jobs_finished_total Jobs that reached a terminal state.\n# TYPE hostnetd_jobs_finished_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "hostnetd_jobs_finished_total{state=%q} %d\n", st.String(), m.finished[st].Load())
	}
	fmt.Fprintf(w, "# HELP hostnetd_job_seconds_total Wall-clock seconds spent executing jobs, by terminal state.\n# TYPE hostnetd_job_seconds_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "hostnetd_job_seconds_total{state=%q} %g\n",
			st.String(), float64(m.finishedNanos[st].Load())/1e9)
	}
	gauge("hostnetd_draining", "1 once shutdown has begun, else 0.", boolToInt(mgr.Draining()))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
