package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/runner"
)

// State is a job's lifecycle position. Transitions are monotone:
// Queued -> Running -> (Done | Failed | Canceled), with the extra edge
// Queued -> Canceled for jobs canceled before a worker picks them up.
type State int

// The job states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
	numStates
)

// String names the state as the API reports it.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return "invalid"
}

// Submission errors.
var (
	// ErrQueueFull is returned when the bounded admission queue is full; the
	// HTTP layer translates it to 429 + Retry-After (load shedding, never
	// unbounded buffering).
	ErrQueueFull = errors.New("job queue full")
	// ErrClosed is returned once shutdown has begun; admission stops
	// immediately while accepted jobs drain.
	ErrClosed = errors.New("server is draining; not accepting jobs")
	// ErrTenantQuota is returned when a tenant already has its quota of
	// admitted jobs in flight; also a 429, but scoped to the tenant — the
	// shared queue may be wide open.
	ErrTenantQuota = errors.New("tenant quota exceeded")
)

// Outcome says how a submission was satisfied.
type Outcome int

// Submission outcomes.
const (
	// OutcomeAccepted: a new job was created and enqueued.
	OutcomeAccepted Outcome = iota
	// OutcomeCacheHit: an identical spec already completed; the result is
	// served from the content-addressed cache without running anything.
	OutcomeCacheHit
	// OutcomeDeduplicated: an identical spec is queued or running; the
	// submission attaches to that in-flight job (one simulation serves all).
	OutcomeDeduplicated
	// OutcomeStoreHit: the spec missed the in-memory cache but its result
	// was found in the persistent store (this daemon's earlier life, or a
	// fleet peer sharing the directory); served without running anything.
	OutcomeStoreHit
	// OutcomeAnalytic: an analytic-fidelity spec was answered inline by the
	// predictive model — no queue, no worker, the result is available in
	// the submit response (and cached/stored like any computed result).
	OutcomeAnalytic
)

// String names the outcome as the API reports it.
func (o Outcome) String() string {
	switch o {
	case OutcomeCacheHit:
		return "cache_hit"
	case OutcomeDeduplicated:
		return "deduplicated"
	case OutcomeStoreHit:
		return "store_hit"
	case OutcomeAnalytic:
		return "analytic"
	}
	return "accepted"
}

// Job is one submitted experiment. Its identity IS its content address:
// the ID is derived from the SHA-256 of the canonical spec encoding, which
// is what makes concurrent duplicate submissions collapse onto one
// execution and repeated submissions hit the cache.
type Job struct {
	ID        string
	Spec      exp.Spec // normalized
	Canonical []byte   // canonical spec bytes the ID hashes
	StoreKey  string   // full hex SHA-256 of Canonical: the persistent-store address
	Tenant    string   // admission-quota principal (X-Tenant header; "" = anonymous)

	mu          sync.Mutex
	state       State
	errMsg      string
	result      []byte // canonical Result envelope bytes (StateDone only)
	points      int64  // completed sweep tasks
	submitted   time.Time
	started     time.Time
	finished    time.Time
	cancelCause string
	cancel      context.CancelFunc
	subs        map[chan struct{}]struct{}
	done        chan struct{}

	// Cache bookkeeping, guarded by the manager's mutex.
	lruElem *list.Element
	cost    int64

	// Tenant-quota bookkeeping, guarded by the manager's mutex: charged on
	// enqueue, released exactly once on the first terminal transition that
	// reaches releaseTenant (cancel-while-queued releases immediately; the
	// worker's deferred release is then a no-op).
	quotaCharged  bool
	quotaReleased bool
}

func newJob(id string, spec exp.Spec, canonical []byte) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		Canonical: canonical,
		submitted: time.Now(),
		subs:      make(map[chan struct{}]struct{}),
		done:      make(chan struct{}),
	}
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the canonical result bytes and error message; result is
// non-nil only in StateDone.
func (j *Job) Result() (result []byte, errMsg string, state State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.errMsg, j.state
}

// PointsDone reports completed sweep tasks.
func (j *Job) PointsDone() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.points
}

// bumpProgress records one completed sweep task and pokes subscribers.
// It is the job's exp.Options.Progress hook, called concurrently from
// sweep pool workers.
func (j *Job) bumpProgress() {
	j.mu.Lock()
	j.points++
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending poke
		}
	}
	j.mu.Unlock()
}

// subscribe registers a progress listener; the returned channel receives a
// poke (coalesced) after each completed sweep task.
func (j *Job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// markRunning moves Queued -> Running; false if the job was canceled while
// queued (the worker then skips it).
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// requestCancel cancels the job: queued jobs finish as Canceled on the
// spot; running jobs get their context canceled (the sweep stops between
// points and the worker records the terminal state). Terminal jobs are
// untouched. Reports whether the request had any effect and whether the
// job was still queued (it turned terminal right here, without a worker).
func (j *Job) requestCancel(reason string) (acted, wasQueued bool) {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.cancelCause = reason
		j.finishLocked(StateCanceled, nil, "canceled while queued: "+reason)
		j.mu.Unlock()
		return true, true
	case StateRunning:
		j.cancelCause = reason
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true, false
	}
	j.mu.Unlock()
	return false, false
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, result []byte, errMsg string) {
	j.mu.Lock()
	j.finishLocked(state, result, errMsg)
	j.mu.Unlock()
}

func (j *Job) finishLocked(state State, result []byte, errMsg string) {
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	close(j.done)
}

// jobKeys derives the content addresses from one hash: the short job ID
// ("j" + first 16 hex chars of the canonical spec's SHA-256) the API uses,
// and the full hex digest the persistent store files results under.
func jobKeys(canonical []byte) (id, storeKey string) {
	sum := sha256.Sum256(canonical)
	storeKey = hex.EncodeToString(sum[:])
	return "j" + storeKey[:16], storeKey
}

// manager owns the bounded job queue, the worker pool, and the
// content-addressed result cache (LRU by bytes). One mutex guards the job
// table and cache; per-job state has its own lock (lock order: manager
// before job, never the reverse).
type manager struct {
	cfg        Config
	met        *metrics
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // content address -> job (live and cached)
	lru      *list.List      // terminal jobs, most recently used at front
	lruBytes int64
	tenants  map[string]int // tenant -> admitted jobs in flight (queued+running)
	// refine maps a sim twin's job ID to the analytic envelope awaiting
	// comparison when the twin completes (Config.Refine).
	refine map[string][]byte

	// cv accumulates analytic-vs-sim error per config-space region, fed by
	// completed crossval jobs and by background refinement comparisons.
	cv *crossvalTracker

	queue chan *Job
	wg    sync.WaitGroup

	// beforeRun, when set (tests only), runs on the worker goroutine after
	// the job turns Running and before the simulation starts.
	beforeRun func(ctx context.Context, j *Job)
}

func newManager(cfg Config, met *metrics) *manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		cfg:        cfg,
		met:        met,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		lru:        list.New(),
		tenants:    make(map[string]int),
		refine:     make(map[string][]byte),
		cv:         newCrossvalTracker(),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit admits a spec: content-address it, serve it from the in-memory
// cache, an in-flight duplicate, or the persistent store if possible,
// otherwise enqueue a new job — or shed load if the bounded queue is full
// or the tenant is over quota. The spec must already be normalized and
// validated (the HTTP layer does both).
func (m *manager) Submit(spec exp.Spec, canonical []byte, tenant string) (*Job, Outcome, error) {
	id, storeKey := jobKeys(canonical)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, OutcomeAccepted, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		switch j.State() {
		case StateDone:
			m.touchLocked(j)
			m.met.cacheHits.Add(1)
			return j, OutcomeCacheHit, nil
		case StateQueued, StateRunning:
			m.met.dedupInflight.Add(1)
			return j, OutcomeDeduplicated, nil
		default:
			// Failed or canceled: drop the stale record and retry fresh.
			m.removeLocked(j)
		}
	}
	if st := m.cfg.Store; st != nil {
		// Read through the persistent store before paying for a simulation:
		// a result filed by an earlier life of this daemon — or by a fleet
		// peer sharing the directory — is as good as a local cache hit
		// (determinism guarantees the bytes). The revived job enters the
		// in-memory LRU like any freshly computed one.
		if result, ok := st.Get(storeKey); ok {
			j := newJob(id, spec, canonical)
			j.StoreKey = storeKey
			j.finish(StateDone, result, "")
			m.jobs[id] = j
			m.insertLocked(j, StateDone, result)
			m.met.storeHits.Add(1)
			return j, OutcomeStoreHit, nil
		}
	}
	if q := m.cfg.TenantQuota; q > 0 && m.tenants[tenant] >= q {
		// Per-tenant shed happens only on the path that would consume a
		// queue slot: cache, dedup, and store hits above cost the daemon
		// nothing, so they are never charged against the quota.
		return nil, OutcomeAccepted, ErrTenantQuota
	}
	j := newJob(id, spec, canonical)
	j.StoreKey = storeKey
	j.Tenant = tenant
	select {
	case m.queue <- j:
		m.jobs[id] = j
		m.tenants[tenant]++
		j.quotaCharged = true
		m.met.cacheMisses.Add(1)
		return j, OutcomeAccepted, nil
	default:
		// The HTTP layer counts the rejection if it actually sheds load:
		// it retries the admission once first, and a retry that lands is
		// not a shed.
		return nil, OutcomeAccepted, ErrQueueFull
	}
}

// releaseTenant returns a job's admission-quota slot, exactly once per
// charge: only jobs that actually enqueued were charged (cache, store,
// dedup, and analytic answers never were), and a slot released early by
// Cancel is not released again by the worker's deferred call. Idempotence
// is what makes auditing terminal paths tractable — every path may call
// this safely.
func (m *manager) releaseTenant(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !j.quotaCharged || j.quotaReleased {
		return
	}
	j.quotaReleased = true
	if n := m.tenants[j.Tenant]; n <= 1 {
		delete(m.tenants, j.Tenant)
	} else {
		m.tenants[j.Tenant] = n - 1
	}
}

// Cancel forwards a cancellation request and, when the job was canceled
// while still queued, releases its tenant-quota slot immediately: the
// tombstone sitting in the queue must not hold the tenant's admission
// budget until a worker happens to drain it.
func (m *manager) Cancel(j *Job, reason string) bool {
	acted, wasQueued := j.requestCancel(reason)
	if acted && wasQueued {
		m.releaseTenant(j)
	}
	return acted
}

// tenantInFlight reports a tenant's charged admission slots (tests).
func (m *manager) tenantInFlight(tenant string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[tenant]
}

// Get returns the job at a content address or job ID.
func (m *manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs snapshots all live and cached jobs, most recently submitted first.
func (m *manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job with panic isolation, per-job timeout, and progress
// accounting, then files the terminal result in the cache.
func (m *manager) run(j *Job) {
	defer m.releaseTenant(j) // admission-quota slot held from Submit until terminal
	ctx, cancel := context.WithTimeout(m.baseCtx, m.cfg.JobTimeout)
	defer cancel()
	if !j.markRunning(cancel) {
		// Canceled while queued: the job is already terminal, but it still
		// occupies a slot in m.jobs. File it in the LRU so the record is
		// accounted for and eventually evicted instead of leaking forever.
		// Skip if a resubmission already replaced the record (the stale
		// object must not shadow the live one in the LRU).
		m.mu.Lock()
		if m.jobs[j.ID] == j {
			m.insertLocked(j, StateCanceled, nil)
		}
		m.mu.Unlock()
		return
	}
	if h := m.beforeRun; h != nil {
		h(ctx, j)
	}

	opt := exp.Defaults()
	opt.Parallelism = m.cfg.Parallelism
	opt.Audit = m.cfg.Audit
	opt.BaseCtx = ctx
	opt.Progress = j.bumpProgress

	start := time.Now()
	var out []byte
	var runErr error
	// runner.Do gives panic isolation: a panic anywhere in the simulation
	// (including an audit violation under Config.Audit) surfaces as a
	// *runner.PanicError with the goroutine's stack instead of killing the
	// daemon. In coordinator mode the "simulation" is a fleet fan-out that
	// produces the same bytes (exp.MergePointResults byte-identity).
	poolErr := runner.Do(ctx, 1, func() {
		if fl := m.cfg.Fleet; fl != nil {
			out, runErr = fl.RunSpecJSON(ctx, j.Spec, j.bumpProgress)
		} else {
			out, runErr = exp.RunSpecJSON(j.Spec, opt)
		}
	})
	wall := time.Since(start)

	var st State
	var msg string
	switch {
	case ctx.Err() != nil && (poolErr != nil || runErr != nil):
		// Cancellation (client, timeout, or shutdown deadline): RunSpecJSON
		// reports it as an error, and any panic the pool caught in that
		// window is just the context error re-raised between sweep points.
		st = StateCanceled
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			msg = fmt.Sprintf("canceled: exceeded job timeout %v", m.cfg.JobTimeout)
		default:
			msg = "canceled: " + ctx.Err().Error()
		}
	case poolErr != nil:
		st, msg = StateFailed, truncate(poolErr.Error(), 8<<10)
	case runErr != nil:
		st, msg = StateFailed, truncate(runErr.Error(), 8<<10)
	default:
		st = StateDone
	}

	if st == StateDone {
		m.writeThrough(j, out)
	}
	m.mu.Lock()
	m.insertLocked(j, st, out)
	m.mu.Unlock()
	j.finish(st, out, msg)
	m.met.observe(st, wall)
	if st == StateDone {
		// Feed the Retry-After estimate (completed sim jobs only; analytic
		// answers never occupy a queue slot so they must not dilute it) and
		// the crossval tracker.
		m.met.noteJobDuration(wall)
		m.noteCrossvalJob(j.Spec, out)
	}
	// A refinement watch is consumed no matter how the twin ended; only a
	// completed twin yields a comparison.
	if env := m.takeRefine(j.ID); env != nil && st == StateDone {
		m.noteCrossval(env, out)
	}
}

// noteCrossvalJob records a completed crossval experiment's points.
func (m *manager) noteCrossvalJob(spec exp.Spec, env []byte) {
	if spec.Experiment != "crossval" {
		return
	}
	cv, err := exp.DecodeCrossval(env)
	if err != nil {
		return
	}
	m.cv.add("crossval", cv.Points)
}

// noteCrossval compares an analytic envelope with its completed sim twin
// and records the per-point errors. Best-effort observability: structural
// mismatches are dropped, never surfaced to either job.
func (m *manager) noteCrossval(analyticEnv, simEnv []byte) {
	experiment, pts, err := exp.CrossvalFromEnvelopes(analyticEnv, simEnv)
	if err != nil || len(pts) == 0 {
		return
	}
	m.cv.add(experiment, pts)
}

// watchRefine registers an analytic envelope for comparison when the sim
// twin completes. If the twin is already terminal (a dedup race, or a twin
// canceled before the watch landed), the registration is consumed inline.
func (m *manager) watchRefine(twin *Job, analyticEnv []byte) {
	m.mu.Lock()
	m.refine[twin.ID] = analyticEnv
	m.mu.Unlock()
	if st := twin.State(); st == StateQueued || st == StateRunning {
		return // run() consumes the watch at the terminal transition
	}
	if env := m.takeRefine(twin.ID); env != nil {
		if result, _, st := twin.Result(); st == StateDone {
			m.noteCrossval(env, result)
		}
	}
}

// takeRefine consumes a refinement watch; nil if none (or already taken).
func (m *manager) takeRefine(id string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	env := m.refine[id]
	delete(m.refine, id)
	return env
}

// RunAnalytic is the analytic fast path: answer the spec inline — cache,
// then store, then the predictive model — without touching the queue, the
// worker pool, or the tenant quota (like cache hits, analytic answers cost
// the daemon microseconds, so they are never charged against admission).
// The manager lock is held across the computation: at microseconds per
// answer that is cheaper than handling the insert race between concurrent
// identical submissions.
func (m *manager) RunAnalytic(spec exp.Spec, canonical []byte) (*Job, Outcome, error) {
	id, storeKey := jobKeys(canonical)
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, OutcomeAccepted, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		if j.State() == StateDone {
			m.touchLocked(j)
			m.met.cacheHits.Add(1)
			return j, OutcomeCacheHit, nil
		}
		// Analytic addresses never enqueue, so a non-Done record can only
		// be a stale failure; drop it and recompute.
		m.removeLocked(j)
	}
	if st := m.cfg.Store; st != nil {
		if result, ok := st.Get(storeKey); ok {
			j := newJob(id, spec, canonical)
			j.StoreKey = storeKey
			j.finish(StateDone, result, "")
			m.jobs[id] = j
			m.insertLocked(j, StateDone, result)
			m.met.storeHits.Add(1)
			return j, OutcomeStoreHit, nil
		}
	}
	out, err := exp.RunSpecJSON(spec, exp.Defaults())
	if err != nil {
		return nil, OutcomeAccepted, err
	}
	j := newJob(id, spec, canonical)
	j.StoreKey = storeKey
	j.finish(StateDone, out, "")
	m.jobs[id] = j
	m.insertLocked(j, StateDone, out)
	m.writeThrough(j, out)
	m.met.analyticServed.Add(1)
	m.met.analyticNanos.Add(time.Since(start).Nanoseconds())
	return j, OutcomeAnalytic, nil
}

// writeThrough files a completed result in the persistent store (best
// effort: a full disk degrades the daemon to memory-only, it does not fail
// the job that just computed a perfectly good result).
func (m *manager) writeThrough(j *Job, result []byte) {
	st := m.cfg.Store
	if st == nil || j.StoreKey == "" {
		return
	}
	if err := st.Put(j.StoreKey, result); err != nil {
		m.met.storeWriteErrs.Add(1)
	}
}

// insertLocked files a terminal job in the LRU and evicts over-budget
// entries (never the entry being inserted: a single oversized result is
// served once rather than thrashing). Re-inserting a job that is already
// filed replaces its accounted cost instead of double-counting it, so
// CacheStats bytes stay equal to the sum of the entries actually held;
// zero-byte results still cost jobOverheadBytes.
func (m *manager) insertLocked(j *Job, st State, result []byte) {
	cost := int64(len(result)) + jobOverheadBytes
	if j.lruElem != nil {
		m.lruBytes += cost - j.cost
		j.cost = cost
		m.lru.MoveToFront(j.lruElem)
	} else {
		j.cost = cost
		j.lruElem = m.lru.PushFront(j)
		m.lruBytes += j.cost
	}
	for m.lruBytes > m.cfg.CacheBytes && m.lru.Len() > 1 {
		ev := m.lru.Back().Value.(*Job)
		if ev == j {
			break
		}
		m.removeLocked(ev)
		m.met.evictions.Add(1)
	}
}

// jobOverheadBytes approximates per-entry bookkeeping (job struct, map and
// list slots, spec) so even empty results have nonzero cache cost.
const jobOverheadBytes = 1024

// touchLocked marks a cached job most recently used.
func (m *manager) touchLocked(j *Job) {
	if j.lruElem != nil {
		m.lru.MoveToFront(j.lruElem)
	}
}

// removeLocked forgets a job entirely (cache eviction or stale-failure
// replacement).
func (m *manager) removeLocked(j *Job) {
	if j.lruElem != nil {
		m.lru.Remove(j.lruElem)
		m.lruBytes -= j.cost
		j.lruElem = nil
	}
	delete(m.jobs, j.ID)
}

// CacheStats reports the cache size for metrics.
func (m *manager) CacheStats() (entries int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len(), m.lruBytes
}

// QueueDepth reports jobs waiting for a worker.
func (m *manager) QueueDepth() int { return len(m.queue) }

// Draining reports whether shutdown has begun.
func (m *manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shutdown stops admission immediately, drains queued and running jobs
// until ctx's deadline, then cancels whatever is still in flight and waits
// for the workers to exit. Accepted jobs are never dropped silently: each
// reaches Done, Failed, or Canceled.
func (m *manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	m.mu.Unlock()
	if first {
		close(m.queue) // workers drain what was admitted, then exit
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		m.flushStore()
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel in-flight and still-queued jobs
		<-drained
		m.flushStore()
		return fmt.Errorf("drain deadline exceeded, in-flight jobs canceled: %w", ctx.Err())
	}
}

// flushStore re-files every completed result in the persistent store after
// the drain: jobs write through as they finish, so this is normally all
// no-op Puts, but it retries any write that failed transiently (disk
// briefly full) so a graceful shutdown never strands a computed result in
// memory only.
func (m *manager) flushStore() {
	if m.cfg.Store == nil {
		return
	}
	m.mu.Lock()
	done := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if j.StoreKey != "" && j.State() == StateDone {
			done = append(done, j)
		}
	}
	m.mu.Unlock()
	for _, j := range done {
		result, _, _ := j.Result()
		m.writeThrough(j, result)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "... (truncated)"
}
