package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/store"
)

// analyticSpec is a quadrant sweep answered by the predictive model.
func analyticSpec(cores ...int) exp.Spec {
	return exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: cores, Fidelity: exp.FidelityAnalytic}
}

// The analytic fast path end to end: answered inline with 200 + outcome
// "analytic" (never queued, never charged to the tenant), cached for
// resubmission, written through to the store, and byte-identical to a
// direct RunSpecJSON.
func TestAnalyticFastPath(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Workers: 1, Store: st})
	h := s.Handler()
	spec := analyticSpec(1, 2)

	start := time.Now()
	rec, status := postSpec(t, h, spec)
	cold := time.Since(start)
	if rec.Code != http.StatusOK || status.Outcome != "analytic" {
		t.Fatalf("analytic submit: code %d outcome %q body %s, want 200 analytic",
			rec.Code, status.Outcome, rec.Body.Bytes())
	}
	// The acceptance bar is <10ms cold; allow generous CI slack and log the
	// real number so regressions are visible in the test output.
	t.Logf("cold analytic answer in %v", cold)
	if cold > 2*time.Second {
		t.Errorf("cold analytic answer took %v: the fast path is not fast", cold)
	}

	res := get(h, "/jobs/"+status.ID+"/result")
	if res.Code != http.StatusOK {
		t.Fatalf("result: code %d body %s", res.Code, res.Body.Bytes())
	}
	want, err := exp.RunSpecJSON(spec.Normalized(), exp.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Body.Bytes(), append(want, '\n')) {
		t.Fatalf("analytic result differs from direct run:\n got %s\nwant %s", res.Body.Bytes(), want)
	}

	rec2, status2 := postSpec(t, h, spec)
	if rec2.Code != http.StatusOK || status2.Outcome != "cache_hit" || status2.ID != status.ID {
		t.Fatalf("resubmit: code %d outcome %q id %s, want 200 cache_hit %s",
			rec2.Code, status2.Outcome, status2.ID, status.ID)
	}

	// The daemon-smoke metric contract: analytic answers ride their own
	// counters, leaving the sim-tier jobs_finished/cache_misses untouched.
	if got := s.met.analyticServed.Load(); got != 1 {
		t.Errorf("analytic served = %d, want 1", got)
	}
	if got := s.met.cacheMisses.Load(); got != 0 {
		t.Errorf("cache misses = %d after analytic-only traffic, want 0", got)
	}
	if got := s.met.finished[StateDone].Load(); got != 0 {
		t.Errorf("jobs finished done = %d after analytic-only traffic, want 0", got)
	}
	if got := s.mgr.tenantInFlight(""); got != 0 {
		t.Errorf("anonymous tenant holds %d slots after inline answers, want 0", got)
	}

	// Write-through happened: a second daemon sharing the directory serves
	// the same spec as a store hit without evaluating the model.
	s2 := testServer(t, Config{Workers: 1, Store: st})
	rec3, status3 := postSpec(t, s2.Handler(), spec)
	if rec3.Code != http.StatusOK || status3.Outcome != "store_hit" {
		t.Fatalf("second life: code %d outcome %q, want 200 store_hit", rec3.Code, status3.Outcome)
	}
}

// Specs the model cannot answer get a typed 422 — distinct from the 400s
// of malformed specs — telling the client to fall back to the sim tier.
func TestAnalyticUnsupportedIs422(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	for _, spec := range []exp.Spec{
		{Experiment: "fig3", Fidelity: exp.FidelityAnalytic},
		{Experiment: "incast", Fidelity: exp.FidelityAnalytic},
		{Experiment: "quadrant", Preset: "icelake", Fidelity: exp.FidelityAnalytic},
		{Experiment: "quadrant", DDIO: true, Fidelity: exp.FidelityAnalytic},
	} {
		rec, _ := postSpec(t, h, spec)
		if rec.Code != http.StatusUnprocessableEntity {
			t.Errorf("%s (preset=%q ddio=%v): code %d, want 422; body %s",
				spec.Experiment, spec.Preset, spec.DDIO, rec.Code, rec.Body.Bytes())
		}
	}
	// Nothing unsupported was cached: resubmitting as sim works normally.
	rec, status := postSpec(t, h, smallSpec(1))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("sim submit after 422s: code %d", rec.Code)
	}
	if res := get(h, "/jobs/"+status.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("sim result: code %d", res.Code)
	}
}

// -fidelity restricts the tiers a server accepts, with 400 (not 422: the
// spec is fine, this server just doesn't serve that tier).
func TestFidelityRestriction(t *testing.T) {
	simOnly := testServer(t, Config{Workers: 1, Fidelity: "sim"})
	if rec, _ := postSpec(t, simOnly.Handler(), analyticSpec(1)); rec.Code != http.StatusBadRequest {
		t.Errorf("analytic spec on -fidelity sim server: code %d, want 400", rec.Code)
	}

	anOnly := testServer(t, Config{Workers: 1, Fidelity: "analytic"})
	if rec, _ := postSpec(t, anOnly.Handler(), smallSpec(1)); rec.Code != http.StatusBadRequest {
		t.Errorf("sim spec on -fidelity analytic server: code %d, want 400", rec.Code)
	}
	if rec, status := postSpec(t, anOnly.Handler(), analyticSpec(1)); rec.Code != http.StatusOK || status.Outcome != "analytic" {
		t.Errorf("analytic spec on -fidelity analytic server: code %d outcome %q", rec.Code, status.Outcome)
	}
}

// crossvalReport is the GET /crossval body.
type crossvalReport struct {
	EnvelopePct float64          `json:"envelope_pct"`
	Samples     int64            `json:"samples"`
	Regions     []CrossvalRegion `json:"regions"`
}

func getCrossval(t *testing.T, h http.Handler) crossvalReport {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/crossval", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /crossval: code %d", rec.Code)
	}
	var rep crossvalReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("GET /crossval: %v\n%s", err, rec.Body.Bytes())
	}
	return rep
}

// Refine mode: a fresh analytic answer enqueues its sim twin in the
// background, and the completed pair lands in GET /crossval.
func TestRefineFeedsCrossval(t *testing.T) {
	s := testServer(t, Config{Workers: 2, Refine: true})
	h := s.Handler()

	rec, status := postSpec(t, h, analyticSpec(1))
	if rec.Code != http.StatusOK || status.Outcome != "analytic" {
		t.Fatalf("analytic submit: code %d outcome %q", rec.Code, status.Outcome)
	}
	if got := s.met.refineEnqueued.Load(); got != 1 {
		t.Fatalf("refine enqueued = %d, want 1", got)
	}

	deadline := time.Now().Add(30 * time.Second)
	var rep crossvalReport
	for {
		rep = getCrossval(t, h)
		if rep.Samples > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.Samples != 1 || len(rep.Regions) != 1 {
		t.Fatalf("crossval report after refinement: %+v", rep)
	}
	r := rep.Regions[0]
	if r.Experiment != "quadrant" || r.Quadrant != 1 || r.Cores != 1 || r.Samples != 1 {
		t.Fatalf("region: %+v", r)
	}
	if rep.EnvelopePct != exp.CrossvalEnvelopePct {
		t.Fatalf("envelope_pct = %v, want %v", rep.EnvelopePct, exp.CrossvalEnvelopePct)
	}
	// The twin ran at the paper's default windows, where the model is
	// inside its envelope.
	if !r.WithinEnvelope {
		t.Errorf("refinement pair outside the envelope: %+v", r)
	}
	// The reserved refine tenant released its slot.
	if got := s.mgr.tenantInFlight(refineTenant); got != 0 {
		t.Errorf("refine tenant holds %d slots after completion, want 0", got)
	}

	// Resubmitting is a cache hit: no second twin.
	postSpec(t, h, analyticSpec(1))
	if got := s.met.refineEnqueued.Load(); got != 1 {
		t.Errorf("refine enqueued = %d after cache hit, want still 1", got)
	}
}

// A completed crossval experiment job feeds the same report.
func TestCrossvalJobFeedsReport(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	spec := exp.Spec{Experiment: "crossval", Quadrant: 1, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000}
	rec, status := postSpec(t, h, spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	if res := get(h, "/jobs/"+status.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("result: code %d", res.Code)
	}
	rep := getCrossval(t, h)
	if rep.Samples != 2 || len(rep.Regions) != 2 {
		t.Fatalf("report after crossval job: %+v", rep)
	}
	for _, r := range rep.Regions {
		if r.Experiment != "crossval" {
			t.Errorf("region experiment %q, want crossval", r.Experiment)
		}
	}
}

// retryAfterSecs: backlog spread across workers at the recent mean,
// rounded up, clamped to [1, 60], and 1 with no history.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		depth, workers int
		mean           time.Duration
		want           int
	}{
		{0, 2, time.Second, 1},            // empty queue
		{5, 2, 0, 1},                      // no history yet
		{10, 2, 3 * time.Second, 15},      // 10×3s / 2 workers
		{3, 2, 100 * time.Millisecond, 1}, // sub-second rounds up to the floor
		{3, 2, 900 * time.Millisecond, 2}, // 1.35s rounds up
		{100, 1, 10 * time.Second, 60},    // clamped
		{1, 4, 500 * time.Millisecond, 1}, // fractional backlog
		{64, 2, 4 * time.Second, 60},      // a full default queue of fig3s
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.depth, c.workers, c.mean); got != c.want {
			t.Errorf("retryAfterSecs(%d, %d, %v) = %d, want %d", c.depth, c.workers, c.mean, got, c.want)
		}
	}
}

// Hammer one tenant through every terminal path — done, cache hit, dedup,
// cancel-while-queued, cancel-while-running, analytic inline — and the
// quota must return to zero. This is the regression test for the audit of
// releaseTenant call sites.
func TestTenantQuotaReleasedOnEveryTerminalPath(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 8, TenantQuota: 4})
	h := s.Handler()
	const tenant = "t1"

	post := func(spec exp.Spec) (*httptest.ResponseRecorder, JobStatus) {
		t.Helper()
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/jobs", bytes.NewReader(b))
		req.Header.Set("X-Tenant", tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var st JobStatus
		if rec.Code == http.StatusOK || rec.Code == http.StatusAccepted {
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatalf("submit response: %v", err)
			}
		}
		return rec, st
	}

	// Path 1: ordinary completion.
	_, stDone := post(smallSpec(1))
	if res := get(h, "/jobs/"+stDone.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("done path: code %d", res.Code)
	}
	// Path 2+3: cache hit and dedup (identical spec while the first is
	// terminal / while a slow one is in flight).
	if _, st := post(smallSpec(1)); st.Outcome != "cache_hit" {
		t.Fatalf("cache-hit path: outcome %q", st.Outcome)
	}

	// Occupy the single worker so subsequent submissions stay queued.
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	_, stRun := post(smallSpec(2))
	waitState(t, s.mgr.Get(stRun.ID), StateRunning)
	_, stDup := post(smallSpec(2)) // dedup onto the running job
	if stDup.Outcome != "deduplicated" {
		t.Fatalf("dedup path: outcome %q", stDup.Outcome)
	}
	_, stQueued := post(smallSpec(3))

	// The tenant now holds 2 slots (running + queued; dedup and hits are
	// never charged).
	if got := s.mgr.tenantInFlight(tenant); got != 2 {
		t.Fatalf("in-flight = %d with one running and one queued, want 2", got)
	}

	// Path 4: cancel while queued must free the slot immediately — before
	// any worker touches the tombstone.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+stQueued.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: code %d", rec.Code)
	}
	if got := s.mgr.tenantInFlight(tenant); got != 1 {
		t.Fatalf("in-flight = %d right after cancel-while-queued, want 1 (slot leaked)", got)
	}

	// Path 5: analytic inline answers are never charged.
	if rec, st := post(analyticSpec(1)); rec.Code != http.StatusOK || st.Outcome != "analytic" {
		t.Fatalf("analytic path: code %d outcome %q", rec.Code, st.Outcome)
	}
	if got := s.mgr.tenantInFlight(tenant); got != 1 {
		t.Fatalf("in-flight = %d after analytic answer, want still 1", got)
	}

	// Path 6: cancel while running.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+stRun.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel running: code %d", rec.Code)
	}
	close(block)
	waitState(t, s.mgr.Get(stRun.ID), StateCanceled)

	deadline := time.Now().Add(15 * time.Second)
	for s.mgr.tenantInFlight(tenant) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d after every job terminal, want 0", s.mgr.tenantInFlight(tenant))
		}
		time.Sleep(time.Millisecond)
	}
}

// Double-cancel and cancel-after-completion must not over-release: the
// quota map never goes negative (idempotence of releaseTenant).
func TestCancelIsIdempotentOnQuota(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 8, TenantQuota: 2})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()

	b, _ := json.Marshal(smallSpec(1))
	req := httptest.NewRequest("POST", "/jobs", bytes.NewReader(b))
	req.Header.Set("X-Tenant", "t2")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st JobStatus
	json.Unmarshal(rec.Body.Bytes(), &st)
	waitState(t, s.mgr.Get(st.ID), StateRunning)

	b2, _ := json.Marshal(smallSpec(2))
	req2 := httptest.NewRequest("POST", "/jobs", bytes.NewReader(b2))
	req2.Header.Set("X-Tenant", "t2")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	var stQ JobStatus
	json.Unmarshal(rec2.Body.Bytes(), &stQ)

	for i := 0; i < 3; i++ { // hammer DELETE on the queued job
		r := httptest.NewRecorder()
		h.ServeHTTP(r, httptest.NewRequest("DELETE", "/jobs/"+stQ.ID, nil))
	}
	if got := s.mgr.tenantInFlight("t2"); got != 1 {
		t.Fatalf("in-flight = %d after triple cancel of the queued job, want 1", got)
	}
	close(block)
	waitState(t, s.mgr.Get(st.ID), StateDone)
	deadline := time.Now().Add(15 * time.Second)
	for s.mgr.tenantInFlight("t2") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d at the end, want 0", s.mgr.tenantInFlight("t2"))
		}
		time.Sleep(time.Millisecond)
	}
}
