// Package serve implements hostnetd: the host-network simulator as a
// service. It layers a bounded job queue, a content-addressed result
// cache, and a small JSON/NDJSON HTTP API over the deterministic
// experiment sweeps in internal/exp.
//
// Because sweeps are bit-identical at any parallelism (PR 1), a job spec
// fully determines its result bytes. The daemon exploits that three ways:
//
//   - Concurrent identical submissions collapse onto one in-flight job —
//     one simulation serves every waiter.
//   - Completed results are cached by the SHA-256 of the canonical spec
//     encoding and re-served without recomputation (LRU, byte-capped).
//   - The served bytes are byte-identical to `hostnetsim -format json`
//     for the same spec.
//
// Load is shed, never buffered unboundedly: when the admission queue is
// full, POST /jobs returns 429 with Retry-After. Shutdown stops admission
// immediately, drains accepted jobs until a deadline, then cancels the
// remainder — an accepted job always reaches done, failed, or canceled.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/store"
	"repro/internal/version"
)

// Config tunes the daemon. The zero value is usable: withDefaults fills
// every field.
type Config struct {
	// QueueDepth bounds jobs waiting for a worker; a full queue sheds load
	// with 429. Default 64.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Default 2.
	Workers int
	// JobTimeout bounds one job's wall-clock execution. Default 15m.
	JobTimeout time.Duration
	// CacheBytes caps the result cache. Default 256 MiB.
	CacheBytes int64
	// MaxWindowNs caps a submitted spec's measurement window (and warmup)
	// in simulated nanoseconds, so one request cannot monopolize the
	// daemon. Default 10ms of simulated time; negative disables the cap.
	MaxWindowNs int64
	// Parallelism is the sweep-pool width per job (exp.Options.Parallelism).
	// Default 0: one goroutine per sweep point.
	Parallelism int
	// Audit enables simulator invariant auditing inside jobs.
	Audit bool
	// Store, when non-nil, is the persistent content-addressed result store
	// the in-memory cache reads through and writes through: completed
	// results are filed under the full canonical-spec SHA-256 and survive
	// restarts; submissions that miss the in-memory cache are served from
	// the store without re-simulating. Point a fleet of daemons at one
	// directory to share results (determinism makes that coherence-free).
	Store *store.Store
	// Fleet, when non-nil, switches the daemon into coordinator mode: jobs
	// are executed by sharding them across the coordinator's worker pool
	// (splittable sweeps point-by-point) instead of simulating locally. The
	// serve-layer queue, dedup, cache, store, and shedding all still apply,
	// so a coordinator looks exactly like a worker to its clients.
	Fleet *fleet.Coordinator
	// TenantQuota bounds each tenant's concurrently admitted jobs (queued +
	// running, keyed on the X-Tenant request header; absent means the
	// anonymous tenant). Submissions over quota are shed with 429 without
	// touching the shared queue, so one tenant cannot monopolize admission.
	// 0 disables per-tenant quotas.
	TenantQuota int
	// Fidelity restricts which fidelity tiers this server answers: "" or
	// "both" (default) serves sim and analytic, "sim" rejects analytic
	// specs with 400, "analytic" rejects sim specs with 400 (a pure
	// model-evaluation server needs no worker pool to speak of).
	Fidelity string
	// Refine, when true, follows every fresh analytic answer with its sim
	// twin (fidelity cleared, same spec otherwise) enqueued at background
	// priority. When the twin completes, the pair's analytic-vs-sim error
	// is folded into the GET /crossval report, so operating the fast tier
	// continuously re-validates it against the slow one. Refinements are
	// skipped (never shed as errors) when the queue is half full or the
	// twin's default windows exceed MaxWindowNs.
	Refine bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxWindowNs == 0 {
		c.MaxWindowNs = 10_000_000 // 10ms simulated
	}
	if c.Fidelity == "both" {
		c.Fidelity = ""
	}
	return c
}

// Server is the hostnetd HTTP surface. Create with New, mount Handler,
// and call Shutdown before exiting.
type Server struct {
	cfg   Config
	met   *metrics
	mgr   *manager
	mux   *http.ServeMux
	start time.Time

	// retryHook, when set (tests only), runs between a full-queue rejection
	// and the one retry handleSubmit makes before writing 429.
	retryHook func()
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		met:   &metrics{},
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mgr = newManager(cfg, s.met)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /jobs/batch", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /crossval", s.handleCrossval)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admission, drains accepted jobs until ctx's deadline,
// then cancels the rest. See manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID          string   `json:"id"`
	State       string   `json:"state"`
	Outcome     string   `json:"outcome,omitempty"` // submit responses only
	Spec        exp.Spec `json:"spec"`
	PointsDone  int64    `json:"points_done"`
	PointsTotal int      `json:"points_total,omitempty"` // estimate; 0 = unknown
	Error       string   `json:"error,omitempty"`
	SubmittedAt string   `json:"submitted_at,omitempty"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
	ElapsedMS   int64    `json:"elapsed_ms,omitempty"` // run wall-clock so far or total
	ResultBytes int      `json:"result_bytes,omitempty"`
}

func statusOf(j *Job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state.String(),
		Spec:        j.Spec,
		PointsDone:  j.points,
		PointsTotal: exp.SpecTasks(j.Spec),
		Error:       j.errMsg,
		ResultBytes: len(j.result),
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	st.SubmittedAt = stamp(j.submitted)
	st.StartedAt = stamp(j.started)
	st.FinishedAt = stamp(j.finished)
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	case !j.started.IsZero():
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	return st
}

// apiError is the JSON error body for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBody bounds a submitted spec; real specs are well under 1 KiB.
const maxSpecBody = 1 << 20

// maxBatchSpecs bounds one batch submission; larger suites should be split
// so a single request cannot reserve the whole queue.
const maxBatchSpecs = 256

// admit runs the full admission pipeline for one spec: normalize,
// validate, cap the simulated window, canonicalize, and submit — retrying
// once if the queue-full rejection might be stale. On error it returns the
// HTTP status the caller should write.
func (s *Server) admit(spec exp.Spec, tenant string) (j *Job, outcome Outcome, code int, err error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("invalid job spec: %w", err)
	}
	if spec.Fidelity == exp.FidelityAnalytic {
		return s.admitAnalytic(spec)
	}
	if s.cfg.Fidelity == exp.FidelityAnalytic {
		return nil, 0, http.StatusBadRequest, fmt.Errorf(
			"this server answers only analytic-fidelity specs (-fidelity analytic); set \"fidelity\": \"analytic\" or submit to a sim-capable server")
	}
	if s.cfg.MaxWindowNs > 0 {
		if spec.WindowNs > s.cfg.MaxWindowNs || spec.WarmupNs > s.cfg.MaxWindowNs {
			return nil, 0, http.StatusBadRequest, fmt.Errorf(
				"window_ns/warmup_ns exceed this server's cap of %d simulated ns", s.cfg.MaxWindowNs)
		}
	}
	canonical, err := spec.Canonical()
	if err != nil {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("cannot canonicalize spec: %w", err)
	}
	j, outcome, err = s.mgr.Submit(spec, canonical, tenant)
	if errors.Is(err, ErrQueueFull) {
		// The queue may have drained between the failed reservation and
		// this response: a worker dequeues the moment a slot frees, so the
		// rejection can be stale by the time it would be written. Retry the
		// admission once before shedding load — a 429 must mean the queue
		// was full twice, not that the client lost a benign race.
		if h := s.retryHook; h != nil {
			h()
		}
		j, outcome, err = s.mgr.Submit(spec, canonical, tenant)
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.met.rejected.Add(1)
		return nil, 0, http.StatusTooManyRequests, fmt.Errorf("%w (capacity %d)", err, s.cfg.QueueDepth)
	case errors.Is(err, ErrTenantQuota):
		s.met.tenantRejected.Add(1)
		return nil, 0, http.StatusTooManyRequests, fmt.Errorf("%w (quota %d)", err, s.cfg.TenantQuota)
	case errors.Is(err, ErrClosed):
		return nil, 0, http.StatusServiceUnavailable, err
	case err != nil:
		return nil, 0, http.StatusInternalServerError, err
	}
	return j, outcome, 0, nil
}

// admitAnalytic answers an analytic-fidelity spec synchronously: the
// predictive model runs in microseconds, so the answer is computed inline
// (never queued), cached, and written through to the store like any other
// result. Specs outside the model's domain get a typed 422 telling the
// client to fall back to the sim tier.
func (s *Server) admitAnalytic(spec exp.Spec) (j *Job, outcome Outcome, code int, err error) {
	if s.cfg.Fidelity == exp.FidelitySim {
		return nil, 0, http.StatusBadRequest, fmt.Errorf(
			"this server answers only sim-fidelity specs (-fidelity sim); drop \"fidelity\": \"analytic\" or submit to an analytic-capable server")
	}
	canonical, err := spec.Canonical()
	if err != nil {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("cannot canonicalize spec: %w", err)
	}
	j, outcome, err = s.mgr.RunAnalytic(spec, canonical)
	var unsup *analytic.UnsupportedError
	switch {
	case errors.As(err, &unsup):
		return nil, 0, http.StatusUnprocessableEntity, fmt.Errorf("%v; resubmit without \"fidelity\": \"analytic\" for the sim tier", err)
	case errors.Is(err, ErrClosed):
		return nil, 0, http.StatusServiceUnavailable, err
	case err != nil:
		return nil, 0, http.StatusInternalServerError, err
	}
	if s.cfg.Refine && outcome == OutcomeAnalytic {
		s.enqueueRefinement(j)
	}
	return j, outcome, 0, nil
}

// refineTenant is the reserved tenant refinement twins are admitted under;
// it cannot collide with an X-Tenant header tenant because handleSubmit
// never forwards it (and real tenants with quotas shouldn't pay for
// background validation anyway — the twin competes only with other twins).
const refineTenant = "~refine"

// enqueueRefinement submits the sim twin of a freshly computed analytic
// answer at background priority. Skips (counted, never surfaced as errors)
// keep refinement from competing with real load: no twin is enqueued when
// the queue is already half full, when the twin's windows exceed the
// server's cap, or when admission fails for any reason.
func (s *Server) enqueueRefinement(aj *Job) {
	twin := aj.Spec
	twin.Fidelity = "" // sim tier; Normalized restores the default windows
	twin = twin.Normalized()
	if s.cfg.MaxWindowNs > 0 && (twin.WindowNs > s.cfg.MaxWindowNs || twin.WarmupNs > s.cfg.MaxWindowNs) {
		s.met.refineSkipped.Add(1)
		return
	}
	if s.mgr.QueueDepth() >= s.cfg.QueueDepth/2 {
		s.met.refineSkipped.Add(1)
		return
	}
	canonical, err := twin.Canonical()
	if err != nil {
		s.met.refineSkipped.Add(1)
		return
	}
	analyticEnv, _, _ := aj.Result()
	tj, _, err := s.mgr.Submit(twin, canonical, refineTenant)
	if err != nil {
		s.met.refineSkipped.Add(1)
		return
	}
	s.met.refineEnqueued.Add(1)
	s.mgr.watchRefine(tj, analyticEnv)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec exp.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, outcome, code, err := s.admit(spec, r.Header.Get("X-Tenant"))
	if err != nil {
		if code == http.StatusTooManyRequests {
			secs := retryAfterSecs(s.mgr.QueueDepth(), s.cfg.Workers, s.met.recentMeanJobDur())
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, code, "%v", err)
		return
	}
	st := statusOf(j)
	st.Outcome = outcome.String()
	code = http.StatusAccepted
	if outcome == OutcomeCacheHit || outcome == OutcomeStoreHit || outcome == OutcomeAnalytic {
		code = http.StatusOK // the result is already available
	}
	writeJSON(w, code, st)
}

// retryAfterSecs estimates how long a shed client should wait before
// retrying: the current backlog spread across the worker pool at the
// recent mean sim-job duration (analytic answers never enter the ring —
// they are inline and would drag the mean to zero), rounded up and clamped
// to [1, 60] seconds. Before any job has completed there is no estimate,
// so the old fixed 1s survives as the floor.
func retryAfterSecs(depth, workers int, mean time.Duration) int {
	if depth <= 0 || workers <= 0 || mean <= 0 {
		return 1
	}
	wait := time.Duration(depth) * mean / time.Duration(workers)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// batchItem is one entry in a batch-submit response: the admitted job's
// status, or the error that kept the spec out (the rest of the batch is
// unaffected — admission is per spec, not all-or-nothing).
type batchItem struct {
	JobStatus
	SubmitError string `json:"submit_error,omitempty"`
}

// handleSubmitBatch admits a whole suite of specs in one request (figure
// warming, sweep fan-in). Each spec goes through the same admission
// pipeline as POST /jobs, including dedup, cache/store hits, tenant
// quotas, and shedding; outcomes are reported per item.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs []exp.Spec `json:"specs"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeError(w, http.StatusBadRequest, "batch of %d specs exceeds the limit of %d", len(req.Specs), maxBatchSpecs)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	items := make([]batchItem, len(req.Specs))
	admitted := 0
	for i, spec := range req.Specs {
		j, outcome, _, err := s.admit(spec, tenant)
		if err != nil {
			items[i].SubmitError = err.Error()
			continue
		}
		items[i].JobStatus = statusOf(j)
		items[i].Outcome = outcome.String()
		admitted++
	}
	writeJSON(w, http.StatusAccepted, struct {
		Admitted int         `json:"admitted"`
		Jobs     []batchItem `json:"jobs"`
	}{admitted, items})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j))
	}
	// Oldest submission first: deterministic enough for humans, and the map
	// iteration order never leaks.
	sortStatuses(out)
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

func sortStatuses(st []JobStatus) {
	for i := 1; i < len(st); i++ {
		for k := i; k > 0 && less(st[k], st[k-1]); k-- {
			st[k], st[k-1] = st[k-1], st[k]
		}
	}
}

func less(a, b JobStatus) bool {
	if a.SubmittedAt != b.SubmittedAt {
		return a.SubmittedAt < b.SubmittedAt
	}
	return a.ID < b.ID
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j := s.mgr.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	s.mgr.Cancel(j, "client request")
	writeJSON(w, http.StatusOK, statusOf(j))
}

// handleResult serves the canonical result bytes. With ?wait=true it
// blocks until the job finishes (or the client goes away).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if wantWait(r) {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	result, errMsg, state := j.Result()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
		w.Write([]byte("\n")) // byte-identical to one `hostnetsim -format json` line
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusConflict, "%s", errMsg)
	default:
		writeError(w, http.StatusConflict, "job is %s; retry later or use ?wait=true", state)
	}
}

func wantWait(r *http.Request) bool {
	v := strings.ToLower(r.URL.Query().Get("wait"))
	return v == "1" || v == "true" || v == "yes"
}

// streamEvent is one NDJSON line on /jobs/{id}/stream.
type streamEvent struct {
	Event       string          `json:"event"` // "status", "progress", "done"
	State       string          `json:"state,omitempty"`
	PointsDone  int64           `json:"points_done"`
	PointsTotal int             `json:"points_total,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// handleStream streams job progress as NDJSON: an initial status event,
// a coalesced progress event per completed sweep point, and a final done
// event carrying the result (or error) inline.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	total := exp.SpecTasks(j.Spec)

	emit := func(ev streamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	sub := j.subscribe()
	defer j.unsubscribe(sub)

	if !emit(streamEvent{Event: "status", State: j.State().String(), PointsDone: j.PointsDone(), PointsTotal: total}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub:
			if !emit(streamEvent{Event: "progress", PointsDone: j.PointsDone(), PointsTotal: total}) {
				return
			}
		case <-j.Done():
			result, errMsg, state := j.Result()
			emit(streamEvent{
				Event:      "done",
				State:      state.String(),
				PointsDone: j.PointsDone(), PointsTotal: total,
				Error:  errMsg,
				Result: json.RawMessage(result),
			})
			return
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []string `json:"experiments"`
	}{exp.Experiments()})
}

// handleCrossval reports the accumulated analytic-vs-sim error per
// config-space region, fed by completed crossval jobs and by background
// refinement pairs. A region outside the pinned envelope is where the
// analytic tier should not be trusted unrefined.
func (s *Server) handleCrossval(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		EnvelopePct float64          `json:"envelope_pct"`
		Samples     int64            `json:"samples"`
		Regions     []CrossvalRegion `json:"regions"`
	}{exp.CrossvalEnvelopePct, s.mgr.cv.samples(), s.mgr.cv.snapshot()})
}

// storeHealth is /healthz's view of the persistent store.
type storeHealth struct {
	Ready   bool   `json:"ready"`
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// fleetHealth is /healthz's view of the coordinator's worker pool.
type fleetHealth struct {
	Ready int `json:"ready"` // workers answering /healthz right now
	Total int `json:"total"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if s.mgr.Draining() {
		state = "draining"
	}
	resp := struct {
		Status  string       `json:"status"`
		State   string       `json:"state"`
		UpSec   int64        `json:"uptime_seconds"`
		Workers int          `json:"workers"`
		Store   *storeHealth `json:"store,omitempty"`
		Fleet   *fleetHealth `json:"fleet,omitempty"`
	}{"ok", state, int64(time.Since(s.start).Seconds()), s.cfg.Workers, nil, nil}
	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		resp.Store = &storeHealth{Ready: true, Dir: st.Dir(), Entries: ss.Entries, Bytes: ss.Bytes}
	}
	if fl := s.cfg.Fleet; fl != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		ready, total := fl.Ready(ctx)
		resp.Fleet = &fleetHealth{Ready: ready, Total: total}
		if ready < total {
			// Still 200 — the daemon itself is up and sheds or retries as
			// needed — but the body says the pool is short.
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Warm pre-populates the cache (and, when configured, the persistent
// store) by submitting each spec through the ordinary admission pipeline
// and waiting for its terminal state. Specs already cached or stored are
// free; the rest simulate. It returns how many specs ended done and how
// many failed (invalid, shed after retry, canceled, or simulation error).
// Warming a figure suite before pointing plotting jobs at the daemon makes
// every figure fetch a cache hit.
func (s *Server) Warm(ctx context.Context, specs []exp.Spec) (done, failed int) {
	for _, spec := range specs {
		j, _, _, err := s.admit(spec, "")
		if err != nil {
			failed++
			continue
		}
		select {
		case <-j.Done():
		case <-ctx.Done():
			failed++
			continue
		}
		if j.State() == StateDone {
			done++
		} else {
			failed++
		}
	}
	return done, failed
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeProm(w, s.mgr)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}
