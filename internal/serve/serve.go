// Package serve implements hostnetd: the host-network simulator as a
// service. It layers a bounded job queue, a content-addressed result
// cache, and a small JSON/NDJSON HTTP API over the deterministic
// experiment sweeps in internal/exp.
//
// Because sweeps are bit-identical at any parallelism (PR 1), a job spec
// fully determines its result bytes. The daemon exploits that three ways:
//
//   - Concurrent identical submissions collapse onto one in-flight job —
//     one simulation serves every waiter.
//   - Completed results are cached by the SHA-256 of the canonical spec
//     encoding and re-served without recomputation (LRU, byte-capped).
//   - The served bytes are byte-identical to `hostnetsim -format json`
//     for the same spec.
//
// Load is shed, never buffered unboundedly: when the admission queue is
// full, POST /jobs returns 429 with Retry-After. Shutdown stops admission
// immediately, drains accepted jobs until a deadline, then cancels the
// remainder — an accepted job always reaches done, failed, or canceled.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/version"
)

// Config tunes the daemon. The zero value is usable: withDefaults fills
// every field.
type Config struct {
	// QueueDepth bounds jobs waiting for a worker; a full queue sheds load
	// with 429. Default 64.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Default 2.
	Workers int
	// JobTimeout bounds one job's wall-clock execution. Default 15m.
	JobTimeout time.Duration
	// CacheBytes caps the result cache. Default 256 MiB.
	CacheBytes int64
	// MaxWindowNs caps a submitted spec's measurement window (and warmup)
	// in simulated nanoseconds, so one request cannot monopolize the
	// daemon. Default 10ms of simulated time; negative disables the cap.
	MaxWindowNs int64
	// Parallelism is the sweep-pool width per job (exp.Options.Parallelism).
	// Default 0: one goroutine per sweep point.
	Parallelism int
	// Audit enables simulator invariant auditing inside jobs.
	Audit bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxWindowNs == 0 {
		c.MaxWindowNs = 10_000_000 // 10ms simulated
	}
	return c
}

// Server is the hostnetd HTTP surface. Create with New, mount Handler,
// and call Shutdown before exiting.
type Server struct {
	cfg   Config
	met   *metrics
	mgr   *manager
	mux   *http.ServeMux
	start time.Time

	// retryHook, when set (tests only), runs between a full-queue rejection
	// and the one retry handleSubmit makes before writing 429.
	retryHook func()
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		met:   &metrics{},
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mgr = newManager(cfg, s.met)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admission, drains accepted jobs until ctx's deadline,
// then cancels the rest. See manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID          string   `json:"id"`
	State       string   `json:"state"`
	Outcome     string   `json:"outcome,omitempty"` // submit responses only
	Spec        exp.Spec `json:"spec"`
	PointsDone  int64    `json:"points_done"`
	PointsTotal int      `json:"points_total,omitempty"` // estimate; 0 = unknown
	Error       string   `json:"error,omitempty"`
	SubmittedAt string   `json:"submitted_at,omitempty"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
	ElapsedMS   int64    `json:"elapsed_ms,omitempty"` // run wall-clock so far or total
	ResultBytes int      `json:"result_bytes,omitempty"`
}

func statusOf(j *Job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state.String(),
		Spec:        j.Spec,
		PointsDone:  j.points,
		PointsTotal: exp.SpecTasks(j.Spec),
		Error:       j.errMsg,
		ResultBytes: len(j.result),
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	st.SubmittedAt = stamp(j.submitted)
	st.StartedAt = stamp(j.started)
	st.FinishedAt = stamp(j.finished)
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	case !j.started.IsZero():
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	return st
}

// apiError is the JSON error body for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxSpecBody bounds a submitted spec; real specs are well under 1 KiB.
const maxSpecBody = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec exp.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if s.cfg.MaxWindowNs > 0 {
		if spec.WindowNs > s.cfg.MaxWindowNs || spec.WarmupNs > s.cfg.MaxWindowNs {
			writeError(w, http.StatusBadRequest,
				"window_ns/warmup_ns exceed this server's cap of %d simulated ns", s.cfg.MaxWindowNs)
			return
		}
	}
	canonical, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "cannot canonicalize spec: %v", err)
		return
	}
	j, outcome, err := s.mgr.Submit(spec, canonical)
	if errors.Is(err, ErrQueueFull) {
		// The queue may have drained between the failed reservation and
		// this response: a worker dequeues the moment a slot frees, so the
		// rejection can be stale by the time it would be written. Retry the
		// admission once before shedding load — a 429 must mean the queue
		// was full twice, not that the client lost a benign race.
		if h := s.retryHook; h != nil {
			h()
		}
		j, outcome, err = s.mgr.Submit(spec, canonical)
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v (capacity %d)", err, s.cfg.QueueDepth)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st := statusOf(j)
	st.Outcome = outcome.String()
	code := http.StatusAccepted
	if outcome == OutcomeCacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j))
	}
	// Oldest submission first: deterministic enough for humans, and the map
	// iteration order never leaks.
	sortStatuses(out)
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

func sortStatuses(st []JobStatus) {
	for i := 1; i < len(st); i++ {
		for k := i; k > 0 && less(st[k], st[k-1]); k-- {
			st[k], st[k-1] = st[k-1], st[k]
		}
	}
}

func less(a, b JobStatus) bool {
	if a.SubmittedAt != b.SubmittedAt {
		return a.SubmittedAt < b.SubmittedAt
	}
	return a.ID < b.ID
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j := s.mgr.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel("client request")
	writeJSON(w, http.StatusOK, statusOf(j))
}

// handleResult serves the canonical result bytes. With ?wait=true it
// blocks until the job finishes (or the client goes away).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if wantWait(r) {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	result, errMsg, state := j.Result()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
		w.Write([]byte("\n")) // byte-identical to one `hostnetsim -format json` line
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusConflict, "%s", errMsg)
	default:
		writeError(w, http.StatusConflict, "job is %s; retry later or use ?wait=true", state)
	}
}

func wantWait(r *http.Request) bool {
	v := strings.ToLower(r.URL.Query().Get("wait"))
	return v == "1" || v == "true" || v == "yes"
}

// streamEvent is one NDJSON line on /jobs/{id}/stream.
type streamEvent struct {
	Event       string          `json:"event"` // "status", "progress", "done"
	State       string          `json:"state,omitempty"`
	PointsDone  int64           `json:"points_done"`
	PointsTotal int             `json:"points_total,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// handleStream streams job progress as NDJSON: an initial status event,
// a coalesced progress event per completed sweep point, and a final done
// event carrying the result (or error) inline.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	total := exp.SpecTasks(j.Spec)

	emit := func(ev streamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	sub := j.subscribe()
	defer j.unsubscribe(sub)

	if !emit(streamEvent{Event: "status", State: j.State().String(), PointsDone: j.PointsDone(), PointsTotal: total}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub:
			if !emit(streamEvent{Event: "progress", PointsDone: j.PointsDone(), PointsTotal: total}) {
				return
			}
		case <-j.Done():
			result, errMsg, state := j.Result()
			emit(streamEvent{
				Event:      "done",
				State:      state.String(),
				PointsDone: j.PointsDone(), PointsTotal: total,
				Error:  errMsg,
				Result: json.RawMessage(result),
			})
			return
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []string `json:"experiments"`
	}{exp.Experiments()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if s.mgr.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		State   string `json:"state"`
		UpSec   int64  `json:"uptime_seconds"`
		Workers int    `json:"workers"`
	}{"ok", state, int64(time.Since(s.start).Seconds()), s.cfg.Workers})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeProm(w, s.mgr)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, version.Get())
}
