package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/store"
)

// openStore opens a store on dir (creating it) and fails the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestStoreReadThroughAcrossRestart is the persistence contract: a result
// computed by one daemon life is served by the next from the store, byte
// for byte, without re-simulating.
func TestStoreReadThroughAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec(1)

	// First life: compute, serve, drain.
	var ranA atomic.Int64
	sA := New(Config{Workers: 1, Store: openStore(t, dir)})
	sA.mgr.beforeRun = func(context.Context, *Job) { ranA.Add(1) }
	rec, st := postSpec(t, sA.Handler(), spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	j := sA.mgr.Get(st.ID)
	waitState(t, j, StateDone)
	firstLife := get(sA.Handler(), "/jobs/"+st.ID+"/result")
	if firstLife.Code != http.StatusOK {
		t.Fatalf("first-life result: code %d", firstLife.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sA.Shutdown(ctx); err != nil {
		t.Fatalf("first-life shutdown: %v", err)
	}
	if got := ranA.Load(); got != 1 {
		t.Fatalf("first life ran %d jobs, want 1", got)
	}

	// Second life: same directory, cold in-memory cache.
	var ranB atomic.Int64
	sB := testServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	sB.mgr.beforeRun = func(context.Context, *Job) { ranB.Add(1) }
	rec, st = postSpec(t, sB.Handler(), spec)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm submit: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	if st.Outcome != "store_hit" {
		t.Fatalf("warm submit outcome %q, want store_hit", st.Outcome)
	}
	secondLife := get(sB.Handler(), "/jobs/"+st.ID+"/result")
	if secondLife.Code != http.StatusOK || !bytes.Equal(secondLife.Body.Bytes(), firstLife.Body.Bytes()) {
		t.Fatalf("second-life result differs from first (code %d)", secondLife.Code)
	}
	if got := ranB.Load(); got != 0 {
		t.Fatalf("second life ran %d jobs, want 0 (store hit)", got)
	}

	// The revived job is an ordinary cached entry: resubmitting is now an
	// in-memory cache hit, and the store hit shows up in the metrics.
	if _, st2 := postSpec(t, sB.Handler(), spec); st2.Outcome != "cache_hit" {
		t.Fatalf("resubmit outcome %q, want cache_hit", st2.Outcome)
	}
	metrics := get(sB.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"hostnetd_store_hits_total 1",
		"hostnetd_jobs_finished_total{state=\"done\"} 0",
		"hostnetd_store_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Healthz reports the store.
	var hz struct {
		Store *storeHealth `json:"store"`
	}
	if err := json.Unmarshal(get(sB.Handler(), "/healthz").Body.Bytes(), &hz); err != nil || hz.Store == nil {
		t.Fatalf("healthz store block missing: %v", err)
	}
	if !hz.Store.Ready || hz.Store.Entries != 1 {
		t.Fatalf("healthz store = %+v, want ready with 1 entry", hz.Store)
	}
}

// TestTenantQuota pins per-tenant admission: one tenant at its quota is
// shed with 429 while other tenants sail through, dedup and cache hits are
// never charged, and finishing a job frees the slot.
func TestTenantQuota(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 8, TenantQuota: 1})
	release := make(chan struct{})
	var once sync.Once
	free := func() { once.Do(func() { close(release) }) }
	defer free()
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	h := s.Handler()

	withTenant := func(spec exp.Spec, tenant string) *httptest.ResponseRecorder {
		b, _ := json.Marshal(spec)
		req := httptest.NewRequest("POST", "/jobs", bytes.NewReader(b))
		req.Header.Set("X-Tenant", tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := withTenant(smallSpec(1), "alice"); rec.Code != http.StatusAccepted {
		t.Fatalf("alice #1: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	rec := withTenant(smallSpec(2), "alice")
	if rec.Code != http.StatusTooManyRequests || !strings.Contains(rec.Body.String(), "tenant quota") {
		t.Fatalf("alice #2: code %d body %s, want 429 tenant quota", rec.Code, rec.Body.Bytes())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("tenant 429 missing Retry-After")
	}
	// Other tenants are unaffected; so is the anonymous tenant.
	if rec := withTenant(smallSpec(3), "bob"); rec.Code != http.StatusAccepted {
		t.Fatalf("bob: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	if rec := withTenant(smallSpec(4), ""); rec.Code != http.StatusAccepted {
		t.Fatalf("anonymous: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	// Dedup onto alice's own in-flight job is free, not a quota violation.
	if rec := withTenant(smallSpec(1), "alice"); rec.Code != http.StatusAccepted {
		t.Fatalf("alice dedup: code %d body %s", rec.Code, rec.Body.Bytes())
	}

	free()
	var st JobStatus
	json.Unmarshal(withTenant(smallSpec(1), "alice").Body.Bytes(), &st)
	waitState(t, s.mgr.Get(st.ID), StateDone)
	// Slot freed: alice can admit a new spec again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		rec := withTenant(smallSpec(5), "alice")
		if rec.Code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alice still over quota after her job finished: code %d body %s", rec.Code, rec.Body.Bytes())
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(get(h, "/metrics").Body.String(), "hostnetd_tenants_rejected_total 1") {
		t.Error("metrics missing hostnetd_tenants_rejected_total 1")
	}
}

// TestBatchSubmit pins the batch endpoint: per-item admission with
// per-item outcomes, one bad spec not poisoning the rest.
func TestBatchSubmit(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	body, _ := json.Marshal(struct {
		Specs []exp.Spec `json:"specs"`
	}{[]exp.Spec{smallSpec(1), smallSpec(1), {Experiment: "nope"}}})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("batch: code %d body %s", rec.Code, rec.Body.Bytes())
	}
	var resp struct {
		Admitted int         `json:"admitted"`
		Jobs     []batchItem `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if resp.Admitted != 2 || len(resp.Jobs) != 3 {
		t.Fatalf("admitted %d of %d items, want 2 of 3", resp.Admitted, len(resp.Jobs))
	}
	if resp.Jobs[0].Outcome != "accepted" {
		t.Errorf("item 0 outcome %q, want accepted", resp.Jobs[0].Outcome)
	}
	if o := resp.Jobs[1].Outcome; o != "deduplicated" && o != "cache_hit" {
		t.Errorf("item 1 outcome %q, want deduplicated or cache_hit", o)
	}
	if resp.Jobs[2].SubmitError == "" || resp.Jobs[2].ID != "" {
		t.Errorf("item 2 = %+v, want submit_error and no job", resp.Jobs[2])
	}
	waitState(t, s.mgr.Get(resp.Jobs[0].ID), StateDone)

	if rec := httptest.NewRecorder(); true {
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/batch", strings.NewReader(`{"specs":[]}`)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("empty batch: code %d, want 400", rec.Code)
		}
	}
}

// TestWarm pins the cache-warming path: a warm pass simulates each spec
// once, a second pass is all hits, and the results land in the store so
// the warmth survives a restart.
func TestWarm(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 2, Store: openStore(t, dir)})
	var ran atomic.Int64
	s.mgr.beforeRun = func(context.Context, *Job) { ran.Add(1) }
	suite := []exp.Spec{smallSpec(1), smallSpec(2)}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if done, failed := s.Warm(ctx, suite); done != 2 || failed != 0 {
		t.Fatalf("cold warm: done=%d failed=%d, want 2/0", done, failed)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("cold warm ran %d jobs, want 2", got)
	}
	if done, failed := s.Warm(ctx, suite); done != 2 || failed != 0 {
		t.Fatalf("rewarm: done=%d failed=%d, want 2/0", done, failed)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("rewarm re-ran jobs: %d total, want still 2", got)
	}
	if done, failed := s.Warm(ctx, []exp.Spec{{Experiment: "nope"}}); done != 0 || failed != 1 {
		t.Fatalf("invalid warm spec: done=%d failed=%d, want 0/1", done, failed)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A fresh daemon on the same store directory is warm from birth.
	s2 := testServer(t, Config{Workers: 2, Store: openStore(t, dir)})
	var ran2 atomic.Int64
	s2.mgr.beforeRun = func(context.Context, *Job) { ran2.Add(1) }
	if done, failed := s2.Warm(ctx, suite); done != 2 || failed != 0 {
		t.Fatalf("post-restart warm: done=%d failed=%d, want 2/0", done, failed)
	}
	if got := ran2.Load(); got != 0 {
		t.Fatalf("post-restart warm ran %d jobs, want 0 (store hits)", got)
	}
}
