package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// Pinned regressions for the job manager's byte accounting, the queue-full
// race in handleSubmit, and the slow-stream-consumer guarantee.

// Re-inserting an already-filed job must replace its accounted cost, not
// add it again, and a zero-byte result still costs the per-entry overhead.
func TestCacheBytesReinsertAndZeroByte(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	m := s.mgr

	j := newJob("jtest", exp.Spec{}, nil)
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.insertLocked(j, StateDone, nil) // zero-byte result
	if m.lruBytes != jobOverheadBytes {
		m.mu.Unlock()
		t.Fatalf("zero-byte insert: lruBytes = %d, want %d", m.lruBytes, jobOverheadBytes)
	}
	m.insertLocked(j, StateDone, make([]byte, 100)) // re-insert, bigger result
	if m.lruBytes != 100+jobOverheadBytes {
		m.mu.Unlock()
		t.Fatalf("re-insert: lruBytes = %d, want %d (no double count)", m.lruBytes, 100+jobOverheadBytes)
	}
	if m.lru.Len() != 1 {
		m.mu.Unlock()
		t.Fatalf("re-insert duplicated the LRU entry: len = %d", m.lru.Len())
	}
	m.insertLocked(j, StateDone, nil) // re-insert, shrinking back
	if m.lruBytes != jobOverheadBytes {
		m.mu.Unlock()
		t.Fatalf("shrinking re-insert: lruBytes = %d, want %d", m.lruBytes, jobOverheadBytes)
	}
	m.removeLocked(j)
	if m.lruBytes != 0 {
		m.mu.Unlock()
		t.Fatalf("after remove: lruBytes = %d, want 0", m.lruBytes)
	}
	m.mu.Unlock()
}

// A job canceled while queued must end up accounted in the cache (and thus
// evictable) rather than leaking in the job table forever.
func TestCanceledQueuedJobIsCacheAccounted(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	_, stA := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(stA.ID), StateRunning)
	_, stB := postSpec(t, h, smallSpec(2)) // parked in the queue

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+stB.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: code %d", rec.Code)
	}
	close(block) // worker finishes A, then dequeues the canceled B

	deadline := time.Now().Add(15 * time.Second)
	for {
		entries, bytes := s.mgr.CacheStats()
		if entries == 2 { // A's result + B's canceled tombstone
			if want := int64(len(mustResult(t, h, stA.ID))) + 2*jobOverheadBytes; bytes != want {
				t.Fatalf("cache bytes = %d, want %d", bytes, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled-while-queued job never reached the cache (entries=%d)", entries)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustResult(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	res := get(h, "/jobs/"+id+"/result?wait=true")
	if res.Code != http.StatusOK {
		t.Fatalf("result %s: code %d body %s", id, res.Code, res.Body.Bytes())
	}
	// Trailing newline is transport framing, not cached bytes.
	return bytes.TrimSuffix(res.Body.Bytes(), []byte("\n"))
}

// A canceled-while-queued job that was already replaced by a resubmission
// must NOT re-enter the cache as a stale duplicate of the live record.
func TestCanceledQueuedStaleObjectNotReinserted(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	_, stA := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(stA.ID), StateRunning)
	_, stB := postSpec(t, h, smallSpec(2)) // parked in the queue

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+stB.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: code %d", rec.Code)
	}
	// Resubmit while the stale canceled object is still in the queue: the
	// fresh job replaces it in the job table.
	rec2, stB2 := postSpec(t, h, smallSpec(2))
	if rec2.Code != http.StatusAccepted || stB2.ID != stB.ID {
		t.Fatalf("resubmit: code %d id %s, want fresh accept at same address", rec2.Code, stB2.ID)
	}
	close(block)
	// Both jobs complete; the stale object is discarded without touching
	// the live record.
	if res := get(h, "/jobs/"+stB2.ID+"/result?wait=true"); res.Code != http.StatusOK {
		t.Fatalf("resubmitted job result: code %d body %s", res.Code, res.Body.Bytes())
	}
	if st := s.mgr.Get(stB2.ID).State(); st != StateDone {
		t.Fatalf("live job state %v, want done", st)
	}
	entries, _ := s.mgr.CacheStats()
	if entries != 2 { // A + B2, no tombstone for the stale B
		t.Fatalf("cache entries = %d, want 2", entries)
	}
}

// handleSubmit must not return 429 when the queue drains between the failed
// admission and the response: it retries once, and the retry lands.
func TestSubmitRetriesWhenQueueDrains(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	h := s.Handler()

	_, stA := postSpec(t, h, smallSpec(1))
	waitState(t, s.mgr.Get(stA.ID), StateRunning) // worker occupied
	_, stB := postSpec(t, h, smallSpec(2))        // fills the queue

	// Between C's failed admission and its 429, drain the queue: unblock
	// the worker and wait until B has been dequeued.
	s.retryHook = func() {
		close(block)
		deadline := time.Now().Add(15 * time.Second)
		for s.mgr.QueueDepth() > 0 {
			if time.Now().After(deadline) {
				t.Error("queue never drained")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	recC, stC := postSpec(t, h, smallSpec(3))
	if recC.Code != http.StatusAccepted {
		t.Fatalf("submit into drained queue: code %d, want 202; body %s", recC.Code, recC.Body.Bytes())
	}
	if got := s.met.rejected.Load(); got != 0 {
		t.Fatalf("rejected counter = %d after a benign race, want 0", got)
	}
	for _, id := range []string{stB.ID, stC.ID} {
		if res := get(h, "/jobs/"+id+"/result?wait=true"); res.Code != http.StatusOK {
			t.Fatalf("job %s: code %d", id, res.Code)
		}
	}
}

// Racing submissions against a draining queue: every 429 that does escape
// must carry a parseable positive Retry-After, and every accepted job must
// finish.
func TestRetryAfterHeaderUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	h := s.Handler()

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryAfter := make([]string, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct content addresses without exceeding the testbed's
			// core count: vary the measurement window.
			spec := smallSpec(i%4 + 1)
			spec.WindowNs = 2000 + int64(i)
			rec, st := postSpec(t, h, spec)
			codes[i], ids[i] = rec.Code, st.ID
			retryAfter[i] = rec.Result().Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusAccepted, http.StatusOK:
			if res := get(h, "/jobs/"+ids[i]+"/result?wait=true"); res.Code != http.StatusOK {
				t.Errorf("accepted job %d: result code %d", i, res.Code)
			}
		case http.StatusTooManyRequests:
			sec, err := strconv.Atoi(retryAfter[i])
			if err != nil || sec < 1 || sec > 60 {
				t.Errorf("429 %d: Retry-After %q outside the pinned [1, 60]s clamp", i, retryAfter[i])
			}
		default:
			t.Errorf("submit %d: unexpected code %d", i, codes[i])
		}
	}
}

// bumpProgress is called from sweep pool workers; a subscriber that never
// reads its channel must not block it (pokes are buffered and coalesced).
// Run with -race: this also pins the locking around the subscriber map.
func TestBumpProgressNeverBlocksOnStalledSubscriber(t *testing.T) {
	j := newJob("jstall", exp.Spec{}, nil)
	stalled := j.subscribe() // never read
	defer j.unsubscribe(stalled)

	const workers, bumps = 8, 500
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < bumps; i++ {
					j.bumpProgress()
				}
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("bumpProgress blocked on a stalled subscriber")
	}
	if got := j.PointsDone(); got != workers*bumps {
		t.Fatalf("points = %d, want %d", got, workers*bumps)
	}
	if len(stalled) != 1 {
		t.Fatalf("stalled subscriber holds %d pokes, want exactly 1 (coalesced)", len(stalled))
	}
}

// A streaming client that stops reading must not stall the job: progress
// delivery is decoupled from the HTTP write path.
func TestStreamSlowConsumerJobStillCompletes(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smallSpec(1)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no status event: %v", sc.Err())
	}

	// Stop reading the stream entirely, release the job, and require it to
	// reach a terminal state on its own.
	close(gate)
	waitState(t, s.mgr.Get(st.ID), StateDone)

	// The stalled consumer can still catch up afterwards: the final event
	// is the done event with the result inline.
	var last struct {
		Event string `json:"event"`
		State string `json:"state"`
	}
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %s: %v", sc.Bytes(), err)
		}
	}
	if last.Event != "done" || last.State != "done" {
		t.Fatalf("final event %+v, want done/done", last)
	}
}
