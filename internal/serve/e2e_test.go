package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// End-to-end acceptance: N concurrent identical submissions over real HTTP
// execute exactly one underlying simulation, every waiter receives bytes
// identical to `hostnetsim -format json` (exp.RunSpecJSON at a different
// parallelism), and /metrics shows the dedup/cache accounting.
func TestE2EConcurrentSubmitsRunOnce(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smallSpec(2)
	// The CLI-equivalent bytes, computed at a different sweep parallelism to
	// exercise the bit-identical-at-any-parallelism guarantee.
	direct, err := exp.RunSpecJSON(spec, func() exp.Options {
		o := exp.Defaults()
		o.Parallelism = 4
		return o
	}())
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	body, _ := json.Marshal(spec)

	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			var st JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("submit %d: code %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
			res, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
			if err != nil {
				errs[i] = err
				return
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("result %d: code %d", i, res.StatusCode)
				return
			}
			results[i], errs[i] = io.ReadAll(res.Body)
		}(i)
	}
	wg.Wait()

	want := append(append([]byte(nil), direct...), '\n')
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("client %d got id %s, client 0 got %s: content addressing diverged", i, ids[i], ids[0])
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("client %d result differs from hostnetsim -format json bytes:\n got %s\nwant %s",
				i, results[i], want)
		}
	}

	if got := s.met.finished[StateDone].Load(); got != 1 {
		t.Fatalf("%d simulations ran for %d identical submissions, want exactly 1", got, n)
	}
	if misses := s.met.cacheMisses.Load(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
	if hits, dedup := s.met.cacheHits.Load(), s.met.dedupInflight.Load(); hits+dedup != n-1 {
		t.Fatalf("hits(%d)+dedup(%d) = %d, want %d", hits, dedup, hits+dedup, n-1)
	}

	// The same accounting is visible to operators via /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"hostnetd_cache_misses_total 1",
		"hostnetd_jobs_finished_total{state=\"done\"} 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

// The NDJSON stream delivers a status event, then progress/done events; the
// final done event carries the result inline, byte-equal to the result
// endpoint's payload.
func TestE2EStreamNDJSON(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.mgr.beforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smallSpec(1)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	type event struct {
		Event       string          `json:"event"`
		State       string          `json:"state"`
		PointsDone  int64           `json:"points_done"`
		PointsTotal int             `json:"points_total"`
		Result      json.RawMessage `json:"result"`
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	// First line arrives while the job is held at the starting gate.
	if !sc.Scan() {
		t.Fatalf("no status event: %v", sc.Err())
	}
	var first event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Event != "status" {
		t.Fatalf("first event %s (err %v), want status", sc.Bytes(), err)
	}
	if first.PointsTotal != exp.SpecTasks(spec) {
		t.Fatalf("points_total %d, want %d", first.PointsTotal, exp.SpecTasks(spec))
	}
	close(release)

	var last event
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Bytes(), err)
		}
		if ev.Event == "progress" && ev.PointsDone < last.PointsDone {
			t.Fatalf("progress went backwards: %d after %d", ev.PointsDone, last.PointsDone)
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if last.Event != "done" || last.State != "done" {
		t.Fatalf("final event %+v, want done/done", last)
	}
	if len(last.Result) == 0 {
		t.Fatalf("done event carries no result")
	}
	res, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	rb, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !bytes.Equal(bytes.TrimSuffix(rb, []byte("\n")), []byte(last.Result)) {
		t.Fatalf("stream result differs from result endpoint:\n%s\nvs\n%s", last.Result, rb)
	}
}

// Progress is observable while a job runs: points_done advances from the
// status endpoint's perspective between start and finish.
func TestE2EProgressCounts(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{1, 2, 3}, WarmupNs: 1000, WindowNs: 2000}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	j := s.mgr.Get(st.ID)
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job did not finish")
	}
	final, _ := io.ReadAll(get(s.Handler(), "/jobs/"+st.ID).Body)
	var fin JobStatus
	if err := json.Unmarshal(final, &fin); err != nil {
		t.Fatalf("status: %v", err)
	}
	if want := int64(exp.SpecTasks(spec)); fin.PointsDone != want {
		t.Fatalf("points_done %d after completion, want %d", fin.PointsDone, want)
	}
	if fin.FinishedAt == "" || fin.StartedAt == "" || fin.SubmittedAt == "" {
		t.Fatalf("timestamps missing: %+v", fin)
	}
}
