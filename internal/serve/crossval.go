package serve

// The crossval tracker aggregates analytic-vs-sim error observations per
// config-space region — one region per (experiment, quadrant, cores) — so
// GET /crossval and the /metrics crossval section can report where the
// predictive model's accuracy actually sits relative to the pinned
// envelope. It is fed from two sources: completed crossval experiment jobs
// (the result payload carries the comparison directly) and background
// refinement pairs (analytic answer + sim twin, compared on the twin's
// completion).

import (
	"math"
	"sort"
	"sync"

	"repro/internal/exp"
)

// CrossvalRegion is one aggregated region of the analytic-vs-sim error
// report, as served by GET /crossval.
type CrossvalRegion struct {
	Experiment string `json:"experiment"`
	Quadrant   int    `json:"quadrant"`
	Cores      int    `json:"cores"`

	Samples        int64   `json:"samples"`
	MeanAbsErrPct  float64 `json:"mean_abs_err_pct"`
	MaxAbsErrPct   float64 `json:"max_abs_err_pct"`
	LastErrPct     float64 `json:"last_err_pct"`
	WithinEnvelope bool    `json:"within_envelope"`
}

type crossvalKey struct {
	experiment string
	quadrant   int
	cores      int
}

type crossvalRegion struct {
	count  int64
	sumAbs float64
	maxAbs float64
	last   float64
}

type crossvalTracker struct {
	mu      sync.Mutex
	regions map[crossvalKey]*crossvalRegion
}

func newCrossvalTracker() *crossvalTracker {
	return &crossvalTracker{regions: make(map[crossvalKey]*crossvalRegion)}
}

// add folds one batch of comparison points into the per-region aggregates.
// The tracked error is the signed colocated-C2M-bandwidth error, the
// quantity the paper's envelope is stated over.
func (t *crossvalTracker) add(experiment string, pts []exp.CrossvalPoint) {
	if len(pts) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range pts {
		k := crossvalKey{experiment: experiment, quadrant: int(p.Quadrant), cores: p.Cores}
		r := t.regions[k]
		if r == nil {
			r = &crossvalRegion{}
			t.regions[k] = r
		}
		abs := math.Abs(p.BWErrPct)
		r.count++
		r.sumAbs += abs
		if abs > r.maxAbs {
			r.maxAbs = abs
		}
		r.last = p.BWErrPct
	}
}

// snapshot returns the aggregated regions sorted by (experiment, quadrant,
// cores) for a stable report.
func (t *crossvalTracker) snapshot() []CrossvalRegion {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]CrossvalRegion, 0, len(t.regions))
	for k, r := range t.regions {
		out = append(out, CrossvalRegion{
			Experiment:     k.experiment,
			Quadrant:       k.quadrant,
			Cores:          k.cores,
			Samples:        r.count,
			MeanAbsErrPct:  r.sumAbs / float64(r.count),
			MaxAbsErrPct:   r.maxAbs,
			LastErrPct:     r.last,
			WithinEnvelope: r.maxAbs <= exp.CrossvalEnvelopePct,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Quadrant != b.Quadrant {
			return a.Quadrant < b.Quadrant
		}
		return a.Cores < b.Cores
	})
	return out
}

// samples reports the total number of comparison points folded in, for the
// /metrics counter.
func (t *crossvalTracker) samples() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.regions {
		n += r.count
	}
	return n
}
