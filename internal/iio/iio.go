// Package iio models the Integrated IO controller: the attachment point of
// peripheral devices and the credit pool of both P2M domains (§3, §4.1).
//
// A DMA write consumes an IIO write-buffer entry (~92 on the testbed) from
// PCIe send until WPQ admission — the P2M-Write domain spans two hops, IIO to
// MC. A DMA read consumes a read-buffer entry (>164) until data returns from
// DRAM and the PCIe completion is issued — PCIe reads are non-posted, so the
// P2M-Read domain spans all hops to DRAM. The unloaded P2M-Write latency of
// ~300 ns and the spare credits above what the PCIe link rate requires
// (~65 of 92) are exactly why the blue regime leaves P2M throughput intact.
package iio

import (
	"repro/internal/audit"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config sets the IIO's credit pools and the PCIe link model.
type Config struct {
	WriteCredits int // IIO write buffer entries (~92)
	ReadCredits  int // IIO read buffer entries (>164)

	// LinePeriodUp is the upstream (device -> host) serialization time per
	// cacheline: 64 B / achievable PCIe bandwidth (~4.57 ns at 14 GB/s).
	LinePeriodUp sim.Time
	// LinePeriodDown is the downstream (host -> device) per-line time.
	LinePeriodDown sim.Time

	// DeviceToIIO is the constant from DMA initiation to the request being
	// processed at the IIO (DMA engine, TLP processing); calibrated so the
	// unloaded P2M-Write domain latency lands at ~300 ns.
	DeviceToIIO sim.Time
	// ReqToIIO is the same constant for (small) read-request TLPs.
	ReqToIIO sim.Time
	// ToCHA is the IIO -> CHA propagation.
	ToCHA sim.Time
	// CreditReturn is the completion-notification delay that ends a write's
	// credit hold after WPQ admission.
	CreditReturn sim.Time

	// Audit, when non-nil, receives the IIO's credit-pool invariants;
	// AuditDomain overrides the default "iio" domain label.
	Audit       *audit.Auditor
	AuditDomain string
}

// DefaultConfig returns the Cascade-Lake-calibrated IIO parameters
// (aggregate PCIe ~14 GB/s achievable of 16 GB/s theoretical).
func DefaultConfig() Config {
	return Config{
		WriteCredits:   92,
		ReadCredits:    164,
		LinePeriodUp:   4570 * sim.Picosecond,
		LinePeriodDown: 4570 * sim.Picosecond,
		DeviceToIIO:    120 * sim.Nanosecond,
		ReqToIIO:       100 * sim.Nanosecond,
		ToCHA:          20 * sim.Nanosecond,
		CreditReturn:   148 * sim.Nanosecond,
	}
}

// Stats exposes the IIO probes.
type Stats struct {
	// WriteOcc/ReadOcc track credit usage; the paper's Fig 7(g) and Fig
	// 22(f) are exactly these occupancies.
	WriteOcc *telemetry.Integrator
	ReadOcc  *telemetry.Integrator
	// WriteLat/ReadLat are the paper's "IIO latency": credit allocation to
	// replenishment (Fig 6c).
	WriteLat *telemetry.Latency
	ReadLat  *telemetry.Latency
	// LinesIn/LinesOut count completed DMA writes and reads.
	LinesIn, LinesOut *telemetry.Counter
}

// Reset starts a new measurement window.
func (s *Stats) Reset() {
	s.WriteOcc.Reset()
	s.ReadOcc.Reset()
	s.WriteLat.Reset()
	s.ReadLat.Reset()
	s.LinesIn.Reset()
	s.LinesOut.Reset()
}

// IIO is the integrated IO controller.
type IIO struct {
	eng *sim.Engine
	cfg Config
	cha mem.Submitter

	wrFree, rdFree int
	// holdWant/holdHeld implement fault-injected credit starvation: held
	// credits are acquired through the pool exactly like real traffic (so
	// the occupancy gauges and conservation invariants keep holding) but
	// are never replenished until the fault clears. When held < want,
	// returning credits are re-grabbed before waiters see them.
	holdWantWr, holdHeldWr int
	holdWantRd, holdHeldRd int
	upFreeAt, dnFreeAt     sim.Time
	rdPaceAt               sim.Time
	wrWaiters              []func()
	rdWaiters              []func()
	wrSpare, rdSpare       []func()
	wrRot, rdRot           int
	wrLinkWaker            *sim.Waker
	rdPaceWaker            *sim.Waker
	ids                    mem.IDGen
	stats                  *Stats

	// submitFn is the bound CHA-submission handler, created once so DMA
	// issue schedules without allocating a closure; doneFree pools the
	// args of credit-return and completion-delivery events.
	submitFn sim.EventFunc
	doneFree []*doneArg
}

// doneArg carries a credit return (write) or completion delivery (read)
// through the event heap, with the caller's optional done callback.
type doneArg struct {
	i    *IIO
	done func()
}

func (i *IIO) newDoneArg(done func()) *doneArg {
	if n := len(i.doneFree); n > 0 {
		a := i.doneFree[n-1]
		i.doneFree = i.doneFree[:n-1]
		a.i, a.done = i, done
		return a
	}
	return &doneArg{i: i, done: done}
}

// creditReturnEvent ends a write's credit hold after the completion
// notification propagates back from the WPQ (or DDIO LLC).
func creditReturnEvent(arg any) {
	a := arg.(*doneArg)
	i, done := a.i, a.done
	a.i, a.done = nil, nil
	i.doneFree = append(i.doneFree, a)
	i.wrFree++
	i.stats.WriteOcc.Add(-1)
	i.stats.WriteLat.Exit()
	i.stats.LinesIn.Inc()
	if i.holdHeldWr < i.holdWantWr {
		// An active starvation fault wants this credit: grab it before any
		// waiter can, keeping the pool pinned at the faulted size.
		i.wrFree--
		i.holdHeldWr++
		i.stats.WriteOcc.Add(1)
	}
	if done != nil {
		done()
	}
	fire(&i.wrWaiters, &i.wrSpare, &i.wrRot)
}

// readDeliveredEvent frees a read credit once the data has serialized over
// the downstream link.
func readDeliveredEvent(arg any) {
	a := arg.(*doneArg)
	i, done := a.i, a.done
	a.i, a.done = nil, nil
	i.doneFree = append(i.doneFree, a)
	i.rdFree++
	i.stats.ReadOcc.Add(-1)
	i.stats.ReadLat.Exit()
	i.stats.LinesOut.Inc()
	if i.holdHeldRd < i.holdWantRd {
		i.rdFree--
		i.holdHeldRd++
		i.stats.ReadOcc.Add(1)
	}
	if done != nil {
		done()
	}
	fire(&i.rdWaiters, &i.rdSpare, &i.rdRot)
}

func (i *IIO) submitEvent(arg any) { i.cha.Submit(arg.(*mem.Request)) }

// New builds an IIO bound to an ingress (a CHA, or a NUMA router).
func New(eng *sim.Engine, cfg Config, c mem.Submitter) *IIO {
	if cfg.WriteCredits <= 0 || cfg.ReadCredits <= 0 {
		panic("iio: credit pools must be positive")
	}
	i := &IIO{
		eng:    eng,
		cfg:    cfg,
		cha:    c,
		wrFree: cfg.WriteCredits,
		rdFree: cfg.ReadCredits,
		stats: &Stats{
			WriteOcc: telemetry.NewIntegrator(eng),
			ReadOcc:  telemetry.NewIntegrator(eng),
			WriteLat: telemetry.NewLatency(eng),
			ReadLat:  telemetry.NewLatency(eng),
			LinesIn:  telemetry.NewCounter(eng),
			LinesOut: telemetry.NewCounter(eng),
		},
	}
	eng.Register(i)
	i.wrLinkWaker = sim.NewWaker(eng, func() { fire(&i.wrWaiters, &i.wrSpare, &i.wrRot) })
	i.rdPaceWaker = sim.NewWaker(eng, func() { fire(&i.rdWaiters, &i.rdSpare, &i.rdRot) })
	i.submitFn = i.submitEvent
	if aud := cfg.Audit; aud.Enabled() {
		domain := cfg.AuditDomain
		if domain == "" {
			domain = "iio"
		}
		aud.Pool(domain, "write_credits", cfg.WriteCredits, func() int { return i.wrFree })
		aud.Pool(domain, "read_credits", cfg.ReadCredits, func() int { return i.rdFree })
		aud.Gauge(domain, "write_occ", i.stats.WriteOcc, func() int { return cfg.WriteCredits - i.wrFree })
		aud.Gauge(domain, "read_occ", i.stats.ReadOcc, func() int { return cfg.ReadCredits - i.rdFree })
		aud.Latency(domain, "write_lat", i.stats.WriteLat)
		aud.Latency(domain, "read_lat", i.stats.ReadLat)
	}
	return i
}

// InjectDoubleRelease returns one write credit that was never acquired — a
// deliberate conservation bug. It exists solely so tests can prove the
// auditor detects and attributes violations; nothing in the simulator calls
// it.
func (i *IIO) InjectDoubleRelease() { i.wrFree++ }

// Stats returns the IIO probes.
func (i *IIO) Stats() *Stats { return i.stats }

// WriteCreditCapacity reports the configured write-credit pool size.
func (i *IIO) WriteCreditCapacity() int { return i.cfg.WriteCredits }

// ReadCreditCapacity reports the configured read-credit pool size.
func (i *IIO) ReadCreditCapacity() int { return i.cfg.ReadCredits }

// FaultHoldCredits pins up to nWrite write and nRead read credits as held by
// an injected starvation fault. Held credits are taken from the free pool
// (immediately for whatever is free, and as traffic replenishes for the
// rest) and count as occupied, so every registered invariant keeps holding
// mid-fault. (0, 0) releases all held credits back to the pool and wakes
// waiters. Targets are clamped to leave at least one credit usable, since a
// fully-confiscated pool would deadlock the domain rather than degrade it.
func (i *IIO) FaultHoldCredits(nWrite, nRead int) {
	clamp := func(n, cap int) int {
		if n < 0 {
			n = 0
		}
		if n >= cap {
			n = cap - 1
		}
		return n
	}
	i.holdWantWr = clamp(nWrite, i.cfg.WriteCredits)
	i.holdWantRd = clamp(nRead, i.cfg.ReadCredits)
	// Release excess holds.
	if d := i.holdHeldWr - i.holdWantWr; d > 0 {
		i.holdHeldWr -= d
		i.wrFree += d
		i.stats.WriteOcc.Add(-d)
		fire(&i.wrWaiters, &i.wrSpare, &i.wrRot)
	}
	if d := i.holdHeldRd - i.holdWantRd; d > 0 {
		i.holdHeldRd -= d
		i.rdFree += d
		i.stats.ReadOcc.Add(-d)
		fire(&i.rdWaiters, &i.rdSpare, &i.rdRot)
	}
	// Grab whatever is free right now; the rest is captured as credits
	// return in creditReturnEvent/readDeliveredEvent.
	for i.holdHeldWr < i.holdWantWr && i.wrFree > 0 {
		i.wrFree--
		i.holdHeldWr++
		i.stats.WriteOcc.Add(1)
	}
	for i.holdHeldRd < i.holdWantRd && i.rdFree > 0 {
		i.rdFree--
		i.holdHeldRd++
		i.stats.ReadOcc.Add(1)
	}
}

// FaultCreditsHeld reports credits currently pinned by a starvation fault.
func (i *IIO) FaultCreditsHeld() (write, read int) { return i.holdHeldWr, i.holdHeldRd }

// WriteCreditsFree reports currently available write credits.
func (i *IIO) WriteCreditsFree() int { return i.wrFree }

// ReadCreditsFree reports currently available read credits.
func (i *IIO) ReadCreditsFree() int { return i.rdFree }

// NotifyWrite registers a one-shot callback for when a write credit frees.
func (i *IIO) NotifyWrite(fn func()) { i.wrWaiters = append(i.wrWaiters, fn) }

// NotifyRead registers a one-shot callback for when a read credit frees.
func (i *IIO) NotifyRead(fn func()) { i.rdWaiters = append(i.rdWaiters, fn) }

// fire drains the waiter list, rotating the start index across calls so
// that a waiter that re-registers immediately (a saturating device pump)
// cannot starve its peers of credits or link slots.
// Callbacks that re-register during the drain append to the spare buffer;
// the two arrays swap roles each call so steady-state registration never
// allocates.
func fire(waiters, spare *[]func(), rot *int) {
	if len(*waiters) == 0 {
		return
	}
	ws := *waiters
	*waiters = (*spare)[:0]
	*spare = nil
	*rot++
	start := *rot % len(ws)
	for k := 0; k < len(ws); k++ {
		idx := (start + k) % len(ws)
		ws[idx]()
		ws[idx] = nil
	}
	*spare = ws[:0]
}

// TryWrite starts a one-line DMA write (device -> memory). It returns false
// if no write credit is available or the upstream link is still serializing
// an earlier line (the credit is consumed when the TLP is sent, so issue is
// paced at the link rate); done (optional) runs when the credit is
// replenished.
func (i *IIO) TryWrite(addr mem.Addr, origin int, done func()) bool {
	now := i.eng.Now()
	if i.wrFree == 0 {
		return false
	}
	if i.upFreeAt > now {
		// Link busy: wake write waiters when it frees (coalesced).
		i.wrLinkWaker.WakeAt(i.upFreeAt)
		return false
	}
	i.wrFree--
	i.stats.WriteOcc.Add(1)
	i.stats.WriteLat.Enter()
	// Serialize on the upstream link.
	i.upFreeAt = now + i.cfg.LinePeriodUp
	arrive := i.upFreeAt + i.cfg.DeviceToIIO
	r := &mem.Request{
		ID:     i.ids.Next(),
		Addr:   addr,
		Kind:   mem.Write,
		Source: mem.P2M,
		Origin: origin,
		TAlloc: now,
	}
	r.Done = func(*mem.Request) {
		// WPQ (or DDIO LLC) admission: the credit returns after the
		// completion notification propagates back.
		i.eng.AfterFunc(i.cfg.CreditReturn, creditReturnEvent, i.newDoneArg(done))
	}
	i.eng.AtFunc(arrive+i.cfg.ToCHA, i.submitFn, r)
	return true
}

// TryRead starts a one-line DMA read (memory -> device). It returns false if
// no read credit is available or the device-side issue pipeline (paced at
// the downstream link rate, since that is the steady-state completion rate)
// is busy; done (optional) runs when the data has been delivered over the
// downstream link.
func (i *IIO) TryRead(addr mem.Addr, origin int, done func()) bool {
	now := i.eng.Now()
	if i.rdFree == 0 {
		return false
	}
	if i.rdPaceAt > now {
		i.rdPaceWaker.WakeAt(i.rdPaceAt)
		return false
	}
	i.rdPaceAt = now + i.cfg.LinePeriodDown
	i.rdFree--
	i.stats.ReadOcc.Add(1)
	i.stats.ReadLat.Enter()
	r := &mem.Request{
		ID:     i.ids.Next(),
		Addr:   addr,
		Kind:   mem.Read,
		Source: mem.P2M,
		Origin: origin,
		TAlloc: now,
	}
	r.Done = func(*mem.Request) {
		// Data is back at the IIO: serialize the completion on the
		// downstream link, then free the credit.
		dnStart := i.dnFreeAt
		if n := i.eng.Now(); dnStart < n {
			dnStart = n
		}
		i.dnFreeAt = dnStart + i.cfg.LinePeriodDown
		i.eng.AtFunc(i.dnFreeAt, readDeliveredEvent, i.newDoneArg(done))
	}
	i.eng.AtFunc(now+i.cfg.ReqToIIO+i.cfg.ToCHA, i.submitFn, r)
	return true
}

// SaveState implements sim.Stateful: pooled credit-return args in flight are
// restored in place by the engine's live-event walk. The done callback is the
// same closure object across a restore; its captured state rewinds through
// its owner's registration.
func (a *doneArg) SaveState() any { return doneArg{i: a.i, done: a.done} }

// LoadState implements sim.Stateful.
func (a *doneArg) LoadState(state any) {
	st := state.(doneArg)
	a.i, a.done = st.i, st.done
}

// iioState is the snapshot of an IIO.
type iioState struct {
	wrFree, rdFree         int
	holdWantWr, holdHeldWr int
	holdWantRd, holdHeldRd int
	upFreeAt, dnFreeAt     sim.Time
	rdPaceAt               sim.Time
	wrWaiters, rdWaiters   []func()
	wrRot, rdRot           int
	ids                    mem.IDGen
	doneFree               []*doneArg
}

// SaveState implements sim.Stateful.
func (i *IIO) SaveState() any {
	return iioState{
		wrFree: i.wrFree, rdFree: i.rdFree,
		holdWantWr: i.holdWantWr, holdHeldWr: i.holdHeldWr,
		holdWantRd: i.holdWantRd, holdHeldRd: i.holdHeldRd,
		upFreeAt: i.upFreeAt, dnFreeAt: i.dnFreeAt, rdPaceAt: i.rdPaceAt,
		wrWaiters: append([]func(){}, i.wrWaiters...),
		rdWaiters: append([]func(){}, i.rdWaiters...),
		wrRot:     i.wrRot, rdRot: i.rdRot,
		ids:      i.ids,
		doneFree: append([]*doneArg(nil), i.doneFree...),
	}
}

// LoadState implements sim.Stateful.
func (i *IIO) LoadState(state any) {
	st := state.(iioState)
	i.wrFree, i.rdFree = st.wrFree, st.rdFree
	i.holdWantWr, i.holdHeldWr = st.holdWantWr, st.holdHeldWr
	i.holdWantRd, i.holdHeldRd = st.holdWantRd, st.holdHeldRd
	i.upFreeAt, i.dnFreeAt, i.rdPaceAt = st.upFreeAt, st.dnFreeAt, st.rdPaceAt
	i.wrWaiters = append(i.wrWaiters[:0], st.wrWaiters...)
	i.rdWaiters = append(i.rdWaiters[:0], st.rdWaiters...)
	i.wrRot, i.rdRot = st.wrRot, st.rdRot
	i.ids = st.ids
	i.doneFree = append(i.doneFree[:0], st.doneFree...)
}
