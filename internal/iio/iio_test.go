package iio

import (
	"testing"

	"repro/internal/cha"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

func testRig(cfg Config) (*sim.Engine, *IIO, *dram.Controller) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.MapperConfig{Channels: 1, Banks: 16, RowBytes: 8192})
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = dram.Timing{
		TTrans: 3 * sim.Nanosecond, TRCD: 15 * sim.Nanosecond, TRP: 15 * sim.Nanosecond,
		TCL: 15 * sim.Nanosecond, TWTR: 8 * sim.Nanosecond, TRTW: 6 * sim.Nanosecond,
	}
	mc := dram.New(eng, mcCfg, mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	return eng, New(eng, cfg, ch), mc
}

func TestWriteCreditLifecycle(t *testing.T) {
	eng, io, _ := testRig(DefaultConfig())
	done := false
	eng.At(0, func() {
		if !io.TryWrite(0, 0, func() { done = true }) {
			t.Errorf("TryWrite failed on idle IIO")
		}
		if io.WriteCreditsFree() != 91 {
			t.Errorf("credit not consumed: %d", io.WriteCreditsFree())
		}
	})
	eng.Run()
	if !done {
		t.Fatalf("write never completed")
	}
	if io.WriteCreditsFree() != 92 {
		t.Fatalf("credit not replenished: %d", io.WriteCreditsFree())
	}
	// Unloaded P2M-Write latency ~300 ns per the §4.2 calibration.
	lat := io.Stats().WriteLat.AvgNanos()
	if lat < 270 || lat > 330 {
		t.Fatalf("unloaded write latency %.1f ns, want ~300", lat)
	}
}

func TestWriteLinkPacing(t *testing.T) {
	eng, io, _ := testRig(DefaultConfig())
	granted := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			if io.TryWrite(mem.Addr(i*mem.LineSize), 0, nil) {
				granted++
			}
		}
	})
	eng.RunUntil(0)
	// The upstream link serializes: only one TLP can start per LinePeriodUp.
	if granted != 1 {
		t.Fatalf("granted %d writes at one instant, want 1 (link paced)", granted)
	}
}

func TestWriteCreditExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteCredits = 2
	cfg.LinePeriodUp = 0 // disable pacing to isolate the credit limit
	eng, io, _ := testRig(cfg)
	granted := 0
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			if io.TryWrite(mem.Addr(i*mem.LineSize), 0, nil) {
				granted++
			}
		}
	})
	eng.RunUntil(0)
	if granted != 2 {
		t.Fatalf("granted %d, want 2 (credit bound)", granted)
	}
}

func TestNotifyWriteFiresOnCreditReturn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteCredits = 1
	cfg.LinePeriodUp = 0
	eng, io, _ := testRig(cfg)
	notified := sim.Time(-1)
	eng.At(0, func() {
		io.TryWrite(0, 0, nil)
		if io.TryWrite(64, 0, nil) {
			t.Errorf("second write should be credit-blocked")
		}
		io.NotifyWrite(func() { notified = eng.Now() })
	})
	eng.Run()
	if notified < 0 {
		t.Fatalf("NotifyWrite never fired")
	}
	if notified < 200*sim.Nanosecond {
		t.Fatalf("notified too early (%v); credit returns after ~300ns", notified)
	}
}

func TestReadCreditLifecycle(t *testing.T) {
	eng, io, mc := testRig(DefaultConfig())
	done := false
	eng.At(0, func() {
		if !io.TryRead(0, 0, func() { done = true }) {
			t.Errorf("TryRead failed on idle IIO")
		}
	})
	eng.Run()
	if !done {
		t.Fatalf("read never completed")
	}
	if io.ReadCreditsFree() != 164 {
		t.Fatalf("read credit not replenished")
	}
	if mc.Stats().P2MRead.Lines.Count() != 1 {
		t.Fatalf("read did not reach memory")
	}
	// Non-posted round trip: request + DRAM + downstream delivery.
	lat := io.Stats().ReadLat.AvgNanos()
	if lat < 150 || lat > 350 {
		t.Fatalf("unloaded read latency %.1f ns out of plausible range", lat)
	}
}

func TestReadIssuePacing(t *testing.T) {
	eng, io, _ := testRig(DefaultConfig())
	granted := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			if io.TryRead(mem.Addr(i*mem.LineSize), 0, nil) {
				granted++
			}
		}
	})
	eng.RunUntil(0)
	if granted != 1 {
		t.Fatalf("granted %d reads at one instant, want 1 (paced)", granted)
	}
}

func TestBulkWriteThroughputIsLinkBound(t *testing.T) {
	eng, io, _ := testRig(DefaultConfig())
	// Saturating pump: always refill on credit/link availability.
	var pump func()
	pump = func() {
		for io.TryWrite(0, 0, nil) {
		}
		io.NotifyWrite(pump)
	}
	eng.At(0, pump)
	eng.RunUntil(20 * sim.Microsecond)
	io.Stats().Reset()
	eng.RunUntil(120 * sim.Microsecond)
	bw := io.Stats().LinesIn.BytesPerSecond()
	// 64B / 4.57ns = 14 GB/s.
	if bw < 13.5e9 || bw > 14.3e9 {
		t.Fatalf("bulk write bw %.2f GB/s, want ~14", bw/1e9)
	}
	// Spare credits: ~66 of 92 in use.
	occ := io.Stats().WriteOcc.Avg()
	if occ < 55 || occ > 80 {
		t.Fatalf("write occupancy %.1f, want ~66", occ)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("zero credits did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.WriteCredits = 0
	testRig(cfg)
}

func TestStatsReset(t *testing.T) {
	eng, io, _ := testRig(DefaultConfig())
	eng.At(0, func() { io.TryWrite(0, 0, nil) })
	eng.Run()
	io.Stats().Reset()
	if io.Stats().LinesIn.Count() != 0 {
		t.Fatalf("reset incomplete")
	}
}
