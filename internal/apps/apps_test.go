package apps

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// drive pumps the generator like a core would, with a fixed completion
// latency, and returns (reads, writes, queries) after n polls.
func drive(t *testing.T, r *Redis, eng *sim.Engine, polls int, lat sim.Time) (reads, writes int) {
	_, reads, writes = driveClock(t, r, polls, lat)
	return reads, writes
}

// driveClock is drive with the final simulated clock value exposed.
func driveClock(t *testing.T, r *Redis, polls int, lat sim.Time) (end sim.Time, reads, writes int) {
	t.Helper()
	var pending []cpu.Access
	now := sim.Time(0)
	for i := 0; i < polls; i++ {
		acc, at, ok := r.Poll(now)
		switch {
		case !ok:
			// Blocked on outstanding accesses: complete one.
			if len(pending) == 0 {
				t.Fatalf("generator blocked with nothing outstanding")
			}
			now += lat
			r.OnComplete(pending[0], now)
			pending = pending[1:]
		case at > now:
			now = at
		default:
			if acc.Kind == mem.Read {
				reads++
				pending = append(pending, acc)
			} else {
				writes++
				r.OnComplete(acc, now)
			}
		}
		// Drain completions opportunistically to let parallel value reads
		// finish.
		if len(pending) > 12 {
			now += lat
			r.OnComplete(pending[0], now)
			pending = pending[1:]
		}
	}
	return now, reads, writes
}

func TestRedisReadIssuesOnlyReads(t *testing.T) {
	eng := sim.New()
	r := NewRedis(eng, DefaultRedisConfig(), 0)
	reads, writes := drive(t, r, eng, 2000, 70*sim.Nanosecond)
	if writes != 0 {
		t.Fatalf("GET workload issued %d writes", writes)
	}
	if reads == 0 {
		t.Fatalf("no reads issued")
	}
}

func TestRedisWriteMixesWrites(t *testing.T) {
	eng := sim.New()
	cfg := DefaultRedisConfig()
	cfg.WriteQueries = true
	r := NewRedis(eng, cfg, 0)
	reads, writes := drive(t, r, eng, 4000, 70*sim.Nanosecond)
	if writes == 0 {
		t.Fatalf("SET workload issued no writes")
	}
	frac := float64(writes) / float64(reads+writes)
	// Value lines are written back 1:1; chain misses are read-only, so the
	// write fraction sits a bit below 0.5.
	if frac < 0.30 || frac > 0.55 {
		t.Fatalf("write fraction %.2f out of range", frac)
	}
}

func TestRedisCountsQueries(t *testing.T) {
	eng := sim.New()
	r := NewRedis(eng, DefaultRedisConfig(), 0)
	drive(t, r, eng, 5000, 70*sim.Nanosecond)
	if r.Queries().Count() == 0 {
		t.Fatalf("no queries completed")
	}
}

func TestRedisQueryLatencyScalesWithMemoryLatency(t *testing.T) {
	qps := func(lat sim.Time) float64 {
		eng := sim.New()
		r := NewRedis(eng, DefaultRedisConfig(), 0)
		end, _, _ := driveClock(t, r, 6000, lat)
		return float64(r.Queries().Count()) / end.Seconds()
	}
	fast, slow := qps(70*sim.Nanosecond), qps(140*sim.Nanosecond)
	if slow >= fast {
		t.Fatalf("doubling memory latency did not reduce QPS: %.0f vs %.0f", fast, slow)
	}
	// Redis is partially compute-bound: QPS must not halve outright.
	if slow < fast/2 {
		t.Fatalf("QPS fully latency-bound (%.0f vs %.0f); the compute share is missing", fast, slow)
	}
}

func TestRedisAddressesStayInKeyspace(t *testing.T) {
	eng := sim.New()
	cfg := DefaultRedisConfig()
	cfg.BufBytes = 1 << 20
	base := mem.Addr(4 << 30)
	r := NewRedis(eng, cfg, base)
	var pending []cpu.Access
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		acc, at, ok := r.Poll(now)
		if !ok {
			now += 70 * sim.Nanosecond
			r.OnComplete(pending[0], now)
			pending = pending[1:]
			continue
		}
		if at > now {
			now = at
			continue
		}
		// Value lines may run up to ValueLines past a random line.
		limit := base + mem.Addr(cfg.BufBytes) + mem.Addr(cfg.ValueLines*mem.LineSize)
		if acc.Addr < base || acc.Addr >= limit {
			t.Fatalf("access %#x outside keyspace [%#x, %#x)", acc.Addr, base, limit)
		}
		if acc.Kind == mem.Read {
			pending = append(pending, acc)
		}
		if len(pending) > 12 {
			now += 70 * sim.Nanosecond
			r.OnComplete(pending[0], now)
			pending = pending[1:]
		}
	}
}

func TestRedisInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("zero chain misses did not panic")
		}
	}()
	cfg := DefaultRedisConfig()
	cfg.ChainMisses = 0
	NewRedis(sim.New(), cfg, 0)
}

func TestGAPBSGenerators(t *testing.T) {
	pr := NewGAPBSPageRank(0, 1)
	bc := NewGAPBSBC(0, 1)
	prWrites, bcWrites := 0, 0
	for i := 0; i < 2000; i++ {
		if acc, at, ok := pr.Poll(0); ok && at == 0 && acc.Kind == mem.Write {
			prWrites++
		}
		acc, at, ok := bc.Poll(sim.Time(i) * 20 * sim.Nanosecond)
		if ok && at <= sim.Time(i)*20*sim.Nanosecond && acc.Kind == mem.Write {
			bcWrites++
		}
	}
	if prWrites != 0 {
		t.Fatalf("PageRank issued %d writes", prWrites)
	}
	if bcWrites == 0 {
		t.Fatalf("BC issued no writes")
	}
}
