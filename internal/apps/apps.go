// Package apps models the real applications of the paper's §2.1 at the
// fidelity that matters for host-network contention: each app's memory
// access intensity, pattern, and read/write mix.
//
//   - Redis (YCSB-C / 100% GET, and the Appendix B 100% SET variant): a
//     closed-loop query engine per core. Each query spends CPU time, then
//     walks a short dependent miss chain (hash-table lookup), then touches
//     the value's cachelines; SETs additionally dirty the value lines,
//     producing ~50/50 read/write traffic.
//   - GAPBS PageRank: memory-bound uniform-random reads over a shared graph
//     (~5 GB footprint, ~100% LLC miss).
//   - GAPBS Betweenness Centrality: the suite's most write-heavy algorithm:
//     ~80/20 read/write random traffic with more compute per access.
//   - FIO lives in internal/periph (it is a peripheral workload).
package apps

import (
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// RedisConfig parameterizes the Redis model.
type RedisConfig struct {
	// ComputeTime is the per-query CPU time outside memory stalls (command
	// parsing, hashing, socket work via Unix domain sockets).
	ComputeTime sim.Time
	// ChainMisses is the dependent-miss depth of the keyspace lookup.
	ChainMisses int
	// ValueLines is the number of cachelines in the value (1 KB = 16).
	ValueLines int
	// WriteQueries makes every query a SET (Redis-Write): the value lines
	// are written (RFO read + writeback) instead of just read.
	WriteQueries bool
	// BufBytes is the per-instance keyspace footprint (1M keys x ~1KB).
	BufBytes int64
	Seed     uint64
}

// DefaultRedisConfig calibrates the model so that, like the paper's YCSB-C
// setup (>95% miss ratio, pointer-chasing lookups, cold 1 KB value copies),
// most of the query's critical path is memory stalls.
func DefaultRedisConfig() RedisConfig {
	return RedisConfig{
		ComputeTime: 100 * sim.Nanosecond,
		ChainMisses: 5,
		ValueLines:  16,
		BufBytes:    1 << 30,
		Seed:        11,
	}
}

// Redis is one server-core instance (the standard sharded deployment runs
// one instance per core, each with a private keyspace).
type Redis struct {
	cfg  RedisConfig
	base mem.Addr
	rng  interface{ Int64N(int64) int64 }

	phase     int // 0 compute, 1 chain, 2 value
	readyAt   sim.Time
	chainLeft int
	valueLeft int
	valueBase mem.Addr
	valueEnd  mem.Addr
	pendingWB []mem.Addr
	// outstanding tracks in-flight value accesses; the query advances to
	// the next one once all complete.
	outstanding int
	issuedAll   bool

	queries *telemetry.Counter
}

// NewRedis builds an instance over a private keyspace region.
func NewRedis(eng *sim.Engine, cfg RedisConfig, base mem.Addr) *Redis {
	if cfg.ChainMisses < 1 || cfg.ValueLines < 1 {
		panic("apps: redis needs at least one chain miss and one value line")
	}
	return &Redis{
		cfg:     cfg,
		base:    base,
		rng:     sim.RNG(cfg.Seed),
		queries: telemetry.NewCounter(eng),
	}
}

// Queries exposes the completed-query counter (QPS when rated).
func (r *Redis) Queries() *telemetry.Counter { return r.queries }

func (r *Redis) randomLine() mem.Addr {
	lines := r.cfg.BufBytes / mem.LineSize
	return r.base + mem.Addr(r.rng.Int64N(lines)*mem.LineSize)
}

// Poll implements cpu.Generator.
func (r *Redis) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if len(r.pendingWB) > 0 {
		a := r.pendingWB[0]
		r.pendingWB = r.pendingWB[1:]
		return cpu.Access{Addr: a, Kind: mem.Write}, now, true
	}
	switch r.phase {
	case 0: // compute
		if r.readyAt == 0 {
			r.readyAt = now + r.cfg.ComputeTime
		}
		if r.readyAt > now {
			return cpu.Access{}, r.readyAt, true
		}
		r.readyAt = 0
		r.phase = 1
		r.chainLeft = r.cfg.ChainMisses
		return r.Poll(now)
	case 1: // dependent chain: one miss at a time
		if r.chainLeft == 0 {
			r.phase = 2
			r.valueLeft = r.cfg.ValueLines
			r.valueBase = r.randomLine()
			r.valueEnd = r.valueBase + mem.Addr(r.cfg.ValueLines*mem.LineSize)
			r.issuedAll = false
			return r.Poll(now)
		}
		if r.outstanding > 0 {
			return cpu.Access{}, 0, false // wait for the previous miss
		}
		r.chainLeft--
		r.outstanding++
		return cpu.Access{Addr: r.randomLine(), Kind: mem.Read}, now, true
	default: // value access: ValueLines parallel reads (RFOs for SETs)
		if r.valueLeft == 0 {
			r.issuedAll = true
			if r.outstanding > 0 {
				return cpu.Access{}, 0, false // drain the query
			}
			r.queries.Inc()
			r.phase = 0
			return r.Poll(now)
		}
		r.valueLeft--
		r.outstanding++
		a := r.valueBase + mem.Addr((r.cfg.ValueLines-1-r.valueLeft)*mem.LineSize)
		return cpu.Access{Addr: a, Kind: mem.Read}, now, true
	}
}

// OnComplete implements cpu.Generator.
func (r *Redis) OnComplete(acc cpu.Access, now sim.Time) {
	if acc.Kind == mem.Write {
		return
	}
	r.outstanding--
	if r.cfg.WriteQueries && acc.Addr >= r.valueBase && acc.Addr < r.valueEnd {
		// SET: the value line just RFO'd will be dirtied and written back.
		r.pendingWB = append(r.pendingWB, acc.Addr)
	}
}

// NewGAPBSPageRank returns the PR workload: a shared ~5 GB graph read with
// uniform-random accesses at full memory-level parallelism.
func NewGAPBSPageRank(base mem.Addr, seed uint64) cpu.Generator {
	return workload.NewRandRead(base, 5<<30, seed)
}

// NewGAPBSBC returns the Betweenness Centrality workload: ~20% random
// writes, with extra per-access compute that lowers its bandwidth demand
// per core relative to PageRank.
func NewGAPBSBC(base mem.Addr, seed uint64) cpu.Generator {
	return workload.NewMix(base, 5<<30, 0.20, 12*sim.Nanosecond, seed)
}

// redisState is the snapshot of a Redis generator.
type redisState struct {
	rng       any
	phase     int
	readyAt   sim.Time
	chainLeft int
	valueLeft int
	valueBase mem.Addr
	valueEnd  mem.Addr
	pendingWB []mem.Addr
	outstand  int
	issuedAll bool
}

// SaveState implements sim.Stateful.
func (r *Redis) SaveState() any {
	st := redisState{
		phase: r.phase, readyAt: r.readyAt,
		chainLeft: r.chainLeft, valueLeft: r.valueLeft,
		valueBase: r.valueBase, valueEnd: r.valueEnd,
		pendingWB: append([]mem.Addr(nil), r.pendingWB...),
		outstand:  r.outstanding, issuedAll: r.issuedAll,
	}
	if rng, ok := r.rng.(*sim.Rand); ok {
		st.rng = rng.SaveState()
	}
	return st
}

// LoadState implements sim.Stateful.
func (r *Redis) LoadState(state any) {
	st := state.(redisState)
	r.phase, r.readyAt = st.phase, st.readyAt
	r.chainLeft, r.valueLeft = st.chainLeft, st.valueLeft
	r.valueBase, r.valueEnd = st.valueBase, st.valueEnd
	r.pendingWB = append(r.pendingWB[:0], st.pendingWB...)
	r.outstanding, r.issuedAll = st.outstand, st.issuedAll
	if rng, ok := r.rng.(*sim.Rand); ok {
		rng.LoadState(st.rng)
	}
}
