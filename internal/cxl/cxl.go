// Package cxl models a CXL.mem memory expander — the first of the "new
// interconnects" the paper's §7 names as the future of the host network.
//
// An expander is a second memory home behind a serial link: host requests
// cross the link (per-direction cacheline serialization plus propagation),
// are serviced by the device's own memory controller and DRAM, and read
// data crosses back. Two properties follow, both of which the tests pin
// down:
//
//   - Latency: an unloaded CXL read costs the local path plus two link
//     crossings (~70 -> ~250 ns), so an LFB-bound core gets C*64/L of it.
//   - Isolation: CXL-homed traffic does not touch the host's memory
//     controller, so it neither suffers from nor contributes to DRAM-side
//     contention — offloading to CXL trades latency for isolation.
package cxl

import (
	"repro/internal/audit"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config models the expander and its link.
type Config struct {
	// LinkLatency is the one-way propagation (protocol + retimers).
	LinkLatency sim.Time
	// LinePeriod is the per-direction serialization per cacheline
	// (~2 ns at 32 GB/s per direction on a x8 CXL 2.0 port).
	LinePeriod sim.Time
	// Mapper and MC describe the expander's internal memory.
	Mapper mem.MapperConfig
	MC     dram.Config
	// DeviceProc is the expander-side processing per request.
	DeviceProc sim.Time
	// Audit, when non-nil, receives the expander's invariants (its internal
	// memory controller registers under "cxl/mc").
	Audit *audit.Auditor
}

// DefaultConfig returns a single-channel DDR-backed expander behind a
// ~32 GB/s link with ~85 ns one-way latency: unloaded reads land at the
// ~250 ns figure typical of first-generation CXL memory.
func DefaultConfig() Config {
	mc := dram.DefaultConfig()
	return Config{
		LinkLatency: 85 * sim.Nanosecond,
		LinePeriod:  2 * sim.Nanosecond,
		Mapper:      mem.MapperConfig{Channels: 1, Banks: 32, RowBytes: 8192, XORRowIntoBank: true},
		MC:          mc,
		DeviceProc:  10 * sim.Nanosecond,
	}
}

// Stats exposes the expander probes.
type Stats struct {
	// ReadLat measures request arrival at the host port to data delivery
	// back at the host (the CXL round trip minus the requester's own hops).
	ReadLat *telemetry.Latency
	// Reads/Writes count serviced lines.
	Reads, Writes *telemetry.Counter
}

// Reset starts a new measurement window.
func (s *Stats) Reset() {
	s.ReadLat.Reset()
	s.Reads.Reset()
	s.Writes.Reset()
}

// Expander is a CXL.mem device. It implements mem.Submitter, so it can stand
// wherever a CHA can: behind a numa.Router-style mux keyed by address.
type Expander struct {
	eng *sim.Engine
	cfg Config
	mc  *dram.Controller

	// Link serialization, per direction (0 = host->device).
	freeAt [2]sim.Time
	// linePeriod is the live per-line serialization time: cfg.LinePeriod
	// normally, stretched while a lane-degradation fault is active.
	linePeriod sim.Time

	// writes blocked on a full WPQ await retry.
	wBacklog []*mem.Request

	// Bound handlers, created once so per-request link crossings schedule
	// without allocating closures.
	arriveFn   sim.EventFunc
	ackFn      sim.EventFunc
	readBackFn sim.EventFunc

	stats *Stats
}

func (e *Expander) arriveEvent(arg any) { e.arrive(arg.(*mem.Request)) }

// ackEvent lands a posted-write acknowledgment back at the host.
func (e *Expander) ackEvent(arg any) {
	r := arg.(*mem.Request)
	r.TDone = e.eng.Now()
	if r.Done != nil {
		r.Done(r)
	}
}

// readBackEvent lands read data back at the host.
func (e *Expander) readBackEvent(arg any) {
	r := arg.(*mem.Request)
	e.stats.Reads.Inc()
	e.stats.ReadLat.Exit()
	r.TDone = e.eng.Now()
	if r.Done != nil {
		r.Done(r)
	}
}

// New builds an expander.
func New(eng *sim.Engine, cfg Config) *Expander {
	e := &Expander{
		eng: eng,
		cfg: cfg,
		stats: &Stats{
			ReadLat: telemetry.NewLatency(eng),
			Reads:   telemetry.NewCounter(eng),
			Writes:  telemetry.NewCounter(eng),
		},
	}
	cfg.MC.Audit = cfg.Audit
	if cfg.MC.AuditDomain == "" {
		cfg.MC.AuditDomain = "cxl/mc"
	}
	e.cfg = cfg
	e.linePeriod = cfg.LinePeriod
	eng.Register(e)
	e.mc = dram.New(eng, cfg.MC, mem.MustMapper(cfg.Mapper), e)
	e.arriveFn = e.arriveEvent
	e.ackFn = e.ackEvent
	e.readBackFn = e.readBackEvent
	if aud := cfg.Audit; aud.Enabled() {
		aud.Latency("cxl", "read_lat", e.stats.ReadLat)
	}
	return e
}

// Stats returns the expander probes.
func (e *Expander) Stats() *Stats { return e.stats }

// serialize reserves a line slot on one link direction.
func (e *Expander) serialize(dir int) sim.Time {
	now := e.eng.Now()
	start := e.freeAt[dir]
	if start < now {
		start = now
	}
	e.freeAt[dir] = start + e.linePeriod
	return e.freeAt[dir] - now
}

// FaultSetLineMult multiplies per-line link serialization time by mult
// (lanes dropping to a degraded width/speed); mult <= 1 restores the
// configured rate. Lines already reserved keep their slots.
func (e *Expander) FaultSetLineMult(mult float64) {
	if mult <= 1 {
		e.linePeriod = e.cfg.LinePeriod
		return
	}
	e.linePeriod = sim.Time(float64(e.cfg.LinePeriod)*mult + 0.5)
}

// MC exposes the expander's internal memory controller (a DRAM fault
// target like the host's own).
func (e *Expander) MC() *dram.Controller { return e.mc }

// Submit implements mem.Submitter: the host-side CXL port.
func (e *Expander) Submit(r *mem.Request) {
	// Outbound crossing: writes carry data (serialize), reads are small.
	var outSer sim.Time
	if r.Kind == mem.Write {
		outSer = e.serialize(0)
	}
	e.stats.ReadLatEnterIfRead(r)
	e.eng.AfterFunc(outSer+e.cfg.LinkLatency+e.cfg.DeviceProc, e.arriveFn, r)
}

// ReadLatEnterIfRead keeps probe bookkeeping in one place.
func (s *Stats) ReadLatEnterIfRead(r *mem.Request) {
	if r.Kind == mem.Read {
		s.ReadLat.Enter()
	}
}

// arrive enqueues a request at the device's memory controller.
func (e *Expander) arrive(r *mem.Request) {
	if r.Kind == mem.Write {
		if !e.mc.TryEnqueue(r) {
			e.wBacklog = append(e.wBacklog, r)
			return
		}
		e.writeAdmitted(r)
		return
	}
	if !e.mc.TryEnqueue(r) {
		// RPQ full: retry on the next completion.
		e.wBacklog = append(e.wBacklog, r)
	}
}

// writeAdmitted completes a write toward the host: CXL.mem writes are
// posted once the device accepts them, with the ack crossing back.
func (e *Expander) writeAdmitted(r *mem.Request) {
	e.stats.Writes.Inc()
	e.eng.AfterFunc(e.cfg.LinkLatency, e.ackFn, r)
}

// drain retries backlogged requests.
func (e *Expander) drain() {
	kept := e.wBacklog[:0]
	for _, r := range e.wBacklog {
		if e.mc.TryEnqueue(r) {
			if r.Kind == mem.Write {
				e.writeAdmitted(r)
			}
			continue
		}
		kept = append(kept, r)
	}
	e.wBacklog = kept
}

// ReadComplete implements dram.Client: data crosses back to the host.
func (e *Expander) ReadComplete(r *mem.Request) {
	e.drain()
	backSer := e.serialize(1)
	e.eng.AfterFunc(backSer+e.cfg.LinkLatency, e.readBackFn, r)
}

// WPQSpaceFreed implements dram.Client.
func (e *Expander) WPQSpaceFreed(int) { e.drain() }

// expanderState is the snapshot of an Expander; its internal memory
// controller registers separately in dram.New.
type expanderState struct {
	freeAt     [2]sim.Time
	linePeriod sim.Time
	wBacklog   mem.QueueState
}

// SaveState implements sim.Stateful.
func (e *Expander) SaveState() any {
	return expanderState{freeAt: e.freeAt, linePeriod: e.linePeriod, wBacklog: mem.SaveQueue(e.wBacklog)}
}

// LoadState implements sim.Stateful.
func (e *Expander) LoadState(state any) {
	st := state.(expanderState)
	e.freeAt, e.linePeriod = st.freeAt, st.linePeriod
	e.wBacklog = st.wBacklog.Restore(e.wBacklog)
}
