package cxl

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestUnloadedReadLatency(t *testing.T) {
	eng := sim.New()
	e := New(eng, DefaultConfig())
	var done sim.Time = -1
	r := &mem.Request{Addr: 0, Kind: mem.Read, TAlloc: 0}
	r.Done = func(*mem.Request) { done = eng.Now() }
	eng.At(0, func() { e.Submit(r) })
	eng.Run()
	// link 85 + proc 10 + MC cold (~33 with default timing) + serialize 2 +
	// link 85 ~= 215 ns.
	if done < 190*sim.Nanosecond || done > 240*sim.Nanosecond {
		t.Fatalf("unloaded CXL read at %v, want ~215ns", done)
	}
	if e.Stats().Reads.Count() != 1 {
		t.Fatalf("read not counted")
	}
}

func TestWritePostedAtDevice(t *testing.T) {
	eng := sim.New()
	e := New(eng, DefaultConfig())
	var done sim.Time = -1
	r := &mem.Request{Addr: 0, Kind: mem.Write, TAlloc: 0}
	r.Done = func(*mem.Request) { done = eng.Now() }
	eng.At(0, func() { e.Submit(r) })
	eng.Run()
	// serialize 2 + link 85 + proc 10 + ack link 85 = 182 ns: completion does
	// not wait for DRAM.
	if done < 170*sim.Nanosecond || done > 195*sim.Nanosecond {
		t.Fatalf("posted write acked at %v, want ~182ns", done)
	}
	if e.Stats().Writes.Count() != 1 {
		t.Fatalf("write not counted")
	}
}

func TestLinkSerializesReads(t *testing.T) {
	eng := sim.New()
	e := New(eng, DefaultConfig())
	var doneTimes []sim.Time
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			r := &mem.Request{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read}
			r.Done = func(*mem.Request) { doneTimes = append(doneTimes, eng.Now()) }
			e.Submit(r)
		}
	})
	eng.Run()
	if len(doneTimes) != 4 {
		t.Fatalf("completed %d of 4", len(doneTimes))
	}
	// Return data serializes at one line period on the device->host link.
	for i := 1; i < len(doneTimes); i++ {
		if d := doneTimes[i] - doneTimes[i-1]; d < 2*sim.Nanosecond {
			t.Fatalf("return gap %v below one line period", d)
		}
	}
}

func TestBackpressureRetries(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig()
	cfg.MC.RPQCap = 2
	e := New(eng, cfg)
	done := 0
	eng.At(0, func() {
		for i := 0; i < 30; i++ {
			r := &mem.Request{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read}
			r.Done = func(*mem.Request) { done++ }
			e.Submit(r)
		}
	})
	eng.Run()
	if done != 30 {
		t.Fatalf("completed %d of 30 under a tiny RPQ", done)
	}
}
