// Package dram models the memory interconnect: per-channel memory
// controllers with separate Read/Write Pending Queues (RPQ/WPQ), the
// unidirectional data channel with read/write mode switching, and DRAM banks
// with open-row policy and ACT/PRE timing.
//
// This is the substrate in which the paper's two root causes of
// queueing-before-saturation live: row misses (PRE/ACT processing delay at
// banks) and load imbalance across banks (static hash mapping), plus the
// write head-of-line blocking and switching delays that the §6 analytical
// model decomposes.
package dram

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Timing collects the DRAM timing constraints used by the simulator; they
// match the constants of the paper's analytical formula (Figures 9 and 10).
type Timing struct {
	TTrans sim.Time // data-burst time for one cacheline on the channel
	TRCD   sim.Time // activate (row open) delay — the formula's tACT
	TRP    sim.Time // precharge (row close) delay — the formula's tPRE
	TCL    sim.Time // column access (CAS) latency
	TWTR   sim.Time // write-to-read mode switch penalty
	TRTW   sim.Time // read-to-write mode switch penalty
}

// DDR4_2933 matches the Cascade Lake testbed's DIMMs: 23.46 GB/s per
// channel (tTrans = 2.73 ns) and tProc = tRP + tRCD + tCL = 45 ns.
func DDR4_2933() Timing {
	return Timing{
		TTrans: 2730 * sim.Picosecond,
		TRCD:   15 * sim.Nanosecond,
		TRP:    15 * sim.Nanosecond,
		TCL:    15 * sim.Nanosecond,
		TWTR:   12 * sim.Nanosecond,
		TRTW:   8 * sim.Nanosecond,
	}
}

// DDR4_3200 matches the Ice Lake testbed's DIMMs: 25.6 GB/s per channel.
func DDR4_3200() Timing {
	return Timing{
		TTrans: 2500 * sim.Picosecond,
		TRCD:   13750 * sim.Picosecond,
		TRP:    13750 * sim.Picosecond,
		TCL:    13750 * sim.Picosecond,
		TWTR:   12 * sim.Nanosecond,
		TRTW:   8 * sim.Nanosecond,
	}
}

// Config configures the memory controller.
type Config struct {
	Timing Timing
	// RPQCap and WPQCap bound per-channel pending reads and writes
	// (including requests currently in service at a bank).
	RPQCap, WPQCap int
	// WPQHigh triggers a switch to write mode.
	WPQHigh int
	// DrainBatch bounds how many writes a single drain serves while reads
	// are waiting. Bounding the drain duty is what lets the WPQ pin at
	// capacity under write overload — the red regime's first phase.
	DrainBatch int
	// WPQOppEntry is the minimum write backlog for an opportunistic drain
	// when the read side is fully idle; it stops the scheduler from paying
	// turnaround penalties for one or two writes at a time.
	WPQOppEntry int
	// MaxWriteAge bounds how long a write may wait before a drain is forced
	// even below the watermarks (so low-rate write streams still complete).
	MaxWriteAge sim.Time
	// ReadDwellMin is the minimum time the channel stays in read mode
	// between drains while reads are flowing. It caps the write duty cycle,
	// reflecting the read preference of real controllers; under write
	// overload the WPQ pins at capacity and writes backlog upstream at the
	// CHA — the red regime's entry condition (§5.2).
	ReadDwellMin sim.Time
	// SchedWindow bounds how many waiting requests the scheduler scans for a
	// serviceable candidate (FR-FCFS-style lookahead).
	SchedWindow int
	// PipelineAhead bounds how far beyond "now" the channel may be committed
	// before the scheduler waits; it models the command-issue lookahead of a
	// real controller.
	PipelineAhead sim.Time
	// BankSampleWindow is the per-channel read count per bank-load sample
	// (the paper samples every 1000 requests); 0 disables sampling.
	BankSampleWindow int
	// WPQReserveP2M reserves this many per-channel WPQ slots for peripheral
	// writes — the §7 "memory controller scheduling for C2M/P2M isolation"
	// direction. C2M writebacks cannot occupy the reserved slots, so CHA
	// write backlog no longer starves the P2M-Write domain. 0 disables the
	// mechanism (the hardware the paper studies has no such isolation).
	WPQReserveP2M int

	// Audit, when non-nil, receives the controller's RPQ/WPQ invariants;
	// AuditDomain overrides the default "dram" domain label (the CXL
	// expander's internal controller registers as "cxl/mc").
	Audit       *audit.Auditor
	AuditDomain string
}

// DefaultConfig returns the Cascade-Lake-calibrated controller parameters.
func DefaultConfig() Config {
	return Config{
		Timing:           DDR4_2933(),
		RPQCap:           48,
		WPQCap:           48,
		WPQHigh:          40,
		DrainBatch:       20,
		WPQOppEntry:      8,
		MaxWriteAge:      250 * sim.Nanosecond,
		ReadDwellMin:     50 * sim.Nanosecond,
		SchedWindow:      16,
		PipelineAhead:    100 * sim.Nanosecond,
		BankSampleWindow: 1000,
	}
}

// Client receives controller notifications.
type Client interface {
	// ReadComplete fires when a read's data burst finishes on the channel;
	// the client owns any propagation delay back to the requester.
	ReadComplete(r *mem.Request)
	// WPQSpaceFreed fires when a write burst completes, freeing a WPQ slot
	// on the given channel. Clients with backlogged writes retry then.
	WPQSpaceFreed(channel int)
}

type bank struct {
	openRow int64 // -1 means closed
	readyAt sim.Time
}

// KindStats counts row-buffer outcomes for one (source, kind) class,
// supplying the analytic model's #ACT and #PREconflict inputs.
type KindStats struct {
	Lines       *telemetry.Counter
	RowHits     *telemetry.Counter
	ACTs        *telemetry.Counter // activations (row was closed or conflicting)
	PREConflict *telemetry.Counter // precharges forced by a row conflict
}

func newKindStats(eng *sim.Engine) *KindStats {
	return &KindStats{
		Lines:       telemetry.NewCounter(eng),
		RowHits:     telemetry.NewCounter(eng),
		ACTs:        telemetry.NewCounter(eng),
		PREConflict: telemetry.NewCounter(eng),
	}
}

// RowMissRatio reports 1 - hits/lines.
func (k *KindStats) RowMissRatio() float64 {
	if k.Lines.Count() == 0 {
		return 0
	}
	return 1 - float64(k.RowHits.Count())/float64(k.Lines.Count())
}

func (k *KindStats) reset() {
	k.Lines.Reset()
	k.RowHits.Reset()
	k.ACTs.Reset()
	k.PREConflict.Reset()
}

// Stats exposes the controller's uncore-counter analogues, aggregated across
// channels.
type Stats struct {
	RPQOcc   *telemetry.Integrator // total pending reads across channels
	WPQOcc   *telemetry.Integrator
	WPQFull  *telemetry.FracTimer // any channel's WPQ at capacity
	Switches *telemetry.Counter   // read<->write mode transitions (all channels)
	// ReadLat measures TMCEnq -> burst completion via Little's law.
	ReadLat *telemetry.Latency
	// Per (source, kind) row-buffer outcome counters.
	C2MRead, C2MWrite, P2MRead, P2MWrite *KindStats
	// BankDeviation holds max/avg bank-load ratios sampled every
	// BankSampleWindow reads per channel (Fig 7d).
	BankDeviation *telemetry.Samples
}

func (s *Stats) kindStats(src mem.Source, k mem.Kind) *KindStats {
	switch {
	case src == mem.C2M && k == mem.Read:
		return s.C2MRead
	case src == mem.C2M && k == mem.Write:
		return s.C2MWrite
	case src == mem.P2M && k == mem.Read:
		return s.P2MRead
	default:
		return s.P2MWrite
	}
}

// Reset starts a new measurement window on every probe.
func (s *Stats) Reset() {
	s.RPQOcc.Reset()
	s.WPQOcc.Reset()
	s.WPQFull.Reset()
	s.Switches.Reset()
	s.ReadLat.Reset()
	s.C2MRead.reset()
	s.C2MWrite.reset()
	s.P2MRead.reset()
	s.P2MWrite.reset()
	s.BankDeviation.Reset()
}

// LinesRead reports total cachelines read in the window.
func (s *Stats) LinesRead() uint64 { return s.C2MRead.Lines.Count() + s.P2MRead.Lines.Count() }

// LinesWritten reports total cachelines written in the window.
func (s *Stats) LinesWritten() uint64 { return s.C2MWrite.Lines.Count() + s.P2MWrite.Lines.Count() }

type channel struct {
	ctl          *Controller
	idx          int
	mode         mem.Kind
	busyTill     sim.Time
	banks        []bank
	rdWait       []*mem.Request // waiting, FIFO arrival order
	wrWait       []*mem.Request
	rdCount      int // waiting + in service
	wrCount      int
	drainIssued  int // writes issued in the current drain
	lastDrainEnd sim.Time
	waker        *sim.Waker
	burstFn      sim.EventFunc // bound burstDone handler, created once

	// timing points at the constants the scheduler uses: the controller's
	// configured Timing normally, or throttled (a scaled copy) while a
	// fault-injected channel slowdown is active.
	timing    *Timing
	throttled Timing

	// bank-load sampling state
	bankLoads   []int
	sampleCount int
}

// Controller is the multi-channel memory controller.
type Controller struct {
	eng    *sim.Engine
	cfg    Config
	mapper *mem.Mapper
	client Client
	chans  []*channel
	stats  *Stats
}

// New builds a controller over the given address mapper. The client may be
// nil initially and set later with SetClient (host wiring is circular:
// CHA -> MC -> CHA).
func New(eng *sim.Engine, cfg Config, mapper *mem.Mapper, client Client) *Controller {
	if cfg.RPQCap <= 0 || cfg.WPQCap <= 0 {
		panic(fmt.Sprintf("dram: queue capacities must be positive: %+v", cfg))
	}
	if cfg.WPQHigh > cfg.WPQCap || cfg.WPQHigh <= 0 {
		panic(fmt.Sprintf("dram: need 0 < WPQHigh <= WPQCap: %+v", cfg))
	}
	if cfg.DrainBatch <= 0 {
		panic(fmt.Sprintf("dram: DrainBatch must be positive: %+v", cfg))
	}
	if cfg.WPQReserveP2M < 0 || cfg.WPQReserveP2M >= cfg.WPQCap {
		panic(fmt.Sprintf("dram: need 0 <= WPQReserveP2M < WPQCap: %+v", cfg))
	}
	if cfg.SchedWindow <= 0 {
		cfg.SchedWindow = 16
	}
	c := &Controller{
		eng:    eng,
		cfg:    cfg,
		mapper: mapper,
		client: client,
		stats: &Stats{
			RPQOcc:        telemetry.NewIntegrator(eng),
			WPQOcc:        telemetry.NewIntegrator(eng),
			WPQFull:       telemetry.NewFracTimer(eng),
			Switches:      telemetry.NewCounter(eng),
			ReadLat:       telemetry.NewLatency(eng),
			C2MRead:       newKindStats(eng),
			C2MWrite:      newKindStats(eng),
			P2MRead:       newKindStats(eng),
			P2MWrite:      newKindStats(eng),
			BankDeviation: &telemetry.Samples{},
		},
	}
	eng.Register(c)
	eng.Register(c.stats.BankDeviation)
	for i := 0; i < mapper.Channels(); i++ {
		ch := &channel{
			ctl:       c,
			idx:       i,
			mode:      mem.Read,
			banks:     make([]bank, mapper.Banks()),
			bankLoads: make([]int, mapper.Banks()),
		}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		ch.timing = &c.cfg.Timing
		ch.waker = sim.NewWaker(eng, ch.kick)
		ch.burstFn = ch.burstDoneEvent
		c.chans = append(c.chans, ch)
	}
	if aud := cfg.Audit; aud.Enabled() {
		domain := cfg.AuditDomain
		if domain == "" {
			domain = "dram"
		}
		for _, ch := range c.chans {
			ch := ch
			counter := fmt.Sprintf("ch%d_rpq", ch.idx)
			aud.Check(domain, counter, func() (bool, string) {
				if ch.rdCount < 0 || ch.rdCount > cfg.RPQCap || len(ch.rdWait) > ch.rdCount {
					return false, fmt.Sprintf("rdCount=%d waiting=%d cap=%d", ch.rdCount, len(ch.rdWait), cfg.RPQCap)
				}
				return true, ""
			})
			counter = fmt.Sprintf("ch%d_wpq", ch.idx)
			aud.Check(domain, counter, func() (bool, string) {
				if ch.wrCount < 0 || ch.wrCount > cfg.WPQCap || len(ch.wrWait) > ch.wrCount {
					return false, fmt.Sprintf("wrCount=%d waiting=%d cap=%d", ch.wrCount, len(ch.wrWait), cfg.WPQCap)
				}
				return true, ""
			})
		}
		aud.Gauge(domain, "rpq_occ", c.stats.RPQOcc, func() int {
			n := 0
			for _, ch := range c.chans {
				n += ch.rdCount
			}
			return n
		})
		aud.Gauge(domain, "wpq_occ", c.stats.WPQOcc, func() int {
			n := 0
			for _, ch := range c.chans {
				n += ch.wrCount
			}
			return n
		})
		aud.Latency(domain, "read_lat", c.stats.ReadLat)
	}
	return c
}

// SetClient installs the notification sink.
func (c *Controller) SetClient(cl Client) { c.client = cl }

// FaultSetChannelSlowdown multiplies one channel's timing constants by
// factor (thermal throttling / DVFS on the DIMM); factor <= 1 restores the
// configured timing. The channel index wraps modulo the channel count.
// Only future command scheduling uses the new constants — bursts already
// committed keep their times, as on real hardware.
func (c *Controller) FaultSetChannelSlowdown(channel int, factor float64) {
	ch := c.chans[channel%len(c.chans)]
	if factor <= 1 {
		ch.timing = &c.cfg.Timing
	} else {
		t := c.cfg.Timing
		scale := func(v sim.Time) sim.Time { return sim.Time(float64(v)*factor + 0.5) }
		ch.throttled = Timing{
			TTrans: scale(t.TTrans),
			TRCD:   scale(t.TRCD),
			TRP:    scale(t.TRP),
			TCL:    scale(t.TCL),
			TWTR:   scale(t.TWTR),
			TRTW:   scale(t.TRTW),
		}
		ch.timing = &ch.throttled
	}
	ch.waker.Wake()
}

// FaultBankOffline takes (channel, bank) out of service until the given
// simulated time: the open row is lost and every access to the bank queues
// behind the outage (the FR-FCFS scan naturally prefers other banks
// meanwhile). Indices wrap modulo the controller geometry.
func (c *Controller) FaultBankOffline(channel, bankIdx int, until sim.Time) {
	ch := c.chans[channel%len(c.chans)]
	b := &ch.banks[bankIdx%len(ch.banks)]
	if b.readyAt < until {
		b.readyAt = until
	}
	b.openRow = -1
	ch.waker.Wake()
}

// Stats returns the controller's probes.
func (c *Controller) Stats() *Stats { return c.stats }

// Channels reports the channel count.
func (c *Controller) Channels() int { return len(c.chans) }

// Timing returns the configured timing constants (used by the analytic model).
func (c *Controller) Timing() Timing { return c.cfg.Timing }

// WPQCap reports the per-channel write queue capacity.
func (c *Controller) WPQCap() int { return c.cfg.WPQCap }

// ChannelOf reports which channel services the request's address.
func (c *Controller) ChannelOf(a mem.Addr) int { return c.mapper.Map(a).Channel }

// WPQHasSpace reports whether the channel serving addr can accept a write.
func (c *Controller) WPQHasSpace(a mem.Addr) bool {
	ch := c.chans[c.mapper.Map(a).Channel]
	return ch.wrCount < c.cfg.WPQCap
}

// TryEnqueue routes a request to its channel queue. It returns false when
// the relevant queue is full; the caller (the CHA) holds the request and
// retries on ReadComplete/WPQSpaceFreed notifications.
func (c *Controller) TryEnqueue(r *mem.Request) bool {
	coord := r.MapCoord(c.mapper)
	ch := c.chans[coord.Channel]
	switch r.Kind {
	case mem.Read:
		if ch.rdCount >= c.cfg.RPQCap {
			return false
		}
		ch.rdCount++
		c.stats.RPQOcc.Add(1)
		c.stats.ReadLat.Enter()
		ch.rdWait = append(ch.rdWait, r)
	case mem.Write:
		limit := c.cfg.WPQCap
		if r.Source == mem.C2M {
			limit -= c.cfg.WPQReserveP2M
		}
		if ch.wrCount >= limit {
			return false
		}
		ch.wrCount++
		c.stats.WPQOcc.Add(1)
		ch.wrWait = append(ch.wrWait, r)
		c.updateWPQFull()
	}
	r.TMCEnq = c.eng.Now()
	ch.waker.Wake()
	return true
}

func (c *Controller) updateWPQFull() {
	full := false
	for _, ch := range c.chans {
		if ch.wrCount >= c.cfg.WPQCap {
			full = true
			break
		}
	}
	c.stats.WPQFull.Set(full)
}

// prepDelay computes the bank-side delay for accessing (bank, row) and
// updates row-outcome counters.
func (ch *channel) prepDelay(b *bank, row int64, ks *KindStats) sim.Time {
	t := ch.timing
	ks.Lines.Inc()
	switch {
	case b.openRow == row:
		ks.RowHits.Inc()
		return t.TCL
	case b.openRow == -1:
		ks.ACTs.Inc()
		return t.TRCD + t.TCL
	default:
		ks.ACTs.Inc()
		ks.PREConflict.Inc()
		return t.TRP + t.TRCD + t.TCL
	}
}

// pickIndex implements the FR-FCFS-style scan: the oldest request whose data
// can be ready by the time the channel frees wins; otherwise the earliest-
// ready request in the scan window.
func (ch *channel) pickIndex(q []*mem.Request) int {
	now := ch.ctl.eng.Now()
	t := ch.timing
	chanFree := ch.busyTill
	if chanFree < now {
		chanFree = now
	}
	window := len(q)
	if window > ch.ctl.cfg.SchedWindow {
		window = ch.ctl.cfg.SchedWindow
	}
	best, bestReady := -1, sim.Time(1<<62)
	for i := 0; i < window; i++ {
		coord := q[i].MapCoord(ch.ctl.mapper)
		b := &ch.banks[coord.Bank]
		start := b.readyAt
		if start < now {
			start = now
		}
		var delay sim.Time
		switch {
		case b.openRow == coord.Row:
			delay = t.TCL
		case b.openRow == -1:
			delay = t.TRCD + t.TCL
		default:
			delay = t.TRP + t.TRCD + t.TCL
		}
		ready := start + delay
		if ready <= chanFree {
			return i
		}
		if ready < bestReady {
			best, bestReady = i, ready
		}
	}
	return best
}

func (ch *channel) sampleBank(bankIdx int) {
	w := ch.ctl.cfg.BankSampleWindow
	if w <= 0 {
		return
	}
	ch.bankLoads[bankIdx]++
	ch.sampleCount++
	if ch.sampleCount < w {
		return
	}
	max, total := 0, 0
	for i, n := range ch.bankLoads {
		total += n
		if n > max {
			max = n
		}
		ch.bankLoads[i] = 0
	}
	ch.sampleCount = 0
	avg := float64(total) / float64(len(ch.bankLoads))
	if avg > 0 {
		ch.ctl.stats.BankDeviation.Add(float64(max) / avg)
	}
}

// desiredMode applies the drain policy with hysteresis: enter write mode
// when the WPQ crosses its high watermark or the read side is fully idle;
// leave write mode once drained to the low watermark (or empty) with reads
// waiting.
func (ch *channel) desiredMode() mem.Kind {
	cfg := &ch.ctl.cfg
	if ch.mode == mem.Read {
		now := ch.ctl.eng.Now()
		dwelled := now-ch.lastDrainEnd >= cfg.ReadDwellMin
		if ch.wrCount >= cfg.WPQHigh && dwelled {
			return mem.Write
		}
		if len(ch.wrWait) > 0 {
			// Opportunistic drain on a fully idle read side — but only for a
			// worthwhile batch, since the turnaround penalties this inflicts
			// on the next reads (the write head-of-line blocking of the §6
			// formula) are paid per drain, not per write.
			if dwelled && len(ch.rdWait) == 0 && ch.rdCount == 0 && ch.wrCount >= cfg.WPQOppEntry {
				return mem.Write
			}
			// Age-based drain: never park writes forever.
			if dwelled && now-ch.wrWait[0].TMCEnq >= cfg.MaxWriteAge {
				return mem.Write
			}
		}
		return mem.Read
	}
	if len(ch.rdWait) > 0 && (ch.drainIssued >= cfg.DrainBatch || len(ch.wrWait) == 0) {
		return mem.Read
	}
	return mem.Write
}

// kick runs the per-channel scheduler: choose mode, then issue requests
// while the pipeline window allows.
func (ch *channel) kick() {
	eng := ch.ctl.eng
	cfg := &ch.ctl.cfg
	t := ch.timing
	for {
		now := eng.Now()
		if want := ch.desiredMode(); want != ch.mode {
			ch.mode = want
			ch.ctl.stats.Switches.Inc()
			if ch.busyTill < now {
				ch.busyTill = now
			}
			if want == mem.Write {
				ch.busyTill += t.TRTW
				ch.drainIssued = 0
			} else {
				ch.busyTill += t.TWTR
				ch.lastDrainEnd = now
			}
		}
		var q *[]*mem.Request
		if ch.mode == mem.Read {
			q = &ch.rdWait
		} else {
			q = &ch.wrWait
		}
		if len(*q) == 0 {
			// No work in the current mode. The next enqueue or burst
			// completion re-kicks the scheduler; parked writes get an
			// age-based wake so they always drain.
			if ch.mode == mem.Read && len(ch.wrWait) > 0 {
				at := ch.wrWait[0].TMCEnq + cfg.MaxWriteAge
				if d := ch.lastDrainEnd + cfg.ReadDwellMin; d > at {
					at = d
				}
				ch.waker.WakeAt(at)
			}
			return
		}
		// Respect the pipeline window: don't commit the channel too far out.
		if ch.busyTill > now+cfg.PipelineAhead {
			ch.waker.WakeAt(ch.busyTill - cfg.PipelineAhead)
			return
		}
		idx := ch.pickIndex(*q)
		r := (*q)[idx]
		*q = append((*q)[:idx], (*q)[idx+1:]...)
		if ch.mode == mem.Write {
			ch.drainIssued++
		}
		ch.issue(r)
	}
}

func (ch *channel) issue(r *mem.Request) {
	eng := ch.ctl.eng
	now := eng.Now()
	t := ch.timing
	coord := r.MapCoord(ch.ctl.mapper)
	b := &ch.banks[coord.Bank]
	ks := ch.ctl.stats.kindStats(r.Source, r.Kind)
	start := b.readyAt
	if start < now {
		start = now
	}
	delay := ch.prepDelay(b, coord.Row, ks)
	dataReady := start + delay
	burstStart := dataReady
	if burstStart < ch.busyTill {
		burstStart = ch.busyTill
	}
	burstEnd := burstStart + t.TTrans
	ch.busyTill = burstEnd
	b.openRow = coord.Row
	// The bank is occupied for its PRE/ACT work plus one column-command slot
	// (tCCD ~ tTrans); the CAS latency itself pipelines, so row hits to an
	// open row stream at the burst rate.
	b.readyAt = start + (delay - t.TCL) + t.TTrans
	r.TIssue = now
	if r.Kind == mem.Read {
		ch.sampleBank(coord.Bank)
	}
	eng.AtFunc(burstEnd, ch.burstFn, r)
}

func (ch *channel) burstDoneEvent(arg any) { ch.burstDone(arg.(*mem.Request)) }

func (ch *channel) burstDone(r *mem.Request) {
	c := ch.ctl
	r.TBurst = c.eng.Now()
	switch r.Kind {
	case mem.Read:
		ch.rdCount--
		c.stats.RPQOcc.Add(-1)
		c.stats.ReadLat.Exit()
		if c.client != nil {
			c.client.ReadComplete(r)
		}
	case mem.Write:
		ch.wrCount--
		c.stats.WPQOcc.Add(-1)
		c.updateWPQFull()
		if c.client != nil {
			c.client.WPQSpaceFreed(ch.idx)
		}
	}
	ch.waker.Wake()
}

// channelState is the snapshot of one channel.
type channelState struct {
	mode         mem.Kind
	busyTill     sim.Time
	banks        []bank
	rdWait       mem.QueueState
	wrWait       mem.QueueState
	rdCount      int
	wrCount      int
	drainIssued  int
	lastDrainEnd sim.Time
	throttled    Timing
	isThrottled  bool // whether ch.timing pointed at the throttled copy
	bankLoads    []int
	sampleCount  int
}

// SaveState implements sim.Stateful.
func (c *Controller) SaveState() any {
	states := make([]channelState, len(c.chans))
	for i, ch := range c.chans {
		states[i] = channelState{
			mode:         ch.mode,
			busyTill:     ch.busyTill,
			banks:        append([]bank(nil), ch.banks...),
			rdWait:       mem.SaveQueue(ch.rdWait),
			wrWait:       mem.SaveQueue(ch.wrWait),
			rdCount:      ch.rdCount,
			wrCount:      ch.wrCount,
			drainIssued:  ch.drainIssued,
			lastDrainEnd: ch.lastDrainEnd,
			throttled:    ch.throttled,
			isThrottled:  ch.timing == &ch.throttled,
			bankLoads:    append([]int(nil), ch.bankLoads...),
			sampleCount:  ch.sampleCount,
		}
	}
	return states
}

// LoadState implements sim.Stateful.
func (c *Controller) LoadState(state any) {
	states := state.([]channelState)
	for i, ch := range c.chans {
		st := states[i]
		ch.mode, ch.busyTill = st.mode, st.busyTill
		copy(ch.banks, st.banks)
		ch.rdWait = st.rdWait.Restore(ch.rdWait)
		ch.wrWait = st.wrWait.Restore(ch.wrWait)
		ch.rdCount, ch.wrCount = st.rdCount, st.wrCount
		ch.drainIssued, ch.lastDrainEnd = st.drainIssued, st.lastDrainEnd
		ch.throttled = st.throttled
		if st.isThrottled {
			ch.timing = &ch.throttled
		} else {
			ch.timing = &c.cfg.Timing
		}
		copy(ch.bankLoads, st.bankLoads)
		ch.sampleCount = st.sampleCount
	}
}
