package dram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// testTiming uses round numbers so expected latencies are easy to compute:
// row hit = 15 (CL) + 3 (burst), activate adds 15, precharge adds 15.
func testTiming() Timing {
	return Timing{
		TTrans: 3 * sim.Nanosecond,
		TRCD:   15 * sim.Nanosecond,
		TRP:    15 * sim.Nanosecond,
		TCL:    15 * sim.Nanosecond,
		TWTR:   8 * sim.Nanosecond,
		TRTW:   6 * sim.Nanosecond,
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Timing = testTiming()
	return cfg
}

// singleChannelMapper avoids channel interleaving so bank/row math is direct.
func singleChannelMapper() *mem.Mapper {
	return mem.MustMapper(mem.MapperConfig{Channels: 1, Banks: 16, RowBytes: 8192, XORRowIntoBank: false})
}

type fakeClient struct {
	reads []*mem.Request
	freed int
}

func (f *fakeClient) ReadComplete(r *mem.Request) { f.reads = append(f.reads, r) }
func (f *fakeClient) WPQSpaceFreed(ch int)        { f.freed++ }

func newRead(id uint64, addr mem.Addr, src mem.Source) *mem.Request {
	return &mem.Request{ID: id, Addr: addr, Kind: mem.Read, Source: src}
}

func newWrite(id uint64, addr mem.Addr, src mem.Source) *mem.Request {
	return &mem.Request{ID: id, Addr: addr, Kind: mem.Write, Source: src}
}

func TestSingleReadColdBankLatency(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	c := New(eng, testConfig(), singleChannelMapper(), cl)
	r := newRead(1, 0, mem.C2M)
	eng.At(0, func() {
		if !c.TryEnqueue(r) {
			t.Fatalf("enqueue failed")
		}
	})
	eng.Run()
	// Cold bank: ACT (15) + CAS (15) + burst (3) = 33 ns.
	want := 33 * sim.Nanosecond
	if len(cl.reads) != 1 || r.TBurst != want {
		t.Fatalf("TBurst = %v, want %v (reads=%d)", r.TBurst, want, len(cl.reads))
	}
	st := c.Stats()
	if st.C2MRead.Lines.Count() != 1 || st.C2MRead.ACTs.Count() != 1 || st.C2MRead.RowHits.Count() != 0 {
		t.Fatalf("kind stats wrong: %+v", st.C2MRead)
	}
}

func TestRowHitLatency(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	c := New(eng, testConfig(), singleChannelMapper(), cl)
	r1 := newRead(1, 0, mem.C2M)
	r2 := newRead(2, 64, mem.C2M) // same row, next line
	eng.At(0, func() { c.TryEnqueue(r1) })
	eng.At(40*sim.Nanosecond, func() { c.TryEnqueue(r2) })
	eng.Run()
	// Row open: CAS (15) + burst (3) = 18 ns after enqueue.
	if got := r2.TBurst - r2.TMCEnq; got != 18*sim.Nanosecond {
		t.Fatalf("row-hit latency = %v, want 18ns", got)
	}
	if c.Stats().C2MRead.RowHits.Count() != 1 {
		t.Fatalf("row hit not counted")
	}
}

func TestRowConflictLatency(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	m := singleChannelMapper()
	c := New(eng, testConfig(), m, cl)
	// Two addresses in the same bank, different rows: row stride with no XOR
	// is rowLines * banks * 64 bytes.
	conflict := mem.Addr(m.RowLines()*m.Banks()) * mem.LineSize
	r1 := newRead(1, 0, mem.C2M)
	r2 := newRead(2, conflict, mem.C2M)
	eng.At(0, func() { c.TryEnqueue(r1) })
	eng.At(40*sim.Nanosecond, func() { c.TryEnqueue(r2) })
	eng.Run()
	// Conflict: PRE (15) + ACT (15) + CAS (15) + burst (3) = 48 ns.
	if got := r2.TBurst - r2.TMCEnq; got != 48*sim.Nanosecond {
		t.Fatalf("conflict latency = %v, want 48ns", got)
	}
	st := c.Stats()
	if st.C2MRead.PREConflict.Count() != 1 {
		t.Fatalf("conflict precharge not counted")
	}
	if got := st.C2MRead.RowMissRatio(); got != 1.0 {
		t.Fatalf("row miss ratio = %v, want 1", got)
	}
}

func TestSequentialReadsSaturateChannel(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	c := New(eng, testConfig(), singleChannelMapper(), cl)
	const n = 64 // one row's worth: all hits after the first
	issued := 0
	var enqueue func()
	enqueue = func() {
		for issued < n {
			r := newRead(uint64(issued), mem.Addr(issued)*mem.LineSize, mem.C2M)
			if !c.TryEnqueue(r) {
				eng.After(10*sim.Nanosecond, enqueue)
				return
			}
			issued++
		}
	}
	eng.At(0, enqueue)
	eng.Run()
	if len(cl.reads) != n {
		t.Fatalf("completed %d of %d", len(cl.reads), n)
	}
	last := cl.reads[len(cl.reads)-1]
	// Steady state: one burst per TTrans. Total ~= ACT+CAS + n*TTrans.
	lower := sim.Time(n) * 3 * sim.Nanosecond
	upper := lower + 40*sim.Nanosecond
	if last.TBurst < lower || last.TBurst > upper {
		t.Fatalf("last burst at %v, want in [%v, %v]", last.TBurst, lower, upper)
	}
}

func TestRPQCapacity(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.RPQCap = 4
	c := New(eng, cfg, singleChannelMapper(), &fakeClient{})
	accepted := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			if c.TryEnqueue(newRead(uint64(i), mem.Addr(i)*mem.LineSize, mem.C2M)) {
				accepted++
			}
		}
	})
	eng.RunUntil(0)
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4", accepted)
	}
}

func TestWPQCapacityAndFullTimer(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.WPQCap = 4
	cfg.WPQHigh = 3
	cfg.DrainBatch = 2
	cl := &fakeClient{}
	c := New(eng, cfg, singleChannelMapper(), cl)
	accepted := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			if c.TryEnqueue(newWrite(uint64(i), mem.Addr(i)*mem.LineSize, mem.C2M)) {
				accepted++
			}
		}
		if !c.Stats().WPQFull.On() {
			t.Errorf("WPQ full condition not set")
		}
	})
	eng.Run()
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4", accepted)
	}
	if cl.freed != 4 {
		t.Fatalf("freed %d slots, want 4", cl.freed)
	}
	if c.Stats().WPQFull.On() {
		t.Fatalf("WPQ still marked full after drain")
	}
	if c.Stats().WPQFull.Frac() <= 0 {
		t.Fatalf("WPQ full fraction should be positive")
	}
}

func TestWriteDrainSwitchesModes(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.WPQHigh = 8
	cfg.DrainBatch = 4
	cl := &fakeClient{}
	c := New(eng, cfg, singleChannelMapper(), cl)
	// Continuous reads keep the channel in read mode until the WPQ crosses
	// its high watermark.
	acceptedReads, acceptedWrites := 0, 0
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(i)*3*sim.Nanosecond, func() {
			if c.TryEnqueue(newRead(uint64(i), mem.Addr(i)*mem.LineSize, mem.C2M)) {
				acceptedReads++
			}
		})
	}
	for i := 0; i < 20; i++ {
		i := i
		eng.At(sim.Time(i)*10*sim.Nanosecond, func() {
			if c.TryEnqueue(newWrite(uint64(1000+i), mem.Addr(1<<20+i*mem.LineSize), mem.P2M)) {
				acceptedWrites++
			}
		})
	}
	eng.Run()
	st := c.Stats()
	if st.Switches.Count() < 2 {
		t.Fatalf("switches = %d, want >= 2 (one drain round trip)", st.Switches.Count())
	}
	if cl.freed != acceptedWrites || len(cl.reads) != acceptedReads {
		t.Fatalf("freed=%d/%d reads=%d/%d", cl.freed, acceptedWrites, len(cl.reads), acceptedReads)
	}
	if acceptedWrites < 15 || acceptedReads < 100 {
		t.Fatalf("controller rejected too much: reads=%d writes=%d", acceptedReads, acceptedWrites)
	}
	if st.P2MWrite.Lines.Count() != uint64(acceptedWrites) {
		t.Fatalf("P2M write lines = %d", st.P2MWrite.Lines.Count())
	}
}

func TestPureWriteWorkloadDrains(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	c := New(eng, testConfig(), singleChannelMapper(), cl)
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			c.TryEnqueue(newWrite(uint64(i), mem.Addr(i)*mem.LineSize, mem.P2M))
		}
	})
	eng.Run()
	if cl.freed != 10 {
		t.Fatalf("pure write workload drained %d of 10", cl.freed)
	}
}

func TestReadLatencyLittlesLaw(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	c := New(eng, testConfig(), singleChannelMapper(), cl)
	// Widely spaced single reads: latency = ACT+CAS+burst = 33ns each for
	// fresh banks; using the same row keeps it 18ns after the first.
	for i := 0; i < 50; i++ {
		i := i
		eng.At(sim.Time(i)*100*sim.Nanosecond, func() {
			c.TryEnqueue(newRead(uint64(i), mem.Addr(i)*mem.LineSize, mem.C2M))
		})
	}
	eng.Run()
	got := c.Stats().ReadLat.AvgNanos()
	// First read 33ns, rest 18ns => mean = (33 + 49*18)/50 = 18.3
	if math.Abs(got-18.3) > 0.5 {
		t.Fatalf("ReadLat = %v, want ~18.3", got)
	}
}

func TestBankDeviationSampling(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.BankSampleWindow = 100
	m := singleChannelMapper()
	c := New(eng, cfg, m, &fakeClient{})
	rowStride := mem.Addr(m.RowLines()) * mem.LineSize // next bank
	issued := 0
	var enqueue func()
	enqueue = func() {
		for issued < 400 {
			// Skewed load: 75% of requests to bank 0, rest spread.
			var a mem.Addr
			if issued%4 != 0 {
				a = mem.Addr(issued%64) * mem.LineSize
			} else {
				a = rowStride * mem.Addr(1+issued%8)
			}
			if !c.TryEnqueue(newRead(uint64(issued), a, mem.C2M)) {
				eng.After(30*sim.Nanosecond, enqueue)
				return
			}
			issued++
		}
	}
	eng.At(0, enqueue)
	eng.Run()
	s := c.Stats().BankDeviation
	if s.Len() != 4 {
		t.Fatalf("samples = %d, want 4", s.Len())
	}
	// 75 of 100 on one bank of 16 => deviation = 75/(100/16) = 12.
	if s.Mean() < 8 {
		t.Fatalf("deviation mean = %v, want >= 8 for a skewed load", s.Mean())
	}
}

func TestStatsReset(t *testing.T) {
	eng := sim.New()
	c := New(eng, testConfig(), singleChannelMapper(), &fakeClient{})
	eng.At(0, func() { c.TryEnqueue(newRead(1, 0, mem.C2M)) })
	eng.Run()
	st := c.Stats()
	if st.LinesRead() != 1 {
		t.Fatalf("LinesRead = %d", st.LinesRead())
	}
	st.Reset()
	if st.LinesRead() != 0 || st.Switches.Count() != 0 || st.BankDeviation.Len() != 0 {
		t.Fatalf("reset did not clear counters")
	}
}

func TestChannelRouting(t *testing.T) {
	eng := sim.New()
	m := mem.MustMapper(mem.DefaultMapperConfig())
	c := New(eng, testConfig(), m, &fakeClient{})
	if c.Channels() != 2 {
		t.Fatalf("Channels = %d", c.Channels())
	}
	if c.ChannelOf(0) == c.ChannelOf(64) {
		t.Fatalf("adjacent lines should interleave channels")
	}
	if !c.WPQHasSpace(0) {
		t.Fatalf("fresh controller should have WPQ space")
	}
}

// Property: every enqueued request completes exactly once and queues drain
// to zero occupancy, for arbitrary interleavings of reads and writes.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		eng := sim.New()
		cl := &fakeClient{}
		c := New(eng, testConfig(), mem.MustMapper(mem.DefaultMapperConfig()), cl)
		enqueued := 0
		writes := 0
		eng.At(0, func() {
			for i, op := range ops {
				addr := mem.Addr(op) * mem.LineSize
				var r *mem.Request
				if op%3 == 0 {
					r = newWrite(uint64(i), addr, mem.Source(op%2))
					if c.TryEnqueue(r) {
						enqueued++
						writes++
					}
				} else {
					r = newRead(uint64(i), addr, mem.Source(op%2))
					if c.TryEnqueue(r) {
						enqueued++
					}
				}
			}
		})
		eng.Run()
		completed := len(cl.reads) + cl.freed
		if completed != enqueued {
			return false
		}
		st := c.Stats()
		return st.RPQOcc.Level() == 0 && st.WPQOcc.Level() == 0 &&
			st.LinesRead()+st.LinesWritten() == uint64(enqueued)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FR-FCFS may serve row hits ahead of older conflicting requests, but among
// requests to the *same row* arrival order must be preserved, and everything
// must complete.
func TestSameRowFCFSProperty(t *testing.T) {
	eng := sim.New()
	cl := &fakeClient{}
	m := singleChannelMapper()
	c := New(eng, testConfig(), m, cl)
	// All requests to bank 0, alternating rows (even IDs row 0, odd row 1).
	rowStride := mem.Addr(m.RowLines()*m.Banks()) * mem.LineSize
	eng.At(0, func() {
		for i := 0; i < 20; i++ {
			c.TryEnqueue(newRead(uint64(i), rowStride*mem.Addr(i%2)+mem.Addr(i)*mem.LineSize, mem.C2M))
		}
	})
	eng.Run()
	if len(cl.reads) != 20 {
		t.Fatalf("completed %d of 20", len(cl.reads))
	}
	var lastEven, lastOdd int64 = -1, -1
	for _, r := range cl.reads {
		id := int64(r.ID)
		if id%2 == 0 {
			if id < lastEven {
				t.Fatalf("same-row order violated for even ids")
			}
			lastEven = id
		} else {
			if id < lastOdd {
				t.Fatalf("same-row order violated for odd ids")
			}
			lastOdd = id
		}
	}
}

func TestTimingPresets(t *testing.T) {
	cas := DDR4_2933()
	ice := DDR4_3200()
	// Per-channel bandwidth = 64B / tTrans.
	bwCas := 64.0 / cas.TTrans.Seconds()
	bwIce := 64.0 / ice.TTrans.Seconds()
	if math.Abs(bwCas-23.4e9) > 0.2e9 {
		t.Fatalf("2933 channel bw = %v", bwCas)
	}
	if math.Abs(bwIce-25.6e9) > 0.2e9 {
		t.Fatalf("3200 channel bw = %v", bwIce)
	}
	// tProc = tRP + tRCD + tCL ~ 45ns for the Cascade Lake part.
	if got := cas.TRP + cas.TRCD + cas.TCL; got != 45*sim.Nanosecond {
		t.Fatalf("tProc = %v", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []Config{
		{Timing: testTiming(), RPQCap: 0, WPQCap: 4, WPQHigh: 3, DrainBatch: 1},
		{Timing: testTiming(), RPQCap: 4, WPQCap: 4, WPQHigh: 2, DrainBatch: 0},
		{Timing: testTiming(), RPQCap: 4, WPQCap: 4, WPQHigh: 8, DrainBatch: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(sim.New(), cfg, singleChannelMapper(), nil)
		}()
	}
}

func TestWPQReservationForP2M(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.WPQCap = 4
	cfg.WPQHigh = 4
	cfg.DrainBatch = 2
	cfg.WPQReserveP2M = 2
	c := New(eng, cfg, singleChannelMapper(), &fakeClient{})
	c2mAccepted, p2mAccepted := 0, 0
	eng.At(0, func() {
		// C2M writes may only use the unreserved half.
		for i := 0; i < 4; i++ {
			if c.TryEnqueue(newWrite(uint64(i), mem.Addr(i)*mem.LineSize, mem.C2M)) {
				c2mAccepted++
			}
		}
		// P2M writes can still use the reserved slots.
		for i := 0; i < 4; i++ {
			if c.TryEnqueue(newWrite(uint64(10+i), mem.Addr((10+i))*mem.LineSize, mem.P2M)) {
				p2mAccepted++
			}
		}
	})
	eng.RunUntil(0)
	if c2mAccepted != 2 {
		t.Fatalf("C2M writes accepted %d, want 2 (reservation)", c2mAccepted)
	}
	if p2mAccepted != 2 {
		t.Fatalf("P2M writes accepted %d, want 2 (remaining capacity)", p2mAccepted)
	}
}

func TestWPQReservationValidation(t *testing.T) {
	cfg := testConfig()
	cfg.WPQReserveP2M = cfg.WPQCap
	defer func() {
		if recover() == nil {
			t.Fatalf("reservation >= capacity did not panic")
		}
	}()
	New(sim.New(), cfg, singleChannelMapper(), nil)
}
