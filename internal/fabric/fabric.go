// Package fabric instantiates N host networks on one shared event engine
// and connects their NICs through a ToR switch model — the rack-scale view
// the paper's cross-host phenomena (PFC pause propagation, incast whose
// bottleneck is the receiver's IIO/DRAM credits rather than the network)
// require. One engine means one clock and one (time, seq) order, so fabric
// runs inherit the single-host determinism guarantees: bit-identical at any
// sweep parallelism, byte-identical with the auditor on or off.
//
// The fabric shares one auditor across all hosts (the engine holds a single
// event-cadence hook) with per-host domain prefixes ("h2/iio"), and one
// fault injector attached to the designated fault host — so a
// pfc_pause_storm on one port propagates, observably, into pause time on a
// sender three hops of queueing away.
package fabric

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/sim"
)

// NodeID addresses a host Al-Fares style — 10.pod.edge.host with 1-based
// octets — so a single-ToR fabric (pod 0, edge 0) extends to a fat-tree
// without re-addressing. Host i of a rack is 10.1.1.(i+1).
type NodeID struct {
	Pod, Edge, Host int
}

// String renders the fat-tree address.
func (n NodeID) String() string {
	return fmt.Sprintf("10.%d.%d.%d", n.Pod+1, n.Edge+1, n.Host+1)
}

// Config describes a fabric.
type Config struct {
	// Hosts is the number of hosts on the ToR (>= 2).
	Hosts int
	// Host configures every host identically (presets, audit knobs inside
	// it are overridden by the fabric-level Audit below).
	Host host.Config
	// NIC configures every host's fabric attachment.
	NIC NICConfig
	// Switch configures the ToR; Ports defaults to Hosts.
	Switch SwitchConfig
	// Audit configures the single fabric-wide auditor.
	Audit audit.Config
	// Faults is the schedule applied to host FaultHost (its DRAM/IIO) and
	// that host's NIC/link. Empty means every host is healthy.
	Faults fault.Schedule
	// FaultHost selects which host the schedule targets.
	FaultHost int
}

// DefaultConfig returns a Cascade Lake rack of `hosts` hosts on a 100 Gbps
// ToR.
func DefaultConfig(hosts int) Config {
	return Config{
		Hosts:  hosts,
		Host:   host.CascadeLake(),
		NIC:    DefaultNICConfig(),
		Switch: DefaultSwitchConfig(hosts),
	}
}

// Fabric is an assembled rack: N hosts, their NICs, and the ToR, all on one
// engine.
type Fabric struct {
	Eng     *sim.Engine
	Cfg     Config
	Auditor *audit.Auditor
	Faults  *fault.Injector
	Switch  *Switch
	Hosts   []*host.Host
	NICs    []*NIC
}

// New assembles a fabric. The existing single-host layers are reused
// unchanged: each host is built by host.NewOn on the shared engine, the
// shared auditor namespaces each host's invariant domains, and the fault
// injector attaches to the fault host's components plus its NIC (as both
// fault.NIC and fault.Link) before Start schedules the windows.
func New(cfg Config) *Fabric {
	if cfg.Hosts < 2 {
		panic("fabric: need at least 2 hosts")
	}
	if cfg.Switch.Ports == 0 {
		cfg.Switch.Ports = cfg.Hosts
	}
	if cfg.Switch.Ports < cfg.Hosts {
		panic("fabric: switch has fewer ports than hosts")
	}
	fh := cfg.FaultHost
	if fh < 0 || fh >= cfg.Hosts {
		fh = 0
	}
	cfg.FaultHost = fh

	eng := sim.New()
	aud := audit.New(eng, cfg.Audit)
	inj := fault.NewInjector(eng, cfg.Faults)
	f := &Fabric{Eng: eng, Cfg: cfg, Auditor: aud, Faults: inj}
	f.Switch = NewSwitch(eng, cfg.Switch, aud)
	for i := 0; i < cfg.Hosts; i++ {
		hinj := (*fault.Injector)(nil)
		if i == fh {
			hinj = inj
		}
		hcfg := cfg.Host
		hcfg.Name = fmt.Sprintf("%s/h%d", hcfg.Name, i)
		h := host.NewOn(eng, aud, hinj, fmt.Sprintf("h%d", i), hcfg)
		base := h.Region(cfg.NIC.BufBytes)
		nic := NewNIC(eng, cfg.NIC, h.IIO, f.Switch, i, NodeID{Host: i}, base, aud)
		f.Switch.attach(i, nic)
		if i == fh {
			inj.AttachNIC(nic)
			inj.AttachLink(nic)
		}
		f.Hosts = append(f.Hosts, h)
		f.NICs = append(f.NICs, nic)
	}
	if aud.Enabled() {
		aud.Check("fabric", "line_conservation", f.conservation)
	}
	inj.Start()
	return f
}

// AddFlow offers a stream from host src to host dst at `rate` (fraction of
// NIC line rate in (0, 1]).
func (f *Fabric) AddFlow(src, dst int, rate float64) {
	if src == dst {
		panic("fabric: flow source equals destination")
	}
	f.NICs[src].AddFlow(dst, rate)
}

// AddIncast points hosts 1..senders at host recv, each at full line rate —
// the M-to-1 pattern of the incast experiment.
func (f *Fabric) AddIncast(recv, senders int) {
	added := 0
	for i := 0; added < senders; i++ {
		if i == recv {
			continue
		}
		f.AddFlow(i, recv, 1)
		added++
	}
}

// conservation is the fabric-wide end-to-end invariant: every line ever
// emitted is, at any event boundary, in exactly one place — on a wire, in a
// switch or NIC queue, in the forwarding pipeline, in flight inside a host,
// delivered, or (never, under working PFC) dropped.
func (f *Fabric) conservation() (bool, string) {
	var sent, acct int64
	for _, n := range f.NICs {
		sent += n.sentTotal
		acct += n.queued() + n.deliveredTotal + n.dropTotal
	}
	acct += f.Switch.queued() + f.Switch.dropTotal
	if sent != acct {
		return false, fmt.Sprintf("emitted %d lines but account for %d", sent, acct)
	}
	return true, ""
}

// Conservation exposes the invariant for tests (ok, detail).
func (f *Fabric) Conservation() (bool, string) { return f.conservation() }

// InFlight reports lines currently between a sender's TX and delivery.
func (f *Fabric) InFlight() int64 {
	var q int64
	for _, n := range f.NICs {
		q += n.queued()
	}
	return q + f.Switch.queued()
}

// Snapshot captures the whole rack's simulation state as a deep copy: the
// shared engine, every host's domains, all NICs, and the ToR.
func (f *Fabric) Snapshot() *sim.Snapshot { return f.Eng.Snapshot() }

// Restore rewinds the rack to a snapshot taken on this same fabric.
func (f *Fabric) Restore(s *sim.Snapshot) { f.Eng.Restore(s) }

// ResetStats starts a fresh measurement window on every probe in the rack.
func (f *Fabric) ResetStats() {
	for _, h := range f.Hosts {
		h.ResetStats()
	}
	for _, n := range f.NICs {
		n.ResetStats()
	}
	f.Switch.ResetStats()
}

// Run warms the rack up for `warmup`, resets all probes, then runs the
// measurement window and evaluates end-of-window invariants.
func (f *Fabric) Run(warmup, window sim.Time) {
	f.Eng.RunUntil(f.Eng.Now() + warmup)
	f.ResetStats()
	f.Eng.RunUntil(f.Eng.Now() + window)
	f.Auditor.CheckEnd()
}
