package fabric

import "repro/internal/sim"

// Fabric snapshot support. Flows and ports are long-lived objects reachable
// from their NIC/Switch, so their mutable fields ride along in the parent's
// state instead of implementing sim.Stateful themselves — the engine's
// live-arg walk only needs Stateful on pooled arguments, and the fabric
// pools nothing.

// ringState is a value copy of a ring's occupied region semantics: the whole
// backing buffer plus cursor. Buffers are fixed-capacity, so restoring into
// the existing ring never reallocates.
type ringState struct {
	buf  []int32
	head int
	n    int
}

func saveRing(r *ring) ringState {
	return ringState{buf: append([]int32(nil), r.buf...), head: r.head, n: r.n}
}

func (s ringState) restore(r *ring) {
	copy(r.buf, s.buf)
	r.head, r.n = s.head, s.n
}

// nicState is the snapshot of a NIC, including each flow's offer flag.
type nicState struct {
	flowPending []bool
	txFreeAt    sim.Time
	txRot       int
	txPaused    bool
	linkDown    bool
	lineMult    float64
	wireTx      int64

	rxQ      ringState
	rxXoff   bool
	storm    bool
	waiting  bool
	wireRx   int64
	inHost   int64
	nextLine int64

	sentTotal, deliveredTotal, dropTotal int64
}

// SaveState implements sim.Stateful.
func (n *NIC) SaveState() any {
	st := nicState{
		flowPending:    make([]bool, len(n.flows)),
		txFreeAt:       n.txFreeAt,
		txRot:          n.txRot,
		txPaused:       n.txPaused,
		linkDown:       n.linkDown,
		lineMult:       n.lineMult,
		wireTx:         n.wireTx,
		rxQ:            saveRing(&n.rxQ),
		rxXoff:         n.rxXoff,
		storm:          n.storm,
		waiting:        n.waiting,
		wireRx:         n.wireRx,
		inHost:         n.inHost,
		nextLine:       n.nextLine,
		sentTotal:      n.sentTotal,
		deliveredTotal: n.deliveredTotal,
		dropTotal:      n.dropTotal,
	}
	for i, f := range n.flows {
		st.flowPending[i] = f.pending
	}
	return st
}

// LoadState implements sim.Stateful. Flows added after the snapshot keep
// their current offer flag untouched; snapshot/restore on a fixed topology
// (the supported mode) never hits that case.
func (n *NIC) LoadState(state any) {
	st := state.(nicState)
	for i, f := range n.flows {
		if i < len(st.flowPending) {
			f.pending = st.flowPending[i]
		}
	}
	n.txFreeAt, n.txRot, n.txPaused, n.linkDown = st.txFreeAt, st.txRot, st.txPaused, st.linkDown
	n.lineMult, n.wireTx = st.lineMult, st.wireTx
	st.rxQ.restore(&n.rxQ)
	n.rxXoff, n.storm, n.waiting = st.rxXoff, st.storm, st.waiting
	n.wireRx, n.inHost, n.nextLine = st.wireRx, st.inHost, st.nextLine
	n.sentTotal, n.deliveredTotal, n.dropTotal = st.sentTotal, st.deliveredTotal, st.dropTotal
}

// portState is the snapshot of one switch port.
type portState struct {
	in, out   ringState
	fwdNextAt sim.Time
	fwdArmed  bool
	hol       bool
	reserved  int
	egrBusy   bool
	paused    bool
	down      bool
	txPause   bool
}

// switchState is the snapshot of the ToR.
type switchState struct {
	ports       []portState
	holRot      int
	fwdInFlight int64
	dropTotal   int64
}

// SaveState implements sim.Stateful.
func (s *Switch) SaveState() any {
	st := switchState{
		ports:       make([]portState, len(s.ports)),
		holRot:      s.holRot,
		fwdInFlight: s.fwdInFlight,
		dropTotal:   s.dropTotal,
	}
	for i, p := range s.ports {
		st.ports[i] = portState{
			in:        saveRing(&p.in),
			out:       saveRing(&p.out),
			fwdNextAt: p.fwdNextAt,
			fwdArmed:  p.fwdArmed,
			hol:       p.hol,
			reserved:  p.reserved,
			egrBusy:   p.egrBusy,
			paused:    p.paused,
			down:      p.down,
			txPause:   p.txPause,
		}
	}
	return st
}

// LoadState implements sim.Stateful.
func (s *Switch) LoadState(state any) {
	st := state.(switchState)
	for i, p := range s.ports {
		ps := st.ports[i]
		ps.in.restore(&p.in)
		ps.out.restore(&p.out)
		p.fwdNextAt, p.fwdArmed, p.hol = ps.fwdNextAt, ps.fwdArmed, ps.hol
		p.reserved, p.egrBusy, p.paused, p.down, p.txPause = ps.reserved, ps.egrBusy, ps.paused, ps.down, ps.txPause
	}
	s.holRot, s.fwdInFlight, s.dropTotal = st.holRot, st.fwdInFlight, st.dropTotal
}
