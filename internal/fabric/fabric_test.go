package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// strictAudit evaluates every invariant after every event and panics on the
// first violation — the harshest setting, viable only at test windows.
func strictAudit() audit.Config {
	return audit.Config{Enabled: true, Every: 1, FailFast: true}
}

// testAudit is the default-cadence auditor used by the longer tests.
func testAudit() audit.Config {
	return audit.Config{Enabled: true, FailFast: true}
}

func TestNodeIDString(t *testing.T) {
	cases := []struct {
		id   NodeID
		want string
	}{
		{NodeID{}, "10.1.1.1"},
		{NodeID{Host: 3}, "10.1.1.4"},
		{NodeID{Pod: 2, Edge: 1, Host: 0}, "10.3.2.1"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.id, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("one host", func() { New(DefaultConfig(1)) })
	mustPanic("fewer ports than hosts", func() {
		cfg := DefaultConfig(4)
		cfg.Switch.Ports = 2
		New(cfg)
	})
	mustPanic("self flow", func() { New(DefaultConfig(2)).AddFlow(1, 1, 1) })
	mustPanic("bad rate", func() { New(DefaultConfig(2)).AddFlow(0, 1, 1.5) })

	// Out-of-range FaultHost clamps rather than panics (specs normalize it).
	cfg := DefaultConfig(2)
	cfg.FaultHost = 99
	if f := New(cfg); f.Cfg.FaultHost != 0 {
		t.Errorf("FaultHost = %d, want clamped to 0", f.Cfg.FaultHost)
	}
}

// TestConservationQuick is the line-conservation property over random
// fabrics: any rack shape, any incast degree, any flow matrix — with PFC on,
// every line ever emitted is accounted for at the end (none dropped, none
// duplicated), end to end through the switch. The strict auditor re-checks
// the same invariant (plus every queue bound and PFC hysteresis state)
// between every pair of events.
func TestConservationQuick(t *testing.T) {
	maxCount := 10
	if testing.Short() {
		maxCount = 4
	}
	prop := func(h, d, pat uint8) bool {
		hosts := 2 + int(h)%4 // 2..5
		degree := 1 + int(d)%(hosts-1)
		cfg := DefaultConfig(hosts)
		cfg.Audit = strictAudit()
		f := New(cfg)
		if pat%2 == 0 {
			f.AddIncast(0, degree)
		} else {
			// A random-ish flow matrix derived from pat: every host sends to
			// its successors with alternating sub-line rates.
			rates := []float64{1, 0.5, 0.25}
			k := int(pat)
			for src := 0; src < hosts; src++ {
				for dst := 0; dst < hosts; dst++ {
					if src == dst || (src+dst+k)%3 == 0 {
						continue
					}
					f.AddFlow(src, dst, rates[(src+dst+k)%len(rates)])
				}
			}
		}
		f.Run(1*sim.Microsecond, 3*sim.Microsecond)
		if ok, detail := f.Conservation(); !ok {
			t.Logf("hosts=%d degree=%d pat=%d: %s", hosts, degree, pat, detail)
			return false
		}
		for i, n := range f.NICs {
			if n.dropTotal != 0 {
				t.Logf("hosts=%d degree=%d pat=%d: NIC %d dropped %d lines", hosts, degree, pat, i, n.dropTotal)
				return false
			}
		}
		if f.Switch.dropTotal != 0 {
			t.Logf("hosts=%d degree=%d pat=%d: switch dropped %d lines", hosts, degree, pat, f.Switch.dropTotal)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// signature captures the observable state of a fabric as plain integers, for
// bit-identity comparisons.
func signature(f *Fabric) []int64 {
	var sig []int64
	for _, n := range f.NICs {
		sig = append(sig, n.sentTotal, n.deliveredTotal, n.dropTotal, n.queued())
	}
	sig = append(sig, f.Switch.queued(), f.Switch.dropTotal, int64(f.Eng.Now()))
	return sig
}

func eqSig(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeterminismAuditOnOff pins that the auditor observes without
// perturbing: the same fabric run lands on identical totals with auditing
// at the strictest cadence, the default cadence, and off.
func TestDeterminismAuditOnOff(t *testing.T) {
	run := func(ac audit.Config) []int64 {
		cfg := DefaultConfig(4)
		cfg.Audit = ac
		f := New(cfg)
		f.AddIncast(0, 3)
		f.Hosts[0].AddCore(workload.NewSeqReadWrite(f.Hosts[0].Region(1<<30), 1<<30))
		f.Run(2*sim.Microsecond, 5*sim.Microsecond)
		return signature(f)
	}
	off := run(audit.Config{})
	def := run(testAudit())
	strict := run(strictAudit())
	if !eqSig(off, def) || !eqSig(off, strict) {
		t.Fatalf("audit changed the simulation\noff:    %v\ndefault:%v\nstrict: %v", off, def, strict)
	}
}

// TestDeterminismRepeatedRuns pins run-to-run bit-identity of a fabric.
func TestDeterminismRepeatedRuns(t *testing.T) {
	run := func() []int64 {
		cfg := DefaultConfig(3)
		cfg.Audit = testAudit()
		f := New(cfg)
		f.AddIncast(0, 2)
		f.Run(2*sim.Microsecond, 5*sim.Microsecond)
		return signature(f)
	}
	a, b := run(), run()
	if !eqSig(a, b) {
		t.Fatalf("two identical fabric runs differ\na: %v\nb: %v", a, b)
	}
}

// TestEgressFairness pins the switch's round-robin egress-slot arbitration:
// under a symmetric 3:1 incast with an unloaded receiver, the three senders
// must share the contended egress port near-equally. (A fixed kick order
// here degenerates to strict priority: one sender runs at line rate while
// the others sit permanently paused.)
func TestEgressFairness(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Audit = testAudit()
	f := New(cfg)
	f.AddIncast(0, 3)
	f.Run(10*sim.Microsecond, 40*sim.Microsecond)
	lo, hi := int64(1<<62), int64(0)
	for _, n := range f.NICs[1:] {
		if n.sentTotal < lo {
			lo = n.sentTotal
		}
		if n.sentTotal > hi {
			hi = n.sentTotal
		}
	}
	if lo == 0 || float64(hi-lo)/float64(hi) > 0.05 {
		for i, n := range f.NICs[1:] {
			t.Logf("sender %d: sent=%d pause=%.3f", i+1, n.sentTotal, n.TxPauseFrac.Frac())
		}
		t.Fatalf("unfair egress arbitration: sender totals range [%d, %d]", lo, hi)
	}
}

// TestIncastReceiverBottleneck is the acceptance scenario: one sender
// streams at line rate to a receiver whose host network — IIO/DRAM credits
// under colocated C2M read+write cores, not the ToR (there is no port
// contention at 1:1) — is the narrowest element. The receiver's NIC must
// initiate PFC pause, and that pause must propagate through the switch and
// measurably throttle the sender on the other host.
func TestIncastReceiverBottleneck(t *testing.T) {
	window := 80 * sim.Microsecond
	if testing.Short() {
		window = 50 * sim.Microsecond
	}
	build := func(recvCores int) *Fabric {
		cfg := DefaultConfig(4)
		cfg.Audit = testAudit()
		f := New(cfg)
		f.AddFlow(1, 0, 1)
		for i := 0; i < recvCores; i++ {
			f.Hosts[0].AddCore(workload.NewSeqReadWrite(f.Hosts[0].Region(1<<30), 1<<30))
		}
		f.Run(20*sim.Microsecond, window)
		return f
	}
	loaded := build(4)
	idle := build(0)

	recv, snd := loaded.NICs[0], loaded.NICs[1]
	if got := recv.RxPauseFrac.Frac(); got <= 0.05 {
		t.Errorf("receiver PFC pause frac = %.3f, want > 0.05 (host network should backpressure)", got)
	}
	if got := snd.TxPauseFrac.Frac(); got <= 0.01 {
		t.Errorf("sender TX pause frac = %.3f, want > 0.01 (receiver pause should propagate host->switch->host)", got)
	}
	loadedBW, idleBW := recv.RxBytesPerSec(), idle.NICs[0].RxBytesPerSec()
	if loadedBW >= idleBW {
		t.Errorf("loaded receiver delivered %.2f GB/s >= idle %.2f GB/s; colocated cores should degrade delivery",
			loadedBW/1e9, idleBW/1e9)
	}
	if idle.NICs[0].RxPauseFrac.Frac() != 0 {
		t.Errorf("idle receiver paused %.3f of the window; an unloaded host should keep up with one flow",
			idle.NICs[0].RxPauseFrac.Frac())
	}
	for _, f := range []*Fabric{loaded, idle} {
		if ok, detail := f.Conservation(); !ok {
			t.Errorf("conservation: %s", detail)
		}
	}
}

// faultHostFor picks the host whose fault placement is observable: faults on
// the receive path (DRAM, IIO, pause storms) go to the receiver; faults on
// the transmit path (link flap, lane degrade) go to a sender.
func faultHostFor(k fault.Kind) int {
	switch k {
	case fault.LinkFlap, fault.LaneDegrade:
		return 1
	default:
		return 0
	}
}

// TestFaultKindsFabric applies every fault kind to one host of a 4-host
// incast fabric and pins the healthy-twin contract: the faulted run is
// bit-identical to the healthy run at every sample strictly before the
// fault window opens, and measurably different after.
func TestFaultKindsFabric(t *testing.T) {
	const (
		startNs = 25_000
		durNs   = 15_000
		totalNs = 50_000
		stepNs  = 5_000
	)
	for _, k := range fault.Kinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			t.Parallel()
			sample := func(sched fault.Schedule) [][]int64 {
				cfg := DefaultConfig(4)
				cfg.Audit = testAudit()
				cfg.Faults = sched
				cfg.FaultHost = faultHostFor(k)
				f := New(cfg)
				f.AddIncast(0, 3)
				for i := 0; i < 4; i++ {
					f.Hosts[0].AddCore(workload.NewSeqReadWrite(f.Hosts[0].Region(1<<30), 1<<30))
				}
				var out [][]int64
				for ns := int64(stepNs); ns <= totalNs; ns += stepNs {
					f.Eng.RunUntil(sim.Time(ns) * sim.Nanosecond)
					out = append(out, signature(f))
				}
				f.Auditor.CheckEnd()
				return out
			}
			healthy := sample(nil)
			faulted := sample(fault.Schedule{{Kind: k, StartNs: startNs, DurationNs: durNs}})
			diverged := false
			for i := range healthy {
				ns := int64(i+1) * stepNs
				same := eqSig(healthy[i], faulted[i])
				if ns < startNs && !same {
					t.Errorf("t=%dns (before fault at %dns): faulted run already differs\nhealthy: %v\nfaulted: %v",
						ns, startNs, healthy[i], faulted[i])
				}
				if ns >= startNs && !same {
					diverged = true
				}
			}
			if !diverged {
				t.Errorf("fault %s on host %d left no observable trace after %dns", k, faultHostFor(k), startNs)
			}
		})
	}
}

// TestPauseStormPropagation pins the cross-host pause chain the fabric
// exists to model: a pfc_pause_storm pinning one receiver NIC's XOFF must
// surface as TX pause time on a sender one switch away.
func TestPauseStormPropagation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Audit = testAudit()
	cfg.FaultHost = 0
	cfg.Faults = fault.Schedule{{Kind: fault.PauseStorm, StartNs: 10_000, DurationNs: 20_000}}
	f := New(cfg)
	f.AddFlow(1, 0, 1)
	f.Run(5*sim.Microsecond, 40*sim.Microsecond)
	if got := f.NICs[0].RxPauseFrac.Frac(); got <= 0.3 {
		t.Errorf("stormed receiver pause frac = %.3f, want > 0.3", got)
	}
	if got := f.NICs[1].TxPauseFrac.Frac(); got <= 0.1 {
		t.Errorf("sender pause frac = %.3f, want > 0.1 (storm should propagate host->switch->host)", got)
	}
	if ok, detail := f.Conservation(); !ok {
		t.Errorf("conservation: %s", detail)
	}
}

// TestLinkFlapStopsAndRecovers pins the link-flap fault end to end: during
// the down window the sender emits nothing, and after it traffic resumes.
func TestLinkFlapStopsAndRecovers(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Audit = testAudit()
	cfg.FaultHost = 1
	cfg.Faults = fault.Schedule{{Kind: fault.LinkFlap, StartNs: 10_000, DurationNs: 10_000}}
	f := New(cfg)
	f.AddFlow(1, 0, 1)
	snd := f.NICs[1]

	f.Eng.RunUntil(10 * sim.Microsecond)
	atDown := snd.sentTotal
	if atDown == 0 {
		t.Fatal("sender emitted nothing before the flap")
	}
	f.Eng.RunUntil(19 * sim.Microsecond) // strictly inside the down window
	duringDown := snd.sentTotal
	if duringDown != atDown {
		t.Errorf("sender emitted %d lines while its link was down", duringDown-atDown)
	}
	f.Eng.RunUntil(30 * sim.Microsecond)
	if snd.sentTotal == duringDown {
		t.Error("sender never resumed after the link came back")
	}
	if ok, detail := f.Conservation(); !ok {
		t.Errorf("conservation: %s", detail)
	}
}

// TestAuditDomainsNamespaced pins the per-host audit namespacing: a fabric
// violation must be attributable to the owning host.
func TestAuditDomainsNamespaced(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Audit = audit.Config{Enabled: true} // collect, don't panic
	f := New(cfg)
	// Corrupt host 1's NIC accounting and force an end-of-window check: the
	// violation must land in the h1/nic domain.
	f.AddFlow(0, 1, 1)
	f.Eng.RunUntil(1 * sim.Microsecond)
	f.NICs[1].dropTotal = 7
	f.Auditor.CheckEnd()
	found := false
	for _, v := range f.Auditor.Violations() {
		if v.Domain == "h1/nic" {
			found = true
		}
		if v.Domain == "h0/nic" {
			t.Errorf("violation misattributed to h0/nic: %+v", v)
		}
	}
	if !found {
		t.Fatalf("no violation attributed to h1/nic; got %+v", f.Auditor.Violations())
	}
}

// BenchmarkFabricSteadyState drives the event hot path of a warm 4-host
// incast rack. CI gates on 0 allocs/op: the per-line path (flow tick, TX
// serialization, switch forwarding, egress, RX pump through the IIO) must
// not allocate.
func BenchmarkFabricSteadyState(b *testing.B) {
	f := New(DefaultConfig(4))
	f.AddIncast(0, 3)
	f.Eng.RunUntil(2 * sim.Microsecond) // fill queues to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Eng.Step() {
			b.Fatal("engine ran dry")
		}
	}
}
