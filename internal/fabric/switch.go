package fabric

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ring is a fixed-capacity FIFO of destination host indices. Fabric queues
// are bounded by construction (PFC exists to keep them from overflowing),
// so the buffer never grows: a full ring at a push site is a drop, counted
// by the caller and flagged by the lossless audit invariant.
type ring struct {
	buf  []int32
	head int
	n    int
}

func newRing(capacity int) ring { return ring{buf: make([]int32, capacity)} }

func (r *ring) full() bool { return r.n == len(r.buf) }

func (r *ring) push(v int32) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

func (r *ring) peek() int32 { return r.buf[r.head] }

// SwitchConfig describes the ToR switch.
type SwitchConfig struct {
	// Ports is the number of host-facing ports (defaults to the fabric's
	// host count).
	Ports int
	// LinePeriod is the per-cacheline serialization time at port speed
	// (5120 ps = 100 Gbps). Both the ingress forwarding engine and each
	// egress port are paced at this rate.
	LinePeriod sim.Time
	// ForwardLatency is the ingress-to-egress pipeline delay (cut-through
	// lookup + crossbar transit).
	ForwardLatency sim.Time
	// IngressCap and EgressCap bound the per-port queues, in lines.
	IngressCap, EgressCap int
	// PauseHi/PauseLo are the ingress-occupancy PFC thresholds toward the
	// attached host's TX (XOFF at hi, XON at lo). IngressCap - PauseHi must
	// cover the lines a sender launches during PauseDelay plus the wire
	// propagation, or the lossless invariant trips.
	PauseHi, PauseLo int
	// PauseDelay is the pause-frame propagation + reaction time for pauses
	// the switch asserts toward a host TX.
	PauseDelay sim.Time
}

// DefaultSwitchConfig sizes a 100 Gbps ToR with 64 KB per-port buffering
// each way and headroom-checked PFC thresholds.
func DefaultSwitchConfig(ports int) SwitchConfig {
	return SwitchConfig{
		Ports:          ports,
		LinePeriod:     5120 * sim.Picosecond, // 100 Gbps
		ForwardLatency: 300 * sim.Nanosecond,
		IngressCap:     1024,
		EgressCap:      1024,
		PauseHi:        512,
		PauseLo:        128,
		PauseDelay:     600 * sim.Nanosecond,
	}
}

// port is one host-facing switch port: an ingress queue feeding the
// forwarding engine and an egress queue draining onto the host-bound wire.
type port struct {
	sw  *Switch
	idx int
	nic *NIC

	in  ring // ingress: lines received from the host, awaiting forwarding
	out ring // egress: lines awaiting serialization toward the host

	fwdNextAt sim.Time // ingress forwarding pacing (one line per LinePeriod)
	fwdArmed  bool     // a pacing kick event is pending
	hol       bool     // head-of-line blocked on a full egress
	reserved  int      // egress slots promised to lines in the forwarding pipeline
	egrBusy   bool     // egress wire currently serializing a line
	paused    bool     // attached host's NIC asserted PFC (post-propagation)
	down      bool     // link flap: the host-facing wire is down
	txPause   bool     // PFC XOFF asserted toward the attached host's TX

	// Probes.
	InOcc, OutOcc       *telemetry.Integrator
	HoLFrac             *telemetry.FracTimer
	Forwarded, Egressed *telemetry.Counter
}

// Switch is the single ToR connecting every host of a Fabric. Routing is a
// one-level lookup (destination host index == port index); Route is the
// seam where a fat-tree would map NodeID to an uplink instead.
type Switch struct {
	eng *sim.Engine
	cfg SwitchConfig
	// par, when non-nil, marks this switch as partition 0 of a partitioned
	// rack: the attached NICs live on other engines, so egress deliveries
	// and PFC toward a host TX become cross-partition messages. Nil on a
	// shared-engine Fabric.
	par *Parallel

	ports       []*port
	holRot      int   // round-robin cursor for egress-slot arbitration
	fwdInFlight int64 // lines in the forwarding pipeline (popped, not yet at egress)
	dropTotal   int64 // never reset; conservation term

	// Dropped counts ingress overruns in the current measurement window.
	// PFC exists to keep this at zero.
	Dropped *telemetry.Counter

	fwdKickFn, fwdArriveFn, egrDoneFn, txPauseFn sim.EventFunc
}

// NewSwitch builds the switch and registers its invariants with aud.
func NewSwitch(eng *sim.Engine, cfg SwitchConfig, aud *audit.Auditor) *Switch {
	if cfg.Ports <= 0 {
		panic("fabric: switch needs at least one port")
	}
	if cfg.PauseLo >= cfg.PauseHi || cfg.PauseHi > cfg.IngressCap {
		panic("fabric: switch PFC thresholds must satisfy lo < hi <= ingress cap")
	}
	s := &Switch{eng: eng, cfg: cfg, Dropped: telemetry.NewCounter(eng)}
	s.fwdKickFn = s.fwdKickEvent
	s.fwdArriveFn = s.fwdArriveEvent
	s.egrDoneFn = s.egrDoneEvent
	s.txPauseFn = s.txPauseEvent
	s.ports = make([]*port, cfg.Ports)
	for i := range s.ports {
		p := &port{
			sw:        s,
			idx:       i,
			in:        newRing(cfg.IngressCap),
			out:       newRing(cfg.EgressCap),
			InOcc:     telemetry.NewIntegrator(eng),
			OutOcc:    telemetry.NewIntegrator(eng),
			HoLFrac:   telemetry.NewFracTimer(eng),
			Forwarded: telemetry.NewCounter(eng),
			Egressed:  telemetry.NewCounter(eng),
		}
		s.ports[i] = p
		if aud.Enabled() {
			dom := fmt.Sprintf("switch/port%d", i)
			aud.Gauge(dom, "ingress_occ", p.InOcc, func() int { return p.in.n })
			aud.Gauge(dom, "egress_occ", p.OutOcc, func() int { return p.out.n })
			aud.Bounds(dom, "ingress", 0, int64(cfg.IngressCap), func() int64 { return int64(p.in.n) })
			aud.Bounds(dom, "egress", 0, int64(cfg.EgressCap), func() int64 { return int64(p.out.n + p.reserved) })
			aud.Check(dom, "pfc", func() (bool, string) {
				// updateTxPause runs after every ingress mutation, so at event
				// boundaries the hysteresis state matches the occupancy.
				if p.txPause && p.in.n <= cfg.PauseLo {
					return false, fmt.Sprintf("XOFF asserted with ingress %d <= PauseLo %d", p.in.n, cfg.PauseLo)
				}
				if !p.txPause && p.in.n >= cfg.PauseHi {
					return false, fmt.Sprintf("XOFF clear with ingress %d >= PauseHi %d", p.in.n, cfg.PauseHi)
				}
				return true, ""
			})
		}
	}
	eng.Register(s)
	if aud.Enabled() {
		aud.Check("switch", "lossless", func() (bool, string) {
			if s.dropTotal != 0 {
				return false, fmt.Sprintf("%d lines dropped at switch ingress on a lossless (PFC) fabric", s.dropTotal)
			}
			return true, ""
		})
	}
	return s
}

// attach wires a NIC to its port; the fabric calls this at assembly.
func (s *Switch) attach(i int, n *NIC) { s.ports[i].nic = n }

// Route maps a destination host index to the egress port carrying it. On a
// single ToR this is the identity; a fat-tree extension would consult the
// destination NodeID here to pick an uplink.
func (s *Switch) Route(dstHost int) int { return dstHost }

// Arrive lands one line from host port src destined for host dst.
func (s *Switch) Arrive(src int, dst int32) {
	p := s.ports[src]
	if p.in.full() {
		// PFC headroom was insufficient; count the loss rather than hide it.
		s.dropTotal++
		s.Dropped.Inc()
		return
	}
	p.in.push(dst)
	p.InOcc.Add(1)
	s.updateTxPause(p)
	s.tryForward(p)
}

// tryForward moves lines from port p's ingress into the forwarding
// pipeline, paced at LinePeriod, stopping on a full egress (head-of-line
// blocking: the queue is a FIFO, so a blocked head parks the whole port).
func (s *Switch) tryForward(p *port) {
	for p.in.n > 0 {
		now := s.eng.Now()
		if p.fwdNextAt > now {
			if !p.fwdArmed {
				p.fwdArmed = true
				s.eng.AtFunc(p.fwdNextAt, s.fwdKickFn, p)
			}
			return
		}
		dst := s.ports[s.Route(int(p.in.peek()))]
		if dst.out.n+dst.reserved >= s.cfg.EgressCap {
			if !p.hol {
				p.hol = true
				p.HoLFrac.Set(true)
			}
			return
		}
		if p.hol {
			p.hol = false
			p.HoLFrac.Set(false)
		}
		p.in.pop()
		p.InOcc.Add(-1)
		dst.reserved++
		s.fwdInFlight++
		p.Forwarded.Inc()
		p.fwdNextAt = now + s.cfg.LinePeriod
		s.eng.AfterFunc(s.cfg.ForwardLatency, s.fwdArriveFn, dst)
		s.updateTxPause(p)
	}
}

func (s *Switch) fwdKickEvent(arg any) {
	p := arg.(*port)
	p.fwdArmed = false
	s.tryForward(p)
}

// fwdArriveEvent lands a line at its egress queue after the pipeline delay.
func (s *Switch) fwdArriveEvent(arg any) {
	dst := arg.(*port)
	s.fwdInFlight--
	dst.reserved--
	dst.out.push(int32(dst.idx))
	dst.OutOcc.Add(1)
	s.tryEgress(dst)
}

// tryEgress starts serializing the egress head onto the host-bound wire.
// The line occupies its queue slot until serialization completes, and a
// pause landing mid-line lets the line finish, as a real MAC would.
func (s *Switch) tryEgress(p *port) {
	if p.egrBusy || p.paused || p.down || p.out.n == 0 {
		return
	}
	p.egrBusy = true
	s.eng.AfterFunc(s.cfg.LinePeriod, s.egrDoneFn, p)
}

func (s *Switch) egrDoneEvent(arg any) {
	p := arg.(*port)
	p.egrBusy = false
	p.out.pop()
	p.OutOcc.Add(-1)
	p.Egressed.Inc()
	if s.par != nil {
		// Partitioned: the line leaves the switch partition now and lands at
		// the host NIC after the wire propagation rides the message latency.
		s.par.post(0, 1+p.idx, s.par.Cfg.NIC.PropDelay, mWireDeliver, p.idx, 0)
	} else {
		p.nic.wireDeliver()
	}
	// An egress slot freed: grant it round-robin across the HoL-blocked
	// ingress ports, advancing the cursor past the winner so contenders
	// alternate — a fixed kick order would be strict priority and starve
	// high-indexed senders into permanent pause.
	nports := len(s.ports)
	for k := 0; k < nports; k++ {
		idx := (s.holRot + k) % nports
		q := s.ports[idx]
		if !q.hol {
			continue
		}
		before := q.in.n
		s.tryForward(q)
		if q.in.n < before {
			s.holRot = (idx + 1) % nports
			break
		}
	}
	s.tryEgress(p)
}

// updateTxPause runs the ingress-occupancy PFC hysteresis toward the
// attached host's TX, applying changes after PauseDelay. The apply event
// reads the state current at fire time, so a flap inside the delay settles
// to the latest value.
func (s *Switch) updateTxPause(p *port) {
	want := p.txPause
	if !want && p.in.n >= s.cfg.PauseHi {
		want = true
	} else if want && p.in.n <= s.cfg.PauseLo {
		want = false
	}
	if want != p.txPause {
		p.txPause = want
		if s.par != nil {
			// Partitioned: the pause frame carries the value decided now; a
			// flap inside the delay delivers both transitions in order, so
			// the host TX still settles to the latest value.
			v := int32(0)
			if want {
				v = 1
			}
			s.par.post(0, 1+p.idx, s.cfg.PauseDelay, mTxPause, p.idx, v)
		} else {
			s.eng.AfterFunc(s.cfg.PauseDelay, s.txPauseFn, p)
		}
	}
}

func (s *Switch) txPauseEvent(arg any) {
	p := arg.(*port)
	p.nic.setTxPaused(p.txPause)
}

// setEgressPause is the host-side PFC landing at the switch: the NIC calls
// it (after its own propagation delay) to stop or resume the egress drain
// toward that host.
func (s *Switch) setEgressPause(portIdx int, on bool) {
	p := s.ports[portIdx]
	p.paused = on
	if !on {
		s.tryEgress(p)
	}
}

// setPortDown models the host-facing wire going down (link flap): egress
// stops; ingress keeps forwarding (the host has stopped transmitting).
func (s *Switch) setPortDown(portIdx int, down bool) {
	p := s.ports[portIdx]
	p.down = down
	if !down {
		s.tryEgress(p)
	}
}

// queued reports lines held in switch queues and the forwarding pipeline
// (a conservation term).
func (s *Switch) queued() int64 {
	total := s.fwdInFlight
	for _, p := range s.ports {
		total += int64(p.in.n + p.out.n)
	}
	return total
}

// ResetStats starts a fresh measurement window on every switch probe.
func (s *Switch) ResetStats() {
	s.Dropped.Reset()
	for _, p := range s.ports {
		p.InOcc.Reset()
		p.OutOcc.Reset()
		p.HoLFrac.Reset()
		p.Forwarded.Reset()
		p.Egressed.Reset()
	}
}

// PortInOccAvg reports the time-average ingress occupancy of port i.
func (s *Switch) PortInOccAvg(i int) float64 { return s.ports[i].InOcc.Avg() }

// PortOutOccAvg reports the time-average egress occupancy of port i.
func (s *Switch) PortOutOccAvg(i int) float64 { return s.ports[i].OutOcc.Avg() }

// PortHoLFrac reports the fraction of the window port i's ingress spent
// head-of-line blocked.
func (s *Switch) PortHoLFrac(i int) float64 { return s.ports[i].HoLFrac.Frac() }

// PortTxPaused reports whether the switch currently holds port i's host TX
// paused (pre-propagation hysteresis state).
func (s *Switch) PortTxPaused(i int) bool { return s.ports[i].txPause }
