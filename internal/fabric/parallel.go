package fabric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/host"
	"repro/internal/sim"
)

// Conservative parallel DES (SimBricks-style): a Parallel rack gives every
// host (plus its NIC) a private engine and the ToR its own, then advances all
// partitions in lockstep rounds bounded by the fabric's lookahead — the
// smallest cross-partition latency (host<->ToR wire propagation, PFC pause
// reaction). Within a round no partition can affect another, so partitions
// run concurrently; at each round barrier the cross-partition messages
// emitted during the round are merged in a canonical order and injected into
// their target engines. Every per-partition execution and every injection
// sequence is a pure function of the configuration, so the result is
// byte-identical at any worker count — 1, 2, or N goroutines — which is the
// pinned invariant (TestParallelRackWorkerIdentity, and RunSpecJSON identity
// in internal/exp).
//
// A partitioned rack is a *different discretization* than the shared-engine
// Fabric: pause frames carry the value decided at emission (the shared
// engine's pause events read the hysteresis state at fire time), and
// same-instant events in different partitions are ordered per-engine rather
// than by one global sequence. Both are valid physics and they agree closely
// (pinned within tolerance by TestParallelMatchesSharedPhysics), but they are
// not bit-equal — which is why partitioning is a spec-level mode
// (FabricSpec.Partitioned) while the worker count is execution-only.
//
// Fault injection and auditing need a single rack-wide observer and are not
// supported here; faulted or audited runs use the shared-engine Fabric.

// Cross-partition message kinds. Each names the action performed on the
// target partition's engine at deliverAt.
const (
	mArrive      uint8 = iota // host -> switch: line lands at the ingress
	mWireDeliver              // switch -> host: line lands off the egress wire
	mEgressPause              // host -> switch: PFC toward the egress drain
	mTxPause                  // switch -> host: PFC toward the host's TX
)

// xmsg is one cross-partition message. It is an immutable value once posted
// (safe to share between a snapshot and the live run), and it carries no
// pointers into the source partition.
type xmsg struct {
	deliverAt sim.Time
	src, dst  int32 // partition indices (0 = switch, 1+i = host i)
	kind      uint8
	port      int32 // NIC/port index the message concerns
	val       int32 // payload: destination host (mArrive) or 0/1 pause state
}

// Parallel is a partitioned rack: the same topology Fabric assembles on one
// engine, split across len(Hosts)+1 engines that advance in conservative
// lookahead rounds.
type Parallel struct {
	Cfg    Config
	Switch *Switch
	Hosts  []*host.Host
	NICs   []*NIC

	// engines[0] drives the switch, engines[1+i] drives host i and its NIC.
	engines   []*sim.Engine
	workers   int
	lookahead sim.Time
	now       sim.Time // common round boundary all engines have reached

	// outbox[p] collects messages partition p emitted during the current
	// round; only partition p appends, so rounds need no locks.
	outbox [][]xmsg
	// linesPosted[p] / linesDelivered[p] account line-carrying messages
	// (mArrive, mWireDeliver) so conservation can count lines that are
	// in flight between partitions. Each slot has a single writer: the
	// emitting (resp. target) partition.
	linesPosted    []int64
	linesDelivered []int64

	deliverFn sim.EventFunc
}

// NewParallel assembles a partitioned rack. workers bounds the goroutines
// stepping partitions each round: <= 1 runs rounds serially, larger values
// are capped by the partition count. The configuration must be fault-free
// (fault injection needs the shared-engine Fabric) and the audit section is
// ignored for the same reason.
func NewParallel(cfg Config, workers int) *Parallel {
	if cfg.Hosts < 2 {
		panic("fabric: need at least 2 hosts")
	}
	if len(cfg.Faults) > 0 {
		panic("fabric: partitioned rack does not support fault injection; use fabric.New")
	}
	if cfg.Switch.Ports == 0 {
		cfg.Switch.Ports = cfg.Hosts
	}
	if cfg.Switch.Ports < cfg.Hosts {
		panic("fabric: switch has fewer ports than hosts")
	}
	la := cfg.NIC.PropDelay
	if cfg.NIC.PauseDelay < la {
		la = cfg.NIC.PauseDelay
	}
	if cfg.Switch.PauseDelay < la {
		la = cfg.Switch.PauseDelay
	}
	if la <= 0 {
		panic("fabric: partitioned rack needs a positive lookahead (wire and pause delays)")
	}
	nparts := cfg.Hosts + 1
	if workers < 1 {
		workers = 1
	}
	if workers > nparts {
		workers = nparts
	}
	pf := &Parallel{
		Cfg:            cfg,
		workers:        workers,
		lookahead:      la,
		engines:        make([]*sim.Engine, nparts),
		outbox:         make([][]xmsg, nparts),
		linesPosted:    make([]int64, nparts),
		linesDelivered: make([]int64, nparts),
	}
	pf.deliverFn = pf.deliverEvent
	pf.engines[0] = sim.New()
	pf.Switch = NewSwitch(pf.engines[0], cfg.Switch, nil)
	pf.Switch.par = pf
	for i := 0; i < cfg.Hosts; i++ {
		eng := sim.New()
		pf.engines[1+i] = eng
		hcfg := cfg.Host
		hcfg.Name = fmt.Sprintf("%s/h%d", hcfg.Name, i)
		h := host.NewOn(eng, nil, nil, fmt.Sprintf("h%d", i), hcfg)
		base := h.Region(cfg.NIC.BufBytes)
		nic := NewNIC(eng, cfg.NIC, h.IIO, pf.Switch, i, NodeID{Host: i}, base, nil)
		nic.par = pf
		pf.Switch.attach(i, nic)
		pf.Hosts = append(pf.Hosts, h)
		pf.NICs = append(pf.NICs, nic)
	}
	return pf
}

// Lookahead reports the round length (the minimum cross-partition latency).
func (pf *Parallel) Lookahead() sim.Time { return pf.lookahead }

// Now reports the common round boundary every partition has reached.
func (pf *Parallel) Now() sim.Time { return pf.now }

// AddFlow offers a stream from host src to host dst at `rate` (fraction of
// NIC line rate in (0, 1]).
func (pf *Parallel) AddFlow(src, dst int, rate float64) {
	if src == dst {
		panic("fabric: flow source equals destination")
	}
	pf.NICs[src].AddFlow(dst, rate)
}

// AddIncast points hosts 1..senders at host recv, each at full line rate.
func (pf *Parallel) AddIncast(recv, senders int) {
	added := 0
	for i := 0; added < senders; i++ {
		if i == recv {
			continue
		}
		pf.AddFlow(i, recv, 1)
		added++
	}
}

// post records a cross-partition message emitted by partition src during the
// current round, to be injected at the next barrier. The latency must be at
// least the lookahead, which every caller satisfies by construction
// (lat is PropDelay or a PauseDelay, and lookahead is their minimum).
func (pf *Parallel) post(src, dst int, lat sim.Time, kind uint8, port int, val int32) {
	m := xmsg{
		deliverAt: pf.engines[src].Now() + lat,
		src:       int32(src),
		dst:       int32(dst),
		kind:      kind,
		port:      int32(port),
		val:       int32(val),
	}
	pf.outbox[src] = append(pf.outbox[src], m)
	if kind == mArrive || kind == mWireDeliver {
		pf.linesPosted[src]++
	}
}

// deliverEvent runs on the target partition's engine at the message's
// deliverAt instant.
func (pf *Parallel) deliverEvent(arg any) {
	m := arg.(xmsg)
	switch m.kind {
	case mArrive:
		pf.linesDelivered[m.dst]++
		pf.Switch.Arrive(int(m.port), m.val)
	case mWireDeliver:
		pf.linesDelivered[m.dst]++
		pf.NICs[m.port].rxLand()
	case mEgressPause:
		pf.Switch.setEgressPause(int(m.port), m.val != 0)
	case mTxPause:
		pf.NICs[m.port].setTxPaused(m.val != 0)
	}
}

// flush merges the round's outboxes in canonical order — (deliverAt, source
// partition, emission order) — and injects each message into its target
// engine. The merge happens at a barrier (single-threaded), and the order is
// independent of how partitions were scheduled onto workers, so injection
// sequence numbers (and therefore all downstream event ordering) are
// identical at any worker count. Concatenating in partition order and
// sorting stably by deliverAt realizes exactly the canonical key: per-
// partition emission order is preserved, ties across partitions break by
// partition index.
func (pf *Parallel) flush() {
	var all []xmsg
	for p := range pf.outbox {
		all = append(all, pf.outbox[p]...)
		pf.outbox[p] = pf.outbox[p][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].deliverAt < all[j].deliverAt })
	for _, m := range all {
		pf.engines[m.dst].AtFunc(m.deliverAt, pf.deliverFn, m)
	}
}

// step advances every partition's engine to stepTo (inclusive), using the
// configured worker pool. Partition executions are independent within a
// round, so the assignment of partitions to workers cannot affect results.
func (pf *Parallel) step(stepTo sim.Time) {
	if pf.workers <= 1 {
		for _, e := range pf.engines {
			e.RunUntil(stepTo)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < pf.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pf.engines) {
					return
				}
				pf.engines[i].RunUntil(stepTo)
			}
		}()
	}
	wg.Wait()
}

// RunUntil advances the whole rack to absolute time t (events at exactly t
// included, matching Engine.RunUntil), in lookahead-bounded rounds with a
// message barrier after each.
func (pf *Parallel) RunUntil(t sim.Time) {
	for pf.now < t {
		end := pf.now + pf.lookahead
		var stepTo sim.Time
		if end >= t {
			// Final (possibly partial) round: run events through t itself so
			// the boundary matches the shared-engine Run semantics, leaving
			// every engine's clock exactly at t.
			stepTo, pf.now = t, t
		} else {
			// Interior round [pf.now, end): integer picosecond timestamps make
			// "events < end" exactly "events <= end-1". Messages posted during
			// the round deliver at >= pf.now + lookahead = end, so injecting
			// them at the barrier is always in the target's future.
			stepTo, pf.now = end-1, end
		}
		pf.step(stepTo)
		pf.flush()
	}
}

// ResetStats starts a fresh measurement window on every probe in the rack.
func (pf *Parallel) ResetStats() {
	for _, h := range pf.Hosts {
		h.ResetStats()
	}
	for _, n := range pf.NICs {
		n.ResetStats()
	}
	pf.Switch.ResetStats()
}

// Run warms the rack up for `warmup`, resets all probes, then runs the
// measurement window — the partitioned counterpart of Fabric.Run.
func (pf *Parallel) Run(warmup, window sim.Time) {
	pf.RunUntil(pf.now + warmup)
	pf.ResetStats()
	pf.RunUntil(pf.now + window)
}

// InFlight reports lines currently between a sender's TX and delivery,
// including lines riding cross-partition messages.
func (pf *Parallel) InFlight() int64 {
	var q int64
	for _, n := range pf.NICs {
		q += n.queued()
	}
	q += pf.Switch.queued()
	for p := range pf.linesPosted {
		q += pf.linesPosted[p] - pf.linesDelivered[p]
	}
	return q
}

// Conservation checks the rack-wide line-conservation invariant at a round
// boundary: every line ever emitted is on a wire (a posted, undelivered
// message), in a queue, in flight inside a host, delivered, or dropped.
func (pf *Parallel) Conservation() (bool, string) {
	var sent, acct int64
	for _, n := range pf.NICs {
		sent += n.sentTotal
		acct += n.queued() + n.deliveredTotal + n.dropTotal
	}
	acct += pf.Switch.queued() + pf.Switch.dropTotal
	for p := range pf.linesPosted {
		acct += pf.linesPosted[p] - pf.linesDelivered[p]
	}
	if sent != acct {
		return false, fmt.Sprintf("emitted %d lines but account for %d", sent, acct)
	}
	return true, ""
}

// ParallelSnapshot captures a partitioned rack at a round boundary: one
// engine snapshot per partition plus the cross-partition accounting. The
// outboxes are always empty at a boundary (flush drains them), and injected-
// but-unfired messages live inside their target engine's snapshot as
// immutable values, so nothing else needs copying.
type ParallelSnapshot struct {
	now       sim.Time
	engines   []*sim.Snapshot
	posted    []int64
	delivered []int64
}

// Snapshot captures the whole partitioned rack. Must be called between
// RunUntil/Run calls (at a round boundary), which is the only time the rack
// is externally observable anyway.
func (pf *Parallel) Snapshot() *ParallelSnapshot {
	s := &ParallelSnapshot{
		now:       pf.now,
		engines:   make([]*sim.Snapshot, len(pf.engines)),
		posted:    append([]int64(nil), pf.linesPosted...),
		delivered: append([]int64(nil), pf.linesDelivered...),
	}
	for i, e := range pf.engines {
		s.engines[i] = e.Snapshot()
	}
	return s
}

// Restore rewinds the rack to a snapshot taken on this same rack.
func (pf *Parallel) Restore(s *ParallelSnapshot) {
	if len(s.engines) != len(pf.engines) {
		panic("fabric: snapshot from a different rack shape")
	}
	pf.now = s.now
	copy(pf.linesPosted, s.posted)
	copy(pf.linesDelivered, s.delivered)
	for i, e := range pf.engines {
		e.Restore(s.engines[i])
	}
	for p := range pf.outbox {
		pf.outbox[p] = pf.outbox[p][:0]
	}
}
