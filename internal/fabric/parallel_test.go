package fabric

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// parRackConfig is a 3-host rack whose receiver also runs colocated C2M
// load, so both PFC directions fire: the 2-to-1 incast overruns the ToR
// egress (switch -> host TX pause), and the loaded receiver host slows its
// RX drain (host -> switch egress pause).
func parRackConfig() Config {
	cfg := DefaultConfig(3)
	// Tighter RX PFC thresholds so the receiver's backpressure asserts
	// within a short test window instead of after a 64 KB queue buildup.
	cfg.NIC.PauseHi = 256
	cfg.NIC.PauseLo = 64
	return cfg
}

func buildParRack(workers int) *Parallel {
	pf := NewParallel(parRackConfig(), workers)
	pf.AddIncast(0, 2)
	for i := 0; i < 4; i++ {
		base := pf.Hosts[0].Region(1 << 30)
		pf.Hosts[0].AddCore(workload.NewSeqReadWrite(base, 1<<30))
	}
	return pf
}

// rackProbe is the full observable fingerprint of a rack run: every NIC and
// switch probe the incast experiment reads, plus the raw conservation terms.
// Exact float64 equality across worker counts is the point.
type rackProbe struct {
	TxBW, TxPause, RxBW, RxPause []float64
	RxQueueOcc                   []float64
	SwInOcc, SwOutOcc, SwHoL     []float64
	Sent, Delivered, Dropped     []int64
	InFlight                     int64
	HostC2M                      []float64
}

func probeParRack(pf *Parallel) rackProbe {
	var p rackProbe
	for i, n := range pf.NICs {
		p.TxBW = append(p.TxBW, n.TxBytesPerSec())
		p.TxPause = append(p.TxPause, n.TxPauseFrac.Frac())
		p.RxBW = append(p.RxBW, n.RxBytesPerSec())
		p.RxPause = append(p.RxPause, n.RxPauseFrac.Frac())
		p.RxQueueOcc = append(p.RxQueueOcc, n.RxQueueOcc.Avg())
		p.Sent = append(p.Sent, n.sentTotal)
		p.Delivered = append(p.Delivered, n.deliveredTotal)
		p.Dropped = append(p.Dropped, n.dropTotal)
		p.SwInOcc = append(p.SwInOcc, pf.Switch.PortInOccAvg(i))
		p.SwOutOcc = append(p.SwOutOcc, pf.Switch.PortOutOccAvg(i))
		p.SwHoL = append(p.SwHoL, pf.Switch.PortHoLFrac(i))
	}
	p.InFlight = pf.InFlight()
	for _, h := range pf.Hosts {
		p.HostC2M = append(p.HostC2M, h.C2MBW())
	}
	return p
}

const (
	parWarm   = 5 * sim.Microsecond
	parWindow = 15 * sim.Microsecond
)

// TestParallelRackWorkerIdentity is the conservative-DES pinned invariant:
// the same partitioned rack advanced by 1, 2, and N goroutines produces
// bit-identical results, because per-partition execution is single-threaded
// within a round and barrier injection order is canonical.
func TestParallelRackWorkerIdentity(t *testing.T) {
	run := func(workers int) rackProbe {
		pf := buildParRack(workers)
		pf.Run(parWarm, parWindow)
		if ok, detail := pf.Conservation(); !ok {
			t.Fatalf("workers=%d: conservation violated: %s", workers, detail)
		}
		return probeParRack(pf)
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from serial rounds:\ngot  %+v\nwant %+v", w, got, want)
		}
	}
	// The run must actually exercise both cross-partition pause directions,
	// or the identity above is vacuous for half the message kinds.
	if want.TxPause[1] == 0 && want.TxPause[2] == 0 {
		t.Fatalf("no sender was ever TX-paused; incast did not congest the ToR")
	}
	if want.RxPause[0] == 0 {
		t.Fatalf("receiver never asserted RX pause; colocated load did not back-pressure")
	}
}

// TestParallelMatchesSharedPhysics anchors the partitioned discretization to
// the shared-engine rack: line arrivals and pause assertions happen at the
// same absolute instants in both (pause flaps shorter than the pause delay
// are impossible at default thresholds), so windowed bandwidths agree
// closely. They are not bit-equal — same-instant cross-partition events
// order per-engine rather than by one global sequence — hence the tolerance.
func TestParallelMatchesSharedPhysics(t *testing.T) {
	shared := New(parRackConfig())
	shared.AddIncast(0, 2)
	for i := 0; i < 4; i++ {
		base := shared.Hosts[0].Region(1 << 30)
		shared.Hosts[0].AddCore(workload.NewSeqReadWrite(base, 1<<30))
	}
	shared.Run(parWarm, parWindow)

	part := buildParRack(2)
	part.Run(parWarm, parWindow)

	close := func(name string, a, b float64) {
		t.Helper()
		if b == 0 && a == 0 {
			return
		}
		if rel := math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b)); rel > 0.02 {
			t.Errorf("%s: shared %v vs partitioned %v (%.2f%% apart)", name, a, b, rel*100)
		}
	}
	for i := range shared.NICs {
		close("tx bw", shared.NICs[i].TxBytesPerSec(), part.NICs[i].TxBytesPerSec())
		close("rx bw", shared.NICs[i].RxBytesPerSec(), part.NICs[i].RxBytesPerSec())
	}
	if ok, detail := part.Conservation(); !ok {
		t.Fatalf("partitioned conservation violated: %s", detail)
	}
	if ok, detail := shared.Conservation(); !ok {
		t.Fatalf("shared conservation violated: %s", detail)
	}
}

// TestParallelSnapshotRestore extends the checkpoint contract to the
// partitioned rack: snapshot at a round boundary mid-window, run to the end,
// restore, run again — byte-identical both times, at different worker
// counts on the resumed leg.
func TestParallelSnapshotRestore(t *testing.T) {
	pf := buildParRack(2)
	pf.RunUntil(parWarm)
	pf.ResetStats()
	mid := parWarm + parWindow/3
	pf.RunUntil(mid)
	snap := pf.Snapshot()
	pf.RunUntil(parWarm + parWindow)
	want := probeParRack(pf)

	for i := 0; i < 2; i++ {
		pf.Restore(snap)
		pf.RunUntil(parWarm + parWindow)
		if got := probeParRack(pf); !reflect.DeepEqual(got, want) {
			t.Fatalf("restore %d diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// TestParallelRejectsFaults pins the documented constraint: fault injection
// needs a rack-wide observer, so the partitioned constructor refuses it.
func TestParallelRejectsFaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewParallel accepted a faulted config")
		}
	}()
	cfg := parRackConfig()
	cfg.Faults = fault.Schedule{{Kind: fault.PauseStorm, StartNs: 1000, DurationNs: 1000}}
	NewParallel(cfg, 2)
}
