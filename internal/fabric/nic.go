package fabric

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// NICConfig describes a fabric-attached NIC (one per host).
type NICConfig struct {
	// LinePeriod is the TX wire serialization time per cacheline (5220 ps
	// ~ 98 Gbps, the rate the paper's ConnectX-5 sustains).
	LinePeriod sim.Time
	// QueueCapLines bounds RX buffering (lossless via PFC).
	QueueCapLines int
	// PauseHi/PauseLo are the RX-occupancy PFC thresholds toward the switch
	// egress (XOFF at hi, XON at lo).
	PauseHi, PauseLo int
	// PauseDelay is the pause-frame propagation + reaction time for pauses
	// this NIC asserts toward the switch.
	PauseDelay sim.Time
	// PropDelay is the host<->ToR wire propagation time, paid by every line
	// in both directions and by nothing else.
	PropDelay sim.Time
	// BufBytes sizes the per-host DMA target ring the RX side writes into.
	BufBytes int64
}

// DefaultNICConfig sizes a ~98 Gbps NIC with 128 KB of RX buffering.
func DefaultNICConfig() NICConfig {
	return NICConfig{
		LinePeriod:    5220 * sim.Picosecond,
		QueueCapLines: 2048,
		PauseHi:       1024,
		PauseLo:       256,
		PauseDelay:    600 * sim.Nanosecond,
		PropDelay:     250 * sim.Nanosecond,
		BufBytes:      1 << 30,
	}
}

// Flow is one unidirectional cacheline stream from this NIC to a
// destination host, offered at a fixed fraction of line rate.
type Flow struct {
	nic     *NIC
	dst     int32    // destination host index
	period  sim.Time // offered inter-line period (LinePeriod / rate)
	pending bool     // a line is offered and waiting for the TX wire
}

// NIC is a host's fabric attachment: a TX side multiplexing flows onto one
// wire toward the ToR (backpressured by switch PFC) and an RX side
// buffering arrivals and DMA-writing them through the host's IIO — the P2M
// path whose credits, not the ToR, should bottleneck a well-provisioned
// incast.
type NIC struct {
	eng  *sim.Engine
	cfg  NICConfig
	io   *iio.IIO
	sw   *Switch
	port int
	id   NodeID
	// par, when non-nil, marks this NIC as part of a partitioned rack: the
	// switch lives on another engine, so every interaction with it becomes a
	// cross-partition message posted at emission time (partition index is
	// 1 + port). Nil on a shared-engine Fabric.
	par *Parallel

	// TX state.
	flows    []*Flow
	txFreeAt sim.Time
	txRot    int     // round-robin cursor over flows
	txPaused bool    // switch ingress PFC (post-propagation)
	linkDown bool    // fault: wire down, no emission
	lineMult float64 // fault: lane degrade stretches serialization (>= 1)
	txWaker  *sim.Waker
	wireTx   int64 // lines serialized, still on the host->switch wire

	// RX state.
	rxQ      ring
	rxXoff   bool  // pause asserted toward the switch
	storm    bool  // fault: pause storm pins XOFF
	waiting  bool  // registered for an IIO credit wake-up
	wireRx   int64 // lines serialized off the switch egress, still on the wire
	inHost   int64 // lines popped into the IIO, DMA not yet complete
	nextLine int64
	bufBase  mem.Addr

	// Never-reset totals (conservation terms).
	sentTotal, deliveredTotal, dropTotal int64

	wake        func() // IIO credit callback, created once
	deliverDone func() // IIO completion callback, created once
	flowTickFn  sim.EventFunc
	txArriveFn  sim.EventFunc
	txDepartFn  sim.EventFunc
	rxArriveFn  sim.EventFunc
	rxPauseFn   sim.EventFunc

	// Probes.
	Sent        *telemetry.Counter
	Delivered   *telemetry.Counter
	Dropped     *telemetry.Counter
	TxPauseFrac *telemetry.FracTimer
	RxPauseFrac *telemetry.FracTimer
	RxQueueOcc  *telemetry.Integrator
}

// NewNIC builds the NIC for host `portIdx`, DMA-targeting bufBase, and
// registers its invariants with aud under "h<portIdx>/nic".
func NewNIC(eng *sim.Engine, cfg NICConfig, io *iio.IIO, sw *Switch, portIdx int, id NodeID, bufBase mem.Addr, aud *audit.Auditor) *NIC {
	if cfg.PauseLo >= cfg.PauseHi || cfg.PauseHi > cfg.QueueCapLines {
		panic("fabric: NIC PFC thresholds must satisfy lo < hi <= cap")
	}
	n := &NIC{
		eng:         eng,
		cfg:         cfg,
		io:          io,
		sw:          sw,
		port:        portIdx,
		id:          id,
		lineMult:    1,
		rxQ:         newRing(cfg.QueueCapLines),
		bufBase:     bufBase,
		Sent:        telemetry.NewCounter(eng),
		Delivered:   telemetry.NewCounter(eng),
		Dropped:     telemetry.NewCounter(eng),
		TxPauseFrac: telemetry.NewFracTimer(eng),
		RxPauseFrac: telemetry.NewFracTimer(eng),
		RxQueueOcc:  telemetry.NewIntegrator(eng),
	}
	eng.Register(n)
	n.txWaker = sim.NewWaker(eng, n.kickTx)
	n.wake = func() { n.waiting = false; n.pump() }
	n.deliverDone = func() {
		n.inHost--
		n.deliveredTotal++
		n.Delivered.Inc()
	}
	n.flowTickFn = n.flowTickEvent
	n.txArriveFn = n.txArriveEvent
	n.txDepartFn = n.txDepartEvent
	n.rxArriveFn = n.rxArriveEvent
	n.rxPauseFn = n.rxPauseEvent
	if aud.Enabled() {
		dom := fmt.Sprintf("h%d/nic", portIdx)
		aud.Gauge(dom, "rx_queue_occ", n.RxQueueOcc, func() int { return n.rxQ.n })
		aud.Bounds(dom, "rx_queue", 0, int64(cfg.QueueCapLines), func() int64 { return int64(n.rxQ.n) })
		aud.Check(dom, "pfc", func() (bool, string) {
			if n.rxXoff != n.RxPauseFrac.On() {
				return false, fmt.Sprintf("xoff=%v but RxPauseFrac.On()=%v", n.rxXoff, n.RxPauseFrac.On())
			}
			if n.storm {
				if !n.rxXoff {
					return false, "pause storm active but XOFF clear"
				}
				return true, ""
			}
			if n.rxXoff && n.rxQ.n <= cfg.PauseLo {
				return false, fmt.Sprintf("XOFF asserted with queue %d <= PauseLo %d", n.rxQ.n, cfg.PauseLo)
			}
			if !n.rxXoff && n.rxQ.n >= cfg.PauseHi {
				return false, fmt.Sprintf("XOFF clear with queue %d >= PauseHi %d", n.rxQ.n, cfg.PauseHi)
			}
			return true, ""
		})
		aud.Check(dom, "lossless", func() (bool, string) {
			if n.dropTotal != 0 {
				return false, fmt.Sprintf("%d lines dropped on a lossless (PFC) NIC", n.dropTotal)
			}
			return true, ""
		})
		aud.Check(dom, "tx_pause", func() (bool, string) {
			if n.txPaused != n.TxPauseFrac.On() {
				return false, fmt.Sprintf("txPaused=%v but TxPauseFrac.On()=%v", n.txPaused, n.TxPauseFrac.On())
			}
			return true, ""
		})
	}
	return n
}

// ID reports the NIC's fabric address.
func (n *NIC) ID() NodeID { return n.id }

// AddFlow offers a stream to host dst at `rate` (a fraction of line rate in
// (0, 1]), starting immediately. The flow is closed-loop: each emitted line
// schedules the next offer, so backpressure (PFC pause, wire contention)
// defers rather than accumulates offered load.
func (n *NIC) AddFlow(dst int, rate float64) *Flow {
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("fabric: flow rate %v outside (0, 1]", rate))
	}
	f := &Flow{nic: n, dst: int32(dst), period: sim.Time(float64(n.cfg.LinePeriod) / rate)}
	n.flows = append(n.flows, f)
	n.eng.AtFunc(n.eng.Now(), n.flowTickFn, f)
	return f
}

func (n *NIC) flowTickEvent(arg any) {
	arg.(*Flow).pending = true
	n.kickTx()
}

func (n *NIC) anyPending() bool {
	for _, f := range n.flows {
		if f.pending {
			return true
		}
	}
	return false
}

// kickTx serializes at most one pending line onto the TX wire, round-robin
// across flows, and re-arms the waker while offers remain.
func (n *NIC) kickTx() {
	if n.txPaused || n.linkDown {
		return
	}
	now := n.eng.Now()
	if n.txFreeAt > now {
		if n.anyPending() {
			n.txWaker.WakeAt(n.txFreeAt)
		}
		return
	}
	nf := len(n.flows)
	for k := 0; k < nf; k++ {
		f := n.flows[(n.txRot+k)%nf]
		if !f.pending {
			continue
		}
		n.txRot = (n.txRot + k + 1) % nf
		f.pending = false
		period := n.txLinePeriod()
		n.txFreeAt = now + period
		n.sentTotal++
		n.wireTx++
		n.Sent.Inc()
		if n.par != nil {
			// Partitioned: the line leaves this partition when it finishes
			// serializing; the wire propagation rides the message latency.
			n.eng.AfterFunc(period, n.txDepartFn, f)
		} else {
			n.eng.AfterFunc(period+n.cfg.PropDelay, n.txArriveFn, f)
		}
		n.eng.AfterFunc(f.period, n.flowTickFn, f)
		break
	}
	if n.anyPending() {
		n.txWaker.WakeAt(n.txFreeAt)
	}
}

// txLinePeriod is the serialization time under the current lane state.
func (n *NIC) txLinePeriod() sim.Time {
	if n.lineMult == 1 {
		return n.cfg.LinePeriod
	}
	return sim.Time(float64(n.cfg.LinePeriod) * n.lineMult)
}

func (n *NIC) txArriveEvent(arg any) {
	f := arg.(*Flow)
	n.wireTx--
	n.sw.Arrive(n.port, f.dst)
}

// txDepartEvent is the partitioned-rack TX completion: serialization done,
// the line leaves the host partition as a message that lands at the switch
// ingress after the wire propagation. The on-the-wire interval is accounted
// by the rack's posted/delivered counters instead of wireTx.
func (n *NIC) txDepartEvent(arg any) {
	f := arg.(*Flow)
	n.wireTx--
	n.par.post(1+n.port, 0, n.cfg.PropDelay, mArrive, n.port, f.dst)
}

// setTxPaused lands switch-asserted PFC at the TX (post-propagation).
func (n *NIC) setTxPaused(v bool) {
	if v == n.txPaused {
		return
	}
	n.txPaused = v
	n.TxPauseFrac.Set(v)
	if !v {
		n.kickTx()
	}
}

// wireDeliver is called by the switch when a line finishes serializing off
// the egress port; the line spends PropDelay on the wire before landing.
func (n *NIC) wireDeliver() {
	n.wireRx++
	n.eng.AfterFunc(n.cfg.PropDelay, n.rxArriveFn, nil)
}

func (n *NIC) rxArriveEvent(any) {
	n.wireRx--
	n.rxLand()
}

// rxLand lands one line in the RX buffer. On a shared-engine fabric it runs
// from rxArriveEvent after the wire propagation; on a partitioned rack the
// cross-partition message delivery calls it directly (the wire time was
// spent in the message latency, and the line was accounted by the rack's
// posted/delivered counters rather than wireRx).
func (n *NIC) rxLand() {
	if n.rxQ.full() {
		// PFC should have stopped the switch egress before headroom ran out.
		n.dropTotal++
		n.Dropped.Inc()
	} else {
		n.rxQ.push(0)
		n.RxQueueOcc.Add(1)
	}
	n.updateRxPFC()
	n.pump()
}

// pump DMA-writes buffered lines through the host's IIO. The done callback
// is the one bound at construction, so the loop allocates nothing.
func (n *NIC) pump() {
	for n.rxQ.n > 0 {
		addr := n.bufBase + mem.Addr((n.nextLine*mem.LineSize)%n.cfg.BufBytes)
		if !n.io.TryWrite(addr, 0, n.deliverDone) {
			if !n.waiting {
				n.waiting = true
				n.io.NotifyWrite(n.wake)
			}
			return
		}
		n.nextLine++
		n.rxQ.pop()
		n.inHost++
		n.RxQueueOcc.Add(-1)
		n.updateRxPFC()
	}
}

// updateRxPFC runs the RX-occupancy hysteresis toward the switch egress,
// applying changes after PauseDelay. A pause-storm fault pins XOFF; when it
// clears, the occupancy thresholds decide.
func (n *NIC) updateRxPFC() {
	want := n.rxXoff
	if !want && n.rxQ.n >= n.cfg.PauseHi {
		want = true
	} else if want && n.rxQ.n <= n.cfg.PauseLo {
		want = false
	}
	if n.storm {
		want = true
	}
	if want != n.rxXoff {
		n.rxXoff = want
		n.RxPauseFrac.Set(want)
		if n.par != nil {
			// Partitioned: the pause frame carries the value decided now; a
			// flap inside the delay delivers both transitions in order, so
			// the switch still settles to the latest value.
			v := int32(0)
			if want {
				v = 1
			}
			n.par.post(1+n.port, 0, n.cfg.PauseDelay, mEgressPause, n.port, v)
		} else {
			n.eng.AfterFunc(n.cfg.PauseDelay, n.rxPauseFn, nil)
		}
	}
}

func (n *NIC) rxPauseEvent(any) {
	n.sw.setEgressPause(n.port, n.rxXoff)
}

// FaultSetLinkDown implements fault.NIC: the host-facing wire drops in both
// directions — the TX stops emitting and the switch stops egressing toward
// this host. Lines already on the wire land (the physical layer stops, it
// does not overrun); buffered lines keep draining into the host.
func (n *NIC) FaultSetLinkDown(down bool) {
	n.linkDown = down
	n.sw.setPortDown(n.port, down)
	if !down {
		n.kickTx()
	}
}

// FaultSetPauseStorm implements fault.NIC: sustained pause frames pin the
// RX XOFF toward the switch, exactly as a congested downstream would.
func (n *NIC) FaultSetPauseStorm(on bool) {
	n.storm = on
	n.updateRxPFC()
}

// FaultSetLineMult implements fault.Link: lane degradation stretches TX
// serialization by mult (>= 1); mult <= 1 restores the configured rate.
func (n *NIC) FaultSetLineMult(mult float64) {
	if mult < 1 {
		mult = 1
	}
	n.lineMult = mult
}

// SentTotal reports lines emitted since construction (never reset).
func (n *NIC) SentTotal() int64 { return n.sentTotal }

// DeliveredTotal reports lines DMA-completed since construction (never reset).
func (n *NIC) DeliveredTotal() int64 { return n.deliveredTotal }

// queued reports lines this NIC currently holds on wires, in its RX buffer,
// or in flight inside the host (a conservation term).
func (n *NIC) queued() int64 { return n.wireTx + n.wireRx + int64(n.rxQ.n) + n.inHost }

// TxBytesPerSec reports emitted wire bandwidth over the window.
func (n *NIC) TxBytesPerSec() float64 { return n.Sent.BytesPerSecond() }

// RxBytesPerSec reports delivered DMA bandwidth over the window.
func (n *NIC) RxBytesPerSec() float64 { return n.Delivered.BytesPerSecond() }

// ResetStats starts a new measurement window.
func (n *NIC) ResetStats() {
	n.Sent.Reset()
	n.Delivered.Reset()
	n.Dropped.Reset()
	n.TxPauseFrac.Reset()
	n.RxPauseFrac.Reset()
	n.RxQueueOcc.Reset()
}
