// Package store is hostnetd's persistent content-addressed result store:
// canonical-spec SHA-256 -> checksummed result bytes, on disk, shareable
// across a fleet of daemons pointed at a common directory.
//
// Determinism makes every result a pure function of its spec (the
// byte-identity tests in internal/exp pin this), so the store needs no
// coherence protocol: any writer storing under a key writes the same bytes
// as any other, and last-rename-wins is indistinguishable from
// first-write-wins. The store only has to guarantee that what it serves is
// exactly what was stored:
//
//   - Writes are crash-atomic: payloads land in a temp file in the store
//     directory, are fsynced, and are renamed into place. A crash between
//     write and rename leaves only a temp file, which the next Open sweeps
//     away; a reader never observes a half-written entry under its key.
//   - Entries are framed with a magic, the payload length, and a SHA-256 of
//     the payload. A flipped bit or a truncated tail fails verification on
//     read; the damaged file is quarantined (moved aside, never deleted, so
//     operators can inspect it) and the lookup reports a miss — corruption
//     is re-simulated around, never served.
//   - The index is rebuilt by directory scan on Open, so the store survives
//     restarts with no journal to replay.
//   - Capacity is a payload-byte cap enforced by GC in last-access order
//     (access times persist via file mtimes, so the order survives
//     restarts too).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Entry framing: magic | 8-byte big-endian payload length | 32-byte
// SHA-256 of the payload | payload.
const (
	magic      = "HNR1"
	headerSize = len(magic) + 8 + sha256.Size
)

// quarantineDir is the subdirectory damaged entries are moved into.
const quarantineDir = "quarantine"

// tmpPrefix marks in-progress writes; Open removes leftovers.
const tmpPrefix = ".tmp-"

// Config tunes a store. The zero value is usable.
type Config struct {
	// MaxBytes caps the total payload bytes held before GC evicts
	// least-recently-accessed entries. 0 means the 1 GiB default; negative
	// disables the cap.
	MaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxBytes == 0 {
		c.MaxBytes = 1 << 30
	}
	return c
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries     int   // entries currently indexed
	Bytes       int64 // payload bytes currently indexed
	Hits        int64 // Gets served
	Misses      int64 // Gets that found nothing (or only damage)
	Puts        int64 // Puts that wrote a new entry
	PutNoops    int64 // Puts that found the entry already present
	Evictions   int64 // entries removed by GC
	GCBytes     int64 // payload bytes reclaimed by GC
	Quarantined int64 // damaged entries moved aside
	AtimeErrors int64 // access-time bumps that failed (GC order may go stale)
}

// entry is the in-memory index record for one stored result.
type entry struct {
	size  int64     // payload bytes
	atime time.Time // last access (mirrors file mtime)
}

// Store is an on-disk content-addressed result store. Safe for concurrent
// use; safe to share a directory with other Store instances in other
// processes (writers are atomic and idempotent, readers verify checksums).
type Store struct {
	dir string
	cfg Config

	mu    sync.Mutex
	idx   map[string]entry
	bytes int64

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	putNoops    atomic.Int64
	evictions   atomic.Int64
	gcBytes     atomic.Int64
	quarantined atomic.Int64
	atimeErrs   atomic.Int64

	atimeLogOnce sync.Once

	// chtimes bumps an entry's access time on Get; a func field so tests can
	// inject failures (the suite runs as root, where permission-based
	// injection does not bite).
	chtimes func(path string, atime, mtime time.Time) error

	// crashBeforeRename (tests only) makes Put stop after the temp file is
	// written and synced, simulating a kill before the rename commits.
	crashBeforeRename bool
}

// errCrashed is what Put reports under the crashBeforeRename test hook.
var errCrashed = errors.New("store: simulated crash before rename")

// Open creates (if needed) and indexes the store directory: valid-looking
// entries are indexed by filename, leftover temp files from interrupted
// writes are removed, and files too short to frame a payload are
// quarantined immediately. Payload checksums are verified lazily on Get,
// not here, so Open stays O(entries) in stat calls, not O(bytes).
func Open(dir string, cfg Config) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, cfg: cfg.withDefaults(), idx: make(map[string]entry), chtimes: os.Chtimes}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		switch {
		case de.IsDir():
			continue // quarantine/ and anything else foreign
		case strings.HasPrefix(name, tmpPrefix):
			// An interrupted write: the rename never committed, so the key
			// was never stored. Sweep it.
			os.Remove(filepath.Join(dir, name))
			continue
		case !validKey(name):
			continue // foreign file; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if info.Size() < int64(headerSize) {
			// Cannot even hold a frame: damaged beyond lazy verification.
			s.quarantine(name)
			continue
		}
		s.idx[name] = entry{size: info.Size() - int64(headerSize), atime: info.ModTime()}
		s.bytes += info.Size() - int64(headerSize)
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether a key is a well-formed content address: a
// lowercase hex SHA-256. Everything else is rejected so keys can never
// traverse outside the store directory.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the payload stored under key, or ok=false if the key is
// absent or the entry failed verification (in which case it has been
// quarantined). A hit refreshes the entry's access time, persisting the GC
// order across restarts via the file mtime.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, key)
	if _, ok := s.idx[key]; !ok {
		// Another process sharing the directory may have stored it after we
		// scanned; adopt the file if it appeared.
		info, err := os.Stat(path)
		if err != nil || info.Size() < int64(headerSize) {
			s.misses.Add(1)
			return nil, false
		}
		s.idx[key] = entry{size: info.Size() - int64(headerSize), atime: info.ModTime()}
		s.bytes += info.Size() - int64(headerSize)
	}
	payload, err := readEntry(path)
	if err != nil {
		// Damaged: quarantine rather than serve, and forget the index slot
		// so the next Put can re-store a good copy.
		s.dropLocked(key)
		s.quarantine(key)
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	if err := s.chtimes(path, now, now); err != nil {
		// Serving the payload is still correct — only the persisted GC
		// recency order degrades toward scan-time mtimes. Count every
		// failure (hostnetd_store_atime_errors_total) but log just once:
		// a read-only or misbehaving filesystem would fail on every Get.
		s.atimeErrs.Add(1)
		s.atimeLogOnce.Do(func() {
			log.Printf("store: bumping access time of %s: %v (GC recency order may go stale; counting further failures silently)", key, err)
		})
	}
	e := s.idx[key]
	e.atime = now
	s.idx[key] = e
	s.hits.Add(1)
	return payload, true
}

// readEntry reads and verifies one entry file.
func readEntry(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad frame in %s", filepath.Base(path))
	}
	n := binary.BigEndian.Uint64(b[len(magic) : len(magic)+8])
	payload := b[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("store: %s: payload %d bytes, frame says %d", filepath.Base(path), len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], b[len(magic)+8:headerSize]) {
		return nil, fmt.Errorf("store: %s: payload checksum mismatch", filepath.Base(path))
	}
	return payload, nil
}

// Put stores payload under key, atomically (temp file + rename) and
// idempotently: if the key is already present with the right size the call
// is a no-op — determinism guarantees the bytes match, so rewriting would
// only churn the disk.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.idx[key]; ok && e.size == int64(len(payload)) {
		s.putNoops.Add(1)
		return nil
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint64(hdr[len(magic):], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[len(magic)+8:], sum[:])
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	if s.crashBeforeRename {
		return errCrashed
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", key, err)
	}
	if old, ok := s.idx[key]; ok {
		s.bytes -= old.size // replaced a differently-sized (stale) entry
	}
	s.idx[key] = entry{size: int64(len(payload)), atime: time.Now()}
	s.bytes += int64(len(payload))
	s.puts.Add(1)
	s.gcLocked(key)
	return nil
}

// gcLocked evicts least-recently-accessed entries until the payload-byte
// total is back under the cap. The entry named keep (the one just stored)
// is never evicted, so a single oversized result is served at least once
// rather than thrashing.
func (s *Store) gcLocked(keep string) {
	if s.cfg.MaxBytes < 0 || s.bytes <= s.cfg.MaxBytes {
		return
	}
	type cand struct {
		key string
		entry
	}
	cands := make([]cand, 0, len(s.idx))
	for k, e := range s.idx {
		if k != keep {
			cands = append(cands, cand{k, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].atime.Equal(cands[j].atime) {
			return cands[i].atime.Before(cands[j].atime)
		}
		return cands[i].key < cands[j].key // deterministic tie-break
	})
	for _, c := range cands {
		if s.bytes <= s.cfg.MaxBytes {
			return
		}
		os.Remove(filepath.Join(s.dir, c.key))
		s.dropLocked(c.key)
		s.evictions.Add(1)
		s.gcBytes.Add(c.size)
	}
}

// dropLocked forgets an index slot and its byte accounting.
func (s *Store) dropLocked(key string) {
	if e, ok := s.idx[key]; ok {
		s.bytes -= e.size
		delete(s.idx, key)
	}
}

// quarantine moves a damaged entry aside (best effort) so it is never
// served again but remains inspectable.
func (s *Store) quarantine(name string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	os.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", name, time.Now().UnixNano()))
	if os.Rename(filepath.Join(s.dir, name), dst) == nil {
		s.quarantined.Add(1)
	}
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Bytes reports the indexed payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.idx), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:     entries,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		PutNoops:    s.putNoops.Load(),
		Evictions:   s.evictions.Load(),
		GCBytes:     s.gcBytes.Load(),
		Quarantined: s.quarantined.Load(),
		AtimeErrors: s.atimeErrs.Load(),
	}
}

// verifyAll re-reads and verifies every indexed entry (tests and offline
// fsck): damaged entries are quarantined and dropped. It returns the number
// quarantined.
func (s *Store) verifyAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.idx))
	for k := range s.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bad := 0
	for _, k := range keys {
		if _, err := readEntry(filepath.Join(s.dir, k)); err != nil {
			s.dropLocked(k)
			s.quarantine(k)
			bad++
		}
	}
	return bad
}
