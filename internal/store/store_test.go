package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func keyOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{})
	payload := []byte(`{"spec":{"experiment":"fig3"},"result":[1,2,3]}`)
	key := keyOf([]byte("spec-canonical"))
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	// Idempotent re-Put is a no-op.
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.PutNoops != 1 || st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("stats after idempotent re-put: %+v", st)
	}
}

func TestResultsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("r", 4096))
	key := keyOf(payload)
	s1 := mustOpen(t, dir, Config{})
	if err := s1.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	// A second Store over the same directory (a restarted daemon, or a
	// fleet peer) rebuilds the index by scan and serves the entry.
	s2 := mustOpen(t, dir, Config{})
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store missed the entry (ok=%v)", ok)
	}
	if s2.Len() != 1 || s2.Bytes() != int64(len(payload)) {
		t.Fatalf("reopened accounting: %d entries, %d bytes", s2.Len(), s2.Bytes())
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{})
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), "../../../../etc/passwd",
		strings.Repeat("A", 64), // uppercase hex is not canonical
	} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit on an invalid key", key)
		}
	}
}

// TestCrashBetweenWriteAndRename simulates a kill after the temp file is
// fully written but before the rename commits: the key must not be served,
// restart must sweep the temp file, and a retried Put must succeed.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("p", 1000))
	key := keyOf(payload)

	s1 := mustOpen(t, dir, Config{})
	s1.crashBeforeRename = true
	if err := s1.Put(key, payload); err != errCrashed {
		t.Fatalf("Put under crash hook = %v, want errCrashed", err)
	}
	// The temp file exists; the entry does not.
	if n := countTemps(t, dir); n != 1 {
		t.Fatalf("temp files after crash = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, key)); !os.IsNotExist(err) {
		t.Fatalf("entry file exists despite crash (err=%v)", err)
	}

	// "Restart": a fresh Open recovers the index and sweeps the leftover.
	s2 := mustOpen(t, dir, Config{})
	if n := countTemps(t, dir); n != 0 {
		t.Fatalf("temp files after reopen = %d, want 0", n)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("partial write was served after restart")
	}
	if err := s2.Put(key, payload); err != nil {
		t.Fatalf("retried Put: %v", err)
	}
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("retried Put not served")
	}
}

func countTemps(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			n++
		}
	}
	return n
}

// TestCorruptionQuarantined flips every byte position of a stored entry in
// turn (header and payload alike) and requires that the damaged file is
// never served: the frame or checksum check fails, the file is moved to
// quarantine/, and the slot reads as a miss.
func TestCorruptionQuarantined(t *testing.T) {
	payload := []byte(`{"spec":{"experiment":"rdma"},"result":[{"Cores":2}]}`)
	key := keyOf(payload)
	fileLen := headerSize + len(payload)

	rng := rand.New(rand.NewSource(1))
	positions := []int{0, 3, 4, 11, 12, 43, headerSize, fileLen - 1} // frame corners
	for i := 0; i < 24; i++ {
		positions = append(positions, rng.Intn(fileLen))
	}
	for _, pos := range positions {
		t.Run(fmt.Sprintf("flip@%d", pos), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Config{})
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[pos] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			// Reopen so the lazily-verified entry is re-read from disk.
			s2 := mustOpen(t, dir, Config{})
			if _, ok := s2.Get(key); ok {
				t.Fatalf("flipped byte at %d was served", pos)
			}
			if st := s2.Stats(); st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1 (stats %+v)", st.Quarantined, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged file still in place (err=%v)", err)
			}
			qents, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
			if len(qents) != 1 {
				t.Fatalf("quarantine holds %d files, want 1", len(qents))
			}
			// The slot is reusable: a fresh Put stores a good copy.
			if err := s2.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-stored entry not served after quarantine")
			}
		})
	}
}

// TestTruncationDetected cuts a stored entry short at several lengths; a
// truncated file must never be served.
func TestTruncationDetected(t *testing.T) {
	payload := []byte(strings.Repeat("z", 500))
	key := keyOf(payload)
	for _, keep := range []int{0, 1, headerSize - 1, headerSize, headerSize + 250, headerSize + 499} {
		dir := t.TempDir()
		s := mustOpen(t, dir, Config{})
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(filepath.Join(dir, key), int64(keep)); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, dir, Config{})
		if _, ok := s2.Get(key); ok {
			t.Fatalf("entry truncated to %d bytes was served", keep)
		}
	}
}

// TestGCAccounting is the byte-accounting regression test: through a
// sequence of puts, hits, and evictions, Stats.Bytes must equal the sum of
// the payload sizes actually held, the cap must be enforced, eviction must
// follow last-access order, and a reopened store must agree with the
// directory contents.
func TestGCAccounting(t *testing.T) {
	dir := t.TempDir()
	const cap = 10_000
	s := mustOpen(t, dir, Config{MaxBytes: cap})

	payload := func(i, size int) (string, []byte) {
		b := bytes.Repeat([]byte{byte('a' + i)}, size)
		return keyOf(b), b
	}
	// Four 3 KB entries: the fourth put overflows the 10 KB cap and must
	// evict exactly the least-recently-accessed one.
	var keys []string
	for i := 0; i < 3; i++ {
		k, b := payload(i, 3000)
		keys = append(keys, k)
		if err := s.Put(k, b); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes for atime order
	}
	// Touch entry 0 so entry 1 is now the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("touch miss")
	}
	time.Sleep(2 * time.Millisecond)
	k3, b3 := payload(3, 3000)
	keys = append(keys, k3)
	if err := s.Put(k3, b3); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Evictions != 1 || st.GCBytes != 3000 {
		t.Fatalf("evictions=%d gcBytes=%d, want 1/3000 (stats %+v)", st.Evictions, st.GCBytes, st)
	}
	if st.Entries != 3 || st.Bytes != 9000 {
		t.Fatalf("entries=%d bytes=%d, want 3/9000", st.Entries, st.Bytes)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU victim (entry 1) still served; eviction order wrong")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("surviving entry %s evicted", k[:8])
		}
	}

	// Accounting must match the directory both live and after reopen.
	checkDirMatches := func(st Stats) {
		t.Helper()
		var disk int64
		n := 0
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if e.IsDir() || !validKey(e.Name()) {
				continue
			}
			info, _ := e.Info()
			disk += info.Size() - int64(headerSize)
			n++
		}
		if int64(st.Bytes) != disk || st.Entries != n {
			t.Fatalf("accounting (%d entries, %d bytes) disagrees with directory (%d, %d)",
				st.Entries, st.Bytes, n, disk)
		}
	}
	checkDirMatches(s.Stats())
	s2 := mustOpen(t, dir, Config{MaxBytes: cap})
	checkDirMatches(s2.Stats())
	if s2.Bytes() > cap {
		t.Fatalf("reopened store over cap: %d > %d", s2.Bytes(), cap)
	}
}

// TestGCNeverEvictsFreshOversized pins the single-oversized-result policy:
// an entry larger than the whole cap is stored (and evicts everything
// else) rather than thrashing.
func TestGCNeverEvictsFreshOversized(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{MaxBytes: 1000})
	small := bytes.Repeat([]byte("s"), 100)
	big := bytes.Repeat([]byte("b"), 5000)
	if err := s.Put(keyOf(small), small); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyOf(big), big); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyOf(big)); !ok {
		t.Fatal("oversized entry evicted on insert")
	}
	if _, ok := s.Get(keyOf(small)); ok {
		t.Fatal("small entry survived a GC that had to reclaim everything")
	}
}

// TestUnlimitedCap pins that a negative MaxBytes disables GC.
func TestUnlimitedCap(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{MaxBytes: -1})
	for i := 0; i < 8; i++ {
		b := bytes.Repeat([]byte{byte(i)}, 4096)
		if err := s.Put(keyOf(b), b); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 8 {
		t.Fatalf("unlimited store evicted: %+v", st)
	}
}

// TestConcurrentAccess hammers one store from many goroutines (the race
// tier runs this under -race): concurrent Puts of the same and different
// keys, Gets, and Stats must stay consistent.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{MaxBytes: 50_000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				b := bytes.Repeat([]byte{byte(i % 10)}, 500+(i%10))
				k := keyOf(b)
				if err := s.Put(k, b); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(k); ok && !bytes.Equal(got, b) {
					t.Errorf("Get returned wrong bytes")
					return
				}
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if bad := s.verifyAll(); bad != 0 {
		t.Fatalf("verifyAll quarantined %d entries after concurrent churn", bad)
	}
}

// A failing access-time bump must not fail the Get — the payload is fine,
// only the persisted GC recency order degrades — but it must be counted
// (hostnetd_store_atime_errors_total), never swallowed. The chtimes hook
// injects the failure because the suite runs as root, where permission
// tricks do not bite.
func TestAtimeBumpFailureCountedNotFatal(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{})
	payload := []byte(strings.Repeat("a", 512))
	key := keyOf(payload)
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.chtimes = func(string, time.Time, time.Time) error {
		return fmt.Errorf("injected: read-only filesystem")
	}
	for i := 0; i < 3; i++ {
		got, ok := s.Get(key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("Get %d under failing chtimes = %q, %v; the payload must still be served", i, got, ok)
		}
	}
	st := s.Stats()
	if st.AtimeErrors != 3 {
		t.Fatalf("AtimeErrors = %d after 3 failing bumps, want 3", st.AtimeErrors)
	}
	if st.Hits != 3 {
		t.Fatalf("Hits = %d, want 3 (bump failure must not demote the hit)", st.Hits)
	}
}

// The reason the bump exists at all: access recency persists via file
// mtimes, so after a restart GC must evict the key that was NOT read in
// the previous life, even though it was written later. This pins the
// restart GC order against the in-memory atime order.
func TestGCOrderSurvivesRestartViaAtimeBump(t *testing.T) {
	dir := t.TempDir()
	cold := []byte(strings.Repeat("c", 600))
	warm := []byte(strings.Repeat("w", 600))
	coldKey, warmKey := keyOf(cold), keyOf(warm)

	s1 := mustOpen(t, dir, Config{MaxBytes: 2000})
	if err := s1.Put(warmKey, warm); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(coldKey, cold); err != nil {
		t.Fatal(err)
	}
	// Push both mtimes into the past, cold newer than warm on disk: if the
	// Get bump below were lost, a restarted GC would evict warm first.
	past := time.Now().Add(-2 * time.Hour)
	for key, mt := range map[string]time.Time{warmKey: past, coldKey: past.Add(time.Minute)} {
		if err := os.Chtimes(filepath.Join(dir, key), mt, mt); err != nil {
			t.Fatalf("arranging mtimes: %v", err)
		}
	}
	if _, ok := s1.Get(warmKey); !ok { // bumps warm's mtime to now
		t.Fatal("warm key vanished")
	}

	s2 := mustOpen(t, dir, Config{MaxBytes: 2000}) // restart: order rebuilt from mtimes
	filler := []byte(strings.Repeat("f", 1200))
	if err := s2.Put(keyOf(filler), filler); err != nil { // forces GC of one old entry
		t.Fatal(err)
	}
	if _, ok := s2.Get(warmKey); !ok {
		t.Fatal("recently accessed key evicted after restart: the atime bump did not persist")
	}
	if _, ok := s2.Get(coldKey); ok {
		t.Fatal("cold key survived GC ahead of the accessed one: wrong eviction order")
	}
}

// The degradation when bumps fail, pinned: recency falls back to write
// order, so the previously read key is evicted like any other old entry.
// This is what hostnetd_store_atime_errors_total warns about.
func TestGCOrderDegradesWhenBumpFails(t *testing.T) {
	dir := t.TempDir()
	cold := []byte(strings.Repeat("c", 600))
	warm := []byte(strings.Repeat("w", 600))
	coldKey, warmKey := keyOf(cold), keyOf(warm)

	s1 := mustOpen(t, dir, Config{MaxBytes: 2000})
	s1.chtimes = func(string, time.Time, time.Time) error {
		return fmt.Errorf("injected: bump lost")
	}
	if err := s1.Put(warmKey, warm); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(coldKey, cold); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * time.Hour)
	for key, mt := range map[string]time.Time{warmKey: past, coldKey: past.Add(time.Minute)} {
		if err := os.Chtimes(filepath.Join(dir, key), mt, mt); err != nil {
			t.Fatalf("arranging mtimes: %v", err)
		}
	}
	if _, ok := s1.Get(warmKey); !ok {
		t.Fatal("warm key vanished")
	}
	if got := s1.Stats().AtimeErrors; got != 1 {
		t.Fatalf("AtimeErrors = %d, want 1", got)
	}

	s2 := mustOpen(t, dir, Config{MaxBytes: 2000})
	filler := []byte(strings.Repeat("f", 1200))
	if err := s2.Put(keyOf(filler), filler); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(warmKey); ok {
		t.Fatal("warm key survived: the failed bump unexpectedly persisted recency")
	}
}
