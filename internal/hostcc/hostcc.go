// Package hostcc implements a host congestion controller in the spirit of
// hostCC (Agarwal et al., SIGCOMM 2023), applied to the direction the paper
// outlines in §7: allocating host-network resources even when all traffic is
// contained within a single host.
//
// The controller samples sub-microsecond host congestion signals — IIO
// write-credit occupancy (the P2M-Write domain running out of spare credits)
// and the CHA write backlog (the red regime's N_waiting) — and throttles C2M
// cores' issue rate with AIMD, modeling per-core memory-bandwidth allocation
// hardware (Intel MBA-style). In the red regime this returns P2M throughput
// toward its isolated rate at a modest, controlled C2M cost; in the blue
// regime the signals stay quiet and the controller does nothing.
package hostcc

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cha"
	"repro/internal/cpu"
	"repro/internal/iio"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config tunes the controller.
type Config struct {
	// Interval is the sampling/actuation period.
	Interval sim.Time
	// IIOOccHigh marks congestion when the instantaneous IIO write-credit
	// occupancy reaches this level (spare credits nearly gone).
	IIOOccHigh int
	// BacklogHigh marks congestion when the CHA write backlog reaches this
	// level.
	BacklogHigh int
	// Step is the additive issue-gap increase applied to every managed core
	// per congested interval.
	Step sim.Time
	// MaxGap bounds the throttle.
	MaxGap sim.Time
	// Relax is the multiplicative gap decay per uncongested interval
	// (0 < Relax < 1).
	Relax float64

	// Audit, when non-nil, receives the controller's window invariant.
	Audit *audit.Auditor
}

// DefaultConfig returns a controller tuned for the Cascade Lake preset: the
// IIO threshold sits just under the 92-credit limit and the backlog
// threshold just under the level at which P2M-Write latency inflation
// becomes throughput loss.
func DefaultConfig() Config {
	return Config{
		Interval:    2 * sim.Microsecond,
		IIOOccHigh:  80,
		BacklogHigh: 40,
		Step:        2 * sim.Nanosecond,
		MaxGap:      60 * sim.Nanosecond,
		Relax:       0.75,
	}
}

// Controller throttles a set of C2M cores based on host congestion signals.
type Controller struct {
	eng   *sim.Engine
	cfg   Config
	io    *iio.IIO
	ch    *cha.CHA
	cores []*cpu.Core

	baseGap sim.Time
	gap     sim.Time
	running bool
	tickFn  sim.EventFunc // bound tick handler: one event per interval

	// Throttle tracks the applied issue gap over time (ns average).
	Throttle *telemetry.Integrator
	// CongestedFrac measures how often the congestion signal fired.
	Congested *telemetry.FracTimer
}

// New builds a controller managing the given cores.
func New(eng *sim.Engine, cfg Config, io *iio.IIO, ch *cha.CHA, cores []*cpu.Core) *Controller {
	if cfg.Interval <= 0 || cfg.Relax <= 0 || cfg.Relax >= 1 {
		panic("hostcc: need Interval > 0 and 0 < Relax < 1")
	}
	c := &Controller{
		eng:       eng,
		cfg:       cfg,
		io:        io,
		ch:        ch,
		cores:     cores,
		Throttle:  telemetry.NewIntegrator(eng),
		Congested: telemetry.NewFracTimer(eng),
	}
	if len(cores) > 0 {
		c.baseGap = cores[0].IssueGap()
		c.gap = c.baseGap
	}
	c.tickFn = c.tickEvent
	eng.Register(c)
	if aud := cfg.Audit; aud.Enabled() {
		aud.Check("hostcc", "gap", func() (bool, string) {
			if c.gap < c.baseGap || c.gap > cfg.MaxGap {
				return false, fmt.Sprintf("issue gap %v outside [%v, %v]", c.gap, c.baseGap, cfg.MaxGap)
			}
			return true, ""
		})
	}
	return c
}

func (c *Controller) tickEvent(any) { c.tick() }

// Start begins the control loop at time t.
func (c *Controller) Start(t sim.Time) {
	if c.running {
		return
	}
	c.running = true
	c.eng.AtFunc(t, c.tickFn, nil)
}

// congested evaluates the host congestion signal right now.
func (c *Controller) congested() bool {
	if c.io.Stats().WriteOcc.Level() >= c.cfg.IIOOccHigh {
		return true
	}
	return c.ch.Stats().WBacklog.Level() >= c.cfg.BacklogHigh
}

func (c *Controller) tick() {
	cong := c.congested()
	c.Congested.Set(cong)
	if cong {
		c.gap += c.cfg.Step
		if c.gap > c.cfg.MaxGap {
			c.gap = c.cfg.MaxGap
		}
	} else {
		relaxed := sim.Time(float64(c.gap-c.baseGap) * c.cfg.Relax)
		c.gap = c.baseGap + relaxed
	}
	for _, core := range c.cores {
		core.SetIssueGap(c.gap)
	}
	c.Throttle.Set(int(c.gap / sim.Nanosecond))
	c.eng.AfterFunc(c.cfg.Interval, c.tickFn, nil)
}

// GapNanos reports the currently applied issue gap in nanoseconds.
func (c *Controller) GapNanos() float64 { return float64(c.gap) / 1e3 }

// controllerState is the snapshot of a Controller.
type controllerState struct {
	baseGap, gap sim.Time
	running      bool
}

// SaveState implements sim.Stateful.
func (c *Controller) SaveState() any {
	return controllerState{baseGap: c.baseGap, gap: c.gap, running: c.running}
}

// LoadState implements sim.Stateful.
func (c *Controller) LoadState(state any) {
	st := state.(controllerState)
	c.baseGap, c.gap, c.running = st.baseGap, st.gap, st.running
}
