package hostcc

import (
	"testing"

	"repro/internal/cha"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

type rig struct {
	eng   *sim.Engine
	io    *iio.IIO
	ch    *cha.CHA
	cores []*cpu.Core
}

func newRig(nCores int) *rig {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mc := dram.New(eng, dram.DefaultConfig(), mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	io := iio.New(eng, iio.DefaultConfig(), ch)
	r := &rig{eng: eng, io: io, ch: ch}
	for i := 0; i < nCores; i++ {
		c := cpu.New(eng, cpu.DefaultConfig(), i,
			ch, workload.NewSeqRead(mem.Addr(i)<<30, 1<<30))
		c.Start(0)
		r.cores = append(r.cores, c)
	}
	return r
}

func TestControllerRelaxesWhenQuiet(t *testing.T) {
	r := newRig(2)
	ctl := New(r.eng, DefaultConfig(), r.io, r.ch, r.cores)
	ctl.Start(0)
	r.eng.RunUntil(100 * sim.Microsecond)
	// No P2M traffic at all: the signal never fires and the throttle stays
	// at the base gap.
	if frac := ctl.Congested.Frac(); frac != 0 {
		t.Fatalf("congested %.2f of the time on an idle IIO", frac)
	}
	if gap := ctl.GapNanos(); gap > 1 {
		t.Fatalf("throttle %.1f ns without congestion", gap)
	}
}

func TestControllerThrottlesOnIIOSignal(t *testing.T) {
	r := newRig(2)
	cfg := DefaultConfig()
	cfg.IIOOccHigh = 1 // make any P2M write in flight look congested
	ctl := New(r.eng, cfg, r.io, r.ch, r.cores)
	ctl.Start(0)
	// Keep one DMA write in flight continuously.
	var pump func()
	pump = func() {
		if !r.io.TryWrite(0, 0, nil) {
			r.io.NotifyWrite(pump)
			return
		}
		r.eng.After(100*sim.Nanosecond, pump)
	}
	r.eng.At(0, pump)
	r.eng.RunUntil(100 * sim.Microsecond)
	if frac := ctl.Congested.Frac(); frac < 0.3 {
		t.Fatalf("congestion signal fired only %.2f of the time", frac)
	}
	if gap := ctl.GapNanos(); gap < 5 {
		t.Fatalf("throttle %.1f ns despite persistent congestion", gap)
	}
	for _, c := range r.cores {
		if c.IssueGap() < 5*sim.Nanosecond {
			t.Fatalf("core gap %v not applied", c.IssueGap())
		}
	}
}

func TestThrottleBounded(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig()
	cfg.IIOOccHigh = 0 // always congested
	cfg.MaxGap = 20 * sim.Nanosecond
	ctl := New(r.eng, cfg, r.io, r.ch, r.cores)
	ctl.Start(0)
	r.eng.RunUntil(200 * sim.Microsecond)
	if gap := ctl.GapNanos(); gap > 20.5 {
		t.Fatalf("throttle %.1f ns exceeded MaxGap", gap)
	}
}

func TestThrottleDecaysAfterCongestion(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig()
	ctl := New(r.eng, cfg, r.io, r.ch, r.cores)
	// Manufacture a throttled state, then run with no congestion: the gap
	// must decay geometrically back toward the base.
	ctl.gap = 40 * sim.Nanosecond
	ctl.Start(0)
	r.eng.RunUntil(100 * sim.Microsecond)
	if gap := ctl.GapNanos(); gap > 2 {
		t.Fatalf("throttle %.1f ns did not decay", gap)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	r := newRig(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Relax = 1.5
	New(r.eng, cfg, r.io, r.ch, r.cores)
}

func TestStartIdempotent(t *testing.T) {
	r := newRig(1)
	ctl := New(r.eng, DefaultConfig(), r.io, r.ch, r.cores)
	ctl.Start(0)
	ctl.Start(0) // second start must not double the tick cadence
	r.eng.RunUntil(10 * sim.Microsecond)
	// 2us interval over 10us: ~5-6 ticks; a doubled loop would show ~11.
	// The throttle integrator's update count isn't exposed, so assert via
	// engine events indirectly: just ensure the run completes and the gap is
	// sane.
	if gap := ctl.GapNanos(); gap > 1 { // base gap is 0.3 ns
		t.Fatalf("unexpected throttle %.1f", gap)
	}
}
