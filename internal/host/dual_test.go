package host

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/periph"
	"repro/internal/workload"
)

func newDual() *DualHost { return NewDual(CascadeLake(), numa.DefaultConfig()) }

func TestDualLocalMatchesSingleSocket(t *testing.T) {
	h := newDual()
	h.AddCoreOn(0, workload.NewSeqRead(h.RegionOn(0, 1<<30), 1<<30))
	h.Run(warm, win)
	lat := h.Cores[0].Stats().LFBLat.AvgNanos()
	if lat < 60 || lat > 80 {
		t.Fatalf("local read latency %.1f ns, want the single-socket ~70", lat)
	}
	if h.UPI.Stats().RemoteReads.Count() != 0 {
		t.Fatalf("local traffic crossed the UPI")
	}
}

func TestDualRemoteReadLatency(t *testing.T) {
	h := newDual()
	// Core on socket 0, memory homed on socket 1.
	h.AddCoreOn(0, workload.NewSeqRead(h.RegionOn(1, 1<<30), 1<<30))
	h.Run(warm, win)
	lat := h.Cores[0].Stats().LFBLat.AvgNanos()
	// Local ~70 + request hop ~40 + data hop ~40 + serialization: ~150-165.
	if lat < 135 || lat > 180 {
		t.Fatalf("remote read latency %.1f ns, want ~150", lat)
	}
	if h.UPI.Stats().RemoteReads.Count() == 0 {
		t.Fatalf("remote traffic did not cross the UPI")
	}
	// The credit bound bites: remote throughput = C*64/L_remote.
	bw := h.Cores[0].Stats().ReadBytesPerSec()
	want := 12 * 64 / (lat * 1e-9)
	if bw < want*0.9 || bw > want*1.1 {
		t.Fatalf("remote bw %.2f GB/s, want ~%.2f (credit bound)", bw/1e9, want/1e9)
	}
}

func TestDualUPILinkBound(t *testing.T) {
	h := newDual()
	// Six cores on socket 0 all reading socket 1: demand exceeds the ~20 GB/s
	// per-direction link.
	for i := 0; i < 6; i++ {
		h.AddCoreOn(0, workload.NewSeqRead(h.RegionOn(1, 1<<30), 1<<30))
	}
	h.Run(warm, win)
	bw := h.C2MBW()
	if bw > 20.5e9 {
		t.Fatalf("remote bandwidth %.2f GB/s exceeds the UPI direction capacity", bw/1e9)
	}
	if bw < 14e9 {
		t.Fatalf("remote bandwidth %.2f GB/s implausibly low", bw/1e9)
	}
	if h.UPI.Stats().LinkBusy[1].Frac() < 0.5 {
		t.Fatalf("return direction busy only %.0f%%", h.UPI.Stats().LinkBusy[1].Frac()*100)
	}
}

// Cross-socket blue regime: a remote C2M reader contends with P2M writes at
// the *home* socket's memory controller — contention follows the data, not
// the core.
func TestDualCrossSocketContention(t *testing.T) {
	iso := newDual()
	iso.AddCoreOn(0, workload.NewSeqRead(iso.RegionOn(1, 1<<30), 1<<30))
	iso.Run(warm, win)
	isoBW := iso.C2MBW()

	co := newDual()
	co.AddCoreOn(0, workload.NewSeqRead(co.RegionOn(1, 1<<30), 1<<30))
	// P2M writes into socket 1 memory from socket 1's own IIO.
	co.AddStorageOn(1, periph.BulkConfig(periph.DMAWrite, co.RegionOn(1, 1<<30)))
	co.Run(warm, win)

	degr := isoBW / co.C2MBW()
	t.Logf("remote C2M vs local P2M: degradation %.2fx, P2M %.1f GB/s", degr, co.P2MBW()/1e9)
	// Contention follows the data: the remote reader degrades from queueing
	// at the HOME socket's MC. The relative factor is smaller than the
	// local 1.27x because the UPI hops dominate the remote latency — the
	// same absolute queueing inflates a 155 ns base less than a 70 ns one.
	if degr < 1.05 {
		t.Fatalf("remote C2M degradation %.2fx; contention should follow the data", degr)
	}
	if degr > 1.27 {
		t.Fatalf("remote degradation %.2fx exceeds the local case; the UPI-amortization effect is missing", degr)
	}
	if co.P2MBW() < 13e9 {
		t.Fatalf("P2M degraded (%.1f GB/s) in a blue-regime colocation", co.P2MBW()/1e9)
	}
}

// Socket isolation: traffic on socket 0 does not disturb socket 1's local
// workloads.
func TestDualSocketIsolation(t *testing.T) {
	solo := newDual()
	solo.AddCoreOn(1, workload.NewSeqRead(solo.RegionOn(1, 1<<30), 1<<30))
	solo.Run(warm, win)
	soloBW := solo.Cores[0].Stats().ReadBytesPerSec()

	both := newDual()
	both.AddCoreOn(1, workload.NewSeqRead(both.RegionOn(1, 1<<30), 1<<30))
	for i := 0; i < 3; i++ {
		both.AddCoreOn(0, workload.NewSeqRead(both.RegionOn(0, 1<<30), 1<<30))
	}
	both.AddStorageOn(0, periph.BulkConfig(periph.DMAWrite, both.RegionOn(0, 1<<30)))
	both.Run(warm, win)
	withBW := both.Cores[0].Stats().ReadBytesPerSec()

	if withBW < soloBW*0.98 {
		t.Fatalf("socket-0 traffic disturbed socket 1: %.2f -> %.2f GB/s", soloBW/1e9, withBW/1e9)
	}
}

func TestDualRegionValidation(t *testing.T) {
	h := newDual()
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid socket did not panic")
		}
	}()
	h.RegionOn(2, 1<<20)
}
