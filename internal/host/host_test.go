package host

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	warm = 20 * sim.Microsecond
	win  = 100 * sim.Microsecond
)

func TestC2MReadUnloadedCalibration(t *testing.T) {
	h := New(CascadeLake())
	base := h.Region(1 << 30)
	h.AddCore(workload.NewSeqRead(base, 1<<30))
	h.Run(warm, win)
	lat := h.Cores[0].Stats().LFBLat.AvgNanos()
	// §4.2: unloaded C2M-Read domain latency ~70 ns.
	if lat < 60 || lat > 80 {
		t.Fatalf("unloaded C2M-Read latency = %.1f ns, want ~70", lat)
	}
	// The core keeps all LFB credits in flight.
	if occ := h.Cores[0].Stats().LFBOcc.Max(); occ != 12 {
		t.Fatalf("LFB occupancy max = %d, want 12", occ)
	}
	// Throughput = C*64/L.
	bw := h.C2MReadBW()
	wantBW := 12 * 64 / (lat * 1e-9)
	if bw < wantBW*0.9 || bw > wantBW*1.1 {
		t.Fatalf("C2M-Read bw = %.2f GB/s, want ~%.2f", bw/1e9, wantBW/1e9)
	}
}

func TestC2MWriteUnloadedCalibration(t *testing.T) {
	h := New(CascadeLake())
	base := h.Region(1 << 30)
	h.AddCore(workload.NewSeqReadWrite(base, 1<<30))
	h.Run(warm, win)
	wlat := h.Cores[0].Stats().WriteLat.AvgNanos()
	// §4.2: unloaded C2M-Write domain latency ~10 ns.
	if wlat < 5 || wlat > 15 {
		t.Fatalf("unloaded C2M-Write latency = %.1f ns, want ~10", wlat)
	}
	// 50/50 read/write memory traffic.
	st := h.MC.Stats()
	reads, writes := st.C2MRead.Lines.Count(), st.C2MWrite.Lines.Count()
	ratio := float64(writes) / float64(reads+writes)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("write fraction = %.2f, want ~0.5", ratio)
	}
}

func TestP2MWriteUnloadedCalibration(t *testing.T) {
	h := New(CascadeLake())
	base := h.Region(1 << 30)
	h.AddStorage(periph.ProbeConfig(periph.DMAWrite, base))
	h.Run(200*sim.Microsecond, 500*sim.Microsecond)
	lat := h.IIO.Stats().WriteLat.AvgNanos()
	// §4.2: unloaded P2M-Write domain latency ~300 ns.
	if lat < 270 || lat > 330 {
		t.Fatalf("unloaded P2M-Write latency = %.1f ns, want ~300", lat)
	}
}

func TestP2MWriteBulkSaturatesPCIe(t *testing.T) {
	h := New(CascadeLake())
	base := h.Region(1 << 30)
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, base))
	h.Run(warm, win)
	bw := h.P2MBW()
	// ~14 GB/s achievable on the 16 GB/s link.
	if bw < 13e9 || bw > 14.5e9 {
		t.Fatalf("bulk P2M-Write bw = %.2f GB/s, want ~14", bw/1e9)
	}
	// Spare credits: ~65 needed of 92 (§5.1).
	occ := h.IIO.Stats().WriteOcc.Avg()
	if occ < 50 || occ > 85 {
		t.Fatalf("IIO write occupancy = %.1f, want ~65", occ)
	}
}

func TestP2MReadBulkThroughput(t *testing.T) {
	h := New(CascadeLake())
	base := h.Region(1 << 30)
	h.AddStorage(periph.BulkConfig(periph.DMARead, base))
	h.Run(warm, win)
	bw := h.P2MBW()
	if bw < 13e9 || bw > 14.5e9 {
		t.Fatalf("bulk P2M-Read bw = %.2f GB/s, want ~14", bw/1e9)
	}
}

// The headline blue-regime smoke test: one C2M-Read core colocated with
// bulk P2M writes. C2M latency must inflate (throughput degrades) while P2M
// throughput stays at the link rate, with memory bandwidth far from
// saturated.
func TestBlueRegimeSmoke(t *testing.T) {
	// Isolated C2M baseline.
	iso := New(CascadeLake())
	iso.AddCore(workload.NewSeqRead(iso.Region(1<<30), 1<<30))
	iso.Run(warm, win)
	isoBW := iso.C2MReadBW()

	// Colocated.
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(warm, win)

	coBW := h.C2MReadBW()
	p2m := h.P2MBW()
	degr := isoBW / coBW
	if degr < 1.1 || degr > 2.2 {
		t.Fatalf("C2M degradation = %.2fx, want within the blue-regime band (1.2-1.7)", degr)
	}
	if p2m < 13e9 {
		t.Fatalf("P2M bw degraded to %.2f GB/s; the blue regime leaves P2M intact", p2m/1e9)
	}
	c2mMem, p2mMem := h.MemBW()
	util := (c2mMem + p2mMem) / h.Cfg.TheoreticalMemBW
	if util > 0.75 {
		t.Fatalf("memory utilization %.0f%% — the blue regime must appear before saturation", util*100)
	}
	// Root cause: row miss ratio for C2M reads rises when intermixed.
	misses := h.MC.Stats().C2MRead.RowMissRatio()
	isoMisses := iso.MC.Stats().C2MRead.RowMissRatio()
	if misses <= isoMisses {
		t.Fatalf("row miss ratio did not rise: iso=%.3f co=%.3f", isoMisses, misses)
	}
}

func TestIceLakePreset(t *testing.T) {
	h := New(IceLake())
	base := h.Region(1 << 30)
	h.AddCore(workload.NewSeqRead(base, 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(warm, win)
	if bw := h.P2MBW(); bw < 24e9 {
		t.Fatalf("IceLake P2M bw = %.2f GB/s, want ~28", bw/1e9)
	}
	if h.C2MReadBW() <= 0 {
		t.Fatalf("no C2M progress on IceLake")
	}
}

func TestRegionAllocatorDisjoint(t *testing.T) {
	h := New(CascadeLake())
	a := h.Region(1 << 20)
	b := h.Region(1 << 30)
	c := h.Region(3 << 30)
	d := h.Region(1 << 20)
	if a == b || b == c || c == d {
		t.Fatalf("regions overlap: %x %x %x %x", a, b, c, d)
	}
	if b-a < 1<<30 || c-b < 1<<30 || d-c < 3<<30 {
		t.Fatalf("regions not spaced: %x %x %x %x", a, b, c, d)
	}
}

func TestMaxCoresEnforced(t *testing.T) {
	h := New(CascadeLake())
	for i := 0; i < h.Cfg.MaxCores; i++ {
		h.AddCore(workload.NewSeqRead(h.Region(1<<20), 1<<20))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("exceeding MaxCores did not panic")
		}
	}()
	h.AddCore(workload.NewSeqRead(0, 1<<20))
}

func TestResetStatsClearsWindow(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.Run(warm, win)
	if h.C2MReadBW() <= 0 {
		t.Fatalf("no bandwidth measured")
	}
	h.ResetStats()
	if h.Cores[0].Stats().LinesRead.Count() != 0 {
		t.Fatalf("reset did not clear core counters")
	}
}

func TestMemBWSplitBySource(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(warm, win)
	c2m, p2m := h.MemBW()
	if c2m <= 0 || p2m <= 0 {
		t.Fatalf("split bandwidth: c2m=%.2f p2m=%.2f", c2m/1e9, p2m/1e9)
	}
	// P2M memory traffic should be ~the device bandwidth (DDIO off).
	dev := h.P2MBW()
	if p2m < dev*0.9 || p2m > dev*1.1 {
		t.Fatalf("P2M memory traffic %.2f vs device %.2f GB/s", p2m/1e9, dev/1e9)
	}
}

func TestRandomReadWorkload(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewRandRead(h.Region(5<<30), 5<<30, 7))
	h.Run(warm, win)
	// Random reads suffer row misses: latency above the sequential 70 ns.
	lat := h.Cores[0].Stats().LFBLat.AvgNanos()
	if lat < 70 {
		t.Fatalf("random-read latency %.1f ns should exceed sequential ~70", lat)
	}
	if miss := h.MC.Stats().C2MRead.RowMissRatio(); miss < 0.5 {
		t.Fatalf("random reads should miss rows often, got %.2f", miss)
	}
}

var _ = mem.LineSize // keep mem imported for future assertions
