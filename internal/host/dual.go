package host

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/cha"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/periph"
	"repro/internal/sim"
)

// socketHomeBit selects the home socket from a physical address: regions on
// socket 1 live above 1<<socketHomeBit.
const socketHomeBit = 38

// Socket is one socket's worth of host network inside a DualHost.
type Socket struct {
	MC   *dram.Controller
	CHA  *cha.CHA
	IIO  *iio.IIO
	DDIO *cache.DDIO

	nextRegion mem.Addr
}

// DualHost is a two-socket host joined by a UPI-style interconnect — the
// paper's §7 "multiple sockets" extension. Each socket runs the full
// single-socket model; the numa.Router carries cross-socket traffic.
type DualHost struct {
	Eng     *sim.Engine
	Cfg     Config
	UPI     *numa.Router
	Sockets [2]*Socket

	// Auditor is non-nil iff Cfg.Audit.Enabled; both sockets' components
	// registered their invariants under "s0/"- and "s1/"-prefixed domains.
	Auditor *audit.Auditor

	// Faults is non-nil iff Cfg.Faults is non-empty; windows hit both
	// sockets' MC/IIO and the UPI link.
	Faults *fault.Injector

	Cores       []*cpu.Core
	coreSockets []int
	Devices     []*periph.Storage
}

// NewDual assembles two sockets of the given per-socket config.
func NewDual(cfg Config, upi numa.Config) *DualHost {
	eng := sim.New()
	aud := audit.New(eng, cfg.Audit)
	cfg.Core.Audit = aud
	upi.Audit = aud
	h := &DualHost{Eng: eng, Cfg: cfg, Auditor: aud}
	var chas [2]mem.Submitter
	for s := 0; s < 2; s++ {
		mcCfg := cfg.MC
		mcCfg.Audit = aud
		mcCfg.AuditDomain = fmt.Sprintf("s%d/dram", s)
		chaCfg := cfg.CHA
		chaCfg.Audit = aud
		chaCfg.AuditDomain = fmt.Sprintf("s%d/cha", s)
		mapper := mem.MustMapper(cfg.Mapper)
		mc := dram.New(eng, mcCfg, mapper, nil)
		ddio := cache.NewDDIO(cfg.DDIO)
		c := cha.New(eng, chaCfg, mc, ddio)
		h.Sockets[s] = &Socket{MC: mc, CHA: c, DDIO: ddio}
		chas[s] = c
	}
	h.UPI = numa.New(eng, upi, chas[0], chas[1], func(a mem.Addr) int {
		return int(a >> socketHomeBit & 1)
	})
	for s := 0; s < 2; s++ {
		ioCfg := cfg.IIO
		ioCfg.Audit = aud
		ioCfg.AuditDomain = fmt.Sprintf("s%d/iio", s)
		h.Sockets[s].IIO = iio.New(eng, ioCfg, h.UPI.Port(s))
	}
	h.Faults = fault.NewInjector(eng, cfg.Faults)
	for s := 0; s < 2; s++ {
		h.Faults.AttachDRAM(h.Sockets[s].MC)
		h.Faults.AttachIIO(h.Sockets[s].IIO)
	}
	h.Faults.AttachLink(h.UPI)
	h.Faults.Start()
	return h
}

// RegionOn allocates a fresh 1 GiB-aligned region homed on the given socket.
func (h *DualHost) RegionOn(socket int, bytes int64) mem.Addr {
	if socket < 0 || socket > 1 {
		panic(fmt.Sprintf("host: socket %d out of range", socket))
	}
	s := h.Sockets[socket]
	base := s.nextRegion
	span := (mem.Addr(bytes) + (1 << 30) - 1) &^ ((1 << 30) - 1)
	if span == 0 {
		span = 1 << 30
	}
	s.nextRegion += span
	return base | mem.Addr(socket)<<socketHomeBit
}

// AddCoreOn creates a core on the given socket and starts it at time 0. The
// generator's addresses decide whether its traffic is local or remote.
func (h *DualHost) AddCoreOn(socket int, gen cpu.Generator) *cpu.Core {
	c := cpu.New(h.Eng, h.Cfg.Core, len(h.Cores), h.UPI.Port(socket), gen)
	h.Cores = append(h.Cores, c)
	h.coreSockets = append(h.coreSockets, socket)
	c.Start(0)
	return c
}

// AddStorageOn attaches a device to the given socket's IIO.
func (h *DualHost) AddStorageOn(socket int, cfg periph.Config) *periph.Storage {
	cfg.Audit = h.Auditor
	d := periph.New(h.Eng, cfg, h.Sockets[socket].IIO, len(h.Devices))
	h.Devices = append(h.Devices, d)
	d.Start(0)
	return d
}

// ResetStats starts a fresh window on every probe.
func (h *DualHost) ResetStats() {
	for _, s := range h.Sockets {
		s.MC.Stats().Reset()
		s.CHA.Stats().Reset()
		s.IIO.Stats().Reset()
		s.DDIO.ResetStats()
	}
	h.UPI.Stats().Reset()
	for _, c := range h.Cores {
		c.Stats().Reset()
	}
	for _, d := range h.Devices {
		d.Stats().Reset()
	}
}

// Run warms up, resets probes, and runs the measurement window.
func (h *DualHost) Run(warmup, window sim.Time) {
	h.Eng.RunUntil(h.Eng.Now() + warmup)
	h.ResetStats()
	h.Eng.RunUntil(h.Eng.Now() + window)
	h.Auditor.CheckEnd()
}

// C2MBW sums core bandwidth (bytes/s).
func (h *DualHost) C2MBW() float64 {
	var bw float64
	for _, c := range h.Cores {
		bw += c.Stats().ReadBytesPerSec() + c.Stats().WriteBytesPerSec()
	}
	return bw
}

// P2MBW sums device bandwidth (bytes/s).
func (h *DualHost) P2MBW() float64 {
	var bw float64
	for _, d := range h.Devices {
		bw += d.Stats().BytesPerSec()
	}
	return bw
}
