package host

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// A deliberately injected conservation bug — an IIO write credit released
// that was never acquired — must be detected and attributed to the right
// domain, counter, and simulated instant. This is the auditor's existence
// proof: the clean-run tests only show it stays quiet.
func TestAuditDetectsInjectedDoubleRelease(t *testing.T) {
	cfg := CascadeLake()
	// Every-event cadence so detection lands at the injecting event's
	// timestamp; no FailFast so we can inspect the record.
	cfg.Audit = audit.Config{Enabled: true, Every: 1}
	h := New(cfg)
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))

	const injectAt = 10 * sim.Microsecond
	h.Eng.At(injectAt, func() {
		// Well past any legitimate free count: capacity is double-released
		// even with every credit idle.
		for i := 0; i < 2*h.Cfg.IIO.WriteCredits; i++ {
			h.IIO.InjectDoubleRelease()
		}
	})
	h.Run(warm, win)

	vs := h.Auditor.Violations()
	if len(vs) == 0 {
		t.Fatalf("injected double release went undetected")
	}
	v := vs[0]
	if v.Domain != "iio" || v.Counter != "write_credits" {
		t.Fatalf("attribution = %s/%s, want iio/write_credits\nreport:\n%s",
			v.Domain, v.Counter, h.Auditor.Report())
	}
	if v.At != injectAt {
		t.Fatalf("detected at %v, want the injection instant %v", v.At, injectAt)
	}
	if !strings.Contains(v.Detail, "over-released") {
		t.Fatalf("detail = %q, want over-released", v.Detail)
	}
}

// A healthy colocated run — cores plus a bulk device, every domain loaded —
// must produce zero violations.
func TestAuditCleanOnColocatedRun(t *testing.T) {
	cfg := CascadeLake()
	cfg.Audit = audit.Config{Enabled: true, Every: 256}
	h := New(cfg)
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(warm, win)
	if vs := h.Auditor.Violations(); len(vs) != 0 {
		t.Fatalf("audit flagged a healthy run:\n%s", h.Auditor.Report())
	}
}

// Auditing is purely observational: it schedules no events and touches no
// simulator state, so an audited run and an unaudited run of the same
// scenario are bit-identical.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	run := func(audited bool) (float64, float64, uint64, sim.Time) {
		cfg := CascadeLake()
		cfg.Audit = audit.Config{Enabled: audited, Every: 64}
		h := New(cfg)
		h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
		h.Run(warm, win)
		if audited && len(h.Auditor.Violations()) != 0 {
			t.Fatalf("unexpected violations:\n%s", h.Auditor.Report())
		}
		return h.C2MBW(), h.P2MBW(), h.Eng.Processed(), h.Eng.Now()
	}
	c1, p1, e1, t1 := run(false)
	c2, p2, e2, t2 := run(true)
	if c1 != c2 || p1 != p2 || e1 != e2 || t1 != t2 {
		t.Fatalf("audit perturbed the simulation: off=(%v,%v,%v,%v) on=(%v,%v,%v,%v)",
			c1, p1, e1, t1, c2, p2, e2, t2)
	}
}
