package host

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// finiteGen issues exactly n sequential reads and then stops forever.
type finiteGen struct {
	n    int
	pos  int
	base mem.Addr
}

func (g *finiteGen) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if g.pos >= g.n {
		return cpu.Access{}, 0, false
	}
	a := g.base + mem.Addr(g.pos*mem.LineSize)
	g.pos++
	return cpu.Access{Addr: a, Kind: mem.Read}, now, true
}

func (g *finiteGen) OnComplete(cpu.Access, sim.Time) {}

// A workload that ends must quiesce the host: all in-flight requests drain,
// all credits return, and the event loop goes idle (no leaked periodic
// events besides device arming). This is the lost-wakeup / credit-leak net.
func TestFiniteWorkloadQuiesces(t *testing.T) {
	h := New(CascadeLake())
	gen := &finiteGen{n: 500}
	h.AddCore(gen)
	h.Eng.Run() // run to exhaustion: must terminate
	st := h.Cores[0].Stats()
	if st.LinesRead.Count() != 500 {
		t.Fatalf("completed %d of 500", st.LinesRead.Count())
	}
	if st.LFBOcc.Level() != 0 {
		t.Fatalf("LFB credits leaked: %d", st.LFBOcc.Level())
	}
	if h.MC.Stats().RPQOcc.Level() != 0 || h.MC.Stats().WPQOcc.Level() != 0 {
		t.Fatalf("MC queues not drained")
	}
}

// Tiny queues everywhere: the system still makes progress (retry paths all
// work under extreme backpressure).
func TestTinyQueuesStillProgress(t *testing.T) {
	cfg := CascadeLake()
	cfg.MC.RPQCap = 2
	cfg.MC.WPQCap = 2
	cfg.MC.WPQHigh = 2
	cfg.MC.DrainBatch = 1
	cfg.CHA.ReadEntries = 4
	cfg.CHA.WriteEntries = 4
	cfg.IIO.WriteCredits = 4
	cfg.IIO.ReadCredits = 4
	h := New(cfg)
	h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(10*sim.Microsecond, 30*sim.Microsecond)
	if h.C2MBW() <= 0 || h.P2MBW() <= 0 {
		t.Fatalf("starved under tiny queues: C2M %.2f P2M %.2f GB/s",
			h.C2MBW()/1e9, h.P2MBW()/1e9)
	}
}

// A one-line region: the device wraps on a single cacheline without stalling
// or corrupting accounting.
func TestDegenerateOneLineBuffer(t *testing.T) {
	h := New(CascadeLake())
	cfg := periph.Config{
		Dir: periph.DMAWrite, RequestBytes: 64, QueueDepth: 1,
		DeviceDelay: 100 * sim.Nanosecond, BufBase: h.Region(1 << 20), BufBytes: 64,
	}
	h.AddStorage(cfg)
	h.Run(10*sim.Microsecond, 20*sim.Microsecond)
	if h.Devices[0].Stats().Requests.Count() == 0 {
		t.Fatalf("one-line device made no progress")
	}
}

// Single-channel, single-bank extreme: pure serialization, still correct.
func TestSingleBankExtreme(t *testing.T) {
	cfg := CascadeLake()
	cfg.Mapper = mem.MapperConfig{Channels: 1, Banks: 1, RowBytes: 8192, XORRowIntoBank: false}
	h := New(cfg)
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.Run(10*sim.Microsecond, 30*sim.Microsecond)
	bw := h.C2MReadBW()
	// One channel caps at 23.4 GB/s; one core with 12 credits at ~70ns caps
	// lower. Must be positive and below the single-channel wire.
	if bw <= 0 || bw > 23.5e9 {
		t.Fatalf("single-bank bw %.2f GB/s out of range", bw/1e9)
	}
}

// Drain policy sanity under a pathological mix: many tiny write bursts with
// long idle gaps; MaxWriteAge must flush them all.
func TestWriteAgeFlushesStragglers(t *testing.T) {
	cfg := CascadeLake()
	h := New(cfg)
	// A single probe device sends 4KB every 10us: far below any watermark.
	h.AddStorage(periph.ProbeConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(50*sim.Microsecond, 200*sim.Microsecond)
	dev := h.Devices[0].Stats()
	if dev.Requests.Count() < 10 {
		t.Fatalf("probe requests stalled: %d", dev.Requests.Count())
	}
	if lvl := h.MC.Stats().WPQOcc.Level(); lvl > 64 {
		t.Fatalf("writes parked in the WPQ: %d", lvl)
	}
	_ = dram.DefaultConfig
}
