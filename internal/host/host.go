// Package host assembles the full host network — cores, CHA, LLC/DDIO,
// memory controller, DRAM, IIO, and peripheral devices — and provides the
// two testbed presets of the paper's Table 1.
package host

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/cha"
	"repro/internal/cpu"
	"repro/internal/cxl"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
)

// Config describes a host.
type Config struct {
	Name     string
	MaxCores int
	Core     cpu.Config
	Mapper   mem.MapperConfig
	MC       dram.Config
	CHA      cha.Config
	IIO      iio.Config
	DDIO     cache.DDIOConfig
	// TheoreticalMemBW and TheoreticalPCIeBW (bytes/s) are used by
	// experiments to report utilization like the paper's figures.
	TheoreticalMemBW  float64
	TheoreticalPCIeBW float64

	// Audit configures the invariant auditor. Zero value = disabled: every
	// domain still compiles its registration call, but audit.New returns nil
	// and the nil auditor makes each registration a no-op.
	Audit audit.Config

	// Faults schedules deterministic transient degradation windows through
	// the event engine. Empty = healthy host: fault.NewInjector returns nil
	// and the nil injector adds no events and no hot-path work.
	Faults fault.Schedule
}

// CascadeLake returns the Table 1 Cascade Lake preset: Xeon Gold 6234,
// 8 cores @ 3.3 GHz, 24 MB LLC, 2x DDR4-2933 (46.9 GB/s), 4x P5800X NVMe
// over PCIe (16 GB/s theoretical, ~14 GB/s achievable).
func CascadeLake() Config {
	mc := dram.DefaultConfig()
	mc.Timing = dram.DDR4_2933()
	return Config{
		Name:              "CascadeLake",
		MaxCores:          8,
		Core:              cpu.DefaultConfig(),
		Mapper:            mem.MapperConfig{Channels: 2, Banks: 32, RowBytes: 8192, XORRowIntoBank: true},
		MC:                mc,
		CHA:               cha.DefaultConfig(),
		IIO:               iio.DefaultConfig(),
		DDIO:              cache.DefaultDDIOConfig(false),
		TheoreticalMemBW:  46.9e9,
		TheoreticalPCIeBW: 16e9,
	}
}

// IceLake returns the Table 1 Ice Lake preset: Xeon Platinum 8362, 32 cores
// @ 2.8 GHz, 48 MB LLC, 4x DDR4-3200 (102.4 GB/s), 8x PM173X NVMe over PCIe
// (32 GB/s theoretical, ~28 GB/s achievable). DDIO is permanently enabled on
// this platform.
func IceLake() Config {
	mc := dram.DefaultConfig()
	mc.Timing = dram.DDR4_3200()
	ioCfg := iio.DefaultConfig()
	ioCfg.LinePeriodUp = 2290 * sim.Picosecond
	ioCfg.LinePeriodDown = 2290 * sim.Picosecond
	// The larger platform carries proportionally more IIO buffering.
	ioCfg.WriteCredits = 184
	ioCfg.ReadCredits = 328
	chaCfg := cha.DefaultConfig()
	chaCfg.WriteEntries = 288
	chaCfg.ReadEntries = 512
	return Config{
		Name:              "IceLake",
		MaxCores:          32,
		Core:              cpu.DefaultConfig(),
		Mapper:            mem.MapperConfig{Channels: 4, Banks: 32, RowBytes: 8192, XORRowIntoBank: true},
		MC:                mc,
		CHA:               chaCfg,
		IIO:               ioCfg,
		DDIO:              cache.DefaultDDIOConfig(true),
		TheoreticalMemBW:  102.4e9,
		TheoreticalPCIeBW: 32e9,
	}
}

// Host is an assembled host network.
type Host struct {
	Eng *sim.Engine
	Cfg Config

	// Auditor is non-nil iff Cfg.Audit.Enabled; components registered their
	// invariants with it at construction.
	Auditor *audit.Auditor

	// Faults is non-nil iff Cfg.Faults is non-empty; window events were
	// scheduled at construction and NICs built later (by the experiment
	// layer) attach themselves before the engine runs.
	Faults *fault.Injector

	MC      *dram.Controller
	CHA     *cha.CHA
	IIO     *iio.IIO
	DDIO    *cache.DDIO
	CXL     *cxl.Expander // non-nil when built with NewWithCXL
	Cores   []*cpu.Core
	Devices []*periph.Storage

	ingress    mem.Submitter
	nextRegion mem.Addr
	nextCXL    mem.Addr
}

// New assembles a host from a config.
func New(cfg Config) *Host {
	eng := sim.New()
	aud := audit.New(eng, cfg.Audit)
	inj := fault.NewInjector(eng, cfg.Faults)
	h := NewOn(eng, aud, inj, "", cfg)
	inj.Start()
	return h
}

// NewOn assembles a host on a shared engine — the multi-host path used by
// internal/fabric to put N host networks on one clock. The auditor and
// injector are shared across the hosts of a fabric (either may be nil:
// a nil auditor disables checking, a nil injector means this host is not a
// fault target); prefix, when non-empty, namespaces the host's audit
// domains ("h3/dram", "h3/iio", ...) so violations attribute to the right
// host. Core audit domains keep their per-core labels. The caller owns
// Injector.Start, which must run once after every target is attached.
func NewOn(eng *sim.Engine, aud *audit.Auditor, inj *fault.Injector, prefix string, cfg Config) *Host {
	// Thread the auditor into every component config (and keep it in Cfg so
	// AddCore-built cores inherit it).
	cfg.MC.Audit = aud
	cfg.CHA.Audit = aud
	cfg.IIO.Audit = aud
	cfg.Core.Audit = aud
	if prefix != "" {
		cfg.MC.AuditDomain = prefix + "/dram"
		cfg.CHA.AuditDomain = prefix + "/cha"
		cfg.IIO.AuditDomain = prefix + "/iio"
	}
	mapper := mem.MustMapper(cfg.Mapper)
	mc := dram.New(eng, cfg.MC, mapper, nil)
	ddio := cache.NewDDIO(cfg.DDIO)
	ch := cha.New(eng, cfg.CHA, mc, ddio)
	io := iio.New(eng, cfg.IIO, ch)
	inj.AttachDRAM(mc)
	inj.AttachIIO(io)
	return &Host{Eng: eng, Cfg: cfg, Auditor: aud, Faults: inj, MC: mc, CHA: ch, IIO: io, DDIO: ddio, ingress: ch}
}

// cxlHomeBit splits the address space: regions at or above 1<<cxlHomeBit are
// homed on the CXL expander.
const cxlHomeBit = 39

// cxlMux routes core traffic between host DRAM and the CXL expander by
// address. It adds no cost of its own; the expander models its link.
type cxlMux struct {
	cha mem.Submitter
	exp *cxl.Expander
}

// Submit implements mem.Submitter.
func (m cxlMux) Submit(r *mem.Request) {
	if r.Addr>>cxlHomeBit&1 == 1 {
		m.exp.Submit(r)
		return
	}
	m.cha.Submit(r)
}

// NewWithCXL assembles a host with a CXL.mem expander attached — the §7
// "new interconnects" extension. Core traffic to CXLRegion addresses is
// serviced by the expander's own memory controller behind the CXL link.
func NewWithCXL(cfg Config, cxlCfg cxl.Config) *Host {
	h := New(cfg)
	cxlCfg.Audit = h.Auditor
	h.CXL = cxl.New(h.Eng, cxlCfg)
	h.ingress = cxlMux{cha: h.CHA, exp: h.CXL}
	h.Faults.AttachLink(h.CXL)
	h.Faults.AttachDRAM(h.CXL.MC())
	return h
}

// CXLRegion allocates a fresh 1 GiB-aligned region homed on the expander.
func (h *Host) CXLRegion(bytes int64) mem.Addr {
	if h.CXL == nil {
		panic("host: CXLRegion on a host built without CXL")
	}
	base := h.nextCXL
	span := (mem.Addr(bytes) + (1 << 30) - 1) &^ ((1 << 30) - 1)
	if span == 0 {
		span = 1 << 30
	}
	h.nextCXL += span
	return base | 1<<cxlHomeBit
}

// Region hands out a fresh 1 GiB-aligned address region of the given size,
// so every core and device works in a distinct address space (the paper's
// workloads each own a private buffer).
func (h *Host) Region(bytes int64) mem.Addr {
	base := h.nextRegion
	span := (mem.Addr(bytes) + (1 << 30) - 1) &^ ((1 << 30) - 1)
	if span == 0 {
		span = 1 << 30
	}
	h.nextRegion += span
	return base
}

// AddCore creates a core driven by gen and starts it at time 0. Generators
// that carry run-position state (cursors, RNG streams, open-loop clocks)
// implement sim.Stateful and join the engine's snapshot set here, in core
// order — the registration order is the construction order, which snapshots
// rely on being deterministic.
func (h *Host) AddCore(gen cpu.Generator) *cpu.Core {
	if len(h.Cores) >= h.Cfg.MaxCores {
		panic(fmt.Sprintf("host: %s has only %d cores", h.Cfg.Name, h.Cfg.MaxCores))
	}
	if st, ok := gen.(sim.Stateful); ok {
		h.Eng.Register(st)
	}
	c := cpu.New(h.Eng, h.Cfg.Core, len(h.Cores), h.ingress, gen)
	h.Cores = append(h.Cores, c)
	c.Start(0)
	return c
}

// AddStorage creates a storage device workload and starts it at time 0.
func (h *Host) AddStorage(cfg periph.Config) *periph.Storage {
	cfg.Audit = h.Auditor
	d := periph.New(h.Eng, cfg, h.IIO, len(h.Devices))
	h.Devices = append(h.Devices, d)
	d.Start(0)
	return d
}

// Snapshot captures the host's full simulation state — clock, event heap,
// every credit domain, telemetry windows, RNG streams, fault state — as a
// deep copy. Continuing to run does not disturb it.
func (h *Host) Snapshot() *sim.Snapshot { return h.Eng.Snapshot() }

// Restore rewinds the host to a snapshot taken on this same host. The
// snapshot survives and can be restored again — fork a warmed-up host into
// as many measurement continuations as needed without re-running warmup.
func (h *Host) Restore(s *sim.Snapshot) { h.Eng.Restore(s) }

// ResetStats starts a fresh measurement window on every probe in the host.
func (h *Host) ResetStats() {
	h.MC.Stats().Reset()
	h.CHA.Stats().Reset()
	h.IIO.Stats().Reset()
	h.DDIO.ResetStats()
	if h.CXL != nil {
		h.CXL.Stats().Reset()
	}
	for _, c := range h.Cores {
		c.Stats().Reset()
	}
	for _, d := range h.Devices {
		d.Stats().Reset()
	}
}

// Run warms the host up for `warmup`, resets all probes, then runs the
// measurement window. Afterwards every probe covers exactly [warmup,
// warmup+window].
func (h *Host) Run(warmup, window sim.Time) {
	h.Eng.RunUntil(h.Eng.Now() + warmup)
	h.ResetStats()
	h.Eng.RunUntil(h.Eng.Now() + window)
	h.Auditor.CheckEnd()
}

// C2MReadBW sums completed read bandwidth over all cores (bytes/s).
func (h *Host) C2MReadBW() float64 {
	var bw float64
	for _, c := range h.Cores {
		bw += c.Stats().ReadBytesPerSec()
	}
	return bw
}

// C2MWriteBW sums completed write bandwidth over all cores (bytes/s).
func (h *Host) C2MWriteBW() float64 {
	var bw float64
	for _, c := range h.Cores {
		bw += c.Stats().WriteBytesPerSec()
	}
	return bw
}

// C2MBW sums all core bandwidth (bytes/s).
func (h *Host) C2MBW() float64 { return h.C2MReadBW() + h.C2MWriteBW() }

// P2MBW sums completed device bandwidth (bytes/s).
func (h *Host) P2MBW() float64 {
	var bw float64
	for _, d := range h.Devices {
		bw += d.Stats().BytesPerSec()
	}
	return bw
}

// MemBW reports memory bandwidth actually consumed at the DRAM, split by
// source, as the paper's utilization figures plot.
func (h *Host) MemBW() (c2m, p2m float64) {
	st := h.MC.Stats()
	c2m = st.C2MRead.Lines.BytesPerSecond() + st.C2MWrite.Lines.BytesPerSecond()
	p2m = st.P2MRead.Lines.BytesPerSecond() + st.P2MWrite.Lines.BytesPerSecond()
	return c2m, p2m
}

// AvgLFBLatNanos averages the LFB latency over all cores.
func (h *Host) AvgLFBLatNanos() float64 {
	if len(h.Cores) == 0 {
		return 0
	}
	var sum float64
	for _, c := range h.Cores {
		sum += c.Stats().LFBLat.AvgNanos()
	}
	return sum / float64(len(h.Cores))
}
