package host

import (
	"testing"
	"testing/quick"

	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Property: for arbitrary mixes of workloads, the host never deadlocks, all
// probe levels drain back toward steady values, measured latencies never
// fall below the unloaded constants, and no bandwidth exceeds its physical
// ceiling. This is the whole-system failure-injection net: any credit leak,
// lost wake-up, or accounting bug in any component surfaces here.
func TestHostInvariantsUnderRandomMixes(t *testing.T) {
	type mix struct {
		SeqReadCores  uint8
		SeqWriteCores uint8
		RandCores     uint8
		Dir           bool // device direction
		Devices       uint8
	}
	f := func(m mix) bool {
		h := New(CascadeLake())
		nSeq := int(m.SeqReadCores % 3)
		nWr := int(m.SeqWriteCores % 3)
		nRand := int(m.RandCores % 3)
		if nSeq+nWr+nRand == 0 {
			nSeq = 1
		}
		for i := 0; i < nSeq; i++ {
			h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		}
		for i := 0; i < nWr; i++ {
			h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
		}
		for i := 0; i < nRand; i++ {
			h.AddCore(workload.NewRandRead(h.Region(1<<30), 1<<30, uint64(i+7)))
		}
		dir := periph.DMAWrite
		if m.Dir {
			dir = periph.DMARead
		}
		for d := 0; d < int(m.Devices%3); d++ {
			h.AddStorage(periph.BulkConfig(dir, h.Region(1<<30)))
		}
		h.Run(5*sim.Microsecond, 20*sim.Microsecond)

		// 1. Progress: every core and device moved data.
		for _, c := range h.Cores {
			if c.Stats().LinesRead.Count()+c.Stats().LinesWritten.Count() == 0 {
				t.Logf("core %d made no progress", c.Index())
				return false
			}
		}
		for i, d := range h.Devices {
			if d.Stats().Lines.Count() == 0 {
				t.Logf("device %d made no progress", i)
				return false
			}
		}
		// 2. Physical ceilings.
		c2m, p2m := h.MemBW()
		if c2m+p2m > h.Cfg.TheoreticalMemBW*1.001 {
			t.Logf("memory bandwidth %.1f exceeds ceiling", (c2m+p2m)/1e9)
			return false
		}
		if h.P2MBW() > 14.5e9 {
			t.Logf("P2M bandwidth %.1f exceeds the link", h.P2MBW()/1e9)
			return false
		}
		// 3. Latency floors (nothing completes faster than unloaded).
		for _, c := range h.Cores {
			if rl := c.Stats().ReadLat.AvgNanos(); rl > 0 && rl < 60 {
				t.Logf("read latency %.1f below unloaded floor", rl)
				return false
			}
		}
		if wl := h.IIO.Stats().WriteLat.AvgNanos(); wl > 0 && wl < 280 {
			t.Logf("P2M write latency %.1f below unloaded floor", wl)
			return false
		}
		// 4. Occupancy sanity: levels bounded by their pools.
		if h.IIO.Stats().WriteOcc.Max() > h.Cfg.IIO.WriteCredits {
			t.Logf("IIO write occupancy exceeded credits")
			return false
		}
		for _, c := range h.Cores {
			if c.Stats().LFBOcc.Max() > h.Cfg.Core.LFBEntries {
				t.Logf("LFB occupancy exceeded entries")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency monotonicity — adding a device to any C2M mix never
// reduces the cores' average read latency.
func TestColocationNeverSpeedsUpC2M(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%3) + 1
		run := func(withDev bool) float64 {
			h := New(CascadeLake())
			for i := 0; i < n; i++ {
				h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
			}
			if withDev {
				h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
			}
			h.Run(5*sim.Microsecond, 20*sim.Microsecond)
			return h.AvgLFBLatNanos()
		}
		iso, co := run(false), run(true)
		return co >= iso*0.995
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
