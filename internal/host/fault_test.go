package host

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/numa"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// faultAudit is the strictest auditor setting: check after every event and
// panic on the first violation, so any credit leak inside a fault window
// fails the test at the exact event that caused it.
func faultAudit() audit.Config {
	return audit.Config{Enabled: true, Every: 1, FailFast: true}
}

// TestFaultSingleHostAllKinds drives every single-socket fault kind through
// overlapping windows on one audited host: PFC storm and link flap land on
// the NIC-free host's DRAM/IIO siblings, so this covers throttle, bank
// offline, and credit starvation with C2M + P2M traffic in flight.
func TestFaultSingleHostAllKinds(t *testing.T) {
	cfg := CascadeLake()
	cfg.Audit = faultAudit()
	cfg.Faults = fault.Schedule{
		{Kind: fault.DRAMThrottle, StartNs: 4000, DurationNs: 12000, Magnitude: 8, Channel: 0},
		{Kind: fault.DRAMThrottle, StartNs: 6000, DurationNs: 6000, Magnitude: 3, Channel: 1},
		{Kind: fault.BankOffline, StartNs: 5000, DurationNs: 15000, Channel: 0, Bank: 2},
		{Kind: fault.IIOStarve, StartNs: 7000, DurationNs: 9000, Magnitude: 0.9},
	}
	h := New(cfg)
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(2*sim.Microsecond, 25*sim.Microsecond)
	if h.Faults == nil {
		t.Fatal("fault schedule configured but no injector built")
	}
	if h.P2MBW() <= 0 {
		t.Fatal("P2M traffic did not survive the fault windows")
	}
}

// TestFaultDualSocketLaneDegrade degrades the UPI link while starving both
// sockets' IIO pools and throttling DRAM, with cross-socket traffic in both
// directions. Audits every event: the UPI link_busy and both sockets'
// credit-pool invariants must hold through the windows.
func TestFaultDualSocketLaneDegrade(t *testing.T) {
	cfg := CascadeLake()
	cfg.Audit = faultAudit()
	cfg.Faults = fault.Schedule{
		{Kind: fault.LaneDegrade, StartNs: 3000, DurationNs: 10000, Magnitude: 8},
		{Kind: fault.IIOStarve, StartNs: 4000, DurationNs: 9000, Magnitude: 0.9},
		{Kind: fault.DRAMThrottle, StartNs: 5000, DurationNs: 8000, Magnitude: 16, Channel: 0},
	}
	h := NewDual(cfg, numa.DefaultConfig())
	h.AddCoreOn(0, workload.NewSeqRead(h.RegionOn(1, 1<<30), 1<<30))
	h.AddCoreOn(1, workload.NewSeqRead(h.RegionOn(0, 1<<30), 1<<30))
	h.AddStorageOn(0, periph.BulkConfig(periph.DMAWrite, h.RegionOn(0, 1<<30)))
	h.Run(2*sim.Microsecond, 20*sim.Microsecond)
	if h.C2MBW() <= 0 {
		t.Fatal("cross-socket traffic did not survive the fault windows")
	}
}

// TestFaultCXLLaneDegrade degrades the CXL serialization rate while the
// expander's own DRAM controller is throttled and a bank is offline, with
// both CXL-homed and local traffic running. The injector must reach the
// expander's controller (not just the host's) for the throttle to matter.
func TestFaultCXLLaneDegrade(t *testing.T) {
	cfg := CascadeLake()
	cfg.Audit = faultAudit()
	cfg.Faults = fault.Schedule{
		{Kind: fault.LaneDegrade, StartNs: 3000, DurationNs: 10000, Magnitude: 8},
		{Kind: fault.DRAMThrottle, StartNs: 5000, DurationNs: 8000, Magnitude: 16, Channel: 0},
		{Kind: fault.BankOffline, StartNs: 4000, DurationNs: 14000, Channel: 0, Bank: 3},
	}
	h := NewWithCXL(cfg, cxlDefault())
	h.AddCore(workload.NewSeqRead(h.CXLRegion(1<<30), 1<<30))
	h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
	h.Run(2*sim.Microsecond, 20*sim.Microsecond)
	if h.C2MBW() <= 0 {
		t.Fatal("traffic did not survive the fault windows")
	}
}

// TestFaultStarveFullMagnitude pins the starvation clamp: magnitude 1.0
// must leave one credit in each pool (full confiscation would deadlock the
// host rather than degrade it), so forward progress continues.
func TestFaultStarveFullMagnitude(t *testing.T) {
	cfg := CascadeLake()
	cfg.Audit = faultAudit()
	cfg.Faults = fault.Schedule{
		{Kind: fault.IIOStarve, StartNs: 3000, DurationNs: 10000, Magnitude: 1.0},
	}
	h := New(cfg)
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(2*sim.Microsecond, 20*sim.Microsecond)
	if h.P2MBW() <= 0 {
		t.Fatal("magnitude-1.0 starvation deadlocked the IIO (clamp to cap-1 broken)")
	}
	nw, nr := h.IIO.FaultCreditsHeld()
	if nw != 0 || nr != 0 {
		t.Fatalf("credits still held after window end: write=%d read=%d", nw, nr)
	}
}

// TestFaultNilInjectorZeroCost pins the healthy-path contract: an empty
// fault schedule yields a nil injector and the host behaves identically to
// one built with no Faults field at all.
func TestFaultNilInjectorZeroCost(t *testing.T) {
	cfg := CascadeLake()
	cfg.Faults = fault.Schedule{}
	h := New(cfg)
	if h.Faults != nil {
		t.Fatal("empty schedule must yield a nil injector")
	}
	// All injector methods must be nil-safe.
	h.Faults.Start()
	h.Faults.AttachDRAM(nil)
	h.Faults.AttachIIO(nil)
	h.Faults.AttachNIC(nil)
	h.Faults.AttachLink(nil)
	if h.Faults.Active() != 0 {
		t.Fatal("nil injector reports active windows")
	}
	if h.Faults.Schedule() != nil {
		t.Fatal("nil injector reports a schedule")
	}
}

// BenchmarkEventHotPathNoFaults gates the healthy hot path: with no faults
// configured the injector is nil and stepping the engine through a loaded
// host must not allocate. CI asserts 0 allocs/op on this benchmark.
func BenchmarkEventHotPathNoFaults(b *testing.B) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Eng.RunUntil(2 * sim.Microsecond) // fill the pipeline
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.Eng.Step() {
			b.Fatal("engine ran dry")
		}
	}
}
