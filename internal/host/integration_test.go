package host

import (
	"testing"

	"repro/internal/cxl"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/workload"
)

func cxlDefault() cxl.Config { return cxl.DefaultConfig() }

// Determinism: two identical runs produce bit-identical measurements. This
// is what makes every experiment in this repository reproducible and the
// CI assertions stable.
func TestRunsAreDeterministic(t *testing.T) {
	run := func() (float64, float64, uint64, sim.Time) {
		h := New(CascadeLake())
		h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		h.AddCore(workload.NewSeqReadWrite(h.Region(1<<30), 1<<30))
		h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
		h.Run(warm, win)
		return h.C2MBW(), h.P2MBW(), h.Eng.Processed(), h.Eng.Now()
	}
	c1, p1, e1, t1 := run()
	c2, p2, e2, t2 := run()
	if c1 != c2 || p1 != p2 || e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic runs: (%v,%v,%v,%v) vs (%v,%v,%v,%v)",
			c1, p1, e1, t1, c2, p2, e2, t2)
	}
}

// Conservation at host scope: memory-level traffic accounts for exactly the
// completed core and device lines (DDIO off: no cache absorbs anything).
func TestHostLevelConservation(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
	h.Run(warm, win)
	st := h.MC.Stats()
	coreLines := h.Cores[0].Stats().LinesRead.Count()
	memC2MReads := st.C2MRead.Lines.Count()
	// In-flight boundary effects allow a few lines of slack.
	diff := int64(coreLines) - int64(memC2MReads)
	if diff < -100 || diff > 100 {
		t.Fatalf("C2M lines diverge: cores completed %d, memory served %d", coreLines, memC2MReads)
	}
	devLines := h.Devices[0].Stats().Lines.Count()
	memP2MWrites := st.P2MWrite.Lines.Count()
	diff = int64(devLines) - int64(memP2MWrites)
	if diff < -200 || diff > 200 {
		t.Fatalf("P2M lines diverge: device completed %d, memory wrote %d", devLines, memP2MWrites)
	}
}

// Isolated multi-core C2M scales close to linearly until the channels
// saturate (the mapper fix's regression guard).
func TestIsolatedC2MScaling(t *testing.T) {
	bw := make(map[int]float64)
	for _, n := range []int{1, 2, 4} {
		h := New(CascadeLake())
		for i := 0; i < n; i++ {
			h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		}
		h.Run(warm, win)
		bw[n] = h.C2MReadBW()
	}
	if bw[2] < bw[1]*1.8 {
		t.Fatalf("2 cores scale %.2fx, want ~2x (1 core %.1f, 2 cores %.1f GB/s)",
			bw[2]/bw[1], bw[1]/1e9, bw[2]/1e9)
	}
	if bw[4] < bw[1]*3.0 {
		t.Fatalf("4 cores scale %.2fx, want >= 3x", bw[4]/bw[1])
	}
}

// The engine's clock always lands exactly at the end of the window.
func TestRunWindowExact(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.Run(10*sim.Microsecond, 25*sim.Microsecond)
	if h.Eng.Now() != 35*sim.Microsecond {
		t.Fatalf("clock at %v, want 35us", h.Eng.Now())
	}
}

// Throughput identity: core bandwidth equals LFB occupancy over latency
// (Little's law through the whole stack).
func TestLittlesLawAcrossTheStack(t *testing.T) {
	h := New(CascadeLake())
	h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
	h.Run(warm, win)
	st := h.Cores[0].Stats()
	measured := st.ReadBytesPerSec()
	identity := st.LFBOcc.Avg() * 64 / (st.LFBLat.AvgNanos() * 1e-9)
	ratio := measured / identity
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("Little's law identity violated: measured %.2f vs O*64/L %.2f GB/s",
			measured/1e9, identity/1e9)
	}
}

// Tail latency: colocation inflates the C2M read tail, not just the mean —
// the symptom the production studies behind the paper report.
func TestColocationInflatesTailLatency(t *testing.T) {
	run := func(withDev bool) (p50, p99 float64) {
		h := New(CascadeLake())
		h.AddCore(workload.NewSeqRead(h.Region(1<<30), 1<<30))
		if withDev {
			h.AddStorage(periph.BulkConfig(periph.DMAWrite, h.Region(1<<30)))
		}
		h.Run(warm, win)
		hist := h.Cores[0].Stats().ReadTail
		return hist.PercentileNs(0.5), hist.PercentileNs(0.99)
	}
	isoP50, isoP99 := run(false)
	coP50, coP99 := run(true)
	t.Logf("iso p50=%.0f p99=%.0f | co p50=%.0f p99=%.0f", isoP50, isoP99, coP50, coP99)
	if coP99 <= isoP99 {
		t.Fatalf("p99 did not inflate: %.0f -> %.0f ns", isoP99, coP99)
	}
	// The tail inflates more than the median in absolute terms (write
	// drains hit a subset of requests hard).
	if (coP99 - isoP99) < (coP50 - isoP50) {
		t.Fatalf("tail inflation (%.0f) below median inflation (%.0f)",
			coP99-isoP99, coP50-isoP50)
	}
}

// The §7 "new interconnects" extension: CXL-homed traffic trades latency for
// isolation — it neither suffers from nor contributes to host-DRAM
// contention.
func TestCXLIsolationTradeoff(t *testing.T) {
	// CXL-homed reader alone: latency around 230-260 ns, credit-bound
	// throughput ~3 GB/s.
	iso := NewWithCXL(CascadeLake(), cxlDefault())
	iso.AddCore(workload.NewSeqRead(iso.CXLRegion(1<<30), 1<<30))
	iso.Run(warm, win)
	isoLat := iso.Cores[0].Stats().LFBLat.AvgNanos()
	isoBW := iso.C2MReadBW()
	if isoLat < 200 || isoLat > 280 {
		t.Fatalf("CXL read latency %.0f ns, want ~230", isoLat)
	}

	// Colocated with bulk P2M writes into host DRAM: the CXL reader is
	// untouched (isolation), and so is the P2M side.
	co := NewWithCXL(CascadeLake(), cxlDefault())
	co.AddCore(workload.NewSeqRead(co.CXLRegion(1<<30), 1<<30))
	co.AddStorage(periph.BulkConfig(periph.DMAWrite, co.Region(1<<30)))
	co.Run(warm, win)
	coLat := co.Cores[0].Stats().LFBLat.AvgNanos()
	if coLat > isoLat*1.02 {
		t.Fatalf("CXL reader disturbed by DRAM-side P2M: %.0f -> %.0f ns", isoLat, coLat)
	}
	if co.P2MBW() < 13.5e9 {
		t.Fatalf("P2M degraded (%.1f GB/s) by CXL traffic it never shares a controller with", co.P2MBW()/1e9)
	}

	// Contrast: the same reader DRAM-homed degrades 1.27x (the blue regime).
	dram := NewWithCXL(CascadeLake(), cxlDefault())
	dram.AddCore(workload.NewSeqRead(dram.Region(1<<30), 1<<30))
	dram.AddStorage(periph.BulkConfig(periph.DMAWrite, dram.Region(1<<30)))
	dram.Run(warm, win)
	if d := 10.79e9 / dram.C2MReadBW(); d < 1.15 {
		t.Fatalf("DRAM-homed contrast case lost its blue regime: %.2fx", d)
	}
	t.Logf("CXL: iso %.0fns/%.2fGB/s; colocated %.0fns (isolated from DRAM contention)",
		isoLat, isoBW/1e9, coLat)
}
