// Package netsim models the networking case studies of the paper's §2.3 and
// Appendices C-E: a NIC generating P2M traffic with either a hardware-
// offloaded lossless transport (RoCE with Priority Flow Control) or an
// in-kernel lossy transport (DCTCP), colocated with C2M workloads.
//
// The key structural difference from local storage is the feedback loop: a
// NIC cannot slow the remote sender directly — RoCE asserts PFC pauses when
// its receive buffering fills, while DCTCP relies on ECN marks and packet
// drops whose effects arrive a round-trip later.
package netsim

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RDMAWriteConfig models ib_write_bw server-side: the remote peer streams
// RDMA WRITEs at line rate; every payload cacheline becomes a P2M DMA write.
type RDMAWriteConfig struct {
	// LinePeriod is the wire arrival period per cacheline (~5.2 ns at the
	// ~98 Gbps the paper's ConnectX-5 sustains).
	LinePeriod sim.Time
	// QueueCapLines bounds NIC receive buffering (lossless via PFC).
	QueueCapLines int
	// PauseHi/PauseLo are the PFC XOFF/XON thresholds in lines.
	PauseHi, PauseLo int
	// PauseDelay is the pause-frame propagation + reaction time.
	PauseDelay sim.Time
	// BufBase is the DMA target region.
	BufBase mem.Addr
	// BufBytes is the region size (ring).
	BufBytes int64

	// Audit, when non-nil, receives the NIC's queue and PFC invariants.
	Audit *audit.Auditor
}

// DefaultRDMAWriteConfig matches the paper's 100 Gbps RoCE/PFC setup.
func DefaultRDMAWriteConfig(base mem.Addr) RDMAWriteConfig {
	return RDMAWriteConfig{
		LinePeriod:    5220 * sim.Picosecond, // ~98 Gbps
		QueueCapLines: 8192,                  // 512 KB NIC buffer
		PauseHi:       6144,
		PauseLo:       2048,
		PauseDelay:    600 * sim.Nanosecond,
		BufBase:       base,
		BufBytes:      1 << 30,
	}
}

// RDMAWrite is the server-side RoCE write receiver.
type RDMAWrite struct {
	eng *sim.Engine
	cfg RDMAWriteConfig
	io  *iio.IIO

	queue    int  // lines buffered in the NIC
	paused   bool // sender currently paused (after propagation)
	xoff     bool // pause asserted at the NIC
	linkDown bool // fault: wire link down, arrivals suppressed
	storm    bool // fault: downstream congestion forces XOFF regardless of queue
	nextLine int64
	waiting  bool
	wake     func()        // bound credit-wait callback, created once
	arriveFn sim.EventFunc // bound arrival handler: one event per wire line

	// Delivered counts lines whose DMA completed (the app-visible
	// throughput of the RDMA transfer).
	Delivered *telemetry.Counter
	// Dropped counts wire lines lost to a full NIC buffer. PFC exists to
	// keep this at zero; a nonzero count means the thresholds or the pause
	// propagation model broke losslessness.
	Dropped *telemetry.Counter
	// PauseFrac measures the fraction of time PFC pause is asserted.
	PauseFrac *telemetry.FracTimer
	// QueueOcc tracks NIC buffer occupancy.
	QueueOcc *telemetry.Integrator
}

// NewRDMAWrite builds the receiver; call Start to begin the stream.
func NewRDMAWrite(eng *sim.Engine, cfg RDMAWriteConfig, io *iio.IIO) *RDMAWrite {
	if cfg.PauseLo >= cfg.PauseHi || cfg.PauseHi > cfg.QueueCapLines {
		panic("netsim: PFC thresholds must satisfy lo < hi <= cap")
	}
	w := &RDMAWrite{
		eng:       eng,
		cfg:       cfg,
		io:        io,
		Delivered: telemetry.NewCounter(eng),
		Dropped:   telemetry.NewCounter(eng),
		PauseFrac: telemetry.NewFracTimer(eng),
		QueueOcc:  telemetry.NewIntegrator(eng),
	}
	eng.Register(w)
	w.arriveFn = w.arriveEvent
	w.wake = func() { w.waiting = false; w.pump() }
	if aud := cfg.Audit; aud.Enabled() {
		aud.Gauge("rdma", "queue_occ", w.QueueOcc, func() int { return w.queue })
		aud.Bounds("rdma", "queue", 0, int64(cfg.QueueCapLines), func() int64 { return int64(w.queue) })
		aud.Check("rdma", "pfc", func() (bool, string) {
			// updatePFC runs after every queue change, so at event boundaries
			// XOFF implies the queue has not drained to XON and vice versa.
			if w.xoff != w.PauseFrac.On() {
				return false, fmt.Sprintf("xoff=%v but PauseFrac.On()=%v", w.xoff, w.PauseFrac.On())
			}
			if w.storm {
				// A pause-storm fault pins XOFF regardless of occupancy; the
				// queue-threshold hysteresis clauses do not apply mid-storm.
				if !w.xoff {
					return false, "pause storm active but XOFF clear"
				}
				return true, ""
			}
			if w.xoff && w.queue <= cfg.PauseLo {
				return false, fmt.Sprintf("XOFF asserted with queue %d <= PauseLo %d", w.queue, cfg.PauseLo)
			}
			if !w.xoff && w.queue >= cfg.PauseHi {
				return false, fmt.Sprintf("XOFF clear with queue %d >= PauseHi %d", w.queue, cfg.PauseHi)
			}
			return true, ""
		})
		aud.Check("rdma", "lossless", func() (bool, string) {
			if n := w.Dropped.Count(); n != 0 {
				return false, fmt.Sprintf("%d lines dropped on a lossless (PFC) NIC", n)
			}
			return true, ""
		})
	}
	return w
}

// Start begins wire arrivals at time t.
func (r *RDMAWrite) Start(t sim.Time) {
	r.eng.AtFunc(t, r.arriveFn, nil)
}

func (r *RDMAWrite) arriveEvent(any) { r.arrive() }

// arrive models one cacheline landing from the wire. A downed link behaves
// like a paused sender: no line lands (and none is dropped — the physical
// layer stops, it does not overrun), but buffered lines keep draining and
// the arrival clock keeps ticking so the stream resumes when the link does.
func (r *RDMAWrite) arrive() {
	if !r.paused && !r.linkDown {
		if r.queue < r.cfg.QueueCapLines {
			r.queue++
			r.QueueOcc.Add(1)
		} else {
			// Buffer overrun: PFC should have paused the sender before the
			// headroom above PauseHi ran out. Losing the line silently would
			// mask a broken pause model, so count it.
			r.Dropped.Inc()
		}
		r.updatePFC()
		r.pump()
	}
	r.eng.AfterFunc(r.cfg.LinePeriod, r.arriveFn, nil)
}

// FaultSetLinkDown suspends (or resumes) wire arrivals.
func (r *RDMAWrite) FaultSetLinkDown(down bool) { r.linkDown = down }

// FaultSetPauseStorm forces PFC XOFF while on, modeling sustained pause
// frames from a congested downstream switch; clearing re-evaluates the
// normal occupancy hysteresis.
func (r *RDMAWrite) FaultSetPauseStorm(on bool) {
	r.storm = on
	r.updatePFC()
}

// pfcApplyEvent lands a pause/resume at the sender after propagation.
func pfcApplyEvent(arg any) {
	r := arg.(*RDMAWrite)
	r.paused = r.xoff
}

// updatePFC asserts/deasserts pause with propagation delay. A pause-storm
// fault overrides the occupancy hysteresis and pins XOFF; when the storm
// clears, the normal thresholds decide (so a queue still above PauseLo
// keeps the pause until it drains, exactly as a real XOFF would).
func (r *RDMAWrite) updatePFC() {
	want := r.xoff
	if !r.xoff && r.queue >= r.cfg.PauseHi {
		want = true
	} else if r.xoff && r.queue <= r.cfg.PauseLo {
		want = false
	}
	if r.storm {
		want = true
	}
	if want != r.xoff {
		r.xoff = want
		r.PauseFrac.Set(want)
		r.eng.AfterFunc(r.cfg.PauseDelay, pfcApplyEvent, r)
	}
}

// pump DMA-writes buffered lines through the IIO.
func (r *RDMAWrite) pump() {
	for r.queue > 0 {
		addr := r.cfg.BufBase + mem.Addr((r.nextLine*mem.LineSize)%r.cfg.BufBytes)
		if !r.io.TryWrite(addr, 0, func() { r.Delivered.Inc() }) {
			if !r.waiting {
				r.waiting = true
				r.io.NotifyWrite(r.wake)
			}
			return
		}
		r.nextLine++
		r.queue--
		r.QueueOcc.Add(-1)
		r.updatePFC()
	}
}

// BytesPerSec reports delivered DMA bandwidth.
func (r *RDMAWrite) BytesPerSec() float64 { return r.Delivered.BytesPerSecond() }

// ResetStats starts a new measurement window.
func (r *RDMAWrite) ResetStats() {
	r.Delivered.Reset()
	r.Dropped.Reset()
	r.PauseFrac.Reset()
	r.QueueOcc.Reset()
}

// RDMARead models ib_read_bw server-side: the remote peer issues RDMA READs,
// so the NIC DMA-reads server memory and streams it out — P2M read traffic
// paced at the wire rate.
type RDMARead struct {
	eng *sim.Engine
	cfg RDMAWriteConfig // reuses LinePeriod/Buf fields
	io  *iio.IIO

	nextLine int64
	paceAt   sim.Time
	waiting  bool
	linkDown bool          // fault: wire link down, no read requests arrive
	wake     func()        // bound credit-wait callback, created once
	pumpFn   sim.EventFunc // bound pump handler: one event per paced line

	Delivered *telemetry.Counter
}

// NewRDMARead builds the read responder.
func NewRDMARead(eng *sim.Engine, cfg RDMAWriteConfig, io *iio.IIO) *RDMARead {
	rd := &RDMARead{eng: eng, cfg: cfg, io: io, Delivered: telemetry.NewCounter(eng)}
	eng.Register(rd)
	rd.pumpFn = rd.pumpEvent
	rd.wake = func() { rd.waiting = false; rd.pump() }
	return rd
}

// Start begins serving the read stream at time t.
func (r *RDMARead) Start(t sim.Time) { r.eng.AtFunc(t, r.pumpFn, nil) }

func (r *RDMARead) pumpEvent(any) { r.pump() }

// FaultSetLinkDown suspends read requests while down; resuming restarts the
// pump (the pace clock does not advance during the outage, so the stream
// picks back up at the wire rate immediately).
func (r *RDMARead) FaultSetLinkDown(down bool) {
	r.linkDown = down
	if !down {
		r.pump()
	}
}

// FaultSetPauseStorm is a no-op: the read responder has no PFC state (the
// remote reader simply sees stalled completions).
func (r *RDMARead) FaultSetPauseStorm(bool) {}

func (r *RDMARead) pump() {
	if r.linkDown {
		return
	}
	for {
		now := r.eng.Now()
		if r.paceAt > now {
			r.eng.AtFunc(r.paceAt, r.pumpFn, nil)
			return
		}
		addr := r.cfg.BufBase + mem.Addr((r.nextLine*mem.LineSize)%r.cfg.BufBytes)
		if !r.io.TryRead(addr, 0, func() { r.Delivered.Inc() }) {
			if !r.waiting {
				r.waiting = true
				r.io.NotifyRead(r.wake)
			}
			return
		}
		r.nextLine++
		r.paceAt = now + r.cfg.LinePeriod
	}
}

// BytesPerSec reports delivered read bandwidth.
func (r *RDMARead) BytesPerSec() float64 { return r.Delivered.BytesPerSecond() }

// ResetStats starts a new measurement window.
func (r *RDMARead) ResetStats() { r.Delivered.Reset() }

// rdmaWriteState is the snapshot of an RDMAWrite receiver.
type rdmaWriteState struct {
	queue    int
	paused   bool
	xoff     bool
	linkDown bool
	storm    bool
	nextLine int64
	waiting  bool
}

// SaveState implements sim.Stateful.
func (r *RDMAWrite) SaveState() any {
	return rdmaWriteState{
		queue: r.queue, paused: r.paused, xoff: r.xoff,
		linkDown: r.linkDown, storm: r.storm,
		nextLine: r.nextLine, waiting: r.waiting,
	}
}

// LoadState implements sim.Stateful.
func (r *RDMAWrite) LoadState(state any) {
	st := state.(rdmaWriteState)
	r.queue, r.paused, r.xoff = st.queue, st.paused, st.xoff
	r.linkDown, r.storm = st.linkDown, st.storm
	r.nextLine, r.waiting = st.nextLine, st.waiting
}

// rdmaReadState is the snapshot of an RDMARead responder.
type rdmaReadState struct {
	nextLine int64
	paceAt   sim.Time
	waiting  bool
	linkDown bool
}

// SaveState implements sim.Stateful.
func (r *RDMARead) SaveState() any {
	return rdmaReadState{nextLine: r.nextLine, paceAt: r.paceAt, waiting: r.waiting, linkDown: r.linkDown}
}

// LoadState implements sim.Stateful.
func (r *RDMARead) LoadState(state any) {
	st := state.(rdmaReadState)
	r.nextLine, r.paceAt, r.waiting, r.linkDown = st.nextLine, st.paceAt, st.waiting, st.linkDown
}
