package netsim

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cpu"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DCTCPConfig models the paper's TCP case study: iperf-like long flows into
// a receiver over a lossy fabric with ECN, Linux DCTCP, 9 KB jumbo frames,
// and a kernel receive path that copies every payload byte from socket
// buffers to application buffers on a CPU core.
type DCTCPConfig struct {
	Flows        int
	MSS          int      // bytes per packet (9000-byte jumbo frames)
	RTT          sim.Time // base network round-trip
	InitCwnd     int      // bytes
	MaxCwnd      int      // bytes (sender buffer bound)
	ECNThresh    int      // NIC rx queue ECN mark threshold (bytes)
	QueueCap     int      // NIC rx queue capacity (bytes); beyond this, drops
	SocketBuf    int      // per-flow socket buffer (flow-control window), bytes
	G            float64  // DCTCP gain
	PerPacketCPU sim.Time // receiver per-packet protocol processing
	BufBase      mem.Addr

	// Audit, when non-nil, receives the receiver's queue and per-flow
	// window invariants.
	Audit *audit.Auditor
}

// DefaultDCTCPConfig matches the paper's setup: 4 flows, 9K MTU, 100 Gbps
// link, DCTCP with standard gain.
func DefaultDCTCPConfig(base mem.Addr) DCTCPConfig {
	return DCTCPConfig{
		Flows:        4,
		MSS:          9000,
		RTT:          12 * sim.Microsecond,
		InitCwnd:     64 << 10,
		MaxCwnd:      512 << 10,
		ECNThresh:    48 << 10,
		QueueCap:     128 << 10,
		SocketBuf:    256 << 10,
		G:            0.0625,
		PerPacketCPU: 700 * sim.Nanosecond,
		BufBase:      base,
	}
}

type dctcpFlow struct {
	rx *DCTCPReceiver
	id int

	// Sender state.
	cwnd     float64
	alpha    float64
	inflight int // bytes sent, not yet acked
	acked    int // bytes acked this window round
	marked   int // bytes marked this round
	roundEnd int // bytes outstanding when the round started

	// Receiver state.
	sockBytes int // bytes in socket buffer awaiting copy
	copier    *copyGen

	retransAt sim.Time
}

// DCTCPReceiver is the receiver-side host model: NIC rx queue with ECN and
// drops, DMA into socket buffers, and per-flow copy work on receiver cores.
type DCTCPReceiver struct {
	eng *sim.Engine
	cfg DCTCPConfig
	io  *iio.IIO

	flows    []*dctcpFlow
	queue    int // NIC rx queue bytes
	nicBusy  bool
	dmaQueue []*dctcpPacket
	waiting  bool
	wake     func() // bound credit-wait callback, created once
	nextLine int64

	// AppBytes counts bytes delivered to application buffers (the iperf
	// goodput the paper reports).
	AppBytes *telemetry.Counter
	// NICBytes counts bytes DMA'd (the P2M load).
	NICBytes *telemetry.Counter
	// Drops and Sent count packets for the loss rate.
	Drops, Sent *telemetry.Counter
	// QueueOcc tracks the NIC rx queue.
	QueueOcc *telemetry.Integrator
}

type dctcpPacket struct {
	flow  *dctcpFlow
	bytes int
	ecn   bool
	lines int // remaining lines to DMA
}

// Package-level event dispatchers: the flow and packet pointers already
// carry everything the delayed steps need, so scheduling through them
// allocates nothing beyond the packet itself.

// retransEvent re-attempts a window-limited flow after its retry timer.
func retransEvent(arg any) {
	f := arg.(*dctcpFlow)
	f.rx.trySend(f)
}

// nicArriveEvent lands a packet at the NIC after the one-way delay.
func nicArriveEvent(arg any) {
	p := arg.(*dctcpPacket)
	p.flow.rx.nicArrive(p)
}

// dropRecoverEvent applies the loss response an RTO-ish delay after a drop.
func dropRecoverEvent(arg any) {
	p := arg.(*dctcpPacket)
	f := p.flow
	f.inflight -= p.bytes
	// Loss response: multiplicative decrease.
	f.cwnd = max(f.cwnd/2, float64(f.rx.cfg.MSS))
	f.rx.trySend(f)
}

// ackEvent delivers a (delayed) acknowledgment back at the sender.
func ackEvent(arg any) {
	p := arg.(*dctcpPacket)
	p.flow.rx.ack(p.flow, p.bytes, p.ecn)
}

// NewDCTCPReceiver builds the receiver; attach each flow's copier to a host
// core via Copiers, then Start.
func NewDCTCPReceiver(eng *sim.Engine, cfg DCTCPConfig, io *iio.IIO) *DCTCPReceiver {
	r := &DCTCPReceiver{
		eng:      eng,
		cfg:      cfg,
		io:       io,
		AppBytes: telemetry.NewCounter(eng),
		NICBytes: telemetry.NewCounter(eng),
		Drops:    telemetry.NewCounter(eng),
		Sent:     telemetry.NewCounter(eng),
		QueueOcc: telemetry.NewIntegrator(eng),
	}
	eng.Register(r)
	r.wake = func() { r.waiting = false; r.dmaPump() }
	for i := 0; i < cfg.Flows; i++ {
		f := &dctcpFlow{rx: r, id: i, cwnd: float64(cfg.InitCwnd)}
		f.copier = &copyGen{flow: f, appBase: cfg.BufBase + mem.Addr(i)<<28}
		r.flows = append(r.flows, f)
	}
	if aud := cfg.Audit; aud.Enabled() {
		aud.Gauge("dctcp", "queue_occ", r.QueueOcc, func() int { return r.queue })
		aud.Bounds("dctcp", "queue", 0, int64(cfg.QueueCap), func() int64 { return int64(r.queue) })
		aud.Check("dctcp", "flows", func() (bool, string) {
			for _, f := range r.flows {
				if f.inflight < 0 {
					return false, fmt.Sprintf("flow %d: inflight %d < 0", f.id, f.inflight)
				}
				if f.sockBytes < 0 {
					return false, fmt.Sprintf("flow %d: sockBytes %d < 0", f.id, f.sockBytes)
				}
				if f.cwnd < float64(cfg.MSS) || f.cwnd > float64(cfg.MaxCwnd) {
					return false, fmt.Sprintf("flow %d: cwnd %.0f outside [%d, %d]", f.id, f.cwnd, cfg.MSS, cfg.MaxCwnd)
				}
				if f.alpha < 0 || f.alpha > 1 {
					return false, fmt.Sprintf("flow %d: alpha %.4f outside [0, 1]", f.id, f.alpha)
				}
			}
			return true, ""
		})
	}
	return r
}

// AttachCopier binds flow i's copy generator to a receiver core; the caller
// creates the core with this generator (one dedicated core per flow, as the
// paper dedicates 4 iperf cores).
func (r *DCTCPReceiver) AttachCopier(i int, c *cpu.Core) { r.flows[i].copier.Bind(c) }

// Copier returns flow i's access generator.
func (r *DCTCPReceiver) Copier(i int) cpu.Generator { return r.flows[i].copier }

// Start begins all senders at time t.
func (r *DCTCPReceiver) Start(t sim.Time) {
	r.eng.At(t, func() {
		for _, f := range r.flows {
			r.trySend(f)
		}
	})
}

// rwnd is the flow's advertised window.
func (r *DCTCPReceiver) rwnd(f *dctcpFlow) int {
	w := r.cfg.SocketBuf - f.sockBytes
	if w < 0 {
		return 0
	}
	return w
}

// trySend transmits packets while cwnd and rwnd allow.
func (r *DCTCPReceiver) trySend(f *dctcpFlow) {
	for {
		win := int(f.cwnd)
		if rw := r.rwnd(f); rw < win {
			win = rw
		}
		if f.inflight+r.cfg.MSS > win {
			// Window-limited: a timer retries if no ack arrives (covers the
			// rwnd-limited case where acks carry the window update).
			if f.retransAt <= r.eng.Now() {
				f.retransAt = r.eng.Now() + r.cfg.RTT
				r.eng.AtFunc(f.retransAt, retransEvent, f)
			}
			return
		}
		f.inflight += r.cfg.MSS
		r.Sent.Inc()
		pkt := &dctcpPacket{flow: f, bytes: r.cfg.MSS}
		// One-way delay, then NIC arrival.
		r.eng.AfterFunc(r.cfg.RTT/2, nicArriveEvent, pkt)
	}
}

// nicArrive applies ECN marking and drop at the NIC rx queue.
func (r *DCTCPReceiver) nicArrive(p *dctcpPacket) {
	if r.queue+p.bytes > r.cfg.QueueCap {
		// Drop: the ack never comes; recover after an RTO-ish delay.
		r.Drops.Inc()
		r.eng.AfterFunc(2*r.cfg.RTT, dropRecoverEvent, p)
		return
	}
	p.ecn = r.queue >= r.cfg.ECNThresh
	r.queue += p.bytes
	r.QueueOcc.Add(p.bytes)
	r.dmaQueue = append(r.dmaQueue, p)
	r.dmaPump()
}

// dmaPump DMAs queued packets into socket buffers, line by line.
func (r *DCTCPReceiver) dmaPump() {
	for len(r.dmaQueue) > 0 {
		p := r.dmaQueue[0]
		if p.lines == 0 {
			p.lines = (p.bytes + mem.LineSize - 1) / mem.LineSize
		}
		for p.lines > 0 {
			addr := r.cfg.BufBase + mem.Addr((r.nextLine*mem.LineSize)%(1<<28))
			pkt := p
			last := p.lines == 1
			ok := r.io.TryWrite(addr, 0, func() {
				if last {
					r.packetDelivered(pkt)
				}
			})
			if !ok {
				if !r.waiting {
					r.waiting = true
					r.io.NotifyWrite(r.wake)
				}
				return
			}
			r.nextLine++
			p.lines--
		}
		r.dmaQueue = r.dmaQueue[1:]
	}
}

// packetDelivered lands a packet in the socket buffer and returns the ACK.
func (r *DCTCPReceiver) packetDelivered(p *dctcpPacket) {
	r.NICBytes.IncN(p.bytes)
	r.queue -= p.bytes
	r.QueueOcc.Add(-p.bytes)
	f := p.flow
	f.sockBytes += p.bytes
	f.copier.wake()
	r.eng.AfterFunc(r.cfg.RTT/2, ackEvent, p)
}

// ack processes a (delayed) acknowledgment at the sender: DCTCP window math.
func (r *DCTCPReceiver) ack(f *dctcpFlow, bytes int, ecn bool) {
	f.inflight -= bytes
	f.acked += bytes
	if ecn {
		f.marked += bytes
	}
	// Per-RTT round accounting: once a cwnd's worth is acked, update alpha
	// and apply the DCTCP decrease (or additive increase).
	if f.acked >= int(f.cwnd) {
		frac := 0.0
		if f.acked > 0 {
			frac = float64(f.marked) / float64(f.acked)
		}
		f.alpha = (1-r.cfg.G)*f.alpha + r.cfg.G*frac
		if f.marked > 0 {
			f.cwnd = max(f.cwnd*(1-f.alpha/2), float64(r.cfg.MSS))
		} else {
			f.cwnd = min(f.cwnd+float64(r.cfg.MSS), float64(r.cfg.MaxCwnd))
		}
		f.acked, f.marked = 0, 0
	}
	r.trySend(f)
}

// GoodputBytesPerSec reports application-level receive throughput.
func (r *DCTCPReceiver) GoodputBytesPerSec() float64 { return r.AppBytes.RatePerSecond() }

// P2MBytesPerSec reports the NIC's DMA (P2M) bandwidth.
func (r *DCTCPReceiver) P2MBytesPerSec() float64 { return r.NICBytes.RatePerSecond() }

// LossRate reports dropped/sent packets.
func (r *DCTCPReceiver) LossRate() float64 {
	if r.Sent.Count() == 0 {
		return 0
	}
	return float64(r.Drops.Count()) / float64(r.Sent.Count())
}

// ResetStats starts a new measurement window.
func (r *DCTCPReceiver) ResetStats() {
	r.AppBytes.Reset()
	r.NICBytes.Reset()
	r.Drops.Reset()
	r.Sent.Reset()
	r.QueueOcc.Reset()
}

// copyGen is the per-flow kernel receive path on a core: for every payload
// cacheline it reads the socket buffer line (C2M read through the LFB) and
// writes the application buffer line (C2M write), plus per-packet protocol
// processing. Its speed therefore degrades exactly when the C2M-Read domain
// latency inflates — the paper's blue-regime coupling for TCP (§2.3).
type copyGen struct {
	flow    *dctcpFlow
	appBase mem.Addr
	core    *cpu.Core

	pos        int64
	pendingWB  []mem.Addr
	packetLeft int // lines left in the current packet's copy
	readyAt    sim.Time
}

// Bind attaches the copier to its receiver core so that data arrivals can
// re-poll an idle core (cores otherwise only re-poll on completions).
func (g *copyGen) Bind(c *cpu.Core) { g.core = c }

// wake is called when new socket-buffer data lands.
func (g *copyGen) wake() {
	if g.core != nil {
		g.core.Nudge()
	}
}

// Poll implements cpu.Generator.
func (g *copyGen) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if len(g.pendingWB) > 0 {
		a := g.pendingWB[0]
		g.pendingWB = g.pendingWB[1:]
		return cpu.Access{Addr: a, Kind: mem.Write}, now, true
	}
	if g.readyAt > now {
		return cpu.Access{}, g.readyAt, true
	}
	if g.packetLeft == 0 {
		f := g.flow
		mss := f.rx.cfg.MSS
		if f.sockBytes < mss {
			return cpu.Access{}, 0, false // wait for data (wake() re-polls)
		}
		f.sockBytes -= mss
		// Window opens: the ack path piggybacks the new rwnd; nudge the
		// sender.
		f.rx.trySend(f)
		g.packetLeft = (mss + mem.LineSize - 1) / mem.LineSize
		// Per-packet protocol processing before the copy starts.
		g.readyAt = now + f.rx.cfg.PerPacketCPU
		return cpu.Access{}, g.readyAt, true
	}
	g.packetLeft--
	addr := g.flow.rx.cfg.BufBase + mem.Addr((g.pos*mem.LineSize)%(1<<28))
	g.pos++
	return cpu.Access{Addr: addr, Kind: mem.Read}, now, true
}

// OnComplete implements cpu.Generator: each copied line is written to the
// app buffer, and finishing a packet's copy counts as goodput.
func (g *copyGen) OnComplete(acc cpu.Access, now sim.Time) {
	if acc.Kind != mem.Read {
		return
	}
	g.pendingWB = append(g.pendingWB, g.appBase+mem.Addr((g.pos*mem.LineSize)%(1<<27)))
	g.flow.rx.AppBytes.IncN(mem.LineSize)
}

// SaveState implements sim.Stateful: packets ride the event heap as args, so
// the engine's live-event walk rewinds them in place.
func (p *dctcpPacket) SaveState() any {
	return dctcpPacket{flow: p.flow, bytes: p.bytes, ecn: p.ecn, lines: p.lines}
}

// LoadState implements sim.Stateful.
func (p *dctcpPacket) LoadState(state any) {
	st := state.(dctcpPacket)
	p.flow, p.bytes, p.ecn, p.lines = st.flow, st.bytes, st.ecn, st.lines
}

// dctcpFlowState rewinds one flow, including its copy generator.
type dctcpFlowState struct {
	cwnd      float64
	alpha     float64
	inflight  int
	acked     int
	marked    int
	roundEnd  int
	sockBytes int
	retransAt sim.Time

	copyPos        int64
	copyPendingWB  []mem.Addr
	copyPacketLeft int
	copyReadyAt    sim.Time
}

// dctcpState is the snapshot of a DCTCPReceiver.
type dctcpState struct {
	flows       []dctcpFlowState
	queue       int
	dmaQueue    []*dctcpPacket
	dmaQueueVal []dctcpPacket
	waiting     bool
	nextLine    int64
}

// SaveState implements sim.Stateful.
func (r *DCTCPReceiver) SaveState() any {
	st := dctcpState{queue: r.queue, waiting: r.waiting, nextLine: r.nextLine}
	for _, f := range r.flows {
		st.flows = append(st.flows, dctcpFlowState{
			cwnd: f.cwnd, alpha: f.alpha, inflight: f.inflight,
			acked: f.acked, marked: f.marked, roundEnd: f.roundEnd,
			sockBytes: f.sockBytes, retransAt: f.retransAt,
			copyPos:        f.copier.pos,
			copyPendingWB:  append([]mem.Addr(nil), f.copier.pendingWB...),
			copyPacketLeft: f.copier.packetLeft,
			copyReadyAt:    f.copier.readyAt,
		})
	}
	for _, p := range r.dmaQueue {
		st.dmaQueue = append(st.dmaQueue, p)
		st.dmaQueueVal = append(st.dmaQueueVal, *p)
	}
	return st
}

// LoadState implements sim.Stateful.
func (r *DCTCPReceiver) LoadState(state any) {
	st := state.(dctcpState)
	r.queue, r.waiting, r.nextLine = st.queue, st.waiting, st.nextLine
	for i, f := range r.flows {
		fs := st.flows[i]
		f.cwnd, f.alpha, f.inflight = fs.cwnd, fs.alpha, fs.inflight
		f.acked, f.marked, f.roundEnd = fs.acked, fs.marked, fs.roundEnd
		f.sockBytes, f.retransAt = fs.sockBytes, fs.retransAt
		f.copier.pos = fs.copyPos
		f.copier.pendingWB = append(f.copier.pendingWB[:0], fs.copyPendingWB...)
		f.copier.packetLeft = fs.copyPacketLeft
		f.copier.readyAt = fs.copyReadyAt
	}
	r.dmaQueue = append(r.dmaQueue[:0], st.dmaQueue...)
	for i, p := range r.dmaQueue {
		*p = st.dmaQueueVal[i]
	}
}
