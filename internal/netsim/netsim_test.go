package netsim

import (
	"testing"

	"repro/internal/cha"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
)

func testRig() (*sim.Engine, *iio.IIO, *cha.CHA) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mc := dram.New(eng, dram.DefaultConfig(), mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	return eng, iio.New(eng, iio.DefaultConfig(), ch), ch
}

func TestRDMAWriteWireRate(t *testing.T) {
	eng, io, _ := testRig()
	nic := NewRDMAWrite(eng, DefaultRDMAWriteConfig(0), io)
	nic.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	nic.ResetStats()
	eng.RunUntil(120 * sim.Microsecond)
	bw := nic.BytesPerSec()
	// ~98 Gbps = 12.25 GB/s, unimpeded.
	if bw < 11.8e9 || bw > 12.6e9 {
		t.Fatalf("RoCE write bw %.2f GB/s, want ~12.25", bw/1e9)
	}
	if nic.PauseFrac.Frac() > 0.01 {
		t.Fatalf("spurious PFC pauses on an idle host: %.3f", nic.PauseFrac.Frac())
	}
}

func TestRDMAWritePFCPausesUnderThrottledIIO(t *testing.T) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mcCfg := dram.DefaultConfig()
	mc := dram.New(eng, mcCfg, mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	// Throttle the IIO link to half the wire rate: the NIC queue must grow
	// and PFC must engage, with no line ever dropped (losslessness).
	ioCfg := iio.DefaultConfig()
	ioCfg.LinePeriodUp = 10 * sim.Nanosecond // 6.4 GB/s
	io := iio.New(eng, ioCfg, ch)
	nic := NewRDMAWrite(eng, DefaultRDMAWriteConfig(0), io)
	nic.Start(0)
	eng.RunUntil(50 * sim.Microsecond)
	nic.ResetStats()
	eng.RunUntil(250 * sim.Microsecond)
	if frac := nic.PauseFrac.Frac(); frac < 0.3 {
		t.Fatalf("pause fraction %.2f, want large under a 2x-throttled IIO", frac)
	}
	bw := nic.BytesPerSec()
	if bw < 5.5e9 || bw > 7e9 {
		t.Fatalf("throttled RoCE bw %.2f GB/s, want ~6.4 (IIO-bound)", bw/1e9)
	}
	if nic.QueueOcc.Max() > 8192 {
		t.Fatalf("queue exceeded its capacity: %d", nic.QueueOcc.Max())
	}
}

func TestRDMAReadWireRate(t *testing.T) {
	eng, io, _ := testRig()
	nic := NewRDMARead(eng, DefaultRDMAWriteConfig(0), io)
	nic.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	nic.ResetStats()
	eng.RunUntil(120 * sim.Microsecond)
	bw := nic.BytesPerSec()
	if bw < 11.5e9 || bw > 12.6e9 {
		t.Fatalf("RoCE read bw %.2f GB/s, want ~12.25", bw/1e9)
	}
}

func TestRDMAInvalidThresholdsPanic(t *testing.T) {
	eng, io, _ := testRig()
	cfg := DefaultRDMAWriteConfig(0)
	cfg.PauseLo = cfg.PauseHi
	defer func() {
		if recover() == nil {
			t.Fatalf("bad PFC thresholds did not panic")
		}
	}()
	NewRDMAWrite(eng, cfg, io)
}

// dctcpRig builds a receiver with its copiers attached to real cores.
func dctcpRig() (*sim.Engine, *DCTCPReceiver) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mc := dram.New(eng, dram.DefaultConfig(), mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	io := iio.New(eng, iio.DefaultConfig(), ch)
	rx := NewDCTCPReceiver(eng, DefaultDCTCPConfig(0), io)
	for i := 0; i < 4; i++ {
		c := cpu.New(eng, cpu.DefaultConfig(), i, ch, rx.Copier(i))
		rx.AttachCopier(i, c)
		c.Start(0)
	}
	return eng, rx
}

func TestDCTCPConvergesNearWireRate(t *testing.T) {
	eng, rx := dctcpRig()
	rx.Start(0)
	eng.RunUntil(100 * sim.Microsecond)
	rx.ResetStats()
	eng.RunUntil(250 * sim.Microsecond)
	if g := rx.GoodputBytesPerSec(); g < 8e9 {
		t.Fatalf("goodput %.2f GB/s, want near the 12.5 GB/s wire", g/1e9)
	}
	if rx.LossRate() > 0.02 {
		t.Fatalf("steady-state loss %.4f too high", rx.LossRate())
	}
}

func TestDCTCPECNControlsQueue(t *testing.T) {
	eng, rx := dctcpRig()
	rx.Start(0)
	eng.RunUntil(300 * sim.Microsecond)
	// Steady state: the queue stays in the ECN-controlled band, well below
	// capacity.
	occ := rx.QueueOcc.Avg()
	if occ > float64(rx.cfg.QueueCap) {
		t.Fatalf("average queue %.0f exceeds capacity", occ)
	}
	if occ <= 0 {
		t.Fatalf("queue never occupied")
	}
}

func TestDCTCPGoodputMatchesP2M(t *testing.T) {
	eng, rx := dctcpRig()
	rx.Start(0)
	eng.RunUntil(100 * sim.Microsecond)
	rx.ResetStats()
	eng.RunUntil(250 * sim.Microsecond)
	g, p := rx.GoodputBytesPerSec(), rx.P2MBytesPerSec()
	// Copied bytes track DMA'd bytes in steady state (within buffer slack).
	if g < p*0.85 || g > p*1.15 {
		t.Fatalf("goodput %.2f vs P2M %.2f GB/s diverged", g/1e9, p/1e9)
	}
}

func TestDCTCPWindowNeverNegative(t *testing.T) {
	eng, rx := dctcpRig()
	rx.Start(0)
	eng.RunUntil(400 * sim.Microsecond)
	for _, f := range rx.flows {
		if f.cwnd < float64(rx.cfg.MSS) {
			t.Fatalf("flow %d cwnd %.0f below one MSS", f.id, f.cwnd)
		}
		if f.inflight < 0 {
			t.Fatalf("flow %d negative inflight %d", f.id, f.inflight)
		}
		if f.sockBytes < 0 {
			t.Fatalf("flow %d negative socket occupancy %d", f.id, f.sockBytes)
		}
	}
}

func TestDCTCPFairnessAcrossFlows(t *testing.T) {
	eng, rx := dctcpRig()
	rx.Start(0)
	eng.RunUntil(150 * sim.Microsecond)
	var minW, maxW float64
	for i, f := range rx.flows {
		if i == 0 || f.cwnd < minW {
			minW = f.cwnd
		}
		if i == 0 || f.cwnd > maxW {
			maxW = f.cwnd
		}
	}
	if maxW > 6*minW {
		t.Fatalf("flow windows diverged: min %.0f max %.0f", minW, maxW)
	}
}

// Host contention must not break inter-flow fairness: all four DCTCP flows
// share the degraded bottleneck roughly equally (the transport's fairness
// survives; what the paper calls isolation violation happens *between* the
// network app and colocated memory apps, not among the flows).
func TestDCTCPFairnessUnderHostContention(t *testing.T) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.DefaultMapperConfig())
	mc := dram.New(eng, dram.DefaultConfig(), mapper, nil)
	ch := cha.New(eng, cha.DefaultConfig(), mc, nil)
	// Throttled IIO: the DMA path is the bottleneck, as in the red regime.
	ioCfg := iio.DefaultConfig()
	ioCfg.LinePeriodUp = 8 * sim.Nanosecond // 8 GB/s
	io := iio.New(eng, ioCfg, ch)
	rx := NewDCTCPReceiver(eng, DefaultDCTCPConfig(0), io)
	var perFlowStart [4]uint64
	for i := 0; i < 4; i++ {
		c := cpu.New(eng, cpu.DefaultConfig(), i, ch, rx.Copier(i))
		rx.AttachCopier(i, c)
		c.Start(0)
	}
	rx.Start(0)
	eng.RunUntil(150 * sim.Microsecond)
	for i, f := range rx.flows {
		perFlowStart[i] = uint64(f.cwnd)
	}
	minW, maxW := perFlowStart[0], perFlowStart[0]
	for _, w := range perFlowStart[1:] {
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 8*minW {
		t.Fatalf("flows diverged under contention: windows %v", perFlowStart)
	}
	if g := rx.GoodputBytesPerSec(); g > 9e9 {
		t.Fatalf("goodput %.1f GB/s exceeds the throttled DMA path", g/1e9)
	}
}
