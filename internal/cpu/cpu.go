// Package cpu models compute cores as seen by the host network: a demand
// access stream gated by the core's Line Fill Buffer (LFB).
//
// The LFB is the credit pool of both C2M domains (§4.1): a read holds its
// entry from allocation until data returns from DRAM (the C2M-Read domain
// spans all hops to DRAM), while a write holds its entry only until the
// request is admitted to the CHA (the C2M-Write domain spans a single hop).
// Cores issue instructions orders of magnitude faster than the unloaded
// domain latency, so a memory-bound core keeps all credits in flight and its
// throughput is exactly C·64/L — which is why any latency inflation turns
// directly into C2M throughput degradation (§5.1).
package cpu

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Access is one demand access produced by a Generator.
type Access struct {
	Addr mem.Addr
	Kind mem.Kind
}

// Generator supplies a core's access stream.
type Generator interface {
	// Poll asks for the next access. If ok is true and at <= now, the access
	// is issued immediately; if at > now the core retries at that time
	// (compute delay). If ok is false the generator is blocked on an
	// outstanding access (dependent chain) and is re-polled after the next
	// completion; a permanently finished generator simply always returns
	// ok=false.
	Poll(now sim.Time) (acc Access, at sim.Time, ok bool)
	// OnComplete informs the generator that one of its accesses finished.
	OnComplete(acc Access, now sim.Time)
}

// Config sets a core's microarchitectural parameters.
type Config struct {
	LFBEntries int      // 10-12 on the testbeds
	IssueGap   sim.Time // minimum spacing between issues (~1 instr slot)
	ToCHA      sim.Time // L1/L2 miss path: LFB allocation -> CHA ingress
	// Prefetch, when non-nil, is the template for the core's hardware
	// stream prefetcher (each core gets its own copy). Nil disables
	// prefetching, matching the paper's quadrant characterization setup.
	Prefetch *Prefetcher
	// Audit, when non-nil, receives the core's LFB invariants.
	Audit *audit.Auditor
}

// DefaultConfig returns the Cascade-Lake-calibrated core parameters.
func DefaultConfig() Config {
	return Config{
		LFBEntries: 12,
		IssueGap:   300 * sim.Picosecond,
		ToCHA:      8 * sim.Nanosecond,
	}
}

// Stats exposes per-core probes.
type Stats struct {
	// LFBOcc tracks entries in use; its maximum recovers the credit count
	// (the paper measures 10-12).
	LFBOcc *telemetry.Integrator
	// LFBLat is the paper's "LFB latency": credit allocation to
	// replenishment, across reads and writes (Fig 6a/6b).
	LFBLat *telemetry.Latency
	// ReadLat/WriteLat split LFB latency by kind.
	ReadLat  *telemetry.Latency
	WriteLat *telemetry.Latency
	// LinesRead/LinesWritten count completed accesses.
	LinesRead, LinesWritten *telemetry.Counter
	// ReadTail records per-read completion latencies for percentile views
	// (the production studies behind the paper report tail inflation).
	ReadTail *telemetry.Histogram
}

// Reset starts a new measurement window.
func (s *Stats) Reset() {
	s.LFBOcc.Reset()
	s.LFBLat.Reset()
	s.ReadLat.Reset()
	s.WriteLat.Reset()
	s.LinesRead.Reset()
	s.LinesWritten.Reset()
	s.ReadTail.Reset()
}

// ReadBytesPerSec reports the core's completed C2M read bandwidth.
func (s *Stats) ReadBytesPerSec() float64 { return s.LinesRead.BytesPerSecond() }

// WriteBytesPerSec reports the core's completed C2M write bandwidth.
func (s *Stats) WriteBytesPerSec() float64 { return s.LinesWritten.BytesPerSecond() }

// Core is one compute core.
type Core struct {
	eng   *sim.Engine
	cfg   Config
	cha   mem.Submitter
	gen   Generator
	index int

	free        int
	nextIssueAt sim.Time
	waker       *sim.Waker
	ids         mem.IDGen
	stats       *Stats

	// submitFn is the bound CHA-submission handler, created once so issuing
	// schedules without allocating a closure; completeFree pools the args of
	// prefetch-hit completion events for the same reason.
	submitFn     sim.EventFunc
	completeFree []*completeArg

	pf     *Prefetcher
	pfWait map[mem.Addr][]Access
}

// completeArg carries a prefetch-hit completion through the event heap.
type completeArg struct {
	c       *Core
	acc     Access
	allocAt sim.Time
}

// completeEvent dispatches a pooled completion: the arg returns to the pool
// before the completion runs, so back-to-back hits reuse one allocation.
func completeEvent(arg any) {
	a := arg.(*completeArg)
	c, acc, at := a.c, a.acc, a.allocAt
	a.c = nil
	c.completeFree = append(c.completeFree, a)
	c.complete(acc, at)
}

func (c *Core) newCompleteArg(acc Access, allocAt sim.Time) *completeArg {
	if n := len(c.completeFree); n > 0 {
		a := c.completeFree[n-1]
		c.completeFree = c.completeFree[:n-1]
		a.c, a.acc, a.allocAt = c, acc, allocAt
		return a
	}
	return &completeArg{c: c, acc: acc, allocAt: allocAt}
}

func (c *Core) submitEvent(arg any) { c.cha.Submit(arg.(*mem.Request)) }

// New builds a core bound to a CHA and an access generator. Call Start to
// begin issuing.
func New(eng *sim.Engine, cfg Config, index int, c mem.Submitter, gen Generator) *Core {
	if cfg.LFBEntries <= 0 {
		panic("cpu: LFBEntries must be positive")
	}
	core := &Core{
		eng:   eng,
		cfg:   cfg,
		cha:   c,
		gen:   gen,
		index: index,
		free:  cfg.LFBEntries,
		stats: &Stats{
			LFBOcc:       telemetry.NewIntegrator(eng),
			LFBLat:       telemetry.NewLatency(eng),
			ReadLat:      telemetry.NewLatency(eng),
			WriteLat:     telemetry.NewLatency(eng),
			LinesRead:    telemetry.NewCounter(eng),
			LinesWritten: telemetry.NewCounter(eng),
			ReadTail:     telemetry.NewHistogram(),
		},
	}
	if cfg.Prefetch != nil {
		pf := *cfg.Prefetch // private copy: prefetcher state is per core
		core.pf = &pf
		core.pfWait = make(map[mem.Addr][]Access)
	}
	eng.Register(core)
	eng.Register(core.stats.ReadTail)
	core.waker = sim.NewWaker(eng, core.pump)
	core.submitFn = core.submitEvent
	if aud := cfg.Audit; aud.Enabled() {
		domain := fmt.Sprintf("cpu/core%d", index)
		aud.Pool(domain, "lfb", cfg.LFBEntries, func() int { return core.free })
		aud.Gauge(domain, "lfb_occ", core.stats.LFBOcc, func() int { return cfg.LFBEntries - core.free })
		aud.Latency(domain, "lfb_lat", core.stats.LFBLat)
	}
	return core
}

// Stats returns the core's probes.
func (c *Core) Stats() *Stats { return c.stats }

// Index returns the core's index.
func (c *Core) Index() int { return c.index }

// Start begins issuing at time t.
func (c *Core) Start(t sim.Time) { c.waker.WakeAt(t) }

// pump issues accesses while LFB credits and the generator allow.
func (c *Core) pump() {
	for c.free > 0 {
		now := c.eng.Now()
		if c.nextIssueAt > now {
			c.waker.WakeAt(c.nextIssueAt)
			return
		}
		acc, at, ok := c.gen.Poll(now)
		if !ok {
			return // blocked on a dependency; completions re-wake us
		}
		if at > now {
			c.waker.WakeAt(at)
			return
		}
		c.issue(acc)
	}
}

func (c *Core) issue(acc Access) {
	now := c.eng.Now()
	c.free--
	c.nextIssueAt = now + c.cfg.IssueGap
	c.stats.LFBOcc.Add(1)
	c.stats.LFBLat.Enter()
	if acc.Kind == mem.Read {
		c.stats.ReadLat.Enter()
	} else {
		c.stats.WriteLat.Enter()
	}
	if acc.Kind == mem.Read && c.pf.enabled() {
		state := c.pf.lookup(acc.Addr)
		c.train(acc.Addr)
		switch state {
		case pfReady:
			// L2 hit on prefetched data: no memory request.
			c.eng.AfterFunc(c.pf.HitLatency, completeEvent, c.newCompleteArg(acc, now))
			return
		case pfInflight:
			// The prefetch is already fetching this line; piggyback on it.
			c.pfWait[acc.Addr] = append(c.pfWait[acc.Addr], acc)
			return
		}
	}
	r := &mem.Request{
		ID:     c.ids.Next(),
		Addr:   acc.Addr,
		Kind:   acc.Kind,
		Source: mem.C2M,
		Origin: c.index,
		TAlloc: now,
	}
	r.Done = func(req *mem.Request) { c.complete(acc, req.TAlloc) }
	c.eng.AfterFunc(c.cfg.ToCHA, c.submitFn, r)
}

// train feeds the prefetcher and launches the prefetches it requests.
func (c *Core) train(a mem.Addr) {
	for _, addr := range c.pf.observe(a) {
		c.issuePrefetch(addr)
	}
}

// issuePrefetch sends a prefetch read. It holds a prefetcher slot, not an
// LFB entry, and generates the same C2M memory traffic a demand read would.
func (c *Core) issuePrefetch(a mem.Addr) {
	r := &mem.Request{
		ID:     c.ids.Next(),
		Addr:   a,
		Kind:   mem.Read,
		Source: mem.C2M,
		Origin: c.index,
		TAlloc: c.eng.Now(),
	}
	r.Done = func(req *mem.Request) {
		c.pf.complete(a)
		if waiters, ok := c.pfWait[a]; ok {
			delete(c.pfWait, a)
			for _, acc := range waiters {
				c.complete(acc, req.TAlloc)
			}
		}
	}
	c.eng.AfterFunc(c.cfg.ToCHA, c.submitFn, r)
}

func (c *Core) complete(acc Access, allocAt sim.Time) {
	c.free++
	c.stats.LFBOcc.Add(-1)
	c.stats.LFBLat.Exit()
	if acc.Kind == mem.Read {
		c.stats.ReadLat.Exit()
		c.stats.LinesRead.Inc()
		c.stats.ReadTail.ObserveNs((c.eng.Now() - allocAt).Nanoseconds())
	} else {
		c.stats.WriteLat.Exit()
		c.stats.LinesWritten.Inc()
	}
	c.gen.OnComplete(acc, c.eng.Now())
	c.waker.Wake()
}

// Nudge re-polls the core's generator. External event sources (e.g. network
// data landing in a socket buffer) use this to wake a core whose generator
// reported itself blocked while nothing was in flight.
func (c *Core) Nudge() { c.waker.Wake() }

// SetIssueGap overrides the core's minimum issue spacing at runtime. Host
// congestion controllers (internal/hostcc) use this as their throttle
// actuator, modeling per-core memory-bandwidth allocation hardware.
func (c *Core) SetIssueGap(g sim.Time) {
	if g < 0 {
		g = 0
	}
	c.cfg.IssueGap = g
}

// IssueGap reports the current minimum issue spacing.
func (c *Core) IssueGap() sim.Time { return c.cfg.IssueGap }

// SaveState implements sim.Stateful: pooled completion args in flight are
// restored in place by the engine's live-event walk.
func (a *completeArg) SaveState() any {
	return completeArg{c: a.c, acc: a.acc, allocAt: a.allocAt}
}

// LoadState implements sim.Stateful.
func (a *completeArg) LoadState(state any) {
	st := state.(completeArg)
	a.c, a.acc, a.allocAt = st.c, st.acc, st.allocAt
}

// coreState is the snapshot of a Core. The issue gap is part of it because
// host congestion controllers mutate it at runtime.
type coreState struct {
	issueGap     sim.Time
	free         int
	nextIssueAt  sim.Time
	ids          mem.IDGen
	completeFree []*completeArg
	pf           prefetcherState
	hasPF        bool
	pfWaitKeys   []mem.Addr
	pfWaitVals   [][]Access
}

// SaveState implements sim.Stateful.
func (c *Core) SaveState() any {
	st := coreState{
		issueGap:     c.cfg.IssueGap,
		free:         c.free,
		nextIssueAt:  c.nextIssueAt,
		ids:          c.ids,
		completeFree: append([]*completeArg(nil), c.completeFree...),
	}
	if c.pf != nil {
		st.hasPF = true
		st.pf = c.pf.saveState()
		for a, w := range c.pfWait {
			st.pfWaitKeys = append(st.pfWaitKeys, a)
			st.pfWaitVals = append(st.pfWaitVals, append([]Access(nil), w...))
		}
	}
	return st
}

// LoadState implements sim.Stateful.
func (c *Core) LoadState(state any) {
	st := state.(coreState)
	c.cfg.IssueGap = st.issueGap
	c.free, c.nextIssueAt, c.ids = st.free, st.nextIssueAt, st.ids
	c.completeFree = append(c.completeFree[:0], st.completeFree...)
	if st.hasPF {
		c.pf.loadState(st.pf)
		clear(c.pfWait)
		for i, a := range st.pfWaitKeys {
			c.pfWait[a] = append([]Access(nil), st.pfWaitVals[i]...)
		}
	}
}
