package cpu

import (
	"testing"

	"repro/internal/cha"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

func testRig() (*sim.Engine, *cha.CHA) {
	eng := sim.New()
	mapper := mem.MustMapper(mem.MapperConfig{Channels: 1, Banks: 16, RowBytes: 8192})
	mcCfg := dram.DefaultConfig()
	mcCfg.Timing = dram.Timing{
		TTrans: 3 * sim.Nanosecond, TRCD: 15 * sim.Nanosecond, TRP: 15 * sim.Nanosecond,
		TCL: 15 * sim.Nanosecond, TWTR: 8 * sim.Nanosecond, TRTW: 6 * sim.Nanosecond,
	}
	mc := dram.New(eng, mcCfg, mapper, nil)
	return eng, cha.New(eng, cha.DefaultConfig(), mc, nil)
}

// fixedGen serves a fixed list of accesses, then blocks forever.
type fixedGen struct {
	accs []Access
	pos  int
	done []Access
}

func (g *fixedGen) Poll(now sim.Time) (Access, sim.Time, bool) {
	if g.pos >= len(g.accs) {
		return Access{}, 0, false
	}
	a := g.accs[g.pos]
	g.pos++
	return a, now, true
}

func (g *fixedGen) OnComplete(a Access, now sim.Time) { g.done = append(g.done, a) }

// delayGen produces one access every gap.
type delayGen struct {
	gap   sim.Time
	next  sim.Time
	count int
	limit int
}

func (g *delayGen) Poll(now sim.Time) (Access, sim.Time, bool) {
	if g.count >= g.limit {
		return Access{}, 0, false
	}
	if g.next > now {
		return Access{}, g.next, true
	}
	g.count++
	g.next = now + g.gap
	return Access{Addr: mem.Addr(g.count * mem.LineSize), Kind: mem.Read}, now, true
}

func (g *delayGen) OnComplete(Access, sim.Time) {}

func TestCoreCompletesAllAccesses(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{}
	for i := 0; i < 50; i++ {
		gen.accs = append(gen.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.Run()
	if len(gen.done) != 50 {
		t.Fatalf("completed %d of 50", len(gen.done))
	}
	if c.Stats().LinesRead.Count() != 50 {
		t.Fatalf("LinesRead = %d", c.Stats().LinesRead.Count())
	}
}

func TestLFBCreditLimit(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{}
	for i := 0; i < 200; i++ {
		gen.accs = append(gen.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	cfg := DefaultConfig()
	cfg.LFBEntries = 5
	c := New(eng, cfg, 0, ch, gen)
	c.Start(0)
	eng.Run()
	if max := c.Stats().LFBOcc.Max(); max != 5 {
		t.Fatalf("LFB occupancy max = %d, want 5", max)
	}
	if c.Stats().LFBOcc.Level() != 0 {
		t.Fatalf("LFB did not drain")
	}
}

func TestMemoryBoundCoreSaturatesCredits(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{}
	for i := 0; i < 5000; i++ {
		gen.accs = append(gen.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.RunUntil(20 * sim.Microsecond)
	// §5.1: a memory-bound core keeps essentially all credits in flight.
	if avg := c.Stats().LFBOcc.Avg(); avg < 11 {
		t.Fatalf("average LFB occupancy %.1f, want ~12 (fully utilized)", avg)
	}
}

func TestComputeBoundCoreLeavesCreditsIdle(t *testing.T) {
	eng, ch := testRig()
	gen := &delayGen{gap: 500 * sim.Nanosecond, limit: 50}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.Run()
	// One access per 500ns with ~80ns latency: occupancy stays low.
	if avg := c.Stats().LFBOcc.Avg(); avg > 1 {
		t.Fatalf("compute-bound occupancy %.2f, want < 1", avg)
	}
	if gen.count != 50 {
		t.Fatalf("issued %d of 50", gen.count)
	}
}

func TestWriteCreditReleasedAtCHA(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{accs: []Access{{Addr: 0, Kind: mem.Write}}}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.Run()
	// C2M-Write domain: ToCHA (8) + admission; ~8-10ns, far below a read's ~78.
	wlat := c.Stats().WriteLat.AvgNanos()
	if wlat < 5 || wlat > 15 {
		t.Fatalf("write LFB latency %.1f ns, want ~8-10", wlat)
	}
	if c.Stats().LinesWritten.Count() != 1 {
		t.Fatalf("LinesWritten = %d", c.Stats().LinesWritten.Count())
	}
}

func TestReadVsWriteLatencySplit(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{}
	for i := 0; i < 20; i++ {
		k := mem.Read
		if i%2 == 1 {
			k = mem.Write
		}
		gen.accs = append(gen.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: k})
	}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.Run()
	st := c.Stats()
	if st.ReadLat.AvgNanos() <= st.WriteLat.AvgNanos() {
		t.Fatalf("read latency (%.1f) should exceed write latency (%.1f): reads span to DRAM, writes end at the CHA",
			st.ReadLat.AvgNanos(), st.WriteLat.AvgNanos())
	}
}

func TestIssueGapPacesIssue(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{}
	for i := 0; i < 10; i++ {
		gen.accs = append(gen.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	cfg := DefaultConfig()
	cfg.IssueGap = 50 * sim.Nanosecond
	c := New(eng, cfg, 0, ch, gen)
	c.Start(0)
	eng.Run()
	// 10 issues spaced 50ns: the run must extend past 450ns.
	if eng.Now() < 450*sim.Nanosecond {
		t.Fatalf("run ended at %v; issue gap not respected", eng.Now())
	}
}

func TestStartDelay(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{accs: []Access{{Addr: 0, Kind: mem.Read}}}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(1 * sim.Microsecond)
	eng.Run()
	if len(gen.done) != 1 {
		t.Fatalf("access did not complete")
	}
	if eng.Now() < 1*sim.Microsecond {
		t.Fatalf("core started before Start time")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	eng, ch := testRig()
	defer func() {
		if recover() == nil {
			t.Fatalf("zero LFB entries did not panic")
		}
	}()
	New(eng, Config{LFBEntries: 0}, 0, ch, &fixedGen{})
}

func TestStatsReset(t *testing.T) {
	eng, ch := testRig()
	gen := &fixedGen{accs: []Access{{Addr: 0, Kind: mem.Read}}}
	c := New(eng, DefaultConfig(), 0, ch, gen)
	c.Start(0)
	eng.Run()
	c.Stats().Reset()
	if c.Stats().LinesRead.Count() != 0 || c.Stats().LFBLat.Arr.Count() != 0 {
		t.Fatalf("reset incomplete")
	}
}
