package cpu

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Prefetcher models the core's L2 hardware stream prefetcher. The paper runs
// its application experiments with prefetching on and its quadrant
// characterization with it off, reporting (§2.1, §2.2) that prefetching
// improves sequential C2M throughput in both isolated and colocated runs but
// leaves the degradation *ratio* roughly unchanged, and has <5% effect on
// random-access workloads.
//
// Mechanics: the prefetcher watches the demand-miss stream; after Trigger
// consecutive +1-line strides it runs Depth lines ahead of the demand
// stream, issuing reads through its own slot pool (separate from the LFB, as
// L2 prefetches are on real cores). A demand access that hits a completed
// prefetch finishes at L2-hit latency instead of going to memory; one that
// hits an in-flight prefetch waits for it.
type Prefetcher struct {
	// Slots bounds in-flight prefetches (0 disables prefetching).
	Slots int
	// Depth is how many lines ahead of the demand stream to run.
	Depth int
	// Trigger is the consecutive-stride count that arms the stream.
	Trigger int
	// HitLatency is the completion latency for a demand hit on prefetched
	// data (an L2 hit).
	HitLatency sim.Time

	lastAddr mem.Addr
	streak   int
	armed    bool
	nextPF   mem.Addr

	inflight map[mem.Addr]bool
	ready    map[mem.Addr]bool
	// readyOrder remembers completion order of the ready set so capacity
	// eviction is deterministic (oldest first). Iterating the map to pick a
	// victim would leak Go's randomized map order into simulation output.
	readyOrder []mem.Addr
	readyHead  int
	free       int
}

// DefaultPrefetcher returns an L2-stream-prefetcher-like configuration.
func DefaultPrefetcher() *Prefetcher {
	return &Prefetcher{
		Slots:      16,
		Depth:      24,
		Trigger:    3,
		HitLatency: 14 * sim.Nanosecond,
	}
}

func (p *Prefetcher) init() {
	if p.inflight == nil {
		p.inflight = make(map[mem.Addr]bool)
		p.ready = make(map[mem.Addr]bool)
		p.free = p.Slots
	}
}

// enabled reports whether the prefetcher is active.
func (p *Prefetcher) enabled() bool { return p != nil && p.Slots > 0 }

// observe trains on a demand access and returns the prefetch addresses to
// issue now.
func (p *Prefetcher) observe(a mem.Addr) []mem.Addr {
	p.init()
	if a == p.lastAddr+mem.LineSize {
		p.streak++
	} else if a != p.lastAddr {
		p.streak = 0
		p.armed = false
	}
	p.lastAddr = a
	if !p.armed && p.streak >= p.Trigger {
		p.armed = true
		p.nextPF = a + mem.LineSize
	}
	if !p.armed {
		return nil
	}
	var out []mem.Addr
	limit := a + mem.Addr(p.Depth+1)*mem.LineSize
	for p.free > 0 && p.nextPF <= limit {
		addr := p.nextPF
		p.nextPF += mem.LineSize
		if p.ready[addr] || p.inflight[addr] {
			continue
		}
		p.inflight[addr] = true
		p.free--
		out = append(out, addr)
	}
	return out
}

// lookup classifies a demand access against the prefetch state.
type pfState uint8

const (
	pfMiss pfState = iota
	pfReady
	pfInflight
)

func (p *Prefetcher) lookup(a mem.Addr) pfState {
	if !p.enabled() {
		return pfMiss
	}
	p.init()
	if p.ready[a] {
		delete(p.ready, a)
		return pfReady
	}
	if p.inflight[a] {
		return pfInflight
	}
	return pfMiss
}

// complete records a finished prefetch.
func (p *Prefetcher) complete(a mem.Addr) {
	if p.inflight[a] {
		delete(p.inflight, a)
		p.free++
		p.ready[a] = true
		p.readyOrder = append(p.readyOrder, a)
		// Entries consumed by lookup stay in readyOrder as tombstones; drop
		// any at the front so the order list tracks the live ready set
		// instead of growing for the whole run.
		p.pruneReadyOrder()
		// Cap the ready set: evict the oldest unconsumed line (the tiny L2
		// footprint of prefetched-but-unconsumed lines). Iterating the map to
		// pick a victim would leak Go's randomized map order into simulation
		// output; completion order is deterministic.
		for len(p.ready) > 4*p.Slots && p.readyHead < len(p.readyOrder) {
			victim := p.readyOrder[p.readyHead]
			p.readyHead++
			delete(p.ready, victim)
			p.pruneReadyOrder()
		}
	}
}

// pruneReadyOrder advances past tombstones and compacts the backing array
// once the dead prefix dominates, keeping the order list O(live entries).
func (p *Prefetcher) pruneReadyOrder() {
	for p.readyHead < len(p.readyOrder) && !p.ready[p.readyOrder[p.readyHead]] {
		p.readyHead++
	}
	if p.readyHead > 64 && p.readyHead > len(p.readyOrder)/2 {
		n := copy(p.readyOrder, p.readyOrder[p.readyHead:])
		p.readyOrder = p.readyOrder[:n]
		p.readyHead = 0
	}
}

// prefetcherState is the snapshot of a Prefetcher.
type prefetcherState struct {
	lastAddr   mem.Addr
	streak     int
	armed      bool
	nextPF     mem.Addr
	inflight   []mem.Addr
	ready      []mem.Addr
	readyOrder []mem.Addr
	free       int
}

func (p *Prefetcher) saveState() prefetcherState {
	st := prefetcherState{
		lastAddr:   p.lastAddr,
		streak:     p.streak,
		armed:      p.armed,
		nextPF:     p.nextPF,
		readyOrder: append([]mem.Addr(nil), p.readyOrder[p.readyHead:]...),
		free:       p.free,
	}
	for a := range p.inflight {
		st.inflight = append(st.inflight, a)
	}
	for a := range p.ready {
		st.ready = append(st.ready, a)
	}
	return st
}

func (p *Prefetcher) loadState(st prefetcherState) {
	p.init()
	p.lastAddr, p.streak, p.armed, p.nextPF, p.free = st.lastAddr, st.streak, st.armed, st.nextPF, st.free
	clear(p.inflight)
	for _, a := range st.inflight {
		p.inflight[a] = true
	}
	clear(p.ready)
	for _, a := range st.ready {
		p.ready[a] = true
	}
	p.readyOrder = append(p.readyOrder[:0], st.readyOrder...)
	p.readyHead = 0
}
