package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func seqAccesses(n int) *fixedGen {
	g := &fixedGen{}
	for i := 0; i < n; i++ {
		g.accs = append(g.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	return g
}

func TestPrefetcherDetectsStream(t *testing.T) {
	p := DefaultPrefetcher()
	var issued []mem.Addr
	for i := 0; i < 10; i++ {
		issued = append(issued, p.observe(mem.Addr(i*mem.LineSize))...)
	}
	if len(issued) == 0 {
		t.Fatalf("sequential stream never triggered prefetches")
	}
	// Prefetches run ahead of the demand stream.
	for _, a := range issued {
		if a <= 3*mem.LineSize {
			t.Fatalf("prefetch %#x not ahead of the trigger point", a)
		}
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := DefaultPrefetcher()
	addrs := []mem.Addr{0x1000, 0x9040, 0x2480, 0x77c0, 0x31c0, 0x5a00, 0x1280, 0x8fc0}
	for _, a := range addrs {
		if got := p.observe(a); len(got) != 0 {
			t.Fatalf("random stream triggered prefetch of %v", got)
		}
	}
}

func TestPrefetcherSlotLimit(t *testing.T) {
	p := DefaultPrefetcher()
	p.Slots = 2
	inflight := 0
	for i := 0; i < 20; i++ {
		inflight += len(p.observe(mem.Addr(i * mem.LineSize)))
	}
	if inflight > 2 {
		t.Fatalf("issued %d prefetches with 2 slots and no completions", inflight)
	}
}

func TestPrefetcherLifecycle(t *testing.T) {
	p := DefaultPrefetcher()
	var pf []mem.Addr
	for i := 0; i < 6; i++ {
		pf = append(pf, p.observe(mem.Addr(i*mem.LineSize))...)
	}
	if len(pf) == 0 {
		t.Fatalf("no prefetches")
	}
	a := pf[0]
	if got := p.lookup(a); got != pfInflight {
		t.Fatalf("lookup(inflight) = %v", got)
	}
	p.complete(a)
	if got := p.lookup(a); got != pfReady {
		t.Fatalf("lookup(ready) = %v", got)
	}
	// Ready entries are consumed by lookup.
	if got := p.lookup(a); got != pfMiss {
		t.Fatalf("ready entry not consumed")
	}
}

func TestDisabledPrefetcherIsMiss(t *testing.T) {
	var p *Prefetcher
	if p.enabled() {
		t.Fatalf("nil prefetcher enabled")
	}
	if got := p.lookup(0); got != pfMiss {
		t.Fatalf("nil prefetcher lookup = %v", got)
	}
}

// §2.2's claim: prefetching improves sequential throughput. The prefetcher
// raises effective memory-level parallelism beyond the LFB bound.
func TestPrefetchImprovesSequentialThroughput(t *testing.T) {
	run := func(pf *Prefetcher) (lines uint64, dur sim.Time) {
		eng, ch := testRig()
		cfg := DefaultConfig()
		cfg.Prefetch = pf
		gen := seqAccesses(4000)
		c := New(eng, cfg, 0, ch, gen)
		c.Start(0)
		eng.Run()
		return c.Stats().LinesRead.Count(), eng.Now()
	}
	offLines, offDur := run(nil)
	onLines, onDur := run(DefaultPrefetcher())
	if offLines != 4000 || onLines != 4000 {
		t.Fatalf("incomplete runs: off=%d on=%d", offLines, onLines)
	}
	speedup := float64(offDur) / float64(onDur)
	if speedup < 1.15 {
		t.Fatalf("prefetch speedup %.2fx, want >= 1.15x on a sequential stream", speedup)
	}
}

// §2.1's claim: prefetching has little effect on random-access workloads.
func TestPrefetchNeutralForRandomAccess(t *testing.T) {
	run := func(pf *Prefetcher) sim.Time {
		eng, ch := testRig()
		cfg := DefaultConfig()
		cfg.Prefetch = pf
		gen := &fixedGen{}
		// A fixed pseudo-random pattern (same for both runs).
		x := uint64(12345)
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			gen.accs = append(gen.accs, Access{
				Addr: mem.Addr((x>>33)%(1<<20)) * mem.LineSize, Kind: mem.Read})
		}
		c := New(eng, cfg, 0, ch, gen)
		c.Start(0)
		eng.Run()
		return eng.Now()
	}
	off, on := run(nil), run(DefaultPrefetcher())
	diff := float64(on-off) / float64(off)
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("prefetch changed random-access runtime by %.1f%%, want < 5%%", diff*100)
	}
}

// Demand hits on in-flight prefetches must complete exactly once.
func TestPrefetchInflightPiggyback(t *testing.T) {
	eng, ch := testRig()
	cfg := DefaultConfig()
	pf := DefaultPrefetcher()
	pf.Trigger = 1 // arm aggressively so demands catch in-flight prefetches
	cfg.Prefetch = pf
	gen := seqAccesses(500)
	c := New(eng, cfg, 0, ch, gen)
	c.Start(0)
	eng.Run()
	if got := c.Stats().LinesRead.Count(); got != 500 {
		t.Fatalf("completed %d of 500 with piggybacking", got)
	}
	if c.Stats().LFBOcc.Level() != 0 {
		t.Fatalf("LFB leak: %d entries still held", c.Stats().LFBOcc.Level())
	}
}
