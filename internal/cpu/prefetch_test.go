package cpu

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func seqAccesses(n int) *fixedGen {
	g := &fixedGen{}
	for i := 0; i < n; i++ {
		g.accs = append(g.accs, Access{Addr: mem.Addr(i * mem.LineSize), Kind: mem.Read})
	}
	return g
}

func TestPrefetcherDetectsStream(t *testing.T) {
	p := DefaultPrefetcher()
	var issued []mem.Addr
	for i := 0; i < 10; i++ {
		issued = append(issued, p.observe(mem.Addr(i*mem.LineSize))...)
	}
	if len(issued) == 0 {
		t.Fatalf("sequential stream never triggered prefetches")
	}
	// Prefetches run ahead of the demand stream.
	for _, a := range issued {
		if a <= 3*mem.LineSize {
			t.Fatalf("prefetch %#x not ahead of the trigger point", a)
		}
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := DefaultPrefetcher()
	addrs := []mem.Addr{0x1000, 0x9040, 0x2480, 0x77c0, 0x31c0, 0x5a00, 0x1280, 0x8fc0}
	for _, a := range addrs {
		if got := p.observe(a); len(got) != 0 {
			t.Fatalf("random stream triggered prefetch of %v", got)
		}
	}
}

func TestPrefetcherSlotLimit(t *testing.T) {
	p := DefaultPrefetcher()
	p.Slots = 2
	inflight := 0
	for i := 0; i < 20; i++ {
		inflight += len(p.observe(mem.Addr(i * mem.LineSize)))
	}
	if inflight > 2 {
		t.Fatalf("issued %d prefetches with 2 slots and no completions", inflight)
	}
}

func TestPrefetcherLifecycle(t *testing.T) {
	p := DefaultPrefetcher()
	var pf []mem.Addr
	for i := 0; i < 6; i++ {
		pf = append(pf, p.observe(mem.Addr(i*mem.LineSize))...)
	}
	if len(pf) == 0 {
		t.Fatalf("no prefetches")
	}
	a := pf[0]
	if got := p.lookup(a); got != pfInflight {
		t.Fatalf("lookup(inflight) = %v", got)
	}
	p.complete(a)
	if got := p.lookup(a); got != pfReady {
		t.Fatalf("lookup(ready) = %v", got)
	}
	// Ready entries are consumed by lookup.
	if got := p.lookup(a); got != pfMiss {
		t.Fatalf("ready entry not consumed")
	}
}

func TestDisabledPrefetcherIsMiss(t *testing.T) {
	var p *Prefetcher
	if p.enabled() {
		t.Fatalf("nil prefetcher enabled")
	}
	if got := p.lookup(0); got != pfMiss {
		t.Fatalf("nil prefetcher lookup = %v", got)
	}
}

// §2.2's claim: prefetching improves sequential throughput. The prefetcher
// raises effective memory-level parallelism beyond the LFB bound.
func TestPrefetchImprovesSequentialThroughput(t *testing.T) {
	run := func(pf *Prefetcher) (lines uint64, dur sim.Time) {
		eng, ch := testRig()
		cfg := DefaultConfig()
		cfg.Prefetch = pf
		gen := seqAccesses(4000)
		c := New(eng, cfg, 0, ch, gen)
		c.Start(0)
		eng.Run()
		return c.Stats().LinesRead.Count(), eng.Now()
	}
	offLines, offDur := run(nil)
	onLines, onDur := run(DefaultPrefetcher())
	if offLines != 4000 || onLines != 4000 {
		t.Fatalf("incomplete runs: off=%d on=%d", offLines, onLines)
	}
	speedup := float64(offDur) / float64(onDur)
	if speedup < 1.15 {
		t.Fatalf("prefetch speedup %.2fx, want >= 1.15x on a sequential stream", speedup)
	}
}

// §2.1's claim: prefetching has little effect on random-access workloads.
func TestPrefetchNeutralForRandomAccess(t *testing.T) {
	run := func(pf *Prefetcher) sim.Time {
		eng, ch := testRig()
		cfg := DefaultConfig()
		cfg.Prefetch = pf
		gen := &fixedGen{}
		// A fixed pseudo-random pattern (same for both runs).
		x := uint64(12345)
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			gen.accs = append(gen.accs, Access{
				Addr: mem.Addr((x>>33)%(1<<20)) * mem.LineSize, Kind: mem.Read})
		}
		c := New(eng, cfg, 0, ch, gen)
		c.Start(0)
		eng.Run()
		return eng.Now()
	}
	off, on := run(nil), run(DefaultPrefetcher())
	diff := float64(on-off) / float64(off)
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("prefetch changed random-access runtime by %.1f%%, want < 5%%", diff*100)
	}
}

// Demand hits on in-flight prefetches must complete exactly once.
func TestPrefetchInflightPiggyback(t *testing.T) {
	eng, ch := testRig()
	cfg := DefaultConfig()
	pf := DefaultPrefetcher()
	pf.Trigger = 1 // arm aggressively so demands catch in-flight prefetches
	cfg.Prefetch = pf
	gen := seqAccesses(500)
	c := New(eng, cfg, 0, ch, gen)
	c.Start(0)
	eng.Run()
	if got := c.Stats().LinesRead.Count(); got != 500 {
		t.Fatalf("completed %d of 500 with piggybacking", got)
	}
	if c.Stats().LFBOcc.Level() != 0 {
		t.Fatalf("LFB leak: %d entries still held", c.Stats().LFBOcc.Level())
	}
}

// driveEvictions arms a stream, completes every issued prefetch without
// consuming any, and re-arms at a fresh region until the ready-set cap
// forces well over a hundred evictions. It returns the surviving ready set
// in a canonical (sorted) order.
func driveEvictions(p *Prefetcher) []mem.Addr {
	base := mem.Addr(0)
	for round := 0; round < 40; round++ {
		for i := 0; i < 8; i++ {
			for _, pf := range p.observe(base + mem.Addr(i*mem.LineSize)) {
				p.complete(pf)
			}
		}
		base += 1 << 20 // jump far away: the old stream's lines are never consumed
	}
	var out []mem.Addr
	for a := range p.ready {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPrefetcherEvictionDeterministic pins the fix for the ready-set
// capacity eviction: the victim used to be picked by ranging over the ready
// map, leaking Go's randomized map iteration order into simulation state.
// Two identical runs must now leave identical survivors (oldest-completed
// lines evicted first).
func TestPrefetcherEvictionDeterministic(t *testing.T) {
	a := driveEvictions(DefaultPrefetcher())
	b := driveEvictions(DefaultPrefetcher())
	// The drive must actually exercise the cap, or the test is vacuous.
	if len(a) < 4*DefaultPrefetcher().Slots {
		t.Fatalf("ready set never reached the eviction cap: %d lines", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("eviction survivors differ between identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestPrefetcherEvictionOldestFirst checks the documented policy directly:
// with the cap exceeded, the lines evicted are exactly the oldest completed
// ones, so the survivors are the most recent 4*Slots completions.
func TestPrefetcherEvictionOldestFirst(t *testing.T) {
	p := &Prefetcher{Slots: 2, Depth: 4, Trigger: 1, HitLatency: sim.Nanosecond}
	p.init()
	var completed []mem.Addr
	base := mem.Addr(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			for _, pf := range p.observe(base + mem.Addr(i*mem.LineSize)) {
				p.complete(pf)
				completed = append(completed, pf)
			}
		}
		base += 1 << 20
	}
	cap := 4 * p.Slots
	if len(completed) <= cap {
		t.Fatalf("only %d completions; need more than %d to force eviction", len(completed), cap)
	}
	want := map[mem.Addr]bool{}
	for _, a := range completed[len(completed)-cap:] {
		want[a] = true
	}
	if !reflect.DeepEqual(p.ready, want) {
		t.Fatalf("survivors are not the newest %d completions:\ngot  %v\nwant %v", cap, p.ready, want)
	}
}
