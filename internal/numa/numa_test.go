package numa

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// fakeCHA records submissions and completes them after a fixed latency.
type fakeCHA struct {
	eng     *sim.Engine
	latency sim.Time
	got     []*mem.Request
}

func (f *fakeCHA) Submit(r *mem.Request) {
	f.got = append(f.got, r)
	f.eng.After(f.latency, func() {
		if r.Done != nil {
			r.Done(r)
		}
	})
}

func rig() (*sim.Engine, *Router, *fakeCHA, *fakeCHA) {
	eng := sim.New()
	c0 := &fakeCHA{eng: eng, latency: 30 * sim.Nanosecond}
	c1 := &fakeCHA{eng: eng, latency: 30 * sim.Nanosecond}
	r := New(eng, DefaultConfig(), c0, c1, func(a mem.Addr) int { return int(a >> 38 & 1) })
	return eng, r, c0, c1
}

func TestLocalBypassesLink(t *testing.T) {
	eng, r, c0, c1 := rig()
	var doneAt sim.Time = -1
	req := &mem.Request{Addr: 0, Kind: mem.Read}
	req.Done = func(*mem.Request) { doneAt = eng.Now() }
	eng.At(0, func() { r.Port(0).Submit(req) })
	eng.Run()
	if len(c0.got) != 1 || len(c1.got) != 0 {
		t.Fatalf("local request misrouted: c0=%d c1=%d", len(c0.got), len(c1.got))
	}
	if doneAt != 30*sim.Nanosecond {
		t.Fatalf("local done at %v, want 30ns (no UPI cost)", doneAt)
	}
	if r.Stats().RemoteReads.Count() != 0 {
		t.Fatalf("local request counted as remote")
	}
}

func TestRemoteReadRoundTrip(t *testing.T) {
	eng, r, c0, c1 := rig()
	var doneAt sim.Time = -1
	req := &mem.Request{Addr: 1 << 38, Kind: mem.Read}
	req.Done = func(*mem.Request) { doneAt = eng.Now() }
	eng.At(0, func() { r.Port(0).Submit(req) })
	eng.Run()
	if len(c1.got) != 1 || len(c0.got) != 0 {
		t.Fatalf("remote request misrouted")
	}
	// Request hop 40 + home service 30 + data serialization 3.2 + data hop
	// 40 = 113.2 ns.
	want := 40*sim.Nanosecond + 30*sim.Nanosecond + 3200*sim.Picosecond + 40*sim.Nanosecond
	if doneAt != want {
		t.Fatalf("remote read done at %v, want %v", doneAt, want)
	}
	if r.Stats().RemoteReads.Count() != 1 {
		t.Fatalf("remote read not counted")
	}
}

func TestRemoteWriteSerializesOutbound(t *testing.T) {
	eng, r, _, c1 := rig()
	// Two writes from socket 0 to socket 1 at the same instant: the second
	// arrives one line period later.
	times := map[int]sim.Time{}
	for i := 0; i < 2; i++ {
		i := i
		req := &mem.Request{ID: uint64(i), Addr: 1 << 38, Kind: mem.Write}
		req.Done = func(*mem.Request) { times[i] = eng.Now() }
		eng.At(0, func() { r.Port(0).Submit(req) })
	}
	eng.Run()
	if len(c1.got) != 2 {
		t.Fatalf("writes lost: %d", len(c1.got))
	}
	if d := times[1] - times[0]; d != 3200*sim.Picosecond {
		t.Fatalf("outbound serialization gap %v, want one line period", d)
	}
	if r.Stats().RemoteWrites.Count() != 2 {
		t.Fatalf("remote writes not counted")
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	eng, r, c0, c1 := rig()
	done := 0
	for i := 0; i < 50; i++ {
		a := &mem.Request{Addr: 1 << 38, Kind: mem.Write}
		a.Done = func(*mem.Request) { done++ }
		b := &mem.Request{Addr: 0, Kind: mem.Write}
		b.Done = func(*mem.Request) { done++ }
		eng.At(0, func() { r.Port(0).Submit(a) }) // 0 -> 1
		eng.At(0, func() { r.Port(1).Submit(b) }) // 1 -> 0
	}
	eng.Run()
	if done != 100 {
		t.Fatalf("completed %d of 100", done)
	}
	if len(c0.got) != 50 || len(c1.got) != 50 {
		t.Fatalf("misrouted: c0=%d c1=%d", len(c0.got), len(c1.got))
	}
	// Both directions saw traffic.
	if r.Stats().LinkBusy[0].Frac() <= 0 || r.Stats().LinkBusy[1].Frac() <= 0 {
		t.Fatalf("direction busy fractions: %v %v",
			r.Stats().LinkBusy[0].Frac(), r.Stats().LinkBusy[1].Frac())
	}
}

func TestLinkThroughputBound(t *testing.T) {
	eng, r, _, c1 := rig()
	const n = 2000
	done := 0
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			req := &mem.Request{Addr: 1 << 38, Kind: mem.Write}
			req.Done = func(*mem.Request) { done++ }
			r.Port(0).Submit(req)
		}
	})
	eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	// n lines serialized at 3.2 ns each: the last arrival at the home CHA
	// cannot be earlier than n * period.
	last := c1.got[len(c1.got)-1]
	if last.TCHAEnter != 0 {
		t.Fatalf("fake CHA does not stamp; inspect arrival through engine time instead")
	}
	if eng.Now() < sim.Time(n)*3200*sim.Picosecond {
		t.Fatalf("run finished before the link could have carried %d lines", n)
	}
}
