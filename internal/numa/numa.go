// Package numa extends the host model to multiple sockets — the first item
// on the paper's §7 list ("a natural next step is to extend our study to
// hosts with multiple sockets").
//
// Each socket owns a full local host network (CHA, MC, DRAM). A UPI-style
// processor interconnect joins them: a request whose physical address is
// homed on another socket crosses the link (paying per-direction
// serialization for cacheline-sized messages plus a propagation latency),
// is serviced by the *home* socket's CHA/MC, and its response crosses back.
// Remote traffic therefore contends twice: on the UPI link and inside the
// remote socket's memory interconnect — which is exactly what makes
// cross-socket colocation interesting.
package numa

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config models the socket interconnect.
type Config struct {
	// ReqLatency is the one-way propagation for a request/ack message.
	ReqLatency sim.Time
	// DataLatency is the one-way propagation for a data message.
	DataLatency sim.Time
	// LinePeriod is the per-cacheline serialization time in one direction
	// (~3.2 ns at 20 GB/s per direction).
	LinePeriod sim.Time

	// Audit, when non-nil, receives the link-state invariants.
	Audit *audit.Auditor
}

// DefaultConfig models a two-socket UPI link: ~40 ns one-way, ~20 GB/s per
// direction (remote-memory reads land at the familiar ~150 ns).
func DefaultConfig() Config {
	return Config{
		ReqLatency:  40 * sim.Nanosecond,
		DataLatency: 40 * sim.Nanosecond,
		LinePeriod:  3200 * sim.Picosecond,
	}
}

// Stats exposes the interconnect probes.
type Stats struct {
	// RemoteReads/RemoteWrites count cross-socket requests.
	RemoteReads, RemoteWrites *telemetry.Counter
	// LinkBusy measures utilization per direction (0: socket0->1).
	LinkBusy [2]*telemetry.FracTimer
}

// Reset starts a new measurement window.
func (s *Stats) Reset() {
	s.RemoteReads.Reset()
	s.RemoteWrites.Reset()
	s.LinkBusy[0].Reset()
	s.LinkBusy[1].Reset()
}

// Router joins two sockets' CHAs behind per-socket ingress ports.
type Router struct {
	eng    *sim.Engine
	cfg    Config
	chas   [2]mem.Submitter
	homeOf func(mem.Addr) int

	freeAt [2]sim.Time // per-direction link serialization
	// linePeriod is the live per-line serialization time: cfg.LinePeriod
	// normally, stretched while a lane-degradation fault is active.
	linePeriod sim.Time
	stats      *Stats

	// Per-direction bound handlers, created once so link-idle checks and
	// home-socket submissions schedule without allocating closures.
	idleFn   [2]sim.EventFunc
	submitFn [2]sim.EventFunc
}

// New builds a router over two home CHAs; homeOf maps an address to its
// home socket (0 or 1).
func New(eng *sim.Engine, cfg Config, cha0, cha1 mem.Submitter, homeOf func(mem.Addr) int) *Router {
	r := &Router{
		eng:        eng,
		cfg:        cfg,
		linePeriod: cfg.LinePeriod,
		chas:       [2]mem.Submitter{cha0, cha1},
		homeOf:     homeOf,
		stats: &Stats{
			RemoteReads:  telemetry.NewCounter(eng),
			RemoteWrites: telemetry.NewCounter(eng),
		},
	}
	eng.Register(r)
	r.stats.LinkBusy[0] = telemetry.NewFracTimer(eng)
	r.stats.LinkBusy[1] = telemetry.NewFracTimer(eng)
	for d := 0; d < 2; d++ {
		d := d
		// A reservation that is still the latest at its own end time means
		// the link went idle (a later reservation would have moved freeAt).
		r.idleFn[d] = func(any) {
			if r.freeAt[d] == r.eng.Now() {
				r.stats.LinkBusy[d].Set(false)
			}
		}
		r.submitFn[d] = func(arg any) { r.chas[d].Submit(arg.(*mem.Request)) }
	}
	if aud := cfg.Audit; aud.Enabled() {
		for d := 0; d < 2; d++ {
			d := d
			aud.Check("numa", fmt.Sprintf("link_busy_dir%d", d), func() (bool, string) {
				busy, free, now := r.stats.LinkBusy[d].On(), r.freeAt[d], eng.Now()
				// Busy implies an unexpired reservation (the idle event at
				// freeAt may still be pending when freeAt == now); idle
				// implies no reservation extends past now.
				if busy && free < now {
					return false, fmt.Sprintf("flagged busy but reservation ended at %v (now %v)", free, now)
				}
				if !busy && free > now {
					return false, fmt.Sprintf("flagged idle with reservation until %v (now %v)", free, now)
				}
				return true, ""
			})
		}
	}
	return r
}

// Stats returns the interconnect probes.
func (r *Router) Stats() *Stats { return r.stats }

// Port returns the ingress for agents attached to the given socket.
func (r *Router) Port(socket int) mem.Submitter { return &port{r: r, socket: socket} }

type port struct {
	r      *Router
	socket int
}

// Submit routes a request from the port's socket to its home socket.
func (p *port) Submit(req *mem.Request) {
	r := p.r
	home := r.homeOf(req.Addr)
	if home == p.socket {
		r.chas[home].Submit(req)
		return
	}
	// Cross-socket: serialize on the outbound direction, propagate, then
	// enter the home CHA. Writes carry data outbound; reads carry data on
	// the way back.
	dir := p.socket // direction index: 0 = socket0->1, 1 = socket1->0
	if dir > 1 {
		dir = 1
	}
	var outSer sim.Time
	if req.Kind == mem.Write {
		r.stats.RemoteWrites.Inc()
		outSer = r.serialize(dir)
	} else {
		r.stats.RemoteReads.Inc()
	}
	// Wrap completion: the response crosses back to the requester's socket.
	back := 1 - dir
	done := req.Done
	req.Done = func(rq *mem.Request) {
		var backSer sim.Time
		if rq.Kind == mem.Read {
			backSer = r.serialize(back)
		}
		delay := r.cfg.ReqLatency
		if rq.Kind == mem.Read {
			delay = r.cfg.DataLatency
		}
		r.eng.After(backSer+delay, func() {
			rq.TDone = r.eng.Now()
			if done != nil {
				done(rq)
			}
		})
	}
	r.eng.AfterFunc(outSer+r.cfg.ReqLatency, r.submitFn[home], req)
}

// serialize reserves the next line slot on one link direction and returns
// the queueing delay before transmission completes.
func (r *Router) serialize(dir int) sim.Time {
	now := r.eng.Now()
	start := r.freeAt[dir]
	if start < now {
		start = now
	}
	r.freeAt[dir] = start + r.linePeriod
	r.stats.LinkBusy[dir].Set(true)
	r.eng.AtFunc(r.freeAt[dir], r.idleFn[dir], nil)
	return r.freeAt[dir] - now
}

// FaultSetLineMult multiplies per-line UPI serialization time by mult
// (lanes dropping to a degraded width/speed); mult <= 1 restores the
// configured rate. Reservations already made keep their slots, so the
// link-busy invariant is unaffected.
func (r *Router) FaultSetLineMult(mult float64) {
	if mult <= 1 {
		r.linePeriod = r.cfg.LinePeriod
		return
	}
	r.linePeriod = sim.Time(float64(r.cfg.LinePeriod)*mult + 0.5)
}

// routerState is the snapshot of a Router.
type routerState struct {
	freeAt     [2]sim.Time
	linePeriod sim.Time
}

// SaveState implements sim.Stateful.
func (r *Router) SaveState() any { return routerState{freeAt: r.freeAt, linePeriod: r.linePeriod} }

// LoadState implements sim.Stateful.
func (r *Router) LoadState(state any) {
	st := state.(routerState)
	r.freeAt, r.linePeriod = st.freeAt, st.linePeriod
}
