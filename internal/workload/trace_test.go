package workload

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := Trace{
		{Addr: 0x1000, Kind: mem.Read, Gap: 0},
		{Addr: 0x2040, Kind: mem.Write, Gap: 700},
		{Addr: 0x1040, Kind: mem.Read, Gap: 300},
	}
	var sb strings.Builder
	if _, err := orig.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("entries = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], orig[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not a line\n")); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestRecorderCapturesStream(t *testing.T) {
	rec := NewRecorder(NewSeqRead(0x4000, 1<<20), 5)
	for i := 0; i < 10; i++ {
		rec.Poll(sim.Time(i) * 10 * sim.Nanosecond)
	}
	tr := rec.Trace()
	if len(tr) != 5 {
		t.Fatalf("recorded %d, want limit 5", len(tr))
	}
	if tr[0].Gap != 0 {
		t.Fatalf("first gap = %v, want 0", tr[0].Gap)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Gap != 10*sim.Nanosecond {
			t.Fatalf("gap[%d] = %v, want 10ns", i, tr[i].Gap)
		}
		if tr[i].Addr != tr[i-1].Addr+mem.LineSize {
			t.Fatalf("addresses not sequential")
		}
	}
}

func TestReplayHonorsGaps(t *testing.T) {
	tr := Trace{
		{Addr: 0, Kind: mem.Read, Gap: 0},
		{Addr: 64, Kind: mem.Read, Gap: 50 * sim.Nanosecond},
	}
	g := NewReplay(tr, false)
	acc, at, ok := g.Poll(0)
	if !ok || at != 0 || acc.Addr != 0 {
		t.Fatalf("first entry: %+v at %v ok=%v", acc, at, ok)
	}
	_, at, ok = g.Poll(0)
	if !ok || at != 50*sim.Nanosecond {
		t.Fatalf("second entry should wait its gap, got at=%v ok=%v", at, ok)
	}
	acc, at, ok = g.Poll(50 * sim.Nanosecond)
	if !ok || at != 50*sim.Nanosecond || acc.Addr != 64 {
		t.Fatalf("second entry at gap boundary: %+v at %v", acc, at)
	}
	// Exhausted, non-looping: blocks forever.
	if _, _, ok := g.Poll(100 * sim.Nanosecond); ok {
		t.Fatalf("exhausted replay still produced")
	}
}

func TestReplayLoops(t *testing.T) {
	tr := Trace{{Addr: 0, Kind: mem.Read}, {Addr: 64, Kind: mem.Write}}
	g := NewReplay(tr, true)
	kinds := map[mem.Kind]int{}
	for i := 0; i < 10; i++ {
		acc, _, ok := g.Poll(sim.Time(i) * sim.Nanosecond)
		if !ok {
			t.Fatalf("looping replay blocked")
		}
		kinds[acc.Kind]++
	}
	if kinds[mem.Read] != 5 || kinds[mem.Write] != 5 {
		t.Fatalf("loop mix wrong: %v", kinds)
	}
}

// End to end: record a generator on one host run, replay it on another, and
// get the same memory traffic.
func TestRecordReplayEquivalence(t *testing.T) {
	record := NewRecorder(NewSeqRead(0, 1<<20), 4096)
	// Drive the recorder directly (generator-level, no host needed).
	for i := 0; i < 4096; i++ {
		record.Poll(sim.Time(i) * 5 * sim.Nanosecond)
	}
	replay := NewReplay(record.Trace(), false)
	var replayed []cpu.Access
	now := sim.Time(0)
	for {
		acc, at, ok := replay.Poll(now)
		if !ok {
			break
		}
		if at > now {
			now = at
			continue
		}
		replayed = append(replayed, acc)
	}
	if len(replayed) != 4096 {
		t.Fatalf("replayed %d of 4096", len(replayed))
	}
	for i, acc := range replayed {
		if acc.Addr != mem.Addr(i*mem.LineSize) {
			t.Fatalf("replayed[%d] = %#x", i, acc.Addr)
		}
	}
}
