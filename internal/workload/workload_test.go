package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestSeqReadSequentialAndWrapping(t *testing.T) {
	g := NewSeqRead(1<<30, 4*mem.LineSize)
	var addrs []mem.Addr
	for i := 0; i < 8; i++ {
		acc, at, ok := g.Poll(0)
		if !ok || at != 0 {
			t.Fatalf("SeqRead must always be ready")
		}
		if acc.Kind != mem.Read {
			t.Fatalf("kind = %v", acc.Kind)
		}
		addrs = append(addrs, acc.Addr)
	}
	for i, a := range addrs {
		want := mem.Addr(1<<30) + mem.Addr((i%4)*mem.LineSize)
		if a != want {
			t.Fatalf("addr[%d] = %#x, want %#x", i, a, want)
		}
	}
}

func TestSeqReadWriteMixIs5050(t *testing.T) {
	g := NewSeqReadWrite(0, 1<<20)
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		acc, _, ok := g.Poll(0)
		if !ok {
			t.Fatalf("generator blocked")
		}
		if acc.Kind == mem.Read {
			reads++
			g.OnComplete(acc, 0) // completing the RFO queues a writeback
		} else {
			writes++
		}
	}
	frac := float64(writes) / float64(reads+writes)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("write fraction %.2f, want ~0.5", frac)
	}
}

func TestSeqReadWriteWritebackLag(t *testing.T) {
	g := NewSeqReadWrite(1<<30, 1<<20)
	acc, _, _ := g.Poll(0)
	g.OnComplete(acc, 0)
	wb, _, ok := g.Poll(0)
	if !ok || wb.Kind != mem.Write {
		t.Fatalf("expected queued writeback, got %+v ok=%v", wb, ok)
	}
	// Lag wraps within the buffer.
	wantOff := int64(0) - g.EvictLagLines*mem.LineSize + 1<<20
	if int64(wb.Addr-1<<30) != wantOff {
		t.Fatalf("writeback offset %d, want %d", int64(wb.Addr-1<<30), wantOff)
	}
}

func TestSeqReadWriteOnlyReadsQueueWritebacks(t *testing.T) {
	g := NewSeqReadWrite(0, 1<<20)
	g.OnComplete(cpu.Access{Addr: 0, Kind: mem.Write}, 0)
	acc, _, _ := g.Poll(0)
	if acc.Kind != mem.Read {
		t.Fatalf("write completion must not queue a writeback")
	}
}

func TestRandReadWithinBufferProperty(t *testing.T) {
	g := NewRandRead(1<<30, 1<<26, 42)
	f := func(uint8) bool {
		acc, _, ok := g.Poll(0)
		return ok && acc.Kind == mem.Read &&
			acc.Addr >= 1<<30 && acc.Addr < 1<<30+1<<26 &&
			uint64(acc.Addr)%mem.LineSize == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandReadDeterministicBySeed(t *testing.T) {
	a := NewRandRead(0, 1<<26, 7)
	b := NewRandRead(0, 1<<26, 7)
	for i := 0; i < 100; i++ {
		x, _, _ := a.Poll(0)
		y, _, _ := b.Poll(0)
		if x != y {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestRandReadSpreadsRows(t *testing.T) {
	g := NewRandRead(0, 5<<30, 1)
	rows := map[mem.Addr]bool{}
	for i := 0; i < 500; i++ {
		acc, _, _ := g.Poll(0)
		rows[acc.Addr/8192] = true
	}
	if len(rows) < 400 {
		t.Fatalf("random reads hit only %d distinct rows in 500 draws", len(rows))
	}
}

func TestMixWriteFraction(t *testing.T) {
	g := NewMix(0, 1<<26, 0.2, 0, 3)
	writes := 0
	const n = 5000
	for i := 0; i < n; i++ {
		acc, _, ok := g.Poll(0)
		if !ok {
			t.Fatalf("mix blocked")
		}
		if acc.Kind == mem.Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("write fraction %.3f, want ~0.2", frac)
	}
}

func TestMixComputeGap(t *testing.T) {
	g := NewMix(0, 1<<26, 0, 10*sim.Nanosecond, 3)
	if _, _, ok := g.Poll(0); !ok {
		t.Fatalf("first poll should produce")
	}
	_, at, ok := g.Poll(0)
	if !ok || at != 10*sim.Nanosecond {
		t.Fatalf("second poll at=%v ok=%v, want retry at 10ns", at, ok)
	}
	if _, at2, _ := g.Poll(10 * sim.Nanosecond); at2 != 10*sim.Nanosecond {
		t.Fatalf("poll at gap boundary should produce immediately, got at=%v", at2)
	}
}

func TestSeqMixWriteFraction(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 1.0} {
		g := NewSeqMix(0, 1<<20, frac, 3)
		reads, writes := 0, 0
		for i := 0; i < 4000; i++ {
			acc, _, ok := g.Poll(0)
			if !ok {
				t.Fatalf("SeqMix blocked")
			}
			if acc.Kind == mem.Read {
				reads++
				g.OnComplete(acc, 0)
			} else {
				writes++
			}
		}
		got := float64(writes) / float64(reads)
		want := frac // one writeback per stored line: writes/reads = frac
		if got < want-0.06 || got > want+0.06 {
			t.Fatalf("frac=%.2f: writes/reads = %.3f", frac, got)
		}
	}
}

func TestSeqMixExtremesMatchSpecializedGenerators(t *testing.T) {
	// frac=0 behaves like SeqRead (no writes at all).
	g := NewSeqMix(0, 1<<20, 0, 3)
	for i := 0; i < 500; i++ {
		acc, _, _ := g.Poll(0)
		if acc.Kind != mem.Read {
			t.Fatalf("frac=0 produced a write")
		}
		g.OnComplete(acc, 0)
	}
}
