// Package workload provides the C2M access-stream generators used across
// the paper's experiments: the modified-STREAM sequential read and
// read-write workloads of §2.2, random-access variants, and a closed-loop
// query generator used to model Redis-style applications.
package workload

import (
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// SeqRead generates the paper's C2M-Read workload: an infinite sequential
// read stream over a private buffer (64-byte AVX512 loads producing 100%
// memory reads). It never blocks, so a core running it keeps its LFB full.
type SeqRead struct {
	Base  mem.Addr
	Bytes int64
	pos   int64
}

// NewSeqRead returns a sequential reader over [base, base+bytes).
func NewSeqRead(base mem.Addr, bytes int64) *SeqRead {
	return &SeqRead{Base: base, Bytes: bytes}
}

// Poll implements cpu.Generator.
func (g *SeqRead) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	a := g.Base + mem.Addr(g.pos%g.Bytes)
	g.pos += mem.LineSize
	return cpu.Access{Addr: a, Kind: mem.Read}, now, true
}

// OnComplete implements cpu.Generator.
func (g *SeqRead) OnComplete(cpu.Access, sim.Time) {}

// SeqReadWrite generates the paper's C2M-ReadWrite workload: sequential
// 64-byte stores. Every store first reads its line into the cache (an RFO
// read through the LFB) and later evicts a dirty line (a writeback through
// the LFB that completes at CHA admission), producing 50% read / 50% write
// memory traffic.
type SeqReadWrite struct {
	Base  mem.Addr
	Bytes int64
	// EvictLagLines is how far behind the store stream the evicted line
	// trails (a stand-in for cache capacity); it keeps writebacks sequential
	// but in a different row neighbourhood than the in-flight reads.
	EvictLagLines int64

	pos        int64
	writebacks []mem.Addr
}

// NewSeqReadWrite returns a sequential store generator.
func NewSeqReadWrite(base mem.Addr, bytes int64) *SeqReadWrite {
	return &SeqReadWrite{Base: base, Bytes: bytes, EvictLagLines: 512}
}

// Poll implements cpu.Generator: pending writebacks take priority so the
// read/write mix stays at 50/50 in steady state.
func (g *SeqReadWrite) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if len(g.writebacks) > 0 {
		a := g.writebacks[0]
		g.writebacks = g.writebacks[1:]
		return cpu.Access{Addr: a, Kind: mem.Write}, now, true
	}
	a := g.Base + mem.Addr(g.pos%g.Bytes)
	g.pos += mem.LineSize
	return cpu.Access{Addr: a, Kind: mem.Read}, now, true
}

// OnComplete implements cpu.Generator: a completed RFO read queues the
// eviction writeback of the line EvictLagLines behind it.
func (g *SeqReadWrite) OnComplete(acc cpu.Access, now sim.Time) {
	if acc.Kind != mem.Read {
		return
	}
	lag := g.EvictLagLines * mem.LineSize
	off := int64(acc.Addr-g.Base) - lag
	if off < 0 {
		off += g.Bytes
	}
	g.writebacks = append(g.writebacks, g.Base+mem.Addr(off))
}

// RandRead generates uniform-random reads over a buffer — the access pattern
// of GAPBS PageRank over a random graph (memory-bound, ~100% miss, no row
// locality). It never blocks.
type RandRead struct {
	Base  mem.Addr
	Lines int64
	rng   *sim.Rand
}

// NewRandRead returns a random reader over a buffer of the given size.
func NewRandRead(base mem.Addr, bytes int64, seed uint64) *RandRead {
	return &RandRead{Base: base, Lines: bytes / mem.LineSize, rng: sim.RNG(seed)}
}

// Poll implements cpu.Generator.
func (g *RandRead) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	line := g.rng.Int64N(g.Lines)
	return cpu.Access{Addr: g.Base + mem.Addr(line*mem.LineSize), Kind: mem.Read}, now, true
}

// OnComplete implements cpu.Generator.
func (g *RandRead) OnComplete(cpu.Access, sim.Time) {}

// Mix generates random accesses with a configurable write fraction and an
// optional compute gap between accesses — used for GAPBS-BC-style workloads
// (~20% writes, more compute per access than PageRank).
type Mix struct {
	Base      mem.Addr
	Lines     int64
	WriteFrac float64
	// ComputeGap inserts a delay between successive accesses, lowering the
	// core's memory-level parallelism demand.
	ComputeGap sim.Time

	rng     *sim.Rand
	readyAt sim.Time
}

// NewMix returns a mixed random generator.
func NewMix(base mem.Addr, bytes int64, writeFrac float64, gap sim.Time, seed uint64) *Mix {
	return &Mix{
		Base:       base,
		Lines:      bytes / mem.LineSize,
		WriteFrac:  writeFrac,
		ComputeGap: gap,
		rng:        sim.RNG(seed),
	}
}

// Poll implements cpu.Generator.
func (g *Mix) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if g.readyAt > now {
		return cpu.Access{}, g.readyAt, true
	}
	g.readyAt = now + g.ComputeGap
	line := g.rng.Int64N(g.Lines)
	k := mem.Read
	if g.rng.Float64() < g.WriteFrac {
		k = mem.Write
	}
	return cpu.Access{Addr: g.Base + mem.Addr(line*mem.LineSize), Kind: k}, now, true
}

// OnComplete implements cpu.Generator.
func (g *Mix) OnComplete(cpu.Access, sim.Time) {}

// SeqMix generates a sequential stream with an arbitrary store fraction —
// the knob behind read/write-ratio sweeps (the paper varies ratios via
// different applications; the library exposes it directly). Stores expand to
// RFO reads plus lagged writebacks exactly like SeqReadWrite.
type SeqMix struct {
	Base      mem.Addr
	Bytes     int64
	WriteFrac float64
	// EvictLagLines mirrors SeqReadWrite.
	EvictLagLines int64

	pos           int64
	writebacks    []mem.Addr
	pendingStores map[mem.Addr]struct{}
	rng           *sim.Rand
}

// NewSeqMix returns a sequential generator where each line is stored (RFO +
// writeback) with probability writeFrac and loaded otherwise.
func NewSeqMix(base mem.Addr, bytes int64, writeFrac float64, seed uint64) *SeqMix {
	return &SeqMix{
		Base: base, Bytes: bytes, WriteFrac: writeFrac,
		EvictLagLines: 512, rng: sim.RNG(seed),
		pendingStores: make(map[mem.Addr]struct{}),
	}
}

// Poll implements cpu.Generator.
func (g *SeqMix) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if len(g.writebacks) > 0 {
		a := g.writebacks[0]
		g.writebacks = g.writebacks[1:]
		return cpu.Access{Addr: a, Kind: mem.Write}, now, true
	}
	a := g.Base + mem.Addr(g.pos%g.Bytes)
	g.pos += mem.LineSize
	// Loads and RFOs are both reads at the host-network level; whether this
	// line later emits a writeback is decided now and remembered for
	// OnComplete.
	if g.rng.Float64() < g.WriteFrac {
		g.pendingStores[a] = struct{}{}
	}
	return cpu.Access{Addr: a, Kind: mem.Read}, now, true
}

// OnComplete implements cpu.Generator.
func (g *SeqMix) OnComplete(acc cpu.Access, now sim.Time) {
	if acc.Kind != mem.Read {
		return
	}
	if _, ok := g.pendingStores[acc.Addr]; ok {
		delete(g.pendingStores, acc.Addr)
		lag := g.EvictLagLines * mem.LineSize
		off := int64(acc.Addr-g.Base) - lag
		if off < 0 {
			off += g.Bytes
		}
		g.writebacks = append(g.writebacks, g.Base+mem.Addr(off))
	}
}

// --- Snapshot support -------------------------------------------------------
//
// Generators carry no engine reference; the host registers any generator
// implementing sim.Stateful when it is attached to a core.

// SaveState implements sim.Stateful.
func (g *SeqRead) SaveState() any { return g.pos }

// LoadState implements sim.Stateful.
func (g *SeqRead) LoadState(state any) { g.pos = state.(int64) }

type seqReadWriteState struct {
	pos        int64
	writebacks []mem.Addr
}

// SaveState implements sim.Stateful.
func (g *SeqReadWrite) SaveState() any {
	return seqReadWriteState{pos: g.pos, writebacks: append([]mem.Addr(nil), g.writebacks...)}
}

// LoadState implements sim.Stateful.
func (g *SeqReadWrite) LoadState(state any) {
	st := state.(seqReadWriteState)
	g.pos = st.pos
	g.writebacks = append(g.writebacks[:0], st.writebacks...)
}

// SaveState implements sim.Stateful.
func (g *RandRead) SaveState() any { return g.rng.SaveState() }

// LoadState implements sim.Stateful.
func (g *RandRead) LoadState(state any) { g.rng.LoadState(state) }

type mixState struct {
	rng     any
	readyAt sim.Time
}

// SaveState implements sim.Stateful.
func (g *Mix) SaveState() any { return mixState{rng: g.rng.SaveState(), readyAt: g.readyAt} }

// LoadState implements sim.Stateful.
func (g *Mix) LoadState(state any) {
	st := state.(mixState)
	g.rng.LoadState(st.rng)
	g.readyAt = st.readyAt
}

type seqMixState struct {
	pos           int64
	writebacks    []mem.Addr
	pendingStores []mem.Addr
	rng           any
}

// SaveState implements sim.Stateful.
func (g *SeqMix) SaveState() any {
	st := seqMixState{
		pos:        g.pos,
		writebacks: append([]mem.Addr(nil), g.writebacks...),
		rng:        g.rng.SaveState(),
	}
	for a := range g.pendingStores {
		st.pendingStores = append(st.pendingStores, a)
	}
	return st
}

// LoadState implements sim.Stateful.
func (g *SeqMix) LoadState(state any) {
	st := state.(seqMixState)
	g.pos = st.pos
	g.writebacks = append(g.writebacks[:0], st.writebacks...)
	clear(g.pendingStores)
	for _, a := range st.pendingStores {
		g.pendingStores[a] = struct{}{}
	}
	g.rng.LoadState(st.rng)
}
