package workload

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TraceEntry is one recorded access: what was touched and how long after the
// previous access it was requested.
type TraceEntry struct {
	Addr mem.Addr
	Kind mem.Kind
	Gap  sim.Time // request spacing relative to the previous entry
}

// Trace is a replayable access sequence. Traces make workloads portable:
// record one run's stream (or import one from a real system's memtrace) and
// replay it against any host configuration.
type Trace []TraceEntry

// WriteTo serializes the trace as lines of "addr kind gap_ps" (text, one
// entry per line) — trivially diffable and greppable.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range t {
		k := "r"
		if e.Kind == mem.Write {
			k = "w"
		}
		m, err := fmt.Fprintf(bw, "%x %s %d\n", uint64(e.Addr), k, int64(e.Gap))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the WriteTo format.
func ReadTrace(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var addr uint64
		var kind string
		var gap int64
		if _, err := fmt.Sscanf(line, "%x %s %d", &addr, &kind, &gap); err != nil {
			return nil, fmt.Errorf("workload: bad trace line %q: %w", line, err)
		}
		k := mem.Read
		if kind == "w" {
			k = mem.Write
		}
		t = append(t, TraceEntry{Addr: mem.Addr(addr), Kind: k, Gap: sim.Time(gap)})
	}
	return t, sc.Err()
}

// Recorder wraps a generator and records the first Limit accesses it
// produces (with their request spacing) while passing them through
// unchanged.
type Recorder struct {
	Inner cpu.Generator
	Limit int

	trace  Trace
	lastAt sim.Time
	seen   bool
}

// NewRecorder wraps inner, recording up to limit accesses.
func NewRecorder(inner cpu.Generator, limit int) *Recorder {
	return &Recorder{Inner: inner, Limit: limit}
}

// Trace returns the recorded entries so far.
func (r *Recorder) Trace() Trace { return r.trace }

// Poll implements cpu.Generator.
func (r *Recorder) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	acc, at, ok := r.Inner.Poll(now)
	if ok && at <= now && len(r.trace) < r.Limit {
		gap := sim.Time(0)
		if r.seen {
			gap = now - r.lastAt
		}
		r.seen = true
		r.lastAt = now
		r.trace = append(r.trace, TraceEntry{Addr: acc.Addr, Kind: acc.Kind, Gap: gap})
	}
	return acc, at, ok
}

// OnComplete implements cpu.Generator.
func (r *Recorder) OnComplete(acc cpu.Access, now sim.Time) { r.Inner.OnComplete(acc, now) }

// Replay replays a trace, honoring the recorded request spacing. When Loop
// is set the trace repeats indefinitely; otherwise the generator blocks
// forever after the last entry (the core goes idle).
type Replay struct {
	T    Trace
	Loop bool

	pos     int
	readyAt sim.Time
}

// NewReplay returns a replay generator.
func NewReplay(t Trace, loop bool) *Replay { return &Replay{T: t, Loop: loop} }

// Poll implements cpu.Generator.
func (g *Replay) Poll(now sim.Time) (cpu.Access, sim.Time, bool) {
	if g.pos >= len(g.T) {
		if !g.Loop || len(g.T) == 0 {
			return cpu.Access{}, 0, false
		}
		g.pos = 0
	}
	e := g.T[g.pos]
	// An entry's Gap is its spacing after the previous issue.
	if at := g.readyAt + e.Gap; at > now {
		return cpu.Access{}, at, true
	}
	g.pos++
	g.readyAt = now
	return cpu.Access{Addr: e.Addr, Kind: e.Kind}, now, true
}

// OnComplete implements cpu.Generator.
func (g *Replay) OnComplete(cpu.Access, sim.Time) {}

type recorderState struct {
	trace  Trace
	lastAt sim.Time
	seen   bool
	inner  any
}

// SaveState implements sim.Stateful. The wrapped generator's state (if it is
// Stateful) rides along, since only the Recorder is registered.
func (r *Recorder) SaveState() any {
	st := recorderState{trace: append(Trace(nil), r.trace...), lastAt: r.lastAt, seen: r.seen}
	if inner, ok := r.Inner.(sim.Stateful); ok {
		st.inner = inner.SaveState()
	}
	return st
}

// LoadState implements sim.Stateful.
func (r *Recorder) LoadState(state any) {
	st := state.(recorderState)
	r.trace = append(r.trace[:0], st.trace...)
	r.lastAt, r.seen = st.lastAt, st.seen
	if inner, ok := r.Inner.(sim.Stateful); ok {
		inner.LoadState(st.inner)
	}
}

type replayState struct {
	pos     int
	readyAt sim.Time
}

// SaveState implements sim.Stateful.
func (g *Replay) SaveState() any { return replayState{pos: g.pos, readyAt: g.readyAt} }

// LoadState implements sim.Stateful.
func (g *Replay) LoadState(state any) {
	st := state.(replayState)
	g.pos, g.readyAt = st.pos, st.readyAt
}
