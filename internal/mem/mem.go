// Package mem defines the shared request model of the host network: 64-byte
// cacheline transactions classified by source (compute vs. peripheral) and
// kind (read vs. write), plus the physical-address-to-DRAM mapping.
//
// Every data transfer in the simulator — an LFB miss, an L2 writeback, a DMA
// write from an NVMe device or a NIC — is a stream of these requests, exactly
// mirroring the paper's cacheline-granularity view of the host network (§3).
package mem

import "repro/internal/sim"

// LineSize is the cacheline size in bytes. The entire host network moves data
// at this granularity.
const LineSize = 64

// Kind classifies a memory request as a read or a write.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Source classifies who generated a request: a CPU core (C2M) or a peripheral
// device through the IIO (P2M). The paper's central observation is that the
// same (kind) of request traverses a different flow-control domain depending
// on this classification.
type Source uint8

// Request sources.
const (
	C2M Source = iota
	P2M
)

// String returns "C2M" or "P2M".
func (s Source) String() string {
	if s == C2M {
		return "C2M"
	}
	return "P2M"
}

// Addr is a physical byte address.
type Addr uint64

// Line returns the cacheline-aligned address.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Request is one in-flight cacheline transaction. A request is created when
// its domain credit is allocated (LFB entry for C2M, IIO buffer entry for
// P2M) and completed when the credit is replenished.
type Request struct {
	ID     uint64
	Addr   Addr
	Kind   Kind
	Source Source
	// Origin identifies the issuing agent: core index for C2M, device index
	// for P2M.
	Origin int

	// Done is invoked exactly once when the request's domain credit is
	// replenished: data return for reads, CHA admission for C2M writes, and
	// WPQ admission for P2M writes.
	Done func(*Request)

	// Timestamps stamped as the request traverses the host network. A zero
	// value means the stage was not (yet) reached.
	TAlloc    sim.Time // domain credit allocated at sender
	TCHAEnter sim.Time // arrived at CHA admission stage
	TCHAAdmit sim.Time // admitted into the CHA entry pool
	TMCEnq    sim.Time // enqueued into the MC RPQ/WPQ
	TIssue    sim.Time // issued to a DRAM bank
	TBurst    sim.Time // data burst completed on the memory channel
	TDone     sim.Time // domain credit replenished

	// coord caches the Mapper decode of Addr. Addr never changes after
	// creation and a request reaches exactly one memory controller, so the
	// decode is stable; the FR-FCFS scan re-reads it every scheduling pass.
	coord    Coord
	hasCoord bool
}

// MapCoord returns m.Map(r.Addr), memoized in the request.
func (r *Request) MapCoord(m *Mapper) Coord {
	if !r.hasCoord {
		r.coord = m.Map(r.Addr)
		r.hasCoord = true
	}
	return r.coord
}

// Latency reports TDone - TAlloc, the full domain residency of the request.
func (r *Request) Latency() sim.Time { return r.TDone - r.TAlloc }

// IDGen hands out unique request IDs.
type IDGen struct{ next uint64 }

// Next returns a fresh ID.
func (g *IDGen) Next() uint64 { g.next++; return g.next }

// Submitter is anything that accepts requests at a host-network ingress: a
// CHA directly, or a NUMA router that forwards to the home socket's CHA.
type Submitter interface {
	Submit(r *Request)
}

// SaveState implements sim.Stateful: a request rewinds by restoring its full
// struct value in place (same object, same Done closure, earlier timestamps).
func (r *Request) SaveState() any { return *r }

// LoadState implements sim.Stateful.
func (r *Request) LoadState(state any) { *r = state.(Request) }

// SaveState implements sim.Stateful.
func (g *IDGen) SaveState() any { return g.next }

// LoadState implements sim.Stateful.
func (g *IDGen) LoadState(state any) { g.next = state.(uint64) }

// QueueState captures a queue of in-flight requests for snapshotting. The
// pointers identify the live objects (their Done closures and the references
// other components hold stay valid across a restore); the values hold the
// state each object is rewound to.
type QueueState struct {
	Ptrs []*Request
	Vals []Request
}

// SaveQueue snapshots a request queue.
func SaveQueue(q []*Request) QueueState {
	s := QueueState{Ptrs: append([]*Request(nil), q...), Vals: make([]Request, len(q))}
	for i, r := range q {
		s.Vals[i] = *r
	}
	return s
}

// Restore rewinds every captured request in place and rebuilds the queue into
// dst (reusing its backing array).
func (s QueueState) Restore(dst []*Request) []*Request {
	dst = append(dst[:0], s.Ptrs...)
	for i, r := range dst {
		*r = s.Vals[i]
	}
	return dst
}
