package mem

import "fmt"

// Mapper translates physical addresses to DRAM coordinates (channel, bank,
// row) using the static-hash style mapping of Intel memory controllers:
// cacheline-granularity channel interleaving, column bits below bank bits,
// and an XOR of low row bits into the bank index (the "permutation-based
// interleaving" of DRAMA/Zhang et al.). The XOR spreads streams across banks
// but — as §5.1 of the paper stresses — does not guarantee balance, which is
// one of the two root causes of queueing before bandwidth saturation.
type Mapper struct {
	channels  int
	banks     int
	rowLines  int // cachelines per row
	chShift   uint
	chMask    uint64
	colMask   uint64
	colBits   uint
	bankMask  uint64
	bankBits  uint
	xorRowLow bool
}

// MapperConfig configures a Mapper. All counts must be powers of two.
type MapperConfig struct {
	Channels int // memory channels (DIMMs), each with an independent controller queue pair
	Banks    int // banks per channel
	RowBytes int // row (DRAM page) size in bytes
	// XORRowIntoBank enables the permutation-based bank hash. Real
	// controllers enable it; disabling it makes stream collisions absolute
	// (useful for worst-case tests).
	XORRowIntoBank bool
}

// DefaultMapperConfig matches the Cascade Lake testbed: 2 channels, 32 banks
// per channel (2 ranks x 16 banks), 8 KB rows.
func DefaultMapperConfig() MapperConfig {
	return MapperConfig{Channels: 2, Banks: 32, RowBytes: 8192, XORRowIntoBank: true}
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Channel int
	Bank    int
	Row     int64
}

func log2(v int) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

// NewMapper builds a Mapper; it returns an error if any size is not a power
// of two.
func NewMapper(cfg MapperConfig) (*Mapper, error) {
	chBits, ok := log2(cfg.Channels)
	if !ok {
		return nil, fmt.Errorf("mem: channels must be a power of two, got %d", cfg.Channels)
	}
	bankBits, ok := log2(cfg.Banks)
	if !ok {
		return nil, fmt.Errorf("mem: banks must be a power of two, got %d", cfg.Banks)
	}
	if cfg.RowBytes%LineSize != 0 {
		return nil, fmt.Errorf("mem: row bytes %d not a multiple of line size", cfg.RowBytes)
	}
	colBits, ok := log2(cfg.RowBytes / LineSize)
	if !ok {
		return nil, fmt.Errorf("mem: row lines must be a power of two, got %d", cfg.RowBytes/LineSize)
	}
	return &Mapper{
		channels:  cfg.Channels,
		banks:     cfg.Banks,
		rowLines:  cfg.RowBytes / LineSize,
		chShift:   chBits,
		chMask:    uint64(cfg.Channels - 1),
		colMask:   uint64(cfg.RowBytes/LineSize - 1),
		colBits:   colBits,
		bankMask:  uint64(cfg.Banks - 1),
		bankBits:  bankBits,
		xorRowLow: cfg.XORRowIntoBank,
	}, nil
}

// MustMapper is NewMapper that panics on config error; for use with the
// validated presets.
func MustMapper(cfg MapperConfig) *Mapper {
	m, err := NewMapper(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Channels reports the channel count.
func (m *Mapper) Channels() int { return m.channels }

// Banks reports the per-channel bank count.
func (m *Mapper) Banks() int { return m.banks }

// RowLines reports cachelines per row.
func (m *Mapper) RowLines() int { return m.rowLines }

// Column reports the intra-row line index of an address. Together with the
// Map coordinate it uniquely identifies a cacheline: (channel, bank, row,
// column) is a bijection of the line address space even with the XOR bank
// hash enabled, because the hash only permutes bank bits within a fixed
// row (pinned by the bijectivity property tests).
func (m *Mapper) Column(a Addr) int {
	return int((uint64(a) / LineSize >> m.chShift) & m.colMask)
}

// Map decodes a physical address. Consecutive cachelines interleave across
// channels; within a channel, a row's worth of lines share (bank, row) so
// sequential streams enjoy row locality.
func (m *Mapper) Map(a Addr) Coord {
	line := uint64(a) / LineSize
	ch := line & m.chMask
	li := line >> m.chShift
	bank := (li >> m.colBits) & m.bankMask
	row := li >> (m.colBits + m.bankBits)
	if m.xorRowLow && m.bankBits > 0 {
		// Fold the whole row index into the bank bits (DRAMA-style
		// multi-bit XOR), so large power-of-two strides — e.g. two buffers
		// 1 GiB apart — do not march through identical bank sequences.
		fold := row
		for fold > uint64(m.bankMask) {
			bank ^= fold & m.bankMask
			fold >>= m.bankBits
		}
		bank ^= fold & m.bankMask
		bank &= m.bankMask
	}
	return Coord{Channel: int(ch), Bank: int(bank), Row: int64(row)}
}
