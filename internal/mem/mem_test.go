package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAlignment(t *testing.T) {
	if got := Addr(0x12345).Line(); got != 0x12340 {
		t.Fatalf("Line = %#x, want 0x12340", got)
	}
	if got := Addr(0x12340).Line(); got != 0x12340 {
		t.Fatalf("aligned Line = %#x", got)
	}
}

func TestKindSourceStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("kind strings wrong")
	}
	if C2M.String() != "C2M" || P2M.String() != "P2M" {
		t.Fatalf("source strings wrong")
	}
}

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestRequestLatency(t *testing.T) {
	r := &Request{TAlloc: 100, TDone: 170}
	if r.Latency() != 70 {
		t.Fatalf("Latency = %d, want 70", r.Latency())
	}
}

func TestMapperRejectsNonPowerOfTwo(t *testing.T) {
	bad := []MapperConfig{
		{Channels: 3, Banks: 32, RowBytes: 8192},
		{Channels: 2, Banks: 30, RowBytes: 8192},
		{Channels: 2, Banks: 32, RowBytes: 8000},
		{Channels: 0, Banks: 32, RowBytes: 8192},
	}
	for _, cfg := range bad {
		if _, err := NewMapper(cfg); err == nil {
			t.Errorf("NewMapper(%+v) accepted invalid config", cfg)
		}
	}
}

func TestMapperChannelInterleave(t *testing.T) {
	m := MustMapper(DefaultMapperConfig())
	// Consecutive cachelines alternate channels (64B interleave).
	for i := 0; i < 16; i++ {
		c := m.Map(Addr(i * LineSize))
		if c.Channel != i%2 {
			t.Fatalf("line %d on channel %d, want %d", i, c.Channel, i%2)
		}
	}
}

func TestMapperRowLocality(t *testing.T) {
	m := MustMapper(DefaultMapperConfig())
	// Within one channel, a row's worth of consecutive lines share bank+row.
	first := m.Map(0)
	for i := 0; i < m.RowLines(); i++ {
		// Lines on channel 0 are every other line.
		c := m.Map(Addr(i * 2 * LineSize))
		if c.Channel != 0 {
			t.Fatalf("expected channel 0")
		}
		if c.Bank != first.Bank || c.Row != first.Row {
			t.Fatalf("line %d left the row: %+v vs %+v", i, c, first)
		}
	}
	// The next line starts a new (bank, row).
	next := m.Map(Addr(m.RowLines() * 2 * LineSize))
	if next.Bank == first.Bank && next.Row == first.Row {
		t.Fatalf("row boundary not respected")
	}
}

func TestMapperXORSpreadsRows(t *testing.T) {
	m := MustMapper(DefaultMapperConfig())
	// Same bank bits, different rows: XOR hash should map many distinct rows
	// of one "bank slot" onto different physical banks.
	banks := map[int]bool{}
	rowStride := Addr(m.RowLines()) * LineSize * Addr(m.Channels()) * Addr(m.Banks())
	for i := 0; i < 64; i++ {
		c := m.Map(Addr(i) * rowStride)
		banks[c.Bank] = true
	}
	if len(banks) < 16 {
		t.Fatalf("XOR hash spread %d rows over only %d banks", 64, len(banks))
	}
}

func TestMapperNoXOR(t *testing.T) {
	cfg := DefaultMapperConfig()
	cfg.XORRowIntoBank = false
	m := MustMapper(cfg)
	rowStride := Addr(m.RowLines()) * LineSize * Addr(m.Channels()) * Addr(m.Banks())
	for i := 0; i < 16; i++ {
		c := m.Map(Addr(i) * rowStride)
		if c.Bank != 0 {
			t.Fatalf("without XOR, aligned rows should collide on bank 0, got %d", c.Bank)
		}
	}
}

// Property: Map is injective on distinct (channel,bank,row,column) tuples —
// i.e., two different lines never produce identical full coordinates
// including the column. Equivalently, decoding is lossless: channel, bank^xor,
// row, and column bits reconstruct the line index.
func TestMapperLossless(t *testing.T) {
	m := MustMapper(DefaultMapperConfig())
	f := func(rawA, rawB uint32) bool {
		a, b := Addr(rawA)*LineSize, Addr(rawB)*LineSize
		if a == b {
			return true
		}
		ca, cb := m.Map(a), m.Map(b)
		colA := (uint64(a) / LineSize >> 1) & uint64(m.RowLines()-1)
		colB := (uint64(b) / LineSize >> 1) & uint64(m.RowLines()-1)
		// Full coordinates must differ for different lines.
		return !(ca == cb && colA == colB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: coordinates are always within range.
func TestMapperRanges(t *testing.T) {
	m := MustMapper(DefaultMapperConfig())
	f := func(raw uint64) bool {
		c := m.Map(Addr(raw))
		return c.Channel >= 0 && c.Channel < m.Channels() &&
			c.Bank >= 0 && c.Bank < m.Banks() && c.Row >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperSingleChannel(t *testing.T) {
	m := MustMapper(MapperConfig{Channels: 1, Banks: 16, RowBytes: 8192, XORRowIntoBank: true})
	for i := 0; i < 100; i++ {
		if c := m.Map(Addr(i * LineSize)); c.Channel != 0 {
			t.Fatalf("single channel mapper produced channel %d", c.Channel)
		}
	}
	if m.Banks() != 16 || m.RowLines() != 128 {
		t.Fatalf("geometry wrong: banks=%d rowlines=%d", m.Banks(), m.RowLines())
	}
}
