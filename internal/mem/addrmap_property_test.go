package mem

import (
	"testing"
	"testing/quick"
)

// key is the full DRAM coordinate of a cacheline: Map's coordinate plus the
// intra-row column. Bijectivity of line -> key is what guarantees the
// simulated DRAM never aliases two distinct lines onto one cell (and never
// strands capacity), XOR hash or not.
type key struct {
	ch, bank, col int
	row           int64
}

func lineKey(m *Mapper, a Addr) key {
	c := m.Map(a)
	return key{ch: c.Channel, bank: c.Bank, col: m.Column(a), row: c.Row}
}

// mapperFor builds a mapper from bounded random exponents, so quick explores
// many geometries (1-8 channels, 1-64 banks, 8-1024 lines per row).
func mapperFor(chExp, bankExp, colExp uint8) *Mapper {
	cfg := MapperConfig{
		Channels:       1 << (chExp % 4),
		Banks:          1 << (bankExp % 7),
		RowBytes:       LineSize * (8 << (colExp % 8)),
		XORRowIntoBank: true,
	}
	return MustMapper(cfg)
}

// Distinct lines must map to distinct (channel, bank, row, column) tuples.
func TestMapperInjectivityQuick(t *testing.T) {
	f := func(chExp, bankExp, colExp uint8, la, lb uint32) bool {
		m := mapperFor(chExp, bankExp, colExp)
		a := Addr(uint64(la) * LineSize)
		b := Addr(uint64(lb) * LineSize)
		if la == lb {
			return lineKey(m, a) == lineKey(m, b)
		}
		return lineKey(m, a) != lineKey(m, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Byte addresses within one cacheline share the line's coordinate.
func TestMapperLineGranularityQuick(t *testing.T) {
	f := func(chExp, bankExp, colExp uint8, line uint32, off uint8) bool {
		m := mapperFor(chExp, bankExp, colExp)
		base := Addr(uint64(line) * LineSize)
		return lineKey(m, base) == lineKey(m, base+Addr(off%LineSize))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Decoded coordinates must stay within the configured geometry.
func TestMapperCoordinateRangesQuick(t *testing.T) {
	f := func(chExp, bankExp, colExp uint8, la uint64) bool {
		m := mapperFor(chExp, bankExp, colExp)
		a := Addr(la % (1 << 46))
		c := m.Map(a)
		col := m.Column(a)
		return c.Channel >= 0 && c.Channel < m.Channels() &&
			c.Bank >= 0 && c.Bank < m.Banks() &&
			c.Row >= 0 &&
			col >= 0 && col < m.RowLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Exhaustive bijectivity over a small geometry: every line of a region
// spanning `rows` full rows hits exactly one coordinate, and every
// coordinate in the region is hit exactly once.
func TestMapperBijectivityExhaustive(t *testing.T) {
	for _, xor := range []bool{false, true} {
		cfg := MapperConfig{Channels: 2, Banks: 8, RowBytes: 4 * LineSize, XORRowIntoBank: xor}
		m := MustMapper(cfg)
		const rows = 32
		n := cfg.Channels * cfg.Banks * (cfg.RowBytes / LineSize) * rows
		seen := make(map[key]Addr, n)
		for i := 0; i < n; i++ {
			a := Addr(i) * LineSize
			k := lineKey(m, a)
			if k.row >= rows {
				t.Fatalf("xor=%v: line %d decodes to row %d, beyond the %d-row region", xor, i, k.row, rows)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("xor=%v: lines at %#x and %#x alias to %+v", xor, prev, a, k)
			}
			seen[k] = a
		}
		if len(seen) != n {
			t.Fatalf("xor=%v: %d lines mapped to %d coordinates", xor, n, len(seen))
		}
	}
}

// The XOR hash must be a permutation of banks within every (channel, row):
// fixing channel and row, the banks of a row's worth of consecutive lines
// cover... (each row maps to exactly one bank, so instead: across banks at
// fixed row, the hashed banks are a permutation of the unhashed ones).
func TestMapperXORPermutesBanksPerRow(t *testing.T) {
	m := MustMapper(MapperConfig{Channels: 1, Banks: 16, RowBytes: 2 * LineSize, XORRowIntoBank: true})
	rowSpan := Addr(m.RowLines()) * LineSize // one (bank, row) cell
	for row := 0; row < 64; row++ {
		banks := make(map[int]bool, m.Banks())
		for b := 0; b < m.Banks(); b++ {
			// Line index layout: col | bank | row — advance by bank stride
			// within a fixed row.
			a := Addr(row)*Addr(m.Banks())*rowSpan + Addr(b)*rowSpan
			c := m.Map(a)
			if c.Row != int64(row) {
				t.Fatalf("row %d bank %d: decoded row %d", row, b, c.Row)
			}
			if banks[c.Bank] {
				t.Fatalf("row %d: bank %d hit twice — XOR hash is not a permutation", row, c.Bank)
			}
			banks[c.Bank] = true
		}
		if len(banks) != m.Banks() {
			t.Fatalf("row %d: only %d of %d banks covered", row, len(banks), m.Banks())
		}
	}
}
