// Package fleet_test exercises the coordinator end to end against real
// in-process hostnetd workers (the full serve stack over httptest), so the
// dispatch loop, the HTTP surface, and the merge path are all tested
// together — including under -race in CI's fleet tier.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return b
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// startWorker boots one in-process hostnetd and returns its base URL.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

// TestFleetByteIdenticalWithWorkerDeath is the sharding soundness e2e: a
// coordinator fans a sweep out to three workers, one worker dies after
// accepting its first point (its in-flight long-polls are severed and every
// later request is refused), and the merged result is still byte-identical
// to a single-node exp.RunSpecJSON of the same spec.
func TestFleetByteIdenticalWithWorkerDeath(t *testing.T) {
	spec := exp.Spec{Experiment: "quadrant", Quadrant: 2, Cores: []int{1, 2, 3, 4}, WarmupNs: 1000, WindowNs: 2000}
	single, err := exp.RunSpecJSON(spec, exp.Defaults())
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}

	wA := startWorker(t)
	wB := startWorker(t)

	// Worker C accepts exactly one submission and then "crashes": the
	// accepted point's result long-poll is severed mid-flight and every
	// subsequent request is refused. The coordinator must finish the sweep
	// on the survivors.
	sC := serve.New(serve.Config{Workers: 2})
	var killed atomic.Bool
	var wC *httptest.Server
	wC = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			http.Error(w, "worker killed", http.StatusInternalServerError)
			return
		}
		if r.Method == http.MethodPost {
			sC.Handler().ServeHTTP(w, r)
			killed.Store(true)
			go wC.CloseClientConnections() // sever in-flight result waits
			return
		}
		sC.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		wC.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		sC.Shutdown(ctx)
	})

	// One in-flight slot per worker: three slots claim the first three of
	// the four points immediately, so worker C is guaranteed to be
	// dispatched a point (and therefore to die) no matter how the slot
	// goroutines interleave — with spare slots C could legitimately sit
	// out a short sweep and the death path would go unexercised.
	coord, err := fleet.New(fleet.Config{
		Workers: []fleet.Worker{
			{URL: wA.URL, MaxInFlight: 1},
			{URL: wB.URL, MaxInFlight: 1},
			{URL: wC.URL, MaxInFlight: 1},
		},
		MaxAttempts:    4,
		StealAfter:     250 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	if ready, total := coord.Ready(context.Background()); ready != 3 || total != 3 {
		t.Fatalf("Ready = %d/%d, want 3/3", ready, total)
	}

	var progress atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := coord.RunSpecJSON(ctx, spec, func() { progress.Add(1) })
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if !bytes.Equal(got, single) {
		t.Fatalf("fleet result differs from single-node run:\nsingle: %.300s\nfleet:  %.300s", single, got)
	}
	if progress.Load() != 4 {
		t.Errorf("progress called %d times, want 4 (one per point)", progress.Load())
	}

	var done, retries int64
	for _, ws := range coord.Stats() {
		done += ws.Done
		retries += ws.Retries
		if ws.InFlight != 0 {
			t.Errorf("worker %s still shows %d in flight after the run", ws.URL, ws.InFlight)
		}
	}
	if done != 4 {
		t.Errorf("winning results = %d, want 4", done)
	}
	if retries == 0 {
		t.Error("no retries recorded despite a worker dying mid-sweep")
	}

	// The dead worker is visible to readiness probing.
	if ready, total := coord.Ready(context.Background()); ready != 2 || total != 3 {
		t.Errorf("post-mortem Ready = %d/%d, want 2/3", ready, total)
	}
}

// TestFleetWholeDispatch pins the non-splittable path: a single-point spec
// is dispatched whole to one worker and comes back byte-identical.
func TestFleetWholeDispatch(t *testing.T) {
	spec := exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{2}, WarmupNs: 1000, WindowNs: 2000}
	single, err := exp.RunSpecJSON(spec, exp.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t)
	coord, err := fleet.New(fleet.Config{Workers: []fleet.Worker{{URL: w.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.RunSpecJSON(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if !bytes.Equal(got, single) {
		t.Fatal("whole-dispatch result differs from single-node run")
	}
}

// TestFleetAllWorkersDead pins the failure mode: when every attempt is
// exhausted the run fails with the point's last error instead of hanging.
func TestFleetAllWorkersDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	coord, err := fleet.New(fleet.Config{
		Workers:        []fleet.Worker{{URL: dead.URL}},
		MaxAttempts:    2,
		StealAfter:     -1,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = coord.RunSpecJSON(ctx, exp.Spec{Experiment: "quadrant", Quadrant: 1, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 2000}, nil)
	if err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("err = %v, want attempt-exhaustion failure", err)
	}
}

// TestFleetCoordinatorMode runs a coordinator-mode daemon end to end: jobs
// submitted to the front daemon execute by fan-out to backend workers, and
// the served bytes match the backend's own single-node result format.
func TestFleetCoordinatorMode(t *testing.T) {
	wA := startWorker(t)
	wB := startWorker(t)
	coord, err := fleet.New(fleet.Config{
		Workers:        []fleet.Worker{{URL: wA.URL, MaxInFlight: 2}, {URL: wB.URL, MaxInFlight: 2}},
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := serve.New(serve.Config{Workers: 2, Fleet: coord})
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(func() {
		fts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		front.Shutdown(ctx)
	})

	spec := exp.Spec{Experiment: "faultsweep", Quadrant: 3, Cores: []int{1, 2}, WarmupNs: 1000, WindowNs: 3000}
	single, err := exp.RunSpecJSON(spec, exp.Defaults())
	if err != nil {
		t.Fatal(err)
	}

	body, _ := spec.Canonical()
	resp, err := http.Post(fts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := jsonDecode(resp, &st); err != nil || st.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, st)
	}
	resp, err = http.Get(fts.URL + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: code %d body %.300s", resp.StatusCode, got)
	}
	if !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), single) {
		t.Fatal("coordinator-mode result differs from single-node run")
	}

	// The front daemon's metrics expose per-worker dispatch counters.
	resp, err = http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, resp))
	if !strings.Contains(metrics, "hostnetd_fleet_dispatch_total{worker=") {
		t.Error("front daemon metrics missing fleet dispatch counters")
	}
	// And /healthz reports pool readiness.
	resp, err = http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Fleet *struct {
			Ready int `json:"ready"`
			Total int `json:"total"`
		} `json:"fleet"`
	}
	if err := jsonDecode(resp, &hz); err != nil || hz.Fleet == nil {
		t.Fatalf("healthz fleet block missing: %v", err)
	}
	if hz.Fleet.Ready != 2 || hz.Fleet.Total != 2 {
		t.Errorf("healthz fleet = %+v, want 2/2", hz.Fleet)
	}
}
