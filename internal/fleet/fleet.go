// Package fleet is hostnetd's sharding coordinator: it splits a multi-point
// sweep spec into per-point sub-specs (exp.Spec.Points), fans them out over
// the ordinary HTTP API to a pool of worker hostnetds, and deterministically
// merges the per-point results back into the exact bytes a single-node run
// produces (exp.MergePointResults).
//
// Determinism is what makes the scheduling trivial: every sub-spec is a pure
// function from spec to result bytes, so any worker may run any point, a
// point may safely run twice (first answer wins, both answers are equal),
// and a failed or slow worker's points are simply re-dispatched elsewhere.
// There is no state to migrate and no coherence to maintain — the DCSim-style
// scheduling problem collapses to a retry loop over an idempotent RPC.
//
// Dispatch policy:
//
//   - In-flight is bounded per worker (Worker.MaxInFlight), so one slow
//     worker's queue never absorbs the whole sweep.
//   - A point that fails on one worker (connection error, 5xx, 429 that
//     persists) is retried, preferring workers that have not failed it yet,
//     up to Config.MaxAttempts total attempts.
//   - A point in flight longer than Config.StealAfter may be stolen: one
//     duplicate dispatch to an idle worker, racing the original. Whichever
//     answers first completes the point.
//
// The coordinator is itself stateless between runs; hostnetd composes it
// with the serve-layer queue, cache, and store, so a coordinator-mode daemon
// looks exactly like a worker to its clients.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
)

// Worker names one hostnetd worker.
type Worker struct {
	// URL is the worker's base URL, e.g. "http://10.0.0.7:8080".
	URL string
	// MaxInFlight bounds concurrently dispatched points on this worker
	// (shared across concurrent sweeps). Default 2.
	MaxInFlight int
}

// Config tunes a Coordinator.
type Config struct {
	// Workers is the pool; at least one is required.
	Workers []Worker
	// Client is the HTTP client used for every request. Default: a client
	// with no overall timeout (result waits are long-polls bounded by
	// RequestTimeout per attempt and the run context).
	Client *http.Client
	// MaxAttempts bounds total dispatch attempts per point before the sweep
	// fails. Default 4.
	MaxAttempts int
	// StealAfter is how long a point may be in flight before an idle worker
	// may steal (duplicate) it. Default 30s; negative disables stealing.
	StealAfter time.Duration
	// RequestTimeout bounds one dispatch attempt (submit + result wait).
	// Default 10m.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.StealAfter == 0 {
		c.StealAfter = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Minute
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// WorkerStats is one worker's dispatch counters.
type WorkerStats struct {
	URL        string
	Dispatched int64 // attempts started (including retries and steals)
	Done       int64 // attempts that returned this point's winning result
	Retries    int64 // attempts that failed and sent the point back
	Steals     int64 // duplicate dispatches of slow in-flight points
	InFlight   int64 // current occupancy (gauge)
}

type workerState struct {
	url string
	sem chan struct{} // MaxInFlight tokens, shared across runs

	dispatched atomic.Int64
	done       atomic.Int64
	retries    atomic.Int64
	steals     atomic.Int64
	inflight   atomic.Int64
}

// Coordinator fans sweeps out to a worker pool. Safe for concurrent runs;
// per-worker in-flight bounds are shared across them.
type Coordinator struct {
	cfg     Config
	workers []*workerState
}

// New builds a coordinator over the configured worker pool.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg}
	for _, w := range cfg.Workers {
		n := w.MaxInFlight
		if n <= 0 {
			n = 2
		}
		ws := &workerState{url: w.URL, sem: make(chan struct{}, n)}
		for i := 0; i < n; i++ {
			ws.sem <- struct{}{}
		}
		c.workers = append(c.workers, ws)
	}
	return c, nil
}

// Workers reports the pool size.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Stats snapshots per-worker counters, in configuration order.
func (c *Coordinator) Stats() []WorkerStats {
	out := make([]WorkerStats, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStats{
			URL:        w.url,
			Dispatched: w.dispatched.Load(),
			Done:       w.done.Load(),
			Retries:    w.retries.Load(),
			Steals:     w.steals.Load(),
			InFlight:   w.inflight.Load(),
		}
	}
	return out
}

// Ready probes every worker's /healthz concurrently and reports how many
// answered 200 within the context's deadline.
func (c *Coordinator) Ready(ctx context.Context) (ready, total int) {
	var wg sync.WaitGroup
	var n atomic.Int64
	for _, w := range c.workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := c.cfg.Client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				n.Add(1)
			}
		}(w.url)
	}
	wg.Wait()
	return int(n.Load()), len(c.workers)
}

// task is one point's scheduling record, guarded by run.mu.
type task struct {
	idx      int
	body     []byte // canonical sub-spec JSON to POST
	done     bool
	inflight int                   // concurrent dispatches (1, or 2 during a steal)
	attempts int                   // dispatches started
	started  time.Time             // most recent dispatch start
	owners   map[*workerState]bool // workers that have tried it
}

// run is the state of one RunSpecJSON invocation.
type run struct {
	c     *Coordinator
	ctx   context.Context
	abort context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	tasks     []*task
	remaining int
	err       error

	results  [][]byte
	progress func()
}

// RunSpecJSON executes the spec across the fleet and returns result bytes
// byte-identical to a single-node exp.RunSpecJSON: splittable sweeps are
// sharded point-by-point and merged; everything else is dispatched whole to
// one worker. progress (may be nil) is called once per completed point.
func (c *Coordinator) RunSpecJSON(ctx context.Context, spec exp.Spec, progress func()) ([]byte, error) {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	subs := n.Points()
	whole := false
	if subs == nil {
		subs = []exp.Spec{n}
		whole = true
	}

	rctx, abort := context.WithCancel(ctx)
	defer abort()
	r := &run{
		c:         c,
		ctx:       rctx,
		abort:     abort,
		tasks:     make([]*task, len(subs)),
		remaining: len(subs),
		results:   make([][]byte, len(subs)),
		progress:  progress,
	}
	r.cond = sync.NewCond(&r.mu)
	for i, sub := range subs {
		body, err := json.Marshal(sub)
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding sub-spec %d: %w", i, err)
		}
		r.tasks[i] = &task{idx: i, body: body, owners: make(map[*workerState]bool)}
	}

	// One pulling goroutine per worker slot; each blocks on the worker's
	// shared semaphore before dispatching, so concurrent runs respect the
	// same per-worker bound.
	var wg sync.WaitGroup
	for _, w := range c.workers {
		for slot := 0; slot < cap(w.sem); slot++ {
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				r.pull(w)
			}(w)
		}
	}
	// Periodic broadcast so idle slots re-evaluate steal eligibility as
	// in-flight points age, and notice context cancellation.
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		period := c.cfg.StealAfter / 4
		if period <= 0 || period > time.Second {
			period = time.Second
		}
		t := time.NewTicker(period)
		defer t.Stop()
		done := rctx.Done()
		for {
			select {
			case <-stopTick:
				return
			case <-done:
				done = nil // cancellation broadcast once; ticker carries on
				r.cond.Broadcast()
			case <-t.C:
				r.cond.Broadcast()
			}
		}
	}()
	wg.Wait()
	close(stopTick)
	tickWG.Wait()

	r.mu.Lock()
	err := r.err
	remaining := r.remaining
	r.mu.Unlock()
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err == nil && remaining > 0 {
		err = errors.New("fleet: sweep ended with unfinished points") // unreachable guard
	}
	if err != nil {
		return nil, err
	}
	if whole {
		return r.results[0], nil
	}
	return exp.MergePointResults(n, r.results)
}

// pull is one worker slot's loop: claim a task, dispatch it, file the
// outcome, repeat until the run completes or aborts.
func (r *run) pull(w *workerState) {
	for {
		t, steal := r.next(w)
		if t == nil {
			return
		}
		select {
		case <-w.sem:
		case <-r.ctx.Done():
			r.release(t, w, r.ctx.Err())
			return
		}
		w.inflight.Add(1)
		w.dispatched.Add(1)
		if steal {
			w.steals.Add(1)
		}
		data, err := r.c.execute(r.ctx, w, t.body)
		w.inflight.Add(-1)
		w.sem <- struct{}{}
		r.complete(t, w, data, err)
	}
}

// next blocks until a task is available for this worker (or the run is
// over). Fresh tasks are preferred in index order; with none pending, an
// in-flight task older than StealAfter that this worker has not yet tried
// may be stolen (one duplicate at most).
func (r *run) next(w *workerState) (t *task, steal bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.err != nil || r.remaining == 0 || r.ctx.Err() != nil {
			return nil, false
		}
		for _, cand := range r.tasks {
			if cand.done || cand.inflight > 0 || cand.attempts >= r.c.cfg.MaxAttempts {
				continue
			}
			// Prefer a worker that has not failed this task, but do not
			// strand it if only repeat offenders are idle.
			if cand.owners[w] && len(cand.owners) < len(r.c.workers) {
				continue
			}
			return r.claim(cand, w), false
		}
		if r.c.cfg.StealAfter >= 0 {
			for _, cand := range r.tasks {
				if cand.done || cand.inflight != 1 || cand.owners[w] {
					continue
				}
				if cand.attempts >= r.c.cfg.MaxAttempts {
					continue
				}
				if time.Since(cand.started) >= r.c.cfg.StealAfter {
					return r.claim(cand, w), true
				}
			}
		}
		r.cond.Wait()
	}
}

func (r *run) claim(t *task, w *workerState) *task {
	t.inflight++
	t.attempts++
	t.started = time.Now()
	t.owners[w] = true
	return t
}

// release undoes a claim whose dispatch never started (semaphore wait lost
// to cancellation).
func (r *run) release(t *task, w *workerState, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.inflight--
	t.attempts--
	if r.err == nil && err != nil && r.ctx.Err() == nil {
		r.err = err
	}
	r.cond.Broadcast()
}

// complete files one dispatch outcome: the first successful answer wins the
// point (later duplicates are discarded — determinism makes them equal);
// a failure re-queues the point unless its attempt budget is exhausted,
// which aborts the whole run.
func (r *run) complete(t *task, w *workerState, data []byte, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.inflight--
	switch {
	case err == nil && !t.done:
		t.done = true
		w.done.Add(1)
		r.results[t.idx] = data
		r.remaining--
		if r.progress != nil {
			r.progress()
		}
		if r.remaining == 0 {
			r.abort() // cancel outstanding duplicate dispatches
		}
	case err == nil:
		// Lost a steal race; drop the duplicate answer.
	case r.ctx.Err() != nil || errors.Is(err, context.Canceled):
		// Run canceled (or this dispatch was aborted by completion);
		// not a worker failure.
	default:
		w.retries.Add(1)
		if t.done {
			break // the other copy already won
		}
		if t.attempts >= r.c.cfg.MaxAttempts && t.inflight == 0 {
			if r.err == nil {
				r.err = fmt.Errorf("fleet: point %d failed after %d attempts, last error: %w",
					t.idx, t.attempts, err)
			}
			r.abort()
		}
	}
	r.cond.Broadcast()
}

// retryable marks errors where re-dispatching elsewhere can help.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("http %d: %s", e.status, e.body)
}

// execute runs one point on one worker: submit the sub-spec, then long-poll
// its result. Any transport error, 5xx, or shed (429) is reported to the
// retry loop; the bytes returned are the worker's canonical Result envelope.
func (c *Coordinator) execute(ctx context.Context, w *workerState, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()

	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	sub, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(sub, &st); err != nil || st.ID == "" {
		return nil, fmt.Errorf("fleet: submit response unparsable: %v (%.120s)", err, sub)
	}

	req, err = http.NewRequestWithContext(actx, http.MethodGet, w.url+"/jobs/"+st.ID+"/result?wait=true", nil)
	if err != nil {
		return nil, err
	}
	resp, err = c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	result, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	// The result endpoint emits the envelope plus one trailing newline
	// (byte parity with `hostnetsim -format json`); the envelope itself is
	// what merging and the serve-layer cache expect.
	return bytes.TrimSuffix(result, []byte("\n")), nil
}

// readBody drains one response, mapping non-2xx statuses to retryable
// errors (with a Retry-After pause for 429s, so a shedding worker is not
// hammered).
func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return b, nil
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Brief, bounded politeness pause before the retry loop re-dispatches.
		time.Sleep(250 * time.Millisecond)
	}
	return nil, &httpError{status: resp.StatusCode, body: truncate(string(b), 200)}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
