package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// The credit bound T <= C*64/L is the whole abstraction: a memory-bound core
// with 12 LFB credits at the unloaded 70 ns latency can never exceed ~11 GB/s,
// and any latency inflation converts directly into lost throughput.
func ExampleDomain_MaxThroughput() {
	d := core.Domain{Kind: core.C2MRead, Credits: 12, UnloadedLatency: 70 * sim.Nanosecond}
	fmt.Printf("unloaded: %.2f GB/s\n", d.MaxThroughput(70*sim.Nanosecond)/1e9)
	fmt.Printf("inflated: %.2f GB/s\n", d.MaxThroughput(91*sim.Nanosecond)/1e9)
	// Output:
	// unloaded: 10.97 GB/s
	// inflated: 8.44 GB/s
}

// Classify maps a pair of degradation factors onto the paper's regimes.
func ExampleClassify() {
	fmt.Println(core.Classify(1.3, 1.0)) // C2M hurt, P2M fine
	fmt.Println(core.Classify(1.3, 1.6)) // both hurt
	fmt.Println(core.Classify(1.0, 1.0)) // neither
	// Output:
	// blue
	// red
	// none
}

// Explain narrates why one domain degraded and another did not.
func ExampleExplain() {
	domains := core.CascadeLakeDomains()
	read := core.Measurement{
		Kind: core.C2MRead, AvgLatencyNanos: 91,
		AvgCreditsInUse: 12, MaxCreditsInUse: 12,
	}
	readUnloaded := core.Measurement{Kind: core.C2MRead, AvgLatencyNanos: 70}
	fmt.Println(core.Explain(domains[0], read, readUnloaded))

	write := core.Measurement{
		Kind: core.P2MWrite, AvgLatencyNanos: 330,
		AvgCreditsInUse: 66, MaxCreditsInUse: 72,
	}
	writeUnloaded := core.Measurement{Kind: core.P2MWrite, AvgLatencyNanos: 300}
	fmt.Println(core.Explain(domains[3], write, writeUnloaded))
	// Output:
	// C2M-Read: credits saturated (12/12) and latency inflated 1.30x -> throughput bound by C*64/L = 8.44 GB/s
	// P2M-Write: latency inflated 1.10x but 26 spare credits absorb it -> throughput unaffected
}
