// Package core implements the paper's primary contribution: the
// domain-by-domain credit-based flow control abstraction (§4).
//
// The host network is decomposed into domains — sub-networks each running an
// independent credit-based flow control loop. A sender consumes one credit
// per request and gets it back when the domain's receiver acknowledges the
// request; the domain's maximum throughput is therefore
//
//	T <= C * 64 / L
//
// where C is the credit count (in cachelines), 64 the cacheline size, and L
// the (load-dependent) latency to traverse the domain's hops. Different
// datapaths traverse different domains with different C and L, which is the
// whole story of why the same contention hurts some traffic and not other:
//
//   - C2M-Read  (LFB -> DRAM):  C ~ 10-12, unloaded L ~ 70 ns, always
//     credit-saturated, so any latency inflation is throughput degradation.
//   - C2M-Write (LFB -> CHA):   C ~ 10-12 (shared), unloaded L ~ 10 ns,
//     excluded from MC backpressure.
//   - P2M-Write (IIO -> MC):    C ~ 92, unloaded L ~ 300 ns, holds spare
//     credits at link rate, so it rides out moderate latency inflation.
//   - P2M-Read  (IIO -> DRAM):  C > 164, even more spare credits.
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// DomainKind identifies one of the four host-network domains.
type DomainKind uint8

// The four domains of §4.1.
const (
	C2MRead DomainKind = iota
	C2MWrite
	P2MRead
	P2MWrite
)

// String names the domain as the paper does.
func (k DomainKind) String() string {
	switch k {
	case C2MRead:
		return "C2M-Read"
	case C2MWrite:
		return "C2M-Write"
	case P2MRead:
		return "P2M-Read"
	default:
		return "P2M-Write"
	}
}

// Of maps a request classification to its domain.
func Of(src mem.Source, kind mem.Kind) DomainKind {
	switch {
	case src == mem.C2M && kind == mem.Read:
		return C2MRead
	case src == mem.C2M && kind == mem.Write:
		return C2MWrite
	case src == mem.P2M && kind == mem.Read:
		return P2MRead
	default:
		return P2MWrite
	}
}

// Domain is the static characterization of one domain: its credit pool, hop
// span, and unloaded latency (§4.2's reverse-engineered values).
type Domain struct {
	Kind            DomainKind
	Credits         int
	UnloadedLatency sim.Time
	// Hops lists the nodes the domain spans; the last hop is where the
	// credit is replenished.
	Hops []string
}

// MaxThroughput reports the credit bound C*64/L in bytes per second for a
// given average latency.
func (d Domain) MaxThroughput(lat sim.Time) float64 {
	if lat <= 0 {
		return 0
	}
	return float64(d.Credits) * mem.LineSize / lat.Seconds()
}

// String renders the domain like "C2M-Read (LFB->CHA->MC->DRAM, C=12, L0=70ns)".
func (d Domain) String() string {
	path := ""
	for i, h := range d.Hops {
		if i > 0 {
			path += "->"
		}
		path += h
	}
	return fmt.Sprintf("%s (%s, C=%d, L0=%v)", d.Kind, path, d.Credits, d.UnloadedLatency)
}

// CascadeLakeDomains returns the §4.2 characterization of the Cascade Lake
// testbed's four domains.
func CascadeLakeDomains() [4]Domain {
	return [4]Domain{
		{Kind: C2MRead, Credits: 12, UnloadedLatency: 70 * sim.Nanosecond,
			Hops: []string{"LFB", "CHA", "MC", "DRAM"}},
		{Kind: C2MWrite, Credits: 12, UnloadedLatency: 10 * sim.Nanosecond,
			Hops: []string{"LFB", "CHA"}},
		{Kind: P2MRead, Credits: 164, UnloadedLatency: 230 * sim.Nanosecond,
			Hops: []string{"IIO", "CHA", "MC", "DRAM"}},
		{Kind: P2MWrite, Credits: 92, UnloadedLatency: 300 * sim.Nanosecond,
			Hops: []string{"IIO", "CHA", "MC"}},
	}
}

// Measurement captures one domain's observed behaviour over a run window.
type Measurement struct {
	Kind            DomainKind
	AvgLatencyNanos float64
	AvgCreditsInUse float64
	MaxCreditsInUse int
	Throughput      float64 // bytes/s actually achieved
}

// CreditBound reports the throughput ceiling implied by the measurement's
// latency and the domain's credit pool.
func (m Measurement) CreditBound(d Domain) float64 {
	if m.AvgLatencyNanos <= 0 {
		return 0
	}
	return float64(d.Credits) * mem.LineSize / (m.AvgLatencyNanos * 1e-9)
}

// CreditSaturated reports whether the sender is using (nearly) all credits —
// the precondition for latency inflation to become throughput degradation.
func (m Measurement) CreditSaturated(d Domain) bool {
	return float64(m.MaxCreditsInUse) >= 0.95*float64(d.Credits)
}

// SpareCredits reports how many credits remain unused on average.
func (m Measurement) SpareCredits(d Domain) float64 {
	return float64(d.Credits) - m.AvgCreditsInUse
}

// Regime classifies a colocation outcome per §2.2.
type Regime uint8

// Contention regimes.
const (
	// NoContention: neither side degrades appreciably.
	NoContention Regime = iota
	// Blue: C2M degrades, P2M does not — the paper's new phenomenon.
	Blue
	// Red: both degrade — the phenomenon of prior studies, plus the paper's
	// finding that C2M degrades alongside P2M.
	Red
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Blue:
		return "blue"
	case Red:
		return "red"
	default:
		return "none"
	}
}

// Classify maps (C2M, P2M) degradation factors (isolated/colocated
// throughput, >= 1) to a regime using the paper's working thresholds: a side
// "degrades" beyond ~10%.
func Classify(c2mDegr, p2mDegr float64) Regime {
	const threshold = 1.10
	switch {
	case p2mDegr >= threshold:
		return Red
	case c2mDegr >= threshold:
		return Blue
	default:
		return NoContention
	}
}

// Explain produces the paper's causal narrative for a pair of domain
// measurements in a colocation, naming the bottleneck condition.
func Explain(d Domain, m Measurement, unloaded Measurement) string {
	inflation := 1.0
	if unloaded.AvgLatencyNanos > 0 {
		inflation = m.AvgLatencyNanos / unloaded.AvgLatencyNanos
	}
	if m.CreditSaturated(d) && inflation > 1.05 {
		return fmt.Sprintf("%s: credits saturated (%d/%d) and latency inflated %.2fx -> throughput bound by C*64/L = %.2f GB/s",
			d.Kind, m.MaxCreditsInUse, d.Credits, inflation, m.CreditBound(d)/1e9)
	}
	if inflation > 1.05 {
		return fmt.Sprintf("%s: latency inflated %.2fx but %.0f spare credits absorb it -> throughput unaffected",
			d.Kind, inflation, m.SpareCredits(d))
	}
	return fmt.Sprintf("%s: no significant latency inflation (%.2fx)", d.Kind, inflation)
}
