package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestDomainKindStrings(t *testing.T) {
	want := map[DomainKind]string{
		C2MRead: "C2M-Read", C2MWrite: "C2M-Write",
		P2MRead: "P2M-Read", P2MWrite: "P2M-Write",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestOfMapping(t *testing.T) {
	cases := []struct {
		src  mem.Source
		kind mem.Kind
		want DomainKind
	}{
		{mem.C2M, mem.Read, C2MRead},
		{mem.C2M, mem.Write, C2MWrite},
		{mem.P2M, mem.Read, P2MRead},
		{mem.P2M, mem.Write, P2MWrite},
	}
	for _, c := range cases {
		if got := Of(c.src, c.kind); got != c.want {
			t.Errorf("Of(%v, %v) = %v, want %v", c.src, c.kind, got, c.want)
		}
	}
}

func TestMaxThroughputFormula(t *testing.T) {
	d := Domain{Kind: C2MRead, Credits: 12, UnloadedLatency: 70 * sim.Nanosecond}
	// T = C*64/L: 12*64/70ns = 10.97 GB/s.
	got := d.MaxThroughput(70 * sim.Nanosecond)
	if math.Abs(got-10.97e9) > 0.05e9 {
		t.Fatalf("MaxThroughput = %.3f GB/s, want ~10.97", got/1e9)
	}
	if d.MaxThroughput(0) != 0 {
		t.Fatalf("zero latency must not divide")
	}
}

// Property: throughput bound is monotonically decreasing in latency and
// increasing in credits.
func TestThroughputMonotonicityProperty(t *testing.T) {
	f := func(credits uint8, lat1, lat2 uint16) bool {
		c := int(credits%100) + 1
		l1 := sim.Time(int(lat1)+1) * sim.Nanosecond
		l2 := sim.Time(int(lat2)+1) * sim.Nanosecond
		if l2 < l1 {
			l1, l2 = l2, l1
		}
		d := Domain{Credits: c}
		d2 := Domain{Credits: c + 1}
		return d.MaxThroughput(l1) >= d.MaxThroughput(l2) &&
			d2.MaxThroughput(l1) > d.MaxThroughput(l1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeLakeDomains(t *testing.T) {
	ds := CascadeLakeDomains()
	if ds[0].Kind != C2MRead || ds[0].Credits != 12 || ds[0].UnloadedLatency != 70*sim.Nanosecond {
		t.Fatalf("C2M-Read characterization wrong: %+v", ds[0])
	}
	if ds[3].Kind != P2MWrite || ds[3].Credits != 92 || ds[3].UnloadedLatency != 300*sim.Nanosecond {
		t.Fatalf("P2M-Write characterization wrong: %+v", ds[3])
	}
	// The P2M-Write domain can sustain the 14 GB/s PCIe link with spare
	// credits: 92*64/300ns ~ 19.6 GB/s > 14.
	if bound := ds[3].MaxThroughput(ds[3].UnloadedLatency); bound < 14e9 {
		t.Fatalf("P2M-Write credit bound %.2f GB/s below link rate", bound/1e9)
	}
	// The C2M-Write domain ends at the CHA: it must not list MC or DRAM.
	for _, h := range ds[1].Hops {
		if h == "MC" || h == "DRAM" {
			t.Fatalf("C2M-Write domain must exclude the MC: %v", ds[1].Hops)
		}
	}
	if s := ds[0].String(); !strings.Contains(s, "LFB->CHA->MC->DRAM") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMeasurementCreditLogic(t *testing.T) {
	d := Domain{Kind: P2MWrite, Credits: 92, UnloadedLatency: 300 * sim.Nanosecond}
	spare := Measurement{Kind: P2MWrite, AvgLatencyNanos: 320, AvgCreditsInUse: 68, MaxCreditsInUse: 75}
	if spare.CreditSaturated(d) {
		t.Fatalf("75/92 should not be saturated")
	}
	if got := spare.SpareCredits(d); math.Abs(got-24) > 1e-9 {
		t.Fatalf("SpareCredits = %v", got)
	}
	full := Measurement{Kind: P2MWrite, AvgLatencyNanos: 700, AvgCreditsInUse: 91, MaxCreditsInUse: 92}
	if !full.CreditSaturated(d) {
		t.Fatalf("92/92 should be saturated")
	}
	// Credit bound at 700ns: 92*64/700ns = 8.4 GB/s.
	if got := full.CreditBound(d); math.Abs(got-8.41e9) > 0.05e9 {
		t.Fatalf("CreditBound = %.2f GB/s", got/1e9)
	}
}

func TestClassifyRegimes(t *testing.T) {
	cases := []struct {
		c2m, p2m float64
		want     Regime
	}{
		{1.0, 1.0, NoContention},
		{1.05, 1.0, NoContention},
		{1.3, 1.02, Blue},
		{1.6, 1.0, Blue},
		{1.3, 1.5, Red},
		{1.0, 1.4, Red},
	}
	for _, c := range cases {
		if got := Classify(c.c2m, c.p2m); got != c.want {
			t.Errorf("Classify(%.2f, %.2f) = %v, want %v", c.c2m, c.p2m, got, c.want)
		}
	}
	if Blue.String() != "blue" || Red.String() != "red" || NoContention.String() != "none" {
		t.Fatalf("regime strings wrong")
	}
}

func TestExplainNarratives(t *testing.T) {
	ds := CascadeLakeDomains()
	unloadedRead := Measurement{AvgLatencyNanos: 70, MaxCreditsInUse: 12}
	inflatedRead := Measurement{AvgLatencyNanos: 91, MaxCreditsInUse: 12, AvgCreditsInUse: 12}
	s := Explain(ds[0], inflatedRead, unloadedRead)
	if !strings.Contains(s, "credits saturated") {
		t.Fatalf("blue-regime C2M explanation wrong: %s", s)
	}
	unloadedW := Measurement{AvgLatencyNanos: 300, MaxCreditsInUse: 70}
	inflatedW := Measurement{AvgLatencyNanos: 330, MaxCreditsInUse: 72, AvgCreditsInUse: 67}
	s = Explain(ds[3], inflatedW, unloadedW)
	if !strings.Contains(s, "spare credits absorb") {
		t.Fatalf("P2M spare-credit explanation wrong: %s", s)
	}
	s = Explain(ds[0], unloadedRead, unloadedRead)
	if !strings.Contains(s, "no significant") {
		t.Fatalf("no-contention explanation wrong: %s", s)
	}
}
