package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/iio"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The §4 credit abstraction promises that a domain's credit pool is
// conserved: a sender consumes exactly one credit per request and gets
// exactly one back when the receiver acknowledges it, so credits in use
// never exceed the pool, never go negative, and the pool is whole once the
// domain drains. These property tests drive the real P2M credit pools (the
// IIO) with testing/quick-generated random traffic and assert those
// invariants at every transition.

// randomSink completes each submitted request after a random delay,
// standing in for the CHA -> MC -> DRAM path with arbitrary contention.
type randomSink struct {
	eng *sim.Engine
	rng *sim.Rand
}

func (s *randomSink) Submit(r *mem.Request) {
	d := sim.Time(1+s.rng.IntN(400)) * sim.Nanosecond
	s.eng.After(d, func() { r.Done(r) })
}

func TestCreditConservationUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64, wc, rc uint8, nops uint16) bool {
		cfg := iio.DefaultConfig()
		cfg.WriteCredits = int(wc%64) + 1
		cfg.ReadCredits = int(rc%64) + 1
		eng := sim.New()
		rng := sim.RNG(seed)
		io := iio.New(eng, cfg, &randomSink{eng: eng, rng: sim.RNG(seed ^ 0xdead)})

		ok := true
		check := func() {
			wFree, rFree := io.WriteCreditsFree(), io.ReadCreditsFree()
			if wFree < 0 || wFree > cfg.WriteCredits || rFree < 0 || rFree > cfg.ReadCredits {
				ok = false
			}
			// Occupancy probe and free count must account for the whole pool.
			if wFree+io.Stats().WriteOcc.Level() != cfg.WriteCredits ||
				rFree+io.Stats().ReadOcc.Level() != cfg.ReadCredits {
				ok = false
			}
		}

		// Random open-loop traffic: issue attempts at random times, randomly
		// reads or writes, far denser than the pools can absorb.
		ops := int(nops%1500) + 1
		var issuedW, issuedR uint64
		for i := 0; i < ops; i++ {
			at := sim.Time(rng.IntN(2000)) * sim.Nanosecond
			write := rng.IntN(2) == 0
			addr := mem.Addr(rng.Uint64() % (1 << 34))
			eng.At(at, func() {
				check()
				if write {
					if io.TryWrite(addr, 0, check) {
						issuedW++
					}
				} else {
					if io.TryRead(addr, 0, check) {
						issuedR++
					}
				}
				check()
			})
		}
		eng.Run()

		// Drained: every credit is back and every accepted line completed.
		check()
		if io.WriteCreditsFree() != cfg.WriteCredits || io.ReadCreditsFree() != cfg.ReadCredits {
			return false
		}
		if io.Stats().LinesIn.Count() != issuedW || io.Stats().LinesOut.Count() != issuedR {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// MaxThroughput (the C*64/L credit bound) must be non-negative and
// monotonic: never increasing in latency, never decreasing in credits.
func TestCreditBoundMonotonicityQuick(t *testing.T) {
	f := func(credits uint16, l1, l2 uint32) bool {
		d := core.Domain{Kind: core.C2MRead, Credits: int(credits%512) + 1}
		la := sim.Time(l1%1_000_000+1) * sim.Nanosecond
		lb := sim.Time(l2%1_000_000+1) * sim.Nanosecond
		if lb < la {
			la, lb = lb, la
		}
		tA, tB := d.MaxThroughput(la), d.MaxThroughput(lb)
		if tA < 0 || tB < 0 || tB > tA {
			return false
		}
		bigger := d
		bigger.Credits++
		return bigger.MaxThroughput(la) >= tA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Classify must agree with the regime definitions for any degradation pair.
func TestClassifyConsistencyQuick(t *testing.T) {
	f := func(c2m, p2m float64) bool {
		if c2m < 0 || p2m < 0 || c2m != c2m || p2m != p2m { // reject NaN/negatives
			return true
		}
		switch core.Classify(c2m, p2m) {
		case core.Red:
			return p2m >= 1.10
		case core.Blue:
			return c2m >= 1.10 && p2m < 1.10
		case core.NoContention:
			return c2m < 1.10 && p2m < 1.10
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
