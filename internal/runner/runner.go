// Package runner is the parallel executor behind every multi-point
// experiment sweep. A sweep is a set of fully independent single-threaded
// simulations — each point builds its own host and engine — so points can
// run on a worker pool with no effect on the results: parallel output is
// bit-identical to serial output (pinned by the determinism tests in
// internal/exp).
//
// The pool provides the guarantees the experiment harness needs:
//
//   - ordered result collection: Map returns results indexed exactly like
//     its input, regardless of completion order;
//   - panic capture with point attribution: a panic inside point i surfaces
//     as a *PanicError carrying i and the goroutine's stack, instead of
//     killing the process from an anonymous worker;
//   - context cancellation: no new points start once ctx is done.
//
// # Error precedence
//
// When both failure modes occur in one call — a task panics while the
// context is (or becomes) cancelled — ForEach, Map, and Do deterministically
// return the *PanicError, not ctx.Err(). A panic is evidence of a bug and
// must never be masked by the cancellation it races with (or even caused:
// the panicking task may itself have triggered the cancel). ctx.Err() is
// returned only when no task panicked. TestForEachPanicBeatsCancellation
// pins this for both the serial and the pooled paths.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError attributes a panic to the task index that raised it.
type PanicError struct {
	Index int
	Value interface{}
	Stack []byte
}

// Error renders the panic with its point attribution and stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Workers normalizes a parallelism knob: n >= 1 is used as-is; anything
// else (0, negative) means "one worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. It returns the first error encountered: ctx.Err() if the
// context was cancelled before all indices ran, or a *PanicError if a task
// panicked (remaining tasks are cancelled, in-flight ones finish). All
// tasks that ran have completed by the time ForEach returns, so writes they
// made are visible to the caller.
func ForEach(ctx context.Context, workers, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: same semantics, no goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := capture(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     int64 = -1
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := capture(i, fn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// capture runs fn(i), converting a panic into a *PanicError.
func capture(i int, fn func(int)) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order. On error the returned slice holds the results of the
// tasks that completed (zero values elsewhere).
func Map[T any](ctx context.Context, workers, n int, fn func(int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) { out[i] = fn(i) })
	return out, err
}

// Do runs a fixed set of heterogeneous tasks on the pool, returning the
// first error as ForEach does.
func Do(ctx context.Context, workers int, tasks ...func()) error {
	return ForEach(ctx, workers, len(tasks), func(i int) { tasks[i]() })
}
