package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), workers, 50, func(i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(i int) int { return i })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", out, err)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got < 1 {
		t.Errorf("Workers(-5) = %d, want >= 1", got)
	}
}

// The pool must never run more than `workers` tasks at once.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, max int64
	var mu sync.Mutex
	err := ForEach(context.Background(), workers, 64, func(i int) {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > max {
			max = n
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&cur, -1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", max, workers)
	}
}

func TestPanicAttribution(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 20, func(i int) int {
			if i == 13 {
				panic("boom at 13")
			}
			return i
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 13 {
			t.Errorf("workers=%d: panic attributed to task %d, want 13", workers, pe.Index)
		}
		if !strings.Contains(pe.Error(), "boom at 13") {
			t.Errorf("workers=%d: error misses panic value: %s", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
	}
}

// A panic cancels the tasks that have not started yet.
func TestPanicCancelsRemaining(t *testing.T) {
	var ran int64
	err := ForEach(context.Background(), 2, 1000, func(i int) {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			panic("early")
		}
		time.Sleep(time.Millisecond)
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := atomic.LoadInt64(&ran); n == 1000 {
		t.Error("all tasks ran despite an early panic")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	var once sync.Once
	err := ForEach(ctx, 2, 1000, func(i int) {
		atomic.AddInt64(&ran, 1)
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n == 1000 {
		t.Error("all tasks ran despite cancellation")
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := ForEach(ctx, 1, 10, func(i int) { atomic.AddInt64(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Error("tasks ran on a cancelled context")
	}
}

func TestDo(t *testing.T) {
	var a, b, c int
	err := Do(context.Background(), 4,
		func() { a = 1 },
		func() { b = 2 },
		func() { c = 3 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("got (%d, %d, %d)", a, b, c)
	}
}

// The package-comment guarantee: a panic is never masked by a cancellation
// it races with. The panicking task cancels the context itself before
// panicking — the tightest possible race — and the *PanicError must still
// win on every pool size, deterministically.
func TestForEachPanicBeatsCancellation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEach(ctx, workers, 16, func(i int) {
			if i == 0 {
				cancel()
				panic("boom during cancel")
			}
		})
		cancel()
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Index != 0 || pe.Value != "boom during cancel" {
			t.Errorf("workers=%d: PanicError = index %d value %v", workers, pe.Index, pe.Value)
		}
	}
	// Map and Do route through ForEach; spot-check Map keeps the guarantee.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Map(ctx, 4, 4, func(i int) int {
		if i == 0 {
			cancel()
			panic("map boom")
		}
		return i
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Map: got %v (%T), want *PanicError", err, err)
	}
}

// Cancellation with no panic still surfaces ctx.Err().
func TestForEachCancelWithoutPanic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 4, 8, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
