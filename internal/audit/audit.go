// Package audit is the simulator's invariant checker. Every credit domain
// of the host network (LFB entries, CHA pools, DRAM queues, IIO credits,
// link serialization, PFC pause state, the hostcc window) registers its
// conservation invariants here at construction; the auditor evaluates them
// between events at a configurable cadence and again at the end of every
// measurement window, reporting each violation with the owning domain, the
// counter that broke, and the simulated timestamp.
//
// The paper's methodology stands on these invariants: throughput is C·64/L
// only if credits are conserved (acquired + free == capacity, never
// negative, bounded by configuration), and the per-domain latencies are
// trustworthy only if the Little's-law probes agree with direct
// per-request timestamps. A leak in any one pool silently corrupts every
// downstream figure, so the auditor exists to turn such leaks into loud,
// attributed failures.
//
// Auditing is strictly zero-overhead when off: a nil *Auditor is a valid
// receiver for every registration method, components hold no audit state,
// and the engine's event hook stays nil, so the hot path pays a single
// untaken branch.
package audit

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config tunes the auditor.
type Config struct {
	// Enabled turns auditing on. When false, New returns nil and every
	// registration call no-ops.
	Enabled bool
	// Every is the event cadence: invariants are evaluated after every
	// Every-th executed event. 0 selects the default (4096).
	Every uint64
	// FailFast panics on the first violation with a full report. Off, the
	// auditor collects violations for inspection via Violations/Report.
	FailFast bool
	// LatAbsNs and LatRelTol bound the Little's-law cross-check: a probe
	// fails when |direct - littles| > LatAbsNs + LatRelTol*max(direct,
	// littles). Zero selects the defaults (25 ns, 0.35). The tolerance is
	// deliberately loose — the two estimators differ at window boundaries —
	// because the bugs it exists to catch (unbalanced Enter/Exit) produce
	// errors that grow without bound.
	LatAbsNs  float64
	LatRelTol float64
	// MinSamples is the minimum number of completed requests in the window
	// before the cross-check applies (low-rate probes are too noisy to
	// judge). 0 selects the default (64).
	MinSamples uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Every == 0 {
		c.Every = 4096
	}
	if c.LatAbsNs == 0 {
		c.LatAbsNs = 25
	}
	if c.LatRelTol == 0 {
		c.LatRelTol = 0.35
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
	return c
}

// Violation is one detected invariant breach.
type Violation struct {
	Domain  string   // owning component, e.g. "iio", "cpu/core3", "dram"
	Counter string   // the invariant that broke, e.g. "write_credits"
	At      sim.Time // simulated timestamp of detection
	Detail  string   // human-readable explanation with the observed values
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s at %v: %s", v.Domain, v.Counter, v.At, v.Detail)
}

// check is one registered invariant. fn returns "" while the invariant
// holds and a detail string when it breaks.
type check struct {
	domain, counter string
	fn              func() string
	tripped         bool // first violation recorded; don't spam duplicates
}

// latCheck is one registered Little's-law cross-check.
type latCheck struct {
	domain, counter string
	l               *telemetry.Latency
	tripped         bool // CheckEnd may run more than once per window
}

// Auditor evaluates registered invariants. A nil Auditor is valid and inert.
type Auditor struct {
	eng        *sim.Engine
	cfg        Config
	checks     []check
	lats       []latCheck
	violations []Violation
}

// New builds an auditor over the engine and installs its event-cadence
// hook. It returns nil when cfg.Enabled is false, so callers can thread
// the result through component configs unconditionally.
func New(eng *sim.Engine, cfg Config) *Auditor {
	if !cfg.Enabled {
		return nil
	}
	a := &Auditor{eng: eng, cfg: cfg.withDefaults()}
	eng.Register(a)
	eng.SetEventHook(a.cfg.Every, a.CheckNow)
	return a
}

// Enabled reports whether auditing is active (nil-safe).
func (a *Auditor) Enabled() bool { return a != nil }

// Check registers a generic invariant: fn returns ok=false with a detail
// string when the invariant is violated.
func (a *Auditor) Check(domain, counter string, fn func() (ok bool, detail string)) {
	if a == nil {
		return
	}
	a.checks = append(a.checks, check{domain: domain, counter: counter, fn: func() string {
		if ok, detail := fn(); !ok {
			return detail
		}
		return ""
	}})
}

// Pool registers a credit-pool conservation invariant: the pool's free
// count must stay within [0, capacity] (equivalently, acquired + free ==
// capacity with both sides non-negative).
func (a *Auditor) Pool(domain, counter string, capacity int, free func() int) {
	if a == nil {
		return
	}
	a.checks = append(a.checks, check{domain: domain, counter: counter, fn: func() string {
		f := free()
		if f < 0 {
			return fmt.Sprintf("pool over-acquired: free=%d < 0 (capacity %d)", f, capacity)
		}
		if f > capacity {
			return fmt.Sprintf("pool over-released: free=%d > capacity %d", f, capacity)
		}
		return ""
	}})
}

// Gauge registers a telemetry-consistency invariant: the integrator's
// instantaneous level must equal the component's own ground-truth counter.
func (a *Auditor) Gauge(domain, counter string, probe *telemetry.Integrator, want func() int) {
	if a == nil {
		return
	}
	a.checks = append(a.checks, check{domain: domain, counter: counter, fn: func() string {
		if got, w := probe.Level(), want(); got != w {
			return fmt.Sprintf("probe level %d diverged from component state %d", got, w)
		}
		return ""
	}})
}

// Bounds registers a range invariant: lo <= val() <= hi.
func (a *Auditor) Bounds(domain, counter string, lo, hi int64, val func() int64) {
	if a == nil {
		return
	}
	a.checks = append(a.checks, check{domain: domain, counter: counter, fn: func() string {
		if v := val(); v < lo || v > hi {
			return fmt.Sprintf("value %d outside [%d, %d]", v, lo, hi)
		}
		return ""
	}})
}

// Latency registers a Little's-law cross-check: at the end of each window
// the probe's O/R average must agree with direct per-request timestamp
// sampling within the configured tolerance. Registration enables the
// probe's direct-sampling shadow.
func (a *Auditor) Latency(domain, counter string, l *telemetry.Latency) {
	if a == nil {
		return
	}
	l.EnableDirectSampling()
	a.lats = append(a.lats, latCheck{domain: domain, counter: counter, l: l})
}

// record files one violation (or panics under FailFast).
func (a *Auditor) record(domain, counter, detail string) {
	v := Violation{Domain: domain, Counter: counter, At: a.eng.Now(), Detail: detail}
	a.violations = append(a.violations, v)
	if a.cfg.FailFast {
		panic("audit: invariant violation\n  " + v.String())
	}
}

// CheckNow evaluates every state invariant immediately. The engine calls
// this at the configured event cadence; tests may call it directly.
func (a *Auditor) CheckNow() {
	if a == nil {
		return
	}
	for i := range a.checks {
		c := &a.checks[i]
		if c.tripped {
			continue
		}
		if detail := c.fn(); detail != "" {
			c.tripped = true
			a.record(c.domain, c.counter, detail)
		}
	}
}

// CheckEnd evaluates state invariants plus the Little's-law cross-checks.
// Hosts call this at the end of every measurement window, when the probes'
// window averages are meaningful.
func (a *Auditor) CheckEnd() {
	if a == nil {
		return
	}
	a.CheckNow()
	for i := range a.lats {
		lc := &a.lats[i]
		if lc.tripped {
			continue
		}
		n := lc.l.DirectCount()
		if n < a.cfg.MinSamples {
			continue
		}
		direct := lc.l.AvgNanosDirect()
		littles := lc.l.AvgNanos()
		if math.IsNaN(littles) {
			lc.tripped = true
			a.record(lc.domain, lc.counter, fmt.Sprintf(
				"degenerate Little's-law window (occupancy without arrivals) despite %d completions", n))
			continue
		}
		tol := a.cfg.LatAbsNs + a.cfg.LatRelTol*math.Max(direct, littles)
		if math.Abs(direct-littles) > tol {
			lc.tripped = true
			a.record(lc.domain, lc.counter, fmt.Sprintf(
				"Little's-law latency %.1f ns disagrees with direct sampling %.1f ns (tol %.1f ns, %d samples)",
				littles, direct, tol, n))
		}
	}
}

// Violations returns the collected violations (nil-safe).
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// Report formats all collected violations, one per line; empty when clean.
func (a *Auditor) Report() string {
	if a == nil || len(a.violations) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range a.violations {
		fmt.Fprintf(&b, "%s\n", v.String())
	}
	return b.String()
}

// auditorState is the snapshot of an Auditor: per-check trip latches and the
// violation log. The check registrations themselves are construction-time.
type auditorState struct {
	checkTripped []bool
	latTripped   []bool
	violations   []Violation
}

// SaveState implements sim.Stateful.
func (a *Auditor) SaveState() any {
	st := auditorState{
		checkTripped: make([]bool, len(a.checks)),
		latTripped:   make([]bool, len(a.lats)),
		violations:   append([]Violation(nil), a.violations...),
	}
	for i := range a.checks {
		st.checkTripped[i] = a.checks[i].tripped
	}
	for i := range a.lats {
		st.latTripped[i] = a.lats[i].tripped
	}
	return st
}

// LoadState implements sim.Stateful.
func (a *Auditor) LoadState(state any) {
	st := state.(auditorState)
	for i := range a.checks {
		a.checks[i].tripped = st.checkTripped[i]
	}
	for i := range a.lats {
		a.lats[i].tripped = st.latTripped[i]
	}
	a.violations = append(a.violations[:0], st.violations...)
}
