package audit

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// A nil auditor (auditing off) must accept every call as a no-op — that is
// the contract letting components register unconditionally.
func TestNilAuditorIsInert(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: false})
	if a != nil {
		t.Fatalf("New with Enabled=false = %v, want nil", a)
	}
	if a.Enabled() {
		t.Fatalf("nil auditor reports Enabled")
	}
	a.Check("d", "c", func() (bool, string) { t.Fatal("check ran on nil auditor"); return true, "" })
	a.Pool("d", "p", 4, func() int { t.Fatal("pool probe ran"); return 0 })
	a.Gauge("d", "g", telemetry.NewIntegrator(eng), func() int { return 0 })
	a.Bounds("d", "b", 0, 1, func() int64 { return 0 })
	a.Latency("d", "l", telemetry.NewLatency(eng))
	a.CheckNow()
	a.CheckEnd()
	if a.Violations() != nil || a.Report() != "" {
		t.Fatalf("nil auditor reported violations")
	}
}

func TestPoolConservation(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	free := 3
	a.Pool("iio", "write_credits", 4, func() int { return free })
	a.CheckNow()
	if n := len(a.Violations()); n != 0 {
		t.Fatalf("clean pool flagged: %v", a.Violations())
	}
	free = 5 // over-released: free > capacity
	a.CheckNow()
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	v := vs[0]
	if v.Domain != "iio" || v.Counter != "write_credits" {
		t.Fatalf("attribution = %s/%s, want iio/write_credits", v.Domain, v.Counter)
	}
	if !strings.Contains(v.Detail, "over-released") {
		t.Fatalf("detail = %q, want over-released", v.Detail)
	}
	// Tripped checks stay quiet: no duplicate spam on later sweeps.
	a.CheckNow()
	a.CheckEnd()
	if len(a.Violations()) != 1 {
		t.Fatalf("tripped check re-fired: %v", a.Violations())
	}
}

func TestPoolOverAcquired(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	a.Pool("cpu/core0", "lfb", 12, func() int { return -1 })
	a.CheckNow()
	vs := a.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "over-acquired") {
		t.Fatalf("violations = %v, want one over-acquired", vs)
	}
}

func TestGaugeDivergence(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	probe := telemetry.NewIntegrator(eng)
	probe.Add(2)
	want := 2
	a.Gauge("dram", "rpq_occ", probe, func() int { return want })
	a.CheckNow()
	if len(a.Violations()) != 0 {
		t.Fatalf("agreeing gauge flagged: %v", a.Violations())
	}
	want = 3
	a.CheckNow()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Counter != "rpq_occ" {
		t.Fatalf("violations = %v, want one rpq_occ divergence", vs)
	}
}

func TestBounds(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	v := int64(5)
	a.Bounds("rdma", "queue", 0, 8, func() int64 { return v })
	a.CheckNow()
	v = 9
	a.CheckNow()
	if vs := a.Violations(); len(vs) != 1 || !strings.Contains(vs[0].Detail, "outside") {
		t.Fatalf("violations = %v, want one out-of-bounds", vs)
	}
}

// The violation timestamp must be the simulated time of detection.
func TestViolationTimestamp(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	broken := false
	a.Check("numa", "link_busy_dir0", func() (bool, string) {
		if broken {
			return false, "stuck busy"
		}
		return true, ""
	})
	eng.At(40*sim.Nanosecond, func() { broken = true; a.CheckNow() })
	eng.Run()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].At != 40*sim.Nanosecond {
		t.Fatalf("violations = %v, want one at 40ns", vs)
	}
	if got := vs[0].String(); !strings.Contains(got, "numa/link_busy_dir0 at 40.000ns") {
		t.Fatalf("String() = %q", got)
	}
}

func TestFailFastPanics(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true, FailFast: true})
	a.Pool("iio", "read_credits", 2, func() int { return -1 })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("fail-fast violation did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "iio/read_credits") {
			t.Fatalf("panic = %v, want message naming iio/read_credits", r)
		}
	}()
	a.CheckNow()
}

// The engine hook must evaluate invariants every cfg.Every events — and only
// then, so a tight cadence is a deliberate (costly) choice.
func TestEventCadence(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true, Every: 4})
	evals := 0
	a.Check("d", "c", func() (bool, string) { evals++; return true, "" })
	for i := 1; i <= 10; i++ {
		eng.At(sim.Time(i), func() {})
	}
	eng.Run()
	if evals != 2 { // after events 4 and 8
		t.Fatalf("check evaluated %d times over 10 events with Every=4, want 2", evals)
	}
}

// Balanced Enter/Exit streams must pass the Little's-law cross-check.
func TestLatencyCrossCheckAgrees(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true, MinSamples: 1})
	l := telemetry.NewLatency(eng)
	a.Latency("cha", "admit_lat", l)
	const d = 70 * sim.Nanosecond
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Nanosecond
		eng.At(at, l.Enter)
		eng.At(at+d, l.Exit)
	}
	eng.Run()
	a.CheckEnd()
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("balanced stream flagged: %v", vs)
	}
	if n := l.DirectCount(); n != 100 {
		t.Fatalf("DirectCount = %d, want 100", n)
	}
}

// A leak — Enters that never Exit — inflates the Little's-law estimate
// without moving the direct average, which is exactly what the cross-check
// exists to catch. The leak is placed after the healthy traffic (a component
// wedging mid-run): the leaked requests accrue occupancy for the rest of the
// window while the direct sampler, which only sees completed requests, keeps
// reporting the true 10 ns.
func TestLatencyCrossCheckCatchesLeak(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true, MinSamples: 1})
	l := telemetry.NewLatency(eng)
	a.Latency("iio", "write_lat", l)
	const d = 10 * sim.Nanosecond
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 20 * sim.Nanosecond
		eng.At(at, l.Enter)
		eng.At(at+d, l.Exit)
	}
	// The leak: 50 requests enter at 1 us and are never completed.
	eng.At(sim.Microsecond, func() {
		for i := 0; i < 50; i++ {
			l.Enter()
		}
	})
	eng.At(10*sim.Microsecond, func() {}) // let the leaked occupancy accrue
	eng.Run()
	a.CheckEnd()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Domain != "iio" || vs[0].Counter != "write_lat" {
		t.Fatalf("violations = %v, want one iio/write_lat disagreement", vs)
	}
	if !strings.Contains(vs[0].Detail, "disagrees with direct sampling") {
		t.Fatalf("detail = %q", vs[0].Detail)
	}
	// CheckEnd is idempotent per window: a second anchor (host.Run plus
	// snapshot) must not duplicate the record.
	a.CheckEnd()
	if len(a.Violations()) != 1 {
		t.Fatalf("duplicate latency violation after second CheckEnd: %v", a.Violations())
	}
}

// A window holding occupancy but recording no arrivals has no defined O/R
// latency; the auditor must flag it rather than let NaN (or a silent zero)
// flow into figures.
func TestLatencyDegenerateWindow(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true, MinSamples: 1})
	l := telemetry.NewLatency(eng)
	a.Latency("cxl", "read_lat", l)
	eng.At(0, l.Enter)
	eng.At(10*sim.Nanosecond, func() { l.Reset() }) // window starts: request in flight
	eng.At(50*sim.Nanosecond, l.Exit)
	eng.At(100*sim.Nanosecond, func() {})
	eng.Run()
	a.CheckEnd()
	vs := a.Violations()
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "degenerate") {
		t.Fatalf("violations = %v, want one degenerate-window record", vs)
	}
}

func TestReportFormat(t *testing.T) {
	eng := sim.New()
	a := New(eng, Config{Enabled: true})
	a.Pool("a", "x", 1, func() int { return -1 })
	a.Pool("b", "y", 1, func() int { return 2 })
	a.CheckNow()
	rep := a.Report()
	if !strings.Contains(rep, "a/x at ") || !strings.Contains(rep, "b/y at ") {
		t.Fatalf("Report = %q", rep)
	}
	if got := strings.Count(rep, "\n"); got != 2 {
		t.Fatalf("Report has %d lines, want 2", got)
	}
}
