// Command hostnetd serves the host-network simulator over HTTP: submit
// experiment job specs, poll or stream their progress, and fetch results
// that are byte-identical to `hostnetsim -format json`.
//
// Usage:
//
//	hostnetd [-addr :8080] [-queue 64] [-workers 2] [-parallel N]
//	         [-job-timeout 15m] [-drain-timeout 30s] [-cache-bytes N]
//	         [-max-window 10ms] [-audit] [-version]
//
// Endpoints:
//
//	POST   /jobs              submit a job spec (429 + Retry-After when full)
//	GET    /jobs              list known jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  result bytes (?wait=true blocks until done)
//	GET    /jobs/{id}/stream  NDJSON progress stream
//	DELETE /jobs/{id}         cancel
//	GET    /experiments       valid experiment names
//	GET    /healthz           liveness + drain state
//	GET    /metrics           Prometheus text format
//	GET    /version           build info
//
// On SIGINT/SIGTERM the daemon stops admission, drains accepted jobs for
// -drain-timeout, cancels whatever remains, and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/version"
)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("hostnetd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "bounded job queue depth (full queue sheds load with 429)")
	workers := fs.Int("workers", 2, "jobs executed concurrently")
	parallel := fs.Int("parallel", 0, "sweep-pool width inside one job (0 = one goroutine per point)")
	jobTimeout := fs.Duration("job-timeout", 15*time.Minute, "per-job wall-clock timeout")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache byte cap")
	maxWindow := fs.Duration("max-window", 10*time.Millisecond, "max simulated window/warmup per job (<0 disables)")
	audit := fs.Bool("audit", false, "run simulator invariant audits inside jobs")
	ver := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Println("hostnetd", version.Get())
		return 0
	}

	srv := serve.New(serve.Config{
		QueueDepth:  *queue,
		Workers:     *workers,
		Parallelism: *parallel,
		JobTimeout:  *jobTimeout,
		CacheBytes:  *cacheBytes,
		MaxWindowNs: maxWindow.Nanoseconds(),
		Audit:       *audit,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hostnetd %s listening on %s (queue %d, workers %d)", version.Get(), *addr, *queue, *workers)

	select {
	case err := <-errc:
		log.Printf("listen: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Printf("signal received; draining for up to %v", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("drain: %v", drainErr)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}
