// Command hostnetd serves the host-network simulator over HTTP: submit
// experiment job specs, poll or stream their progress, and fetch results
// that are byte-identical to `hostnetsim -format json`.
//
// Usage:
//
//	hostnetd [-addr :8080] [-queue 64] [-workers 2] [-parallel N]
//	         [-job-timeout 15m] [-drain-timeout 30s] [-cache-bytes N]
//	         [-max-window 10ms] [-audit] [-version]
//	         [-store DIR] [-store-bytes N] [-tenant-quota N]
//	         [-fleet URL,URL,...] [-fleet-inflight N] [-warm names|all]
//	         [-fidelity both|sim|analytic] [-refine]
//
// Endpoints:
//
//	POST   /jobs              submit a job spec (429 + Retry-After when full)
//	POST   /jobs/batch        submit a suite of specs, per-item outcomes
//	GET    /jobs              list known jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  result bytes (?wait=true blocks until done)
//	GET    /jobs/{id}/stream  NDJSON progress stream
//	DELETE /jobs/{id}         cancel
//	GET    /experiments       valid experiment names
//	GET    /crossval          analytic-vs-sim error per config-space region
//	GET    /healthz           liveness + drain state + store/fleet readiness
//	GET    /metrics           Prometheus text format
//	GET    /version           build info
//
// Specs carrying "fidelity": "analytic" are answered inline by the §7
// predictive model — microseconds instead of a queue slot — and still
// cached and stored by content address; specs the model cannot answer get
// 422. -fidelity restricts which tiers this server accepts; -refine makes
// every fresh analytic answer enqueue its sim twin at background priority
// and fold the comparison into GET /crossval.
//
// With -store DIR, results persist on disk by content address and survive
// restarts; a fleet of daemons pointed at one directory shares them. With
// -fleet, the daemon becomes a sharding coordinator: splittable sweeps are
// fanned out point-by-point to the listed worker daemons and merged into
// bytes identical to a single-node run. -warm pre-simulates the named
// experiment suites (comma-separated, or "all") in the background so later
// submissions hit the cache.
//
// On SIGINT/SIGTERM the daemon stops admission, drains accepted jobs for
// -drain-timeout, cancels whatever remains (flushing completed results to
// the store first), and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/version"
)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("hostnetd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "bounded job queue depth (full queue sheds load with 429)")
	workers := fs.Int("workers", 2, "jobs executed concurrently")
	parallel := fs.Int("parallel", 0, "sweep-pool width inside one job (0 = one goroutine per point)")
	jobTimeout := fs.Duration("job-timeout", 15*time.Minute, "per-job wall-clock timeout")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache byte cap")
	maxWindow := fs.Duration("max-window", 10*time.Millisecond, "max simulated window/warmup per job (<0 disables)")
	audit := fs.Bool("audit", false, "run simulator invariant audits inside jobs")
	storeDir := fs.String("store", "", "persistent result store directory (empty disables)")
	storeBytes := fs.Int64("store-bytes", 1<<30, "persistent store payload byte cap (<0 disables)")
	fleetURLs := fs.String("fleet", "", "comma-separated worker base URLs: run as sharding coordinator")
	fleetInflight := fs.Int("fleet-inflight", 2, "max in-flight points per fleet worker")
	tenantQuota := fs.Int("tenant-quota", 0, "max admitted jobs per X-Tenant header (0 disables)")
	fidelity := fs.String("fidelity", "both", "fidelity tiers served: both, sim, or analytic")
	refine := fs.Bool("refine", false, "follow analytic answers with background sim twins feeding GET /crossval")
	warm := fs.String("warm", "", "comma-separated experiment names (or 'all') to pre-warm after startup")
	ver := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Println("hostnetd", version.Get())
		return 0
	}

	switch *fidelity {
	case "both", "sim", "analytic":
	default:
		log.Printf("-fidelity %q: valid values are both, sim, analytic", *fidelity)
		return 2
	}
	cfg := serve.Config{
		QueueDepth:  *queue,
		Workers:     *workers,
		Parallelism: *parallel,
		JobTimeout:  *jobTimeout,
		CacheBytes:  *cacheBytes,
		MaxWindowNs: maxWindow.Nanoseconds(),
		Audit:       *audit,
		TenantQuota: *tenantQuota,
		Fidelity:    *fidelity,
		Refine:      *refine,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Config{MaxBytes: *storeBytes})
		if err != nil {
			log.Printf("opening store: %v", err)
			return 1
		}
		cfg.Store = st
		log.Printf("store %s: %d entries, %d payload bytes", st.Dir(), st.Len(), st.Bytes())
	}
	if *fleetURLs != "" {
		var ws []fleet.Worker
		for _, u := range strings.Split(*fleetURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				ws = append(ws, fleet.Worker{URL: u, MaxInFlight: *fleetInflight})
			}
		}
		coord, err := fleet.New(fleet.Config{Workers: ws})
		if err != nil {
			log.Printf("fleet: %v", err)
			return 1
		}
		cfg.Fleet = coord
		log.Printf("coordinator mode: %d workers", coord.Workers())
	}
	warmSuite, err := warmSpecs(*warm)
	if err != nil {
		log.Printf("-warm: %v", err)
		return 2
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hostnetd %s listening on %s (queue %d, workers %d)", version.Get(), *addr, *queue, *workers)

	if len(warmSuite) > 0 {
		// Warm in the background: the daemon serves immediately, and specs
		// already in the store complete for free.
		go func() {
			done, failed := srv.Warm(ctx, warmSuite)
			log.Printf("warm: %d done, %d failed of %d specs", done, failed, len(warmSuite))
		}()
	}

	select {
	case err := <-errc:
		log.Printf("listen: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Printf("signal received; draining for up to %v", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("drain: %v", drainErr)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}

// warmSpecs expands the -warm argument into default-spec jobs: one per
// named experiment, or the full figure suite for "all".
func warmSpecs(arg string) ([]exp.Spec, error) {
	if arg == "" {
		return nil, nil
	}
	known := exp.Experiments()
	names := strings.Split(arg, ",")
	if strings.TrimSpace(arg) == "all" {
		names = known
	}
	valid := make(map[string]bool, len(known))
	for _, n := range known {
		valid[n] = true
	}
	var specs []exp.Spec
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown experiment %q (see GET /experiments)", n)
		}
		specs = append(specs, exp.Spec{Experiment: n})
	}
	return specs, nil
}
